# Development workflow for hcperf. Stdlib-only Go >= 1.22; every target is
# plain `go` tooling so CI and local runs are identical.

GO ?= go

# Packages that own concurrency: the worker pool itself plus everything the
# pool fans out (experiments, the simulation engine, the scenarios) and the
# wall-clock executor.
RACE_PKGS := ./internal/runner/... ./internal/experiment/... \
             ./internal/engine/... ./internal/scenario/... ./internal/rt/... \
             ./internal/lifecycle/... ./internal/service/...

.PHONY: ci vet build test race bench fuzz suite trace-demo serve

## ci: the tier-1 gate — vet, build, full test suite, then the race pass.
ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: concurrency-sensitive packages under the race detector. Includes
## the determinism harness (serial vs parallel digests) and the overlapping
## sweep test, so data races surface as reports or fingerprint mismatches.
race:
	$(GO) test -race -count=1 $(RACE_PKGS)

## bench: the parallel-runner benchmarks recorded in EXPERIMENTS.md.
bench:
	$(GO) test -bench='Sweep(Serial|Parallel)|Suite(Serial|Parallel)' -benchtime=3x -run='^$$' .

## fuzz: short fuzz passes — Hungarian solver vs brute force, and the
## scenario-spec JSON decode/validate/re-encode round trip.
fuzz:
	$(GO) test -fuzz=FuzzHungarian -fuzztime=10s ./internal/hungarian/
	$(GO) test -fuzz=FuzzSpecJSON -fuzztime=10s ./internal/scenario/

## suite: run every experiment once, fanned across GOMAXPROCS workers.
suite:
	$(GO) run ./cmd/hcperf-sim -mode suite -parallel 0

## trace-demo: export a per-job lifecycle trace of the car-following
## scenario; open trace.json in chrome://tracing or Perfetto.
trace-demo:
	$(GO) run ./cmd/hcperf-sim -scenario carfollow -scheme hcperf -duration 20 -trace trace.json

## serve: boot the simulation-as-a-service API on :8080 (see README for
## curl examples: submit, poll, trace, metrics).
serve:
	$(GO) run ./cmd/hcperf-serve -addr :8080
