# Development workflow for hcperf. Stdlib-only Go >= 1.22; every target is
# plain `go` tooling so CI and local runs are identical.

GO ?= go

# Packages that own concurrency: the worker pool itself plus everything the
# pool fans out (experiments, the simulation engine, the scenarios), the
# wall-clock executor, the resilience policy layer and the load generator's
# client. Every package under internal/ must appear in either RACE_PKGS or
# RACE_EXEMPT — scripts/race_pkgs_guard.sh (run by `make race` and CI)
# fails the build otherwise, so a new package cannot silently skip the
# race detector.
RACE_PKGS := ./internal/runner/... ./internal/experiment/... \
             ./internal/engine/... ./internal/scenario/... ./internal/rt/... \
             ./internal/lifecycle/... ./internal/service/... ./internal/fleet/... \
             ./internal/search/... ./internal/run/... ./internal/store/... \
             ./internal/policy/... ./internal/loadgen/...

# Provably single-threaded packages (pure math, data shapes, encoders):
# exempted from the race pass, but still enumerated so the guard can tell
# "deliberately exempt" from "forgotten".
RACE_EXEMPT := ./internal/analysis/... ./internal/bus/... ./internal/core/... \
               ./internal/dag/... ./internal/exectime/... ./internal/hungarian/... \
               ./internal/metrics/... ./internal/mfc/... ./internal/perf/... \
               ./internal/rate/... ./internal/sched/... ./internal/simtime/... \
               ./internal/stats/... ./internal/trace/... ./internal/vehicle/... \
               ./internal/version/...

.PHONY: ci vet build test race race-guard bench bench-json bench-check bench-update fuzz suite trace-demo serve load-smoke

# Benchtime for the perf-baseline suite. A duration (not an iteration
# count): the sub-microsecond benchmarks need >=10ms of samples for stable
# ns/op, while allocs/op stays deterministic either way (steady-state
# allocations are exact per op; setup allocations amortise to zero).
BENCHTIME ?= 10ms
# Where bench-check writes the fresh run (CI uploads it as an artifact).
# Lives under the git-ignored out/ so repeated local runs never litter the
# working tree.
BENCH_OUT ?= out/bench_fresh.json
# Extra hcperf-bench flags for bench-check; CI passes
# "-cpuprofile bench_cpu.pprof -memprofile bench_heap.pprof" so kernel
# regressions are diagnosable from the uploaded profiles.
BENCH_FLAGS ?=

## ci: the tier-1 gate — vet, build, full test suite, then the race pass.
ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race-guard: fail if any internal package is missing from both RACE_PKGS
## and RACE_EXEMPT above.
race-guard:
	@sh scripts/race_pkgs_guard.sh "$(RACE_PKGS)" "$(RACE_EXEMPT)"

## race: concurrency-sensitive packages under the race detector. Includes
## the determinism harness (serial vs parallel digests) and the overlapping
## sweep test, so data races surface as reports or fingerprint mismatches.
race: race-guard
	$(GO) test -race -count=1 $(RACE_PKGS)

## bench: the parallel-runner benchmarks recorded in EXPERIMENTS.md.
bench:
	$(GO) test -bench='Sweep(Serial|Parallel)|Suite(Serial|Parallel)' -benchtime=3x -run='^$$' .

## bench-json: run the hot-path perf suite and print the machine-readable
## baseline JSON (ns/op, allocs/op, B/op per named benchmark) to stdout.
bench-json:
	$(GO) run ./cmd/hcperf-bench -json -benchtime $(BENCHTIME)

## bench-check: run the perf suite and diff it against the checked-in
## BENCH_baseline.json; non-zero exit on regression (>25% allocs/op or
## >40% ns/op by default). The fresh run is written to $(BENCH_OUT).
bench-check:
	@mkdir -p $(dir $(BENCH_OUT))
	$(GO) run ./cmd/hcperf-bench -check BENCH_baseline.json -benchtime $(BENCHTIME) -out $(BENCH_OUT) $(BENCH_FLAGS)

## bench-update: regenerate BENCH_baseline.json. Refuses to run with a
## dirty working tree so the new baseline can only reflect committed code.
bench-update:
	@test -z "$$(git status --porcelain)" || \
		{ echo "bench-update: working tree dirty; commit or stash first" >&2; exit 1; }
	$(GO) run ./cmd/hcperf-bench -json -benchtime $(BENCHTIME) -out BENCH_baseline.json

## fuzz: short fuzz passes — Hungarian solver vs brute force, the
## scenario-spec JSON decode/validate/re-encode round trip, the
## heap-vs-wheel event-scheduler differential (identical firing sequences),
## and the search-space JSON normalize fixed point.
fuzz:
	$(GO) test -fuzz=FuzzHungarian -fuzztime=10s ./internal/hungarian/
	$(GO) test -fuzz=FuzzSpecJSON -fuzztime=10s ./internal/scenario/
	$(GO) test -fuzz=FuzzSchedulerEquivalence -fuzztime=10s ./internal/simtime/
	$(GO) test -fuzz=FuzzParamSpaceJSON -fuzztime=10s ./internal/search/

## suite: run every experiment once, fanned across GOMAXPROCS workers.
suite:
	$(GO) run ./cmd/hcperf-sim -mode suite -parallel 0

## trace-demo: export a per-job lifecycle trace of the car-following
## scenario; open trace.json in chrome://tracing or Perfetto.
trace-demo:
	$(GO) run ./cmd/hcperf-sim -scenario carfollow -scheme hcperf -duration 20 -trace trace.json

## serve: boot the simulation-as-a-service API on :8080 (see README for
## curl examples: submit, poll, trace, metrics).
serve:
	$(GO) run ./cmd/hcperf-serve -addr :8080

## load-smoke: a local version of the CI soak gate — 10s of open-loop load
## against a throwaway server, checked against LOAD_baseline.json. Assumes
## `make serve` (or any hcperf-serve) is already listening on :8080.
load-smoke:
	@mkdir -p out
	$(GO) run ./cmd/hcperf-load -url http://127.0.0.1:8080 -rps 50 -duration 10s -warmup 2s \
		-check LOAD_baseline.json -out out/load_smoke.json
