// Quickstart: build a small autonomous-driving task graph, execute it on
// the discrete-event engine under HCPerf's hierarchical coordination, and
// print the end-to-end outcomes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"hcperf/internal/bus"
	"hcperf/internal/core"
	"hcperf/internal/dag"
	"hcperf/internal/engine"
	"hcperf/internal/exectime"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const ms = simtime.Millisecond

	// 1. Describe the pipeline: sensor -> perception -> control, with a
	// perception stage whose execution time depends on scene complexity.
	g := dag.New()
	fusion, err := exectime.NewFusion(5*ms, 2e-6, 0.05)
	if err != nil {
		return err
	}
	specs := []dag.Task{
		{
			Name: "camera", Priority: 3, RelDeadline: 40 * ms,
			Rate: 20, MinRate: 10, MaxRate: 40,
			Exec: exectime.Constant(1 * ms),
		},
		{
			Name: "perception", Priority: 2, RelDeadline: 60 * ms,
			Exec: fusion,
		},
		{
			Name: "control", Priority: 1, RelDeadline: 30 * ms, E2E: 150 * ms,
			IsControl: true,
			Exec:      exectime.Constant(2 * ms),
		},
	}
	for _, t := range specs {
		if _, err := g.AddTask(t); err != nil {
			return err
		}
	}
	for _, e := range [][2]string{{"camera", "perception"}, {"perception", "control"}} {
		if err := g.AddEdgeByName(e[0], e[1]); err != nil {
			return err
		}
	}
	if err := g.Validate(); err != nil {
		return err
	}

	// 2. Wire the engine with HCPerf's Dynamic Priority Scheduler. The
	// Cyber-RT-style bus receives every control command; a dashboard or
	// logger would subscribe here.
	q := simtime.NewEventQueue()
	dyn := sched.NewDynamic(0)
	b := bus.New()
	var busDeliveries int
	if _, err := b.Subscribe(engine.ControlTopic, func(string, bus.Message) {
		busDeliveries++
	}); err != nil {
		return err
	}
	eng, err := engine.New(engine.Config{
		Graph:     g,
		Scheduler: dyn,
		NumProcs:  2,
		Queue:     q,
		Seed:      42,
		Bus:       b,
		Scene: func(now simtime.Time) exectime.Scene {
			// The scene gets busy between t=3s and t=7s.
			if now >= 3 && now < 7 {
				return exectime.Scene{Obstacles: 24, LoadFactor: 1}
			}
			return exectime.Scene{Obstacles: 10, LoadFactor: 1}
		},
		OnControl: func(cmd engine.ControlCommand) {
			// A real application would actuate the vehicle here.
			_ = cmd
		},
	})
	if err != nil {
		return err
	}

	// 3. Attach the hierarchical coordinator. The tracking error is the
	// driving-performance signal; here a synthetic oscillation stands in
	// for a real vehicle's error.
	coord, err := core.New(core.Config{
		Engine:  eng,
		Queue:   q,
		Dynamic: dyn,
		TrackingError: func(now simtime.Time) float64 {
			return math.Abs(1.2 * math.Sin(float64(now)))
		},
	})
	if err != nil {
		return err
	}

	// 4. Run ten simulated seconds.
	if err := eng.Start(); err != nil {
		return err
	}
	if err := coord.Start(); err != nil {
		return err
	}
	if err := q.RunUntil(10); err != nil {
		return err
	}

	st := eng.Stats()
	fmt.Println("HCPerf quickstart — 10 simulated seconds")
	fmt.Printf("  jobs released     %d\n", st.Released)
	fmt.Printf("  deadline misses   %d (ratio %.3f)\n", st.Missed, st.MissRatio())
	fmt.Printf("  control commands  %d\n", st.ControlCommands)
	fmt.Printf("  mean e2e latency  %.1f ms\n", st.EndToEnd.Mean()*1000)
	fmt.Printf("  gamma now         %.4f (u=%.4f)\n", coord.Gamma(), coord.NominalU())
	fmt.Printf("  camera rate now   %.1f Hz (adapter-tuned)\n", eng.SourceRate(g.TaskByName("camera").ID))
	overhead := coord.Overhead()
	fmt.Printf("  coordinator cost  %.1f µs/step\n", overhead.Mean()*1e6)
	fmt.Printf("  bus deliveries    %d on %s\n", busDeliveries, engine.ControlTopic)
	return nil
}
