// Car following: reproduce the paper's headline evaluation (§VII-B1) —
// a follower tracking a sine-speed lead through a complex-scene episode —
// across all five scheduling schemes, printing Table II/III-style rows.
//
//	go run ./examples/carfollowing
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"hcperf/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scheme\tspeed RMS (m/s)\tdist RMS (m)\tmiss ratio\tcmds/s\te2e (ms)")
	var hcperf, worst float64
	for _, s := range scenario.AllSchemes() {
		r, err := scenario.RunCarFollowing(scenario.CarFollowingConfig{
			Scheme: s,
			Seed:   1,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%v\t%.3f\t%.3f\t%.3f\t%.1f\t%.0f\n",
			s, r.SpeedErrRMS, r.DistErrRMS, r.Miss.MeanRatio(),
			r.Throughput, r.EngineStats.EndToEnd.Mean()*1000)
		if s == scenario.SchemeHCPerf {
			hcperf = r.SpeedErrRMS
		} else if r.SpeedErrRMS > worst {
			worst = r.SpeedErrRMS
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("\nHCPerf improves speed tracking by %.1f%% over the worst baseline.\n",
		(worst-hcperf)/worst*100)
	fmt.Println("(paper: 7.69%–45.94% across scenarios)")
	return nil
}
