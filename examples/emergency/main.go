// Emergency responsiveness: the paper's §VII-C traffic-jam study. Both
// cars cruise at 20 m/s; at t = 10 s the lead brakes into a jam while the
// scene fills with vehicles. HCPerf detects the growing gap error and
// prioritises control-command generation; once the jam clears it restores
// throughput and passenger comfort (Figs. 16-17).
//
//	go run ./examples/emergency
package main

import (
	"fmt"
	"log"

	"hcperf/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, s := range []scenario.Scheme{scenario.SchemeEDF, scenario.SchemeHCPerf} {
		cfg, err := scenario.JamCarFollowingConfig(s, 1)
		if err != nil {
			return err
		}
		r, err := scenario.RunCarFollowing(cfg)
		if err != nil {
			return err
		}
		gap := r.Rec.Series("dist_err")
		disc := r.Rec.Series("discomfort")
		thr := r.Rec.Series("throughput")
		fmt.Printf("%v:\n", s)
		fmt.Printf("  gap error RMS   pre %.2f m | jam %.2f m | post %.2f m (peak %.2f m)\n",
			gap.RMS(0, 10), gap.RMS(10, 20), gap.RMS(28, 35), gap.MaxAbs(0, 35))
		fmt.Printf("  throughput      pre %.1f/s | jam %.1f/s | post %.1f/s\n",
			thr.Mean(1, 10), thr.Mean(10, 20), thr.Mean(28, 35))
		fmt.Printf("  discomfort      jam %.2f | post %.2f (windowed RMS jerk)\n",
			disc.Mean(10, 20), disc.Mean(28, 35))
		if g := r.Rec.Series("gamma"); g != nil {
			fmt.Printf("  gamma           pre %.4f | jam %.4f (priority boost while the error is high)\n",
				g.Mean(1, 10), g.Mean(10, 20))
		}
		fmt.Println()
	}
	fmt.Println("HCPerf trades throughput for responsiveness during the emergency and")
	fmt.Println("hands the resources back once the tracking error is mitigated.")
	return nil
}
