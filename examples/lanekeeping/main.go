// Lane keeping: the paper's §VII-B2 loop-driving experiment — one lap of
// an oval circuit at 5 m/s, with the lateral offset as the performance
// metric. Exports the per-scheme offset traces as CSV for plotting
// Fig. 14(b).
//
//	go run ./examples/lanekeeping [-csv lanekeep.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hcperf/internal/scenario"
	"hcperf/internal/trace"
)

func main() {
	csvPath := flag.String("csv", "", "write per-scheme offset traces to this CSV file")
	flag.Parse()
	if err := run(*csvPath); err != nil {
		log.Fatal(err)
	}
}

func run(csvPath string) error {
	merged := trace.NewRecorder()
	fmt.Println("lane keeping, one lap at 5 m/s (four turns):")
	for _, s := range scenario.AllSchemes() {
		r, err := scenario.RunLaneKeeping(scenario.LaneKeepingConfig{Scheme: s, Seed: 1})
		if err != nil {
			return err
		}
		fmt.Printf("  %-8v offset RMS %.4f m, max %.4f m, miss ratio %.3f\n",
			s, r.OffsetRMS, r.OffsetMax, r.Miss.MeanRatio())
		for _, p := range r.Rec.Series("offset").Samples {
			if err := merged.Add(s.String(), p.T, p.V); err != nil {
				return err
			}
		}
	}
	if csvPath == "" {
		return nil
	}
	f, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := merged.WriteCSV(f); err != nil {
		return err
	}
	fmt.Printf("offset traces written to %s (series = scheme)\n", csvPath)
	return nil
}
