// Custom scheduler: the engine's Scheduler interface accepts user-defined
// policies. This example implements Least-Laxity-First (LLF) — dispatch the
// job with the smallest slack — plugs it into the car-following scenario's
// building blocks, and compares it against EDF on the same workload.
//
//	go run ./examples/customsched
package main

import (
	"fmt"
	"log"

	"hcperf/internal/dag"
	"hcperf/internal/engine"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
)

// LLF is Least-Laxity-First: the ready job whose latest feasible start is
// nearest to now runs first. (With γ = 0 HCPerf's Dynamic scheduler
// degenerates to exactly this policy; writing it out shows the plug-in
// surface.)
type LLF struct{}

// Name implements sched.Scheduler.
func (LLF) Name() string { return "LLF" }

// Select implements sched.Scheduler.
func (LLF) Select(now simtime.Time, ready []*sched.Job, _ int, _ *sched.ProcState) int {
	best := -1
	var bestSlack simtime.Duration
	for i, j := range ready {
		slack := j.Slack(now)
		if best == -1 || slack < bestSlack {
			best, bestSlack = i, slack
		}
	}
	return best
}

var _ sched.Scheduler = LLF{}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, policy := range []sched.Scheduler{LLF{}, sched.EDF{}} {
		graph, err := dag.ADGraph23()
		if err != nil {
			return err
		}
		q := simtime.NewEventQueue()
		eng, err := engine.New(engine.Config{
			Graph:      graph,
			Scheduler:  policy,
			NumProcs:   2,
			Queue:      q,
			Seed:       7,
			MaxDataAge: 220 * simtime.Millisecond,
		})
		if err != nil {
			return err
		}
		if err := eng.Start(); err != nil {
			return err
		}
		if err := q.RunUntil(30); err != nil {
			return err
		}
		st := eng.Stats()
		fmt.Printf("%-4s released=%5d missed=%4d (ratio %.3f) commands=%4d e2e=%.0fms\n",
			policy.Name(), st.Released, st.Missed, st.MissRatio(),
			st.ControlCommands, st.EndToEnd.Mean()*1000)
	}
	return nil
}
