// Package hcperf is a from-scratch Go reproduction of "HCPerf: Driving
// Performance-Directed Hierarchical Coordination for Autonomous Vehicles"
// (ICDCS 2023): a task-coordination framework that schedules an autonomous
// driving stack's DAG of periodic tasks according to the vehicle's runtime
// driving performance.
//
// The implementation lives under internal/ (one package per subsystem; see
// DESIGN.md for the inventory), runnable binaries under cmd/, and worked
// examples under examples/. The root package holds the module documentation
// and the benchmark harness that regenerates every table and figure of the
// paper's evaluation (bench_test.go; see EXPERIMENTS.md for the measured
// results).
package hcperf
