package main

import "testing"

func TestRunSummaryAndDot(t *testing.T) {
	for _, g := range []string{"ad23", "motivation"} {
		if err := run(g, false, false, 2, 11); err != nil {
			t.Fatalf("summary %s: %v", g, err)
		}
		if err := run(g, true, false, 2, 11); err != nil {
			t.Fatalf("dot %s: %v", g, err)
		}
		if err := run(g, false, true, 2, 23); err != nil {
			t.Fatalf("analyze %s: %v", g, err)
		}
	}
}

func TestRunUnknownGraph(t *testing.T) {
	if err := run("bogus", false, false, 2, 11); err == nil {
		t.Error("unknown graph accepted")
	}
}
