// Command hcperf-graph inspects the built-in autonomous-driving task
// graphs: validation, per-task specs, end-to-end budgets along the primary
// chains, and Graphviz DOT export.
//
// Usage:
//
//	hcperf-graph -graph ad23              # tabular summary
//	hcperf-graph -graph motivation -dot   # DOT on stdout
//	hcperf-graph -graph ad23 -analyze -procs 2 -obstacles 23
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"hcperf/internal/analysis"
	"hcperf/internal/dag"
	"hcperf/internal/exectime"
)

func main() {
	var (
		name      = flag.String("graph", "ad23", "ad23 | motivation")
		dot       = flag.Bool("dot", false, "emit Graphviz DOT instead of the summary")
		analyze   = flag.Bool("analyze", false, "print a schedulability analysis")
		procs     = flag.Int("procs", 2, "processor count for -analyze")
		obstacles = flag.Int("obstacles", 11, "scene obstacle count for -analyze")
	)
	flag.Parse()
	if err := run(*name, *dot, *analyze, *procs, *obstacles); err != nil {
		fmt.Fprintln(os.Stderr, "hcperf-graph:", err)
		os.Exit(1)
	}
}

func run(name string, dot, analyze bool, procs, obstacles int) error {
	var (
		g   *dag.Graph
		err error
	)
	switch name {
	case "ad23":
		g, err = dag.ADGraph23()
	case "motivation":
		g, err = dag.MotivationGraph()
	default:
		return fmt.Errorf("unknown graph %q", name)
	}
	if err != nil {
		return err
	}
	if dot {
		fmt.Print(g.DOT())
		return nil
	}
	if analyze {
		return printAnalysis(g, procs, obstacles)
	}

	cp, err := g.CriticalPathNominal()
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "task\tprio\tD (ms)\texec (ms)\trate (Hz)\trange\tcrit\tpath (ms)\trole\n")
	for _, t := range g.Tasks() {
		role := ""
		if len(g.Predecessors(t.ID)) == 0 {
			role = "source"
		}
		if t.IsControl {
			role = "control"
		}
		rng := "-"
		if t.MaxRate > 0 {
			rng = fmt.Sprintf("[%g,%g]", t.MinRate, t.MaxRate)
		}
		rate := "-"
		if t.Rate > 0 {
			rate = fmt.Sprintf("%g", t.Rate)
		}
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.1f\t%s\t%s\t%v\t%.1f\t%s\n",
			t.Name, t.Priority, float64(t.RelDeadline)*1000,
			float64(t.Exec.Nominal())*1000, rate, rng, t.Criticality,
			float64(cp[t.ID])*1000, role)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("\n%d tasks, %d sources, %d sinks\n", g.Len(), len(g.Sources()), len(g.Sinks()))
	return nil
}

func printAnalysis(g *dag.Graph, procs, obstacles int) error {
	rep, err := analysis.Analyze(g, analysis.Options{
		NumProcs: procs,
		Scene:    exectime.Scene{Obstacles: obstacles, LoadFactor: 1},
		Seed:     1,
	})
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "task\tcadence (Hz)\texec (ms)\tutil\tproc\n")
	for _, row := range rep.Tasks {
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.3f\t%d\n",
			row.Task.Name, row.Cadence, float64(row.ExpectedExec)*1000,
			row.Utilization, row.Processor)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("\ntotal utilization  %.3f of %d processors (feasible: %t)\n",
		rep.TotalUtilization, rep.NumProcs, rep.Feasible())
	fmt.Printf("Liu-Layland bound  %.3f (within: %t)\n", rep.LLBound, rep.WithinLLBound())
	fmt.Printf("Apollo loads       %v (feasible: %t, overloaded: %v)\n",
		rep.ApolloLoads, rep.ApolloFeasible(), rep.Overloaded())
	id, lat := rep.BottleneckChain()
	fmt.Printf("bottleneck chain   %s at %.1f ms nominal latency\n",
		g.Task(id).Name, float64(lat)*1000)
	return nil
}
