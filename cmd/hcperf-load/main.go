// Command hcperf-load drives synthetic load against an hcperf-serve
// instance and reports client-side latency quantiles alongside the
// server's own /metrics accounting — the measurement half of the CI soak
// gate.
//
// Usage:
//
//	hcperf-load -url http://127.0.0.1:8080 [-rps 50 | -concurrency 8]
//	            [-duration 10s] [-warmup 2s] [-mix mix.json] [-api-key key]
//	            [-timeout 10s] [-seed 1] [-retries 0]
//	            [-out out/load.json] [-check LOAD_baseline.json]
//	hcperf-load -version
//
// With -rps the run is open loop: requests launch on a fixed schedule and
// latency is measured from each request's scheduled time, so server
// stalls show up as the queueing delay they caused (coordinated-omission
// aware). Without -rps the run is closed loop: -concurrency workers fire
// back-to-back as fast as the server answers.
//
// The mix file is a JSON array of {"name", "weight", "body"} entries;
// each request posts one body, picked by weight, to POST /v1/runs. The
// default mix cycles four experiment digests, measuring the steady state
// the service is built for: content-addressed cache hits.
//
// -out writes the report as deterministic JSON; -check reads a
// thresholds file (see LOAD_baseline.json) and exits 1 listing every
// violated bound — the same baseline/compare discipline as the
// BENCH_baseline.json benchmark gate.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hcperf/internal/loadgen"
	"hcperf/internal/version"
)

func main() {
	var (
		url         = flag.String("url", "http://127.0.0.1:8080", "hcperf-serve base URL")
		rps         = flag.Float64("rps", 0, "open-loop target rate, req/s (0 = closed loop)")
		concurrency = flag.Int("concurrency", 8, "workers (closed-loop load / open-loop in-flight cap)")
		duration    = flag.Duration("duration", 10*time.Second, "measured window")
		warmup      = flag.Duration("warmup", 2*time.Second, "unmeasured lead-in")
		mixPath     = flag.String("mix", "", "JSON mix file (default: built-in experiment mix)")
		apiKey      = flag.String("api-key", "", "X-API-Key header (keys this run's rate-limit bucket)")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		seed        = flag.Int64("seed", 1, "mix-picking RNG seed")
		retries     = flag.Int("retries", 0, "budgeted retries per request on transport errors and 5xx")
		outPath     = flag.String("out", "", "write the JSON report here")
		checkPath   = flag.String("check", "", "thresholds file to gate on (exit 1 on violation)")
		showVersion = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.Get())
		return
	}
	if err := run(*url, *rps, *concurrency, *duration, *warmup, *mixPath, *apiKey, *timeout, *seed, *retries, *outPath, *checkPath); err != nil {
		fmt.Fprintln(os.Stderr, "hcperf-load:", err)
		os.Exit(1)
	}
}

func run(url string, rps float64, concurrency int, duration, warmup time.Duration, mixPath, apiKey string, timeout time.Duration, seed int64, retries int, outPath, checkPath string) error {
	cfg := loadgen.Config{
		URL: url, RPS: rps, Concurrency: concurrency,
		Duration: duration, Warmup: warmup,
		APIKey: apiKey, Timeout: timeout, Seed: seed, Retries: retries,
	}
	if mixPath != "" {
		mix, err := loadgen.ReadMixFile(mixPath)
		if err != nil {
			return err
		}
		cfg.Mix = mix
	}
	// Thresholds are parsed before the run so a broken gate file fails in
	// milliseconds, not after a full soak.
	var th *loadgen.Thresholds
	if checkPath != "" {
		t, err := loadgen.ReadThresholds(checkPath)
		if err != nil {
			return err
		}
		th = t
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Print(rep.String())

	if outPath != "" {
		if err := rep.WriteFile(outPath); err != nil {
			return err
		}
		fmt.Printf("report     %s\n", outPath)
	}
	if th != nil {
		if violations := th.Check(rep); len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "\nLOAD GATE FAILED (%s):\n", checkPath)
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "  ", v)
			}
			os.Exit(1)
		}
		fmt.Printf("load gate  PASS (%s)\n", checkPath)
	}
	return nil
}
