// Command hcperf-serve exposes the experiment registry and scenario
// presets as an HTTP/JSON service: submissions land in a bounded job queue
// worked by a pool, identical requests are deduplicated into one execution
// and served from a content-addressed LRU result cache, and overload sheds
// with 429 + Retry-After instead of queueing unboundedly.
//
// Usage:
//
//	hcperf-serve [-addr :8080] [-workers 4] [-queue 64] [-cache 128] [-store dir] [-drain 10s]
//	             [-rate-limit 0] [-rate-burst 0] [-breaker-error-rate 0.5] [-breaker-cooldown 5s] [-no-breaker]
//	hcperf-serve -version
//
// Endpoints:
//
//	POST /v1/runs                 submit {"experiment":"fig13","seed":1} or
//	                              {"scenario":"carfollow","scheme":"edf","trace":true}
//	GET  /v1/runs/{id}            status + report (append ?series=1 for raw series)
//	GET  /v1/runs/{id}/trace      lifecycle trace (?format=csv or chrome)
//	POST /v1/sweeps               spec template × parameter grid, streamed as SSE
//	GET  /v1/experiments          registry listing
//	GET  /v1/version              build identity
//	GET  /healthz                 liveness (503 while draining)
//	GET  /metrics                 Prometheus text exposition
//	GET  /debug/pprof/            runtime profiles
//
// With -store, completed results additionally persist to a disk-backed
// content-addressed store (one file per request digest), so identical
// submissions are served across restarts — and across processes: the store
// format is shared with hcperf-sim -store, so a CLI run pre-warms the
// server's cache and vice versa. Responses carry an X-HCPerf-Cache header
// (miss | memory | disk) naming the tier that answered. An unusable store
// directory logs a warning and degrades to memory-only serving.
//
// The resilience layer sits in front of and behind the queue: with
// -rate-limit, each client (keyed by Authorization: Bearer token, then
// X-API-Key, then remote IP) gets a token bucket on the POST endpoints —
// denials are 429s whose Retry-After is exact refill arithmetic, and every
// response carries X-RateLimit-Limit/Remaining/Reset. A circuit breaker
// (on unless -no-breaker) watches the execute stage's error rate and
// fast-fails fresh executions while open; cache and disk hits keep
// flowing. Both export under /metrics as hcperf_ratelimit_* and
// hcperf_breaker_*.
//
// SIGINT/SIGTERM begins a graceful drain: the listener stops accepting,
// queued and in-flight runs get -drain to finish, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hcperf/internal/policy"
	"hcperf/internal/service"
	"hcperf/internal/store"
	"hcperf/internal/version"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 4, "execution worker pool size")
		queue       = flag.Int("queue", 64, "submission queue bound (full queue sheds with 429)")
		cache       = flag.Int("cache", 128, "completed-run LRU cache size")
		storeDir    = flag.String("store", "", "disk-backed result store directory (persists across restarts; shared with hcperf-sim -store)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful drain deadline on SIGTERM")
		showVersion = flag.Bool("version", false, "print build identity and exit")

		rateLimit  = flag.Float64("rate-limit", 0, "per-client sustained request rate on POST endpoints, req/s (0 disables)")
		rateBurst  = flag.Float64("rate-burst", 0, "per-client burst allowance (default 2×rate-limit)")
		noBreaker  = flag.Bool("no-breaker", false, "disable the execute-stage circuit breaker")
		brkErrRate = flag.Float64("breaker-error-rate", 0, "error-rate threshold that trips the breaker (default 0.5)")
		brkCool    = flag.Duration("breaker-cooldown", 0, "open-state cooldown before a half-open probe (default 5s)")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.Get())
		return
	}
	pol := service.PolicyConfig{
		RateLimit: *rateLimit,
		RateBurst: *rateBurst,
		NoBreaker: *noBreaker,
		Breaker:   policy.BreakerConfig{ErrorRate: *brkErrRate, Cooldown: *brkCool},
	}
	if err := run(*addr, *workers, *queue, *cache, *storeDir, *drain, pol); err != nil {
		fmt.Fprintln(os.Stderr, "hcperf-serve:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queue, cache int, storeDir string, drain time.Duration, pol service.PolicyConfig) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	cfg := service.Config{Workers: workers, QueueSize: queue, CacheSize: cache, Policy: pol}
	if storeDir != "" {
		// A store that cannot be opened (read-only volume, path under a
		// file) costs persistence, not availability: log and serve
		// memory-only.
		d, err := store.OpenDisk(storeDir, 0, nil)
		if err != nil {
			log.Printf("hcperf-serve: %v; continuing memory-only", err)
		} else {
			cfg.Disk = d
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	return serve(ctx, ln, cfg, drain)
}

// serve runs the service on ln until ctx is cancelled (SIGINT/SIGTERM in
// production, the test harness in tests), then drains within the deadline:
// the listener stops accepting first so no new submissions race the drain,
// then queued and in-flight runs get the remaining budget.
func serve(ctx context.Context, ln net.Listener, cfg service.Config, drain time.Duration) error {
	srv := service.New(cfg)
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		storeInfo := "memory-only"
		if cfg.Disk != nil {
			storeInfo = cfg.Disk.Dir()
		}
		log.Printf("hcperf-serve %s listening on %s (workers=%d queue=%d cache=%d store=%s)",
			version.Get(), ln.Addr(), cfg.Workers, cfg.QueueSize, cfg.CacheSize, storeInfo)
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("signal received, draining (deadline %s)", drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Manager().Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain deadline exceeded: %w", err)
	}
	log.Printf("drained cleanly")
	return nil
}
