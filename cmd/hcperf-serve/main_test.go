package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hcperf/internal/service"
	"hcperf/internal/store"
)

// TestServeLifecycle boots the binary's serve loop on an ephemeral port,
// exercises the cached-vs-uncached submit path and the operational
// endpoints, then cancels the context (the signal path) and requires a
// clean drain.
func TestServeLifecycle(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- serve(ctx, ln, service.Config{Workers: 2, QueueSize: 8}, 30*time.Second)
	}()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", code)
	}
	if code, body := get("/v1/version"); code != http.StatusOK || !strings.Contains(body, "hcperf") {
		t.Fatalf("version = (%d, %q)", code, body)
	}

	// Submit the fast toy experiment twice: first run executes, the
	// second is answered from the content-addressed cache.
	post := func() (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(base+"/v1/runs", "application/json",
			strings.NewReader(`{"experiment": "fig5"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, m
	}
	code, first := post()
	if code != http.StatusAccepted {
		t.Fatalf("first POST = %d, want 202", code)
	}
	id, _ := first["id"].(string)
	if id == "" {
		t.Fatalf("first POST body %v carries no id", first)
	}
	// Poll until terminal; fig5 is microseconds of work, so this loop
	// turns over almost immediately.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := get("/v1/runs/" + id)
		if code != http.StatusOK {
			t.Fatalf("GET run = %d, body %s", code, body)
		}
		var st struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "cancelled" {
			t.Fatalf("run ended %s: %s", st.State, body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("run still %s after deadline", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	code, second := post()
	if code != http.StatusOK || second["cached"] != true {
		t.Fatalf("second POST = (%d, %v), want 200 cached", code, second)
	}
	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "hcperf_cache_hits_total 1") {
		t.Fatalf("metrics = (%d), want cache hit visible:\n%s", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("pprof = %d, want 200", code)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v, want clean drain", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not drain")
	}

	// The listener is gone after drain.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still answering after drain")
	}
}

// TestServeStorePersistsAcrossRestart boots the serve loop twice over one
// -store directory: a run completed by the first process must be answered
// by the second from the disk tier (X-HCPerf-Cache: disk) without
// re-executing — the binary-level restart-persistence contract the CI
// smoke also exercises end to end.
func TestServeStorePersistsAcrossRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	openStore := func() *store.Disk {
		t.Helper()
		d, err := store.OpenDisk(dir, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	boot := func(d *store.Disk) (string, context.CancelFunc, chan error) {
		t.Helper()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			done <- serve(ctx, ln, service.Config{Workers: 1, QueueSize: 8, Disk: d}, 30*time.Second)
		}()
		return "http://" + ln.Addr().String(), cancel, done
	}
	post := func(base string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(base+"/v1/runs", "application/json",
			strings.NewReader(`{"experiment": "fig5"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp, m
	}

	base, cancel, done := boot(openStore())
	resp, body := post(base)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST = %d, want 202", resp.StatusCode)
	}
	id, _ := body["id"].(string)
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(base + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State string `json:"state"`
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if st.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run still %s after deadline", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("first serve drain: %v", err)
	}

	// The restarted process answers the identical submission from disk.
	base2, cancel2, done2 := boot(openStore())
	resp2, body2 := post(base2)
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-HCPerf-Cache") != "disk" {
		t.Fatalf("restarted POST = (%d, X-HCPerf-Cache %q), want 200/disk",
			resp2.StatusCode, resp2.Header.Get("X-HCPerf-Cache"))
	}
	if body2["cached"] != true || body2["cache"] != "disk" {
		t.Fatalf("restarted body = %v, want cached:true cache:disk", body2)
	}
	cancel2()
	if err := <-done2; err != nil {
		t.Fatalf("second serve drain: %v", err)
	}
}

// TestServeZeroDrainTerminates pins the drain-deadline edge: even with a
// zero drain budget (the shutdown contexts are born expired) the serve
// loop must still terminate rather than hang.
func TestServeZeroDrainTerminates(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- serve(ctx, ln, service.Config{Workers: 1, QueueSize: 1}, 0)
	}()
	base := "http://" + ln.Addr().String()
	if _, err := http.Get(base + "/healthz"); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	cancel()
	select {
	case <-done:
		// Nil (the idle manager drained before the expired context was
		// consulted) and a deadline error are both acceptable; only a
		// hang is a bug.
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not terminate under a zero drain budget")
	}
}
