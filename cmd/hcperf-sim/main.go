// Command hcperf-sim runs one HCPerf driving scenario under one scheduling
// scheme and reports the driving-performance metrics, optionally exporting
// every recorded time series as CSV.
//
// Usage:
//
//	hcperf-sim -scenario carfollow -scheme hcperf [-seed 1] [-duration 90] [-csv run.csv]
//	hcperf-sim -scenario carfollow -trace out.json     # Chrome-trace job timeline
//	hcperf-sim -scenario carfollow -trace out.csv      # same events as flat CSV
//	hcperf-sim -scenario lanekeep  -scheme apollo
//	hcperf-sim -scenario motivation -scheme apollo
//	hcperf-sim -scenario hardware  -scheme edf
//	hcperf-sim -scenario jam       -scheme hcperf
//	hcperf-sim -scenario combined  -scheme hcperf      # dual-control graph
//	hcperf-sim -spec examples/specs/fusion-overload.json  # declarative spec
//	hcperf-sim -store results/ -scenario carfollow     # persist + replay results
//	hcperf-sim -mode rt -duration 5 -scheme hcperf     # wall-clock executor
//	hcperf-sim -mode suite -parallel 4                 # full experiment suite
//	hcperf-sim -mode suite -replicas 8                 # batched multi-seed sweeps
//	hcperf-sim -mode tune -budget 32 -parallel 0       # coordinator policy search
//	hcperf-sim -mode tune -spec tpl.json -strategy grid -report tune.json
//
// Every deterministic mode (sim, spec, suite, tune) goes through the
// internal/run pipeline: the request is normalized and content-addressed,
// and with -store the result persists to a disk store shared byte-for-byte
// with hcperf-serve -store — a CLI run pre-warms the server's cache and a
// server-computed result replays here without recomputation.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"hcperf/internal/dag"
	"hcperf/internal/experiment"
	"hcperf/internal/lifecycle"
	"hcperf/internal/rt"
	runpkg "hcperf/internal/run"
	"hcperf/internal/runner"
	"hcperf/internal/scenario"
	"hcperf/internal/sched"
	"hcperf/internal/search"
	"hcperf/internal/simtime"
	"hcperf/internal/store"
	"hcperf/internal/version"
)

func main() {
	var (
		scenarioName = flag.String("scenario", "carfollow", "carfollow | lanekeep | motivation | hardware | jam | combined")
		schemeName   = flag.String("scheme", "hcperf", "hpf | edf | edfvd | apollo | hcperf | hcperf-internal")
		seed         = flag.Int64("seed", 1, "random seed")
		duration     = flag.Float64("duration", 0, "override scenario duration (seconds; 0 = default)")
		csvPath      = flag.String("csv", "", "write recorded series to this CSV file")
		tracePath    = flag.String("trace", "", "write per-job lifecycle events to this file (.csv = CSV, else Chrome trace JSON)")
		specPath     = flag.String("spec", "", "run a declarative scenario spec from this JSON file (overrides -scenario/-scheme/-seed/-duration)")
		storeDir     = flag.String("store", "", "persist results to this disk store directory (shared with hcperf-serve -store)")
		mode         = flag.String("mode", "sim", "sim (discrete-event) | rt (wall clock) | suite (full experiment suite) | tune (coordinator policy search)")
		parallel     = flag.Int("parallel", 1, "suite/tune worker count: N>=1 workers, 0 = GOMAXPROCS")
		replicas     = flag.Int("replicas", 1, "suite sweep batch width: K>=2 advances K multi-seed replicas in lockstep per shared event queue")
		budget       = flag.Int("budget", 0, "tune candidate-evaluation budget (0 = default)")
		strategy     = flag.String("strategy", "", "tune search strategy: evolve | grid | random (default evolve)")
		tuneSeeds    = flag.Int("seeds", 0, "tune replicas per candidate (0 = default)")
		objectives   = flag.String("objectives", "", "tune objectives, comma-separated (default all: "+strings.Join(search.ObjectiveNames(), ",")+")")
		reportPath   = flag.String("report", "", "tune: write the full search report JSON to this file")
		showVersion  = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.Get())
		return
	}
	opts := options{
		Scenario: *scenarioName, Scheme: *schemeName,
		Seed: *seed, Duration: *duration,
		CSVPath: *csvPath, TracePath: *tracePath, SpecPath: *specPath,
		StoreDir: *storeDir, Mode: *mode,
		Parallel: *parallel, Replicas: *replicas,
		Budget: *budget, Strategy: *strategy, TuneSeeds: *tuneSeeds,
		Objectives: *objectives, ReportPath: *reportPath,
	}
	var err error
	if *mode == "tune" {
		err = runTune(opts)
	} else {
		err = run(opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hcperf-sim:", err)
		os.Exit(1)
	}
}

// options carries one CLI invocation's resolved flags.
type options struct {
	Scenario, Scheme   string
	Seed               int64
	Duration           float64
	CSVPath, TracePath string
	SpecPath           string
	StoreDir           string
	Mode               string
	Parallel, Replicas int

	// Tune-mode knobs.
	Budget, TuneSeeds    int
	Strategy, Objectives string
	ReportPath           string

	// Metrics receives the store tier counters; nil gets a private set.
	// Tests inject one to observe disk hits and misses.
	Metrics *store.Metrics
}

// newPipeline builds this invocation's run pipeline: no memory tier (a CLI
// process holds no resident results) and, when -store is set, the disk tier
// shared byte-for-byte with hcperf-serve. An unusable store directory — the
// read-only-volume failure mode — degrades to no persistence with a warning
// rather than failing the run.
func newPipeline(opts options) *runpkg.Pipeline {
	m := opts.Metrics
	if m == nil {
		m = &store.Metrics{}
	}
	p := &runpkg.Pipeline{Metrics: m}
	if opts.StoreDir != "" {
		d, err := store.OpenDisk(opts.StoreDir, 0, m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hcperf-sim: %v; continuing without persistence\n", err)
		} else {
			p.Disk = d
		}
	}
	return p
}

// runTune performs a coordinator policy search through the run pipeline:
// the spec (or -scenario shorthand) is the template every candidate tuning
// is stamped onto, and the result is the canonical Pareto front plus the
// per-objective best versus the paper defaults. With -store an identical
// search replays from disk instead of re-evaluating its candidate budget.
func runTune(opts options) error {
	var spec scenario.Spec
	if opts.SpecPath != "" {
		f, err := os.Open(opts.SpecPath)
		if err != nil {
			return err
		}
		var derr error
		spec, derr = scenario.DecodeSpec(f)
		f.Close()
		if derr != nil {
			return fmt.Errorf("%s: %w", opts.SpecPath, derr)
		}
	} else {
		spec = scenario.Spec{Scenario: opts.Scenario, Duration: opts.Duration}
	}
	rq := search.Request{
		Spec:     spec,
		Strategy: opts.Strategy,
		Budget:   opts.Budget,
		Seeds:    opts.TuneSeeds,
		Seed:     opts.Seed,
	}
	if opts.Objectives != "" {
		rq.Objectives = strings.Split(opts.Objectives, ",")
	}
	norm, err := rq.Normalize()
	if err != nil {
		return err
	}
	fmt.Printf("tune: %s template, strategy=%s budget=%d seeds=%d seed=%d\n",
		norm.Spec.Scenario, norm.Strategy, norm.Budget, norm.Seeds, norm.Seed)
	start := time.Now()
	ctx := runpkg.WithProgress(context.Background(), func(p search.Progress) {
		fmt.Printf("tune: gen %d done, %d/%d candidates evaluated\n", p.Generations, p.Evaluated, norm.Budget)
	})
	ctx = runpkg.WithParallelism(ctx, opts.Parallel)
	p := newPipeline(opts)
	res, tier, _, err := p.Run(ctx, runpkg.Request{Optimize: &norm})
	if err != nil {
		return err
	}
	rep := res.Optimize
	if rep == nil {
		return fmt.Errorf("tune: result carries no search report")
	}
	if tier == store.TierDisk {
		fmt.Printf("tune: result replayed from %s (no candidates re-evaluated)\n", opts.StoreDir)
	}
	table := &experiment.Report{
		ID:     "tune",
		Title:  fmt.Sprintf("Coordinator policy search (%s): baselines and Pareto front", rep.Strategy),
		Header: rep.Header(),
		Rows:   rep.Rows(),
	}
	if err := table.WriteText(os.Stdout); err != nil {
		return err
	}
	best := &experiment.Report{
		ID:     "tune-best",
		Title:  "Best candidate per objective vs paper defaults",
		Header: []string{"objective", "best", "default", "vs default", "candidate"},
		Rows:   rep.BestRows(),
	}
	if err := best.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("tune: %d candidates, %d generations, %.2fs\n", rep.Evaluated, rep.Generations, time.Since(start).Seconds())
	if opts.ReportPath != "" {
		b, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(opts.ReportPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("tune: report written to %s\n", opts.ReportPath)
	}
	return nil
}

// parseScheme resolves a scheme name via the shared scenario parser.
func parseScheme(name string) (scenario.Scheme, error) {
	return scenario.ParseScheme(name)
}

// traceCapacity bounds the in-memory lifecycle event buffer for rt mode: at
// the 23-task graph's aggregate job rate a full-length run fits comfortably,
// and overflow drops oldest-first with a warning rather than growing
// without bound. (Pipeline runs use internal/run's identical bound.)
const traceCapacity = 1 << 20

// newTraceRing returns the lifecycle collector for rt-mode -trace, or nil
// when the flag is unset.
func newTraceRing(tracePath string) (*lifecycle.Ring, error) {
	if tracePath == "" {
		return nil, nil
	}
	return lifecycle.NewRing(traceCapacity)
}

// writeTraceEvents exports collected lifecycle events: .csv gets the flat
// CSV schema, anything else the Chrome trace-event JSON loadable in
// chrome://tracing or Perfetto.
func writeTraceEvents(tracePath string, events []lifecycle.Event) error {
	if tracePath == "" {
		return nil
	}
	f, err := os.Create(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(tracePath, ".csv") {
		err = lifecycle.WriteCSV(f, events)
	} else {
		err = lifecycle.WriteChromeTrace(f, events)
	}
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%d lifecycle events written to %s\n", len(events), tracePath)
	return nil
}

func run(opts options) error {
	if opts.Mode == "suite" || opts.Mode == "experiments" {
		if opts.TracePath != "" {
			return fmt.Errorf("-trace is not supported in suite mode")
		}
		if opts.SpecPath != "" {
			return fmt.Errorf("-spec is not supported in suite mode")
		}
		return runSuite(opts)
	}
	if opts.Replicas > 1 {
		return fmt.Errorf("-replicas applies to suite mode only")
	}
	if opts.Mode == "rt" {
		if opts.SpecPath != "" {
			return fmt.Errorf("-spec is not supported in rt mode")
		}
		if opts.StoreDir != "" {
			return fmt.Errorf("-store is not supported in rt mode (wall-clock runs are not content-addressable)")
		}
		scheme, err := parseScheme(opts.Scheme)
		if err != nil {
			return err
		}
		ring, err := newTraceRing(opts.TracePath)
		if err != nil {
			return err
		}
		if err := runWallClock(scheme, opts.Seed, opts.Duration, ring); err != nil {
			return err
		}
		if ring == nil {
			return nil
		}
		if n := ring.Dropped(); n > 0 {
			fmt.Printf("trace: %d oldest events dropped (buffer capacity %d)\n", n, traceCapacity)
		}
		return writeTraceEvents(opts.TracePath, ring.Events())
	}
	if opts.Mode != "sim" {
		return fmt.Errorf("unknown mode %q", opts.Mode)
	}

	// Every sim run goes through the run pipeline: the CLI flags are just
	// shorthand for a minimal request, and -spec supplies a full
	// declarative spec from disk. fleet-aware execution, normalization,
	// content addressing and the optional disk store are all the
	// pipeline's.
	req := runpkg.Request{Trace: opts.TracePath != ""}
	if opts.SpecPath != "" {
		f, err := os.Open(opts.SpecPath)
		if err != nil {
			return err
		}
		spec, derr := scenario.DecodeSpec(f)
		f.Close()
		if derr != nil {
			return fmt.Errorf("%s: %w", opts.SpecPath, derr)
		}
		req.Spec = &spec
	} else {
		req.Scenario = opts.Scenario
		req.Scheme = opts.Scheme
		req.Seed = opts.Seed
		req.Duration = opts.Duration
	}

	p := newPipeline(opts)
	res, tier, digest, err := p.Run(context.Background(), req)
	if err != nil {
		return err
	}
	if tier == store.TierDisk {
		fmt.Printf("replayed from store %s (digest %s)\n", opts.StoreDir, digest[:12])
	}
	rep := res.Report
	fmt.Println(rep.Title)
	width := 0
	for _, row := range rep.Rows {
		if len(row[0]) > width {
			width = len(row[0])
		}
	}
	for _, row := range rep.Rows {
		fmt.Printf("%-*s  %s\n", width, row[0], row[1])
	}
	for _, note := range rep.Notes {
		fmt.Println(note)
	}

	if opts.CSVPath != "" && rep.Series != nil {
		f, err := os.Create(opts.CSVPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.Series.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("series written to %s\n", opts.CSVPath)
	}
	return writeTraceEvents(opts.TracePath, res.Events)
}

// runSuite reproduces the full evaluation — every registered experiment —
// through the run pipeline. Experiments fan out across the worker pool and
// each experiment's internal scheme/seed sweeps use the same worker count,
// so -parallel N engages the whole machine while the reports stay in
// deterministic registry order (and, by the determinism harness, stay
// byte-identical to a serial run). With -store each report is
// content-addressed, so a repeated suite — or one warmed by hcperf-serve —
// replays finished experiments from disk instead of recomputing them.
func runSuite(opts options) error {
	experiment.SetParallelism(opts.Parallel)
	experiment.SetReplicas(opts.Replicas)
	list := experiment.List()
	fmt.Printf("suite: %d experiments (%s..%s)\n", len(list), list[0].ID, list[len(list)-1].ID)
	start := time.Now()
	p := newPipeline(opts)
	reports, err := runner.Map(context.Background(), opts.Parallel, experiment.IDs(),
		func(ctx context.Context, id string) (*experiment.Report, error) {
			res, _, _, err := p.Run(ctx, runpkg.Request{Experiment: id, Seed: opts.Seed})
			if err != nil {
				return nil, fmt.Errorf("%s: %w", id, err)
			}
			return res.Report, nil
		})
	if err != nil {
		return fmt.Errorf("experiment: %w", err)
	}
	if err := experiment.WriteReports(os.Stdout, reports); err != nil {
		return err
	}
	if hits := p.Metrics.DiskHits.Load(); hits > 0 {
		fmt.Printf("suite: %d of %d reports replayed from %s\n", hits, len(reports), opts.StoreDir)
	}
	fmt.Printf("suite: %d experiments, seed %d, parallel=%d, %.2fs\n",
		len(reports), opts.Seed, opts.Parallel, time.Since(start).Seconds())
	return nil
}

// runWallClock demonstrates the real-time executor: the 23-task graph on
// wall clock with a synthetic oscillating tracking error driving the HCPerf
// coordinators.
func runWallClock(scheme scenario.Scheme, seed int64, duration float64, tracer *lifecycle.Ring) error {
	if duration <= 0 {
		duration = 5
	}
	graph, err := dag.ADGraph23()
	if err != nil {
		return err
	}
	var scheduler sched.Scheduler
	var trackErr func(simtime.Time) float64
	switch scheme {
	case scenario.SchemeHCPerf, scenario.SchemeHCPerfInternal:
		scheduler = sched.NewDynamic(0)
		trackErr = func(t simtime.Time) float64 {
			return math.Abs(1.5 * math.Sin(2*math.Pi*float64(t)/7))
		}
	case scenario.SchemeHPF:
		scheduler = sched.HPF{}
	case scenario.SchemeEDF:
		scheduler = sched.EDF{}
	case scenario.SchemeEDFVD:
		scheduler = sched.NewEDFVD(scenario.EDFVDScale)
	case scenario.SchemeApollo:
		scheduler = sched.Apollo{}
	default:
		return fmt.Errorf("unsupported scheme %v", scheme)
	}
	cfg := rt.Config{
		Graph:           graph,
		Scheduler:       scheduler,
		NumProcs:        2,
		Seed:            seed,
		TrackingError:   trackErr,
		DisableExternal: scheme == scenario.SchemeHCPerfInternal,
		MaxDataAge:      scenario.DefaultMaxDataAge,
	}
	if tracer != nil {
		cfg.Tracer = tracer
	}
	ex, err := rt.New(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("wall-clock executor: scheme=%v M=2, running %.0fs...\n", scheme, duration)
	if err := ex.Start(); err != nil {
		return err
	}
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	deadline := time.Now().Add(time.Duration(duration * float64(time.Second)))
	for time.Now().Before(deadline) {
		<-ticker.C
		st := ex.Stats()
		fmt.Printf("t=%4.0fs released=%d completed=%d missed=%d cmds=%d miss=%.3f\n",
			float64(ex.Elapsed()), st.Released, st.Completed, st.Missed,
			st.ControlCommands, st.MissRatio())
	}
	if err := ex.Stop(); err != nil {
		return err
	}
	st := ex.Stats()
	fmt.Printf("final: commands=%d miss=%.4f e2e-miss=%.4f\n",
		st.ControlCommands, st.MissRatio(), st.E2EMissRatio())
	return nil
}
