// Command hcperf-sim runs one HCPerf driving scenario under one scheduling
// scheme and reports the driving-performance metrics, optionally exporting
// every recorded time series as CSV.
//
// Usage:
//
//	hcperf-sim -scenario carfollow -scheme hcperf [-seed 1] [-duration 90] [-csv run.csv]
//	hcperf-sim -scenario carfollow -trace out.json     # Chrome-trace job timeline
//	hcperf-sim -scenario carfollow -trace out.csv      # same events as flat CSV
//	hcperf-sim -scenario lanekeep  -scheme apollo
//	hcperf-sim -scenario motivation -scheme apollo
//	hcperf-sim -scenario hardware  -scheme edf
//	hcperf-sim -scenario jam       -scheme hcperf
//	hcperf-sim -scenario combined  -scheme hcperf      # dual-control graph
//	hcperf-sim -spec examples/specs/fusion-overload.json  # declarative spec
//	hcperf-sim -mode rt -duration 5 -scheme hcperf     # wall-clock executor
//	hcperf-sim -mode suite -parallel 4                 # full experiment suite
//	hcperf-sim -mode suite -replicas 8                 # batched multi-seed sweeps
//	hcperf-sim -mode tune -budget 32 -parallel 0       # coordinator policy search
//	hcperf-sim -mode tune -spec tpl.json -strategy grid -report tune.json
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"hcperf/internal/dag"
	"hcperf/internal/experiment"
	"hcperf/internal/fleet"
	"hcperf/internal/lifecycle"
	"hcperf/internal/rt"
	"hcperf/internal/scenario"
	"hcperf/internal/sched"
	"hcperf/internal/search"
	"hcperf/internal/simtime"
	"hcperf/internal/version"
)

func main() {
	var (
		scenarioName = flag.String("scenario", "carfollow", "carfollow | lanekeep | motivation | hardware | jam | combined")
		schemeName   = flag.String("scheme", "hcperf", "hpf | edf | edfvd | apollo | hcperf | hcperf-internal")
		seed         = flag.Int64("seed", 1, "random seed")
		duration     = flag.Float64("duration", 0, "override scenario duration (seconds; 0 = default)")
		csvPath      = flag.String("csv", "", "write recorded series to this CSV file")
		tracePath    = flag.String("trace", "", "write per-job lifecycle events to this file (.csv = CSV, else Chrome trace JSON)")
		specPath     = flag.String("spec", "", "run a declarative scenario spec from this JSON file (overrides -scenario/-scheme/-seed/-duration)")
		mode         = flag.String("mode", "sim", "sim (discrete-event) | rt (wall clock) | suite (full experiment suite) | tune (coordinator policy search)")
		parallel     = flag.Int("parallel", 1, "suite/tune worker count: N>=1 workers, 0 = GOMAXPROCS")
		replicas     = flag.Int("replicas", 1, "suite sweep batch width: K>=2 advances K multi-seed replicas in lockstep per shared event queue")
		budget       = flag.Int("budget", 0, "tune candidate-evaluation budget (0 = default)")
		strategy     = flag.String("strategy", "", "tune search strategy: evolve | grid | random (default evolve)")
		tuneSeeds    = flag.Int("seeds", 0, "tune replicas per candidate (0 = default)")
		objectives   = flag.String("objectives", "", "tune objectives, comma-separated (default all: "+strings.Join(search.ObjectiveNames(), ",")+")")
		reportPath   = flag.String("report", "", "tune: write the full search report JSON to this file")
		showVersion  = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.Get())
		return
	}
	if *mode == "tune" {
		if err := runTune(*specPath, *scenarioName, *seed, *duration, *strategy, *objectives, *budget, *tuneSeeds, *parallel, *reportPath); err != nil {
			fmt.Fprintln(os.Stderr, "hcperf-sim:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*scenarioName, *schemeName, *seed, *duration, *csvPath, *tracePath, *specPath, *mode, *parallel, *replicas); err != nil {
		fmt.Fprintln(os.Stderr, "hcperf-sim:", err)
		os.Exit(1)
	}
}

// runTune performs a coordinator policy search: the spec (or -scenario
// shorthand) is the template every candidate tuning is stamped onto, and
// the result is the canonical Pareto front plus the per-objective best
// versus the paper defaults.
func runTune(specPath, scenarioName string, seed int64, duration float64, strategy, objectives string, budget, seeds, parallel int, reportPath string) error {
	var spec scenario.Spec
	if specPath != "" {
		f, err := os.Open(specPath)
		if err != nil {
			return err
		}
		var derr error
		spec, derr = scenario.DecodeSpec(f)
		f.Close()
		if derr != nil {
			return fmt.Errorf("%s: %w", specPath, derr)
		}
	} else {
		spec = scenario.Spec{Scenario: scenarioName, Duration: duration}
	}
	rq := search.Request{
		Spec:     spec,
		Strategy: strategy,
		Budget:   budget,
		Seeds:    seeds,
		Seed:     seed,
	}
	if objectives != "" {
		rq.Objectives = strings.Split(objectives, ",")
	}
	norm, err := rq.Normalize()
	if err != nil {
		return err
	}
	fmt.Printf("tune: %s template, strategy=%s budget=%d seeds=%d seed=%d\n",
		norm.Spec.Scenario, norm.Strategy, norm.Budget, norm.Seeds, norm.Seed)
	start := time.Now()
	rep, err := norm.Run(context.Background(), parallel, func(p search.Progress) {
		fmt.Printf("tune: gen %d done, %d/%d candidates evaluated\n", p.Generations, p.Evaluated, norm.Budget)
	})
	if err != nil {
		return err
	}
	table := &experiment.Report{
		ID:     "tune",
		Title:  fmt.Sprintf("Coordinator policy search (%s): baselines and Pareto front", rep.Strategy),
		Header: rep.Header(),
		Rows:   rep.Rows(),
	}
	if err := table.WriteText(os.Stdout); err != nil {
		return err
	}
	best := &experiment.Report{
		ID:     "tune-best",
		Title:  "Best candidate per objective vs paper defaults",
		Header: []string{"objective", "best", "default", "vs default", "candidate"},
		Rows:   rep.BestRows(),
	}
	if err := best.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("tune: %d candidates, %d generations, %.2fs\n", rep.Evaluated, rep.Generations, time.Since(start).Seconds())
	if reportPath != "" {
		b, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(reportPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("tune: report written to %s\n", reportPath)
	}
	return nil
}

// parseScheme resolves a scheme name via the shared scenario parser.
func parseScheme(name string) (scenario.Scheme, error) {
	return scenario.ParseScheme(name)
}

// traceCapacity bounds the in-memory lifecycle event buffer: at the
// 23-task graph's aggregate job rate a full-length run fits comfortably,
// and overflow drops oldest-first with a warning rather than growing
// without bound.
const traceCapacity = 1 << 20

// newTraceRing returns the lifecycle collector for -trace, or nil when the
// flag is unset.
func newTraceRing(tracePath string) (*lifecycle.Ring, error) {
	if tracePath == "" {
		return nil, nil
	}
	return lifecycle.NewRing(traceCapacity)
}

// writeTrace exports the collected lifecycle events: .csv gets the flat CSV
// schema, anything else the Chrome trace-event JSON loadable in
// chrome://tracing or Perfetto.
func writeTrace(tracePath string, ring *lifecycle.Ring) error {
	if ring == nil {
		return nil
	}
	f, err := os.Create(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	events := ring.Events()
	if strings.HasSuffix(tracePath, ".csv") {
		err = lifecycle.WriteCSV(f, events)
	} else {
		err = lifecycle.WriteChromeTrace(f, events)
	}
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if n := ring.Dropped(); n > 0 {
		fmt.Printf("trace: %d oldest events dropped (buffer capacity %d)\n", n, traceCapacity)
	}
	fmt.Printf("%d lifecycle events written to %s\n", len(events), tracePath)
	return nil
}

func run(scenarioName, schemeName string, seed int64, duration float64, csvPath, tracePath, specPath, mode string, parallel, replicas int) error {
	if mode == "suite" || mode == "experiments" {
		if tracePath != "" {
			return fmt.Errorf("-trace is not supported in suite mode")
		}
		if specPath != "" {
			return fmt.Errorf("-spec is not supported in suite mode")
		}
		return runSuite(seed, parallel, replicas)
	}
	if replicas > 1 {
		return fmt.Errorf("-replicas applies to suite mode only")
	}
	ring, err := newTraceRing(tracePath)
	if err != nil {
		return err
	}
	if mode == "rt" {
		if specPath != "" {
			return fmt.Errorf("-spec is not supported in rt mode")
		}
		scheme, err := parseScheme(schemeName)
		if err != nil {
			return err
		}
		if err := runWallClock(scheme, seed, duration, ring); err != nil {
			return err
		}
		return writeTrace(tracePath, ring)
	}
	if mode != "sim" {
		return fmt.Errorf("unknown mode %q", mode)
	}
	var tracer lifecycle.Tracer
	if ring != nil {
		tracer = ring
	}

	// Every sim run goes through the declarative spec path: the CLI flags
	// are just shorthand for a minimal spec, and -spec supplies a full one
	// from disk.
	var spec scenario.Spec
	if specPath != "" {
		f, err := os.Open(specPath)
		if err != nil {
			return err
		}
		spec, err = scenario.DecodeSpec(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", specPath, err)
		}
	} else {
		spec = scenario.Spec{Scenario: scenarioName, Scheme: schemeName, Seed: seed, Duration: duration}
	}
	// fleet.RunSpec is fleet-aware: specs with a fleet block fan out to N
	// vehicles on one shared clock; all others take the single-vehicle
	// path unchanged.
	r, err := fleet.RunSpec(spec, tracer)
	if err != nil {
		return err
	}
	fmt.Println(r.Title)
	width := 0
	for _, row := range r.Rows {
		if len(row[0]) > width {
			width = len(row[0])
		}
	}
	for _, row := range r.Rows {
		fmt.Printf("%-*s  %s\n", width, row[0], row[1])
	}

	if csvPath != "" && r.Rec != nil {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := r.Rec.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("series written to %s\n", csvPath)
	}
	return writeTrace(tracePath, ring)
}

// runSuite reproduces the full evaluation — every registered experiment —
// through the worker-pool runner. Experiments fan out across the pool and
// each experiment's internal scheme/seed sweeps use the same worker count,
// so -parallel N engages the whole machine while the reports stay in
// deterministic registry order (and, by the determinism harness, stay
// byte-identical to a serial run).
func runSuite(seed int64, parallel, replicas int) error {
	experiment.SetParallelism(parallel)
	experiment.SetReplicas(replicas)
	list := experiment.List()
	fmt.Printf("suite: %d experiments (%s..%s)\n", len(list), list[0].ID, list[len(list)-1].ID)
	start := time.Now()
	reports, err := experiment.RunAll(context.Background(), seed, parallel)
	if err != nil {
		return err
	}
	if err := experiment.WriteReports(os.Stdout, reports); err != nil {
		return err
	}
	fmt.Printf("suite: %d experiments, seed %d, parallel=%d, %.2fs\n",
		len(reports), seed, parallel, time.Since(start).Seconds())
	return nil
}

// runWallClock demonstrates the real-time executor: the 23-task graph on
// wall clock with a synthetic oscillating tracking error driving the HCPerf
// coordinators.
func runWallClock(scheme scenario.Scheme, seed int64, duration float64, tracer *lifecycle.Ring) error {
	if duration <= 0 {
		duration = 5
	}
	graph, err := dag.ADGraph23()
	if err != nil {
		return err
	}
	var scheduler sched.Scheduler
	var trackErr func(simtime.Time) float64
	switch scheme {
	case scenario.SchemeHCPerf, scenario.SchemeHCPerfInternal:
		scheduler = sched.NewDynamic(0)
		trackErr = func(t simtime.Time) float64 {
			return math.Abs(1.5 * math.Sin(2*math.Pi*float64(t)/7))
		}
	case scenario.SchemeHPF:
		scheduler = sched.HPF{}
	case scenario.SchemeEDF:
		scheduler = sched.EDF{}
	case scenario.SchemeEDFVD:
		scheduler = sched.NewEDFVD(scenario.EDFVDScale)
	case scenario.SchemeApollo:
		scheduler = sched.Apollo{}
	default:
		return fmt.Errorf("unsupported scheme %v", scheme)
	}
	cfg := rt.Config{
		Graph:           graph,
		Scheduler:       scheduler,
		NumProcs:        2,
		Seed:            seed,
		TrackingError:   trackErr,
		DisableExternal: scheme == scenario.SchemeHCPerfInternal,
		MaxDataAge:      scenario.DefaultMaxDataAge,
	}
	if tracer != nil {
		cfg.Tracer = tracer
	}
	ex, err := rt.New(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("wall-clock executor: scheme=%v M=2, running %.0fs...\n", scheme, duration)
	if err := ex.Start(); err != nil {
		return err
	}
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	deadline := time.Now().Add(time.Duration(duration * float64(time.Second)))
	for time.Now().Before(deadline) {
		<-ticker.C
		st := ex.Stats()
		fmt.Printf("t=%4.0fs released=%d completed=%d missed=%d cmds=%d miss=%.3f\n",
			float64(ex.Elapsed()), st.Released, st.Completed, st.Missed,
			st.ControlCommands, st.MissRatio())
	}
	if err := ex.Stop(); err != nil {
		return err
	}
	st := ex.Stats()
	fmt.Printf("final: commands=%d miss=%.4f e2e-miss=%.4f\n",
		st.ControlCommands, st.MissRatio(), st.E2EMissRatio())
	return nil
}
