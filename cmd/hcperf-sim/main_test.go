package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hcperf/internal/scenario"
)

func TestParseScheme(t *testing.T) {
	tests := []struct {
		give    string
		want    scenario.Scheme
		wantErr bool
	}{
		{give: "hpf", want: scenario.SchemeHPF},
		{give: "edf", want: scenario.SchemeEDF},
		{give: "edfvd", want: scenario.SchemeEDFVD},
		{give: "edf-vd", want: scenario.SchemeEDFVD},
		{give: "apollo", want: scenario.SchemeApollo},
		{give: "hcperf", want: scenario.SchemeHCPerf},
		{give: "hcperf-internal", want: scenario.SchemeHCPerfInternal},
		{give: "bogus", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseScheme(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseScheme(%q) err = %v, wantErr %v", tt.give, err, tt.wantErr)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("parseScheme(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestRunScenariosShort(t *testing.T) {
	for _, sc := range []string{"carfollow", "lanekeep", "motivation", "hardware", "jam", "combined"} {
		t.Run(sc, func(t *testing.T) {
			dur := 5.0
			if err := run(sc, "edf", 1, dur, "", "", "sim", 1); err != nil {
				t.Fatalf("run(%s): %v", sc, err)
			}
		})
	}
}

func TestRunWritesCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.csv")
	if err := run("carfollow", "hcperf", 1, 5, path, "", "sim", 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("CSV file is empty")
	}
}

func TestRunWritesChromeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	if err := run("carfollow", "hcperf", 1, 5, "", path, "sim", 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace output is not valid Chrome-trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	slices := 0
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" {
			slices++
		}
	}
	if slices == 0 {
		t.Error("trace has no duration slices")
	}
}

func TestRunWritesTraceCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.csv")
	if err := run("carfollow", "edf", 1, 5, "", path, "sim", 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 2 {
		t.Fatalf("trace CSV has %d lines, want header plus events", len(lines))
	}
	if !strings.HasPrefix(lines[0], "kind,task,cycle") {
		t.Errorf("unexpected trace CSV header %q", lines[0])
	}
}

func TestRunSuiteParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	// The suite must complete through the worker pool with multiple
	// workers; determinism vs the serial run is enforced separately in
	// internal/runner's harness tests.
	if err := run("", "", 1, 0, "", "", "suite", 4); err != nil {
		t.Fatalf("suite run: %v", err)
	}
}

func TestRunRejectsInvalid(t *testing.T) {
	if err := run("bogus", "edf", 1, 0, "", "", "sim", 1); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run("carfollow", "bogus", 1, 0, "", "", "sim", 1); err == nil {
		t.Error("unknown scheme accepted")
	}
	if err := run("carfollow", "edf", 1, 0, "", "", "bogus", 1); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestRunWallClockBriefly(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock run")
	}
	if err := run("carfollow", "hcperf", 1, 2, "", "", "rt", 1); err != nil {
		t.Fatal(err)
	}
	if err := run("carfollow", "edf", 1, 2, "", "", "rt", 1); err != nil {
		t.Fatal(err)
	}
}
