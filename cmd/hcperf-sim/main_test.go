package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hcperf/internal/scenario"
)

func TestParseScheme(t *testing.T) {
	tests := []struct {
		give    string
		want    scenario.Scheme
		wantErr bool
	}{
		{give: "hpf", want: scenario.SchemeHPF},
		{give: "edf", want: scenario.SchemeEDF},
		{give: "edfvd", want: scenario.SchemeEDFVD},
		{give: "edf-vd", want: scenario.SchemeEDFVD},
		{give: "apollo", want: scenario.SchemeApollo},
		{give: "hcperf", want: scenario.SchemeHCPerf},
		{give: "hcperf-internal", want: scenario.SchemeHCPerfInternal},
		{give: "bogus", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseScheme(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseScheme(%q) err = %v, wantErr %v", tt.give, err, tt.wantErr)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("parseScheme(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestRunScenariosShort(t *testing.T) {
	for _, sc := range []string{"carfollow", "lanekeep", "motivation", "hardware", "jam", "combined"} {
		t.Run(sc, func(t *testing.T) {
			dur := 5.0
			if err := run(sc, "edf", 1, dur, "", "", "", "sim", 1, 1); err != nil {
				t.Fatalf("run(%s): %v", sc, err)
			}
		})
	}
}

func TestRunWritesCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.csv")
	if err := run("carfollow", "hcperf", 1, 5, path, "", "", "sim", 1, 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("CSV file is empty")
	}
}

func TestRunWritesChromeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	if err := run("carfollow", "hcperf", 1, 5, "", path, "", "sim", 1, 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace output is not valid Chrome-trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	slices := 0
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" {
			slices++
		}
	}
	if slices == 0 {
		t.Error("trace has no duration slices")
	}
}

func TestRunWritesTraceCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.csv")
	if err := run("carfollow", "edf", 1, 5, "", path, "", "sim", 1, 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 2 {
		t.Fatalf("trace CSV has %d lines, want header plus events", len(lines))
	}
	if !strings.HasPrefix(lines[0], "kind,task,cycle") {
		t.Errorf("unexpected trace CSV header %q", lines[0])
	}
}

func TestRunSuiteParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	// The suite must complete through the worker pool with multiple
	// workers; determinism vs the serial run is enforced separately in
	// internal/runner's harness tests.
	if err := run("", "", 1, 0, "", "", "", "suite", 4, 1); err != nil {
		t.Fatalf("suite run: %v", err)
	}
}

func TestRunRejectsInvalid(t *testing.T) {
	if err := run("bogus", "edf", 1, 0, "", "", "", "sim", 1, 1); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run("carfollow", "bogus", 1, 0, "", "", "", "sim", 1, 1); err == nil {
		t.Error("unknown scheme accepted")
	}
	if err := run("carfollow", "edf", 1, 0, "", "", "", "bogus", 1, 1); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestRunSpecFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	spec := `{
		"name": "overload-probe",
		"scenario": "carfollow",
		"scheme": "edf",
		"duration": 5,
		"loads": [{"task": "sensor_fusion", "from": 1, "to": 3, "factor": 2.5}],
		"obstacles": [{"t": 0, "n": 10}, {"t": 2, "n": 30}]
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(t.TempDir(), "run.csv")
	if err := run("", "", 0, 0, csvPath, "", path, "sim", 1, 1); err != nil {
		t.Fatalf("run -spec: %v", err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("CSV file is empty")
	}
}

// TestRunFleetSpecFile drives a coupled fleet spec through the CLI: the
// run must succeed and export the fleet-level aggregate series as CSV.
func TestRunFleetSpecFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.json")
	spec := `{
		"name": "mini-platoon",
		"scenario": "carfollow",
		"scheme": "hcperf",
		"duration": 4,
		"fleet": {"n": 6, "coupling": "platoon", "spacing": 18}
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(t.TempDir(), "fleet.csv")
	if err := run("", "", 0, 0, csvPath, "", path, "sim", 1, 1); err != nil {
		t.Fatalf("run -spec fleet: %v", err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "fleet_err_p95") {
		t.Error("fleet CSV is missing the fleet_err_p95 aggregate series")
	}
}

func TestRunSpecFileRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	tests := []struct {
		name, spec, wantErr string
	}{
		{"missing file", "", "no such file"},
		{"unknown field", `{"scenario": "carfollow", "bogus": 1}`, "bogus"},
		{"unknown scenario", `{"scenario": "bogus"}`, "unknown scenario"},
		{"unknown task", `{"scenario": "carfollow", "loads": [{"task": "bogus", "from": 0, "to": 1, "factor": 2}]}`, "bogus"},
		{"negative duration", `{"scenario": "carfollow", "duration": -1}`, "duration"},
		{"fleet zero vehicles", `{"scenario": "carfollow", "fleet": {"n": 0}}`, "fleet.n"},
		{"fleet unknown coupling", `{"scenario": "carfollow", "fleet": {"n": 4, "coupling": "v2x"}}`, "unknown fleet coupling"},
		{"fleet negative spacing", `{"scenario": "carfollow", "fleet": {"n": 4, "coupling": "platoon", "spacing": -1}}`, "fleet.spacing"},
		{"fleet outside family", `{"scenario": "lanekeep", "fleet": {"n": 4}}`, "fleet block"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			path := filepath.Join(dir, "missing.json")
			if tt.spec != "" {
				path = filepath.Join(dir, "spec.json")
				if err := os.WriteFile(path, []byte(tt.spec), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			err := run("", "", 0, 0, "", "", path, "sim", 1, 1)
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("error %q does not mention %q", err, tt.wantErr)
			}
		})
	}
}

func TestRunSpecRejectedOutsideSimMode(t *testing.T) {
	for _, mode := range []string{"suite", "rt"} {
		if err := run("", "", 0, 0, "", "", "spec.json", mode, 1, 1); err == nil {
			t.Errorf("-spec accepted in %s mode", mode)
		}
	}
}

func TestRunWallClockBriefly(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock run")
	}
	if err := run("carfollow", "hcperf", 1, 2, "", "", "", "rt", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := run("carfollow", "edf", 1, 2, "", "", "", "rt", 1, 1); err != nil {
		t.Fatal(err)
	}
}
