package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hcperf/internal/scenario"
	"hcperf/internal/store"
)

func TestParseScheme(t *testing.T) {
	tests := []struct {
		give    string
		want    scenario.Scheme
		wantErr bool
	}{
		{give: "hpf", want: scenario.SchemeHPF},
		{give: "edf", want: scenario.SchemeEDF},
		{give: "edfvd", want: scenario.SchemeEDFVD},
		{give: "edf-vd", want: scenario.SchemeEDFVD},
		{give: "apollo", want: scenario.SchemeApollo},
		{give: "hcperf", want: scenario.SchemeHCPerf},
		{give: "hcperf-internal", want: scenario.SchemeHCPerfInternal},
		{give: "bogus", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseScheme(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseScheme(%q) err = %v, wantErr %v", tt.give, err, tt.wantErr)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("parseScheme(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

// simOpts is the baseline single-run invocation the tests start from.
func simOpts() options {
	return options{Scenario: "carfollow", Scheme: "hcperf", Seed: 1, Duration: 5,
		Mode: "sim", Parallel: 1, Replicas: 1}
}

func TestRunScenariosShort(t *testing.T) {
	for _, sc := range []string{"carfollow", "lanekeep", "motivation", "hardware", "jam", "combined"} {
		t.Run(sc, func(t *testing.T) {
			opts := simOpts()
			opts.Scenario, opts.Scheme = sc, "edf"
			if err := run(opts); err != nil {
				t.Fatalf("run(%s): %v", sc, err)
			}
		})
	}
}

func TestRunWritesCSV(t *testing.T) {
	opts := simOpts()
	opts.CSVPath = filepath.Join(t.TempDir(), "run.csv")
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(opts.CSVPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("CSV file is empty")
	}
}

func TestRunWritesChromeTrace(t *testing.T) {
	opts := simOpts()
	opts.TracePath = filepath.Join(t.TempDir(), "run.json")
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(opts.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace output is not valid Chrome-trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	slices := 0
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" {
			slices++
		}
	}
	if slices == 0 {
		t.Error("trace has no duration slices")
	}
}

func TestRunWritesTraceCSV(t *testing.T) {
	opts := simOpts()
	opts.Scheme = "edf"
	opts.TracePath = filepath.Join(t.TempDir(), "run.csv")
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(opts.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 2 {
		t.Fatalf("trace CSV has %d lines, want header plus events", len(lines))
	}
	if !strings.HasPrefix(lines[0], "kind,task,cycle") {
		t.Errorf("unexpected trace CSV header %q", lines[0])
	}
}

func TestRunSuiteParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	// The suite must complete through the worker pool with multiple
	// workers; determinism vs the serial run is enforced separately in
	// internal/runner's harness tests.
	if err := run(options{Seed: 1, Mode: "suite", Parallel: 4, Replicas: 1}); err != nil {
		t.Fatalf("suite run: %v", err)
	}
}

func TestRunRejectsInvalid(t *testing.T) {
	opts := simOpts()
	opts.Scenario = "bogus"
	if err := run(opts); err == nil {
		t.Error("unknown scenario accepted")
	}
	opts = simOpts()
	opts.Scheme = "bogus"
	if err := run(opts); err == nil {
		t.Error("unknown scheme accepted")
	}
	opts = simOpts()
	opts.Mode = "bogus"
	if err := run(opts); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestRunSpecFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	spec := `{
		"name": "overload-probe",
		"scenario": "carfollow",
		"scheme": "edf",
		"duration": 5,
		"loads": [{"task": "sensor_fusion", "from": 1, "to": 3, "factor": 2.5}],
		"obstacles": [{"t": 0, "n": 10}, {"t": 2, "n": 30}]
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	opts := options{Mode: "sim", Parallel: 1, Replicas: 1, SpecPath: path,
		CSVPath: filepath.Join(t.TempDir(), "run.csv")}
	if err := run(opts); err != nil {
		t.Fatalf("run -spec: %v", err)
	}
	data, err := os.ReadFile(opts.CSVPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("CSV file is empty")
	}
}

// TestRunFleetSpecFile drives a coupled fleet spec through the CLI: the
// run must succeed and export the fleet-level aggregate series as CSV.
func TestRunFleetSpecFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.json")
	spec := `{
		"name": "mini-platoon",
		"scenario": "carfollow",
		"scheme": "hcperf",
		"duration": 4,
		"fleet": {"n": 6, "coupling": "platoon", "spacing": 18}
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	opts := options{Mode: "sim", Parallel: 1, Replicas: 1, SpecPath: path,
		CSVPath: filepath.Join(t.TempDir(), "fleet.csv")}
	if err := run(opts); err != nil {
		t.Fatalf("run -spec fleet: %v", err)
	}
	data, err := os.ReadFile(opts.CSVPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "fleet_err_p95") {
		t.Error("fleet CSV is missing the fleet_err_p95 aggregate series")
	}
}

func TestRunSpecFileRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	tests := []struct {
		name, spec, wantErr string
	}{
		{"missing file", "", "no such file"},
		{"unknown field", `{"scenario": "carfollow", "bogus": 1}`, "bogus"},
		{"unknown scenario", `{"scenario": "bogus"}`, "unknown scenario"},
		{"unknown task", `{"scenario": "carfollow", "loads": [{"task": "bogus", "from": 0, "to": 1, "factor": 2}]}`, "bogus"},
		{"negative duration", `{"scenario": "carfollow", "duration": -1}`, "duration"},
		{"fleet zero vehicles", `{"scenario": "carfollow", "fleet": {"n": 0}}`, "fleet.n"},
		{"fleet unknown coupling", `{"scenario": "carfollow", "fleet": {"n": 4, "coupling": "v2x"}}`, "unknown fleet coupling"},
		{"fleet negative spacing", `{"scenario": "carfollow", "fleet": {"n": 4, "coupling": "platoon", "spacing": -1}}`, "fleet.spacing"},
		{"fleet outside family", `{"scenario": "lanekeep", "fleet": {"n": 4}}`, "fleet block"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			path := filepath.Join(dir, "missing.json")
			if tt.spec != "" {
				path = filepath.Join(dir, "spec.json")
				if err := os.WriteFile(path, []byte(tt.spec), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			err := run(options{Mode: "sim", Parallel: 1, Replicas: 1, SpecPath: path})
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("error %q does not mention %q", err, tt.wantErr)
			}
		})
	}
}

func TestRunSpecRejectedOutsideSimMode(t *testing.T) {
	for _, mode := range []string{"suite", "rt"} {
		if err := run(options{Mode: mode, Parallel: 1, Replicas: 1, SpecPath: "spec.json"}); err == nil {
			t.Errorf("-spec accepted in %s mode", mode)
		}
	}
}

// TestRunStoreReplaysFromDisk is the CLI leg of the persistence contract:
// a second identical invocation sharing a -store directory is a disk hit
// that replays the persisted result — including a byte-identical series
// CSV — instead of re-simulating.
func TestRunStoreReplaysFromDisk(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	firstCSV := filepath.Join(t.TempDir(), "first.csv")
	secondCSV := filepath.Join(t.TempDir(), "second.csv")

	var m1 store.Metrics
	opts := simOpts()
	opts.Scheme = "edf"
	opts.StoreDir = dir
	opts.Metrics = &m1
	opts.CSVPath = firstCSV
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
	if hits, misses := m1.DiskHits.Load(), m1.DiskMisses.Load(); hits != 0 || misses != 1 {
		t.Fatalf("first run: disk hits=%d misses=%d, want 0/1", hits, misses)
	}

	var m2 store.Metrics
	opts.Metrics = &m2
	opts.CSVPath = secondCSV
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
	if hits, misses := m2.DiskHits.Load(), m2.DiskMisses.Load(); hits != 1 || misses != 0 {
		t.Fatalf("second run: disk hits=%d misses=%d, want 1/0 (replay, not recompute)", hits, misses)
	}
	a, err := os.ReadFile(firstCSV)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(secondCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("replayed series CSV differs from the computed one")
	}
}

// TestRunStoreDegradesWhenUnusable: a -store path that cannot be a
// directory (here, nested under a regular file) must not fail the run —
// the CLI warns and continues without persistence.
func TestRunStoreDegradesWhenUnusable(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	opts := simOpts()
	opts.StoreDir = filepath.Join(blocker, "results")
	if err := run(opts); err != nil {
		t.Fatalf("run with unusable store: %v", err)
	}
}

// TestRunStoreRejectedInRTMode: wall-clock runs are not deterministic, so
// they are not content-addressable and -store must be refused outright.
func TestRunStoreRejectedInRTMode(t *testing.T) {
	opts := simOpts()
	opts.Mode = "rt"
	opts.StoreDir = t.TempDir()
	if err := run(opts); err == nil || !strings.Contains(err.Error(), "-store") {
		t.Errorf("rt-mode -store error = %v, want rejection mentioning -store", err)
	}
}

func TestRunWallClockBriefly(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock run")
	}
	opts := simOpts()
	opts.Mode, opts.Duration = "rt", 2
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
	opts.Scheme = "edf"
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
}
