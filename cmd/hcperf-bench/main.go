// Command hcperf-bench regenerates the tables and figures of the HCPerf
// evaluation (paper §VII). With no flags it runs every registered
// experiment and prints paper-style reports; -exp selects a single
// experiment and -csv exports the raw series for plotting.
//
// Usage:
//
//	hcperf-bench [-exp fig13] [-seed 1] [-csv out/]
//	hcperf-bench -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"hcperf/internal/experiment"
	"hcperf/internal/runner"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id to run (default: all)")
		seed     = flag.Int64("seed", 1, "base random seed")
		csv      = flag.String("csv", "", "directory for CSV export of series and rows")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		parallel = flag.Int("parallel", 1, "worker count: N>=1 workers, 0 = GOMAXPROCS")
	)
	flag.Parse()
	if err := run(*exp, *seed, *csv, *list, *parallel); err != nil {
		fmt.Fprintln(os.Stderr, "hcperf-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, seed int64, csvDir string, list bool, parallel int) error {
	if list {
		for _, info := range experiment.List() {
			fmt.Printf("%-16s %s\n", info.ID, info.Title)
		}
		return nil
	}
	experiment.SetParallelism(parallel)
	ids := experiment.IDs()
	if exp != "" {
		ids = []string{exp}
	}
	// Fan the experiments out through the runner, then render the reports
	// serially in registry order: output bytes are identical to a serial
	// loop's regardless of the worker count.
	reports, err := runner.Map(context.Background(), parallel, ids, func(_ context.Context, id string) (*experiment.Report, error) {
		return experiment.Run(id, seed)
	})
	if err != nil {
		return err
	}
	if err := experiment.WriteReports(os.Stdout, reports); err != nil {
		return err
	}
	if csvDir != "" {
		for _, rep := range reports {
			if err := rep.WriteCSV(csvDir); err != nil {
				return err
			}
		}
		fmt.Printf("CSV series written to %s\n", csvDir)
	}
	return nil
}
