// Command hcperf-bench regenerates the tables and figures of the HCPerf
// evaluation (paper §VII). With no flags it runs every registered
// experiment and prints paper-style reports; -exp selects a single
// experiment and -csv exports the raw series for plotting.
//
// It is also the entry point for the machine-readable performance
// baseline: -json runs the hot-path benchmark suite (internal/perf) and
// emits BENCH_baseline.json-style output, and -check diffs a fresh run
// against a checked-in baseline, exiting non-zero on regression. This is
// what `make bench-json`, `make bench-check` and the CI bench-gate job run.
//
// Usage:
//
//	hcperf-bench [-exp fig13] [-seed 1] [-csv out/]
//	hcperf-bench -list
//	hcperf-bench -json [-benchtime 100x] [-out BENCH_baseline.json]
//	hcperf-bench -check BENCH_baseline.json [-benchtime 100x] [-out fresh.json]
//	hcperf-bench -check BENCH_baseline.json -cpuprofile cpu.pprof -memprofile heap.pprof
//	hcperf-bench -replicas 8    # batch multi-seed sweeps, 8 per shared queue
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"hcperf/internal/experiment"
	"hcperf/internal/perf"
	"hcperf/internal/runner"
)

// errRegression marks a benchmark-gate failure so main can exit non-zero
// without the "hcperf-bench:" prefix drowning the comparison table.
var errRegression = errors.New("performance regression against baseline")

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id to run (default: all)")
		seed     = flag.Int64("seed", 1, "base random seed")
		csv      = flag.String("csv", "", "directory for CSV export of series and rows")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		parallel = flag.Int("parallel", 1, "worker count: N>=1 workers, 0 = GOMAXPROCS")
		replicas = flag.Int("replicas", 1, "sweep batch width: K>=2 advances K multi-seed replicas in lockstep per shared event queue")

		jsonOut   = flag.Bool("json", false, "run the perf benchmark suite and emit a JSON baseline")
		check     = flag.String("check", "", "baseline JSON file to compare a fresh suite run against")
		out       = flag.String("out", "", "file for the fresh baseline JSON (default stdout with -json, none with -check)")
		benchtime = flag.String("benchtime", "10ms", "benchtime for the perf suite (e.g. 10ms, 100x)")
		repeat    = flag.Int("repeat", 3, "suite repetitions; per-benchmark minimum ns/op is kept (noise robustness)")
		maxNs     = flag.Float64("max-ns-regress", perf.DefaultThresholds().NsPerOp, "max tolerated relative ns/op regression")
		maxAllocs = flag.Float64("max-allocs-regress", perf.DefaultThresholds().AllocsPerOp, "max tolerated relative allocs/op regression")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU pprof profile of the run to this file")
		memprof   = flag.String("memprofile", "", "write a heap pprof profile at exit to this file")
	)
	flag.Parse()
	stopProf, err := startProfiles(*cpuprof, *memprof)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hcperf-bench:", err)
		os.Exit(1)
	}
	switch {
	case *jsonOut:
		err = runJSON(*benchtime, *repeat, *out)
	case *check != "":
		err = runCheck(*check, *benchtime, *repeat, *out, perf.Thresholds{NsPerOp: *maxNs, AllocsPerOp: *maxAllocs})
	default:
		err = run(*exp, *seed, *csv, *list, *parallel, *replicas)
	}
	if perr := stopProf(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		if !errors.Is(err, errRegression) {
			fmt.Fprintln(os.Stderr, "hcperf-bench:", err)
		}
		os.Exit(1)
	}
}

// runJSON runs the perf suite and writes the baseline JSON to outPath
// (stdout if empty).
func runJSON(benchtime string, repeat int, outPath string) error {
	base, err := perf.RunSuiteBest(benchtime, repeat)
	if err != nil {
		return err
	}
	if outPath == "" {
		return base.Write(os.Stdout)
	}
	if err := base.WriteFile(outPath); err != nil {
		return err
	}
	fmt.Printf("perf baseline (%d benchmarks, benchtime %s) written to %s\n",
		len(base.Results), benchtime, outPath)
	return nil
}

// runCheck runs the perf suite, diffs it against the baseline at checkPath
// and prints the benchstat-style comparison. The fresh run is additionally
// written to outPath when given (the CI gate uploads it as an artifact).
// Returns errRegression when any metric exceeds its threshold.
func runCheck(checkPath, benchtime string, repeat int, outPath string, th perf.Thresholds) error {
	old, err := perf.ReadFile(checkPath)
	if err != nil {
		return err
	}
	fresh, err := perf.RunSuiteBest(benchtime, repeat)
	if err != nil {
		return err
	}
	if outPath != "" {
		if err := fresh.WriteFile(outPath); err != nil {
			return err
		}
	}
	cmp := perf.Compare(old, fresh, th)
	fmt.Print(cmp)
	if cmp.Regressed() {
		fmt.Printf("FAIL: regression vs %s (thresholds: ns/op +%.0f%%, allocs/op +%.0f%%; '!' marks the exceeded metric)\n",
			checkPath, th.NsPerOp*100, th.AllocsPerOp*100)
		return errRegression
	}
	fmt.Printf("ok: no regression vs %s (thresholds: ns/op +%.0f%%, allocs/op +%.0f%%)\n",
		checkPath, th.NsPerOp*100, th.AllocsPerOp*100)
	return nil
}

// startProfiles starts CPU profiling and arranges a heap snapshot at stop,
// for the paths the CI bench-gate diagnoses from artifacts. The returned
// stop function is safe to call once, with both paths optional.
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		if cpuFile, err = os.Create(cpuPath); err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // settle the heap so the snapshot reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		return nil
	}, nil
}

func run(exp string, seed int64, csvDir string, list bool, parallel, replicas int) error {
	if list {
		for _, info := range experiment.List() {
			fmt.Printf("%-16s %s\n", info.ID, info.Title)
		}
		return nil
	}
	experiment.SetParallelism(parallel)
	experiment.SetReplicas(replicas)
	ids := experiment.IDs()
	if exp != "" {
		ids = []string{exp}
	}
	// Fan the experiments out through the runner, then render the reports
	// serially in registry order: output bytes are identical to a serial
	// loop's regardless of the worker count.
	reports, err := runner.Map(context.Background(), parallel, ids, func(_ context.Context, id string) (*experiment.Report, error) {
		return experiment.Run(id, seed)
	})
	if err != nil {
		return err
	}
	if err := experiment.WriteReports(os.Stdout, reports); err != nil {
		return err
	}
	if csvDir != "" {
		for _, rep := range reports {
			if err := rep.WriteCSV(csvDir); err != nil {
				return err
			}
		}
		fmt.Printf("CSV series written to %s\n", csvDir)
	}
	return nil
}
