package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run("", 1, "", true, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run("fig5", 1, dir, false, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig5_rows.csv")); err != nil {
		t.Errorf("rows CSV missing: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("bogus", 1, "", false, 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}
