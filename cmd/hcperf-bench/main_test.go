package main

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"hcperf/internal/perf"
)

func TestRunList(t *testing.T) {
	if err := run("", 1, "", true, 1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run("fig5", 1, dir, false, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig5_rows.csv")); err != nil {
		t.Errorf("rows CSV missing: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("bogus", 1, "", false, 1, 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestJSONCheckRoundTrip exercises the gate end to end: emit a baseline at
// one iteration, then check a fresh run against it under thresholds loose
// enough that a single-iteration rerun can never trip them.
func TestJSONCheckRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the perf suite twice")
	}
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	if err := runJSON("1x", 1, baseline); err != nil {
		t.Fatal(err)
	}
	base, err := perf.ReadFile(baseline)
	if err != nil {
		t.Fatalf("emitted baseline unreadable: %v", err)
	}
	if len(base.Results) != len(perf.Suite()) {
		t.Fatalf("baseline has %d results, want %d", len(base.Results), len(perf.Suite()))
	}
	fresh := filepath.Join(dir, "fresh.json")
	loose := perf.Thresholds{NsPerOp: 1e9, AllocsPerOp: 1e9}
	if err := runCheck(baseline, "1x", 1, fresh, loose); err != nil {
		t.Fatalf("self-check regressed: %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh JSON not written for artifact upload: %v", err)
	}
}

// TestCheckFlagsRegression verifies the exit path: a fabricated baseline
// with impossible numbers must make the check fail with errRegression.
func TestCheckFlagsRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the perf suite")
	}
	base := &perf.Baseline{Benchtime: "1x"}
	for _, b := range perf.Suite() {
		// Sub-nanosecond, zero-alloc fantasy numbers: any real run regresses.
		base.Results = append(base.Results, perf.Result{Name: b.Name, Iterations: 1, NsPerOp: 0.001})
	}
	path := filepath.Join(t.TempDir(), "impossible.json")
	if err := base.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	err := runCheck(path, "1x", 1, "", perf.DefaultThresholds())
	if !errors.Is(err, errRegression) {
		t.Fatalf("err = %v, want errRegression", err)
	}
}
