module hcperf

go 1.22
