package bus

import (
	"testing"
	"testing/quick"
)

func TestPublishSubscribe(t *testing.T) {
	b := New()
	var got []int
	if _, err := b.Subscribe("a", func(_ string, m Message) { got = append(got, m.(int)) }); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := b.Publish("a", i); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("received %v, want [1 2 3]", got)
	}
	if b.Published("a") != 3 {
		t.Errorf("Published = %d, want 3", b.Published("a"))
	}
}

func TestSubscriptionOrder(t *testing.T) {
	b := New()
	var order []string
	mustSub(t, b, "x", func(string, Message) { order = append(order, "first") })
	mustSub(t, b, "x", func(string, Message) { order = append(order, "second") })
	if err := b.Publish("x", nil); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Errorf("delivery order %v", order)
	}
}

func TestUnsubscribe(t *testing.T) {
	b := New()
	count := 0
	sub := mustSub(t, b, "x", func(string, Message) { count++ })
	if err := b.Publish("x", nil); err != nil {
		t.Fatal(err)
	}
	b.Unsubscribe(sub)
	if err := b.Publish("x", nil); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("handler ran %d times, want 1", count)
	}
	if b.Subscribers("x") != 0 {
		t.Errorf("Subscribers = %d after unsubscribe, want 0", b.Subscribers("x"))
	}
	// Unknown subscription: no-op.
	b.Unsubscribe(Subscription{topic: "zz", id: 99})
}

func TestUnsubscribePeerDuringDelivery(t *testing.T) {
	b := New()
	var second Subscription
	ranSecond := false
	mustSub(t, b, "x", func(string, Message) { b.Unsubscribe(second) })
	second = mustSub(t, b, "x", func(string, Message) { ranSecond = true })
	if err := b.Publish("x", nil); err != nil {
		t.Fatal(err)
	}
	if ranSecond {
		t.Error("unsubscribed peer still received the message")
	}
}

func TestValidation(t *testing.T) {
	b := New()
	if _, err := b.Subscribe("", func(string, Message) {}); err == nil {
		t.Error("empty topic subscription accepted")
	}
	if _, err := b.Subscribe("x", nil); err == nil {
		t.Error("nil handler accepted")
	}
	if err := b.Publish("", 1); err == nil {
		t.Error("empty topic publish accepted")
	}
	if err := b.Publish("nobody", 1); err != nil {
		t.Errorf("publish without subscribers failed: %v", err)
	}
}

func TestTopicsAndString(t *testing.T) {
	b := New()
	mustSub(t, b, "beta", func(string, Message) {})
	mustSub(t, b, "alpha", func(string, Message) {})
	topics := b.Topics()
	if len(topics) != 2 || topics[0] != "alpha" || topics[1] != "beta" {
		t.Errorf("Topics = %v", topics)
	}
	if b.String() == "" {
		t.Error("String empty")
	}
}

// Property: every published message reaches every live subscriber exactly
// once, regardless of subscriber count.
func TestQuickFanOut(t *testing.T) {
	f := func(nSubs uint8, nMsgs uint8) bool {
		b := New()
		subs := int(nSubs%16) + 1
		msgs := int(nMsgs % 32)
		counts := make([]int, subs)
		for i := 0; i < subs; i++ {
			i := i
			if _, err := b.Subscribe("t", func(string, Message) { counts[i]++ }); err != nil {
				return false
			}
		}
		for m := 0; m < msgs; m++ {
			if err := b.Publish("t", m); err != nil {
				return false
			}
		}
		for _, c := range counts {
			if c != msgs {
				return false
			}
		}
		return b.Published("t") == uint64(msgs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mustSub(t *testing.T, b *Bus, topic string, h Handler) Subscription {
	t.Helper()
	sub, err := b.Subscribe(topic, h)
	if err != nil {
		t.Fatal(err)
	}
	return sub
}
