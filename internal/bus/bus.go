// Package bus is a minimal in-process topic-based publish/subscribe fabric,
// modelled after the channel layer of Apollo Cyber RT. The simulation engine
// publishes task outputs and control commands on topics; scenarios and
// coordinators subscribe.
//
// Delivery is synchronous and in subscription order: the simulator is a
// single-threaded discrete-event system, so a publish at virtual time t is
// observed by all subscribers at t before the next event runs. A Bus is not
// safe for concurrent use; the wall-clock executor (internal/rt) wraps it
// with its own synchronisation.
package bus

import (
	"errors"
	"fmt"
	"sort"
)

// Message is a payload published on a topic.
type Message any

// Handler consumes messages published on a subscribed topic.
type Handler func(topic string, msg Message)

// Subscription identifies one subscriber; use Bus.Unsubscribe to detach.
type Subscription struct {
	topic string
	id    int
}

// Bus routes messages from publishers to topic subscribers.
type Bus struct {
	nextID int
	subs   map[string]map[int]Handler
	// published counts messages per topic for diagnostics.
	published map[string]uint64
}

// New returns an empty bus.
func New() *Bus {
	return &Bus{
		subs:      make(map[string]map[int]Handler),
		published: make(map[string]uint64),
	}
}

// Subscribe registers handler for every future publish on topic.
func (b *Bus) Subscribe(topic string, handler Handler) (Subscription, error) {
	if topic == "" {
		return Subscription{}, errors.New("bus: empty topic")
	}
	if handler == nil {
		return Subscription{}, errors.New("bus: nil handler")
	}
	m, ok := b.subs[topic]
	if !ok {
		m = make(map[int]Handler)
		b.subs[topic] = m
	}
	id := b.nextID
	b.nextID++
	m[id] = handler
	return Subscription{topic: topic, id: id}, nil
}

// Unsubscribe detaches a subscription; unknown subscriptions are ignored.
func (b *Bus) Unsubscribe(s Subscription) {
	if m, ok := b.subs[s.topic]; ok {
		delete(m, s.id)
		if len(m) == 0 {
			delete(b.subs, s.topic)
		}
	}
}

// Publish delivers msg to every subscriber of topic, in subscription order.
// Publishing to a topic with no subscribers is legal and counted.
func (b *Bus) Publish(topic string, msg Message) error {
	if topic == "" {
		return errors.New("bus: empty topic")
	}
	b.published[topic]++
	m, ok := b.subs[topic]
	if !ok {
		return nil
	}
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if h, still := m[id]; still { // a handler may unsubscribe peers
			h(topic, msg)
		}
	}
	return nil
}

// Subscribers returns the number of active subscribers on topic.
func (b *Bus) Subscribers(topic string) int { return len(b.subs[topic]) }

// Published returns how many messages have been published on topic.
func (b *Bus) Published(topic string) uint64 { return b.published[topic] }

// Topics returns the topics with at least one subscriber, sorted.
func (b *Bus) Topics() []string {
	out := make([]string, 0, len(b.subs))
	for t := range b.subs {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// String summarises the bus for diagnostics.
func (b *Bus) String() string {
	return fmt.Sprintf("bus{topics=%d}", len(b.subs))
}
