package run

import (
	"context"

	"hcperf/internal/policy"
	"hcperf/internal/store"
)

// LoadDisk reads the result for digest from the disk tier. A stored entry
// that fails to decode or fails its integrity check is quarantined (and
// counted corrupt) so it is recomputed rather than served; the caller sees
// a plain miss either way.
func LoadDisk(d *store.Disk, digest string) (*Result, bool) {
	if d == nil {
		return nil, false
	}
	data, ok := d.Get(digest)
	if !ok {
		return nil, false
	}
	res, err := DecodeResult(digest, data)
	if err != nil {
		d.Quarantine(digest)
		return nil, false
	}
	return res, true
}

// SaveDisk writes a completed result to the disk tier. Persistence is an
// optimization, not a correctness requirement, so callers treat the
// returned error as log-and-continue.
func SaveDisk(d *store.Disk, digest string, res *Result) error {
	if d == nil {
		return nil
	}
	data, err := EncodeResult(digest, res)
	if err != nil {
		return err
	}
	return d.Put(digest, data)
}

// Pipeline is the one normalize → digest → lookup → execute → persist
// path every entry point shares: the CLI's sim/spec/tune/suite modes, the
// HTTP service's run and optimize handlers (via its job manager, which
// layers queueing and dedup on the same tiers) and the sweep fan-out.
type Pipeline struct {
	// Lookup consults the caller's memory tier (the serving layer's job
	// map; nil for the CLI, which has no resident results).
	Lookup func(digest string) (*Result, bool)
	// Disk is the persistent tier; nil disables persistence.
	Disk *store.Disk
	// Metrics counts memory-tier lookups (the disk tier counts its own
	// through Disk). Nil disables counting.
	Metrics *store.Metrics
	// Exec computes a result on a full miss; nil means Execute.
	Exec Func
	// Breaker, when non-nil, guards the execute stage only: cache and disk
	// hits always flow (serving stored bytes cannot hurt a sick runner),
	// while fresh executions are short-circuited with ErrBreakerOpen when
	// the breaker is open and their outcomes feed its error-rate window.
	Breaker *policy.Breaker
}

// Run takes a raw request through the full pipeline and reports which tier
// satisfied it. The request is normalized and digested here, so every
// caller shares one digest namespace; on a full miss the computed result
// is written back to the disk tier (best-effort).
func (p *Pipeline) Run(ctx context.Context, req Request) (*Result, store.Tier, string, error) {
	req, err := req.Normalize()
	if err != nil {
		return nil, store.TierMiss, "", err
	}
	digest := req.Digest()
	if p.Lookup != nil {
		if res, ok := p.Lookup(digest); ok {
			if p.Metrics != nil {
				p.Metrics.MemoryHits.Add(1)
			}
			return res, store.TierMemory, digest, nil
		}
		if p.Metrics != nil {
			p.Metrics.MemoryMisses.Add(1)
		}
	}
	if res, ok := LoadDisk(p.Disk, digest); ok {
		return res, store.TierDisk, digest, nil
	}
	exec := p.Exec
	if exec == nil {
		exec = Execute
	}
	var breakerDone func(policy.Outcome)
	if p.Breaker != nil {
		var berr error
		if breakerDone, berr = p.Breaker.Allow(); berr != nil {
			return nil, store.TierMiss, digest, berr
		}
	}
	res, err := exec(ctx, req)
	policy.Observe(breakerDone, err)
	if err != nil {
		return nil, store.TierMiss, digest, err
	}
	// Persistence failures (full disk, lost volume) must not fail the run.
	_ = SaveDisk(p.Disk, digest, res)
	return res, store.TierMiss, digest, nil
}
