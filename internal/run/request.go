// Package run is the one canonical run pipeline every entry path routes
// through: Request (experiment | scenario | spec | fleet | optimize) →
// Normalize → Digest → Execute → Result (report + series + trace handles).
// The CLI (hcperf-sim sim/spec/tune/suite modes), the HTTP service
// (POST /v1/runs, /v1/optimize, /v1/sweeps) and the batch sweep fan-out are
// all thin callers of this package, so a run is the same computation — and
// the same content address — no matter which door it came in through.
//
// The digest namespace is load-bearing: it predates this package (it was
// the serving layer's request digest) and is pinned by tests, so a report
// computed before the extraction remains a disk-store hit after it.
package run

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"hcperf/internal/experiment"
	"hcperf/internal/scenario"
	"hcperf/internal/search"
)

// Request is one run of the pipeline: a registered experiment (the paper's
// tables and figures), a single scenario run under one scheduling scheme,
// an inline declarative scenario spec (including fleet specs), or a policy
// search. Requests are canonicalized and content-addressed — the run ID is
// a digest over the normalized fields, so identical requests share one
// execution and one cached result across every entry path and process
// restart.
type Request struct {
	// Experiment is a registry ID (see GET /v1/experiments), e.g.
	// "fig13". Mutually exclusive with Scenario and Spec.
	Experiment string `json:"experiment,omitempty"`
	// Scenario is a driving scenario: aeb | carfollow | combined |
	// hardware | jam | lanekeep | motivation.
	Scenario string `json:"scenario,omitempty"`
	// Spec is an inline declarative scenario spec (scenario.Spec): full
	// control over graph loads, rate overrides, obstacle profiles and
	// coordinator knobs. Mutually exclusive with Experiment and
	// Scenario; Scheme, Seed and Duration then live inside the spec.
	Spec *scenario.Spec `json:"spec,omitempty"`
	// Optimize is an inline policy-search request (search.Request): a
	// spec template plus a parameter space, strategy and budget. Mutually
	// exclusive with the other three kinds; everything — template spec,
	// seed, budget — lives inside the optimize request. POST /v1/optimize
	// is shorthand for submitting one of these.
	Optimize *search.Request `json:"optimize,omitempty"`
	// Scheme selects the scheduling scheme for scenario runs (default
	// "hcperf"): hpf | edf | edfvd | apollo | hcperf | hcperf-internal.
	Scheme string `json:"scheme,omitempty"`
	// Seed drives all run randomness (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Duration overrides the scenario duration in seconds (0 = scenario
	// default). Ignored for experiment runs.
	Duration float64 `json:"duration,omitempty"`
	// Trace captures per-job lifecycle events during scenario and spec
	// runs, served by GET /v1/runs/{id}/trace. Ignored for experiment
	// runs.
	Trace bool `json:"trace,omitempty"`
}

// scenarioNames is the closed set of scenario run kinds, shared with the
// scenario package's spec layer.
var scenarioNames = func() map[string]bool {
	out := make(map[string]bool)
	for _, name := range scenario.ScenarioNames() {
		out[name] = true
	}
	return out
}()

// ScenarioNames reports whether name is a known scenario run kind.
func KnownScenario(name string) bool { return scenarioNames[name] }

// Normalize validates the request and fills defaults so that every
// equivalent request maps to the same canonical form (and therefore the
// same digest).
func (r Request) Normalize() (Request, error) {
	set := 0
	for _, on := range []bool{r.Experiment != "", r.Scenario != "", r.Spec != nil, r.Optimize != nil} {
		if on {
			set++
		}
	}
	if set != 1 {
		return r, fmt.Errorf("exactly one of experiment, scenario, spec or optimize must be set")
	}
	if r.Optimize != nil {
		// The template spec, seed and budget all live inside the optimize
		// request; zero request-level copies cannot split the cache.
		if r.Scheme != "" || r.Seed != 0 || r.Duration != 0 || r.Trace {
			return r, fmt.Errorf("optimize runs take scheme, seed, duration and trace inside the optimize request")
		}
		rq, err := r.Optimize.Normalize()
		if err != nil {
			return r, err
		}
		r.Optimize = &rq
		return r, nil
	}
	if r.Spec != nil {
		// Scheme, seed and duration live inside the spec; zero the
		// request-level copies so they cannot split the cache.
		if r.Scheme != "" || r.Seed != 0 || r.Duration != 0 {
			return r, fmt.Errorf("spec runs take scheme, seed and duration inside the spec")
		}
		spec, err := r.Spec.Normalize()
		if err != nil {
			return r, err
		}
		r.Spec = &spec
		return r, nil
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Experiment != "" {
		if _, ok := experiment.Lookup(r.Experiment); !ok {
			return r, fmt.Errorf("unknown experiment %q", r.Experiment)
		}
		// Scheme, duration and trace have no meaning for registry
		// experiments; zero them so they cannot split the cache.
		r.Scheme, r.Duration, r.Trace = "", 0, false
		return r, nil
	}
	if !scenarioNames[r.Scenario] {
		return r, fmt.Errorf("unknown scenario %q", r.Scenario)
	}
	if r.Scheme == "" {
		r.Scheme = "hcperf"
	}
	if _, err := scenario.ParseScheme(r.Scheme); err != nil {
		return r, err
	}
	if r.Duration < 0 {
		return r, fmt.Errorf("duration must be >= 0, got %g", r.Duration)
	}
	return r, nil
}

// Digest returns the content address of a normalized request: a SHA-256
// over every canonical field with explicit separators, so distinct
// requests cannot alias. Inline specs contribute their canonical JSON
// encoding (Normalize makes it a fixed point, and encoding/json sorts map
// keys). Two submissions with equal digests are the same run —
// determinism of the underlying simulations (enforced by the
// internal/runner harness) makes serving the cached Result correct.
//
// The byte layout is frozen: it must keep producing exactly the digests
// the pre-extraction service code produced (pinned by the compatibility
// test in internal/service), or every existing disk-store entry silently
// invalidates.
func (r Request) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "exp=%s;scn=%s;scheme=%s;seed=%d;dur=%g;trace=%t",
		r.Experiment, r.Scenario, r.Scheme, r.Seed, r.Duration, r.Trace)
	if r.Spec != nil {
		// Marshal of a validated spec cannot fail: every field is a
		// plain value and Normalize rejected non-finite numbers.
		b, err := json.Marshal(r.Spec)
		if err != nil {
			panic(fmt.Sprintf("run: marshal normalized spec: %v", err))
		}
		fmt.Fprintf(h, ";spec=%s", b)
	}
	if r.Optimize != nil {
		// The request is already normalized, so Marshal is its canonical
		// encoding (search.Request.Normalize is a fixed point).
		b, err := json.Marshal(r.Optimize)
		if err != nil {
			panic(fmt.Sprintf("run: marshal normalized optimize request: %v", err))
		}
		fmt.Fprintf(h, ";opt=%s", b)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Kind labels the request for metrics: the experiment ID, the scenario
// name, or "spec:<scenario>" for inline specs.
func (r Request) Kind() string {
	switch {
	case r.Experiment != "":
		return r.Experiment
	case r.Optimize != nil:
		return "optimize:" + r.Optimize.Spec.Scenario
	case r.Spec != nil:
		return "spec:" + r.Spec.Scenario
	default:
		return r.Scenario
	}
}
