package run

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"hcperf/internal/experiment"
	"hcperf/internal/search"
	"hcperf/internal/trace"
)

// mustDigest renders a report digest or fails the test.
func mustDigest(t *testing.T, rep *experiment.Report) string {
	t.Helper()
	d, err := rep.Digest()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCodecRoundTripPreservesReportDigest(t *testing.T) {
	// A real traced scenario run: rows, a populated series recorder and
	// lifecycle events all at once. The disk round trip must preserve the
	// report digest byte for byte — that is what makes a disk hit
	// indistinguishable from a recomputation.
	req, err := Request{Scenario: "carfollow", Scheme: "edf", Duration: 2, Trace: true}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Series == nil || len(res.Events) == 0 {
		t.Fatal("fixture run produced no series or no events; round trip would be vacuous")
	}
	digest := req.Digest()
	data, err := EncodeResult(digest, res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeResult(digest, data)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustDigest(t, back.Report), mustDigest(t, res.Report); got != want {
		t.Errorf("report digest after round trip = %s, want %s", got[:12], want[:12])
	}
	if !reflect.DeepEqual(back.Events, res.Events) {
		t.Errorf("lifecycle events changed across round trip: %d vs %d", len(back.Events), len(res.Events))
	}
	if !reflect.DeepEqual(back.Report.Series.Names(), res.Report.Series.Names()) {
		t.Errorf("series names changed: %v vs %v", back.Report.Series.Names(), res.Report.Series.Names())
	}
}

func TestCodecRoundTripExperimentReport(t *testing.T) {
	// Registry experiments carry paper rows and notes and (for figures) a
	// series recorder; fig5 exercises all of them.
	req, err := Request{Experiment: "fig5"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	digest := req.Digest()
	data, err := EncodeResult(digest, res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeResult(digest, data)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustDigest(t, back.Report), mustDigest(t, res.Report); got != want {
		t.Errorf("report digest after round trip = %s, want %s", got[:12], want[:12])
	}
}

func TestCodecRoundTripOptimizeReport(t *testing.T) {
	rep := &experiment.Report{ID: "optimize-carfollow", Title: "t", Header: []string{"a"}, Rows: [][]string{{"1"}}}
	opt := &search.Report{
		Strategy:   "random",
		Seed:       1,
		Seeds:      2,
		Budget:     4,
		Evaluated:  4,
		Objectives: []string{"pathtrack_rms"},
		Best: []search.BestEntry{{
			Objective: "pathtrack_rms", Value: 0.5, Baseline: 0.75, Improved: true,
			Candidate: search.Candidate{Scheme: "hcperf"},
		}},
	}
	res := &Result{Report: rep, Optimize: opt}
	data, err := EncodeResult("d0", res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeResult("d0", data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Optimize, opt) {
		t.Errorf("optimize report changed across round trip:\n got %+v\nwant %+v", back.Optimize, opt)
	}
}

func TestCodecRejectsCorruptEntries(t *testing.T) {
	rep := &experiment.Report{ID: "x", Title: "x"}
	good, err := EncodeResult("deadbeef", &Result{Report: rep})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"garbage", []byte("not json at all"), "decode"},
		{"truncated", good[:len(good)/2], "decode"},
		{"wrong digest", good, "stored under"},
		{"empty object", []byte("{}"), "version"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			digest := "deadbeef"
			if tt.name == "wrong digest" {
				digest = "cafebabe"
			}
			_, err := DecodeResult(digest, tt.data)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("DecodeResult err = %v, want containing %q", err, tt.want)
			}
		})
	}
}

func TestCodecNilVersusEmptySeries(t *testing.T) {
	// A nil recorder and an empty recorder digest differently (the empty
	// one hashes a CSV header), so the codec must preserve the distinction.
	nilRep := &experiment.Report{ID: "x", Title: "x"}
	emptyRep := &experiment.Report{ID: "x", Title: "x", Series: trace.NewRecorder()}
	if mustDigest(t, nilRep) == mustDigest(t, emptyRep) {
		t.Fatal("fixture invalid: nil and empty recorders digest equally")
	}
	for _, rep := range []*experiment.Report{nilRep, emptyRep} {
		data, err := EncodeResult("d0", &Result{Report: rep})
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeResult("d0", data)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := mustDigest(t, back.Report), mustDigest(t, rep); got != want {
			t.Errorf("digest after round trip = %s, want %s (series nil=%t)",
				got[:12], want[:12], rep.Series == nil)
		}
	}
}
