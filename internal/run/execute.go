package run

import (
	"context"
	"fmt"

	"hcperf/internal/experiment"
	"hcperf/internal/fleet"
	"hcperf/internal/lifecycle"
	"hcperf/internal/scenario"
	"hcperf/internal/search"
)

// traceCapacity bounds the per-run lifecycle event buffer. At the 23-task
// graph's aggregate job rate a full-length run fits comfortably; overflow
// drops oldest-first (the ring records the drop count) rather than growing
// without bound while a request is in flight.
const traceCapacity = 1 << 20

// Result is a completed run: the rendered report plus, for traced
// scenario runs, the captured lifecycle events and, for optimize runs, the
// structured search report.
type Result struct {
	Report   *experiment.Report
	Events   []lifecycle.Event
	Optimize *search.Report
}

// Func executes one normalized request. The pipeline's and the serving
// layer's default is Execute; tests inject controllable fakes.
type Func func(ctx context.Context, req Request) (*Result, error)

// Execute runs a normalized request for real: registry experiments go
// through experiment.Run, optimize requests through the search subsystem
// (reporting generation progress through the ctx-carried sink), and
// scenario and spec requests through the scenario package's spec runner
// (capturing lifecycle events into a bounded ring when Trace is set).
func Execute(ctx context.Context, req Request) (*Result, error) {
	if req.Optimize != nil {
		return runOptimize(ctx, req)
	}
	if req.Experiment != "" {
		rep, err := experiment.Run(req.Experiment, req.Seed)
		if err != nil {
			return nil, err
		}
		return &Result{Report: rep}, nil
	}
	return runScenario(req)
}

// runScenario executes one scenario or inline-spec request through the
// scenario package's declarative spec runner and renders its key metrics
// as a Report, so experiment, scenario and spec runs share one result
// shape (and one cache) end to end.
func runScenario(req Request) (*Result, error) {
	var spec scenario.Spec
	var id string
	if req.Spec != nil {
		spec = *req.Spec
		id = "spec-" + spec.Scenario
		if spec.Name != "" {
			id = "spec-" + spec.Name
		}
	} else {
		spec = scenario.Spec{
			Scenario: req.Scenario,
			Scheme:   req.Scheme,
			Seed:     req.Seed,
			Duration: req.Duration,
		}
		id = "run-" + req.Scenario
	}

	var ring *lifecycle.Ring
	var tracer lifecycle.Tracer
	if req.Trace {
		var err error
		if ring, err = lifecycle.NewRing(traceCapacity); err != nil {
			return nil, err
		}
		tracer = ring
	}

	r, err := fleet.RunSpec(spec, tracer)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Report: &experiment.Report{
			ID:     id,
			Title:  r.Title,
			Header: []string{"quantity", "value"},
			Rows:   r.Rows,
			Series: r.Rec,
		},
	}
	if ring != nil {
		res.Events = ring.Events()
		if n := ring.Dropped(); n > 0 {
			res.Report.Notes = append(res.Report.Notes,
				fmt.Sprintf("trace: %d oldest lifecycle events dropped (buffer capacity %d)", n, traceCapacity))
		}
	}
	return res, nil
}

// progressKey carries a per-job progress sink through the execution
// context: the serving layer's manager installs the sink in runJob, and
// runOptimize hands it to search.Run as the OnProgress callback. Progress
// therefore flows job-ward without the search subsystem knowing about
// jobs.
type progressKey struct{}

// WithProgress attaches a progress sink to ctx; Execute forwards search
// generation progress of optimize runs to it.
func WithProgress(ctx context.Context, fn func(search.Progress)) context.Context {
	return context.WithValue(ctx, progressKey{}, fn)
}

// progressFrom extracts the sink, or nil when none is attached (direct
// Execute calls outside the manager).
func progressFrom(ctx context.Context) func(search.Progress) {
	fn, _ := ctx.Value(progressKey{}).(func(search.Progress))
	return fn
}

// parallelKey carries a worker-count hint for optimize runs through the
// execution context. Parallelism is an execution resource, not part of a
// run's identity — determinism is worker-count independent by the runner
// harness — so it travels beside the request, never inside its digest.
type parallelKey struct{}

// WithParallelism attaches a worker-count hint for optimize runs to ctx
// (n >= 1 selects exactly n workers, 0 selects GOMAXPROCS — the runner
// convention). The CLI's -parallel flag uses this; the serving layer leaves
// it unset and gets GOMAXPROCS.
func WithParallelism(ctx context.Context, n int) context.Context {
	return context.WithValue(ctx, parallelKey{}, n)
}

// parallelismFrom extracts the worker-count hint, defaulting to 0
// (GOMAXPROCS).
func parallelismFrom(ctx context.Context) int {
	n, _ := ctx.Value(parallelKey{}).(int)
	return n
}

// runOptimize executes one normalized optimize request. The search fans its
// candidate evaluations across GOMAXPROCS workers (determinism is
// worker-count independent by the runner harness), and the resulting Pareto
// report is wrapped as an experiment.Report so optimize runs flow through
// the same result cache, digesting and rendering as every other run kind.
func runOptimize(ctx context.Context, req Request) (*Result, error) {
	rep, err := req.Optimize.Run(ctx, parallelismFrom(ctx), progressFrom(ctx))
	if err != nil {
		return nil, err
	}
	exp := &experiment.Report{
		ID: "optimize-" + req.Optimize.Spec.Scenario,
		Title: fmt.Sprintf("Coordinator policy search (%s, budget %d, %d seeds)",
			req.Optimize.Strategy, req.Optimize.Budget, req.Optimize.Seeds),
		Header: rep.Header(),
		Rows:   rep.Rows(),
	}
	for _, b := range rep.Best {
		verdict := "no improvement over the paper defaults"
		if b.Improved {
			verdict = fmt.Sprintf("improves on the paper defaults (%s)", fmtBest(b.Baseline))
		}
		exp.Notes = append(exp.Notes, fmt.Sprintf("%s: best %s — %s", b.Objective, fmtBest(b.Value), verdict))
	}
	return &Result{Report: exp, Optimize: rep}, nil
}

// fmtBest renders one objective value for the notes.
func fmtBest(v float64) string { return fmt.Sprintf("%.6g", v) }
