package run

import (
	"encoding/json"
	"fmt"

	"hcperf/internal/experiment"
	"hcperf/internal/lifecycle"
	"hcperf/internal/search"
	"hcperf/internal/trace"
)

// codecVersion is the disk envelope version. Decoding refuses other
// versions, so a format change never silently misreads old entries — they
// quarantine and recompute instead.
const codecVersion = 1

// envelope is the on-disk form of a Result. It carries the request digest
// it was stored under, so a mislabeled or cross-wired entry fails the
// integrity check instead of serving the wrong run.
type envelope struct {
	V        int               `json:"v"`
	Digest   string            `json:"digest"`
	Report   *reportJSON       `json:"report"`
	Events   []lifecycle.Event `json:"events,omitempty"`
	Optimize *search.Report    `json:"optimize,omitempty"`
}

// reportJSON mirrors experiment.Report field-for-field. The trace recorder
// is flattened to ordered (name, t[], v[]) triples; HasSeries
// distinguishes a nil recorder from an empty one, because Report.Digest
// hashes the CSV header of an empty recorder but nothing for a nil one.
type reportJSON struct {
	ID        string       `json:"id"`
	Title     string       `json:"title"`
	Header    []string     `json:"header,omitempty"`
	Rows      [][]string   `json:"rows,omitempty"`
	PaperRows [][]string   `json:"paper_rows,omitempty"`
	Notes     []string     `json:"notes,omitempty"`
	Volatile  bool         `json:"volatile,omitempty"`
	HasSeries bool         `json:"has_series,omitempty"`
	Series    []seriesJSON `json:"series,omitempty"`
}

// seriesJSON is one recorded series in recording order. T and V are
// parallel slices; Go marshals float64 with the shortest round-trip
// representation, so a decode replays bit-identical samples and the
// rebuilt recorder's CSV — and therefore the report digest — matches the
// original byte for byte.
type seriesJSON struct {
	Name string    `json:"name"`
	T    []float64 `json:"t"`
	V    []float64 `json:"v"`
}

// EncodeResult serializes a completed run for the disk store, keyed by the
// request digest it will be stored under.
func EncodeResult(digest string, res *Result) ([]byte, error) {
	if res == nil || res.Report == nil {
		return nil, fmt.Errorf("run: encode %s: result has no report", digest)
	}
	r := res.Report
	rj := &reportJSON{
		ID:        r.ID,
		Title:     r.Title,
		Header:    r.Header,
		Rows:      r.Rows,
		PaperRows: r.PaperRows,
		Notes:     r.Notes,
		Volatile:  r.Volatile,
	}
	if r.Series != nil {
		rj.HasSeries = true
		for _, name := range r.Series.Names() {
			s := r.Series.Series(name)
			sj := seriesJSON{Name: name, T: make([]float64, 0, s.Len()), V: make([]float64, 0, s.Len())}
			for _, p := range s.Samples {
				sj.T = append(sj.T, p.T)
				sj.V = append(sj.V, p.V)
			}
			rj.Series = append(rj.Series, sj)
		}
	}
	env := envelope{
		V:        codecVersion,
		Digest:   digest,
		Report:   rj,
		Events:   res.Events,
		Optimize: res.Optimize,
	}
	b, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("run: encode %s: %w", digest, err)
	}
	return b, nil
}

// DecodeResult parses a disk entry back into a Result, verifying the
// envelope version and that the entry was stored under the digest it is
// being read for. Any failure means the entry is corrupt (or cross-wired)
// and must be treated as a miss — the pipeline quarantines it.
func DecodeResult(digest string, data []byte) (*Result, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("run: decode %s: %w", digest, err)
	}
	if env.V != codecVersion {
		return nil, fmt.Errorf("run: decode %s: envelope version %d, want %d", digest, env.V, codecVersion)
	}
	if env.Digest != digest {
		return nil, fmt.Errorf("run: decode %s: entry stored under digest %s", digest, env.Digest)
	}
	if env.Report == nil {
		return nil, fmt.Errorf("run: decode %s: entry has no report", digest)
	}
	rj := env.Report
	rep := &experiment.Report{
		ID:        rj.ID,
		Title:     rj.Title,
		Header:    rj.Header,
		Rows:      rj.Rows,
		PaperRows: rj.PaperRows,
		Notes:     rj.Notes,
		Volatile:  rj.Volatile,
	}
	if rj.HasSeries {
		rec := trace.NewRecorder()
		for _, sj := range rj.Series {
			if len(sj.T) != len(sj.V) {
				return nil, fmt.Errorf("run: decode %s: series %q has %d times, %d values",
					digest, sj.Name, len(sj.T), len(sj.V))
			}
			for i := range sj.T {
				if err := rec.Add(sj.Name, sj.T[i], sj.V[i]); err != nil {
					return nil, fmt.Errorf("run: decode %s: %w", digest, err)
				}
			}
		}
		rep.Series = rec
	}
	return &Result{Report: rep, Events: env.Events, Optimize: env.Optimize}, nil
}
