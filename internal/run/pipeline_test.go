package run

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"hcperf/internal/experiment"
	"hcperf/internal/store"
)

// fakeExec returns a distinct report per call and counts invocations.
func fakeExec(calls *int) Func {
	return func(ctx context.Context, req Request) (*Result, error) {
		*calls++
		return &Result{Report: &experiment.Report{
			ID:    "fake-" + req.Kind(),
			Title: fmt.Sprintf("call %d", *calls),
		}}, nil
	}
}

func openPipelineDisk(t *testing.T) (*store.Disk, *store.Metrics) {
	t.Helper()
	m := &store.Metrics{}
	d, err := store.OpenDisk(filepath.Join(t.TempDir(), "store"), 0, m)
	if err != nil {
		t.Fatal(err)
	}
	return d, m
}

func TestPipelineMissThenDiskHit(t *testing.T) {
	d, _ := openPipelineDisk(t)
	calls := 0
	p := &Pipeline{Disk: d, Exec: fakeExec(&calls)}
	req := Request{Scenario: "carfollow"}

	res1, tier, digest, err := p.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if tier != store.TierMiss || calls != 1 {
		t.Fatalf("first run: tier=%s calls=%d, want miss/1", tier, calls)
	}
	if digest == "" {
		t.Fatal("pipeline returned no digest")
	}

	// Same request again: the persisted result must be served from disk
	// without re-executing, and decode to an equal report digest.
	res2, tier, digest2, err := p.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if tier != store.TierDisk || calls != 1 {
		t.Fatalf("second run: tier=%s calls=%d, want disk/1", tier, calls)
	}
	if digest2 != digest {
		t.Errorf("digest changed between runs: %s vs %s", digest[:12], digest2[:12])
	}
	if got, want := mustDigest(t, res2.Report), mustDigest(t, res1.Report); got != want {
		t.Errorf("disk-served report digest = %s, want %s", got[:12], want[:12])
	}
}

func TestPipelineMemoryTierWins(t *testing.T) {
	d, m := openPipelineDisk(t)
	calls := 0
	resident := map[string]*Result{}
	p := &Pipeline{
		Lookup:  func(digest string) (*Result, bool) { r, ok := resident[digest]; return r, ok },
		Disk:    d,
		Metrics: m,
		Exec:    fakeExec(&calls),
	}
	req := Request{Scenario: "carfollow"}

	res, tier, digest, err := p.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if tier != store.TierMiss {
		t.Fatalf("cold run tier = %s, want miss", tier)
	}
	resident[digest] = res

	_, tier, _, err = p.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if tier != store.TierMemory || calls != 1 {
		t.Fatalf("warm run: tier=%s calls=%d, want memory/1", tier, calls)
	}
	if hits, misses := m.MemoryHits.Load(), m.MemoryMisses.Load(); hits != 1 || misses != 1 {
		t.Errorf("memory hits/misses = %d/%d, want 1/1", hits, misses)
	}
}

func TestPipelineQuarantinesCorruptDiskEntry(t *testing.T) {
	d, m := openPipelineDisk(t)
	calls := 0
	p := &Pipeline{Disk: d, Exec: fakeExec(&calls)}
	req := Request{Scenario: "carfollow"}

	_, _, digest, err := p.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the persisted entry with garbage: the next run must treat
	// it as a miss, quarantine it and recompute.
	if err := d.Put(digest, []byte("truncated garbage")); err != nil {
		t.Fatal(err)
	}
	_, tier, _, err := p.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if tier != store.TierMiss || calls != 2 {
		t.Fatalf("corrupt-entry run: tier=%s calls=%d, want miss/2", tier, calls)
	}
	if got := m.Corrupt.Load(); got != 1 {
		t.Errorf("corrupt counter = %d, want 1", got)
	}
	// The recompute re-persisted a good entry; the next run is a disk hit.
	_, tier, _, err = p.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if tier != store.TierDisk || calls != 2 {
		t.Fatalf("post-quarantine run: tier=%s calls=%d, want disk/2", tier, calls)
	}
}

func TestPipelineNormalizeErrorSurfaces(t *testing.T) {
	p := &Pipeline{}
	if _, _, _, err := p.Run(context.Background(), Request{}); err == nil {
		t.Fatal("invalid request passed the pipeline")
	}
}
