package run

import (
	"context"
	"strings"
	"testing"
)

func TestNormalizeValidation(t *testing.T) {
	tests := []struct {
		name    string
		give    Request
		wantErr string
	}{
		{name: "neither", give: Request{}, wantErr: "exactly one"},
		{name: "both", give: Request{Experiment: "fig5", Scenario: "carfollow"}, wantErr: "exactly one"},
		{name: "unknown experiment", give: Request{Experiment: "fig99"}, wantErr: "unknown experiment"},
		{name: "unknown scenario", give: Request{Scenario: "flying"}, wantErr: "unknown scenario"},
		{name: "unknown scheme", give: Request{Scenario: "carfollow", Scheme: "fifo"}, wantErr: "unknown scheme"},
		{name: "negative duration", give: Request{Scenario: "carfollow", Duration: -1}, wantErr: "duration"},
		{name: "experiment ok", give: Request{Experiment: "fig5"}},
		{name: "scenario ok", give: Request{Scenario: "lanekeep", Scheme: "edf-vd", Duration: 5, Trace: true}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := tt.give.Normalize()
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("Normalize: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("Normalize err = %v, want containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestDigestCanonicalization(t *testing.T) {
	norm := func(r Request) Request {
		t.Helper()
		out, err := r.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	// Defaults are canonical: seed 0 and seed 1 are the same request, and
	// scenario-only fields cannot split the experiment cache.
	a := norm(Request{Experiment: "fig5"})
	b := norm(Request{Experiment: "fig5", Seed: 1, Scheme: "edf", Duration: 30, Trace: true})
	if a.Digest() != b.Digest() {
		t.Error("equivalent experiment requests produced different digests")
	}
	// The default scheme is canonical for scenarios.
	c := norm(Request{Scenario: "carfollow"})
	d := norm(Request{Scenario: "carfollow", Scheme: "hcperf", Seed: 1})
	if c.Digest() != d.Digest() {
		t.Error("equivalent scenario requests produced different digests")
	}
	// Distinct requests must not collide.
	distinct := []Request{
		a,
		c,
		norm(Request{Experiment: "fig5", Seed: 2}),
		norm(Request{Experiment: "fig4"}),
		norm(Request{Scenario: "carfollow", Scheme: "edf"}),
		norm(Request{Scenario: "carfollow", Duration: 5}),
		norm(Request{Scenario: "carfollow", Trace: true}),
	}
	seen := make(map[string]int)
	for i, r := range distinct {
		if prev, dup := seen[r.Digest()]; dup {
			t.Errorf("requests %d and %d share digest %s", prev, i, r.Digest()[:12])
		}
		seen[r.Digest()] = i
	}
}

func TestExecuteExperiment(t *testing.T) {
	req, err := Request{Experiment: "fig5"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil || res.Report.ID != "fig5" {
		t.Fatalf("Execute report = %+v, want fig5", res.Report)
	}
	if len(res.Events) != 0 {
		t.Error("experiment run unexpectedly captured lifecycle events")
	}
}

func TestExecuteScenarioWithTrace(t *testing.T) {
	req, err := Request{Scenario: "carfollow", Scheme: "edf", Duration: 2, Trace: true}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil || len(res.Report.Rows) == 0 {
		t.Fatal("scenario run produced no report rows")
	}
	if len(res.Events) == 0 {
		t.Error("traced scenario run captured no lifecycle events")
	}
}
