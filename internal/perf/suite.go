package perf

import (
	"flag"
	"fmt"
	"math/rand"
	"testing"

	"hcperf/internal/dag"
	"hcperf/internal/engine"
	"hcperf/internal/exectime"
	"hcperf/internal/fleet"
	"hcperf/internal/hungarian"
	"hcperf/internal/mfc"
	"hcperf/internal/scenario"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
)

// Bench is one named entry of the gated benchmark suite.
type Bench struct {
	Name string
	Fn   func(b *testing.B)
}

// Suite returns the benchmarks the perf baseline tracks: the hot paths the
// dispatch-layer optimisations target (γ search, dispatch selection,
// Hungarian matching one-shot vs. reused Solver, a full engine second per
// policy, one controller step). Names are stable identifiers — they key the
// baseline JSON, so renaming one invalidates the checked-in baseline.
func Suite() []Bench {
	return []Bench{
		{"DynamicSelect/queue=32", func(b *testing.B) { benchDynamicSelect(b, 32) }},
		{"GammaSearch/queue=8", func(b *testing.B) { benchGammaSearch(b, 8) }},
		{"GammaSearch/queue=128", func(b *testing.B) { benchGammaSearch(b, 128) }},
		{"HungarianSolve/n=23", func(b *testing.B) { benchHungarianOneShot(b, 23) }},
		{"HungarianSolver/n=23", func(b *testing.B) { benchHungarianReuse(b, 23) }},
		{"EngineSecond/EDF", func(b *testing.B) {
			benchEngineSecond(b, func() sched.Scheduler { return sched.EDF{} })
		}},
		{"EngineSecond/HCPerf", func(b *testing.B) {
			benchEngineSecond(b, func() sched.Scheduler { return sched.NewDynamic(0) })
		}},
		{"MFCStep", benchMFCStep},
		{"FleetSecond/N=16", func(b *testing.B) { benchFleetSecond(b, 16) }},
		{"FleetSecond/N=256", func(b *testing.B) { benchFleetSecond(b, 256) }},
		{"SimtimeSchedule", benchSimtimeSchedule},
		{"SimtimeTickerChurn", benchSimtimeTickerChurn},
	}
}

// benchSimtimeSchedule measures raw schedule+step churn on a warm event
// queue — the timer wheel's steady state, which must stay 0 allocs/op.
func benchSimtimeSchedule(b *testing.B) {
	q := simtime.NewEventQueue()
	fn := func(simtime.Time) {}
	for i := 0; i < 64; i++ {
		if _, err := q.After(0.001, fn); err != nil {
			b.Fatal(err)
		}
	}
	for q.Step() {
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.After(0.004, fn); err != nil {
			b.Fatal(err)
		}
		q.Step()
	}
}

// benchSimtimeTickerChurn drives the kernel's dominant workload shape: 32
// tickers with HCPerf-like periods sharing one queue for one simulated
// second.
func benchSimtimeTickerChurn(b *testing.B) {
	periods := []simtime.Duration{0.008, 0.010, 0.0125, 0.020, 0.025, 0.040, 0.050, 0.125}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := simtime.NewEventQueue()
		for t := 0; t < 32; t++ {
			if _, err := q.NewTicker(0, periods[t%len(periods)], func(simtime.Time) {}); err != nil {
				b.Fatal(err)
			}
		}
		if err := q.RunUntil(1); err != nil {
			b.Fatal(err)
		}
	}
}

// RunSuite runs every suite benchmark via testing.Benchmark and returns the
// collected baseline. benchtime sets the standard -test.benchtime value
// (e.g. "100x" for a fixed iteration count, "1s" for a duration); empty
// keeps the harness default. It works from a plain binary (hcperf-bench) as
// well as from inside a test.
func RunSuite(benchtime string) (*Baseline, error) {
	if benchtime != "" {
		// In a non-test binary the testing flags are unregistered until
		// testing.Init; inside a test binary they already exist and a
		// second Init would panic on re-registration.
		if flag.Lookup("test.benchtime") == nil {
			testing.Init()
		}
		if err := flag.Set("test.benchtime", benchtime); err != nil {
			return nil, fmt.Errorf("perf: setting benchtime %q: %w", benchtime, err)
		}
	}
	base := &Baseline{Benchtime: benchtime}
	for _, bench := range Suite() {
		r := testing.Benchmark(bench.Fn)
		if r.N == 0 {
			return nil, fmt.Errorf("perf: benchmark %s did not run (failed inside testing.Benchmark?)", bench.Name)
		}
		base.Results = append(base.Results, Result{
			Name:        bench.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: float64(r.AllocsPerOp()),
			BytesPerOp:  float64(r.AllocedBytesPerOp()),
		})
	}
	base.Sort()
	return base, nil
}

// RunSuiteBest runs the suite repeat times and keeps, per benchmark, the
// result with the lowest ns/op. Minimum-of-N is the standard noise-robust
// benchmark estimator: scheduler preemption, frequency scaling and cache
// pollution only ever add time, so the minimum is the closest observable to
// the true cost. allocs/op and B/op are deterministic across runs, so the
// choice of run does not disturb them.
func RunSuiteBest(benchtime string, repeat int) (*Baseline, error) {
	if repeat < 1 {
		repeat = 1
	}
	best, err := RunSuite(benchtime)
	if err != nil {
		return nil, err
	}
	for r := 1; r < repeat; r++ {
		next, err := RunSuite(benchtime)
		if err != nil {
			return nil, err
		}
		for i := range best.Results {
			if n := next.Lookup(best.Results[i].Name); n != nil && n.NsPerOp < best.Results[i].NsPerOp {
				best.Results[i] = *n
			}
		}
	}
	return best, nil
}

// suiteJobs builds a deterministic pseudo-random ready queue of n jobs, the
// same shape the top-level micro-benchmarks use.
func suiteJobs(n int) []*sched.Job {
	rng := rand.New(rand.NewSource(1))
	jobs := make([]*sched.Job, n)
	for i := range jobs {
		d := simtime.Duration(0.02 + rng.Float64()*0.08)
		jobs[i] = &sched.Job{
			Task: &dag.Task{
				ID:          dag.TaskID(i),
				Name:        fmt.Sprintf("t%d", i),
				Priority:    rng.Intn(23) + 1,
				RelDeadline: d,
				Exec:        exectime.Constant(simtime.Duration(0.002 + rng.Float64()*0.02)),
			},
			Release:     simtime.Time(rng.Float64() * 0.01),
			AbsDeadline: simtime.Time(rng.Float64()*0.01) + d,
			EstExec:     simtime.Duration(0.002 + rng.Float64()*0.02),
		}
	}
	return jobs
}

func benchDynamicSelect(b *testing.B, n int) {
	b.ReportAllocs()
	jobs := suiteJobs(n)
	dyn := sched.NewDynamic(0.02)
	dyn.SetNominalU(0.01)
	st := &sched.ProcState{NumProcs: 2, Remaining: make([]simtime.Duration, 2)}
	dyn.Recompute(0, jobs, st)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if idx := dyn.Select(0, jobs, 0, st); idx < 0 {
			b.Fatal("no job selected")
		}
	}
}

func benchGammaSearch(b *testing.B, n int) {
	b.ReportAllocs()
	jobs := suiteJobs(n)
	dyn := sched.NewDynamic(0.02)
	dyn.SetNominalU(0.01)
	st := &sched.ProcState{NumProcs: 2, Remaining: make([]simtime.Duration, 2)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dyn.Recompute(0, jobs, st)
	}
}

// suiteCost builds a deterministic n x n cost matrix.
func suiteCost(n int) [][]float64 {
	rng := rand.New(rand.NewSource(1))
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = rng.Float64()
		}
	}
	return cost
}

func benchHungarianOneShot(b *testing.B, n int) {
	b.ReportAllocs()
	cost := suiteCost(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := hungarian.Solve(cost); err != nil {
			b.Fatal(err)
		}
	}
}

func benchHungarianReuse(b *testing.B, n int) {
	b.ReportAllocs()
	cost := suiteCost(n)
	var s hungarian.Solver
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Solve(cost); err != nil {
			b.Fatal(err)
		}
	}
}

func benchEngineSecond(b *testing.B, mk func() sched.Scheduler) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := dag.ADGraph23()
		if err != nil {
			b.Fatal(err)
		}
		q := simtime.NewEventQueue()
		eng, err := engine.New(engine.Config{
			Graph:     g,
			Scheduler: mk(),
			NumProcs:  2,
			Queue:     q,
			Seed:      1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Start(); err != nil {
			b.Fatal(err)
		}
		if err := q.RunUntil(1); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFleetSecond measures one simulated second of an N-vehicle
// platoon-coupled fleet — N full closed loops (engine, coordinator,
// vehicle dynamics) interleaved on one shared clock, the fleet layer's
// end-to-end hot path.
func benchFleetSecond(b *testing.B, n int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fleet.Run(fleet.Config{
			Base:     scenario.CarFollowingConfig{Scheme: scenario.SchemeHCPerf, Duration: 1},
			N:        n,
			Coupling: scenario.FleetCouplingPlatoon,
			Spacing:  18,
			Seed:     1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchMFCStep(b *testing.B) {
	b.ReportAllocs()
	c, err := mfc.New(mfc.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Step(simtime.Time(i)*100*simtime.Millisecond, 1.5); err != nil {
			b.Fatal(err)
		}
	}
}
