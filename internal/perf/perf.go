// Package perf defines the machine-readable performance baseline for the
// framework's hot paths and the comparator the CI benchmark gate runs.
//
// A Baseline is a named set of benchmark results (ns/op, allocs/op, B/op)
// serialised as deterministic JSON; BENCH_baseline.json at the repository
// root is the checked-in reference, regenerated via `make bench-update`.
// Compare diffs a fresh run against the reference under per-metric relative
// thresholds and renders a benchstat-style table, so `make bench-check`
// (and the bench-gate CI job) can fail on regressions without any external
// tooling.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// Baseline is a set of benchmark results from one suite run. Results are
// kept sorted by name so the JSON encoding is deterministic and diffs stay
// readable.
type Baseline struct {
	// Benchtime records the -benchtime the suite ran with (e.g. "100x"),
	// so a checked-in baseline documents its own measurement conditions.
	Benchtime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

// Sort orders the results by name (the canonical encoding order).
func (b *Baseline) Sort() {
	sort.Slice(b.Results, func(i, j int) bool { return b.Results[i].Name < b.Results[j].Name })
}

// Lookup returns the result with the given name, or nil.
func (b *Baseline) Lookup(name string) *Result {
	for i := range b.Results {
		if b.Results[i].Name == name {
			return &b.Results[i]
		}
	}
	return nil
}

// Write encodes the baseline as indented JSON with results sorted by name.
func (b *Baseline) Write(w io.Writer) error {
	b.Sort()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// WriteFile writes the baseline to path via Write.
func (b *Baseline) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read decodes a baseline from JSON.
func Read(r io.Reader) (*Baseline, error) {
	var b Baseline
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("perf: decoding baseline: %w", err)
	}
	b.Sort()
	return &b, nil
}

// ReadFile reads a baseline from the JSON file at path.
func ReadFile(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Thresholds are the maximum tolerated relative regressions per metric
// (0.25 = new may be up to 25% worse than old). Allocations per op are
// machine-independent, so their threshold is tight; wall-clock ns/op is
// noisy on shared CI runners, so its threshold is deliberately loose.
type Thresholds struct {
	NsPerOp     float64
	AllocsPerOp float64
}

// DefaultThresholds returns the gate's thresholds: 40% on ns/op, 25% on
// allocs/op.
func DefaultThresholds() Thresholds {
	return Thresholds{NsPerOp: 0.40, AllocsPerOp: 0.25}
}

// Delta is the comparison of one benchmark between two baselines.
type Delta struct {
	Name     string
	Old, New Result
	// NsDelta and AllocsDelta are relative changes: (new-old)/old.
	// An old value of zero with a non-zero new value yields +Inf.
	NsDelta     float64
	AllocsDelta float64
	// NsRegressed / AllocsRegressed report whether the metric exceeded
	// its threshold.
	NsRegressed     bool
	AllocsRegressed bool
}

// Comparison is the result of diffing a fresh baseline against a reference.
type Comparison struct {
	Thresholds Thresholds
	Deltas     []Delta
	// Missing lists benchmarks present in the reference but absent from
	// the fresh run; a gate treats these as failures (a benchmark that
	// silently disappears is a hole in coverage, not an improvement).
	Missing []string
	// Added lists benchmarks present only in the fresh run; informational.
	Added []string
}

// relDelta computes (new-old)/old with the zero-old conventions: 0→0 is no
// change, 0→x is an infinite regression.
func relDelta(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (new - old) / old
}

// Compare diffs new against old under the given thresholds. Benchmarks are
// matched by name; the result's Deltas are sorted by name.
func Compare(old, new *Baseline, th Thresholds) *Comparison {
	cmp := &Comparison{Thresholds: th}
	for _, o := range old.Results {
		n := new.Lookup(o.Name)
		if n == nil {
			cmp.Missing = append(cmp.Missing, o.Name)
			continue
		}
		d := Delta{
			Name:        o.Name,
			Old:         o,
			New:         *n,
			NsDelta:     relDelta(o.NsPerOp, n.NsPerOp),
			AllocsDelta: relDelta(o.AllocsPerOp, n.AllocsPerOp),
		}
		d.NsRegressed = d.NsDelta > th.NsPerOp
		d.AllocsRegressed = d.AllocsDelta > th.AllocsPerOp
		cmp.Deltas = append(cmp.Deltas, d)
	}
	for _, n := range new.Results {
		if old.Lookup(n.Name) == nil {
			cmp.Added = append(cmp.Added, n.Name)
		}
	}
	sort.Slice(cmp.Deltas, func(i, j int) bool { return cmp.Deltas[i].Name < cmp.Deltas[j].Name })
	sort.Strings(cmp.Missing)
	sort.Strings(cmp.Added)
	return cmp
}

// Regressed reports whether any benchmark exceeded a threshold or went
// missing from the fresh run.
func (c *Comparison) Regressed() bool {
	if len(c.Missing) > 0 {
		return true
	}
	for _, d := range c.Deltas {
		if d.NsRegressed || d.AllocsRegressed {
			return true
		}
	}
	return false
}

// fmtDelta renders a relative change as a signed percentage.
func fmtDelta(d float64) string {
	if math.IsInf(d, 1) {
		return "+inf"
	}
	return fmt.Sprintf("%+.1f%%", d*100)
}

// String renders the comparison as a benchstat-style table: one row per
// benchmark, old/new/delta columns for ns/op and allocs/op, with regressed
// metrics flagged. Missing and added benchmarks are listed after the table.
func (c *Comparison) String() string {
	var sb strings.Builder
	rows := make([][6]string, 0, len(c.Deltas))
	header := [6]string{"name", "old ns/op", "new ns/op", "delta", "old allocs/op", "new allocs/op"}
	widths := [6]int{}
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, d := range c.Deltas {
		nsFlag, allocFlag := "", ""
		if d.NsRegressed {
			nsFlag = " !"
		}
		if d.AllocsRegressed {
			allocFlag = " !"
		}
		row := [6]string{
			d.Name,
			fmt.Sprintf("%.0f", d.Old.NsPerOp),
			fmt.Sprintf("%.0f", d.New.NsPerOp),
			fmtDelta(d.NsDelta) + nsFlag,
			fmt.Sprintf("%.1f", d.Old.AllocsPerOp),
			fmt.Sprintf("%.1f (%s)%s", d.New.AllocsPerOp, fmtDelta(d.AllocsDelta), allocFlag),
		}
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
		rows = append(rows, row)
	}
	writeRow := func(row [6]string) {
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&sb, "%-*s", widths[i], cell)
			} else {
				fmt.Fprintf(&sb, "%*s", widths[i], cell)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	for _, row := range rows {
		writeRow(row)
	}
	for _, name := range c.Missing {
		fmt.Fprintf(&sb, "missing from new run: %s\n", name)
	}
	for _, name := range c.Added {
		fmt.Fprintf(&sb, "new benchmark (not in baseline): %s\n", name)
	}
	return sb.String()
}
