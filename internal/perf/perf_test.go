package perf

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func mkBaseline(results ...Result) *Baseline {
	b := &Baseline{Benchtime: "100x", Results: results}
	b.Sort()
	return b
}

func TestCompareImprovement(t *testing.T) {
	old := mkBaseline(Result{Name: "A", NsPerOp: 1000, AllocsPerOp: 10, BytesPerOp: 640})
	new := mkBaseline(Result{Name: "A", NsPerOp: 600, AllocsPerOp: 2, BytesPerOp: 64})
	cmp := Compare(old, new, DefaultThresholds())
	if cmp.Regressed() {
		t.Fatalf("improvement flagged as regression:\n%s", cmp)
	}
	if len(cmp.Deltas) != 1 {
		t.Fatalf("got %d deltas, want 1", len(cmp.Deltas))
	}
	d := cmp.Deltas[0]
	if got, want := d.NsDelta, -0.4; math.Abs(got-want) > 1e-9 {
		t.Errorf("NsDelta = %v, want %v", got, want)
	}
	if got, want := d.AllocsDelta, -0.8; math.Abs(got-want) > 1e-9 {
		t.Errorf("AllocsDelta = %v, want %v", got, want)
	}
}

func TestCompareNsRegression(t *testing.T) {
	old := mkBaseline(Result{Name: "A", NsPerOp: 1000, AllocsPerOp: 10})
	new := mkBaseline(Result{Name: "A", NsPerOp: 1500, AllocsPerOp: 10})
	cmp := Compare(old, new, DefaultThresholds())
	if !cmp.Regressed() {
		t.Fatal("50%% ns/op regression not flagged under a 40%% threshold")
	}
	if !cmp.Deltas[0].NsRegressed || cmp.Deltas[0].AllocsRegressed {
		t.Errorf("want ns regressed only, got ns=%t allocs=%t",
			cmp.Deltas[0].NsRegressed, cmp.Deltas[0].AllocsRegressed)
	}
}

func TestCompareAllocsRegression(t *testing.T) {
	old := mkBaseline(Result{Name: "A", NsPerOp: 1000, AllocsPerOp: 10})
	new := mkBaseline(Result{Name: "A", NsPerOp: 1000, AllocsPerOp: 13})
	cmp := Compare(old, new, DefaultThresholds())
	if !cmp.Regressed() {
		t.Fatal("30%% allocs/op regression not flagged under a 25%% threshold")
	}
	// The same run passes under a looser allocs threshold.
	loose := Compare(old, new, Thresholds{NsPerOp: 0.40, AllocsPerOp: 0.50})
	if loose.Regressed() {
		t.Fatal("30%% allocs regression flagged under a 50%% threshold")
	}
}

func TestCompareWithinThreshold(t *testing.T) {
	old := mkBaseline(Result{Name: "A", NsPerOp: 1000, AllocsPerOp: 8})
	new := mkBaseline(Result{Name: "A", NsPerOp: 1300, AllocsPerOp: 9})
	cmp := Compare(old, new, DefaultThresholds())
	if cmp.Regressed() {
		t.Fatalf("within-threshold drift flagged as regression:\n%s", cmp)
	}
}

func TestCompareZeroAllocsBaseline(t *testing.T) {
	// 0 -> 0 is no change; 0 -> anything positive is an infinite
	// regression (a previously allocation-free path started allocating).
	old := mkBaseline(
		Result{Name: "Clean", AllocsPerOp: 0, NsPerOp: 100},
		Result{Name: "Dirtied", AllocsPerOp: 0, NsPerOp: 100},
	)
	new := mkBaseline(
		Result{Name: "Clean", AllocsPerOp: 0, NsPerOp: 100},
		Result{Name: "Dirtied", AllocsPerOp: 1, NsPerOp: 100},
	)
	cmp := Compare(old, new, DefaultThresholds())
	if !cmp.Regressed() {
		t.Fatal("0 -> 1 allocs/op not flagged")
	}
	for _, d := range cmp.Deltas {
		switch d.Name {
		case "Clean":
			if d.AllocsRegressed {
				t.Error("0 -> 0 allocs flagged as regression")
			}
		case "Dirtied":
			if !d.AllocsRegressed || !math.IsInf(d.AllocsDelta, 1) {
				t.Errorf("0 -> 1 allocs: regressed=%t delta=%v, want true/+Inf",
					d.AllocsRegressed, d.AllocsDelta)
			}
		}
	}
	if !strings.Contains(cmp.String(), "+inf") {
		t.Errorf("String() should render an infinite delta:\n%s", cmp)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	old := mkBaseline(
		Result{Name: "A", NsPerOp: 1000, AllocsPerOp: 10},
		Result{Name: "B", NsPerOp: 2000, AllocsPerOp: 20},
	)
	new := mkBaseline(Result{Name: "A", NsPerOp: 1000, AllocsPerOp: 10})
	cmp := Compare(old, new, DefaultThresholds())
	if !cmp.Regressed() {
		t.Fatal("missing benchmark not treated as a gate failure")
	}
	if len(cmp.Missing) != 1 || cmp.Missing[0] != "B" {
		t.Fatalf("Missing = %v, want [B]", cmp.Missing)
	}
	if !strings.Contains(cmp.String(), "missing from new run: B") {
		t.Errorf("String() should report the missing benchmark:\n%s", cmp)
	}
}

func TestCompareAddedBenchmark(t *testing.T) {
	old := mkBaseline(Result{Name: "A", NsPerOp: 1000, AllocsPerOp: 10})
	new := mkBaseline(
		Result{Name: "A", NsPerOp: 1000, AllocsPerOp: 10},
		Result{Name: "C", NsPerOp: 5, AllocsPerOp: 0},
	)
	cmp := Compare(old, new, DefaultThresholds())
	if cmp.Regressed() {
		t.Fatal("an added benchmark must not fail the gate")
	}
	if len(cmp.Added) != 1 || cmp.Added[0] != "C" {
		t.Fatalf("Added = %v, want [C]", cmp.Added)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	b := mkBaseline(
		Result{Name: "Z", Iterations: 100, NsPerOp: 123.5, AllocsPerOp: 7, BytesPerOp: 576},
		Result{Name: "A", Iterations: 200, NsPerOp: 9.25, AllocsPerOp: 0, BytesPerOp: 0},
	)
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchtime != b.Benchtime {
		t.Errorf("Benchtime = %q, want %q", got.Benchtime, b.Benchtime)
	}
	if len(got.Results) != 2 || got.Results[0].Name != "A" || got.Results[1].Name != "Z" {
		t.Fatalf("round-trip results not sorted by name: %+v", got.Results)
	}
	if got.Results[1].NsPerOp != 123.5 || got.Results[1].AllocsPerOp != 7 {
		t.Errorf("round-trip lost values: %+v", got.Results[1])
	}
}

func TestBaselineDeterministicEncoding(t *testing.T) {
	a := mkBaseline(Result{Name: "B"}, Result{Name: "A"})
	b := mkBaseline(Result{Name: "A"}, Result{Name: "B"})
	var bufA, bufB bytes.Buffer
	if err := a.Write(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(&bufB); err != nil {
		t.Fatal(err)
	}
	if bufA.String() != bufB.String() {
		t.Error("encoding depends on insertion order")
	}
}

// TestRunSuiteSmoke runs the real suite at a single iteration to ensure
// every registered benchmark executes and yields named results — this is
// what hcperf-bench -json and the CI bench gate invoke.
func TestRunSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("suite smoke is not short")
	}
	base, err := RunSuite("1x")
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Results) != len(Suite()) {
		t.Fatalf("got %d results, want %d", len(base.Results), len(Suite()))
	}
	for _, r := range base.Results {
		if r.Name == "" || r.Iterations <= 0 {
			t.Errorf("malformed result: %+v", r)
		}
	}
}
