// Package version identifies a built binary from the build info the Go
// toolchain embeds: module version, VCS revision and dirty flag, and the
// toolchain itself. Deployed hcperf binaries report it via -version and
// the serving layer's GET /v1/version.
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Info is the identity of the running binary.
type Info struct {
	// Module is the main module path (e.g. "hcperf").
	Module string `json:"module"`
	// Version is the module version; "(devel)" for non-tagged builds.
	Version string `json:"version"`
	// Revision is the VCS commit, when the build embedded one.
	Revision string `json:"revision,omitempty"`
	// Time is the VCS commit time, when embedded.
	Time string `json:"time,omitempty"`
	// Dirty reports uncommitted changes at build time.
	Dirty bool `json:"dirty,omitempty"`
	// Go is the toolchain that built the binary.
	Go string `json:"go"`
}

// Get reads the build info embedded in the running binary. It degrades
// gracefully: binaries built without module or VCS info still report the
// toolchain.
func Get() Info {
	info := Info{Module: "hcperf", Version: "(devel)", Go: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Path != "" {
		info.Module = bi.Main.Path
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// String renders the identity on one line, the form the -version flags
// print.
func (i Info) String() string {
	s := fmt.Sprintf("%s %s (%s)", i.Module, i.Version, i.Go)
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
		if i.Dirty {
			s += "+dirty"
		}
	}
	return s
}
