package version

import (
	"strings"
	"testing"
)

func TestGet(t *testing.T) {
	info := Get()
	if info.Module == "" {
		t.Error("Module empty")
	}
	if info.Version == "" {
		t.Error("Version empty")
	}
	if !strings.HasPrefix(info.Go, "go") {
		t.Errorf("Go = %q, want go-prefixed toolchain version", info.Go)
	}
}

func TestString(t *testing.T) {
	i := Info{Module: "hcperf", Version: "v1.2.3", Go: "go1.22", Revision: "abcdef0123456789", Dirty: true}
	got := i.String()
	for _, want := range []string{"hcperf", "v1.2.3", "go1.22", "abcdef012345", "+dirty"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
	if strings.Contains(got, "abcdef0123456789") {
		t.Errorf("String() = %q, revision not truncated", got)
	}
}
