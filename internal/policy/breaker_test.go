package policy

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// breakerForTest returns a breaker with a small, exactly-known geometry:
// 10s window in 10 buckets, trips at 50% failures over >= 4 samples,
// 5s cooldown.
func breakerForTest(clk *fakeClock) *Breaker {
	return NewBreaker(BreakerConfig{
		Window:      10 * time.Second,
		Buckets:     10,
		ErrorRate:   0.5,
		MinRequests: 4,
		Cooldown:    5 * time.Second,
		Clock:       clk.Now,
	})
}

// mustAllow asserts admission and returns the completion callback.
func mustAllow(t *testing.T, b *Breaker) func(Outcome) {
	t.Helper()
	done, err := b.Allow()
	if err != nil {
		t.Fatalf("Allow: %v", err)
	}
	return done
}

func TestBreakerTripsOnWindowedErrorRate(t *testing.T) {
	clk := newFakeClock()
	b := breakerForTest(clk)

	mustAllow(t, b)(OutcomeSuccess)
	mustAllow(t, b)(OutcomeSuccess)
	mustAllow(t, b)(OutcomeFailure)
	if b.State() != BreakerClosed {
		t.Fatal("tripped below MinRequests samples")
	}
	// 4th sample: 2 failures / 4 total = 50% >= threshold.
	mustAllow(t, b)(OutcomeFailure)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open at 50%% over 4 samples", got)
	}
	if got := b.Opens(); got != 1 {
		t.Errorf("Opens() = %d, want 1", got)
	}
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Errorf("Allow while open: err = %v, want ErrBreakerOpen", err)
	}
	if got := b.ShortCircuits(); got != 1 {
		t.Errorf("ShortCircuits() = %d, want 1", got)
	}
}

func TestBreakerSuccessesHoldItClosed(t *testing.T) {
	clk := newFakeClock()
	b := breakerForTest(clk)
	// 49% failures over plenty of samples: stays closed.
	for i := 0; i < 51; i++ {
		mustAllow(t, b)(OutcomeSuccess)
	}
	for i := 0; i < 49; i++ {
		mustAllow(t, b)(OutcomeFailure)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed at 49%% failures", got)
	}
}

func TestBreakerWindowAgesOutOldFailures(t *testing.T) {
	clk := newFakeClock()
	b := breakerForTest(clk)
	// Three failures: below MinRequests, breaker stays closed.
	for i := 0; i < 3; i++ {
		mustAllow(t, b)(OutcomeFailure)
	}
	// A full window later those failures have aged out, so fresh traffic
	// at a 20% failure rate must not trip (it would be 4/8 = 50% if the
	// stale failures still counted).
	clk.Advance(11 * time.Second)
	mustAllow(t, b)(OutcomeFailure)
	for i := 0; i < 4; i++ {
		mustAllow(t, b)(OutcomeSuccess)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed (old failures must age out)", got)
	}
}

func trip(t *testing.T, clk *fakeClock, b *Breaker) {
	t.Helper()
	for i := 0; i < 4; i++ {
		mustAllow(t, b)(OutcomeFailure)
	}
	if b.State() != BreakerOpen {
		t.Fatal("setup: breaker did not trip")
	}
}

func TestBreakerHalfOpenSingleFlightProbe(t *testing.T) {
	clk := newFakeClock()
	b := breakerForTest(clk)
	trip(t, clk, b)

	// Before the cooldown: still open.
	clk.Advance(4 * time.Second)
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow 1s before cooldown expiry: err = %v, want ErrBreakerOpen", err)
	}

	// Cooldown expired: exactly one probe is admitted.
	clk.Advance(time.Second)
	probe := mustAllow(t, b)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second Allow during probe: err = %v, want ErrBreakerOpen (single-flight)", err)
	}

	// Probe succeeds: closed, and the pre-outage window is forgotten — a
	// single new failure must not re-trip instantly.
	probe(OutcomeSuccess)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	mustAllow(t, b)(OutcomeFailure)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v; the probe success must reset the window", got)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := breakerForTest(clk)
	trip(t, clk, b)

	clk.Advance(5 * time.Second)
	probe := mustAllow(t, b)
	probe(OutcomeFailure)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if got := b.Opens(); got != 2 {
		t.Errorf("Opens() = %d, want 2 (initial trip + failed probe)", got)
	}
	// The cooldown restarts from the failed probe.
	clk.Advance(4 * time.Second)
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Error("probe admitted before the restarted cooldown expired")
	}
	clk.Advance(time.Second)
	mustAllow(t, b)(OutcomeSuccess)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed after recovery", got)
	}
}

func TestBreakerIgnoredProbeReleasesSlot(t *testing.T) {
	clk := newFakeClock()
	b := breakerForTest(clk)
	trip(t, clk, b)

	clk.Advance(5 * time.Second)
	probe := mustAllow(t, b)
	// A cancelled probe says nothing about health: stay half-open, and
	// the next caller gets the probe slot.
	probe(OutcomeIgnored)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after ignored probe = %v, want half-open", got)
	}
	probe2 := mustAllow(t, b)
	probe2(OutcomeSuccess)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed", got)
	}
}

func TestBreakerLateCompletionAfterTripIsInert(t *testing.T) {
	clk := newFakeClock()
	b := breakerForTest(clk)
	inflight := mustAllow(t, b)
	trip(t, clk, b)
	// An execution admitted before the trip finishes afterwards: its
	// outcome must neither close the breaker nor corrupt the window.
	inflight(OutcomeSuccess)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open (late completion is inert)", got)
	}
}

func TestBreakerCompletionIsIdempotent(t *testing.T) {
	clk := newFakeClock()
	b := breakerForTest(clk)
	done := mustAllow(t, b)
	done(OutcomeFailure)
	done(OutcomeFailure) // second call must not double-count
	mustAllow(t, b)(OutcomeSuccess)
	mustAllow(t, b)(OutcomeFailure)
	// Counted honestly that is F, S, F — 3 samples, below MinRequests of
	// 4, so the breaker must stay closed. A double-counting breaker would
	// see F, F, S, F = 75% over 4 samples and trip.
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed (completion must be once-only)", got)
	}
	if got := b.Opens(); got != 0 {
		t.Errorf("Opens() = %d, want 0", got)
	}
}

func TestObserveClassification(t *testing.T) {
	var got []Outcome
	rec := func(o Outcome) { got = append(got, o) }
	Observe(nil, nil) // nil done: no-op, no panic
	Observe(rec, nil)
	Observe(rec, context.Canceled)
	Observe(rec, fmt.Errorf("wrapped: %w", context.DeadlineExceeded))
	Observe(rec, errors.New("boom"))
	want := []Outcome{OutcomeSuccess, OutcomeIgnored, OutcomeIgnored, OutcomeFailure}
	if len(got) != len(want) {
		t.Fatalf("observed %d outcomes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("outcome %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBreakerConcurrentTraffic(t *testing.T) {
	b := NewBreaker(BreakerConfig{MinRequests: 10_000_000}) // never trips
	var wg sync.WaitGroup
	const goroutines, each = 8, 200
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				done, err := b.Allow()
				if err != nil {
					t.Errorf("Allow: %v", err)
					return
				}
				if (g+i)%3 == 0 {
					done(OutcomeFailure)
				} else {
					done(OutcomeSuccess)
				}
			}
		}()
	}
	wg.Wait()
	if got := b.State(); got != BreakerClosed {
		t.Errorf("state = %v, want closed (MinRequests unreachable)", got)
	}
}
