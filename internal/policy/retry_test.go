package policy

import (
	"context"
	"errors"
	"testing"
	"time"
)

// sleepRecorder captures backoff delays without real sleeping.
type sleepRecorder struct{ delays []time.Duration }

func (s *sleepRecorder) Sleep(_ context.Context, d time.Duration) error {
	s.delays = append(s.delays, d)
	return nil
}

var errTransient = errors.New("transient")

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	rec := &sleepRecorder{}
	calls := 0
	err := Do(context.Background(), RetryConfig{Attempts: 3, Seed: 1, Sleep: rec.Sleep}, func(context.Context) error {
		if calls++; calls < 3 {
			return errTransient
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if len(rec.delays) != 2 {
		t.Errorf("slept %d times, want 2", len(rec.delays))
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	rec := &sleepRecorder{}
	calls := 0
	err := Do(context.Background(), RetryConfig{Attempts: 4, Seed: 1, Sleep: rec.Sleep}, func(context.Context) error {
		calls++
		return errTransient
	})
	if !errors.Is(err, errTransient) {
		t.Fatalf("err = %v, want the last attempt's error", err)
	}
	if calls != 4 {
		t.Errorf("calls = %d, want 4", calls)
	}
}

func TestDecorrelatedJitterBounds(t *testing.T) {
	base, max := 100*time.Millisecond, 2*time.Second
	rec := &sleepRecorder{}
	_ = Do(context.Background(), RetryConfig{
		Attempts: 10, BaseDelay: base, MaxDelay: max, Seed: 42, Sleep: rec.Sleep,
	}, func(context.Context) error { return errTransient })

	if len(rec.delays) != 9 {
		t.Fatalf("slept %d times, want 9", len(rec.delays))
	}
	prev := base
	for i, d := range rec.delays {
		if d < base || d > max {
			t.Errorf("delay %d = %v outside [%v, %v]", i, d, base, max)
		}
		// Decorrelated jitter: each delay is drawn from [base, 3·previous]
		// (before the cap), so it can never exceed 3× its predecessor.
		if limit := 3 * prev; d > limit && d != max {
			t.Errorf("delay %d = %v exceeds 3×previous (%v)", i, d, limit)
		}
		prev = d
	}

	// Same seed, same schedule: the jitter is deterministic for tests.
	rec2 := &sleepRecorder{}
	_ = Do(context.Background(), RetryConfig{
		Attempts: 10, BaseDelay: base, MaxDelay: max, Seed: 42, Sleep: rec2.Sleep,
	}, func(context.Context) error { return errTransient })
	for i := range rec.delays {
		if rec.delays[i] != rec2.delays[i] {
			t.Errorf("delay %d differs across seeded runs: %v vs %v", i, rec.delays[i], rec2.delays[i])
		}
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	rec := &sleepRecorder{}
	// Bank of 1: the deposit (0.1, capped) plus the initial token funds
	// exactly one retry; the second retry hits the empty bank.
	budget := NewBudget(0.1, 1)
	calls := 0
	err := Do(context.Background(), RetryConfig{
		Attempts: 5, Seed: 1, Budget: budget, Sleep: rec.Sleep,
	}, func(context.Context) error {
		calls++
		return errTransient
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if !errors.Is(err, errTransient) {
		t.Errorf("err = %v; the last attempt's error must ride along", err)
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2 (first attempt + one budgeted retry)", calls)
	}
	if got := budget.Exhausted(); got != 1 {
		t.Errorf("Exhausted() = %d, want 1", got)
	}
}

func TestRetryBudgetCapsAmplification(t *testing.T) {
	// 100 fresh, always-failing calls against a 10%-ratio budget with a
	// bank of 10: total retries are bounded by bank + ratio×fresh = 20,
	// i.e. amplification can never exceed ~10% of fresh load plus the
	// fixed bank, no matter how many attempts each call wants.
	budget := NewBudget(0.1, 10)
	rec := &sleepRecorder{}
	total := 0
	for i := 0; i < 100; i++ {
		_ = Do(context.Background(), RetryConfig{
			Attempts: 5, Seed: int64(i + 1), Budget: budget, Sleep: rec.Sleep,
		}, func(context.Context) error {
			total++
			return errTransient
		})
	}
	if retries := total - 100; retries > 20 {
		t.Errorf("retries = %d; budget must cap amplification at 20", retries)
	}
	if total < 100 {
		t.Errorf("total = %d; every fresh attempt must run", total)
	}
}

func TestPermanentStopsImmediately(t *testing.T) {
	calls := 0
	inner := errors.New("bad request")
	err := Do(context.Background(), RetryConfig{Attempts: 5, Seed: 1, Sleep: (&sleepRecorder{}).Sleep}, func(context.Context) error {
		calls++
		return Permanent(inner)
	})
	if !errors.Is(err, inner) {
		t.Fatalf("err = %v, want the permanent inner error", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (permanent errors never retry)", calls)
	}
}

func TestRetryStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Do(ctx, RetryConfig{Attempts: 5, Seed: 1, Sleep: sleepCtx}, func(context.Context) error {
		calls++
		cancel()
		return errTransient
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
}
