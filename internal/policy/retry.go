package policy

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBudgetExhausted is reported (wrapped around the last attempt's
// error) when a retry was wanted but the global retry budget had no
// tokens left.
var ErrBudgetExhausted = errors.New("policy: retry budget exhausted")

// Budget is a global retry budget: every fresh (first-attempt) request
// deposits Ratio tokens and every retry withdraws one, so across any
// window retries cannot exceed ~Ratio of fresh load no matter how many
// callers are failing. This is the amplification cap that keeps a
// brown-out from turning into a retry storm: with the default ratio 0.1,
// a fully failing backend sees at most 10% extra traffic from retries.
type Budget struct {
	mu     sync.Mutex
	ratio  float64
	cap    float64
	tokens float64

	exhausted atomic.Uint64
}

// NewBudget builds a budget crediting ratio tokens per fresh request
// (default 0.1), banking at most capTokens (default 10). The bank starts
// full so a cold process can retry its first few failures.
func NewBudget(ratio, capTokens float64) *Budget {
	if ratio <= 0 {
		ratio = 0.1
	}
	if capTokens <= 0 {
		capTokens = 10
	}
	return &Budget{ratio: ratio, cap: capTokens, tokens: capTokens}
}

// Deposit credits the budget for one fresh request.
func (b *Budget) Deposit() {
	b.mu.Lock()
	if b.tokens += b.ratio; b.tokens > b.cap {
		b.tokens = b.cap
	}
	b.mu.Unlock()
}

// Withdraw spends one token for a retry, reporting whether one was
// available.
func (b *Budget) Withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		b.exhausted.Add(1)
		return false
	}
	b.tokens--
	return true
}

// Exhausted counts retries refused for lack of budget.
func (b *Budget) Exhausted() uint64 { return b.exhausted.Load() }

// permanentError marks an error as not worth retrying.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Do stops retrying immediately and returns it.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// RetryConfig shapes one Do call.
type RetryConfig struct {
	// Attempts is the total number of attempts including the first
	// (default 3).
	Attempts int
	// BaseDelay seeds the decorrelated-jitter backoff (default 100ms);
	// MaxDelay caps it (default 3s).
	BaseDelay, MaxDelay time.Duration
	// Budget, when non-nil, is the global retry budget: Do deposits once
	// for the fresh attempt and must withdraw a token before every retry.
	Budget *Budget
	// Seed fixes the jitter RNG for deterministic tests (0 = time-seeded).
	Seed int64
	// Sleep waits between attempts (default a ctx-aware timer); tests
	// inject a recorder to pin the jitter bounds without real sleeping.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.Attempts < 1 {
		c.Attempts = 3
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 100 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 3 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = time.Now().UnixNano()
	}
	if c.Sleep == nil {
		c.Sleep = sleepCtx
	}
	return c
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do runs op with budgeted, decorrelated-jitter retries: the first
// attempt is free (and deposits into the budget), each retry needs a
// budget token, and the delay before retry i is drawn uniformly from
// [BaseDelay, 3·previous] capped at MaxDelay — the "decorrelated jitter"
// schedule, which spreads synchronized retry waves apart instead of
// letting every client hammer on the same exponential boundaries.
//
// Do stops early on success, on a Permanent-wrapped error, on context
// cancellation, or when the budget is exhausted (returning the last
// error wrapped with ErrBudgetExhausted).
func Do(ctx context.Context, cfg RetryConfig, op func(ctx context.Context) error) error {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Budget != nil {
		cfg.Budget.Deposit()
	}

	delay := cfg.BaseDelay
	var err error
	for attempt := 0; attempt < cfg.Attempts; attempt++ {
		if attempt > 0 {
			if cfg.Budget != nil && !cfg.Budget.Withdraw() {
				return fmt.Errorf("%w after %d attempts: %w", ErrBudgetExhausted, attempt, err)
			}
			// Decorrelated jitter: uniform in [base, 3·previous], capped.
			lo, hi := float64(cfg.BaseDelay), 3*float64(delay)
			delay = time.Duration(lo + rng.Float64()*(hi-lo))
			if delay > cfg.MaxDelay {
				delay = cfg.MaxDelay
			}
			if serr := cfg.Sleep(ctx, delay); serr != nil {
				return errors.Join(serr, err)
			}
		}
		if err = op(ctx); err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if ctx.Err() != nil {
			return errors.Join(ctx.Err(), err)
		}
	}
	return err
}
