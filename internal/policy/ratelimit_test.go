package policy

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced Clock shared by the policy tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// within asserts d is within tol of want (float refill math may be off by
// sub-microsecond rounding).
func within(t *testing.T, what string, d, want, tol time.Duration) {
	t.Helper()
	if diff := d - want; diff < -tol || diff > tol {
		t.Errorf("%s = %v, want %v (±%v)", what, d, want, tol)
	}
}

func TestTokenBucketRefillMath(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(LimiterConfig{Rate: 2, Burst: 4, Clock: clk.Now})

	// The full burst is available immediately, then the bucket is dry.
	for i := 0; i < 4; i++ {
		d := l.Allow("k")
		if !d.Allowed {
			t.Fatalf("request %d denied; want burst of 4 allowed", i)
		}
		if d.Remaining != 3-i {
			t.Errorf("request %d: remaining = %d, want %d", i, d.Remaining, 3-i)
		}
	}
	d := l.Allow("k")
	if d.Allowed {
		t.Fatal("5th request allowed on an empty bucket")
	}
	// One token refills in 1/rate = 500ms; the bucket refills fully in
	// burst/rate = 2s. Both are exact refill math, not guesses.
	within(t, "RetryAfter", d.RetryAfter, 500*time.Millisecond, time.Microsecond)
	within(t, "Reset", d.Reset, 2*time.Second, time.Microsecond)

	// 499ms later the bucket still lacks a whole token...
	clk.Advance(499 * time.Millisecond)
	d = l.Allow("k")
	if d.Allowed {
		t.Fatal("allowed 1ms before the refill instant")
	}
	within(t, "RetryAfter", d.RetryAfter, time.Millisecond, time.Microsecond)
	// ...and 1ms after that, exactly one request fits.
	clk.Advance(time.Millisecond)
	if d = l.Allow("k"); !d.Allowed {
		t.Fatal("denied at the promised refill instant")
	}
	if d = l.Allow("k"); d.Allowed {
		t.Fatal("second request allowed after a single-token refill")
	}

	if got, want := l.Allowed(), uint64(5); got != want {
		t.Errorf("Allowed() = %d, want %d", got, want)
	}
	if got, want := l.Limited(), uint64(3); got != want {
		t.Errorf("Limited() = %d, want %d", got, want)
	}
}

func TestBurstCapsRefill(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(LimiterConfig{Rate: 10, Burst: 3, Clock: clk.Now})
	l.Allow("k") // bucket now 2
	clk.Advance(time.Hour)
	// An idle hour banks only up to the burst, never more.
	for i := 0; i < 3; i++ {
		if !l.Allow("k").Allowed {
			t.Fatalf("request %d denied after long idle; want full burst", i)
		}
	}
	if l.Allow("k").Allowed {
		t.Error("4th request allowed; refill must cap at burst")
	}
}

func TestKeyIsolation(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(LimiterConfig{Rate: 1, Burst: 1, Clock: clk.Now})
	if !l.Allow("a").Allowed {
		t.Fatal("a's first request denied")
	}
	if l.Allow("a").Allowed {
		t.Fatal("a's second request allowed on an empty bucket")
	}
	// b's bucket is untouched by a's exhaustion.
	if !l.Allow("b").Allowed {
		t.Error("b denied; keys must have independent buckets")
	}
	if got := l.Keys(); got != 2 {
		t.Errorf("Keys() = %d, want 2", got)
	}
}

func TestMaxKeysEvictsLeastRecentlySeen(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(LimiterConfig{Rate: 1, Burst: 1, MaxKeys: 2, Clock: clk.Now})
	l.Allow("a") // a's bucket is now empty
	l.Allow("b")
	l.Allow("c") // evicts a (least recently seen)
	if got := l.Keys(); got != 2 {
		t.Fatalf("Keys() = %d, want 2 (MaxKeys)", got)
	}
	// a returns with a fresh (full) bucket: eviction forgot its debt.
	if !l.Allow("a").Allowed {
		t.Error("evicted key did not get a fresh bucket")
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},                       // never promise "now"
		{time.Millisecond, 1},        // sub-second rounds up
		{time.Second, 1},             // exact
		{1001 * time.Millisecond, 2}, // ceil, never floor
	}
	for _, c := range cases {
		if got := RetryAfterSeconds(c.d); got != c.want {
			t.Errorf("RetryAfterSeconds(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestLimiterConcurrentCounts(t *testing.T) {
	l := NewLimiter(LimiterConfig{Rate: 1, Burst: 50})
	const goroutines, each = 8, 25
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.Allow("shared")
			}
		}()
	}
	wg.Wait()
	if got := l.Allowed() + l.Limited(); got != goroutines*each {
		t.Errorf("allowed+limited = %d, want %d", got, goroutines*each)
	}
	// The burst bound holds under concurrency: at rate 1/s essentially no
	// refill happens during the test, so at most burst+1 tokens were ever
	// spendable.
	if got := l.Allowed(); got > 51 {
		t.Errorf("allowed = %d; burst of 50 must bound concurrent spend", got)
	}
}
