package policy

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// LimiterConfig sizes a per-key token-bucket rate limiter.
type LimiterConfig struct {
	// Rate is the sustained request rate per key in tokens/second
	// (required > 0).
	Rate float64
	// Burst is the bucket capacity — the largest instantaneous burst one
	// key may spend (default max(Rate, 1)).
	Burst float64
	// MaxKeys caps the number of tracked keys; the least recently seen
	// key is evicted past the cap, which resets its bucket to full. Size
	// it above the live client count (default 4096).
	MaxKeys int
	// Clock injects time (default time.Now).
	Clock Clock
}

// Limiter is a per-key token-bucket rate limiter: each key owns an
// independent bucket of Burst tokens refilled continuously at Rate
// tokens/second, and one request spends one token. Buckets are created
// full on first sight of a key, so a new client gets its burst allowance
// immediately. All decisions for one key are serialized under the
// limiter's mutex; the arithmetic is pure refill math over the injected
// clock, so a denied Decision carries the honest time until the next
// token — the value the serving layer returns as Retry-After.
type Limiter struct {
	rate    float64
	burst   float64
	maxKeys int
	clock   Clock

	allowed atomic.Uint64
	limited atomic.Uint64

	mu    sync.Mutex
	keys  map[string]*bucket
	order *list.List // front = most recently used key
}

// bucket is one key's token bucket; order is its recency-list element.
type bucket struct {
	key    string
	tokens float64
	last   time.Time
	elem   *list.Element
}

// Decision is the outcome of one Allow call, carrying everything the
// serving layer needs for the X-RateLimit-* and Retry-After headers.
type Decision struct {
	// Allowed reports whether the request may proceed.
	Allowed bool
	// Limit is the sustained per-second rate and Burst the bucket
	// capacity (constant across keys).
	Limit, Burst float64
	// Remaining is the number of whole tokens left in the key's bucket
	// after this decision.
	Remaining int
	// RetryAfter is the exact time until the bucket refills to one token
	// (zero when Allowed): the honest earliest instant at which an
	// identical request could succeed.
	RetryAfter time.Duration
	// Reset is the time until the bucket is completely full again.
	Reset time.Duration
}

// NewLimiter builds a limiter from cfg, applying defaults.
func NewLimiter(cfg LimiterConfig) *Limiter {
	if cfg.Rate <= 0 {
		panic("policy: limiter rate must be > 0")
	}
	if cfg.Burst <= 0 {
		cfg.Burst = math.Max(cfg.Rate, 1)
	}
	if cfg.MaxKeys < 1 {
		cfg.MaxKeys = 4096
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Limiter{
		rate:    cfg.Rate,
		burst:   cfg.Burst,
		maxKeys: cfg.MaxKeys,
		clock:   cfg.Clock,
		keys:    make(map[string]*bucket),
		order:   list.New(),
	}
}

// Allow spends one token from key's bucket if available and reports the
// decision.
func (l *Limiter) Allow(key string) Decision {
	now := l.clock()
	l.mu.Lock()
	defer l.mu.Unlock()

	b, ok := l.keys[key]
	if !ok {
		b = &bucket{key: key, tokens: l.burst, last: now}
		b.elem = l.order.PushFront(b)
		l.keys[key] = b
		if l.order.Len() > l.maxKeys {
			victim := l.order.Back().Value.(*bucket)
			l.order.Remove(victim.elem)
			delete(l.keys, victim.key)
		}
	} else {
		// Continuous refill: elapsed wall time converts to tokens, capped
		// at the burst size.
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
		l.order.MoveToFront(b.elem)
	}

	d := Decision{Limit: l.rate, Burst: l.burst}
	if b.tokens >= 1 {
		b.tokens--
		d.Allowed = true
		l.allowed.Add(1)
	} else {
		d.RetryAfter = time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
		l.limited.Add(1)
	}
	d.Remaining = int(b.tokens)
	d.Reset = time.Duration((l.burst - b.tokens) / l.rate * float64(time.Second))
	return d
}

// Allowed and Limited are lifetime decision counters; Keys is the number
// of currently tracked keys. All three feed the hcperf_ratelimit_*
// metrics.
func (l *Limiter) Allowed() uint64 { return l.allowed.Load() }
func (l *Limiter) Limited() uint64 { return l.limited.Load() }
func (l *Limiter) Keys() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.keys)
}

// RetryAfterSeconds renders a RetryAfter duration as the integral-seconds
// value of an HTTP Retry-After header: rounded up (the header has 1 s
// granularity and must never promise an earlier instant than the refill
// math allows), minimum 1.
func RetryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}
