package policy

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBreakerOpen is returned by Breaker.Allow while the breaker is open
// (or while a half-open probe is already in flight). Callers fail fast —
// the guarded stage is not attempted.
var ErrBreakerOpen = errors.New("policy: circuit breaker open")

// BreakerState is the breaker's position. The numeric values are the
// hcperf_breaker_state gauge: severity-ordered so alerts can threshold on
// "> 0".
type BreakerState int32

const (
	// BreakerClosed: traffic flows; outcomes are recorded in the window.
	BreakerClosed BreakerState = 0
	// BreakerHalfOpen: cooldown expired; exactly one probe request may
	// test the stage while everything else still fails fast.
	BreakerHalfOpen BreakerState = 1
	// BreakerOpen: the error rate tripped; everything fails fast until
	// the cooldown expires.
	BreakerOpen BreakerState = 2
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "invalid"
}

// Outcome classifies one guarded execution for the breaker's window.
type Outcome int

const (
	// OutcomeSuccess: the execution completed normally.
	OutcomeSuccess Outcome = iota
	// OutcomeFailure: the execution failed in a way the breaker should
	// count against the stage.
	OutcomeFailure
	// OutcomeIgnored: the execution ended for reasons that say nothing
	// about the stage's health (shutdown cancellation); it is not
	// counted, but still releases a half-open probe slot.
	OutcomeIgnored
)

// BreakerConfig sizes a circuit breaker.
type BreakerConfig struct {
	// Window is the sliding error-rate window length (default 10s).
	Window time.Duration
	// Buckets is the window's granularity: the window is a ring of this
	// many equal sub-intervals, so an outcome ages out at most one
	// bucket-width late (default 10).
	Buckets int
	// ErrorRate is the failure fraction over the window at which the
	// breaker trips, in (0, 1] (default 0.5).
	ErrorRate float64
	// MinRequests is the minimum number of counted outcomes in the
	// window before the rate can trip — a single early failure must not
	// open the breaker (default 20).
	MinRequests int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe (default 5s).
	Cooldown time.Duration
	// Clock injects time (default time.Now).
	Clock Clock
}

// withDefaults fills zero fields.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.Buckets < 1 {
		c.Buckets = 10
	}
	if c.ErrorRate <= 0 || c.ErrorRate > 1 {
		c.ErrorRate = 0.5
	}
	if c.MinRequests < 1 {
		c.MinRequests = 20
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// winBucket is one sub-interval of the sliding window, tagged with the
// absolute bucket index it currently holds counts for (so stale entries
// are detected by tag mismatch instead of eager ticking).
type winBucket struct {
	idx        int64
	succ, fail uint64
}

// Breaker is a three-state circuit breaker: closed → open when the
// failure fraction over a sliding window crosses ErrorRate (with at least
// MinRequests outcomes counted), open → half-open after Cooldown, and
// half-open → closed on a successful probe or back to open on a failed
// one. While half-open, exactly one probe is admitted at a time
// (single-flight); every other caller fails fast, so a recovering
// backend is never stampeded.
type Breaker struct {
	cfg         BreakerConfig
	bucketWidth time.Duration

	opens         atomic.Uint64
	shortCircuits atomic.Uint64

	mu       sync.Mutex
	state    BreakerState
	buckets  []winBucket
	openedAt time.Time
	probing  bool
}

// NewBreaker builds a breaker from cfg, applying defaults.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{
		cfg:         cfg,
		bucketWidth: cfg.Window / time.Duration(cfg.Buckets),
		buckets:     make([]winBucket, cfg.Buckets),
	}
}

// State reports the breaker's current position, advancing open →
// half-open if the cooldown has expired (so a scrape never reports a
// stale "open" past its cooldown).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpenLocked(b.cfg.Clock())
	return b.state
}

// Opens counts closed/half-open → open transitions; ShortCircuits counts
// Allow calls denied with ErrBreakerOpen. Both feed the
// hcperf_breaker_* metrics.
func (b *Breaker) Opens() uint64         { return b.opens.Load() }
func (b *Breaker) ShortCircuits() uint64 { return b.shortCircuits.Load() }

// Allow asks to run one guarded execution. On admission it returns a
// completion callback the caller MUST invoke exactly once with the
// execution's outcome; on denial it returns ErrBreakerOpen and the caller
// fails fast. The callback is safe to call from any goroutine.
func (b *Breaker) Allow() (done func(Outcome), err error) {
	now := b.cfg.Clock()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpenLocked(now)

	switch b.state {
	case BreakerOpen:
		b.shortCircuits.Add(1)
		return nil, ErrBreakerOpen
	case BreakerHalfOpen:
		if b.probing {
			// Single-flight: the probe slot is taken.
			b.shortCircuits.Add(1)
			return nil, ErrBreakerOpen
		}
		b.probing = true
		return b.completion(true), nil
	default: // closed
		return b.completion(false), nil
	}
}

// completion builds the once-only callback Allow hands out. probe marks a
// half-open probe, whose outcome decides the state transition; a closed-
// state completion just records into the window and checks the trip
// condition.
func (b *Breaker) completion(probe bool) func(Outcome) {
	var once sync.Once
	return func(o Outcome) {
		once.Do(func() {
			now := b.cfg.Clock()
			b.mu.Lock()
			defer b.mu.Unlock()
			if probe {
				b.probing = false
				switch o {
				case OutcomeSuccess:
					// The stage recovered: close and forget the window —
					// pre-outage failures must not immediately re-trip.
					b.state = BreakerClosed
					b.resetWindowLocked()
				case OutcomeFailure:
					b.openLocked(now)
				case OutcomeIgnored:
					// Says nothing about health; stay half-open and let
					// the next caller probe.
				}
				return
			}
			if b.state != BreakerClosed {
				// A pre-trip execution finishing after the breaker opened:
				// its outcome already lost the argument.
				return
			}
			b.recordLocked(now, o)
			if o == OutcomeFailure {
				b.maybeTripLocked(now)
			}
		})
	}
}

// maybeHalfOpenLocked advances open → half-open once the cooldown expires.
func (b *Breaker) maybeHalfOpenLocked(now time.Time) {
	if b.state == BreakerOpen && now.Sub(b.openedAt) >= b.cfg.Cooldown {
		b.state = BreakerHalfOpen
		b.probing = false
	}
}

// openLocked trips the breaker at now.
func (b *Breaker) openLocked(now time.Time) {
	b.state = BreakerOpen
	b.openedAt = now
	b.probing = false
	b.opens.Add(1)
}

// bucketFor returns the ring slot for now, zeroing it if it still holds a
// stale interval's counts.
func (b *Breaker) bucketFor(now time.Time) *winBucket {
	idx := now.UnixNano() / int64(b.bucketWidth)
	w := &b.buckets[int(idx%int64(len(b.buckets)))]
	if w.idx != idx {
		*w = winBucket{idx: idx}
	}
	return w
}

// recordLocked counts one outcome into the current window bucket.
func (b *Breaker) recordLocked(now time.Time, o Outcome) {
	w := b.bucketFor(now)
	switch o {
	case OutcomeSuccess:
		w.succ++
	case OutcomeFailure:
		w.fail++
	}
}

// windowLocked sums the live (non-aged-out) buckets.
func (b *Breaker) windowLocked(now time.Time) (succ, fail uint64) {
	idx := now.UnixNano() / int64(b.bucketWidth)
	oldest := idx - int64(len(b.buckets)) + 1
	for i := range b.buckets {
		if w := &b.buckets[i]; w.idx >= oldest && w.idx <= idx {
			succ += w.succ
			fail += w.fail
		}
	}
	return succ, fail
}

// maybeTripLocked opens the breaker if the windowed failure fraction
// crossed the threshold with enough samples.
func (b *Breaker) maybeTripLocked(now time.Time) {
	succ, fail := b.windowLocked(now)
	total := succ + fail
	if total < uint64(b.cfg.MinRequests) {
		return
	}
	if float64(fail)/float64(total) >= b.cfg.ErrorRate {
		b.openLocked(now)
	}
}

func (b *Breaker) resetWindowLocked() {
	for i := range b.buckets {
		b.buckets[i] = winBucket{}
	}
}

// Observe maps an execution result onto a breaker completion callback:
// nil is success, context cancellation is ignored (shutdown is not the
// stage's fault), anything else is a failure. A nil done (breaker
// disabled or denied) is a no-op, so call sites need no nil checks.
func Observe(done func(Outcome), err error) {
	if done == nil {
		return
	}
	switch {
	case err == nil:
		done(OutcomeSuccess)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		done(OutcomeIgnored)
	default:
		done(OutcomeFailure)
	}
}
