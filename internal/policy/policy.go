// Package policy is the service's composable resilience layer: a
// per-client token-bucket rate limiter (Limiter), a three-state circuit
// breaker over a sliding error-rate window (Breaker), and a
// retry-with-budget helper (Do + Budget) whose global budget caps retry
// amplification at a fixed fraction of fresh load.
//
// The three primitives are deliberately independent of the serving layer:
// they know nothing about HTTP, jobs or the run pipeline. The serving
// layer keys the limiter by API token (falling back to remote address),
// wraps the execute stage of the run pipeline in the breaker, and the
// load generator's client routes transient transport failures through the
// budgeted retry helper. Every time-dependent decision — bucket refill,
// window advance, cooldown expiry — goes through an injectable Clock so
// tests pin the exact math against a fake clock.
package policy

import "time"

// Clock abstracts time for the policy primitives so tests can drive
// refill, window and cooldown math deterministically. A nil Clock in any
// config means time.Now.
type Clock func() time.Time
