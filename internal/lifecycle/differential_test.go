// Differential harness: the same graph, seed and policy run through both
// execution backends — the discrete-event engine and the wall-clock rt
// executor — must produce identical lifecycle event sequences per job
// (modulo timestamps and processor assignment, which are backend-specific).
//
// Wall-clock runs carry OS scheduling jitter, so the graphs are uniformly
// time-scaled (every duration multiplied by scaleK, every rate divided by
// it): the semantics — data-triggered release structure, deadline slack
// relative to execution time, utilization — are unchanged, but millisecond
// jitter becomes negligible against the stretched deadlines, so a semantic
// divergence between the backends is the only way the sequences can differ.
package lifecycle_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hcperf/internal/dag"
	"hcperf/internal/engine"
	"hcperf/internal/exectime"
	"hcperf/internal/lifecycle"
	"hcperf/internal/rt"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
)

const (
	// scaleK slows the graphs down 3x for the wall-clock backend.
	scaleK = 3.0
	// runFor is how long each backend executes (simulated seconds for the
	// engine, wall-clock seconds for rt). Deep pipelines accrue up to one
	// primary-period of phase delay per stage before settling (rt sources
	// first fire a full period after Start), so the run must outlast that
	// transient by several sink periods.
	runFor = 2.4
	// deadlineSlack additionally stretches relative deadlines and E2E
	// bounds beyond scaleK. Deadlines only gate miss/expire outcomes —
	// with zero misses the release structure is identical — so the extra
	// slack hardens the harness against OS jitter under parallel test
	// load without weakening the structural comparison.
	deadlineSlack = 2.0
	diffM         = 4 // processors per backend
)

// scaledExec stretches every sample of an execution-time model by k.
type scaledExec struct {
	inner exectime.Model
	k     float64
}

func (s scaledExec) Sample(rng *rand.Rand, at simtime.Time, scene exectime.Scene) simtime.Duration {
	return s.inner.Sample(rng, at, scene) * simtime.Duration(s.k)
}

func (s scaledExec) Nominal() simtime.Duration {
	return s.inner.Nominal() * simtime.Duration(s.k)
}

// scaleGraph returns a copy of g with all durations multiplied and all rates
// divided by k, preserving topology and predecessor (primary-edge) order.
func scaleGraph(t *testing.T, g *dag.Graph, k float64) *dag.Graph {
	t.Helper()
	out := dag.New()
	for _, task := range g.Tasks() {
		c := *task
		c.ID = 0
		c.RelDeadline *= simtime.Duration(k * deadlineSlack)
		if c.E2E > 0 {
			c.E2E *= simtime.Duration(k * deadlineSlack)
		}
		if c.Rate > 0 {
			c.Rate /= k
			c.MinRate /= k
			c.MaxRate /= k
		}
		c.Exec = scaledExec{inner: task.Exec, k: k}
		if _, err := out.AddTask(c); err != nil {
			t.Fatalf("scale task %q: %v", task.Name, err)
		}
	}
	for _, task := range g.Tasks() {
		for _, p := range g.Predecessors(task.ID) {
			if err := out.AddEdgeByName(g.Task(p).Name, task.Name); err != nil {
				t.Fatalf("scale edge %q->%q: %v", g.Task(p).Name, task.Name, err)
			}
		}
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("scaled graph invalid: %v", err)
	}
	return out
}

// sliceTracer records every event in order. Both backends invoke tracers
// from a single serialization context, so no extra locking is needed.
type sliceTracer struct {
	events []lifecycle.Event
}

func (s *sliceTracer) Trace(ev lifecycle.Event) { s.events = append(s.events, ev) }

// terminal reports whether k ends a job's lifecycle.
func terminal(k lifecycle.EventKind) bool {
	switch k {
	case lifecycle.EventDeliver, lifecycle.EventMiss, lifecycle.EventExpire,
		lifecycle.EventInvalid, lifecycle.EventControl:
		return true
	case lifecycle.EventComplete:
		// Complete is terminal except for control tasks, whose Control
		// emission follows; the caller resolves this per task.
		return true
	}
	return false
}

// kindSeqs groups the stream into per-task, per-cycle event-kind sequences.
func kindSeqs(events []lifecycle.Event) map[string]map[uint64][]lifecycle.EventKind {
	out := make(map[string]map[uint64][]lifecycle.EventKind)
	for _, ev := range events {
		byCycle := out[ev.TaskName]
		if byCycle == nil {
			byCycle = make(map[uint64][]lifecycle.EventKind)
			out[ev.TaskName] = byCycle
		}
		byCycle[ev.Cycle] = append(byCycle[ev.Cycle], ev.Kind)
	}
	return out
}

// completePrefix returns the number of leading cycles (1, 2, ...) whose
// recorded sequence ends in a terminal event: the cycles whose outcome the
// run fully decided before it was cut off.
func completePrefix(byCycle map[uint64][]lifecycle.EventKind, isControl bool) int {
	n := 0
	for {
		seq := byCycle[uint64(n+1)]
		if len(seq) == 0 {
			return n
		}
		last := seq[len(seq)-1]
		if !terminal(last) {
			return n
		}
		if isControl && last == lifecycle.EventComplete {
			// An on-time control completion must be followed by its
			// Control emission; a bare Complete means the stream was
			// cut mid-job.
			return n
		}
		n++
	}
}

// fmtCycles renders every recorded cycle of one task for failure output.
func fmtCycles(byCycle map[uint64][]lifecycle.EventKind) string {
	out := ""
	for c := uint64(1); ; c++ {
		seq, ok := byCycle[c]
		if !ok {
			break
		}
		if c > 1 {
			out += " "
		}
		out += fmt.Sprintf("#%d[%s]", c, fmtKinds(seq))
	}
	return out
}

func fmtKinds(seq []lifecycle.EventKind) string {
	out := ""
	for i, k := range seq {
		if i > 0 {
			out += ","
		}
		out += k.String()
	}
	return out
}

// runEngine executes the graph on the discrete-event backend.
func runEngine(t *testing.T, g *dag.Graph, s sched.Scheduler, seed int64) []lifecycle.Event {
	t.Helper()
	q := simtime.NewEventQueue()
	tr := &sliceTracer{}
	eng, err := engine.New(engine.Config{
		Graph:     g,
		Scheduler: s,
		NumProcs:  diffM,
		Queue:     q,
		Seed:      seed,
		Tracer:    tr,
	})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	if err := eng.Start(); err != nil {
		t.Fatalf("engine.Start: %v", err)
	}
	if err := q.RunUntil(simtime.Time(runFor)); err != nil {
		t.Fatalf("engine run: %v", err)
	}
	return tr.events
}

// runWallClock executes the graph on the wall-clock backend.
func runWallClock(t *testing.T, g *dag.Graph, s sched.Scheduler, seed int64) []lifecycle.Event {
	t.Helper()
	tr := &sliceTracer{}
	ex, err := rt.New(rt.Config{
		Graph:     g,
		Scheduler: s,
		NumProcs:  diffM,
		Seed:      seed,
		Tracer:    tr,
	})
	if err != nil {
		t.Fatalf("rt.New: %v", err)
	}
	if err := ex.Start(); err != nil {
		t.Fatalf("rt.Start: %v", err)
	}
	time.Sleep(time.Duration(runFor * float64(time.Second)))
	if err := ex.Stop(); err != nil {
		t.Fatalf("rt.Stop: %v", err)
	}
	return tr.events
}

// TestEngineRTEventSequenceEquality is the differential harness: three
// paper graphs under EDF and the HCPerf Dynamic policy, each run through
// both backends, asserting per-job lifecycle equality.
func TestEngineRTEventSequenceEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock differential test")
	}
	graphs := []struct {
		name  string
		build func() (*dag.Graph, error)
	}{
		{name: "motivation", build: dag.MotivationGraph},
		{name: "adgraph23", build: dag.ADGraph23},
		{name: "dual_control", build: dag.ADGraphDualControl},
	}
	schemes := []struct {
		name string
		// The Dynamic scheduler is stateful, so each backend run gets a
		// fresh instance.
		make func() sched.Scheduler
	}{
		{name: "edf", make: func() sched.Scheduler { return sched.EDF{} }},
		{name: "dynamic", make: func() sched.Scheduler { return sched.NewDynamic(0) }},
	}
	const seed = 7
	for _, gc := range graphs {
		for _, sc := range schemes {
			gc, sc := gc, sc
			t.Run(fmt.Sprintf("%s/%s", gc.name, sc.name), func(t *testing.T) {
				t.Parallel()
				base, err := gc.build()
				if err != nil {
					t.Fatal(err)
				}
				gEngine := scaleGraph(t, base, scaleK)
				gRT := scaleGraph(t, base, scaleK)

				evEngine := runEngine(t, gEngine, sc.make(), seed)
				evRT := runWallClock(t, gRT, sc.make(), seed)

				seqE := kindSeqs(evEngine)
				seqR := kindSeqs(evRT)
				compared := 0
				for _, task := range base.Tasks() {
					isControl := task.IsControl
					nE := completePrefix(seqE[task.Name], isControl)
					nR := completePrefix(seqR[task.Name], isControl)
					n := nE
					if nR < n {
						n = nR
					}
					if n < 2 {
						t.Errorf("task %q: only %d comparable cycles (engine %d, rt %d)\n  engine: %s\n  rt:     %s",
							task.Name, n, nE, nR, fmtCycles(seqE[task.Name]), fmtCycles(seqR[task.Name]))
						continue
					}
					for c := uint64(1); c <= uint64(n); c++ {
						e, r := seqE[task.Name][c], seqR[task.Name][c]
						if fmtKinds(e) != fmtKinds(r) {
							t.Errorf("task %q cycle %d: engine [%s] != rt [%s]",
								task.Name, c, fmtKinds(e), fmtKinds(r))
						}
					}
					compared += n
				}
				if compared == 0 {
					t.Fatal("no cycles compared")
				}
				// The pipelines must actually reach actuation in both
				// backends: at least one compared control emission.
				foundControl := false
				for _, task := range base.Tasks() {
					if task.IsControl && completePrefix(seqE[task.Name], true) >= 2 &&
						completePrefix(seqR[task.Name], true) >= 2 {
						foundControl = true
					}
				}
				if !foundControl {
					t.Error("no control task produced >= 2 comparable cycles")
				}
			})
		}
	}
}
