package lifecycle

import (
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestEventKindStrings(t *testing.T) {
	kinds := map[EventKind]string{
		EventRelease:  "release",
		EventDeliver:  "deliver",
		EventDispatch: "dispatch",
		EventComplete: "complete",
		EventMiss:     "miss",
		EventExpire:   "expire",
		EventInvalid:  "invalid",
		EventControl:  "control",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := EventKind(0).String(); got != "kind(0)" {
		t.Errorf("zero kind = %q", got)
	}
}

func TestTracerFuncAndMultiTracer(t *testing.T) {
	var a, b []EventKind
	mt := MultiTracer{
		TracerFunc(func(ev Event) { a = append(a, ev.Kind) }),
		TracerFunc(func(ev Event) { b = append(b, ev.Kind) }),
	}
	mt.Trace(Event{Kind: EventRelease})
	mt.Trace(Event{Kind: EventComplete})
	for name, got := range map[string][]EventKind{"a": a, "b": b} {
		if len(got) != 2 || got[0] != EventRelease || got[1] != EventComplete {
			t.Errorf("tracer %s saw %v", name, got)
		}
	}
}

func TestNewRingRejectsBadCapacity(t *testing.T) {
	for _, c := range []int{0, -1} {
		if _, err := NewRing(c); err == nil {
			t.Errorf("NewRing(%d) accepted", c)
		}
	}
}

func TestRingRetainsNewestOldestFirst(t *testing.T) {
	r, err := NewRing(3)
	if err != nil {
		t.Fatal(err)
	}
	for c := uint64(1); c <= 5; c++ {
		r.Trace(Event{Kind: EventRelease, Cycle: c})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", r.Dropped())
	}
	got := r.Events()
	want := []uint64{3, 4, 5}
	for i, ev := range got {
		if ev.Cycle != want[i] {
			t.Fatalf("Events()[%d].Cycle = %d, want %d (full: %v)", i, ev.Cycle, want[i], got)
		}
	}
	// The returned slice must be a copy, not a view into the buffer.
	got[0].Cycle = 99
	if r.Events()[0].Cycle != 3 {
		t.Error("Events() aliases the internal buffer")
	}
}

func TestRingBelowCapacity(t *testing.T) {
	r, err := NewRing(8)
	if err != nil {
		t.Fatal(err)
	}
	r.Trace(Event{Cycle: 1})
	r.Trace(Event{Cycle: 2})
	if r.Len() != 2 || r.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d", r.Len(), r.Dropped())
	}
	if evs := r.Events(); evs[0].Cycle != 1 || evs[1].Cycle != 2 {
		t.Fatalf("order: %v", evs)
	}
}

func sampleEvents() []Event {
	return []Event{
		{Kind: EventRelease, Task: 1, TaskName: "camera", Cycle: 1, T: 0, Proc: -1, SourceTime: 0},
		{Kind: EventDeliver, Task: 1, TaskName: "camera", Cycle: 1, T: 0.01, Proc: -1, SourceTime: 0},
		{Kind: EventDispatch, Task: 2, TaskName: "control", Cycle: 1, T: 0.02, Proc: 0, SourceTime: 0, Deadline: 0.1},
		{Kind: EventComplete, Task: 2, TaskName: "control", Cycle: 1, T: 0.05, Proc: 0, SourceTime: 0, Deadline: 0.1},
		{Kind: EventControl, Task: 2, TaskName: "control", Cycle: 1, T: 0.05, Proc: -1, SourceTime: 0, Deadline: 0.1},
		{Kind: EventDispatch, Task: 2, TaskName: "control", Cycle: 2, T: 0.12, Proc: 1, SourceTime: 0.1, Deadline: 0.2},
		{Kind: EventMiss, Task: 2, TaskName: "control", Cycle: 2, T: 0.25, Proc: 1, SourceTime: 0.1, Deadline: 0.2},
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not parseable CSV: %v", err)
	}
	if len(rows) != 1+7 {
		t.Fatalf("%d rows, want header + 7", len(rows))
	}
	header := strings.Join(rows[0], ",")
	if header != "kind,task,cycle,t,proc,source_time,deadline" {
		t.Errorf("header %q", header)
	}
	if rows[1][0] != "release" || rows[1][1] != "camera" || rows[1][2] != "1" {
		t.Errorf("first row %v", rows[1])
	}
	if rows[7][0] != "miss" || rows[7][4] != "1" {
		t.Errorf("last row %v", rows[7])
	}
}

func TestWriteChromeTrace(t *testing.T) {
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			Ts    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
			Pid   int     `json:"pid"`
			Tid   int     `json:"tid"`
			Args  struct {
				Outcome string `json:"outcome"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	var slices, instants int
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "X":
			slices++
			if ev.Pid != chromePidProcs {
				t.Errorf("slice %q on pid %d", ev.Name, ev.Pid)
			}
			switch ev.Args.Outcome {
			case "complete":
				// cycle 1: dispatched at 20 ms on proc 0, 30 ms long
				// (microsecond values carry float rounding).
				if ev.Tid != 0 || math.Abs(ev.Ts-20000) > 1e-6 || math.Abs(ev.Dur-30000) > 1e-6 {
					t.Errorf("complete slice tid=%d ts=%v dur=%v", ev.Tid, ev.Ts, ev.Dur)
				}
			case "miss":
				if ev.Tid != 1 {
					t.Errorf("miss slice tid=%d", ev.Tid)
				}
			default:
				t.Errorf("slice outcome %q", ev.Args.Outcome)
			}
		case "i":
			instants++
			if ev.Pid != chromePidTasks {
				t.Errorf("instant %q on pid %d", ev.Name, ev.Pid)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Phase)
		}
	}
	// 2 dispatch→outcome pairs; release, deliver, control as instants.
	if slices != 2 || instants != 3 {
		t.Errorf("slices=%d instants=%d, want 2 and 3", slices, instants)
	}
}

// TestWriteChromeTraceUnpairedOutcome: a Complete whose Dispatch was
// evicted from the ring must be skipped, not paired with garbage.
func TestWriteChromeTraceUnpairedOutcome(t *testing.T) {
	var sb strings.Builder
	events := []Event{
		{Kind: EventComplete, Task: 2, TaskName: "control", Cycle: 9, T: 0.5, Proc: 0},
	}
	if err := WriteChromeTrace(&sb, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 0 {
		t.Errorf("%d events emitted for an unpaired outcome", len(doc.TraceEvents))
	}
}
