package lifecycle

import (
	"errors"
	"fmt"
	"math/rand"

	"hcperf/internal/dag"
	"hcperf/internal/exectime"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
)

// Backend abstracts an execution substrate under the kernel: how capture
// latencies elapse, how idle processors learn about new work, and what the
// processor pool looks like. internal/engine implements it on a
// simtime.EventQueue; internal/rt implements it on goroutines and
// wall-clock timers.
//
// The kernel calls every Backend method from inside the backend's own
// execution context (the event loop, or with the executor lock held), so
// implementations need no additional synchronization of kernel state.
type Backend interface {
	// DeliverAfter runs fn once, d after now on the backend's clock, in
	// the backend's execution context. The kernel uses it for source
	// capture latencies: sensor output materializes off-CPU.
	DeliverAfter(now simtime.Time, d simtime.Duration, fn func(at simtime.Time))
	// Wake tells the backend the ready queue may have gained runnable
	// work, so idle processors should re-run dispatch.
	Wake(now simtime.Time)
	// ProcState snapshots the processor pool for a scheduling decision.
	// The snapshot is only valid for the duration of that decision:
	// backends may reuse the same ProcState across calls, so consumers
	// (schedulers, observers) must not retain it.
	ProcState(now simtime.Time) *sched.ProcState
}

// Config configures a Kernel. Backend-specific knobs (processor counts,
// event queues, coordination loops) live in the backends' own configs.
type Config struct {
	// Graph is the validated task graph to execute.
	Graph *dag.Graph
	// Scheduler is the dispatch policy.
	Scheduler sched.Scheduler
	// Seed seeds the kernel's private RNG (execution-time sampling).
	Seed int64
	// Scene supplies the runtime scene; nil means exectime.NominalScene.
	Scene func(now simtime.Time) exectime.Scene
	// MaxDataAge, when positive, bounds the age of every input a task
	// may consume: a data-triggered release whose auxiliary inputs are
	// older than this is invalid — the cycle is lost and counts as a
	// deadline miss of the consuming task. Zero disables the bound.
	MaxDataAge simtime.Duration
	// OnControl is invoked for every emitted control command.
	OnControl func(cmd ControlCommand)
	// OnJobDecided is invoked whenever a job's outcome is decided:
	// missed=false for an on-time completion, missed=true for a late
	// completion, queue expiration or invalid cycle.
	OnJobDecided func(now simtime.Time, j *sched.Job, missed bool)
	// Tracer, when non-nil, receives the structured lifecycle event
	// stream.
	Tracer Tracer
}

// edgeData is the latest-value channel state of one precedence edge.
type edgeData struct {
	// fresh marks unconsumed data (meaningful on primary edges).
	fresh bool
	// has marks that the edge has carried data at least once.
	has bool
	// sourceTime is the capture instant at the root of the producing
	// job's primary chain.
	sourceTime simtime.Time
	// producedAt is when the value was written.
	producedAt simtime.Time
}

// Kernel owns the job state machine shared by all execution backends:
// releases, ready queue, dispatch selection, deadline and end-to-end
// accounting, edge propagation and control emission. All methods must be
// called from the backend's execution context; the kernel itself holds no
// locks.
type Kernel struct {
	graph     *dag.Graph
	sch       sched.Scheduler
	b         Backend
	rng       *rand.Rand
	scene     func(now simtime.Time) exectime.Scene
	onCmd     func(cmd ControlCommand)
	onDecided func(now simtime.Time, j *sched.Job, missed bool)
	tracer    Tracer

	// jobs allocates every job record this kernel creates; records are
	// freed back to the arena the moment their outcome is decided and the
	// last observer has run, so steady-state execution allocates no job
	// garbage. purged is PurgeExpired's reusable scratch for jobs whose
	// release must outlive the queue-change notification.
	jobs   sched.JobArena
	purged []*sched.Job
	// freeDeliveries recycles the capture-delivery records (and their bound
	// callbacks) SourceFired hands to Backend.DeliverAfter.
	freeDeliveries []*delivery

	ready []*sched.Job
	// succs/preds cache the graph adjacency per task: dag.Graph accessors
	// return defensive copies, far too expensive for every Propagate.
	succs [][]dag.TaskID
	preds [][]dag.TaskID
	// outEdges[id][i] is the channel state of edge id→succs[id][i];
	// inEdges[id][i] of edge preds[id][i]→id. Both views alias one dense
	// store, so edge lookups on the propagation hot path are slice walks.
	outEdges [][]*edgeData
	inEdges  [][]*edgeData
	observed []simtime.Duration // c_i per task: last observed execution time
	cycles   []uint64           // per-task release counter
	rates    []float64          // current rate per task (sources only)
	budgets  []simtime.Duration // end-to-end deadline budget per task
	maxAge   simtime.Duration

	total    Stats
	window   Stats // reset by ResetWindow (Task Rate Adapter sampling)
	perTask  []TaskStats
	observer QueueObserver
}

// NewKernel validates the configuration and builds a kernel bound to the
// given backend.
func NewKernel(cfg Config, b Backend) (*Kernel, error) {
	if cfg.Graph == nil {
		return nil, errors.New("lifecycle: nil graph")
	}
	if err := cfg.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("lifecycle: %w", err)
	}
	if cfg.Scheduler == nil {
		return nil, errors.New("lifecycle: nil scheduler")
	}
	if b == nil {
		return nil, errors.New("lifecycle: nil backend")
	}
	scene := cfg.Scene
	if scene == nil {
		scene = func(simtime.Time) exectime.Scene { return exectime.NominalScene() }
	}
	n := cfg.Graph.Len()
	k := &Kernel{
		graph:     cfg.Graph,
		sch:       cfg.Scheduler,
		b:         b,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		scene:     scene,
		onCmd:     cfg.OnControl,
		onDecided: cfg.OnJobDecided,
		tracer:    cfg.Tracer,
		observed:  make([]simtime.Duration, n),
		cycles:    make([]uint64, n),
		rates:     make([]float64, n),
		perTask:   make([]TaskStats, n),
		maxAge:    cfg.MaxDataAge,
	}
	k.succs = make([][]dag.TaskID, n)
	k.preds = make([][]dag.TaskID, n)
	k.outEdges = make([][]*edgeData, n)
	k.inEdges = make([][]*edgeData, n)
	edgeCount := 0
	for _, t := range cfg.Graph.Tasks() {
		k.observed[t.ID] = t.Exec.Nominal()
		k.rates[t.ID] = t.Rate
		k.succs[t.ID] = cfg.Graph.Successors(t.ID)
		k.preds[t.ID] = cfg.Graph.Predecessors(t.ID)
		edgeCount += len(k.succs[t.ID])
	}
	store := make([]edgeData, edgeCount)
	next := 0
	byEdge := make(map[[2]dag.TaskID]*edgeData, edgeCount)
	for id := range k.succs {
		out := make([]*edgeData, len(k.succs[id]))
		for i, s := range k.succs[id] {
			ed := &store[next]
			next++
			out[i] = ed
			byEdge[[2]dag.TaskID{dag.TaskID(id), s}] = ed
		}
		k.outEdges[id] = out
	}
	for id := range k.preds {
		in := make([]*edgeData, len(k.preds[id]))
		for i, p := range k.preds[id] {
			in[i] = byEdge[[2]dag.TaskID{p, dag.TaskID(id)}]
		}
		k.inEdges[id] = in
	}
	if obs, ok := cfg.Scheduler.(QueueObserver); ok {
		k.observer = obs
	}
	topo, err := cfg.Graph.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("lifecycle: %w", err)
	}
	k.budgets = make([]simtime.Duration, n)
	for _, id := range topo {
		var longest simtime.Duration
		for _, p := range k.preds[id] {
			if k.budgets[p] > longest {
				longest = k.budgets[p]
			}
		}
		k.budgets[id] = longest + cfg.Graph.Task(id).RelDeadline
	}
	return k, nil
}

// Graph returns the executing graph.
func (k *Kernel) Graph() *dag.Graph { return k.graph }

// Scheduler returns the dispatch policy.
func (k *Kernel) Scheduler() sched.Scheduler { return k.sch }

// QueueLen returns the current ready-queue length.
func (k *Kernel) QueueLen() int { return len(k.ready) }

// Stats returns a copy of the kernel-wide counters.
func (k *Kernel) Stats() Stats { return k.total }

// WindowStats returns a copy of the counters since the last ResetWindow.
func (k *Kernel) WindowStats() Stats { return k.window }

// ResetWindow zeroes the windowed counters; the Task Rate Adapter calls
// this once per adaptation period.
func (k *Kernel) ResetWindow() { k.window = Stats{} }

// TaskStats returns a copy of the per-task counters.
func (k *Kernel) TaskStats(id dag.TaskID) TaskStats {
	if id < 0 || int(id) >= len(k.perTask) {
		return TaskStats{}
	}
	return k.perTask[id]
}

// ObservedExec returns the kernel's current estimate of c_i.
func (k *Kernel) ObservedExec(id dag.TaskID) simtime.Duration { return k.observed[id] }

// EndToEndBudget returns the task's end-to-end deadline budget: the
// largest sum of relative deadlines along any source-to-task path.
func (k *Kernel) EndToEndBudget(id dag.TaskID) simtime.Duration {
	if id < 0 || int(id) >= len(k.budgets) {
		return 0
	}
	return k.budgets[id]
}

// Rate returns the current rate of a task (meaningful for sources).
func (k *Kernel) Rate(id dag.TaskID) float64 {
	if id < 0 || int(id) >= len(k.rates) {
		return 0
	}
	return k.rates[id]
}

// SetRate clamps hz to the task's allowable range, stores it as the task's
// current rate and returns the rate actually applied. Fixed-rate tasks
// (MaxRate == 0) keep their configured rate.
func (k *Kernel) SetRate(id dag.TaskID, hz float64) (float64, error) {
	t := k.graph.Task(id)
	if t == nil {
		return 0, fmt.Errorf("lifecycle: unknown task %d", id)
	}
	if t.MaxRate > 0 {
		if hz < t.MinRate {
			hz = t.MinRate
		}
		if hz > t.MaxRate {
			hz = t.MaxRate
		}
	} else {
		hz = t.Rate // fixed-rate source
	}
	if hz <= 0 {
		return 0, fmt.Errorf("lifecycle: non-positive rate for %q", t.Name)
	}
	k.rates[id] = hz
	return hz, nil
}

// SampleExec draws a job execution time for task t at the given instant,
// clamped to be non-negative. Backends call it exactly once per dispatched
// job so RNG consumption stays deterministic.
func (k *Kernel) SampleExec(now simtime.Time, t *dag.Task) simtime.Duration {
	actual := t.Exec.Sample(k.rng, now, k.scene(now))
	if actual < 0 {
		actual = 0
	}
	return actual
}

// RefreshObserver re-runs the queue observer (if any) against the live
// ready queue and processor state. Coordinators call this after installing
// a new nominal u so γ is re-derived immediately instead of at the next
// queue change.
func (k *Kernel) RefreshObserver(now simtime.Time) { k.queueChanged(now) }

// queueChanged notifies a queue-observing scheduler (γmax re-derivation).
func (k *Kernel) queueChanged(now simtime.Time) {
	if k.observer != nil {
		k.observer.Recompute(now, k.ready, k.b.ProcState(now))
	}
}

// trace emits ev to the configured tracer, if any.
func (k *Kernel) trace(ev Event) {
	if k.tracer != nil {
		k.tracer.Trace(ev)
	}
}

// traceJob emits a job lifecycle event, building the Event only when a
// tracer is configured — the event construction is pure overhead otherwise.
func (k *Kernel) traceJob(kind EventKind, now simtime.Time, j *sched.Job, proc int) {
	if k.tracer != nil {
		k.tracer.Trace(jobEvent(kind, now, j, proc))
	}
}

// jobEvent builds the common fields of a lifecycle event for job j.
func jobEvent(kind EventKind, now simtime.Time, j *sched.Job, proc int) Event {
	return Event{
		Kind:       kind,
		Task:       j.Task.ID,
		TaskName:   j.Task.Name,
		Cycle:      j.Cycle,
		T:          now,
		Proc:       proc,
		SourceTime: j.SourceTime,
		Deadline:   j.AbsDeadline,
	}
}

// SourceFired models one sensor capture of source task id: the job runs
// off-CPU (sensor hardware/DMA produces the data) and delivers its output
// after the sampled capture latency, via the backend clock. Captures never
// miss deadlines.
func (k *Kernel) SourceFired(now simtime.Time, id dag.TaskID) {
	t := k.graph.Task(id)
	k.cycles[id]++
	j := k.jobs.New()
	j.Task = t
	j.Cycle = k.cycles[id]
	j.Release = now
	j.AbsDeadline = now + t.RelDeadline
	j.EstExec = k.observed[id]
	j.SourceTime = now
	k.total.Released++
	k.window.Released++
	k.perTask[id].Released++
	k.traceJob(EventRelease, now, j, -1)
	actual := k.SampleExec(now, t)
	d := k.newDelivery()
	d.j = j
	d.actual = actual
	k.b.DeliverAfter(now, actual, d.run)
}

// delivery carries one in-flight source capture from SourceFired to
// deliverSource. The callback handed to Backend.DeliverAfter is bound to the
// record once, so recycling records through freeDeliveries makes the capture
// path closure-allocation-free.
type delivery struct {
	k      *Kernel
	j      *sched.Job
	actual simtime.Duration
	run    func(at simtime.Time)
}

// newDelivery takes a delivery record off the freelist, or builds one with
// its bound callback. The callback returns the record to the freelist before
// delivering, and runs in the backend's execution context like every other
// kernel entry point.
func (k *Kernel) newDelivery() *delivery {
	if n := len(k.freeDeliveries); n > 0 {
		d := k.freeDeliveries[n-1]
		k.freeDeliveries[n-1] = nil
		k.freeDeliveries = k.freeDeliveries[:n-1]
		return d
	}
	d := &delivery{k: k}
	d.run = func(at simtime.Time) {
		j, actual := d.j, d.actual
		d.j = nil
		d.k.freeDeliveries = append(d.k.freeDeliveries, d)
		d.k.deliverSource(at, j, actual)
	}
	return d
}

// deliverSource finalises a capture: the source job completes on time and
// propagates downstream.
func (k *Kernel) deliverSource(now simtime.Time, j *sched.Job, actual simtime.Duration) {
	id := j.Task.ID
	k.observed[id] = actual
	k.perTask[id].ExecTime.Add(float64(actual))
	k.total.Completed++
	k.window.Completed++
	k.perTask[id].Completed++
	k.traceJob(EventDeliver, now, j, -1)
	if k.onDecided != nil {
		k.onDecided(now, j, false)
	}
	k.Propagate(now, j)
	k.b.Wake(now)
	// Outcome decided and every observer has run: the record can be reused.
	k.jobs.Free(j)
}

// release creates a job for data-triggered task id, appends it to the
// ready queue and wakes the backend.
func (k *Kernel) release(now simtime.Time, id dag.TaskID, sourceTime simtime.Time) {
	t := k.graph.Task(id)
	k.cycles[id]++
	deadline := now + t.RelDeadline
	if e2e := sourceTime + k.budgets[id]; e2e < deadline {
		deadline = e2e
	}
	if t.E2E > 0 {
		if e2e := sourceTime + t.E2E; e2e < deadline {
			deadline = e2e
		}
	}
	j := k.jobs.New()
	j.Task = t
	j.Cycle = k.cycles[id]
	j.Release = now
	j.AbsDeadline = deadline
	j.EstExec = k.observed[id]
	j.SourceTime = sourceTime
	k.ready = append(k.ready, j)
	k.total.Released++
	k.window.Released++
	k.perTask[id].Released++
	k.traceJob(EventRelease, now, j, -1)
	k.queueChanged(now)
	k.b.Wake(now)
}

// PurgeExpired drops queued jobs whose deadline has already passed; they
// can no longer produce valid output.
func (k *Kernel) PurgeExpired(now simtime.Time) {
	kept := k.ready[:0]
	k.purged = k.purged[:0]
	for _, j := range k.ready {
		if j.AbsDeadline <= now {
			id := j.Task.ID
			k.total.Missed++
			k.total.Expired++
			k.window.Missed++
			k.window.Expired++
			k.perTask[id].Missed++
			k.perTask[id].Expired++
			if j.Task.IsControl {
				k.total.E2EDecided++
				k.total.E2EMissed++
				k.window.E2EDecided++
				k.window.E2EMissed++
			}
			k.traceJob(EventExpire, now, j, -1)
			if k.onDecided != nil {
				k.onDecided(now, j, true)
			}
			k.purged = append(k.purged, j)
			continue
		}
		kept = append(kept, j)
	}
	k.ready = kept
	if len(k.purged) > 0 {
		// Notify the observer before freeing: a queue-observing scheduler
		// rebuilds its view from the surviving queue here, dropping any
		// internal references to the purged records.
		k.queueChanged(now)
		for i, j := range k.purged {
			k.jobs.Free(j)
			k.purged[i] = nil
		}
	}
}

// Next asks the policy for the job to run on processor proc and removes it
// from the ready queue, or returns nil when the queue is empty or no job is
// eligible. Callers should PurgeExpired first.
func (k *Kernel) Next(now simtime.Time, proc int) *sched.Job {
	if len(k.ready) == 0 {
		return nil
	}
	idx := k.sch.Select(now, k.ready, proc, k.b.ProcState(now))
	if idx < 0 {
		return nil
	}
	j := k.ready[idx]
	k.ready = append(k.ready[:idx], k.ready[idx+1:]...)
	k.traceJob(EventDispatch, now, j, proc)
	return j
}

// Complete finalises a job dispatched on processor proc that ran for
// actual: deadline accounting, data propagation and control emission. The
// backend must clear its own processor bookkeeping before calling it.
func (k *Kernel) Complete(now simtime.Time, proc int, j *sched.Job, actual simtime.Duration) {
	id := j.Task.ID
	k.observed[id] = actual
	k.perTask[id].ExecTime.Add(float64(actual))

	missed := now > j.AbsDeadline
	if j.Task.IsControl {
		k.total.E2EDecided++
		k.window.E2EDecided++
		if missed {
			k.total.E2EMissed++
			k.window.E2EMissed++
		}
	}
	if k.onDecided != nil {
		k.onDecided(now, j, missed)
	}
	if missed {
		k.total.Missed++
		k.window.Missed++
		k.perTask[id].Missed++
		k.traceJob(EventMiss, now, j, proc)
	} else {
		k.total.Completed++
		k.window.Completed++
		k.perTask[id].Completed++
		k.traceJob(EventComplete, now, j, proc)
		k.Propagate(now, j)
	}
	k.queueChanged(now)
	k.b.Wake(now)
	// The backend dropped its reference before calling Complete, and all
	// observers above run synchronously: the record can be reused.
	k.jobs.Free(j)
}

// Propagate pushes the completed job's output onto its outgoing edges and
// data-triggers successors whose primary edge refreshed. Control tasks emit
// commands first.
func (k *Kernel) Propagate(now simtime.Time, j *sched.Job) {
	if j.Task.IsControl {
		k.emitControl(now, j)
	}
	id := j.Task.ID
	outs := k.outEdges[id]
	for i, succ := range k.succs[id] {
		ed := outs[i]
		ed.fresh = true
		ed.has = true
		ed.sourceTime = j.SourceTime
		ed.producedAt = now
		// preds[succ][0] is the primary (triggering) predecessor — the
		// first edge added, same order dag.PrimaryPred reports.
		if k.preds[succ][0] == id {
			k.tryRelease(now, succ)
		}
	}
}

// tryRelease data-triggers task id: it releases when the primary edge is
// fresh and every incoming edge has carried data at least once. The primary
// data is consumed; auxiliary inputs are read at their latest values. The
// job inherits the sensing instant of its primary chain — the capture time
// of the source at the root of the chain of primary edges — which defines
// the pipeline's end-to-end staleness.
func (k *Kernel) tryRelease(now simtime.Time, id dag.TaskID) {
	ins := k.inEdges[id]
	for _, ed := range ins {
		if !ed.has {
			return
		}
	}
	primary := ins[0]
	if !primary.fresh {
		return
	}
	primary.fresh = false
	if k.maxAge > 0 {
		for _, ed := range ins {
			if now-ed.producedAt > k.maxAge {
				// An input is too stale for a valid cycle: the
				// release is invalid and counts as a miss of
				// the consuming task.
				k.invalidCycle(now, id, primary.sourceTime)
				return
			}
		}
	}
	k.release(now, id, primary.sourceTime)
}

// invalidCycle accounts a data-triggered release whose inputs were too
// stale to produce valid output.
func (k *Kernel) invalidCycle(now simtime.Time, id dag.TaskID, sourceTime simtime.Time) {
	t := k.graph.Task(id)
	k.cycles[id]++
	j := k.jobs.New()
	j.Task = t
	j.Cycle = k.cycles[id]
	j.Release = now
	j.AbsDeadline = now
	j.EstExec = k.observed[id]
	j.SourceTime = sourceTime
	k.total.Released++
	k.window.Released++
	k.perTask[id].Released++
	k.total.Missed++
	k.window.Missed++
	k.perTask[id].Missed++
	if t.IsControl {
		k.total.E2EDecided++
		k.total.E2EMissed++
		k.window.E2EDecided++
		k.window.E2EMissed++
	}
	k.traceJob(EventInvalid, now, j, -1)
	if k.onDecided != nil {
		k.onDecided(now, j, true)
	}
	k.jobs.Free(j)
}

// emitControl accounts and publishes a control command.
func (k *Kernel) emitControl(now simtime.Time, j *sched.Job) {
	cmd := ControlCommand{
		Task:       j.Task,
		Cycle:      j.Cycle,
		Release:    j.Release,
		Completed:  now,
		SourceTime: j.SourceTime,
	}
	k.total.ControlCommands++
	k.window.ControlCommands++
	k.total.ControlResponse.Add(float64(cmd.ResponseTime()))
	k.window.ControlResponse.Add(float64(cmd.ResponseTime()))
	k.total.EndToEnd.Add(float64(cmd.EndToEndLatency()))
	k.window.EndToEnd.Add(float64(cmd.EndToEndLatency()))
	k.traceJob(EventControl, now, j, -1)
	if k.onCmd != nil {
		k.onCmd(cmd)
	}
}
