package lifecycle

import (
	"errors"
	"fmt"
	"math/rand"

	"hcperf/internal/dag"
	"hcperf/internal/exectime"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
)

// Backend abstracts an execution substrate under the kernel: how capture
// latencies elapse, how idle processors learn about new work, and what the
// processor pool looks like. internal/engine implements it on a
// simtime.EventQueue; internal/rt implements it on goroutines and
// wall-clock timers.
//
// The kernel calls every Backend method from inside the backend's own
// execution context (the event loop, or with the executor lock held), so
// implementations need no additional synchronization of kernel state.
type Backend interface {
	// DeliverAfter runs fn once, d after now on the backend's clock, in
	// the backend's execution context. The kernel uses it for source
	// capture latencies: sensor output materializes off-CPU.
	DeliverAfter(now simtime.Time, d simtime.Duration, fn func(at simtime.Time))
	// Wake tells the backend the ready queue may have gained runnable
	// work, so idle processors should re-run dispatch.
	Wake(now simtime.Time)
	// ProcState snapshots the processor pool for a scheduling decision.
	// The snapshot is only valid for the duration of that decision:
	// backends may reuse the same ProcState across calls, so consumers
	// (schedulers, observers) must not retain it.
	ProcState(now simtime.Time) *sched.ProcState
}

// Config configures a Kernel. Backend-specific knobs (processor counts,
// event queues, coordination loops) live in the backends' own configs.
type Config struct {
	// Graph is the validated task graph to execute.
	Graph *dag.Graph
	// Scheduler is the dispatch policy.
	Scheduler sched.Scheduler
	// Seed seeds the kernel's private RNG (execution-time sampling).
	Seed int64
	// Scene supplies the runtime scene; nil means exectime.NominalScene.
	Scene func(now simtime.Time) exectime.Scene
	// MaxDataAge, when positive, bounds the age of every input a task
	// may consume: a data-triggered release whose auxiliary inputs are
	// older than this is invalid — the cycle is lost and counts as a
	// deadline miss of the consuming task. Zero disables the bound.
	MaxDataAge simtime.Duration
	// OnControl is invoked for every emitted control command.
	OnControl func(cmd ControlCommand)
	// OnJobDecided is invoked whenever a job's outcome is decided:
	// missed=false for an on-time completion, missed=true for a late
	// completion, queue expiration or invalid cycle.
	OnJobDecided func(now simtime.Time, j *sched.Job, missed bool)
	// Tracer, when non-nil, receives the structured lifecycle event
	// stream.
	Tracer Tracer
}

// edgeKey identifies one precedence edge.
type edgeKey struct {
	from, to dag.TaskID
}

// edgeData is the latest-value channel state of one precedence edge.
type edgeData struct {
	// fresh marks unconsumed data (meaningful on primary edges).
	fresh bool
	// has marks that the edge has carried data at least once.
	has bool
	// sourceTime is the capture instant at the root of the producing
	// job's primary chain.
	sourceTime simtime.Time
	// producedAt is when the value was written.
	producedAt simtime.Time
}

// Kernel owns the job state machine shared by all execution backends:
// releases, ready queue, dispatch selection, deadline and end-to-end
// accounting, edge propagation and control emission. All methods must be
// called from the backend's execution context; the kernel itself holds no
// locks.
type Kernel struct {
	graph     *dag.Graph
	sch       sched.Scheduler
	b         Backend
	rng       *rand.Rand
	scene     func(now simtime.Time) exectime.Scene
	onCmd     func(cmd ControlCommand)
	onDecided func(now simtime.Time, j *sched.Job, missed bool)
	tracer    Tracer

	ready    []*sched.Job
	edges    map[edgeKey]*edgeData
	observed []simtime.Duration // c_i per task: last observed execution time
	cycles   []uint64           // per-task release counter
	rates    []float64          // current rate per task (sources only)
	budgets  []simtime.Duration // end-to-end deadline budget per task
	maxAge   simtime.Duration

	total    Stats
	window   Stats // reset by ResetWindow (Task Rate Adapter sampling)
	perTask  []TaskStats
	observer QueueObserver
}

// NewKernel validates the configuration and builds a kernel bound to the
// given backend.
func NewKernel(cfg Config, b Backend) (*Kernel, error) {
	if cfg.Graph == nil {
		return nil, errors.New("lifecycle: nil graph")
	}
	if err := cfg.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("lifecycle: %w", err)
	}
	if cfg.Scheduler == nil {
		return nil, errors.New("lifecycle: nil scheduler")
	}
	if b == nil {
		return nil, errors.New("lifecycle: nil backend")
	}
	scene := cfg.Scene
	if scene == nil {
		scene = func(simtime.Time) exectime.Scene { return exectime.NominalScene() }
	}
	n := cfg.Graph.Len()
	k := &Kernel{
		graph:     cfg.Graph,
		sch:       cfg.Scheduler,
		b:         b,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		scene:     scene,
		onCmd:     cfg.OnControl,
		onDecided: cfg.OnJobDecided,
		tracer:    cfg.Tracer,
		edges:     make(map[edgeKey]*edgeData),
		observed:  make([]simtime.Duration, n),
		cycles:    make([]uint64, n),
		rates:     make([]float64, n),
		perTask:   make([]TaskStats, n),
		maxAge:    cfg.MaxDataAge,
	}
	for _, t := range cfg.Graph.Tasks() {
		k.observed[t.ID] = t.Exec.Nominal()
		k.rates[t.ID] = t.Rate
		for _, s := range cfg.Graph.Successors(t.ID) {
			k.edges[edgeKey{from: t.ID, to: s}] = &edgeData{}
		}
	}
	if obs, ok := cfg.Scheduler.(QueueObserver); ok {
		k.observer = obs
	}
	topo, err := cfg.Graph.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("lifecycle: %w", err)
	}
	k.budgets = make([]simtime.Duration, n)
	for _, id := range topo {
		var longest simtime.Duration
		for _, p := range cfg.Graph.Predecessors(id) {
			if k.budgets[p] > longest {
				longest = k.budgets[p]
			}
		}
		k.budgets[id] = longest + cfg.Graph.Task(id).RelDeadline
	}
	return k, nil
}

// Graph returns the executing graph.
func (k *Kernel) Graph() *dag.Graph { return k.graph }

// Scheduler returns the dispatch policy.
func (k *Kernel) Scheduler() sched.Scheduler { return k.sch }

// QueueLen returns the current ready-queue length.
func (k *Kernel) QueueLen() int { return len(k.ready) }

// Stats returns a copy of the kernel-wide counters.
func (k *Kernel) Stats() Stats { return k.total }

// WindowStats returns a copy of the counters since the last ResetWindow.
func (k *Kernel) WindowStats() Stats { return k.window }

// ResetWindow zeroes the windowed counters; the Task Rate Adapter calls
// this once per adaptation period.
func (k *Kernel) ResetWindow() { k.window = Stats{} }

// TaskStats returns a copy of the per-task counters.
func (k *Kernel) TaskStats(id dag.TaskID) TaskStats {
	if id < 0 || int(id) >= len(k.perTask) {
		return TaskStats{}
	}
	return k.perTask[id]
}

// ObservedExec returns the kernel's current estimate of c_i.
func (k *Kernel) ObservedExec(id dag.TaskID) simtime.Duration { return k.observed[id] }

// EndToEndBudget returns the task's end-to-end deadline budget: the
// largest sum of relative deadlines along any source-to-task path.
func (k *Kernel) EndToEndBudget(id dag.TaskID) simtime.Duration {
	if id < 0 || int(id) >= len(k.budgets) {
		return 0
	}
	return k.budgets[id]
}

// Rate returns the current rate of a task (meaningful for sources).
func (k *Kernel) Rate(id dag.TaskID) float64 {
	if id < 0 || int(id) >= len(k.rates) {
		return 0
	}
	return k.rates[id]
}

// SetRate clamps hz to the task's allowable range, stores it as the task's
// current rate and returns the rate actually applied. Fixed-rate tasks
// (MaxRate == 0) keep their configured rate.
func (k *Kernel) SetRate(id dag.TaskID, hz float64) (float64, error) {
	t := k.graph.Task(id)
	if t == nil {
		return 0, fmt.Errorf("lifecycle: unknown task %d", id)
	}
	if t.MaxRate > 0 {
		if hz < t.MinRate {
			hz = t.MinRate
		}
		if hz > t.MaxRate {
			hz = t.MaxRate
		}
	} else {
		hz = t.Rate // fixed-rate source
	}
	if hz <= 0 {
		return 0, fmt.Errorf("lifecycle: non-positive rate for %q", t.Name)
	}
	k.rates[id] = hz
	return hz, nil
}

// SampleExec draws a job execution time for task t at the given instant,
// clamped to be non-negative. Backends call it exactly once per dispatched
// job so RNG consumption stays deterministic.
func (k *Kernel) SampleExec(now simtime.Time, t *dag.Task) simtime.Duration {
	actual := t.Exec.Sample(k.rng, now, k.scene(now))
	if actual < 0 {
		actual = 0
	}
	return actual
}

// RefreshObserver re-runs the queue observer (if any) against the live
// ready queue and processor state. Coordinators call this after installing
// a new nominal u so γ is re-derived immediately instead of at the next
// queue change.
func (k *Kernel) RefreshObserver(now simtime.Time) { k.queueChanged(now) }

// queueChanged notifies a queue-observing scheduler (γmax re-derivation).
func (k *Kernel) queueChanged(now simtime.Time) {
	if k.observer != nil {
		k.observer.Recompute(now, k.ready, k.b.ProcState(now))
	}
}

// trace emits ev to the configured tracer, if any.
func (k *Kernel) trace(ev Event) {
	if k.tracer != nil {
		k.tracer.Trace(ev)
	}
}

// jobEvent builds the common fields of a lifecycle event for job j.
func jobEvent(kind EventKind, now simtime.Time, j *sched.Job, proc int) Event {
	return Event{
		Kind:       kind,
		Task:       j.Task.ID,
		TaskName:   j.Task.Name,
		Cycle:      j.Cycle,
		T:          now,
		Proc:       proc,
		SourceTime: j.SourceTime,
		Deadline:   j.AbsDeadline,
	}
}

// SourceFired models one sensor capture of source task id: the job runs
// off-CPU (sensor hardware/DMA produces the data) and delivers its output
// after the sampled capture latency, via the backend clock. Captures never
// miss deadlines.
func (k *Kernel) SourceFired(now simtime.Time, id dag.TaskID) {
	t := k.graph.Task(id)
	k.cycles[id]++
	j := &sched.Job{
		Task:        t,
		Cycle:       k.cycles[id],
		Release:     now,
		AbsDeadline: now + t.RelDeadline,
		EstExec:     k.observed[id],
		SourceTime:  now,
	}
	k.total.Released++
	k.window.Released++
	k.perTask[id].Released++
	k.trace(jobEvent(EventRelease, now, j, -1))
	actual := k.SampleExec(now, t)
	k.b.DeliverAfter(now, actual, func(at simtime.Time) {
		k.deliverSource(at, j, actual)
	})
}

// deliverSource finalises a capture: the source job completes on time and
// propagates downstream.
func (k *Kernel) deliverSource(now simtime.Time, j *sched.Job, actual simtime.Duration) {
	id := j.Task.ID
	k.observed[id] = actual
	k.perTask[id].ExecTime.Add(float64(actual))
	k.total.Completed++
	k.window.Completed++
	k.perTask[id].Completed++
	k.trace(jobEvent(EventDeliver, now, j, -1))
	if k.onDecided != nil {
		k.onDecided(now, j, false)
	}
	k.Propagate(now, j)
	k.b.Wake(now)
}

// release creates a job for data-triggered task id, appends it to the
// ready queue and wakes the backend.
func (k *Kernel) release(now simtime.Time, id dag.TaskID, sourceTime simtime.Time) {
	t := k.graph.Task(id)
	k.cycles[id]++
	deadline := now + t.RelDeadline
	if e2e := sourceTime + k.budgets[id]; e2e < deadline {
		deadline = e2e
	}
	if t.E2E > 0 {
		if e2e := sourceTime + t.E2E; e2e < deadline {
			deadline = e2e
		}
	}
	j := &sched.Job{
		Task:        t,
		Cycle:       k.cycles[id],
		Release:     now,
		AbsDeadline: deadline,
		EstExec:     k.observed[id],
		SourceTime:  sourceTime,
	}
	k.ready = append(k.ready, j)
	k.total.Released++
	k.window.Released++
	k.perTask[id].Released++
	k.trace(jobEvent(EventRelease, now, j, -1))
	k.queueChanged(now)
	k.b.Wake(now)
}

// PurgeExpired drops queued jobs whose deadline has already passed; they
// can no longer produce valid output.
func (k *Kernel) PurgeExpired(now simtime.Time) {
	kept := k.ready[:0]
	changed := false
	for _, j := range k.ready {
		if j.AbsDeadline <= now {
			id := j.Task.ID
			k.total.Missed++
			k.total.Expired++
			k.window.Missed++
			k.window.Expired++
			k.perTask[id].Missed++
			k.perTask[id].Expired++
			if j.Task.IsControl {
				k.total.E2EDecided++
				k.total.E2EMissed++
				k.window.E2EDecided++
				k.window.E2EMissed++
			}
			k.trace(jobEvent(EventExpire, now, j, -1))
			if k.onDecided != nil {
				k.onDecided(now, j, true)
			}
			changed = true
			continue
		}
		kept = append(kept, j)
	}
	k.ready = kept
	if changed {
		k.queueChanged(now)
	}
}

// Next asks the policy for the job to run on processor proc and removes it
// from the ready queue, or returns nil when the queue is empty or no job is
// eligible. Callers should PurgeExpired first.
func (k *Kernel) Next(now simtime.Time, proc int) *sched.Job {
	if len(k.ready) == 0 {
		return nil
	}
	idx := k.sch.Select(now, k.ready, proc, k.b.ProcState(now))
	if idx < 0 {
		return nil
	}
	j := k.ready[idx]
	k.ready = append(k.ready[:idx], k.ready[idx+1:]...)
	k.trace(jobEvent(EventDispatch, now, j, proc))
	return j
}

// Complete finalises a job dispatched on processor proc that ran for
// actual: deadline accounting, data propagation and control emission. The
// backend must clear its own processor bookkeeping before calling it.
func (k *Kernel) Complete(now simtime.Time, proc int, j *sched.Job, actual simtime.Duration) {
	id := j.Task.ID
	k.observed[id] = actual
	k.perTask[id].ExecTime.Add(float64(actual))

	missed := now > j.AbsDeadline
	if j.Task.IsControl {
		k.total.E2EDecided++
		k.window.E2EDecided++
		if missed {
			k.total.E2EMissed++
			k.window.E2EMissed++
		}
	}
	if k.onDecided != nil {
		k.onDecided(now, j, missed)
	}
	if missed {
		k.total.Missed++
		k.window.Missed++
		k.perTask[id].Missed++
		k.trace(jobEvent(EventMiss, now, j, proc))
	} else {
		k.total.Completed++
		k.window.Completed++
		k.perTask[id].Completed++
		k.trace(jobEvent(EventComplete, now, j, proc))
		k.Propagate(now, j)
	}
	k.queueChanged(now)
	k.b.Wake(now)
}

// Propagate pushes the completed job's output onto its outgoing edges and
// data-triggers successors whose primary edge refreshed. Control tasks emit
// commands first.
func (k *Kernel) Propagate(now simtime.Time, j *sched.Job) {
	if j.Task.IsControl {
		k.emitControl(now, j)
	}
	for _, succ := range k.graph.Successors(j.Task.ID) {
		ed := k.edges[edgeKey{from: j.Task.ID, to: succ}]
		ed.fresh = true
		ed.has = true
		ed.sourceTime = j.SourceTime
		ed.producedAt = now
		if k.graph.PrimaryPred(succ) == j.Task.ID {
			k.tryRelease(now, succ)
		}
	}
}

// tryRelease data-triggers task id: it releases when the primary edge is
// fresh and every incoming edge has carried data at least once. The primary
// data is consumed; auxiliary inputs are read at their latest values. The
// job inherits the sensing instant of its primary chain — the capture time
// of the source at the root of the chain of primary edges — which defines
// the pipeline's end-to-end staleness.
func (k *Kernel) tryRelease(now simtime.Time, id dag.TaskID) {
	preds := k.graph.Predecessors(id)
	for _, p := range preds {
		if !k.edges[edgeKey{from: p, to: id}].has {
			return
		}
	}
	primary := k.edges[edgeKey{from: preds[0], to: id}]
	if !primary.fresh {
		return
	}
	primary.fresh = false
	if k.maxAge > 0 {
		for _, p := range preds {
			if now-k.edges[edgeKey{from: p, to: id}].producedAt > k.maxAge {
				// An input is too stale for a valid cycle: the
				// release is invalid and counts as a miss of
				// the consuming task.
				k.invalidCycle(now, id, primary.sourceTime)
				return
			}
		}
	}
	k.release(now, id, primary.sourceTime)
}

// invalidCycle accounts a data-triggered release whose inputs were too
// stale to produce valid output.
func (k *Kernel) invalidCycle(now simtime.Time, id dag.TaskID, sourceTime simtime.Time) {
	t := k.graph.Task(id)
	k.cycles[id]++
	j := &sched.Job{
		Task:        t,
		Cycle:       k.cycles[id],
		Release:     now,
		AbsDeadline: now,
		EstExec:     k.observed[id],
		SourceTime:  sourceTime,
	}
	k.total.Released++
	k.window.Released++
	k.perTask[id].Released++
	k.total.Missed++
	k.window.Missed++
	k.perTask[id].Missed++
	if t.IsControl {
		k.total.E2EDecided++
		k.total.E2EMissed++
		k.window.E2EDecided++
		k.window.E2EMissed++
	}
	k.trace(jobEvent(EventInvalid, now, j, -1))
	if k.onDecided != nil {
		k.onDecided(now, j, true)
	}
}

// emitControl accounts and publishes a control command.
func (k *Kernel) emitControl(now simtime.Time, j *sched.Job) {
	cmd := ControlCommand{
		Task:       j.Task,
		Cycle:      j.Cycle,
		Release:    j.Release,
		Completed:  now,
		SourceTime: j.SourceTime,
	}
	k.total.ControlCommands++
	k.window.ControlCommands++
	k.total.ControlResponse.Add(float64(cmd.ResponseTime()))
	k.window.ControlResponse.Add(float64(cmd.ResponseTime()))
	k.total.EndToEnd.Add(float64(cmd.EndToEndLatency()))
	k.window.EndToEnd.Add(float64(cmd.EndToEndLatency()))
	k.trace(jobEvent(EventControl, now, j, -1))
	if k.onCmd != nil {
		k.onCmd(cmd)
	}
}
