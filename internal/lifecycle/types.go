// Package lifecycle is the backend-agnostic job-lifecycle kernel shared by
// the discrete-event engine (internal/engine) and the wall-clock executor
// (internal/rt). It owns the job state machine
//
//	release → ready → dispatched → completed | missed | expired
//
// together with pipeline provenance (SourceTime), deadline and
// end-to-end-budget accounting, latest-value edge propagation (Cyber RT
// channel semantics), the canonical ControlCommand/Stats types, and a
// structured trace stream of lifecycle events.
//
// The kernel is parameterized over a small Backend interface — deliver a
// source capture after its latency, wake idle processors, snapshot the
// processor pool — so an execution backend reduces to scheduling-loop glue:
// the engine maps Backend onto a simtime.EventQueue, the rt executor onto
// goroutines and wall-clock timers. Running the same graph, seed and policy
// through both backends must produce identical lifecycle event sequences
// (modulo timestamps); internal/lifecycle's differential tests assert this.
package lifecycle

import (
	"hcperf/internal/dag"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
	"hcperf/internal/stats"
)

// ControlCommand describes one completed control-task job. It is the
// canonical command type for both execution backends (engine.ControlCommand
// and rt.ControlCommand are aliases).
type ControlCommand struct {
	// Task is the control task that produced the command.
	Task *dag.Task
	// Cycle is the control task's release sequence number.
	Cycle uint64
	// Release is when the control job entered the ready queue.
	Release simtime.Time
	// Completed is when the control job finished executing.
	Completed simtime.Time
	// SourceTime is the release instant of the oldest sensing data that
	// flowed into this command; Completed-SourceTime is the end-to-end
	// pipeline latency.
	SourceTime simtime.Time
}

// ResponseTime returns how long the control job waited plus ran.
func (c ControlCommand) ResponseTime() simtime.Duration { return c.Completed - c.Release }

// EndToEndLatency returns sensing-to-actuation latency.
func (c ControlCommand) EndToEndLatency() simtime.Duration { return c.Completed - c.SourceTime }

// TaskStats aggregates per-task outcomes.
type TaskStats struct {
	Released  uint64
	Completed uint64
	Missed    uint64 // late completions + expirations in queue
	Expired   uint64 // subset of Missed: dropped from the queue unrun
	ExecTime  stats.Accumulator
}

// Stats aggregates kernel-wide outcomes. The struct is comparable: two runs
// with identical semantics yield identical Stats values.
type Stats struct {
	Released        uint64
	Completed       uint64
	Missed          uint64
	Expired         uint64
	ControlCommands uint64
	// E2EDecided and E2EMissed count only control (sink) jobs: their
	// deadline outcomes are the system's end-to-end deadline outcomes.
	E2EDecided      uint64
	E2EMissed       uint64
	ControlResponse stats.Accumulator
	EndToEnd        stats.Accumulator
}

// MissRatio returns misses over decided jobs (completed+missed), the
// paper's deadline miss ratio m.
func (s *Stats) MissRatio() float64 {
	decided := s.Completed + s.Missed
	if decided == 0 {
		return 0
	}
	return float64(s.Missed) / float64(decided)
}

// E2EMissRatio returns the end-to-end deadline miss ratio: misses over
// decided control jobs.
func (s *Stats) E2EMissRatio() float64 {
	if s.E2EDecided == 0 {
		return 0
	}
	return float64(s.E2EMissed) / float64(s.E2EDecided)
}

// QueueObserver is implemented by schedulers (HCPerf's Dynamic) that want
// to re-derive internal state whenever the ready queue changes.
type QueueObserver interface {
	Recompute(now simtime.Time, ready []*sched.Job, state *sched.ProcState)
}
