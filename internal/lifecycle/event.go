package lifecycle

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"hcperf/internal/dag"
	"hcperf/internal/simtime"
)

// EventKind classifies one lifecycle transition of a job.
type EventKind uint8

// Lifecycle event kinds, in the order a healthy job traverses them.
const (
	// EventRelease: a job entered the system — a source capture started,
	// or a data-triggered task joined the ready queue.
	EventRelease EventKind = iota + 1
	// EventDeliver: a source capture finished off-CPU and delivered its
	// output downstream.
	EventDeliver
	// EventDispatch: a ready job started executing on a processor.
	EventDispatch
	// EventComplete: a dispatched job finished within all its deadlines.
	EventComplete
	// EventMiss: a dispatched job finished after its deadline; its output
	// was discarded.
	EventMiss
	// EventExpire: a queued job's deadline passed before it ever ran; it
	// was dropped from the ready queue.
	EventExpire
	// EventInvalid: a data-triggered cycle was suppressed because an
	// input exceeded the data-age validity bound.
	EventInvalid
	// EventControl: an on-time control completion emitted a command.
	EventControl
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventRelease:
		return "release"
	case EventDeliver:
		return "deliver"
	case EventDispatch:
		return "dispatch"
	case EventComplete:
		return "complete"
	case EventMiss:
		return "miss"
	case EventExpire:
		return "expire"
	case EventInvalid:
		return "invalid"
	case EventControl:
		return "control"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one structured lifecycle trace record. Events for a given task
// are emitted in causal order; Cycle ties the records of one job together.
type Event struct {
	// Kind is the lifecycle transition.
	Kind EventKind
	// Task is the graph-local task ID; TaskName its human-readable name.
	Task     dag.TaskID
	TaskName string
	// Cycle is the job's task-local release sequence number.
	Cycle uint64
	// T is when the event happened on the backend's clock.
	T simtime.Time
	// Proc is the processor involved (Dispatch/Complete/Miss), -1 when
	// the event is not bound to a processor.
	Proc int
	// SourceTime is the sensing instant of the job's primary chain.
	SourceTime simtime.Time
	// Deadline is the job's absolute deadline (zero for Deliver events,
	// whose captures cannot miss).
	Deadline simtime.Time
}

// Tracer receives the kernel's lifecycle event stream. Implementations are
// invoked synchronously under the backend's execution context (the event
// loop in the engine, the executor lock in rt) and must not call back into
// the kernel.
type Tracer interface {
	Trace(ev Event)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(ev Event)

// Trace implements Tracer.
func (f TracerFunc) Trace(ev Event) { f(ev) }

// MultiTracer fans one event stream out to several tracers.
type MultiTracer []Tracer

// Trace implements Tracer.
func (m MultiTracer) Trace(ev Event) {
	for _, t := range m {
		t.Trace(ev)
	}
}

// Ring is a bounded ring-buffer event collector: it keeps the most recent
// Cap events and counts how many older ones it dropped. The zero value is
// not usable; construct with NewRing.
type Ring struct {
	buf     []Event
	head    int // next write position
	filled  bool
	dropped uint64
}

// NewRing returns a collector retaining up to capacity events.
func NewRing(capacity int) (*Ring, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("lifecycle: ring capacity %d < 1", capacity)
	}
	return &Ring{buf: make([]Event, 0, capacity)}, nil
}

// Trace implements Tracer.
func (r *Ring) Trace(ev Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		return
	}
	r.filled = true
	r.buf[r.head] = ev
	r.head = (r.head + 1) % cap(r.buf)
	r.dropped++
}

// Len returns the number of retained events.
func (r *Ring) Len() int { return len(r.buf) }

// Dropped returns how many events were evicted to make room.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Events returns the retained events oldest-first as a fresh slice.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	if r.filled {
		out = append(out, r.buf[r.head:]...)
		out = append(out, r.buf[:r.head]...)
		return out
	}
	return append(out, r.buf...)
}

// WriteCSV writes events as CSV rows:
// kind,task,cycle,t,proc,source_time,deadline.
func WriteCSV(w io.Writer, events []Event) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "task", "cycle", "t", "proc", "source_time", "deadline"}); err != nil {
		return fmt.Errorf("lifecycle: write header: %w", err)
	}
	for _, ev := range events {
		rec := []string{
			ev.Kind.String(),
			ev.TaskName,
			strconv.FormatUint(ev.Cycle, 10),
			strconv.FormatFloat(float64(ev.T), 'g', -1, 64),
			strconv.Itoa(ev.Proc),
			strconv.FormatFloat(float64(ev.SourceTime), 'g', -1, 64),
			strconv.FormatFloat(float64(ev.Deadline), 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("lifecycle: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// chromeEvent is one record of the Chrome trace-event JSON format
// (chrome://tracing, Perfetto). Ts and Dur are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level Chrome trace document.
type chromeTrace struct {
	TraceEvents []chromeEvent     `json:"traceEvents"`
	Metadata    map[string]string `json:"otherData,omitempty"`
}

const (
	chromePidProcs = 1 // processor-occupancy rows: one tid per processor
	chromePidTasks = 2 // per-task lifecycle rows: one tid per task
)

// WriteChromeTrace renders the event stream as a Chrome trace-event JSON
// document loadable in chrome://tracing or Perfetto. Each dispatched job
// becomes a duration slice on its processor's row (pid 1); releases,
// deliveries, expirations, invalid cycles and control emissions become
// instant markers on the owning task's row (pid 2).
func WriteChromeTrace(w io.Writer, events []Event) error {
	doc := chromeTrace{
		TraceEvents: make([]chromeEvent, 0, len(events)),
		Metadata:    map[string]string{"source": "hcperf lifecycle kernel"},
	}
	// Pending dispatch instants, keyed by (task, cycle), to pair with the
	// matching Complete/Miss into a duration slice.
	type jobKey struct {
		task  dag.TaskID
		cycle uint64
	}
	pending := make(map[jobKey]Event)
	us := func(t simtime.Time) float64 { return float64(t) * 1e6 }
	for _, ev := range events {
		switch ev.Kind {
		case EventDispatch:
			pending[jobKey{ev.Task, ev.Cycle}] = ev
		case EventComplete, EventMiss:
			key := jobKey{ev.Task, ev.Cycle}
			start, ok := pending[key]
			if !ok {
				continue // dispatch fell outside the retained window
			}
			delete(pending, key)
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name:  start.TaskName,
				Cat:   "job",
				Phase: "X",
				Ts:    us(start.T),
				Dur:   us(ev.T - start.T),
				Pid:   chromePidProcs,
				Tid:   start.Proc,
				Args: map[string]any{
					"cycle":    ev.Cycle,
					"outcome":  ev.Kind.String(),
					"deadline": float64(ev.Deadline),
				},
			})
		default:
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name:  ev.TaskName + "/" + ev.Kind.String(),
				Cat:   "lifecycle",
				Phase: "i",
				Ts:    us(ev.T),
				Pid:   chromePidTasks,
				Tid:   int(ev.Task),
				Scope: "t",
				Args: map[string]any{
					"cycle":       ev.Cycle,
					"source_time": float64(ev.SourceTime),
				},
			})
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("lifecycle: encode chrome trace: %w", err)
	}
	return nil
}
