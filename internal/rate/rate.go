// Package rate implements HCPerf's Task Rate Adapter (paper §VI): the
// external coordinator's proportional feedback controller that retunes the
// release rates of all source (sensing) tasks jointly, driven by the
// system's end-to-end deadline-miss ratio.
//
// Each adaptation period k the adapter computes the miss-ratio error
//
//	e(k) = m_t − m(k)            (with e(k) = ε when m(k) = 0)
//
// and proposes new rates
//
//	r_out = Kp·e(k) + r(k)       (Eq. 13)
//
// per source task, where the per-task gain is Kp scaled by that task's
// allowable rate span so one dimensionless gain serves heterogeneous
// sensors. e(k) < 0 (too many misses) sheds load; e(k) > 0 raises rates to
// exploit head-room and improve control-command throughput.
//
// Kp decays toward zero while the loop is stable, freezing the rates; an
// unusual change in observed task execution times resets Kp to its profiled
// initial value so the loop re-engages (paper §VI step 2).
package rate

import (
	"errors"
	"fmt"
	"math"

	"hcperf/internal/dag"
	"hcperf/internal/simtime"
)

// Config parameterises an Adapter.
type Config struct {
	// TargetMissRatio is m_t, the deadline-miss ratio the loop steers to.
	TargetMissRatio float64
	// Epsilon is the small positive error substituted when m(k) = 0 so
	// the loop keeps probing for head-room.
	Epsilon float64
	// Kp0 is the initial (offline-profiled) dimensionless gain.
	Kp0 float64
	// Decay is the multiplicative Kp decay applied per stable period,
	// in (0,1).
	Decay float64
	// StableBand is the |e(k)| band within which the loop is considered
	// stable and Kp decays.
	StableBand float64
	// FreezeBelow zeroes Kp once it decays under this fraction of Kp0.
	FreezeBelow float64
	// ResetThreshold is the relative change in the observed execution-
	// time signal that constitutes an "unusual change" and resets Kp.
	ResetThreshold float64
	// ExecEWMA is the smoothing factor (0,1] for the execution-time
	// regime tracker; higher reacts faster.
	ExecEWMA float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.TargetMissRatio < 0 || c.TargetMissRatio >= 1:
		return fmt.Errorf("rate: target miss ratio %v outside [0,1)", c.TargetMissRatio)
	case c.Epsilon <= 0:
		return fmt.Errorf("rate: epsilon %v must be positive", c.Epsilon)
	case c.Kp0 <= 0:
		return fmt.Errorf("rate: Kp0 %v must be positive", c.Kp0)
	case c.Decay <= 0 || c.Decay >= 1:
		return fmt.Errorf("rate: decay %v outside (0,1)", c.Decay)
	case c.StableBand <= 0:
		return fmt.Errorf("rate: stable band %v must be positive", c.StableBand)
	case c.FreezeBelow < 0 || c.FreezeBelow >= 1:
		return fmt.Errorf("rate: freeze threshold %v outside [0,1)", c.FreezeBelow)
	case c.ResetThreshold <= 0:
		return fmt.Errorf("rate: reset threshold %v must be positive", c.ResetThreshold)
	case c.ExecEWMA <= 0 || c.ExecEWMA > 1:
		return fmt.Errorf("rate: exec EWMA factor %v outside (0,1]", c.ExecEWMA)
	}
	return nil
}

// DefaultConfig returns the gains used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		TargetMissRatio: 0.005,
		Epsilon:         0.012,
		Kp0:             0.8,
		Decay:           0.9,
		StableBand:      0.008,
		FreezeBelow:     0.05,
		ResetThreshold:  0.25,
		ExecEWMA:        0.3,
	}
}

// Proposal is the adapter's output for one source task.
type Proposal struct {
	Task    *dag.Task
	OldRate float64
	NewRate float64 // already clamped to the task's [MinRate, MaxRate]
}

// Adapter is the Task Rate Adapter. Not safe for concurrent use.
type Adapter struct {
	cfg      Config
	kp       float64
	execEWMA float64
	hasEWMA  bool
	resets   uint64
	steps    uint64
}

// New validates cfg and builds an adapter with Kp = Kp0.
func New(cfg Config) (*Adapter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Adapter{cfg: cfg, kp: cfg.Kp0}, nil
}

// Kp returns the current proportional gain.
func (a *Adapter) Kp() float64 { return a.kp }

// Resets returns how many times the gain was reset by regime changes.
func (a *Adapter) Resets() uint64 { return a.resets }

// Steps returns the number of adaptation periods processed.
func (a *Adapter) Steps() uint64 { return a.steps }

// NoteExecTime feeds the regime tracker with an observed execution-time
// signal (e.g. the fusion task's latest run time). A relative jump beyond
// ResetThreshold against the EWMA resets Kp to Kp0 so the loop re-engages.
func (a *Adapter) NoteExecTime(d simtime.Duration) {
	x := float64(d)
	if x <= 0 {
		return
	}
	if !a.hasEWMA {
		a.execEWMA = x
		a.hasEWMA = true
		return
	}
	if rel := math.Abs(x-a.execEWMA) / a.execEWMA; rel > a.cfg.ResetThreshold {
		a.kp = a.cfg.Kp0
		a.resets++
		a.execEWMA = x
		return
	}
	a.execEWMA += a.cfg.ExecEWMA * (x - a.execEWMA)
}

// Step runs one adaptation period: given the measured miss ratio m(k) and
// the current source rates, it returns the clamped rate proposals and
// updates the internal gain schedule. sources maps each source task to its
// current rate.
func (a *Adapter) Step(missRatio float64, sources map[*dag.Task]float64) ([]Proposal, error) {
	if missRatio < 0 || missRatio > 1 {
		return nil, fmt.Errorf("rate: miss ratio %v outside [0,1]", missRatio)
	}
	if len(sources) == 0 {
		return nil, errors.New("rate: no source tasks")
	}
	a.steps++
	e := a.cfg.TargetMissRatio - missRatio
	if missRatio == 0 {
		e = a.cfg.Epsilon
	}

	out := make([]Proposal, 0, len(sources))
	saturated := true
	for t, r := range sources {
		if t == nil {
			return nil, errors.New("rate: nil source task")
		}
		span := t.MaxRate - t.MinRate
		if span <= 0 {
			// Fixed-rate source: never adjusted.
			out = append(out, Proposal{Task: t, OldRate: r, NewRate: r})
			continue
		}
		// Eq. 13 with a state-scaled per-task gain: shedding acts on
		// the full allowable span (fast overload relief); probing acts
		// on the remaining head-room, approaching the ceiling
		// asymptotically instead of slamming into overload.
		gain := span
		if e > 0 {
			gain = t.MaxRate - r
		}
		nr := r + a.kp*e*gain
		if nr < t.MinRate {
			nr = t.MinRate
		}
		if nr > t.MaxRate {
			nr = t.MaxRate
		}
		if nr < t.MaxRate {
			saturated = false
		}
		out = append(out, Proposal{Task: t, OldRate: r, NewRate: nr})
	}

	// Gain schedule (paper §VI step 2): decay toward zero — freezing the
	// rates — while the loop is stable: either the miss-ratio error sits
	// inside the stable band, or the loop is probing upward with every
	// adjustable rate already at its ceiling (nothing left to exploit).
	if math.Abs(e) <= a.cfg.StableBand || (e > 0 && saturated) {
		a.kp *= a.cfg.Decay
		if a.kp < a.cfg.FreezeBelow*a.cfg.Kp0 {
			a.kp = 0
		}
	}
	return out, nil
}
