package rate_test

import (
	"fmt"

	"hcperf/internal/dag"
	"hcperf/internal/rate"
)

// The Task Rate Adapter sheds load when the deadline-miss ratio exceeds its
// target and probes upward when the system runs clean.
func Example() {
	adapter, err := rate.New(rate.DefaultConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	camera := &dag.Task{Name: "camera", Rate: 20, MinRate: 10, MaxRate: 30}

	// Period 1: the system misses 30% of deadlines — shed.
	props, err := adapter.Step(0.30, map[*dag.Task]float64{camera: 20})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("overloaded: %4.1f Hz -> %4.1f Hz\n", props[0].OldRate, props[0].NewRate)

	// Period 2: no misses — exploit the head-room.
	props, err = adapter.Step(0, map[*dag.Task]float64{camera: props[0].NewRate})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("clean:      %4.1f Hz -> %4.1f Hz (probing upward)\n", props[0].OldRate, props[0].NewRate)
	// Output:
	// overloaded: 20.0 Hz -> 15.3 Hz
	// clean:      15.3 Hz -> 15.4 Hz (probing upward)
}
