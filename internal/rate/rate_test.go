package rate

import (
	"math"
	"testing"
	"testing/quick"

	"hcperf/internal/dag"
	"hcperf/internal/simtime"
)

func source(name string, minRate, maxRate float64) *dag.Task {
	return &dag.Task{Name: name, MinRate: minRate, MaxRate: maxRate, Rate: (minRate + maxRate) / 2}
}

func adapter(t *testing.T) *Adapter {
	t.Helper()
	a, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "negative target", mutate: func(c *Config) { c.TargetMissRatio = -0.1 }},
		{name: "target 1", mutate: func(c *Config) { c.TargetMissRatio = 1 }},
		{name: "zero epsilon", mutate: func(c *Config) { c.Epsilon = 0 }},
		{name: "zero kp", mutate: func(c *Config) { c.Kp0 = 0 }},
		{name: "decay 1", mutate: func(c *Config) { c.Decay = 1 }},
		{name: "zero band", mutate: func(c *Config) { c.StableBand = 0 }},
		{name: "freeze 1", mutate: func(c *Config) { c.FreezeBelow = 1 }},
		{name: "zero reset", mutate: func(c *Config) { c.ResetThreshold = 0 }},
		{name: "ewma 0", mutate: func(c *Config) { c.ExecEWMA = 0 }},
		{name: "ewma 2", mutate: func(c *Config) { c.ExecEWMA = 2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestOverloadShedsLoad(t *testing.T) {
	a := adapter(t)
	src := source("cam", 10, 30)
	props, err := a.Step(0.4 /* heavy misses */, map[*dag.Task]float64{src: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 1 {
		t.Fatalf("got %d proposals, want 1", len(props))
	}
	if props[0].NewRate >= props[0].OldRate {
		t.Errorf("rate rose from %v to %v under overload", props[0].OldRate, props[0].NewRate)
	}
	if props[0].NewRate < src.MinRate {
		t.Errorf("rate %v below MinRate %v", props[0].NewRate, src.MinRate)
	}
}

func TestUnderloadRaisesRates(t *testing.T) {
	a := adapter(t)
	src := source("cam", 10, 30)
	props, err := a.Step(0 /* no misses */, map[*dag.Task]float64{src: 15})
	if err != nil {
		t.Fatal(err)
	}
	if props[0].NewRate <= props[0].OldRate {
		t.Errorf("rate did not rise with zero misses: %v -> %v", props[0].OldRate, props[0].NewRate)
	}
	if props[0].NewRate > src.MaxRate {
		t.Errorf("rate %v above MaxRate %v", props[0].NewRate, src.MaxRate)
	}
}

func TestFixedRateSourceUntouched(t *testing.T) {
	a := adapter(t)
	fixed := &dag.Task{Name: "fixed", Rate: 10} // MinRate = MaxRate = 0
	props, err := a.Step(0.5, map[*dag.Task]float64{fixed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if props[0].NewRate != 10 {
		t.Errorf("fixed-rate source adjusted to %v", props[0].NewRate)
	}
}

func TestClampingAtBounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Kp0 = 100 // huge gain to force saturation
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := source("cam", 10, 30)
	props, err := a.Step(1, map[*dag.Task]float64{src: 20})
	if err != nil {
		t.Fatal(err)
	}
	if props[0].NewRate != src.MinRate {
		t.Errorf("saturated shed rate = %v, want MinRate %v", props[0].NewRate, src.MinRate)
	}
	props, err = a.Step(0, map[*dag.Task]float64{src: 20})
	if err != nil {
		t.Fatal(err)
	}
	if props[0].NewRate != src.MaxRate {
		t.Errorf("saturated raise rate = %v, want MaxRate %v", props[0].NewRate, src.MaxRate)
	}
}

func TestKpDecaysWhenStable(t *testing.T) {
	a := adapter(t)
	src := source("cam", 10, 30)
	kp0 := a.Kp()
	// Miss ratio right at the target: |e| = 0 <= band, Kp decays.
	for i := 0; i < 5; i++ {
		if _, err := a.Step(DefaultConfig().TargetMissRatio, map[*dag.Task]float64{src: 20}); err != nil {
			t.Fatal(err)
		}
	}
	if a.Kp() >= kp0 {
		t.Errorf("Kp %v did not decay from %v while stable", a.Kp(), kp0)
	}
}

func TestKpFreezesToZero(t *testing.T) {
	a := adapter(t)
	src := source("cam", 10, 30)
	for i := 0; i < 200; i++ {
		if _, err := a.Step(DefaultConfig().TargetMissRatio, map[*dag.Task]float64{src: 20}); err != nil {
			t.Fatal(err)
		}
	}
	if a.Kp() != 0 {
		t.Errorf("Kp = %v after long stability, want 0 (frozen)", a.Kp())
	}
	// Frozen gain leaves rates unchanged even with a positive error.
	props, err := a.Step(0, map[*dag.Task]float64{src: 20})
	if err != nil {
		t.Fatal(err)
	}
	if props[0].NewRate != 20 {
		t.Errorf("frozen adapter changed rate to %v", props[0].NewRate)
	}
}

func TestKpDoesNotDecayWhileUnstable(t *testing.T) {
	a := adapter(t)
	src := source("cam", 10, 30)
	kp0 := a.Kp()
	for i := 0; i < 5; i++ {
		if _, err := a.Step(0.5, map[*dag.Task]float64{src: 20}); err != nil {
			t.Fatal(err)
		}
	}
	if a.Kp() != kp0 {
		t.Errorf("Kp moved to %v while loop was unstable", a.Kp())
	}
}

func TestExecRegimeChangeResetsKp(t *testing.T) {
	a := adapter(t)
	src := source("cam", 10, 30)
	// Stabilise to decay Kp.
	a.NoteExecTime(20 * simtime.Millisecond)
	for i := 0; i < 50; i++ {
		if _, err := a.Step(DefaultConfig().TargetMissRatio, map[*dag.Task]float64{src: 20}); err != nil {
			t.Fatal(err)
		}
		a.NoteExecTime(20 * simtime.Millisecond)
	}
	if a.Kp() != 0 {
		t.Fatalf("precondition: Kp = %v, want 0", a.Kp())
	}
	// Execution time doubles: the paper's complex-scene event.
	a.NoteExecTime(40 * simtime.Millisecond)
	if a.Kp() != DefaultConfig().Kp0 {
		t.Errorf("Kp = %v after regime change, want reset to Kp0", a.Kp())
	}
	if a.Resets() != 1 {
		t.Errorf("Resets = %d, want 1", a.Resets())
	}
}

func TestNoteExecTimeSmallDriftNoReset(t *testing.T) {
	a := adapter(t)
	a.NoteExecTime(20 * simtime.Millisecond)
	for i := 0; i < 20; i++ {
		a.NoteExecTime(simtime.Duration(20+float64(i%3)) * simtime.Millisecond)
	}
	if a.Resets() != 0 {
		t.Errorf("small drift caused %d resets", a.Resets())
	}
	a.NoteExecTime(0) // ignored
	if a.Steps() != 0 {
		t.Errorf("Steps = %d before any Step call", a.Steps())
	}
}

func TestStepValidation(t *testing.T) {
	a := adapter(t)
	src := source("cam", 10, 30)
	if _, err := a.Step(-0.1, map[*dag.Task]float64{src: 20}); err == nil {
		t.Error("negative miss ratio accepted")
	}
	if _, err := a.Step(1.5, map[*dag.Task]float64{src: 20}); err == nil {
		t.Error("miss ratio > 1 accepted")
	}
	if _, err := a.Step(0.1, nil); err == nil {
		t.Error("empty source map accepted")
	}
	if _, err := a.Step(0.1, map[*dag.Task]float64{nil: 20}); err == nil {
		t.Error("nil source task accepted")
	}
}

// Property: proposals always stay inside the task's rate range and move in
// the direction of the error.
func TestQuickProposalsBoundedAndDirectional(t *testing.T) {
	f := func(missRaw uint8, rateRaw uint8) bool {
		a, err := New(DefaultConfig())
		if err != nil {
			return false
		}
		miss := float64(missRaw) / 255
		src := source("s", 10, 30)
		cur := 10 + float64(rateRaw)/255*20
		props, err := a.Step(miss, map[*dag.Task]float64{src: cur})
		if err != nil || len(props) != 1 {
			return false
		}
		nr := props[0].NewRate
		if nr < src.MinRate-1e-9 || nr > src.MaxRate+1e-9 {
			return false
		}
		e := DefaultConfig().TargetMissRatio - miss
		if miss == 0 {
			e = DefaultConfig().Epsilon
		}
		switch {
		case e > 0 && nr < cur-1e-9:
			return false
		case e < 0 && nr > cur+1e-9:
			return false
		}
		return !math.IsNaN(nr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property (stability, Eq. 14): iterating the closed loop with a
// proportional plant m(k+1) = clamp(m(k) + g·(r(k+1) − r(k))) converges to
// a fixed point: rates stop moving.
func TestQuickClosedLoopConverges(t *testing.T) {
	f := func(gRaw uint8, m0Raw uint8) bool {
		a, err := New(DefaultConfig())
		if err != nil {
			return false
		}
		g := 0.001 + float64(gRaw)/255*0.01 // miss ratio per Hz
		m := float64(m0Raw) / 255 * 0.5
		src := source("s", 10, 30)
		r := 20.0
		var lastDelta float64
		for k := 0; k < 300; k++ {
			props, err := a.Step(m, map[*dag.Task]float64{src: r})
			if err != nil {
				return false
			}
			nr := props[0].NewRate
			lastDelta = math.Abs(nr - r)
			m = clamp01(m + g*(nr-r))
			r = nr
		}
		return lastDelta < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
