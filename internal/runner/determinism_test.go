package runner_test

// Determinism verification for the whole evaluation: every experiment in
// the registry must produce a byte-identical Report — same text rendering,
// same CSV export — whether its internal sweeps run serially or on a
// 4-worker pool. This is the load-bearing invariant behind `-parallel N`:
// simulations own all their state (RNGs, task graphs, recorders), so
// concurrency must be observationally invisible. These tests live in an
// external test package because internal/experiment imports internal/runner.

import (
	"context"
	"fmt"
	"testing"

	"hcperf/internal/experiment"
	"hcperf/internal/runner"
	"hcperf/internal/scenario"
)

// digestAt runs one experiment with the given sweep worker count and
// returns its canonical digest.
func digestAt(t *testing.T, id string, seed int64, workers int) string {
	t.Helper()
	experiment.SetParallelism(workers)
	defer experiment.SetParallelism(1)
	rep, err := experiment.Run(id, seed)
	if err != nil {
		t.Fatalf("%s (workers=%d): %v", id, workers, err)
	}
	d, err := rep.Digest()
	if err != nil {
		t.Fatalf("%s digest: %v", id, err)
	}
	return d
}

// TestEveryExperimentDeterministicSerialVsParallel is the table-driven
// harness over the full registry: serial and 4-worker runs of every
// Fig/Table constructor must digest identically for the same seed.
func TestEveryExperimentDeterministicSerialVsParallel(t *testing.T) {
	const seed = 7
	for _, id := range experiment.IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			serial := digestAt(t, id, seed, 1)
			parallel := digestAt(t, id, seed, 4)
			if serial != parallel {
				t.Errorf("experiment %s: serial digest %s != parallel digest %s", id, serial, parallel)
			}
		})
	}
}

// suiteResult adapts a full RunAll result to the harness's Digester.
type suiteResult []*experiment.Report

func (s suiteResult) Digest() (string, error) {
	var all string
	for _, rep := range s {
		d, err := rep.Digest()
		if err != nil {
			return "", err
		}
		all += rep.ID + "=" + d + ";"
	}
	return all, nil
}

// TestSuiteVerifySerialParallel drives the harness API end to end: the
// entire suite, fanned out at both levels (experiments across the pool and
// sweeps inside each experiment), must match its serial reference.
func TestSuiteVerifySerialParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite twice")
	}
	err := runner.VerifySerialParallel(context.Background(), 4, func(ctx context.Context, workers int) (runner.Digester, error) {
		experiment.SetParallelism(workers)
		defer experiment.SetParallelism(1)
		reports, err := experiment.RunAll(ctx, 7, workers)
		if err != nil {
			return nil, err
		}
		return suiteResult(reports), nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDifferentSeedsDiverge is the harness's sanity counterweight: if two
// different seeds produced identical digests, the digest (or the seeding)
// would be vacuous and the tests above would prove nothing.
func TestDifferentSeedsDiverge(t *testing.T) {
	a := digestAt(t, "fig13", 7, 1)
	b := digestAt(t, "fig13", 8, 1)
	if a == b {
		t.Error("fig13 digests identical across different seeds; digest is not discriminating")
	}
}

// shortSweep runs a truncated car-following sweep across all five schemes
// and returns one scalar fingerprint per scheme.
func shortSweep(workers int, seed int64) ([]float64, error) {
	results, err := runner.Map(context.Background(), workers, scenario.AllSchemes(),
		func(_ context.Context, s scenario.Scheme) (*scenario.CarFollowingResult, error) {
			return scenario.RunCarFollowing(scenario.CarFollowingConfig{Scheme: s, Seed: seed, Duration: 5})
		})
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(results))
	for i, r := range results {
		out[i] = r.SpeedErrRMS + 1000*r.DistErrRMS + float64(r.EngineStats.ControlCommands)
	}
	return out, nil
}

// TestOverlappingSweepsNoSharedState runs several whole sweeps concurrently
// — sweeps inside sweeps, all on the same seed — and checks every copy
// reproduces the serial reference exactly. Under `go test -race` this
// also flushes out hidden globals in the exectime/rand plumbing: any shared
// mutable state between two engine instances is either a race report or a
// fingerprint mismatch.
func TestOverlappingSweepsNoSharedState(t *testing.T) {
	const seed = 3
	want, err := shortSweep(1, seed)
	if err != nil {
		t.Fatal(err)
	}
	const copies = 4
	got, err := runner.Map(context.Background(), copies, make([]int, copies),
		func(_ context.Context, _ int) ([]float64, error) {
			return shortSweep(2, seed)
		})
	if err != nil {
		t.Fatal(err)
	}
	for c, fp := range got {
		for i := range want {
			if fp[i] != want[i] {
				t.Errorf("concurrent sweep copy %d, scheme %v: fingerprint %v != serial reference %v",
					c, scenario.AllSchemes()[i], fp[i], want[i])
			}
		}
	}
}

// TestRunAllFailSlowReportsEveryFailure checks the suite-level error
// aggregation contract via a tiny synthetic registry stand-in: the real
// registry has no failing experiments, so exercise RunAll's error path
// through runner.Map directly with experiment-shaped units.
func TestRunAllFailSlowReportsEveryFailure(t *testing.T) {
	ids := []string{"ok-1", "bad-1", "ok-2", "bad-2"}
	_, err := runner.Map(context.Background(), 2, ids, func(_ context.Context, id string) (*experiment.Report, error) {
		if id[:2] == "ba" {
			return nil, fmt.Errorf("%s: synthetic failure", id)
		}
		return &experiment.Report{ID: id}, nil
	})
	var errs runner.Errors
	if !asErrors(err, &errs) || len(errs) != 2 || errs[0].Index != 1 || errs[1].Index != 3 {
		t.Fatalf("want failures at indices 1 and 3, got %v", err)
	}
}

func asErrors(err error, target *runner.Errors) bool {
	e, ok := err.(runner.Errors)
	if ok {
		*target = e
	}
	return ok
}
