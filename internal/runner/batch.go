package runner

import (
	"context"
	"fmt"
)

// MapBatch is Map over consecutive groups of inputs: the input slice is cut
// into batches of up to size elements (the last batch may be shorter), the
// batches are fanned out across the worker pool, and the flattened outputs
// come back in input order. It exists for units that amortize per-unit setup
// when executed together — batched multi-seed simulation advances K replicas
// on one shared event queue instead of K private ones — while keeping the
// sweep-level semantics of Map: fail-slow, order-preserving, prompt
// cancellation.
//
// fn receives one batch and must return exactly one output per input, in
// input order. A batch that fails (error, panic, or cancelled before
// dispatch) reports its error once per member, each under the member's
// original input index, so callers see the same Errors shape Map produces.
// size < 1 is treated as 1.
func MapBatch[I, O any](ctx context.Context, workers, size int, inputs []I, fn func(ctx context.Context, in []I) ([]O, error)) ([]O, error) {
	if size < 1 {
		size = 1
	}
	type batch struct {
		start int
		in    []I
	}
	batches := make([]batch, 0, (len(inputs)+size-1)/size)
	for start := 0; start < len(inputs); start += size {
		end := start + size
		if end > len(inputs) {
			end = len(inputs)
		}
		batches = append(batches, batch{start: start, in: inputs[start:end]})
	}

	outs, mapErr := Map(ctx, workers, batches, func(ctx context.Context, b batch) ([]O, error) {
		out, err := fn(ctx, b.in)
		if err != nil {
			return nil, err
		}
		if len(out) != len(b.in) {
			return nil, fmt.Errorf("runner: batch fn returned %d outputs for %d inputs", len(out), len(b.in))
		}
		return out, nil
	})

	results := make([]O, len(inputs))
	for bi, out := range outs {
		copy(results[batches[bi].start:], out)
	}
	if mapErr == nil {
		return results, nil
	}
	// Re-index batch-level failures to input indices so MapBatch's Errors
	// are interchangeable with Map's.
	var flat Errors
	for _, ue := range mapErr.(Errors) {
		b := batches[ue.Index]
		for j := range b.in {
			flat = append(flat, &UnitError{Index: b.start + j, Err: ue.Err})
		}
	}
	return results, flat
}
