package runner

import (
	"context"
	"fmt"
)

// Digester is a simulation result that can summarise itself as a canonical
// digest: two results with equal digests are byte-identical for every
// rendering the system produces (report text, CSV export). experiment.Report
// is the canonical implementation.
type Digester interface {
	// Digest returns a stable hex digest of the result's canonical
	// serialisation.
	Digest() (string, error)
}

// Mismatch reports a determinism violation found by VerifySerialParallel:
// the same unit produced different canonical results under serial and
// parallel execution.
type Mismatch struct {
	// Serial and Parallel are the differing digests.
	Serial, Parallel string
	// Workers is the parallel worker count that exposed the divergence.
	Workers int
}

// Error implements error.
func (m *Mismatch) Error() string {
	return fmt.Sprintf("runner: determinism violation: serial digest %s != parallel digest %s (workers=%d)",
		m.Serial, m.Parallel, m.Workers)
}

// VerifySerialParallel runs one unit twice with identical inputs — first
// with a single worker (the serial reference), then with the given worker
// count — and compares the canonical digests of the two results. A nil
// return proves the unit's output is independent of scheduling across the
// pool; a *Mismatch return is a determinism bug: some state (an RNG, a
// recorder, a task graph) is shared between concurrently running units.
//
// run receives the worker count to execute under; it must thread that value
// into every internal sweep (e.g. via Map) and perform no other
// configuration change between the two runs.
func VerifySerialParallel(ctx context.Context, workers int, run func(ctx context.Context, workers int) (Digester, error)) error {
	workers = Parallelism(workers)
	serial, err := run(ctx, 1)
	if err != nil {
		return fmt.Errorf("runner: serial reference run: %w", err)
	}
	parallel, err := run(ctx, workers)
	if err != nil {
		return fmt.Errorf("runner: parallel run (workers=%d): %w", workers, err)
	}
	ds, err := serial.Digest()
	if err != nil {
		return fmt.Errorf("runner: serial digest: %w", err)
	}
	dp, err := parallel.Digest()
	if err != nil {
		return fmt.Errorf("runner: parallel digest: %w", err)
	}
	if ds != dp {
		return &Mismatch{Serial: ds, Parallel: dp, Workers: workers}
	}
	return nil
}
