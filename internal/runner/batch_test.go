package runner

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestMapBatchOrderAndGrouping checks that inputs are cut into consecutive
// batches of the requested size and the flattened outputs come back in
// input order for both serial and parallel pools.
func TestMapBatchOrderAndGrouping(t *testing.T) {
	inputs := make([]int, 10)
	for i := range inputs {
		inputs[i] = i
	}
	for _, workers := range []int{1, 4} {
		for _, size := range []int{1, 3, 10, 100} {
			got, err := MapBatch(context.Background(), workers, size, inputs,
				func(_ context.Context, in []int) ([]string, error) {
					if size >= 1 && len(in) > size {
						return nil, fmt.Errorf("batch of %d exceeds size %d", len(in), size)
					}
					out := make([]string, len(in))
					for i, v := range in {
						out[i] = fmt.Sprintf("v%d", v)
					}
					return out, nil
				})
			if err != nil {
				t.Fatalf("workers=%d size=%d: %v", workers, size, err)
			}
			for i, v := range got {
				if want := fmt.Sprintf("v%d", i); v != want {
					t.Fatalf("workers=%d size=%d: result[%d] = %q, want %q", workers, size, i, v, want)
				}
			}
		}
	}
}

// TestMapBatchErrorIndices checks that a failing batch reports its error
// once per member under the member's original input index, keeping MapBatch
// Errors interchangeable with Map's.
func TestMapBatchErrorIndices(t *testing.T) {
	boom := errors.New("boom")
	inputs := []int{0, 1, 2, 3, 4}
	got, err := MapBatch(context.Background(), 1, 2, inputs,
		func(_ context.Context, in []int) ([]int, error) {
			if in[0] == 2 { // the second batch: inputs 2,3
				return nil, boom
			}
			return in, nil
		})
	var errs Errors
	if !errors.As(err, &errs) {
		t.Fatalf("want Errors, got %v", err)
	}
	if len(errs) != 2 || errs[0].Index != 2 || errs[1].Index != 3 {
		t.Fatalf("want unit errors at input indices 2,3, got %v", errs)
	}
	for _, ue := range errs {
		if !errors.Is(ue, boom) {
			t.Errorf("unit error %v does not unwrap to the batch error", ue)
		}
	}
	// Successful batches still deliver their results.
	if got[0] != 0 || got[1] != 1 || got[4] != 4 {
		t.Errorf("successful batches lost results: %v", got)
	}
}

// TestMapBatchOutputCountMismatch checks that a batch fn returning the
// wrong number of outputs fails that batch instead of silently misaligning
// the flattened results.
func TestMapBatchOutputCountMismatch(t *testing.T) {
	_, err := MapBatch(context.Background(), 1, 2, []int{1, 2, 3},
		func(_ context.Context, in []int) ([]int, error) {
			return in[:1], nil
		})
	if err == nil {
		t.Fatal("want error for output count mismatch, got nil")
	}
}

// TestMapBatchPanicIsolated checks that a panicking batch is converted into
// per-member errors without taking down the pool.
func TestMapBatchPanicIsolated(t *testing.T) {
	got, err := MapBatch(context.Background(), 2, 2, []int{0, 1, 2, 3},
		func(_ context.Context, in []int) ([]int, error) {
			if in[0] == 0 {
				panic("kaboom")
			}
			return in, nil
		})
	var errs Errors
	if !errors.As(err, &errs) {
		t.Fatalf("want Errors, got %v", err)
	}
	if len(errs) != 2 || errs[0].Index != 0 || errs[1].Index != 1 {
		t.Fatalf("want the panicking batch's two members to fail, got %v", errs)
	}
	if got[2] != 2 || got[3] != 3 {
		t.Errorf("surviving batch lost results: %v", got)
	}
}
