// Package runner fans independent simulation units — experiment × scheme ×
// seed combinations — out across a bounded worker pool while keeping the
// observable behaviour indistinguishable from a serial loop: results come
// back in input order regardless of completion order, every unit runs even
// when earlier ones fail (fail-slow error aggregation), and cancellation
// stops dispatch promptly without abandoning results already computed.
//
// The package also hosts the determinism-verification harness (see
// VerifySerialParallel): because every simulation unit owns its RNGs, task
// graph and recorders, running a unit under the pool must produce the exact
// bytes a serial run produces. The harness turns that requirement into an
// enforced invariant by comparing canonical digests of serial and parallel
// runs.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
)

// Parallelism resolves a worker-count request: n >= 1 is used as given;
// zero or negative selects GOMAXPROCS, i.e. "as parallel as the hardware
// allows".
func Parallelism(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// UnitError records the failure of one unit of a Map call.
type UnitError struct {
	// Index is the unit's position in the input slice.
	Index int
	// Err is the failure; ctx.Err() for units never dispatched because
	// the context was cancelled first.
	Err error
}

// Error implements error.
func (e *UnitError) Error() string {
	return fmt.Sprintf("unit %d: %v", e.Index, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *UnitError) Unwrap() error { return e.Err }

// Errors aggregates unit failures in input order. Map returns it whenever
// at least one unit failed; successful units' results are still present in
// the result slice.
type Errors []*UnitError

// Error implements error, summarising every failure.
func (e Errors) Error() string {
	if len(e) == 1 {
		return fmt.Sprintf("runner: %v", e[0])
	}
	var b strings.Builder
	fmt.Fprintf(&b, "runner: %d units failed:", len(e))
	for _, u := range e {
		b.WriteString("\n\t")
		b.WriteString(u.Error())
	}
	return b.String()
}

// Unwrap exposes the individual unit errors to errors.Is/As.
func (e Errors) Unwrap() []error {
	out := make([]error, len(e))
	for i, u := range e {
		out[i] = u
	}
	return out
}

// Map runs fn over every input on a pool of workers (see Parallelism for
// the worker-count convention) and returns the outputs in input order,
// regardless of the order units complete in.
//
// Map is fail-slow: a failing unit does not stop the others. When any unit
// fails, Map returns the full result slice (zero values at failed indices)
// together with an Errors value listing every failure in input order. A
// panicking unit is captured and reported as that unit's error rather than
// crashing the pool.
//
// Cancelling ctx stops the dispatch of not-yet-started units; those units
// report ctx.Err(). Units already running are not interrupted (simulation
// units are CPU-bound and short; fn may of course observe ctx itself).
func Map[I, O any](ctx context.Context, workers int, inputs []I, fn func(ctx context.Context, in I) (O, error)) ([]O, error) {
	results := make([]O, len(inputs))
	errs := make([]error, len(inputs))
	workers = Parallelism(workers)
	if workers > len(inputs) {
		workers = len(inputs)
	}

	if workers <= 1 {
		// Serial fast path: identical semantics, no goroutines. This is
		// the reference behaviour the determinism harness compares
		// parallel runs against.
		for i := range inputs {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			results[i], errs[i] = runUnit(ctx, inputs[i], fn)
		}
		return results, collect(errs)
	}

	indices := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range indices {
				results[i], errs[i] = runUnit(ctx, inputs[i], fn)
			}
		}()
	}
	// Dispatch in input order; stop handing out work once ctx is done,
	// even while blocked waiting for a free worker.
	cancelled := -1
	for i := range inputs {
		// Check first so at most one unit is dispatched after
		// cancellation (select alone picks randomly between a ready
		// worker and the done channel).
		if ctx.Err() != nil {
			cancelled = i
			break
		}
		select {
		case indices <- i:
		case <-ctx.Done():
			cancelled = i
		}
		if cancelled >= 0 {
			break
		}
	}
	close(indices)
	wg.Wait()
	if cancelled >= 0 {
		for i := cancelled; i < len(inputs); i++ {
			errs[i] = ctx.Err()
		}
	}
	return results, collect(errs)
}

// runUnit executes one unit, converting panics into errors so a single bad
// unit cannot take down the whole sweep.
func runUnit[I, O any](ctx context.Context, in I, fn func(ctx context.Context, in I) (O, error)) (out O, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runner: unit panicked: %v", r)
		}
	}()
	return fn(ctx, in)
}

// collect folds per-index errors into an Errors value, or nil if none.
func collect(errs []error) error {
	var out Errors
	for i, err := range errs {
		if err != nil {
			out = append(out, &UnitError{Index: i, Err: err})
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
