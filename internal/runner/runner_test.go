package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"
)

func TestParallelismResolve(t *testing.T) {
	if got := Parallelism(3); got != 3 {
		t.Errorf("Parallelism(3) = %d, want 3", got)
	}
	if got := Parallelism(1); got != 1 {
		t.Errorf("Parallelism(1) = %d, want 1", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Parallelism(0); got != want {
		t.Errorf("Parallelism(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Parallelism(-5); got != want {
		t.Errorf("Parallelism(-5) = %d, want GOMAXPROCS %d", got, want)
	}
}

// TestMapInputOrder checks that results come back in input order even when
// completion order is scrambled: earlier units sleep longer than later ones.
func TestMapInputOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			inputs := make([]int, 32)
			for i := range inputs {
				inputs[i] = i
			}
			out, err := Map(context.Background(), workers, inputs, func(_ context.Context, i int) (int, error) {
				time.Sleep(time.Duration(len(inputs)-i) * 100 * time.Microsecond)
				return i * i, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range out {
				if v != i*i {
					t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
				}
			}
		})
	}
}

// TestMapFailSlow checks the fail-slow contract: every unit runs, every
// failure is reported (in input order), and successful results survive.
func TestMapFailSlow(t *testing.T) {
	boom := errors.New("boom")
	inputs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	out, err := Map(context.Background(), 4, inputs, func(_ context.Context, i int) (int, error) {
		if i%3 == 0 {
			return 0, fmt.Errorf("unit %d: %w", i, boom)
		}
		return i + 100, nil
	})
	if err == nil {
		t.Fatal("expected aggregated error")
	}
	var errs Errors
	if !errors.As(err, &errs) {
		t.Fatalf("error type %T, want Errors", err)
	}
	wantFailed := []int{0, 3, 6}
	if len(errs) != len(wantFailed) {
		t.Fatalf("got %d unit errors, want %d: %v", len(errs), len(wantFailed), err)
	}
	for i, ue := range errs {
		if ue.Index != wantFailed[i] {
			t.Errorf("error %d has index %d, want %d", i, ue.Index, wantFailed[i])
		}
		if !errors.Is(ue, boom) {
			t.Errorf("error %d does not unwrap to boom: %v", i, ue)
		}
	}
	if !errors.Is(err, boom) {
		t.Error("aggregate error does not unwrap to the unit cause")
	}
	for _, i := range []int{1, 2, 4, 5, 7} {
		if out[i] != i+100 {
			t.Errorf("successful unit %d lost its result: got %d", i, out[i])
		}
	}
}

// TestMapPanicIsolated checks a panicking unit becomes that unit's error
// instead of killing the pool.
func TestMapPanicIsolated(t *testing.T) {
	for _, workers := range []int{1, 4} {
		out, err := Map(context.Background(), workers, []int{0, 1, 2}, func(_ context.Context, i int) (string, error) {
			if i == 1 {
				panic("kaboom")
			}
			return fmt.Sprintf("ok-%d", i), nil
		})
		var errs Errors
		if !errors.As(err, &errs) || len(errs) != 1 || errs[0].Index != 1 {
			t.Fatalf("workers=%d: want exactly unit 1 to fail, got %v", workers, err)
		}
		if out[0] != "ok-0" || out[2] != "ok-2" {
			t.Errorf("workers=%d: neighbours of panicking unit lost results: %q", workers, out)
		}
	}
}

// TestMapCancel checks cancellation stops dispatch and marks undispatched
// units with the context error, while completed units keep their results.
func TestMapCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan int, 64)
	release := make(chan struct{})
	inputs := make([]int, 16)
	for i := range inputs {
		inputs[i] = i
	}
	done := make(chan struct{})
	var out []int
	var err error
	go func() {
		defer close(done)
		out, err = Map(ctx, 2, inputs, func(_ context.Context, i int) (int, error) {
			started <- i
			<-release
			return i, nil
		})
	}()
	// Let the two workers pick up the first two units, then cancel.
	<-started
	<-started
	cancel()
	close(release)
	<-done

	if err == nil {
		t.Fatal("expected cancellation error")
	}
	var errs Errors
	if !errors.As(err, &errs) {
		t.Fatalf("error type %T, want Errors", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("aggregate error does not unwrap to context.Canceled: %v", err)
	}
	// The in-flight units (at least the first two) completed with results;
	// every failed unit reports ctx.Err(); failed + succeeded = all.
	failed := make(map[int]bool, len(errs))
	for _, ue := range errs {
		if !errors.Is(ue.Err, context.Canceled) {
			t.Errorf("unit %d failed with %v, want context.Canceled", ue.Index, ue.Err)
		}
		failed[ue.Index] = true
	}
	if failed[0] || failed[1] {
		t.Error("units dispatched before cancellation were marked cancelled")
	}
	for i := range inputs {
		if !failed[i] && out[i] != i {
			t.Errorf("completed unit %d has result %d, want %d", i, out[i], i)
		}
	}
	if len(failed) == 0 {
		t.Error("cancellation marked no unit as undispatched")
	}
}

// TestMapConcurrencyReached proves the pool really runs units concurrently:
// four units rendezvous at a barrier that only opens when all four are
// in flight, which deadlocks (and times out) if the pool were serial.
func TestMapConcurrencyReached(t *testing.T) {
	const n = 4
	arrive := make(chan struct{}, n)
	release := make(chan struct{})
	go func() {
		for i := 0; i < n; i++ {
			<-arrive
		}
		close(release)
	}()
	done := make(chan error, 1)
	go func() {
		_, err := Map(context.Background(), n, make([]struct{}, n), func(_ context.Context, _ struct{}) (struct{}, error) {
			arrive <- struct{}{}
			<-release
			return struct{}{}, nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pool never had 4 units in flight simultaneously")
	}
}

// TestMapEmptyAndSingle covers the degenerate shapes.
func TestMapEmptyAndSingle(t *testing.T) {
	out, err := Map(context.Background(), 8, nil, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty inputs: out=%v err=%v", out, err)
	}
	out, err = Map(context.Background(), 8, []int{7}, func(_ context.Context, i int) (int, error) { return i * 2, nil })
	if err != nil || len(out) != 1 || out[0] != 14 {
		t.Fatalf("single input: out=%v err=%v", out, err)
	}
}

// TestVerifySerialParallelDetectsMismatch feeds the harness a deliberately
// scheduling-dependent unit and checks it reports a Mismatch, then feeds it
// a deterministic unit and checks it passes.
func TestVerifySerialParallelDetectsMismatch(t *testing.T) {
	calls := 0
	bad := func(ctx context.Context, workers int) (Digester, error) {
		calls++
		return digestString(fmt.Sprintf("run-%d-workers-%d", calls, workers)), nil
	}
	err := VerifySerialParallel(context.Background(), 4, bad)
	var mm *Mismatch
	if !errors.As(err, &mm) {
		t.Fatalf("want *Mismatch, got %v", err)
	}
	if mm.Workers != 4 {
		t.Errorf("Mismatch.Workers = %d, want 4", mm.Workers)
	}

	good := func(ctx context.Context, workers int) (Digester, error) {
		return digestString("stable"), nil
	}
	if err := VerifySerialParallel(context.Background(), 4, good); err != nil {
		t.Errorf("deterministic unit rejected: %v", err)
	}
}

type digestString string

func (d digestString) Digest() (string, error) { return string(d), nil }
