package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Thresholds is the checked-in gate a load report is judged against
// (LOAD_baseline.json at the repository root for the CI soak). Every
// field is a pointer: absent fields simply aren't checked, so one file
// can gate throughput-only for a smoke run and the full set for a soak.
type Thresholds struct {
	// MinRPS is the floor on achieved successful requests/second.
	MinRPS *float64 `json:"min_rps,omitempty"`
	// MaxP50MS / MaxP99MS / MaxP999MS cap the latency quantiles.
	MaxP50MS  *float64 `json:"max_p50_ms,omitempty"`
	MaxP99MS  *float64 `json:"max_p99_ms,omitempty"`
	MaxP999MS *float64 `json:"max_p999_ms,omitempty"`
	// MaxErrorRatio caps (transport errors + 5xx) / requests.
	MaxErrorRatio *float64 `json:"max_error_ratio,omitempty"`
	// MaxShedRatio caps the server-side shed ratio (requires a /metrics
	// scrape; violated as "unmeasured" when the scrape failed).
	MaxShedRatio *float64 `json:"max_shed_ratio,omitempty"`
	// MaxBreakerOpens caps breaker trips during the window (same scrape
	// requirement as MaxShedRatio).
	MaxBreakerOpens *float64 `json:"max_breaker_opens,omitempty"`
	// MaxRetryAfterViolations caps 429s carrying a dishonest Retry-After.
	MaxRetryAfterViolations *float64 `json:"max_retry_after_violations,omitempty"`
}

// ReadThresholds loads a thresholds file.
func ReadThresholds(path string) (*Thresholds, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t Thresholds
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("loadgen: thresholds file %s: %w", path, err)
	}
	return &t, nil
}

// Violation is one threshold the report broke.
type Violation struct {
	Metric string
	Value  float64
	Bound  float64
	// Floor distinguishes "must be at least" (min_rps) from "must be at
	// most" bounds in the rendered table.
	Floor bool
	// Unmeasured marks a server-side bound that could not be evaluated
	// because the /metrics scrape failed — treated as a violation, since
	// a gate that silently skips its checks is no gate.
	Unmeasured bool
}

func (v Violation) String() string {
	if v.Unmeasured {
		return fmt.Sprintf("%-26s unmeasured (metrics scrape failed), bound %g", v.Metric, v.Bound)
	}
	rel := "<="
	if v.Floor {
		rel = ">="
	}
	return fmt.Sprintf("%-26s %g violates %s %g", v.Metric, v.Value, rel, v.Bound)
}

// Check evaluates the report against the thresholds, returning every
// violation (empty = the gate passes).
func (t *Thresholds) Check(r *Report) []Violation {
	var out []Violation
	ceil := func(metric string, value float64, bound *float64) {
		if bound != nil && value > *bound {
			out = append(out, Violation{Metric: metric, Value: value, Bound: *bound})
		}
	}
	if t.MinRPS != nil && r.AchievedRPS < *t.MinRPS {
		out = append(out, Violation{Metric: "min_rps", Value: r.AchievedRPS, Bound: *t.MinRPS, Floor: true})
	}
	ceil("max_p50_ms", r.Latency.P50MS, t.MaxP50MS)
	ceil("max_p99_ms", r.Latency.P99MS, t.MaxP99MS)
	ceil("max_p999_ms", r.Latency.P999MS, t.MaxP999MS)
	ceil("max_error_ratio", r.ErrorRatio, t.MaxErrorRatio)
	ceil("max_retry_after_violations", float64(r.RetryAfterViolations), t.MaxRetryAfterViolations)
	for _, sb := range []struct {
		metric string
		bound  *float64
		value  func(*ServerDelta) float64
	}{
		{"max_shed_ratio", t.MaxShedRatio, func(s *ServerDelta) float64 { return s.ShedRatio }},
		{"max_breaker_opens", t.MaxBreakerOpens, func(s *ServerDelta) float64 { return s.BreakerOpens }},
	} {
		if sb.bound == nil {
			continue
		}
		if r.Server == nil {
			out = append(out, Violation{Metric: sb.metric, Bound: *sb.bound, Unmeasured: true})
			continue
		}
		ceil(sb.metric, sb.value(r.Server), sb.bound)
	}
	return out
}
