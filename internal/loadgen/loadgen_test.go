package loadgen

import (
	"bufio"
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestHistBucketIndexMonotoneAndBounded(t *testing.T) {
	// Powers of two and their neighbours are the octave boundaries where
	// index math goes wrong first.
	var values []uint64
	for shift := 0; shift < 63; shift++ {
		values = append(values, 1<<shift-1, 1<<shift, 1<<shift+1)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	last := -1
	for _, v := range values {
		idx := bucketIndex(v)
		if idx < 0 || idx >= histSlots {
			t.Fatalf("bucketIndex(%d) = %d out of [0, %d)", v, idx, histSlots)
		}
		if idx < last {
			t.Fatalf("bucketIndex(%d) = %d < previous %d; must be monotone", v, idx, last)
		}
		last = idx
	}
}

func TestHistBucketRelativeError(t *testing.T) {
	// Every value's bucket midpoint is within ~3.2% (one part in 32, plus
	// the half-bucket rounding) of the value itself.
	for _, v := range []uint64{1, 31, 32, 33, 100, 999, 1000, 12345, 1 << 20, 1<<40 + 12345} {
		mid := bucketMid(bucketIndex(v))
		if rel := math.Abs(float64(mid)-float64(v)) / float64(v); rel > 1.0/32+0.001 {
			t.Errorf("value %d -> midpoint %d, relative error %.4f > 1/32", v, mid, rel)
		}
	}
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	// 1..1000 µs, uniformly: p50 ≈ 500µs, p99 ≈ 990µs.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if n := h.Count(); n != 1000 {
		t.Fatalf("Count = %d, want 1000", n)
	}
	check := func(q float64, want time.Duration) {
		t.Helper()
		got := h.Quantile(q)
		tol := time.Duration(float64(want) / 16) // two bucket widths
		if got < want-tol || got > want+tol {
			t.Errorf("Quantile(%g) = %v, want %v ± %v", q, got, want, tol)
		}
	}
	check(0.50, 500*time.Microsecond)
	check(0.95, 950*time.Microsecond)
	check(0.99, 990*time.Microsecond)
	if max := h.Max(); max != time.Millisecond {
		t.Errorf("Max = %v, want 1ms (exact, not bucketed)", max)
	}
	if mean := h.Mean(); mean < 480*time.Microsecond || mean > 520*time.Microsecond {
		t.Errorf("Mean = %v, want ~500µs", mean)
	}
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	for i := 0; i < 100; i++ {
		a.Record(time.Millisecond)
		b.Record(10 * time.Millisecond)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", a.Count())
	}
	if p50 := a.Quantile(0.5); p50 > 2*time.Millisecond {
		t.Errorf("merged p50 = %v, want ~1ms", p50)
	}
	if max := a.Max(); max != 10*time.Millisecond {
		t.Errorf("merged max = %v, want 10ms", max)
	}
}

func TestParseMetrics(t *testing.T) {
	text := `# HELP hcperf_queue_depth Jobs waiting.
# TYPE hcperf_queue_depth gauge
hcperf_queue_depth 3
hcperf_runs_completed_total 42
hcperf_store_hits_total{tier="memory"} 7
garbage line without value
`
	snap := parseMetrics(bufio.NewScanner(strings.NewReader(text)))
	if snap["hcperf_queue_depth"] != 3 || snap["hcperf_runs_completed_total"] != 42 {
		t.Errorf("snapshot = %v, want queue_depth 3 and completed 42", snap)
	}
	if snap[`hcperf_store_hits_total{tier="memory"}`] != 7 {
		t.Errorf("labeled metric not parsed verbatim: %v", snap)
	}
}

func TestServerDelta(t *testing.T) {
	before := Snapshot{
		"hcperf_runs_completed_total": 10, "hcperf_cache_hits_total": 5,
		"hcperf_dedup_hits_total": 1, "hcperf_cache_misses_total": 4, "hcperf_shed_total": 0,
	}
	after := Snapshot{
		"hcperf_runs_completed_total": 30, "hcperf_cache_hits_total": 65,
		"hcperf_dedup_hits_total": 11, "hcperf_cache_misses_total": 24, "hcperf_shed_total": 10,
	}
	d := serverDelta(before, after, 10*time.Second)
	if d.RunsPerSec != 2 {
		t.Errorf("RunsPerSec = %g, want 2", d.RunsPerSec)
	}
	// Window deltas: hits 60+10, misses 20 → hit ratio 70/90.
	if want := 70.0 / 90.0; math.Abs(d.CacheHitRatio-want) > 1e-9 {
		t.Errorf("CacheHitRatio = %g, want %g", d.CacheHitRatio, want)
	}
	if want := 10.0 / 100.0; math.Abs(d.ShedRatio-want) > 1e-9 {
		t.Errorf("ShedRatio = %g, want %g", d.ShedRatio, want)
	}
	// Counters the server never exported (limiter off) read as zero.
	if d.RateLimited != 0 || d.BreakerOpens != 0 {
		t.Errorf("absent counters = (%g, %g), want zero deltas", d.RateLimited, d.BreakerOpens)
	}
}

func fptr(v float64) *float64 { return &v }

func TestThresholdsCheck(t *testing.T) {
	rep := &Report{AchievedRPS: 45, ErrorRatio: 0.02, RetryAfterViolations: 1}
	rep.Latency.P99MS = 120
	rep.Server = &ServerDelta{ShedRatio: 0.3, BreakerOpens: 2}

	pass := &Thresholds{MinRPS: fptr(40), MaxP99MS: fptr(200), MaxErrorRatio: fptr(0.05)}
	if v := pass.Check(rep); len(v) != 0 {
		t.Fatalf("passing thresholds produced violations: %v", v)
	}

	fail := &Thresholds{
		MinRPS: fptr(50), MaxP99MS: fptr(100), MaxErrorRatio: fptr(0.01),
		MaxShedRatio: fptr(0.1), MaxBreakerOpens: fptr(0), MaxRetryAfterViolations: fptr(0),
	}
	v := fail.Check(rep)
	if len(v) != 6 {
		t.Fatalf("violations = %d (%v), want all 6 bounds broken", len(v), v)
	}
	for _, viol := range v {
		if viol.String() == "" {
			t.Error("violation renders empty")
		}
	}

	// Server-side bounds with no scrape are violations, not silent skips.
	rep.Server = nil
	v = (&Thresholds{MaxShedRatio: fptr(0.1)}).Check(rep)
	if len(v) != 1 || !v[0].Unmeasured {
		t.Fatalf("scrape-less server bound = %v, want one unmeasured violation", v)
	}
}

// fakeServe mimics the two endpoints the load generator touches, with a
// controllable per-request delay and 429 behaviour.
type fakeServe struct {
	requests atomic.Int64
	limitAt  int64  // >0: 429 every request past this count
	retryHdr string // Retry-After value on 429s ("" = omit: a violation)
}

func (f *fakeServe) handler() http.Handler {
	mux := http.NewServeMux()
	completed := func() int64 { return f.requests.Load() }
	mux.HandleFunc("POST /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		n := f.requests.Add(1)
		if f.limitAt > 0 && n > f.limitAt {
			if f.retryHdr != "" {
				w.Header().Set("Retry-After", f.retryHdr)
			}
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"x","state":"queued"}`)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "hcperf_runs_completed_total %d\nhcperf_cache_misses_total %d\n", completed(), completed())
	})
	return mux
}

func TestRunClosedLoopAgainstFake(t *testing.T) {
	f := &fakeServe{}
	ts := httptest.NewServer(f.handler())
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		URL: ts.URL, Concurrency: 4,
		Duration: 300 * time.Millisecond, Warmup: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.AchievedRPS == 0 {
		t.Fatalf("report = %+v, want nonzero closed-loop traffic", rep)
	}
	if rep.StatusCodes["202"] != rep.Requests {
		t.Errorf("status codes = %v, want all 202 over %d requests", rep.StatusCodes, rep.Requests)
	}
	if rep.ErrorRatio != 0 || rep.TransportErrors != 0 {
		t.Errorf("errors = (%g, %d), want none", rep.ErrorRatio, rep.TransportErrors)
	}
	if rep.Latency.Samples != rep.Requests {
		t.Errorf("latency samples = %d, want %d", rep.Latency.Samples, rep.Requests)
	}
	if rep.Server == nil {
		t.Fatal("server delta missing; scrape against the fake failed")
	}
	if rep.Server.RunsPerSec <= 0 {
		t.Errorf("server runs/sec = %g, want > 0", rep.Server.RunsPerSec)
	}
}

func TestRunOpenLoopPacesAndCountsViolations(t *testing.T) {
	// The fake sheds everything past the first 5 requests without a
	// Retry-After header: every measured 429 is a violation.
	f := &fakeServe{limitAt: 5, retryHdr: ""}
	ts := httptest.NewServer(f.handler())
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		URL: ts.URL, RPS: 100, Concurrency: 4,
		Duration: 500 * time.Millisecond, Warmup: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 100 rps over 0.5s: the pacer schedules ~50 slots; allow wide slack
	// for a loaded test machine, but the count must track the schedule,
	// not the worker count.
	if rep.Requests < 20 || rep.Requests > 60 {
		t.Errorf("open-loop requests = %d, want ~50 (schedule-driven)", rep.Requests)
	}
	if rep.Limited == 0 {
		t.Error("no 429s recorded against a shedding server")
	}
	if rep.RetryAfterViolations != rep.Limited {
		t.Errorf("violations = %d, want every one of the %d header-less 429s flagged",
			rep.RetryAfterViolations, rep.Limited)
	}
}

func TestRunHonestRetryAfterIsNoViolation(t *testing.T) {
	f := &fakeServe{limitAt: 1, retryHdr: "2"}
	ts := httptest.NewServer(f.handler())
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		URL: ts.URL, Concurrency: 2,
		Duration: 200 * time.Millisecond, Warmup: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Limited == 0 {
		t.Fatal("no 429s recorded")
	}
	if rep.RetryAfterViolations != 0 {
		t.Errorf("violations = %d on honest Retry-After headers, want 0", rep.RetryAfterViolations)
	}
}

func TestReadMixFileValidates(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		path := dir + "/" + name
		if err := writeFile(path, content); err != nil {
			t.Fatal(err)
		}
		return path
	}
	good := write("good.json", `[{"name":"a","weight":2,"body":{"experiment":"fig5"}}]`)
	mix, err := ReadMixFile(good)
	if err != nil || len(mix) != 1 || mix[0].Weight != 2 {
		t.Fatalf("ReadMixFile = (%v, %v), want one entry", mix, err)
	}
	for name, content := range map[string]string{
		"empty.json":     `[]`,
		"badweight.json": `[{"name":"a","weight":0,"body":{}}]`,
		"nobody.json":    `[{"name":"a","weight":1}]`,
	} {
		if _, err := ReadMixFile(write(name, content)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
