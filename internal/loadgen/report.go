package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// Latency is the client-side distribution over the measurement window, in
// milliseconds (the natural unit for HTTP serving latencies; the JSON keys
// say so explicitly).
type Latency struct {
	P50MS   float64 `json:"p50_ms"`
	P95MS   float64 `json:"p95_ms"`
	P99MS   float64 `json:"p99_ms"`
	P999MS  float64 `json:"p999_ms"`
	MeanMS  float64 `json:"mean_ms"`
	MaxMS   float64 `json:"max_ms"`
	Samples uint64  `json:"samples"`
}

// Report is one load run's deterministic-JSON result: fixed field order,
// no wall-clock timestamps, status codes in a map (Go marshals map keys
// sorted), so two identical runs against an idle server diff cleanly —
// the same discipline as internal/perf's BENCH baselines.
type Report struct {
	// Target restates the offered load so the report documents its own
	// measurement conditions: rps 0 means closed loop.
	Target struct {
		RPS         float64 `json:"rps"`
		Concurrency int     `json:"concurrency"`
		DurationSec float64 `json:"duration_sec"`
		WarmupSec   float64 `json:"warmup_sec"`
	} `json:"target"`
	// Requests is the measured-window request count; AchievedRPS is
	// successful (2xx) requests per second of the window.
	Requests    uint64  `json:"requests"`
	AchievedRPS float64 `json:"achieved_rps"`
	// StatusCodes counts final response codes ("202": cache miss queued,
	// "200": served from cache, "429": shed or rate-limited...).
	StatusCodes map[string]uint64 `json:"status_codes"`
	// TransportErrors are requests that never got a status line;
	// ErrorRatio is (transport errors + 5xx) over requests.
	TransportErrors uint64  `json:"transport_errors"`
	ErrorRatio      float64 `json:"error_ratio"`
	// Limited counts 429 responses; RetryAfterViolations counts 429s whose
	// Retry-After header was missing, unparseable or < 1s.
	Limited              uint64 `json:"limited"`
	RetryAfterViolations uint64 `json:"retry_after_violations"`
	// Latency is measured from the scheduled send time in open loop
	// (coordinated-omission aware) and from the actual send in closed
	// loop.
	Latency Latency `json:"latency"`
	// Server is the /metrics delta over the window; nil when the scrape
	// failed.
	Server *ServerDelta `json:"server,omitempty"`
}

// buildReport assembles the report from the merged worker stats.
func buildReport(cfg Config, agg *workerStats) *Report {
	r := &Report{Requests: agg.sent, StatusCodes: make(map[string]uint64, len(agg.codes))}
	r.Target.RPS = cfg.RPS
	r.Target.Concurrency = cfg.Concurrency
	r.Target.DurationSec = cfg.Duration.Seconds()
	r.Target.WarmupSec = cfg.Warmup.Seconds()
	for code, n := range agg.codes {
		r.StatusCodes[fmt.Sprint(code)] = n
	}
	if s := cfg.Duration.Seconds(); s > 0 {
		r.AchievedRPS = float64(agg.ok) / s
	}
	r.TransportErrors = agg.transportErrs
	if agg.sent > 0 {
		errs := agg.transportErrs
		for code, n := range agg.codes {
			if code >= 500 {
				errs += n
			}
		}
		r.ErrorRatio = float64(errs) / float64(agg.sent)
	}
	r.Limited = agg.limited
	r.RetryAfterViolations = agg.retryAfterViolations
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	r.Latency = Latency{
		P50MS:   ms(agg.hist.Quantile(0.50)),
		P95MS:   ms(agg.hist.Quantile(0.95)),
		P99MS:   ms(agg.hist.Quantile(0.99)),
		P999MS:  ms(agg.hist.Quantile(0.999)),
		MeanMS:  ms(agg.hist.Mean()),
		MaxMS:   ms(agg.hist.Max()),
		Samples: agg.hist.Count(),
	}
	return r
}

// Write encodes the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path, creating parent directories.
func (r *Report) WriteFile(path string) error {
	if dir := dirOf(path); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func dirOf(path string) string {
	if i := strings.LastIndexByte(path, '/'); i > 0 {
		return path[:i]
	}
	return ""
}

// String renders the human summary hcperf-load prints.
func (r *Report) String() string {
	var sb strings.Builder
	loop := "closed"
	if r.Target.RPS > 0 {
		loop = fmt.Sprintf("open @ %g rps", r.Target.RPS)
	}
	fmt.Fprintf(&sb, "loop        %s (%d workers, %gs measured after %gs warmup)\n",
		loop, r.Target.Concurrency, r.Target.DurationSec, r.Target.WarmupSec)
	fmt.Fprintf(&sb, "requests    %d (%.1f ok/s)\n", r.Requests, r.AchievedRPS)
	codes := make([]string, 0, len(r.StatusCodes))
	for c := range r.StatusCodes {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		fmt.Fprintf(&sb, "  status %s  %d\n", c, r.StatusCodes[c])
	}
	if r.TransportErrors > 0 {
		fmt.Fprintf(&sb, "  transport errors %d\n", r.TransportErrors)
	}
	fmt.Fprintf(&sb, "latency     p50 %.2fms  p95 %.2fms  p99 %.2fms  p999 %.2fms  max %.2fms\n",
		r.Latency.P50MS, r.Latency.P95MS, r.Latency.P99MS, r.Latency.P999MS, r.Latency.MaxMS)
	if r.Limited > 0 || r.RetryAfterViolations > 0 {
		fmt.Fprintf(&sb, "limited     %d (retry-after violations %d)\n", r.Limited, r.RetryAfterViolations)
	}
	if s := r.Server; s != nil {
		fmt.Fprintf(&sb, "server      %.1f runs/s  cache-hit %.1f%%  shed %.1f%%  rate-limited %g  breaker-opens %g\n",
			s.RunsPerSec, 100*s.CacheHitRatio, 100*s.ShedRatio, s.RateLimited, s.BreakerOpens)
	}
	return sb.String()
}
