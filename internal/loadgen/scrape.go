package loadgen

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Snapshot is one parse of a Prometheus text exposition: metric name (with
// any label set attached verbatim) to value. Only the last sample of a
// repeated name wins, which matches the exposition format's semantics for
// the unlabeled counters the load generator cares about.
type Snapshot map[string]float64

// parseMetrics reads Prometheus text exposition into a Snapshot, skipping
// comments and lines it cannot parse (a scrape is best-effort telemetry,
// never a reason to fail a load run).
func parseMetrics(s *bufio.Scanner) Snapshot {
	snap := make(Snapshot)
	for s.Scan() {
		line := strings.TrimSpace(s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		snap[line[:i]] = v
	}
	return snap
}

// scrape fetches and parses url (the server's /metrics endpoint).
func scrape(ctx context.Context, client *http.Client, url string) (Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: scraping %s: status %d", url, resp.StatusCode)
	}
	return parseMetrics(bufio.NewScanner(resp.Body)), nil
}

// ServerDelta is the server's own accounting over the measurement window,
// computed from a /metrics snapshot taken at each end. It answers the
// questions client-side latency cannot: how many runs actually completed,
// what fraction of submissions the cache absorbed, and whether the
// resilience layer fired.
type ServerDelta struct {
	// RunsPerSec is completed executions per second over the window.
	RunsPerSec float64 `json:"runs_per_sec"`
	// CacheHitRatio is (memory cache hits + dedup hits) over all
	// submissions that reached the manager.
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// ShedRatio is queue-full 429s over submissions (shed + admitted).
	ShedRatio float64 `json:"shed_ratio"`
	// RateLimited counts limiter 429s issued during the window (0 when the
	// limiter is off).
	RateLimited float64 `json:"rate_limited"`
	// BreakerOpens counts breaker trips during the window.
	BreakerOpens float64 `json:"breaker_opens"`
}

// delta computes after-before for one counter (absent names read as 0, so
// optional families like hcperf_ratelimit_* degrade to zero deltas).
func delta(before, after Snapshot, name string) float64 {
	return after[name] - before[name]
}

// serverDelta folds two snapshots into the window's ServerDelta.
func serverDelta(before, after Snapshot, window time.Duration) *ServerDelta {
	d := &ServerDelta{
		RateLimited:  delta(before, after, "hcperf_ratelimit_limited_total"),
		BreakerOpens: delta(before, after, "hcperf_breaker_opens_total"),
	}
	if s := window.Seconds(); s > 0 {
		d.RunsPerSec = delta(before, after, "hcperf_runs_completed_total") / s
	}
	hits := delta(before, after, "hcperf_cache_hits_total") + delta(before, after, "hcperf_dedup_hits_total")
	misses := delta(before, after, "hcperf_cache_misses_total")
	if total := hits + misses; total > 0 {
		d.CacheHitRatio = hits / total
	}
	shed := delta(before, after, "hcperf_shed_total")
	if total := shed + hits + misses; total > 0 {
		d.ShedRatio = shed / total
	}
	return d
}
