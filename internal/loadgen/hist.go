// Package loadgen is the measurement core of cmd/hcperf-load: an
// HDR-style latency histogram, a closed/open-loop HTTP load runner for the
// hcperf-serve API, a /metrics scraper that turns two Prometheus snapshots
// into server-side deltas (runs/sec, cache-hit ratio, shed ratio, breaker
// opens), and a threshold checker mirroring internal/perf's
// baseline/compare discipline so CI can gate on sustained throughput and
// tail latency without external tooling.
package loadgen

import (
	"math/bits"
	"time"
)

// Histogram geometry: values are recorded in microseconds, exact up to
// 31µs, then bucketed into 32 linear sub-buckets per power-of-two octave.
// The relative width of one bucket is 1/32 ≈ 3.1%, the classic HDR
// trade-off: quantiles are never more than ~3% off, and the whole range
// from 1µs to ~9 hours fits in a fixed 1952-slot array with no allocation
// on the record path.
const (
	subBits  = 5
	subCount = 1 << subBits // 32 linear sub-buckets per octave
	// histSlots covers every possible 64-bit microsecond value: the first
	// octave holds subCount exact slots, each further octave adds subCount.
	histSlots = subCount + (64-subBits)*subCount
)

// Hist is a fixed-size HDR-style latency histogram. It is NOT
// goroutine-safe: each load worker owns one and the results are combined
// with Merge after the workers join, so the record path is a single array
// increment with no synchronization.
type Hist struct {
	counts [histSlots]uint64
	n      uint64
	sum    uint64 // µs, for the mean
	max    uint64 // µs, exact (bucket midpoints would understate it)
}

// bucketIndex maps a microsecond value to its histogram slot.
func bucketIndex(v uint64) int {
	if v < subCount {
		return int(v)
	}
	// Shift v so its top subBits+1 bits remain: v>>e is in [32, 64), and
	// each octave e contributes subCount slots past the linear region.
	e := bits.Len64(v) - subBits - 1
	return (e+1)*subCount + int(v>>uint(e)) - subCount
}

// bucketMid returns the midpoint (µs) of slot idx — the value quantile
// lookups report for samples landing in that bucket.
func bucketMid(idx int) uint64 {
	if idx < subCount {
		return uint64(idx)
	}
	e := idx/subCount - 1
	lo := uint64(idx%subCount+subCount) << uint(e)
	return lo + uint64(1)<<uint(e)/2
}

// Record adds one latency sample.
func (h *Hist) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := uint64(d / time.Microsecond)
	h.counts[bucketIndex(us)]++
	h.n++
	h.sum += us
	if us > h.max {
		h.max = us
	}
}

// Merge folds other's samples into h.
func (h *Hist) Merge(other *Hist) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Count is the number of recorded samples.
func (h *Hist) Count() uint64 { return h.n }

// Mean is the average sample.
func (h *Hist) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.sum/h.n) * time.Microsecond
}

// Max is the largest sample, exact (not bucketed).
func (h *Hist) Max() time.Duration { return time.Duration(h.max) * time.Microsecond }

// Quantile returns the q-quantile (0 < q <= 1) as the midpoint of the
// bucket holding the ceil(q·n)-th sample, accurate to the ~3% bucket
// width. Zero samples yield zero.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	rank := uint64(q * float64(h.n))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for i, c := range h.counts {
		if cum += c; cum >= rank {
			return time.Duration(bucketMid(i)) * time.Microsecond
		}
	}
	return h.Max() // unreachable: cum reaches n
}
