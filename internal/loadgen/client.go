package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"hcperf/internal/policy"
)

// MixEntry is one weighted request shape in the load mix: Body is posted
// verbatim to /v1/runs, picked with probability Weight over the mix's
// total weight.
type MixEntry struct {
	Name   string          `json:"name"`
	Weight float64         `json:"weight"`
	Body   json.RawMessage `json:"body"`
}

// DefaultMix exercises the cache-and-execute split: four distinct
// experiment digests, so a run warms four fresh executions and then
// measures the steady state the service is designed for — mostly
// content-addressed cache hits.
func DefaultMix() []MixEntry {
	mix := make([]MixEntry, 4)
	for i := range mix {
		mix[i] = MixEntry{
			Name:   fmt.Sprintf("fig5-seed%d", i+1),
			Weight: 1,
			Body:   json.RawMessage(fmt.Sprintf(`{"experiment":"fig5","seed":%d}`, i+1)),
		}
	}
	return mix
}

// ReadMixFile loads a JSON mix file: an array of {name, weight, body}
// entries.
func ReadMixFile(path string) ([]MixEntry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var mix []MixEntry
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&mix); err != nil {
		return nil, fmt.Errorf("loadgen: mix file %s: %w", path, err)
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("loadgen: mix file %s is empty", path)
	}
	for i, e := range mix {
		if e.Weight <= 0 {
			return nil, fmt.Errorf("loadgen: mix entry %d (%s): weight must be > 0", i, e.Name)
		}
		if len(e.Body) == 0 {
			return nil, fmt.Errorf("loadgen: mix entry %d (%s): missing body", i, e.Name)
		}
	}
	return mix, nil
}

// Config shapes one load run against an hcperf-serve instance.
type Config struct {
	// URL is the server base, e.g. http://127.0.0.1:8080.
	URL string
	// RPS > 0 runs open loop: requests are launched on a fixed schedule of
	// 1/RPS and latency is measured from each request's *scheduled* time,
	// so a stalled server accrues the queueing delay it caused instead of
	// silently slowing the offered load (the coordinated-omission trap).
	// RPS == 0 runs closed loop: Concurrency workers fire back-to-back.
	RPS float64
	// Concurrency is the worker count — the closed-loop load, or the
	// open-loop in-flight cap (default 8).
	Concurrency int
	// Duration is the measured window (default 10s); Warmup is the
	// unmeasured lead-in that fills caches and steadies the pools (zero
	// is honored: the hcperf-load flag supplies the 2s default).
	Duration, Warmup time.Duration
	// Mix is the weighted request set (default DefaultMix).
	Mix []MixEntry
	// APIKey, when set, rides as X-API-Key so per-client rate limiting
	// keys this run separately from other traffic.
	APIKey string
	// Timeout bounds one request (default 10s).
	Timeout time.Duration
	// Seed fixes the mix-picking RNG (default 1), keeping the request
	// sequence reproducible across runs.
	Seed int64
	// Retries is the extra attempts per request on transport errors and
	// 5xx, spent against a shared 10% retry budget — the load generator
	// follows the same amplification discipline it is used to test
	// (default 0: report errors raw).
	Retries int
}

func (c Config) withDefaults() Config {
	if c.Concurrency < 1 {
		c.Concurrency = 8
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Warmup < 0 {
		c.Warmup = 0
	}
	if len(c.Mix) == 0 {
		c.Mix = DefaultMix()
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// workerStats is one worker's private tally; merged under the runner's
// mutex after the worker exits, so the hot path never synchronizes.
type workerStats struct {
	hist                 Hist
	codes                map[int]uint64
	sent, ok             uint64
	transportErrs        uint64
	limited              uint64
	retryAfterViolations uint64
}

// pick returns a mix entry by cumulative weight.
func pick(mix []MixEntry, cum []float64, rng *rand.Rand) *MixEntry {
	r := rng.Float64() * cum[len(cum)-1]
	for i := range cum {
		if r < cum[i] {
			return &mix[i]
		}
	}
	return &mix[len(mix)-1]
}

// Run executes one load run and returns its report. The sequence is:
// start the workers, let Warmup elapse unmeasured, snapshot /metrics,
// measure for Duration, stop the workers, snapshot /metrics again — the
// client-side histogram and the server-side delta cover the same window.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.URL == "" {
		return nil, errors.New("loadgen: URL is required")
	}
	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Concurrency * 2,
			MaxIdleConnsPerHost: cfg.Concurrency * 2,
		},
	}

	cum := make([]float64, len(cfg.Mix))
	total := 0.0
	for i, e := range cfg.Mix {
		if e.Weight <= 0 {
			return nil, fmt.Errorf("loadgen: mix entry %d (%s): weight must be > 0", i, e.Name)
		}
		total += e.Weight
		cum[i] = total
	}

	var budget *policy.Budget
	if cfg.Retries > 0 {
		budget = policy.NewBudget(0.1, 10)
	}

	start := time.Now()
	measureStart := start.Add(cfg.Warmup)
	end := measureStart.Add(cfg.Duration)

	// Open loop: the pacer stamps each slot with its scheduled time and
	// the workers measure from that stamp. The channel is a queue of
	// *intended* start times — when every worker is busy the stamps back
	// up and the eventual latency includes the wait, which is exactly the
	// coordinated-omission-aware accounting.
	var sched chan time.Time
	if cfg.RPS > 0 {
		sched = make(chan time.Time, 4*cfg.Concurrency)
		interval := time.Duration(float64(time.Second) / cfg.RPS)
		go func() {
			defer close(sched)
			for next := start; next.Before(end); next = next.Add(interval) {
				if d := time.Until(next); d > 0 {
					select {
					case <-time.After(d):
					case <-ctx.Done():
						return
					}
				}
				select {
				case sched <- next:
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	var (
		mu     sync.Mutex
		agg    = workerStats{codes: make(map[int]uint64)}
		wg     sync.WaitGroup
		runErr error
	)
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			st := &workerStats{codes: make(map[int]uint64)}
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
			defer func() {
				mu.Lock()
				agg.merge(st)
				mu.Unlock()
			}()
			for {
				var from time.Time
				if sched != nil {
					t, open := <-sched
					if !open {
						return
					}
					from = t
				} else {
					from = time.Now()
					if !from.Before(end) || ctx.Err() != nil {
						return
					}
				}
				entry := pick(cfg.Mix, cum, rng)
				st.request(ctx, client, cfg, budget, entry, from, from.After(measureStart) || from.Equal(measureStart))
			}
		}(w)
	}

	// Snapshot /metrics at each edge of the measurement window. A failed
	// scrape degrades the report (Server == nil) rather than failing the
	// run — the client-side numbers are still valid.
	var before, after Snapshot
	metricsURL := cfg.URL + "/metrics"
	select {
	case <-time.After(time.Until(measureStart)):
		before, _ = scrape(ctx, client, metricsURL)
	case <-ctx.Done():
		runErr = ctx.Err()
	}
	if runErr == nil {
		select {
		case <-time.After(time.Until(end)):
		case <-ctx.Done():
			runErr = ctx.Err()
		}
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	if before != nil {
		after, _ = scrape(context.Background(), client, metricsURL)
	}

	rep := buildReport(cfg, &agg)
	if before != nil && after != nil {
		rep.Server = serverDelta(before, after, cfg.Duration)
	}
	return rep, nil
}

// request fires one mix entry and records the outcome. from is the
// latency origin (scheduled time in open loop, send time in closed loop);
// measured says whether the sample falls in the measurement window.
func (st *workerStats) request(ctx context.Context, client *http.Client, cfg Config, budget *policy.Budget, entry *MixEntry, from time.Time, measured bool) {
	var code int
	op := func(ctx context.Context) error {
		code = 0
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.URL+"/v1/runs", bytes.NewReader(entry.Body))
		if err != nil {
			return policy.Permanent(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if cfg.APIKey != "" {
			req.Header.Set("X-API-Key", cfg.APIKey)
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		// Drain so the connection returns to the pool.
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		code = resp.StatusCode
		if code == http.StatusTooManyRequests && measured {
			st.limited++
			// An honest 429 carries a parseable, >= 1s Retry-After; one
			// without is a violation the -check thresholds can gate on.
			if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || s < 1 {
				st.retryAfterViolations++
			}
		}
		if code >= 500 {
			return fmt.Errorf("server status %d", code)
		}
		return nil
	}

	var err error
	if cfg.Retries > 0 {
		err = policy.Do(ctx, policy.RetryConfig{Attempts: cfg.Retries + 1, Budget: budget, Seed: from.UnixNano()}, op)
	} else {
		err = op(ctx)
	}
	if !measured {
		return
	}
	st.sent++
	st.hist.Record(time.Since(from))
	if code != 0 {
		st.codes[code]++
	}
	switch {
	case err != nil && code == 0:
		st.transportErrs++
	case err == nil && code < 400:
		st.ok++
	}
}

// merge folds other into st (used once per worker, under the runner's
// mutex).
func (st *workerStats) merge(other *workerStats) {
	st.hist.Merge(&other.hist)
	for c, n := range other.codes {
		st.codes[c] += n
	}
	st.sent += other.sent
	st.ok += other.ok
	st.transportErrs += other.transportErrs
	st.limited += other.limited
	st.retryAfterViolations += other.retryAfterViolations
}
