package experiment

import "testing"

// TestReplicasKnob pins the SetReplicas/Replicas resolution rules.
func TestReplicasKnob(t *testing.T) {
	defer SetReplicas(1)
	if got := Replicas(); got != 1 {
		t.Fatalf("default replicas = %d, want 1", got)
	}
	SetReplicas(8)
	if got := Replicas(); got != 8 {
		t.Fatalf("after SetReplicas(8): %d", got)
	}
	SetReplicas(0)
	if got := Replicas(); got != 1 {
		t.Fatalf("after SetReplicas(0): %d, want 1", got)
	}
}

// TestReplicasDeterminism is the batched multi-seed mode's acceptance test:
// the ext-aeb experiment — a 5-scheme × 8-seed car-following sweep — must
// produce a byte-identical report whether its runs each own a private event
// queue (replicas=1, the golden-pinned reference) or advance four replicas
// in lockstep per shared queue (replicas=4). Batching is an execution
// strategy, never an observable behaviour change.
func TestReplicasDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full 2x40-run sweep")
	}
	digest := func(k int) string {
		SetReplicas(k)
		defer SetReplicas(1)
		rep, err := ExtAEB(1)
		if err != nil {
			t.Fatalf("replicas=%d: %v", k, err)
		}
		d, err := rep.Digest()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if ref, batched := digest(1), digest(4); ref != batched {
		t.Errorf("ext-aeb digest diverged under batching: replicas=1 %s != replicas=4 %s", ref, batched)
	}
}
