package experiment

import (
	"fmt"
	"math/rand"
	"sort"

	"hcperf/internal/dag"
	"hcperf/internal/exectime"
	"hcperf/internal/scenario"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
	"hcperf/internal/trace"
)

// fmtF renders a float with the given decimals.
func fmtF(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// runCarFollowingSweep runs all five schemes of a car-following variant,
// fanning the independent runs out across the sweep worker pool — batched
// Replicas() at a time onto shared event queues (see sweepCarFollowing).
// Each run owns its RNGs, task graph and recorder, so the map assembled
// afterwards is identical to the one a serial loop builds.
func runCarFollowingSweep(seed int64, build func(scenario.Scheme) (scenario.CarFollowingConfig, error)) (map[scenario.Scheme]*scenario.CarFollowingResult, error) {
	schemes := scenario.AllSchemes()
	cfgs := make([]scenario.CarFollowingConfig, len(schemes))
	for i, s := range schemes {
		cfg, err := build(s)
		if err != nil {
			return nil, err
		}
		cfgs[i] = cfg
	}
	results, err := sweepCarFollowing(cfgs)
	if err != nil {
		return nil, err
	}
	out := make(map[scenario.Scheme]*scenario.CarFollowingResult, len(schemes))
	for i, s := range schemes {
		out[s] = results[i]
	}
	return out, nil
}

func simCarFollowing(seed int64) (map[scenario.Scheme]*scenario.CarFollowingResult, error) {
	return runCarFollowingSweep(seed, func(s scenario.Scheme) (scenario.CarFollowingConfig, error) {
		return scenario.CarFollowingConfig{Scheme: s, Seed: seed}, nil
	})
}

// Fig4Motivation reproduces the §II motivation experiment: the red-light
// scenario under Apollo's static-priority scheduling ends in a collision
// while the deadline-miss ratio ramps (Fig. 4(a) and 4(b)).
func Fig4Motivation(seed int64) (*Report, error) {
	r, err := scenario.RunMotivation(scenario.MotivationConfig{Scheme: scenario.SchemeApollo, Seed: seed})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "fig4",
		Title:  "Motivation: red-light scenario under Apollo static priority",
		Header: []string{"quantity", "value"},
		Rows: [][]string{
			{"collision", fmt.Sprintf("%t", r.Collision)},
			{"collision time (s)", fmtF(r.CollisionAt, 1)},
			{"mean miss ratio", fmtF(r.Miss.MeanRatio(), 3)},
			{"miss ratio t<5s", fmtF(avgRatio(r.Miss.Ratios(), 0, 5), 3)},
			{"miss ratio t in [10,20)", fmtF(avgRatio(r.Miss.Ratios(), 10, 20), 3)},
		},
		PaperRows: [][]string{
			{"collision", "true"},
			{"collision time (s)", "23.4"},
		},
		Notes: []string{
			"miss ratio starts rising after the t=5s braking event as the O(n^3) fusion inflates (Fig. 4(a))",
			"series miss_ratio/gap/speed_diff regenerate both panels of Fig. 4",
		},
		Series: r.Rec,
	}
	return rep, nil
}

func avgRatio(ratios []float64, from, to int) float64 {
	n, sum := 0, 0.0
	for i := from; i < to && i < len(ratios); i++ {
		sum += ratios[i]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Fig5ToySchedule reproduces the §II toy example: three tasks with three
// releases each (1 s execution each) on one processor. The adaptive
// (deadline-driven) schedule emits the three control commands at t = 7, 8,
// 9 s; the performance-preferred schedule groups by control cycle and emits
// them at t = 3, 6, 9 s. HCPerf's γ mechanism produces exactly the
// preferred grouping when the static priorities encode the cycle index.
func Fig5ToySchedule(int64) (*Report, error) {
	type toyJob struct {
		name     string
		cycle    int
		deadline float64
	}
	jobs := []toyJob{
		{name: "t1-1", cycle: 1, deadline: 1}, {name: "t1-2", cycle: 2, deadline: 4}, {name: "t1-3", cycle: 3, deadline: 7},
		{name: "t2-1", cycle: 1, deadline: 8}, {name: "t2-2", cycle: 2, deadline: 9}, {name: "t2-3", cycle: 3, deadline: 10},
		{name: "t3-1", cycle: 1, deadline: 11}, {name: "t3-2", cycle: 2, deadline: 12}, {name: "t3-3", cycle: 3, deadline: 13},
	}
	const exec = 1.0

	ready := func() []*sched.Job {
		out := make([]*sched.Job, len(jobs))
		for i, j := range jobs {
			out[i] = &sched.Job{
				Task: &dag.Task{
					ID:          dag.TaskID(i),
					Name:        j.name,
					Priority:    j.cycle, // cycle-indexed priority
					RelDeadline: simtime.Duration(j.deadline),
					Exec:        exectime.Constant(exec),
				},
				Release:     0,
				AbsDeadline: simtime.Time(j.deadline),
				EstExec:     exec,
			}
		}
		return out
	}

	// runSchedule executes the 9 jobs sequentially on one processor under
	// the given policy and returns each control cycle's completion time
	// (a cycle's command fires when its t1/t2/t3 jobs are all done).
	runSchedule := func(policy sched.Scheduler) []float64 {
		queue := ready()
		st := &sched.ProcState{NumProcs: 1, Remaining: []simtime.Duration{0}}
		now := simtime.Time(0)
		remaining := map[int]int{1: 3, 2: 3, 3: 3}
		var cmdTimes []float64
		for len(queue) > 0 {
			idx := policy.Select(now, queue, 0, st)
			if idx < 0 {
				break
			}
			j := queue[idx]
			queue = append(queue[:idx], queue[idx+1:]...)
			now += simtime.Duration(exec)
			cycle := j.Task.Priority
			remaining[cycle]--
			if remaining[cycle] == 0 {
				cmdTimes = append(cmdTimes, float64(now))
			}
		}
		sort.Float64s(cmdTimes)
		return cmdTimes
	}

	adaptive := runSchedule(sched.EDF{})
	dyn := sched.NewDynamic(100)
	dyn.SetNominalU(100)
	dyn.Recompute(0, nil, &sched.ProcState{NumProcs: 1, Remaining: []simtime.Duration{0}})
	preferred := runSchedule(dyn)

	rep := &Report{
		ID:     "fig5",
		Title:  "Toy schedule: adaptive vs performance-preferred control-command times",
		Header: []string{"schedule", "cmd1 (s)", "cmd2 (s)", "cmd3 (s)"},
		Rows: [][]string{
			append([]string{"adaptive (EDF)"}, fmtTimes(adaptive)...),
			append([]string{"preferred (HCPerf γ-grouped)"}, fmtTimes(preferred)...),
		},
		PaperRows: [][]string{
			{"adaptive (Fig. 5(a))", "7", "8", "9"},
			{"preferred (Fig. 5(b))", "3", "6", "9"},
		},
	}
	return rep, nil
}

func fmtTimes(ts []float64) []string {
	out := make([]string, 3)
	for i := range out {
		if i < len(ts) {
			out[i] = fmtF(ts[i], 0)
		} else {
			out[i] = "-"
		}
	}
	return out
}

// Fig12ExecTimes reproduces the execution-time characterisation: sampled
// execution times of representative tasks across scene complexities,
// showing the O(n^3) fusion blow-up and the linear detection growth.
func Fig12ExecTimes(seed int64) (*Report, error) {
	g, err := dag.ADGraph23()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	tasks := []string{"image_preproc", "camera_detection", "sensor_fusion", "object_tracking"}
	scenes := []int{5, 10, 15, 20, 25}
	rec := trace.NewRecorder()

	rows := make([][]string, 0, len(tasks))
	for _, name := range tasks {
		t := g.TaskByName(name)
		if t == nil {
			return nil, fmt.Errorf("experiment: unknown task %q", name)
		}
		row := []string{name}
		for _, n := range scenes {
			sum := 0.0
			const samples = 200
			for i := 0; i < samples; i++ {
				d := t.Exec.Sample(rng, 0, exectime.Scene{Obstacles: n, LoadFactor: 1})
				sum += float64(d)
				if err := rec.Add(name, float64(n)+float64(i)/samples, float64(d)*1000); err != nil {
					return nil, err
				}
			}
			row = append(row, fmtF(sum/samples*1000, 2))
		}
		rows = append(rows, row)
	}
	return &Report{
		ID:     "fig12",
		Title:  "Task execution times vs scene complexity (ms, mean of 200 samples)",
		Header: []string{"task", "n=5", "n=10", "n=15", "n=20", "n=25"},
		Rows:   rows,
		Notes: []string{
			"sensor_fusion grows O(n^3) via Hungarian matching; detection/tracking grow linearly; preprocessing is scene-independent",
			"the paper's Fig. 12 reports the same qualitative spread measured on a Jetson TX2",
		},
		Series: rec,
	}, nil
}

// Fig13CarFollowing reproduces the car-following evaluation's time series:
// speeds, speed error, distance error and per-second deadline-miss ratio
// for all five schemes (Fig. 13(a)-(d)).
func Fig13CarFollowing(seed int64) (*Report, error) {
	results, err := simCarFollowing(seed)
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder()
	rows := make([][]string, 0, len(results))
	for _, s := range scenario.AllSchemes() {
		r := results[s]
		for _, name := range []string{"follow_speed", "speed_err", "dist_err", "miss_ratio"} {
			src := r.Rec.Series(name)
			for _, p := range src.Samples {
				if err := rec.Add(s.String()+"/"+name, p.T, p.V); err != nil {
					return nil, err
				}
			}
		}
		rows = append(rows, []string{
			s.String(),
			fmtF(r.SpeedErrRMS, 3),
			fmtF(r.DistErrRMS, 3),
			fmtF(r.Miss.MeanRatio(), 3),
			fmtF(r.Throughput, 1),
			fmtF(r.MaxCommandGap*1000, 0),
			fmt.Sprintf("%t", r.WeaklyHard.Holds()),
		})
	}
	lead := results[scenario.SchemeHCPerf].Rec.Series("lead_speed")
	for _, p := range lead.Samples {
		if err := rec.Add("lead_speed", p.T, p.V); err != nil {
			return nil, err
		}
	}
	return &Report{
		ID:     "fig13",
		Title:  "Car following (sine lead, complex-scene episode t in [10,80))",
		Header: []string{"scheme", "speed RMS (m/s)", "dist RMS (m)", "miss ratio", "cmds/s", "max cmd gap (ms)", "(1,10) weakly-hard"},
		Rows:   rows,
		Notes: []string{
			"HCPerf recovers its miss ratio to ~0 shortly after the load steps at t=10s and t=80s; baselines sustain misses through the episode (Fig. 13(d))",
			"extension columns: the longest actuator starvation stretch between commands, and the (1,10) weakly-hard constraint over decided control jobs",
		},
		Series: rec,
	}, nil
}

// Table2SpeedRMS reproduces Table II: RMS speed tracking error of the five
// schemes in the car-following simulation.
func Table2SpeedRMS(seed int64) (*Report, error) {
	results, err := simCarFollowing(seed)
	if err != nil {
		return nil, err
	}
	return rmsTable("table2", "RMS speed tracking error, car following simulation (m/s)",
		results, func(r *scenario.CarFollowingResult) float64 { return r.SpeedErrRMS }, 3,
		[]string{"1.02", "0.99", "0.78", "1.28", "0.55"}), nil
}

// Table3DistanceRMS reproduces Table III: RMS distance tracking error.
func Table3DistanceRMS(seed int64) (*Report, error) {
	results, err := simCarFollowing(seed)
	if err != nil {
		return nil, err
	}
	return rmsTable("table3", "RMS distance tracking error, car following simulation (m)",
		results, func(r *scenario.CarFollowingResult) float64 { return r.DistErrRMS }, 3,
		[]string{"12.24", "12.22", "12.07", "12.31", "11.27"}), nil
}

func rmsTable(id, title string, results map[scenario.Scheme]*scenario.CarFollowingResult,
	metric func(*scenario.CarFollowingResult) float64, decimals int, paper []string) *Report {
	header := []string{"metric"}
	measured := []string{"measured"}
	paperRow := []string{"paper"}
	for i, s := range scenario.AllSchemes() {
		header = append(header, s.String())
		measured = append(measured, fmtF(metric(results[s]), decimals))
		paperRow = append(paperRow, paper[i])
	}
	return &Report{
		ID:        id,
		Title:     title,
		Header:    header,
		Rows:      [][]string{measured},
		PaperRows: [][]string{paperRow},
		Notes: []string{
			"absolute magnitudes depend on the substrate's vehicle model and gains; compare orderings and relative gaps",
		},
	}
}

// Fig14LaneKeeping reproduces the loop-driving experiment's offset series
// (Fig. 14(b)) for all five schemes.
func Fig14LaneKeeping(seed int64) (*Report, error) {
	schemes := scenario.AllSchemes()
	results, err := sweep(schemes, func(s scenario.Scheme) (*scenario.LaneKeepingResult, error) {
		return scenario.RunLaneKeeping(scenario.LaneKeepingConfig{Scheme: s, Seed: seed})
	})
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder()
	rows := make([][]string, 0, len(schemes))
	for i, s := range schemes {
		r := results[i]
		for _, p := range r.Rec.Series("offset").Samples {
			if err := rec.Add(s.String()+"/offset", p.T, p.V); err != nil {
				return nil, err
			}
		}
		rows = append(rows, []string{s.String(), fmtF(r.OffsetRMS, 4), fmtF(r.OffsetMax, 4), fmtF(r.Miss.MeanRatio(), 3)})
	}
	return &Report{
		ID:     "fig14",
		Title:  "Lane keeping on the oval loop at 5 m/s (one lap)",
		Header: []string{"scheme", "offset RMS (m)", "offset max (m)", "miss ratio"},
		Rows:   rows,
		Notes: []string{
			"offsets are ~0 on the straights and spike at the four turns, as in Fig. 14(b)",
		},
		Series: rec,
	}, nil
}

// Table4LateralRMS reproduces Table IV: RMS lateral offset error.
func Table4LateralRMS(seed int64) (*Report, error) {
	header := []string{"metric"}
	measured := []string{"measured"}
	paper := []string{"paper"}
	paperVals := []string{"0.093", "0.075", "0.051", "0.159", "0.027"}
	schemes := scenario.AllSchemes()
	results, err := sweep(schemes, func(s scenario.Scheme) (*scenario.LaneKeepingResult, error) {
		return scenario.RunLaneKeeping(scenario.LaneKeepingConfig{Scheme: s, Seed: seed})
	})
	if err != nil {
		return nil, err
	}
	for i, s := range schemes {
		header = append(header, s.String())
		measured = append(measured, fmtF(results[i].OffsetRMS, 4))
		paper = append(paper, paperVals[i])
	}
	return &Report{
		ID:        "table4",
		Title:     "RMS lateral offset error, lane keeping (m)",
		Header:    header,
		Rows:      [][]string{measured},
		PaperRows: [][]string{paper},
		Notes: []string{
			"our EDF and EDF-VD swap places relative to the paper; HCPerf best and Apollo worst reproduce",
		},
	}, nil
}

func hardwareResults(seed int64) (map[scenario.Scheme]*scenario.CarFollowingResult, error) {
	return runCarFollowingSweep(seed, func(s scenario.Scheme) (scenario.CarFollowingConfig, error) {
		return scenario.HardwareCarFollowingConfig(s, seed)
	})
}

// Fig15Hardware reproduces the hardware-testbed car-following run: speed
// records, speed error, distance error and per-second miss ratio on the
// emulated 1:10-scale cars.
func Fig15Hardware(seed int64) (*Report, error) {
	results, err := hardwareResults(seed)
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder()
	rows := make([][]string, 0, len(results))
	for _, s := range scenario.AllSchemes() {
		r := results[s]
		for _, name := range []string{"follow_speed", "speed_err", "dist_err", "miss_ratio"} {
			for _, p := range r.Rec.Series(name).Samples {
				if err := rec.Add(s.String()+"/"+name, p.T, p.V); err != nil {
					return nil, err
				}
			}
		}
		rows = append(rows, []string{
			s.String(), fmtF(r.SpeedErrRMS, 4), fmtF(r.DistErrRMS, 4), fmtF(r.Miss.MeanRatio(), 3),
		})
	}
	return &Report{
		ID:     "fig15",
		Title:  "Hardware testbed emulation: scaled cars, accel 5s / cruise 10s / decel 5s",
		Header: []string{"scheme", "speed RMS (m/s)", "dist RMS (m)", "miss ratio"},
		Rows:   rows,
		Notes: []string{
			"substitution: the 1:10-scale cars are emulated with the scaled-car plant, sensing noise and throttle lag (DESIGN.md §5)",
			"baselines sustain misses of a few percent; HCPerf returns to ~0 after the initial adjustment (Fig. 15(d))",
		},
		Series: rec,
	}, nil
}

// Table5HardwareSpeedRMS reproduces Table V.
func Table5HardwareSpeedRMS(seed int64) (*Report, error) {
	results, err := hardwareResults(seed)
	if err != nil {
		return nil, err
	}
	return rmsTable("table5", "RMS speed tracking error, hardware testbed (m/s)",
		results, func(r *scenario.CarFollowingResult) float64 { return r.SpeedErrRMS }, 4,
		[]string{"0.015", "0.013", "0.012", "0.021", "0.009"}), nil
}

// Table6HardwareDistRMS reproduces Table VI.
func Table6HardwareDistRMS(seed int64) (*Report, error) {
	results, err := hardwareResults(seed)
	if err != nil {
		return nil, err
	}
	return rmsTable("table6", "RMS distance tracking error, hardware testbed (m)",
		results, func(r *scenario.CarFollowingResult) float64 { return r.DistErrRMS }, 4,
		[]string{"0.084", "0.083", "0.072", "0.117", "0.063"}), nil
}

// Fig16DrivingProcess reproduces the overall driving process of the
// traffic-jam episode (Fig. 16): the two cars' speeds and the shrinking
// gap as the lead brakes into the jam and accelerates out of it.
func Fig16DrivingProcess(seed int64) (*Report, error) {
	cfg, err := scenario.JamCarFollowingConfig(scenario.SchemeHCPerf, seed)
	if err != nil {
		return nil, err
	}
	r, err := scenario.RunCarFollowing(cfg)
	if err != nil {
		return nil, err
	}
	lead := r.Rec.Series("lead_speed")
	fol := r.Rec.Series("follow_speed")
	gap := r.Rec.Series("gap")
	rows := [][]string{
		{"cruise (t<10s)", fmtF(lead.Mean(2, 10), 1), fmtF(fol.Mean(2, 10), 1), fmtF(gap.Mean(2, 10), 1)},
		{"jam (t in [10,20))", fmtF(lead.Mean(10, 20), 1), fmtF(fol.Mean(10, 20), 1), fmtF(gap.Mean(10, 20), 1)},
		{"clear (t>=26s)", fmtF(lead.Mean(26, 35), 1), fmtF(fol.Mean(26, 35), 1), fmtF(gap.Mean(26, 35), 1)},
	}
	return &Report{
		ID:     "fig16",
		Title:  "Driving process of the traffic-jam episode (HCPerf)",
		Header: []string{"phase", "lead speed (m/s)", "follow speed (m/s)", "gap (m)"},
		Rows:   rows,
		PaperRows: [][]string{
			{"paper", "20 m/s cruise; lead decelerates into the jam at t=10s; clears past t=20s", "", ""},
		},
		Notes: []string{
			"series lead_speed/follow_speed/gap regenerate the Fig. 16 overview; fig17 reports the corresponding error/response/discomfort panels",
		},
		Series: r.Rec,
	}, nil
}

// Fig17Responsiveness reproduces the §VII-C study: the traffic-jam episode's
// tracking (gap) error, control response time and passenger discomfort for
// HCPerf, showing the responsiveness/throughput trade-off.
func Fig17Responsiveness(seed int64) (*Report, error) {
	cfg, err := scenario.JamCarFollowingConfig(scenario.SchemeHCPerf, seed)
	if err != nil {
		return nil, err
	}
	r, err := scenario.RunCarFollowing(cfg)
	if err != nil {
		return nil, err
	}
	gap := r.Rec.Series("dist_err")
	resp := r.Rec.Series("response_ms")
	disc := r.Rec.Series("discomfort")
	rows := [][]string{
		{"gap error RMS pre-jam (m)", fmtF(gap.RMS(0, 10), 2)},
		{"gap error RMS in jam (m)", fmtF(gap.RMS(10, 20), 2)},
		{"gap error RMS post-jam (m)", fmtF(gap.RMS(28, 35), 2)},
		{"peak |gap error| (m)", fmtF(gap.MaxAbs(0, 35), 2)},
		{"mean response pre-jam (ms)", fmtF(resp.Mean(0, 10), 1)},
		{"mean response in jam (ms)", fmtF(resp.Mean(10, 20), 1)},
		{"discomfort in jam", fmtF(disc.Mean(10, 20), 2)},
		{"discomfort post-jam", fmtF(disc.Mean(28, 35), 2)},
	}
	return &Report{
		ID:     "fig17",
		Title:  "Responsiveness vs throughput during a traffic-jam episode (HCPerf)",
		Header: []string{"quantity", "value"},
		Rows:   rows,
		PaperRows: [][]string{
			{"tracking error at t=10s (m)", "~5, mitigated to ~2 by t=12s"},
			{"response time", "drops while error is high; discomfort transiently rises"},
			{"after t=20s", "throughput restored, discomfort reduced"},
		},
		Notes: []string{
			"series dist_err/response_ms/discomfort/throughput regenerate the three panels of Fig. 17",
		},
		Series: r.Rec,
	}, nil
}

// Fig18Ablation reproduces the ablation: full HCPerf vs the internal
// coordinator alone (no Task Rate Adapter).
func Fig18Ablation(seed int64) (*Report, error) {
	type variant struct {
		label  string
		scheme scenario.Scheme
	}
	variants := []variant{
		{label: "full", scheme: scenario.SchemeHCPerf},
		{label: "internal", scheme: scenario.SchemeHCPerfInternal},
	}
	results, err := sweep(variants, func(v variant) (*scenario.CarFollowingResult, error) {
		return scenario.RunCarFollowing(scenario.CarFollowingConfig{Scheme: v.scheme, Seed: seed})
	})
	if err != nil {
		return nil, err
	}
	full, internal := results[0], results[1]
	// Build the series in fixed variant order: iterating a map here once
	// made the recorder's series order — and hence the CSV export —
	// depend on map iteration order, which the determinism harness flags.
	rec := trace.NewRecorder()
	for i, v := range variants {
		for _, name := range []string{"speed_err", "miss_ratio"} {
			for _, p := range results[i].Rec.Series(name).Samples {
				if err := rec.Add(v.label+"/"+name, p.T, p.V); err != nil {
					return nil, err
				}
			}
		}
	}
	rows := [][]string{
		{"full", fmtF(full.SpeedErrRMS, 3), fmtF(full.DistErrRMS, 3), fmtF(full.Miss.MeanRatio(), 3)},
		{"internal-only", fmtF(internal.SpeedErrRMS, 3), fmtF(internal.DistErrRMS, 3), fmtF(internal.Miss.MeanRatio(), 3)},
	}
	return &Report{
		ID:     "fig18",
		Title:  "Ablation: full HCPerf vs internal coordinator only",
		Header: []string{"variant", "speed RMS (m/s)", "dist RMS (m)", "miss ratio"},
		Rows:   rows,
		PaperRows: [][]string{
			{"paper", "full shows smaller speed fluctuation; internal-only keeps a residual miss ratio; full is 0.5 m better on final distance error"},
		},
		Series: rec,
	}, nil
}

// OverheadAnalysis reproduces §VII-E: the coordinator's own computation
// cost per coordination step, measured in wall-clock time during a full
// car-following run.
func OverheadAnalysis(seed int64) (*Report, error) {
	r, err := scenario.RunCarFollowing(scenario.CarFollowingConfig{Scheme: scenario.SchemeHCPerf, Seed: seed})
	if err != nil {
		return nil, err
	}
	oh := r.Overhead
	// The internal coordinator runs at 10 Hz and the external at 1 Hz:
	// 11 steps per second of driving.
	perSecond := oh.Mean() * 11
	rows := [][]string{
		{"coordinator steps", fmt.Sprintf("%d", oh.N())},
		{"mean per step (µs)", fmtF(oh.Mean()*1e6, 1)},
		{"max per step (µs)", fmtF(oh.Max()*1e6, 1)},
		{"cost per 1 s period (ms)", fmtF(perSecond*1000, 3)},
	}
	return &Report{
		ID:     "overhead",
		Title:  "Coordinator computation overhead (wall clock)",
		Header: []string{"quantity", "value"},
		Rows:   rows,
		PaperRows: [][]string{
			{"paper", "< 5 ms per 1 s period on a Core i3"},
		},
		// Wall-clock timings legitimately vary between runs.
		Volatile: true,
	}, nil
}
