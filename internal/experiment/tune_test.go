package experiment

import (
	"context"
	"strings"
	"testing"

	"hcperf/internal/runner"
)

// TestExtTuneRepeatByteIdentity runs the pinned search ten times and
// asserts every run digests identically — the search's RNG streams,
// candidate dedup, Pareto reduction and table rendering are all
// deterministic functions of the seed.
func TestExtTuneRepeatByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated full searches")
	}
	var want string
	for i := 0; i < 10; i++ {
		rep, err := Run("ext-tune", 1)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		got, err := rep.Digest()
		if err != nil {
			t.Fatalf("run %d digest: %v", i, err)
		}
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("run %d digest %s differs from run 0 %s", i, got, want)
		}
	}
}

// TestExtTuneVerifySerialParallel runs the repo's standard determinism
// harness over the search: candidate evaluations fanned across 4 workers
// must produce bytes identical to the serial reference.
func TestExtTuneVerifySerialParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("two full searches")
	}
	err := runner.VerifySerialParallel(context.Background(), 4, func(ctx context.Context, workers int) (runner.Digester, error) {
		rep, err := extTuneRequest(1).Run(ctx, workers, nil)
		if err != nil {
			return nil, err
		}
		out := &Report{ID: "ext-tune", Title: "t", Header: rep.Header(), Rows: rep.Rows()}
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExtTuneImprovesOnDefaults pins the headline result: the pinned
// fixed-budget search finds a tuning that strictly improves at least one
// objective over the paper defaults (in fact the canonical run improves all
// four; asserting ≥1 keeps the test robust to future re-pins).
func TestExtTuneImprovesOnDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("full search")
	}
	rq := extTuneRequest(1)
	rep, err := rq.Run(context.Background(), Parallelism(), nil)
	if err != nil {
		t.Fatal(err)
	}
	improved := 0
	for _, b := range rep.Best {
		if b.Improved {
			improved++
		}
	}
	if improved == 0 {
		t.Fatalf("search found no improvement over the paper defaults: %+v", rep.Best)
	}
	// And the rendered notes carry the comparison (digest-covered).
	full, err := Run("ext-tune", 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range full.Notes {
		if strings.Contains(n, "improved") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("report notes carry no improvement verdict: %v", full.Notes)
	}
}
