package experiment

import (
	"fmt"

	"hcperf/internal/scenario"
	"hcperf/internal/simtime"
)

// The experiments in this file go beyond the paper: they ablate the design
// choices DESIGN.md calls out (the γ cap, the explicit end-to-end deadline,
// the input-age validity bound, and the processor count) on the
// car-following workload. They are registered alongside the paper
// experiments and have matching benchmarks in bench_test.go.

func init() {
	register("ablate-gammacap", "Ablation: Dynamic scheduler γ cap sweep",
		"sweeps the γ cap on car following (internal coordinator only): cap → 0 is least-slack, large caps saturate into static priority", AblateGammaCap)
	register("ablate-e2e", "Ablation: explicit end-to-end deadline",
		"car following with and without the explicit end-to-end deadline constraint", AblateE2E)
	register("ablate-dataage", "Ablation: input-age validity bound",
		"sweeps the maximum input data age on car following", AblateDataAge)
	register("sweep-procs", "Sweep: processor count",
		"car following across processor counts, locating the knee of the miss-ratio curve", SweepProcs)
	register("ext-aeb", "Extension: automatic emergency braking",
		"AEB episode beyond the paper: deadline misses translate into stopping-distance loss", ExtAEB)
	register("ext-dual", "Extension: dual-control combined graph",
		"combined longitudinal+lateral control on one task graph", ExtDualControl)
}

// AblateGammaCap sweeps the Dynamic scheduler's γ cap on car following
// (internal coordinator only, isolating the γ mechanism): cap → 0 is
// least-slack scheduling, large caps saturate into static-priority mode.
func AblateGammaCap(seed int64) (*Report, error) {
	caps := []float64{1e-6, 0.005, 0.02, 0.1}
	results, err := sweep(caps, func(cap float64) (*scenario.CarFollowingResult, error) {
		return scenario.RunCarFollowing(scenario.CarFollowingConfig{
			Scheme:   scenario.SchemeHCPerfInternal,
			Seed:     seed,
			GammaCap: cap,
		})
	})
	if err != nil {
		return nil, err
	}
	rows := make([][]string, 0, len(caps))
	for i, cap := range caps {
		r := results[i]
		rows = append(rows, []string{
			fmt.Sprintf("%g", cap),
			fmtF(r.SpeedErrRMS, 3),
			fmtF(r.Miss.MeanRatio(), 3),
			fmtF(r.EngineStats.EndToEnd.Mean()*1000, 0),
		})
	}
	return &Report{
		ID:     "ablate-gammacap",
		Title:  "Ablation: γ cap sweep (internal coordinator only, car following)",
		Header: []string{"γ cap", "speed RMS (m/s)", "miss ratio", "e2e (ms)"},
		Rows:   rows,
		Notes: []string{
			"γ cap → 0 degenerates to least-slack dispatch; the default 0.02 lets the priority term dominate when the tracking error demands it",
		},
	}, nil
}

// AblateE2E ablates the two latency guards — the control task's explicit
// end-to-end deadline and the input-age validity bound — individually and
// together, for HCPerf. Misses are the rate adapter's only feedback signal,
// so removing both guards leaves it blind to latency.
func AblateE2E(seed int64) (*Report, error) {
	type variant struct {
		label      string
		disableE2E bool
		age        simtime.Duration
	}
	variants := []variant{
		{label: "both guards (default)"},
		{label: "no e2e deadline", disableE2E: true},
		{label: "no input-age bound", age: -1},
		{label: "neither guard", disableE2E: true, age: -1},
	}
	results, err := sweep(variants, func(v variant) (*scenario.CarFollowingResult, error) {
		return scenario.RunCarFollowing(scenario.CarFollowingConfig{
			Scheme:     scenario.SchemeHCPerf,
			Seed:       seed,
			DisableE2E: v.disableE2E,
			MaxDataAge: v.age,
		})
	})
	if err != nil {
		return nil, err
	}
	rows := make([][]string, 0, len(variants))
	for i, v := range variants {
		r := results[i]
		rows = append(rows, []string{
			v.label,
			fmtF(r.SpeedErrRMS, 3),
			fmtF(r.Miss.MeanRatio(), 3),
			fmtF(r.EngineStats.EndToEnd.Mean()*1000, 0),
			fmtF(r.Throughput, 1),
		})
	}
	return &Report{
		ID:     "ablate-e2e",
		Title:  "Ablation: latency guards (e2e deadline, input-age bound) under HCPerf",
		Header: []string{"variant", "speed RMS (m/s)", "miss ratio", "e2e (ms)", "cmds/s"},
		Rows:   rows,
		Notes: []string{
			"at the calibrated operating point the per-task deadlines and path budgets already bound latency, so removing the explicit guards barely moves HCPerf; the guards matter for policies that starve auxiliary tasks (see ablate-dataage) and during transients",
		},
	}, nil
}

// AblateDataAge toggles the input-age validity bound: without it, starving
// auxiliary tasks is free and static-priority policies look artificially
// good (they shed exactly the work the metric ignores).
func AblateDataAge(seed int64) (*Report, error) {
	type variant struct {
		label string
		age   simtime.Duration
	}
	variants := []variant{
		{label: "validity 220 ms (default)", age: 0},
		{label: "validity disabled", age: -1},
	}
	type cell struct {
		v variant
		s scenario.Scheme
	}
	var grid []cell
	for _, v := range variants {
		for _, s := range []scenario.Scheme{scenario.SchemeHPF, scenario.SchemeHCPerf} {
			grid = append(grid, cell{v: v, s: s})
		}
	}
	results, err := sweep(grid, func(c cell) (*scenario.CarFollowingResult, error) {
		return scenario.RunCarFollowing(scenario.CarFollowingConfig{
			Scheme:     c.s,
			Seed:       seed,
			MaxDataAge: c.v.age,
		})
	})
	if err != nil {
		return nil, err
	}
	rows := make([][]string, 0, len(grid))
	for i, c := range grid {
		r := results[i]
		rows = append(rows, []string{
			c.v.label, c.s.String(),
			fmtF(r.SpeedErrRMS, 3),
			fmtF(r.Miss.MeanRatio(), 3),
			fmtF(r.Throughput, 1),
		})
	}
	return &Report{
		ID:     "ablate-dataage",
		Title:  "Ablation: input-age validity bound (MaxDataAge)",
		Header: []string{"variant", "scheme", "speed RMS (m/s)", "miss ratio", "cmds/s"},
		Rows:   rows,
		Notes: []string{
			"the paper requires the whole sensing-to-control chain to complete on time for a valid command; MaxDataAge encodes that — disabling it lets HPF starve auxiliary perception invisibly",
		},
	}, nil
}

// SweepProcs sweeps the processor count for HCPerf and EDF: the framework's
// advantage is largest when the pool is scarce.
func SweepProcs(seed int64) (*Report, error) {
	type cell struct {
		m int
		s scenario.Scheme
	}
	var grid []cell
	for _, m := range []int{1, 2, 4} {
		for _, s := range []scenario.Scheme{scenario.SchemeEDF, scenario.SchemeHCPerf} {
			grid = append(grid, cell{m: m, s: s})
		}
	}
	results, err := sweep(grid, func(c cell) (*scenario.CarFollowingResult, error) {
		return scenario.RunCarFollowing(scenario.CarFollowingConfig{
			Scheme:   c.s,
			Seed:     seed,
			NumProcs: c.m,
		})
	})
	if err != nil {
		return nil, err
	}
	rows := make([][]string, 0, len(grid))
	for i, c := range grid {
		r := results[i]
		rows = append(rows, []string{
			fmt.Sprintf("M=%d", c.m), c.s.String(),
			fmtF(r.SpeedErrRMS, 3),
			fmtF(r.Miss.MeanRatio(), 3),
			fmtF(r.Throughput, 1),
		})
	}
	return &Report{
		ID:     "sweep-procs",
		Title:  "Sweep: processor count (car following, EDF vs HCPerf)",
		Header: []string{"processors", "scheme", "speed RMS (m/s)", "miss ratio", "cmds/s"},
		Rows:   rows,
		Notes: []string{
			"on M=1 the pipeline is structurally overloaded for both schemes; the coordination gap is widest around the M=2 regime the paper evaluates",
		},
	}, nil
}

// ExtAEB runs the emergency-braking extension: the lead panic-stops at
// 7 m/s² while the scene complexity spikes; the minimum gap is the
// stopping margin each scheduling scheme preserves.
func ExtAEB(seed int64) (*Report, error) {
	const runs = 8 // single-event margins are command-phase sensitive
	// Fan out the full scheme × seed grid: all 40 runs are independent, so
	// the pool chews through them in any order — Replicas() of them in
	// lockstep per shared queue — while the aggregation below walks the
	// grid in input order.
	schemes := scenario.AllSchemes()
	var grid []scenario.CarFollowingConfig
	for _, s := range schemes {
		for k := int64(0); k < runs; k++ {
			cfg, err := scenario.AEBCarFollowingConfig(s, seed+k)
			if err != nil {
				return nil, err
			}
			grid = append(grid, cfg)
		}
	}
	results, err := sweepCarFollowing(grid)
	if err != nil {
		return nil, err
	}
	rows := make([][]string, 0, len(schemes))
	for si, s := range schemes {
		var sumGap, worstGap, sumE2E float64
		collisions := 0
		for k := 0; k < runs; k++ {
			r := results[si*runs+k]
			minGap := r.Rec.Series("gap").Samples[0].V
			for _, p := range r.Rec.Series("gap").Samples {
				if p.V < minGap {
					minGap = p.V
				}
			}
			sumGap += minGap
			if k == 0 || minGap < worstGap {
				worstGap = minGap
			}
			sumE2E += r.EngineStats.EndToEnd.Mean()
			if r.Collision {
				collisions++
			}
		}
		rows = append(rows, []string{
			s.String(),
			fmtF(sumGap/runs, 2),
			fmtF(worstGap, 2),
			fmt.Sprintf("%d/%d", collisions, runs),
			fmtF(sumE2E/runs*1000, 0),
		})
	}
	return &Report{
		ID:     "ext-aeb",
		Title:  "Extension: emergency braking — stopping margin per scheme",
		Header: []string{"scheme", "mean min gap (m)", "worst min gap (m)", "collisions", "e2e (ms)"},
		Rows:   rows,
		Notes: []string{
			"an extension beyond the paper's evaluation, averaged over 8 seeds: the lead panic-stops at 8 m/s² while the scene floods",
			"finding: with a competent local brake controller the stopping margin is dominated by plant dynamics — the schemes' ~50 ms end-to-end latency spread moves the margin by well under a metre, so coordination matters for sustained tracking (Tables II-VI) more than for one-shot reactions",
		},
	}, nil
}

// ExtDualControl runs the dual-sink extension: simultaneous car following
// and lane keeping on the 24-task graph with separate longitudinal and
// lateral control tasks.
func ExtDualControl(seed int64) (*Report, error) {
	schemes := scenario.AllSchemes()
	results, err := sweep(schemes, func(s scenario.Scheme) (*scenario.CombinedResult, error) {
		return scenario.RunCombined(scenario.CombinedConfig{Scheme: s, Seed: seed})
	})
	if err != nil {
		return nil, err
	}
	rows := make([][]string, 0, len(schemes))
	for i, s := range schemes {
		r := results[i]
		rows = append(rows, []string{
			s.String(),
			fmtF(r.SpeedErrRMS, 3),
			fmtF(r.OffsetRMS, 4),
			fmt.Sprintf("%d/%d", r.LonCommands, r.LatCommands),
			fmtF(r.Miss.MeanRatio(), 3),
		})
	}
	return &Report{
		ID:     "ext-dual",
		Title:  "Extension: dual-control graph — simultaneous car following and lane keeping",
		Header: []string{"scheme", "speed RMS (m/s)", "offset RMS (m)", "lon/lat cmds", "miss ratio"},
		Rows:   rows,
		Notes: []string{
			"the 24-task variant splits control into longitudinal and lateral sinks; one coordinator arbitrates both loops with a max-of-normalised-errors tracking signal",
		},
	}, nil
}
