package experiment

import (
	"context"
	"fmt"
	"sync/atomic"

	"hcperf/internal/fleet"
	"hcperf/internal/runner"
	"hcperf/internal/scenario"
)

// sweepWorkers is the worker count experiments use for their internal
// scheme/seed sweeps. 0 means the default (serial); negative means
// GOMAXPROCS. It is atomic so concurrent experiment runs (the race tests,
// overlapping CLI invocations in tests) read a consistent value.
var sweepWorkers atomic.Int32

// SetParallelism sets the worker count used by every experiment's internal
// sweep (scheme sweeps, seed loops, variant grids): n >= 1 selects exactly
// n workers, n < 1 selects GOMAXPROCS. The initial default is 1 (serial),
// which is also the reference behaviour the determinism harness compares
// against.
func SetParallelism(n int) {
	if n < 1 {
		sweepWorkers.Store(-1)
		return
	}
	sweepWorkers.Store(int32(n))
}

// Parallelism returns the resolved sweep worker count currently in force.
func Parallelism() int {
	switch n := sweepWorkers.Load(); {
	case n == 0:
		return 1
	case n < 0:
		return runner.Parallelism(0)
	default:
		return int(n)
	}
}

// RunAll executes every registered experiment with the given base seed,
// fanning the experiments themselves out across workers (see
// runner.Parallelism for the worker-count convention; each experiment's
// internal sweeps additionally use the SetParallelism setting). Reports come
// back in IDs() order. RunAll is fail-slow: it runs every experiment and
// aggregates all failures, so one broken experiment cannot hide another's.
func RunAll(ctx context.Context, seed int64, workers int) ([]*Report, error) {
	reports, err := runner.Map(ctx, workers, IDs(), func(_ context.Context, id string) (*Report, error) {
		rep, err := Run(id, seed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		return rep, nil
	})
	if err != nil {
		return reports, fmt.Errorf("experiment: %w", err)
	}
	return reports, nil
}

// sweepReplicas is the batch width K for multi-seed sweep cells: consecutive
// runs of a car-following sweep are advanced in lockstep on one shared event
// queue, K at a time. 0 or 1 means unbatched (one private queue per run).
var sweepReplicas atomic.Int32

// SetReplicas sets the batch width used by batched multi-seed sweeps
// (sweepCarFollowing): k >= 2 advances k replicas in lockstep per unit of
// parallel work, k < 2 restores the unbatched default. Batching is
// behavior-preserving — replicas are self-contained, so report bytes are
// identical for every k — which the replicas determinism test enforces.
func SetReplicas(k int) {
	if k < 1 {
		k = 1
	}
	sweepReplicas.Store(int32(k))
}

// Replicas returns the sweep batch width currently in force (>= 1).
func Replicas() int {
	if k := sweepReplicas.Load(); k > 1 {
		return int(k)
	}
	return 1
}

// sweepCarFollowing runs one car-following simulation per config, batching
// Replicas() of them onto a shared event queue per unit of sweep work (each
// batch is one fleet.RunBatch lockstep run) and fanning the batches across
// the sweep worker pool. Results come back in input order; with the default
// replicas=1 every run still gets a private queue.
func sweepCarFollowing(cfgs []scenario.CarFollowingConfig) ([]*scenario.CarFollowingResult, error) {
	return runner.MapBatch(context.Background(), Parallelism(), Replicas(), cfgs,
		func(_ context.Context, batch []scenario.CarFollowingConfig) ([]*scenario.CarFollowingResult, error) {
			return fleet.RunBatch(batch)
		})
}

// sweep fans fn out over the inputs with the package's sweep parallelism,
// preserving input order. It is the single chokepoint every experiment's
// scheme sweep, seed loop and variant grid goes through, so the -parallel
// flag and the determinism harness cover all of them uniformly.
func sweep[I, O any](inputs []I, fn func(I) (O, error)) ([]O, error) {
	return runner.Map(context.Background(), Parallelism(), inputs, func(_ context.Context, in I) (O, error) {
		return fn(in)
	})
}
