package experiment

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Info describes one registered experiment without running it. The listing
// is the single source the CLIs (hcperf-sim -mode suite, hcperf-bench
// -list) and the serving layer's GET /v1/experiments all render from, so
// every surface agrees on ids, titles and order.
type Info struct {
	// ID is the registry key, e.g. "table2" or "fig13".
	ID string `json:"id"`
	// Title is the short human label, matching the Report title.
	Title string `json:"title"`
	// Description says what part of the paper's evaluation the
	// experiment regenerates.
	Description string `json:"description"`
}

// entry pairs an experiment's metadata with its implementation.
type entry struct {
	info Info
	fn   Func
}

// registry holds every experiment keyed by ID. The sorted listing below is
// the only iteration surface; ad-hoc map iteration is never exposed.
var registry = map[string]entry{}

// listing is the ID-sorted view of the registry, built on first use so it
// cannot depend on init order across the package's files.
var listing = sync.OnceValue(func() []Info {
	out := make([]Info, 0, len(registry))
	for _, e := range registry {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
})

// register adds one experiment; duplicate IDs are a programming error.
func register(id, title, description string, fn Func) {
	if _, dup := registry[id]; dup {
		panic(fmt.Sprintf("experiment: duplicate id %q", id))
	}
	registry[id] = entry{info: Info{ID: id, Title: title, Description: description}, fn: fn}
}

func init() {
	register("fig4", "Motivation: red-light scenario under Apollo static priority",
		"§II motivation run: static-priority scheduling misses deadlines as the O(n^3) fusion inflates and ends in a collision (Fig. 4)", Fig4Motivation)
	register("fig5", "Toy schedule: adaptive vs performance-preferred control-command times",
		"§II toy example: three tasks × three releases on one processor; EDF vs HCPerf's γ-grouped schedule (Fig. 5)", Fig5ToySchedule)
	register("fig12", "Task execution times vs scene complexity",
		"execution-time characterisation across scene complexities: O(n^3) fusion blow-up, linear detection growth (Fig. 12)", Fig12ExecTimes)
	register("fig13", "Car following (sine lead, complex-scene episode)",
		"car-following evaluation time series: speeds, errors and per-second miss ratio for all five schemes (Fig. 13)", Fig13CarFollowing)
	register("table2", "RMS speed tracking error, car following simulation",
		"Table II: RMS speed tracking error of the five schemes in the car-following simulation", Table2SpeedRMS)
	register("table3", "RMS distance tracking error, car following simulation",
		"Table III: RMS distance tracking error of the five schemes", Table3DistanceRMS)
	register("fig14", "Lane keeping on the oval loop",
		"loop-driving experiment: lateral offset series for all five schemes, one lap at 5 m/s (Fig. 14)", Fig14LaneKeeping)
	register("table4", "RMS lateral offset error, lane keeping",
		"Table IV: RMS lateral offset error of the five schemes", Table4LateralRMS)
	register("fig15", "Hardware testbed emulation: scaled cars",
		"hardware-testbed car-following run on emulated 1:10-scale cars: accel 5s / cruise 10s / decel 5s (Fig. 15)", Fig15Hardware)
	register("table5", "RMS speed tracking error, hardware testbed",
		"Table V: RMS speed tracking error on the hardware testbed", Table5HardwareSpeedRMS)
	register("table6", "RMS distance tracking error, hardware testbed",
		"Table VI: RMS distance tracking error on the hardware testbed", Table6HardwareDistRMS)
	register("fig16", "Driving process of the traffic-jam episode",
		"§VII-C overview: both cars' speeds and the shrinking gap through the traffic-jam episode under HCPerf (Fig. 16)", Fig16DrivingProcess)
	register("fig17", "Responsiveness vs throughput during a traffic-jam episode",
		"§VII-C study: tracking error, control response time and passenger discomfort trade-off under HCPerf (Fig. 17)", Fig17Responsiveness)
	register("fig18", "Ablation: full HCPerf vs internal coordinator only",
		"ablation of the Task Rate Adapter: full framework vs internal coordinator alone (Fig. 18)", Fig18Ablation)
	register("overhead", "Coordinator computation overhead",
		"§VII-E: the coordinator's own wall-clock cost per coordination step (volatile rows)", OverheadAnalysis)
}

// List returns every registered experiment's metadata, sorted by ID. The
// returned slice is a copy; callers may reorder it freely.
func List() []Info {
	return append([]Info(nil), listing()...)
}

// IDs returns the registered experiment IDs, sorted.
func IDs() []string {
	l := listing()
	out := make([]string, len(l))
	for i, info := range l {
		out[i] = info.ID
	}
	return out
}

// Lookup returns the metadata for one experiment ID.
func Lookup(id string) (Info, bool) {
	e, ok := registry[id]
	return e.info, ok
}

// Run executes the experiment with the given ID.
func Run(id string, seed int64) (*Report, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return e.fn(seed)
}
