package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig4", "fig5", "fig12", "fig13", "table2", "table3",
		"fig14", "table4", "fig15", "table5", "table6",
		"fig16", "fig17", "fig18", "overhead",
		"ablate-gammacap", "ablate-e2e", "ablate-dataage", "sweep-procs", "ext-aeb", "ext-dual", "ext-fleet", "ext-tune",
	}
	ids := IDs()
	got := make(map[string]bool, len(ids))
	for _, id := range ids {
		got[id] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	// IDs must be sorted for stable CLI output.
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Errorf("IDs not sorted: %q >= %q", ids[i-1], ids[i])
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFig5ExactMatch(t *testing.T) {
	rep, err := Run("fig5", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rep.Rows))
	}
	adaptive := rep.Rows[0]
	preferred := rep.Rows[1]
	if adaptive[1] != "7" || adaptive[2] != "8" || adaptive[3] != "9" {
		t.Errorf("adaptive command times %v, want 7,8,9", adaptive[1:])
	}
	if preferred[1] != "3" || preferred[2] != "6" || preferred[3] != "9" {
		t.Errorf("preferred command times %v, want 3,6,9", preferred[1:])
	}
}

func TestFig4Collision(t *testing.T) {
	rep, err := Run("fig4", 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows[0][1] != "true" {
		t.Error("motivation experiment did not report a collision")
	}
	if rep.Series == nil || rep.Series.Series("miss_ratio") == nil {
		t.Error("fig4 missing miss_ratio series")
	}
}

func TestFig12Monotonicity(t *testing.T) {
	rep, err := Run("fig12", 1)
	if err != nil {
		t.Fatal(err)
	}
	// sensor_fusion row must be strictly increasing across scenes.
	var fusion []string
	for _, row := range rep.Rows {
		if row[0] == "sensor_fusion" {
			fusion = row[1:]
		}
	}
	if fusion == nil {
		t.Fatal("no sensor_fusion row")
	}
	prev := 0.0
	for _, cell := range fusion {
		var v float64
		if _, err := fmtSscan(cell, &v); err != nil {
			t.Fatalf("bad cell %q", cell)
		}
		if v <= prev {
			t.Errorf("fusion time %v not increasing (prev %v)", v, prev)
		}
		prev = v
	}
}

func TestTable2HCPerfWins(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	rep, err := Run("table2", 1)
	if err != nil {
		t.Fatal(err)
	}
	row := rep.Rows[0]
	// Header: metric, HPF, EDF, EDF-VD, Apollo, HCPerf.
	var vals []float64
	for _, cell := range row[1:] {
		var v float64
		if _, err := fmtSscan(cell, &v); err != nil {
			t.Fatalf("bad cell %q", cell)
		}
		vals = append(vals, v)
	}
	hc := vals[len(vals)-1]
	for i, v := range vals[:len(vals)-1] {
		if hc >= v {
			t.Errorf("HCPerf %.3f not better than %s %.3f", hc, rep.Header[i+1], v)
		}
	}
}

func TestOverheadWithinPaperBound(t *testing.T) {
	if testing.Short() {
		t.Skip("full run")
	}
	rep, err := Run("overhead", 1)
	if err != nil {
		t.Fatal(err)
	}
	var perPeriodMS float64
	for _, row := range rep.Rows {
		if row[0] == "cost per 1 s period (ms)" {
			if _, err := fmtSscan(row[1], &perPeriodMS); err != nil {
				t.Fatal(err)
			}
		}
	}
	if perPeriodMS <= 0 || perPeriodMS > 5 {
		t.Errorf("coordinator cost %.3f ms per period, want (0, 5]", perPeriodMS)
	}
}

func TestWriteTextAndCSV(t *testing.T) {
	rep, err := Run("fig5", 1)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"fig5", "[measured]", "[paper]", "adaptive"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q", want)
		}
	}

	dir := t.TempDir()
	rep2, err := Run("fig4", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep2.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig4.csv", "fig4_rows.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

// fmtSscan wraps fmt.Sscan to keep the test imports tidy.
func fmtSscan(s string, v *float64) (int, error) {
	return sscan(s, v)
}

func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
