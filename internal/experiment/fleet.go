package experiment

import (
	"fmt"

	"hcperf/internal/fleet"
	"hcperf/internal/scenario"
)

// This experiment extends the paper's single-vehicle evaluation to fleet
// scale: the same HCPerf-scheduled car-following loop replicated across N
// vehicles on one shared virtual clock, uncoupled and as a platoon whose
// lead-vehicle braking inflates follower obstacle counts. The paper's
// claims are per-vehicle; what matters operationally is the fleet tail,
// which the platoon's coupled load spikes stress directly.

func init() {
	register("ext-fleet", "Extension: fleet-scale platoon",
		"24-vehicle fleet under HCPerf, uncoupled vs. platoon-coupled: fleet-wide miss-ratio and tracking-error tails", ExtFleet)
}

// ExtFleet runs the same 24-vehicle car-following fleet twice — once
// uncoupled (N independent vehicles over the shared obstacle field) and
// once platoon-coupled — and reports the fleet-wide distribution tails.
// The attached series is the platoon run's fleet-level aggregate record.
func ExtFleet(seed int64) (*Report, error) {
	couplings := []string{"none", "platoon"}
	rows := make([][]string, 0, len(couplings))
	var last *fleet.Result
	for _, coupling := range couplings {
		res, err := fleet.Run(fleet.Config{
			Base:     scenario.CarFollowingConfig{Scheme: scenario.SchemeHCPerf, Duration: 30},
			N:        24,
			Coupling: coupling,
			Spacing:  18,
			Seed:     seed,
		})
		if err != nil {
			return nil, err
		}
		// The platoon's signature failure mode is string instability:
		// latency-amplified oscillations grow down the chain until the
		// gap closes. The depth of the first colliding vehicle marks how
		// far the amplification stays within the 18 m spacing budget.
		firstCollision := "-"
		for _, v := range res.Vehicles {
			if v.Collision {
				firstCollision = fmt.Sprintf("%d", v.Index)
				break
			}
		}
		rows = append(rows, []string{
			coupling,
			fmtF(res.Miss.P50, 4),
			fmtF(res.Miss.P95, 4),
			fmtF(res.Miss.P99, 4),
			fmtF(res.DistRMS.P95, 3),
			fmtF(res.DistRMS.Max, 3),
			fmt.Sprintf("%d", res.Collisions),
			firstCollision,
		})
		last = res
	}
	return &Report{
		ID:     "ext-fleet",
		Title:  "Extension: 24-vehicle fleet, uncoupled vs. platoon (HCPerf)",
		Header: []string{"coupling", "miss p50", "miss p95", "miss p99", "dist RMS p95 (m)", "dist RMS max (m)", "collisions", "first collision depth"},
		Rows:   rows,
		Series: last.Rec,
		Notes: []string{
			"platoon coupling: each follower tracks its predecessor's simulated speed; predecessor braking beyond 2.5 m/s² adds 12 obstacles to the follower's scene",
			"the sine lead brakes at up to 4.5 m/s², so the brake→obstacle coupling fires every cycle: perception load spikes exactly when followers need fresh data, and the latency-amplified oscillation (classic string instability) grows down the chain until deep vehicles collide",
			"distributions are over per-vehicle statistics, aggregated in canonical (sorted) order for permutation-invariant digests",
		},
	}, nil
}
