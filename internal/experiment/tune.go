package experiment

import (
	"context"
	"fmt"

	"hcperf/internal/scenario"
	"hcperf/internal/search"
)

func init() {
	register("ext-tune", "Extension: coordinator policy search (auto-tuning)",
		"fixed-budget evolutionary search over the coordinator parameter space (γ cap, MFC window, adapter gains, scheme) on car following; reports the Pareto front and the best candidate per objective vs the paper defaults", ExtTune)
}

// extTuneRequest is the pinned search configuration behind the ext-tune
// golden digest: a compact 4-dimensional grid around the paper's hand-picked
// values, explored by a (3+6) evolutionary strategy on a 30-second
// car-following episode with 2 replica seeds per candidate. The whole run is
// deterministic at any worker count, which is what makes the digest
// pinnable.
func extTuneRequest(seed int64) search.Request {
	return search.Request{
		Spec: scenario.Spec{Scenario: "carfollow", Duration: 30},
		Space: &search.Space{
			Params: []search.Param{
				{Name: search.ParamGammaCap, Min: 0.01, Max: 0.08, Step: 0.01},
				{Name: search.ParamMFCWindowMS, Min: 300, Max: 900, Step: 200},
				{Name: search.ParamRateDecay, Min: 0.82, Max: 0.94, Step: 0.04},
				{Name: search.ParamRateKp0, Min: 0.4, Max: 1.2, Step: 0.4},
			},
			Schemes: []string{"edf", "hcperf"},
		},
		Strategy: search.StrategyEvolve,
		Budget:   16,
		Seeds:    2,
		Seed:     seed,
		Mu:       3,
		Lambda:   6,
	}
}

// ExtTune runs the pinned coordinator policy search. The report's rows are
// the baselines plus the canonical Pareto front; the notes summarize the
// best candidate per objective against the paper defaults.
func ExtTune(seed int64) (*Report, error) {
	rq := extTuneRequest(seed)
	rep, err := rq.Run(context.Background(), Parallelism(), nil)
	if err != nil {
		return nil, err
	}
	out := &Report{
		ID:     "ext-tune",
		Title:  "Extension: coordinator policy search (auto-tuning)",
		Header: rep.Header(),
		Rows:   rep.Rows(),
	}
	out.Notes = append(out.Notes, fmt.Sprintf(
		"strategy=%s budget=%d seeds=%d seed=%d: %d candidates over %d generations (space size %d)",
		rep.Strategy, rep.Budget, rep.Seeds, rq.Seed, rep.Evaluated, rep.Generations, rep.SpaceSize))
	for _, row := range rep.BestRows() {
		out.Notes = append(out.Notes, fmt.Sprintf(
			"%s: best %s vs paper-default %s (%s) at %s", row[0], row[1], row[2], row[3], row[4]))
	}
	return out, nil
}
