// Package experiment regenerates every table and figure of the HCPerf
// evaluation (paper §VII). Each experiment is a named, seeded, deterministic
// run that returns a Report holding paper-style rows next to the values the
// paper published, plus the raw time series needed to re-plot the figures.
package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hcperf/internal/trace"
)

// Report is the outcome of one experiment.
type Report struct {
	// ID is the registry key, e.g. "table2" or "fig13".
	ID string
	// Title describes the experiment.
	Title string
	// Header labels the measured columns.
	Header []string
	// Rows holds the measured values, one row per scheme or condition.
	Rows [][]string
	// PaperRows holds the corresponding values published in the paper
	// (empty when the paper gives no directly comparable numbers).
	PaperRows [][]string
	// Notes records deviations, substitutions and interpretation hints.
	Notes []string
	// Series holds raw time series for figure regeneration (may be nil).
	Series *trace.Recorder
	// Volatile marks reports whose Rows carry wall-clock-derived values
	// (e.g. the coordinator overhead measurement) and therefore legitimately
	// differ between runs; Digest skips the Rows of volatile reports so the
	// determinism harness still covers their structure.
	Volatile bool
}

// Digest returns a canonical SHA-256 over everything the report renders:
// ID, title, header, measured rows (unless Volatile), paper rows, notes and
// the full series CSV. Two reports with equal digests produce byte-identical
// WriteText and WriteCSV output, which is the invariant the determinism
// harness (internal/runner) enforces between serial and parallel runs.
func (r *Report) Digest() (string, error) {
	h := sha256.New()
	put := func(field string, cells ...string) {
		// Length-prefix every cell so cell boundaries cannot alias.
		fmt.Fprintf(h, "%s:%d;", field, len(cells))
		for _, c := range cells {
			fmt.Fprintf(h, "%d:%s;", len(c), c)
		}
	}
	put("id", r.ID)
	put("title", r.Title)
	put("header", r.Header...)
	if r.Volatile {
		put("rows", "volatile")
	} else {
		for _, row := range r.Rows {
			put("row", row...)
		}
	}
	for _, row := range r.PaperRows {
		put("paper", row...)
	}
	put("notes", r.Notes...)
	if r.Series != nil {
		if err := r.Series.WriteCSV(h); err != nil {
			return "", fmt.Errorf("experiment: digest series: %w", err)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// WriteText renders the report for terminals.
func (r *Report) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	if len(r.Rows) > 0 {
		writeTable(&b, "measured", r.Header, r.Rows)
	}
	if len(r.PaperRows) > 0 {
		writeTable(&b, "paper", r.Header, r.PaperRows)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteReports renders a sequence of reports to w, one blank line between
// them — the shared rendering loop of hcperf-sim -mode suite and
// hcperf-bench.
func WriteReports(w io.Writer, reports []*Report) error {
	for _, rep := range reports {
		if err := rep.WriteText(w); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

func writeTable(b *strings.Builder, label string, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(b, "[%s]\n", label)
	for i, h := range header {
		fmt.Fprintf(b, "%-*s  ", widths[i], h)
	}
	b.WriteString("\n")
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) {
				fmt.Fprintf(b, "%-*s  ", widths[i], cell)
			}
		}
		b.WriteString("\n")
	}
}

// WriteCSV writes the report's series (if any) to dir/<id>.csv and its
// measured rows to dir/<id>_rows.csv.
func (r *Report) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiment: %w", err)
	}
	if r.Series != nil {
		f, err := os.Create(filepath.Join(dir, r.ID+".csv"))
		if err != nil {
			return fmt.Errorf("experiment: %w", err)
		}
		defer f.Close()
		if err := r.Series.WriteCSV(f); err != nil {
			return err
		}
	}
	if len(r.Rows) > 0 {
		f, err := os.Create(filepath.Join(dir, r.ID+"_rows.csv"))
		if err != nil {
			return fmt.Errorf("experiment: %w", err)
		}
		defer f.Close()
		rows := append([][]string{r.Header}, r.Rows...)
		for _, row := range rows {
			if _, err := fmt.Fprintln(f, strings.Join(row, ",")); err != nil {
				return err
			}
		}
	}
	return nil
}

// Func runs one experiment with the given base seed.
type Func func(seed int64) (*Report, error)

// SeriesPoint is one sample of an exported time series.
type SeriesPoint struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// View is the JSON-serializable form of a Report: the same content
// WriteText renders, plus (optionally) the raw series keyed by name in
// recording order. It is what the serving layer returns from
// GET /v1/runs/{id}.
type View struct {
	ID        string                   `json:"id"`
	Title     string                   `json:"title"`
	Header    []string                 `json:"header,omitempty"`
	Rows      [][]string               `json:"rows,omitempty"`
	PaperRows [][]string               `json:"paper_rows,omitempty"`
	Notes     []string                 `json:"notes,omitempty"`
	Volatile  bool                     `json:"volatile,omitempty"`
	SeriesIdx []string                 `json:"series_names,omitempty"`
	Series    map[string][]SeriesPoint `json:"series,omitempty"`
}

// View converts the report for serialization. Series data is included only
// when includeSeries is set — the series are by far the largest part of a
// report, and status polls don't need them.
func (r *Report) View(includeSeries bool) *View {
	v := &View{
		ID:        r.ID,
		Title:     r.Title,
		Header:    r.Header,
		Rows:      r.Rows,
		PaperRows: r.PaperRows,
		Notes:     r.Notes,
		Volatile:  r.Volatile,
	}
	if r.Series != nil {
		v.SeriesIdx = r.Series.Names()
		if includeSeries {
			v.Series = make(map[string][]SeriesPoint, len(v.SeriesIdx))
			for _, name := range v.SeriesIdx {
				s := r.Series.Series(name)
				pts := make([]SeriesPoint, len(s.Samples))
				for i, p := range s.Samples {
					pts[i] = SeriesPoint{T: p.T, V: p.V}
				}
				v.Series[name] = pts
			}
		}
	}
	return v
}
