package experiment

import "testing"

// goldenDigests pins the canonical seed-1 Report.Digest of every registered
// experiment. The digest covers everything a report renders — ID, title,
// header, measured rows (unless Volatile), paper rows, notes and the full
// series CSV — so these values freeze the observable behaviour of the whole
// scenario/engine/coordinator stack.
//
// A digest change here means the simulation's output changed. That is
// sometimes intentional (a calibration change, a new column, a new series);
// when it is, regenerate the value and record why in EXPERIMENTS.md. It is
// never acceptable for a pure refactor: the scenario-harness extraction is
// provably behaviour-preserving exactly because this map did not move.
var goldenDigests = map[string]string{
	"ablate-dataage":  "84e8eb4a0ec6bd57068f2118bbbae2707820d8ec7d1346a2ddc5f92676a48525",
	"ablate-e2e":      "b15b8b412b61e8b72a2fd990461c34be68fd51e01c7b10ed0f8ce8f83d112347",
	"ablate-gammacap": "6a6d63a9a27b8e2833d460d9ec0600c71985f3f9693f47041de6d4f7589235a5",
	"ext-aeb":         "294fb210824cd80f0138aeab86ed1197ae86d5fcbe064294b42ca5ae771995d4",
	"ext-fleet":       "a7109966f5467a97f90ba89f67338d5f925b12c30a5e44c3bc5922bb05c2c7d6",
	"ext-dual":        "3dbb056751a3f936066d34cab2869485eb0db011295f322ba9aee6d4cfd6f0c4",
	"ext-tune":        "975c8672a9bafb4b8ad590e90e04b3d535a60407cc594c85346df4fb68cfbbf2",
	"fig12":           "508ef37c42d8480a9ca1441400ded3a2ef3d2228516aa36ae14c7478fddc2a63",
	"fig13":           "067026c9316163c47ea14e463d12f470ba9a0d67d5ccf116405408d9b96cb595",
	"fig14":           "1446fd2b2195162bbae030e830d643535442bda55ae8cffcfa983e029a97e688",
	"fig15":           "cca31332a80d7f5fdea701b077f1d156806a532bba09bc2852f63a3a547d8d01",
	"fig16":           "b76ff49ca50f27681fe98b5e7f0781e07d009cfba0938f81e70f84e09c6c30a3",
	"fig17":           "b8e73143482261e4d5226087241842964fe580457c0f7290ae62130c27845f8f",
	"fig18":           "a3fe06a2a3b497ca0b206090488dee840692544df59d9c353455dda1f5cf6246",
	"fig4":            "10f801a6837cb4ef00af7f0cd1b9ef29c6281a6f87973523b5e50e7abb9504b3",
	"fig5":            "9155ec1e74f48591048b5243c7201508da82d3bc57897c68479f8ee09bb3ebac",
	"overhead":        "86431b253a129b9de5fea443e9060d5eb4778e3b1eae60c9ce29ec5ac5019f8f",
	"sweep-procs":     "ea21f3f9882266729de49d94b1c54cb566360058a1f2db541339b9c763b58864",
	"table2":          "902fc46d14a3ea64bc9f4b9aeda882c955f3b9122f73d6eb44c9a71b8be6f019",
	"table3":          "19426dc1e4e81787a17066bb2a7a17b3e3e9e11d2af1c3ea521f18b1f725b28e",
	"table4":          "99faf3a10203a851f1e3b33b6832dd236f2fc9174d35750f6638db82512d1b4c",
	"table5":          "407082be4d2a9deecb71d362a74b3a8741627d3f631115e04ed38a1577167de9",
	"table6":          "1c80db7331cc3ff2b797de2edd17233c2d8f0b27fe993ccfd9282e8e7cebd0a5",
}

// TestGoldenDigests runs every registered experiment on the canonical seed
// and asserts its digest against the pinned value. Every experiment must be
// pinned: a new registration without a golden entry fails the test.
func TestGoldenDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			want, ok := goldenDigests[id]
			if !ok {
				t.Fatalf("experiment %q has no golden digest; run it on seed 1, pin the value and note the addition in EXPERIMENTS.md", id)
			}
			rep, err := Run(id, 1)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rep.Digest()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("digest %s, want %s\nthe experiment's observable output changed; if intentional, update the golden and document the change in EXPERIMENTS.md", got, want)
			}
		})
	}
	for id := range goldenDigests {
		if _, ok := Lookup(id); !ok {
			t.Errorf("golden digest pinned for unregistered experiment %q", id)
		}
	}
}
