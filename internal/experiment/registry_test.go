package experiment

import (
	"sort"
	"testing"
)

func TestListSortedAndComplete(t *testing.T) {
	list := List()
	if len(list) == 0 {
		t.Fatal("empty listing")
	}
	if !sort.SliceIsSorted(list, func(i, j int) bool { return list[i].ID < list[j].ID }) {
		t.Error("List() not sorted by ID")
	}
	ids := IDs()
	if len(ids) != len(list) {
		t.Fatalf("IDs() has %d entries, List() has %d", len(ids), len(list))
	}
	for i, info := range list {
		if info.ID != ids[i] {
			t.Errorf("List()[%d].ID = %q, IDs()[%d] = %q", i, info.ID, i, ids[i])
		}
		if info.Title == "" || info.Description == "" {
			t.Errorf("experiment %q has empty title or description", info.ID)
		}
	}
	// The paper's headline experiments must be present.
	for _, want := range []string{"fig4", "fig13", "table2", "overhead", "ablate-gammacap", "ext-dual"} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("Lookup(%q) missing", want)
		}
	}
}

func TestListReturnsCopy(t *testing.T) {
	a := List()
	a[0].ID = "clobbered"
	if b := List(); b[0].ID == "clobbered" {
		t.Error("List() exposes shared backing storage")
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", 1); err == nil {
		t.Error("Run with unknown id returned nil error")
	}
}
