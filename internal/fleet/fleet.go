// Package fleet scales the single-vehicle HCPerf closed loop to a fleet:
// N vehicles (hundreds to thousands), each running its own task graph,
// engine and coordinator on the existing lifecycle kernel, all advanced
// deterministically on ONE shared virtual clock.
//
// Determinism at fleet scale rests on three rules:
//
//   - One clock. Every vehicle's events live on a single
//     simtime.EventQueue; events at the same instant fire in creation
//     order, so the interleaving is fixed by construction order, not by
//     scheduling accidents.
//   - Partitioned randomness. Each vehicle's engine and sensing noise are
//     seeded from its own per-vehicle seed — either pinned explicitly or
//     derived from the fleet seed with a splitmix64 partition
//     (VehicleSeed) — so no vehicle's random stream depends on N or on
//     any other vehicle's consumption.
//   - Canonical aggregation. Fleet-level reductions (means, percentiles)
//     sort their inputs before any floating-point arithmetic, so the
//     aggregate — and therefore the report digest — is invariant under
//     vehicle permutation.
//
// Shared-world coupling is optional: FleetCouplingNone runs N independent
// vehicles over the common obstacle field, while FleetCouplingPlatoon
// chains them — vehicle i perceives vehicle i-1's simulated motion as its
// lead, and a hard-braking predecessor inflates its follower's obstacle
// count (its braking literally becomes the follower's obstacles), which
// feeds back into the follower's sensor-fusion execution time exactly like
// any other scene complexity change.
package fleet

import (
	"fmt"
	"sort"

	"hcperf/internal/lifecycle"
	"hcperf/internal/scenario"
	"hcperf/internal/simtime"
	"hcperf/internal/trace"
)

// Defaults for the platoon's brake-to-obstacle coupling: a predecessor
// decelerating harder than DefaultBrakeThreshold adds
// DefaultBrakeObstacles to its follower's scene.
const (
	DefaultBrakeThreshold = 2.5
	DefaultBrakeObstacles = 12
)

// Config parameterises one fleet run.
type Config struct {
	// Base is the per-vehicle scenario template; its Scheme must be set,
	// every other field defaults to the paper's car-following setup. The
	// Seed field is ignored: per-vehicle seeds come from Seed /
	// VehicleSeeds.
	Base scenario.CarFollowingConfig
	// N is the number of vehicles (>= 1).
	N int
	// Coupling is scenario.FleetCouplingNone (default) or
	// scenario.FleetCouplingPlatoon.
	Coupling string
	// Spacing is the platoon's initial inter-vehicle gap in metres
	// (0 = the control law's desired gap at the initial speed).
	Spacing float64
	// BrakeThreshold is the predecessor deceleration magnitude (m/s^2)
	// that triggers the brake-to-obstacle coupling (0 = default).
	BrakeThreshold float64
	// BrakeObstacles is the obstacle bump a braking predecessor adds to
	// its follower's scene (0 = default).
	BrakeObstacles int
	// Seed is the fleet seed from which per-vehicle seeds are derived
	// when VehicleSeeds is empty.
	Seed int64
	// VehicleSeeds pins each vehicle's seed explicitly (length must be
	// N when non-empty).
	VehicleSeeds []int64
	// Tracer optionally receives every vehicle's lifecycle events,
	// interleaved in virtual-time order.
	Tracer lifecycle.Tracer
}

// VehicleSeed derives vehicle i's seed from the fleet seed with a
// splitmix64 step: a well-mixed 64-bit partition, so per-vehicle streams
// are decorrelated and independent of N. The derivation depends only on
// (fleetSeed, i) — adding or removing other vehicles never changes an
// existing vehicle's randomness.
func VehicleSeed(fleetSeed int64, i int) int64 {
	z := uint64(fleetSeed) + (uint64(i)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// VehicleStats is one vehicle's per-run outcome.
type VehicleStats struct {
	// Index is the vehicle's position in the fleet (platoon order).
	Index int
	// Seed is the vehicle's own seed.
	Seed int64
	// SpeedErrRMS and DistErrRMS are the vehicle's RMS tracking errors.
	SpeedErrRMS, DistErrRMS float64
	// MissRatio is the vehicle's overall deadline-miss ratio.
	MissRatio float64
	// Throughput is control commands per second.
	Throughput float64
	// MeanResponse is the mean control-command response time (s).
	MeanResponse float64
	// Collision reports a gap <= 0 event.
	Collision bool
}

// Distribution summarises one per-vehicle metric across the fleet.
type Distribution struct {
	Mean, P50, P95, P99, Max float64
}

// distribution reduces xs canonically: the samples are sorted before any
// floating-point arithmetic, so the result is exactly invariant under
// permutation of the input order (vehicle relabeling).
func distribution(xs []float64) Distribution {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum := 0.0
	for _, x := range s {
		sum += x
	}
	pct := func(p float64) float64 {
		rank := p / 100 * float64(len(s)-1)
		lo := int(rank)
		frac := rank - float64(lo)
		if lo+1 >= len(s) {
			return s[len(s)-1]
		}
		return s[lo]*(1-frac) + s[lo+1]*frac
	}
	return Distribution{
		Mean: sum / float64(len(s)),
		P50:  pct(50),
		P95:  pct(95),
		P99:  pct(99),
		Max:  s[len(s)-1],
	}
}

// Result aggregates one fleet run.
type Result struct {
	// N, Coupling and Duration echo the effective configuration.
	N        int
	Coupling string
	Duration float64
	// Vehicles holds per-vehicle outcomes in fleet (platoon) order.
	Vehicles []VehicleStats
	// SpeedRMS, DistRMS and Miss are the fleet-wide distributions of
	// the per-vehicle metrics.
	SpeedRMS, DistRMS, Miss Distribution
	// Collisions counts vehicles that collided.
	Collisions int
	// Rec holds the fleet-level aggregate series (fleet_err_mean,
	// fleet_err_p95, fleet_err_max, fleet_gap_min), sampled once per
	// summary period on the shared clock.
	Rec *trace.Recorder
	// VehicleRecs holds each vehicle's own series recorder, in fleet
	// order (the same series a single-vehicle run records).
	VehicleRecs []*trace.Recorder
}

// predProfile exposes a predecessor vehicle's simulated speed as its
// follower's lead-speed profile. Speed ignores the profile clock and reads
// the predecessor's current state: the shared queue steps vehicle i-1's
// dynamics before vehicle i's at every instant (tickers fire in creation
// order), so the follower always perceives the predecessor's already-
// integrated state for the step ending now.
type predProfile struct {
	pred *scenario.CarFollowingRun
}

// Speed implements vehicle.SpeedProfile.
func (p predProfile) Speed(float64) float64 { return p.pred.FollowerSpeed() }

// Run executes one fleet run to completion and aggregates the results.
func Run(cfg Config) (*Result, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("fleet: N %d < 1", cfg.N)
	}
	coupling := cfg.Coupling
	if coupling == "" {
		coupling = scenario.FleetCouplingNone
	}
	switch coupling {
	case scenario.FleetCouplingNone, scenario.FleetCouplingPlatoon:
	default:
		return nil, fmt.Errorf("fleet: unknown coupling %q", coupling)
	}
	if cfg.Spacing < 0 {
		return nil, fmt.Errorf("fleet: negative spacing %v", cfg.Spacing)
	}
	if len(cfg.VehicleSeeds) > 0 && len(cfg.VehicleSeeds) != cfg.N {
		return nil, fmt.Errorf("fleet: %d vehicle seeds for %d vehicles", len(cfg.VehicleSeeds), cfg.N)
	}
	brakeThreshold := cfg.BrakeThreshold
	if brakeThreshold == 0 {
		brakeThreshold = DefaultBrakeThreshold
	}
	brakeObstacles := cfg.BrakeObstacles
	if brakeObstacles == 0 {
		brakeObstacles = DefaultBrakeObstacles
	}

	seeds := make([]int64, cfg.N)
	for i := range seeds {
		if len(cfg.VehicleSeeds) > 0 {
			seeds[i] = cfg.VehicleSeeds[i]
		} else {
			seeds[i] = VehicleSeed(cfg.Seed, i)
		}
	}

	// The shared obstacle field every vehicle drives through; coupling
	// terms stack on top per follower.
	shared := cfg.Base.Obstacles
	if shared == nil {
		shared = scenario.DefaultCarFollowingObstacles
	}

	q := simtime.NewEventQueue()
	runs := make([]*scenario.CarFollowingRun, cfg.N)
	for i := 0; i < cfg.N; i++ {
		vcfg := cfg.Base
		vcfg.Seed = seeds[i]
		vcfg.Obstacles = shared
		vcfg.Tracer = cfg.Tracer
		if coupling == scenario.FleetCouplingPlatoon && i > 0 {
			pred := runs[i-1]
			vcfg.LeadProfile = predProfile{pred: pred}
			vcfg.InitGap = cfg.Spacing
			vcfg.Obstacles = func(t float64) int {
				n := shared(t)
				if pred.FollowerAccel() <= -brakeThreshold {
					n += brakeObstacles
				}
				return n
			}
		}
		r, err := scenario.AttachCarFollowing(q, vcfg)
		if err != nil {
			return nil, fmt.Errorf("fleet: vehicle %d: %w", i, err)
		}
		runs[i] = r
	}
	duration := runs[0].Duration()

	// Fleet-level aggregate sampler: created after every vehicle so at
	// each sample instant it observes post-step state. The per-vehicle
	// errors are sorted before summing, keeping the recorded aggregates
	// permutation-invariant bit for bit.
	samplePeriod := 1.0
	if cfg.Base.SampleRate > 0 {
		samplePeriod = 1 / cfg.Base.SampleRate
	}
	rec := trace.NewRecorder()
	errs := make([]float64, cfg.N)
	if _, err := q.NewTicker(simtime.Time(samplePeriod), simtime.Duration(samplePeriod), func(now simtime.Time) {
		gapMin := runs[0].Gap()
		for i, r := range runs {
			errs[i] = r.TrackingError(now)
			if g := r.Gap(); g < gapMin {
				gapMin = g
			}
		}
		sort.Float64s(errs)
		sum := 0.0
		for _, e := range errs {
			sum += e
		}
		d := distribution(errs)
		t := float64(now)
		recAdd(rec, "fleet_err_mean", t, sum/float64(len(errs)))
		recAdd(rec, "fleet_err_p95", t, d.P95)
		recAdd(rec, "fleet_err_max", t, d.Max)
		recAdd(rec, "fleet_gap_min", t, gapMin)
	}); err != nil {
		return nil, fmt.Errorf("fleet: sampler: %w", err)
	}

	if err := q.RunUntil(simtime.Time(duration)); err != nil {
		return nil, fmt.Errorf("fleet: run: %w", err)
	}

	res := &Result{
		N:           cfg.N,
		Coupling:    coupling,
		Duration:    duration,
		Vehicles:    make([]VehicleStats, cfg.N),
		Rec:         rec,
		VehicleRecs: make([]*trace.Recorder, cfg.N),
	}
	speed := make([]float64, cfg.N)
	dist := make([]float64, cfg.N)
	miss := make([]float64, cfg.N)
	for i, r := range runs {
		out := r.Finish()
		res.Vehicles[i] = VehicleStats{
			Index:        i,
			Seed:         seeds[i],
			SpeedErrRMS:  out.SpeedErrRMS,
			DistErrRMS:   out.DistErrRMS,
			MissRatio:    out.Miss.MeanRatio(),
			Throughput:   out.Throughput,
			MeanResponse: out.MeanResponse,
			Collision:    out.Collision,
		}
		res.VehicleRecs[i] = out.Rec
		speed[i], dist[i], miss[i] = out.SpeedErrRMS, out.DistErrRMS, res.Vehicles[i].MissRatio
		if out.Collision {
			res.Collisions++
		}
	}
	res.SpeedRMS = distribution(speed)
	res.DistRMS = distribution(dist)
	res.Miss = distribution(miss)
	return res, nil
}

// recAdd appends to a recorder series; the fleet sampler only ever advances
// with simulation time, so failures indicate harness bugs.
func recAdd(rec *trace.Recorder, name string, t, v float64) {
	if err := rec.Add(name, t, v); err != nil {
		panic(fmt.Sprintf("fleet: record %s: %v", name, err))
	}
}
