// Fleet determinism and metamorphic battery. The tests live in an external
// test package so they can digest fleet runs through experiment.Report —
// the same digest the cache and the golden pins use — without creating an
// import cycle (fleet must not import experiment).
package fleet_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"

	"hcperf/internal/experiment"
	"hcperf/internal/fleet"
	"hcperf/internal/runner"
	"hcperf/internal/scenario"
	"hcperf/internal/trace"
)

// reportOf wraps a spec result exactly the way the service does, so test
// digests measure the same canonical serialisation production traffic is
// cached and pinned under.
func reportOf(r *scenario.SpecResult) *experiment.Report {
	return &experiment.Report{
		ID:     "fleet-test",
		Title:  r.Title,
		Header: []string{"quantity", "value"},
		Rows:   r.Rows,
		Series: r.Rec,
	}
}

func specDigest(t *testing.T, spec scenario.Spec) string {
	t.Helper()
	r, err := fleet.RunSpec(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := reportOf(r).Digest()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// recDigest hashes a recorder's full CSV rendering — the byte-level
// identity of one vehicle's simulated history.
func recDigest(t *testing.T, rec *trace.Recorder) string {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

// platoonSpec is the battery's standard coupled fleet: small enough to run
// in milliseconds, coupled enough to exercise every fleet mechanism.
func platoonSpec(n int, seed int64) scenario.Spec {
	return scenario.Spec{
		Scenario: "carfollow",
		Scheme:   "hcperf",
		Seed:     seed,
		Duration: 5,
		Fleet: &scenario.FleetSpec{
			N:        n,
			Coupling: scenario.FleetCouplingPlatoon,
			Spacing:  18,
		},
	}
}

// TestRunSpecDelegatesSingle proves a spec without a fleet block takes the
// single-vehicle path unchanged: fleet.RunSpec and scenario.RunSpec return
// byte-identical reports.
func TestRunSpecDelegatesSingle(t *testing.T) {
	spec := scenario.Spec{Scenario: "carfollow", Scheme: "edf", Seed: 3, Duration: 5}
	got := specDigest(t, spec)
	r, err := scenario.RunSpec(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := reportOf(r).Digest()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("fleet.RunSpec digest %s != scenario.RunSpec digest %s for a fleet-less spec", got, want)
	}
}

// TestFleetByteIdenticalAcrossRuns is the 10-run repeatability probe: the
// same coupled fleet spec must digest identically on every execution.
func TestFleetByteIdenticalAcrossRuns(t *testing.T) {
	want := specDigest(t, platoonSpec(8, 42))
	for i := 1; i < 10; i++ {
		if got := specDigest(t, platoonSpec(8, 42)); got != want {
			t.Fatalf("run %d: digest %s != first run %s", i, got, want)
		}
	}
}

// TestFleetSeedSensitivity is the battery's counter-probe: a different
// fleet seed must change the digest, or the repeatability tests above
// prove nothing.
func TestFleetSeedSensitivity(t *testing.T) {
	if specDigest(t, platoonSpec(8, 1)) == specDigest(t, platoonSpec(8, 2)) {
		t.Error("fleet digests identical across different fleet seeds; digest is not discriminating")
	}
}

// TestFleetVerifySerialParallel runs the repo's standard determinism
// harness over fleet runs at N ∈ {1, 8, 128}: a 4-seed sweep of fleet
// specs fanned across the worker pool must digest byte-identically to its
// serial reference.
func TestFleetVerifySerialParallel(t *testing.T) {
	for _, n := range []int{1, 8, 128} {
		n := n
		if n == 128 && testing.Short() {
			continue
		}
		err := runner.VerifySerialParallel(context.Background(), 4, func(ctx context.Context, workers int) (runner.Digester, error) {
			seeds := []int64{1, 2, 3, 4}
			reports, err := runner.Map(ctx, workers, seeds, func(_ context.Context, seed int64) (*experiment.Report, error) {
				r, err := fleet.RunSpec(platoonSpec(n, seed), nil)
				if err != nil {
					return nil, err
				}
				return reportOf(r), nil
			})
			if err != nil {
				return nil, err
			}
			return sweepDigest(reports), nil
		})
		if err != nil {
			t.Errorf("N=%d: %v", n, err)
		}
	}
}

// sweepDigest combines a report sweep into one Digester.
type sweepDigest []*experiment.Report

func (s sweepDigest) Digest() (string, error) {
	var all strings.Builder
	for _, rep := range s {
		d, err := rep.Digest()
		if err != nil {
			return "", err
		}
		all.WriteString(d)
		all.WriteByte(';')
	}
	return all.String(), nil
}

// TestVehiclePermutationInvariance is the core metamorphic property: in an
// uncoupled fleet, vehicle identity is the seed. Shuffling the pinned
// per-vehicle seed list must leave each vehicle's stats and the whole
// fleet digest unchanged — canonical (sorted) aggregation makes even the
// floating-point reductions order-blind.
func TestVehiclePermutationInvariance(t *testing.T) {
	spec := func(seeds []int64) scenario.Spec {
		return scenario.Spec{
			Scenario: "carfollow",
			Scheme:   "hcperf",
			Duration: 5,
			Fleet:    &scenario.FleetSpec{N: len(seeds), VehicleSeeds: seeds},
		}
	}
	a := specDigest(t, spec([]int64{5, 17, 29, 41}))
	b := specDigest(t, spec([]int64{29, 41, 5, 17}))
	if a != b {
		t.Errorf("fleet digest changed under vehicle permutation: %s vs %s", a, b)
	}

	// Per-vehicle stats must follow their seed, not their slot.
	statsBySeed := func(seeds []int64) map[int64]fleet.VehicleStats {
		res, err := fleet.Run(fleet.Config{
			Base:         scenario.CarFollowingConfig{Scheme: scenario.SchemeHCPerf, Duration: 5},
			N:            len(seeds),
			VehicleSeeds: seeds,
		})
		if err != nil {
			t.Fatal(err)
		}
		m := make(map[int64]fleet.VehicleStats, len(res.Vehicles))
		for _, v := range res.Vehicles {
			v.Index = 0 // identity is the seed; the slot may differ
			m[v.Seed] = v
		}
		return m
	}
	ma := statsBySeed([]int64{5, 17, 29, 41})
	mb := statsBySeed([]int64{29, 41, 5, 17})
	for seed, va := range ma {
		if vb := mb[seed]; va != vb {
			t.Errorf("seed %d: stats moved under permutation: %+v vs %+v", seed, va, vb)
		}
	}
}

// TestFleetN1EquivalentToSingle pins the other metamorphic anchor: a fleet
// of one uncoupled vehicle IS the existing single-vehicle scenario. The
// vehicle's full simulated history (its series CSV) must be byte-identical
// to a standalone run with the same seed, and its summary stats must match
// exactly.
func TestFleetN1EquivalentToSingle(t *testing.T) {
	const seed = 77
	res, err := fleet.Run(fleet.Config{
		Base:         scenario.CarFollowingConfig{Scheme: scenario.SchemeHCPerf, Duration: 5},
		N:            1,
		VehicleSeeds: []int64{seed},
	})
	if err != nil {
		t.Fatal(err)
	}
	single, err := scenario.RunCarFollowing(scenario.CarFollowingConfig{
		Scheme: scenario.SchemeHCPerf, Seed: seed, Duration: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := recDigest(t, res.VehicleRecs[0]), recDigest(t, single.Rec); got != want {
		t.Errorf("N=1 fleet vehicle series digest %s != single-vehicle run %s", got, want)
	}
	v := res.Vehicles[0]
	if v.SpeedErrRMS != single.SpeedErrRMS || v.DistErrRMS != single.DistErrRMS ||
		v.MissRatio != single.Miss.MeanRatio() || v.Throughput != single.Throughput ||
		v.MeanResponse != single.MeanResponse || v.Collision != single.Collision {
		t.Errorf("N=1 fleet stats %+v diverge from single run", v)
	}
}

// TestFleetOfKEqualsKSingles generalises N=1 equivalence into the aliasing
// regression the 1000× scale-up demands: K uncoupled vehicles sharing one
// clock, one process and one address space must each produce the exact
// byte-identical history of K fully independent runs. Any state leaking
// across vehicles — a shared engine slice, a reused solver scratch buffer,
// an RNG touched by a neighbour — breaks byte identity here.
func TestFleetOfKEqualsKSingles(t *testing.T) {
	seeds := []int64{101, 202, 303}
	res, err := fleet.Run(fleet.Config{
		Base:         scenario.CarFollowingConfig{Scheme: scenario.SchemeHCPerf, Duration: 5},
		N:            len(seeds),
		VehicleSeeds: seeds,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, seed := range seeds {
		single, err := scenario.RunCarFollowing(scenario.CarFollowingConfig{
			Scheme: scenario.SchemeHCPerf, Seed: seed, Duration: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := recDigest(t, res.VehicleRecs[i]), recDigest(t, single.Rec); got != want {
			t.Errorf("vehicle %d (seed %d): fleet series digest %s != independent run %s", i, seed, got, want)
		}
	}
}

// TestFleetConcurrentRace runs coupled fleets concurrently under the race
// detector (CI's focused race job runs this package with -race): N=64
// platoons in parallel goroutines must neither race nor diverge from the
// serial digest. This is the audit for the engine's dense task-indexed
// slices and per-loop solver reuse at fleet scale.
func TestFleetConcurrentRace(t *testing.T) {
	n := 64
	if testing.Short() {
		n = 8
	}
	want := specDigest(t, platoonSpec(n, 9))
	const fleets = 3
	got := make([]string, fleets)
	done := make(chan int, fleets)
	for i := 0; i < fleets; i++ {
		go func(i int) {
			defer func() { done <- i }()
			r, err := fleet.RunSpec(platoonSpec(n, 9), nil)
			if err != nil {
				t.Error(err)
				return
			}
			d, err := reportOf(r).Digest()
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = d
		}(i)
	}
	for i := 0; i < fleets; i++ {
		<-done
	}
	for i, d := range got {
		if d != want {
			t.Errorf("concurrent fleet %d: digest %s != serial reference %s", i, d, want)
		}
	}
}

// TestVehicleSeedPartition checks the splitmix64 partition: per-vehicle
// seeds are pairwise distinct across a large fleet and depend only on
// (fleetSeed, index) — never on N.
func TestVehicleSeedPartition(t *testing.T) {
	seen := make(map[int64]int, 1000)
	for i := 0; i < 1000; i++ {
		s := fleet.VehicleSeed(1, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: vehicles %d and %d both derive %d", prev, i, s)
		}
		seen[s] = i
	}
	if fleet.VehicleSeed(1, 0) == fleet.VehicleSeed(2, 0) {
		t.Error("vehicle 0 seed identical under different fleet seeds")
	}
}

// TestRunValidation exercises the fleet runner's parameter checks.
func TestRunValidation(t *testing.T) {
	base := scenario.CarFollowingConfig{Scheme: scenario.SchemeHCPerf, Duration: 5}
	cases := []struct {
		name string
		cfg  fleet.Config
		want string
	}{
		{"zero vehicles", fleet.Config{Base: base, N: 0}, "N 0 < 1"},
		{"unknown coupling", fleet.Config{Base: base, N: 2, Coupling: "v2x"}, "unknown coupling"},
		{"negative spacing", fleet.Config{Base: base, N: 2, Spacing: -1}, "negative spacing"},
		{"seed count mismatch", fleet.Config{Base: base, N: 3, VehicleSeeds: []int64{1}}, "1 vehicle seeds for 3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := fleet.Run(tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestPlatoonCouplingBites is the sanity check that the coupling is real:
// a platoon fleet must not digest identically to the same fleet uncoupled,
// and followers must start Spacing apart without colliding.
func TestPlatoonCouplingBites(t *testing.T) {
	uncoupled := scenario.Spec{
		Scenario: "carfollow", Scheme: "hcperf", Seed: 42, Duration: 5,
		Fleet: &scenario.FleetSpec{N: 8},
	}
	if specDigest(t, platoonSpec(8, 42)) == specDigest(t, uncoupled) {
		t.Error("platoon coupling had no observable effect on the fleet digest")
	}
	res, err := fleet.Run(fleet.Config{
		Base:     scenario.CarFollowingConfig{Scheme: scenario.SchemeHCPerf, Duration: 5},
		N:        8,
		Coupling: scenario.FleetCouplingPlatoon,
		Spacing:  18,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Collisions != 0 {
		t.Errorf("platoon with 18 m spacing collided: %d collisions", res.Collisions)
	}
}
