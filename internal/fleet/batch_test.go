package fleet_test

import (
	"strings"
	"testing"

	"hcperf/internal/fleet"
	"hcperf/internal/scenario"
)

// TestRunBatchEqualsIndividualRuns pins the batched multi-seed mode's core
// invariant: K replicas advanced in lockstep on one shared event queue
// produce byte-identical histories and bit-identical summary stats to K
// fully independent RunCarFollowing calls. This is what lets the sweep
// layer batch seeds transparently.
func TestRunBatchEqualsIndividualRuns(t *testing.T) {
	cfgs := []scenario.CarFollowingConfig{
		{Scheme: scenario.SchemeHCPerf, Seed: 11, Duration: 5},
		{Scheme: scenario.SchemeEDF, Seed: 22, Duration: 5},
		{Scheme: scenario.SchemeHCPerf, Seed: 33, Duration: 5},
	}
	batched, err := fleet.RunBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batched) != len(cfgs) {
		t.Fatalf("batch returned %d results for %d configs", len(batched), len(cfgs))
	}
	for i, cfg := range cfgs {
		single, err := scenario.RunCarFollowing(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b := batched[i]
		if got, want := recDigest(t, b.Rec), recDigest(t, single.Rec); got != want {
			t.Errorf("replica %d (scheme %v seed %d): batched series digest %s != independent run %s",
				i, cfg.Scheme, cfg.Seed, got, want)
		}
		if b.SpeedErrRMS != single.SpeedErrRMS || b.DistErrRMS != single.DistErrRMS ||
			b.Throughput != single.Throughput || b.MeanResponse != single.MeanResponse ||
			b.Collision != single.Collision {
			t.Errorf("replica %d: batched stats diverge from independent run", i)
		}
	}
}

// TestRunBatchValidation covers the batch-shape errors: an empty batch and
// replicas that resolve to different durations (lockstep needs one horizon).
func TestRunBatchValidation(t *testing.T) {
	if _, err := fleet.RunBatch(nil); err == nil {
		t.Error("empty batch: want error, got nil")
	}
	_, err := fleet.RunBatch([]scenario.CarFollowingConfig{
		{Scheme: scenario.SchemeHCPerf, Seed: 1, Duration: 5},
		{Scheme: scenario.SchemeHCPerf, Seed: 2, Duration: 10},
	})
	if err == nil || !strings.Contains(err.Error(), "duration") {
		t.Errorf("mismatched durations: want duration error, got %v", err)
	}
}
