package fleet

import (
	"fmt"

	"hcperf/internal/scenario"
	"hcperf/internal/simtime"
)

// RunBatch advances K independent car-following replicas in lockstep on one
// shared event queue and returns their results in input order. The replicas
// are typically the same scenario under K different seeds (a multi-seed
// sweep cell); batching them amortizes the per-run dispatch machinery — one
// virtual clock, one scheduler structure, one drain loop — across all K
// instead of paying it once per private queue.
//
// Each replica is fully self-contained (its own task graph, RNG streams,
// recorders and tickers), so interleaving K of them on a shared clock
// changes nothing a replica can observe: same-instant events fire in
// creation order, which preserves every replica's internal event order, and
// no callback reads another replica's state. A batched run is therefore
// bit-identical to K separate RunCarFollowing calls — the replicas=K
// determinism test in internal/experiment pins exactly that equivalence on
// report digests.
//
// All replicas must resolve to the same Duration (they advance in lockstep
// to a single horizon); mismatches are an error.
func RunBatch(cfgs []scenario.CarFollowingConfig) ([]*scenario.CarFollowingResult, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("fleet: empty batch")
	}
	q := simtime.NewEventQueue()
	runs := make([]*scenario.CarFollowingRun, len(cfgs))
	for i, cfg := range cfgs {
		r, err := scenario.AttachCarFollowing(q, cfg)
		if err != nil {
			return nil, fmt.Errorf("fleet: replica %d: %w", i, err)
		}
		if i > 0 && r.Duration() != runs[0].Duration() {
			return nil, fmt.Errorf("fleet: replica %d duration %v != replica 0 duration %v",
				i, r.Duration(), runs[0].Duration())
		}
		runs[i] = r
	}
	if err := q.RunUntil(simtime.Time(runs[0].Duration())); err != nil {
		return nil, fmt.Errorf("fleet: batch run: %w", err)
	}
	out := make([]*scenario.CarFollowingResult, len(runs))
	for i, r := range runs {
		out[i] = r.Finish()
	}
	return out, nil
}
