package fleet

import (
	"fmt"
	"sort"

	"hcperf/internal/lifecycle"
	"hcperf/internal/scenario"
)

// perVehicleRowCap bounds the per-vehicle rows in a fleet report. Above
// the cap an explicit "omitted" row records the truncation — a report must
// never silently drop vehicles.
const perVehicleRowCap = 32

// RunSpec executes a declarative spec, fleet-aware: a spec without a fleet
// block runs the existing single-vehicle path unchanged, while a fleet
// block fans the spec's car-following scenario out to N vehicles on one
// shared clock. Either way the result is a scenario.SpecResult, so fleet
// runs flow through the CLI, the service, the content-addressed cache and
// golden-digest pinning exactly like single-vehicle runs.
func RunSpec(spec scenario.Spec, tracer lifecycle.Tracer) (*scenario.SpecResult, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	if norm.Fleet == nil {
		return scenario.RunSpec(norm, tracer)
	}
	base, err := scenario.CarFollowingConfigFromSpec(norm)
	if err != nil {
		return nil, err
	}
	base.Tracer = nil // the fleet runner stamps the tracer per vehicle
	f := norm.Fleet
	res, err := Run(Config{
		Base:           base,
		N:              f.N,
		Coupling:       f.Coupling,
		Spacing:        f.Spacing,
		BrakeThreshold: f.BrakeThreshold,
		BrakeObstacles: f.BrakeObstacles,
		Seed:           norm.Seed,
		VehicleSeeds:   f.VehicleSeeds,
		Tracer:         tracer,
	})
	if err != nil {
		return nil, err
	}
	scheme, err := scenario.ParseScheme(norm.Scheme)
	if err != nil {
		return nil, err
	}
	return &scenario.SpecResult{
		Spec: norm,
		Title: fmt.Sprintf("fleet of %d (%s coupling) %s under %v (seed %d)",
			res.N, res.Coupling, norm.Scenario, scheme, norm.Seed),
		Rows: Rows(res),
		Rec:  res.Rec,
	}, nil
}

// Rows renders a fleet result as canonical (quantity, value) report rows:
// fleet-wide distributions first, then per-vehicle rows. Per-vehicle rows
// are sorted by content for uncoupled fleets — vehicle identity is the
// seed, so the listing is invariant under vehicle permutation — and kept
// in platoon order for coupled fleets, where position is meaningful.
func Rows(res *Result) [][]string {
	rows := [][]string{
		{"fleet size", fmt.Sprintf("%d", res.N)},
		{"coupling", res.Coupling},
	}
	rows = append(rows, distRows("speed RMS", "m/s", res.SpeedRMS)...)
	rows = append(rows, distRows("distance RMS", "m", res.DistRMS)...)
	rows = append(rows, distRows("miss ratio", "", res.Miss)...)
	rows = append(rows, []string{"collisions", fmt.Sprintf("%d", res.Collisions)})

	if res.N > perVehicleRowCap {
		rows = append(rows, []string{"per-vehicle rows",
			fmt.Sprintf("omitted (%d vehicles > %d)", res.N, perVehicleRowCap)})
		return rows
	}
	per := make([][]string, 0, res.N)
	for _, v := range res.Vehicles {
		key := fmt.Sprintf("vehicle seed %d", v.Seed)
		if res.Coupling == scenario.FleetCouplingPlatoon {
			key = fmt.Sprintf("vehicle %d (seed %d)", v.Index, v.Seed)
		}
		per = append(per, []string{key, fmt.Sprintf(
			"speedRMS=%.4f distRMS=%.4f miss=%.4f resp=%.1fms collision=%t",
			v.SpeedErrRMS, v.DistErrRMS, v.MissRatio, v.MeanResponse*1000, v.Collision)})
	}
	if res.Coupling != scenario.FleetCouplingPlatoon {
		sort.Slice(per, func(i, j int) bool {
			if per[i][0] != per[j][0] {
				return per[i][0] < per[j][0]
			}
			return per[i][1] < per[j][1]
		})
	}
	return append(rows, per...)
}

// distRows renders one fleet-wide distribution as five report rows.
func distRows(label, unit string, d Distribution) [][]string {
	if unit != "" {
		unit = " (" + unit + ")"
	}
	return [][]string{
		{label + " mean" + unit, fmt.Sprintf("%.4f", d.Mean)},
		{label + " p50" + unit, fmt.Sprintf("%.4f", d.P50)},
		{label + " p95" + unit, fmt.Sprintf("%.4f", d.P95)},
		{label + " p99" + unit, fmt.Sprintf("%.4f", d.P99)},
		{label + " max" + unit, fmt.Sprintf("%.4f", d.Max)},
	}
}
