// Package analysis provides offline schedulability analysis for HCPerf
// task graphs: cadence derivation along primary chains, utilization
// accounting at a given scene, the Liu & Layland fixed-priority bound the
// paper's Task Rate Adapter references, per-processor loads under
// Apollo-style static binding, and nominal end-to-end path latencies.
//
// The analysis is advisory — the runtime system measures everything online —
// but it explains *why* a configuration overloads (which processor, which
// chain) and is what hcperf-graph -analyze prints.
package analysis

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"hcperf/internal/dag"
	"hcperf/internal/exectime"
	"hcperf/internal/simtime"
)

// TaskReport is the per-task analysis row.
type TaskReport struct {
	// Task is the analysed task.
	Task *dag.Task
	// Cadence is the task's effective release rate (Hz): its own rate
	// for sources, the primary-chain root's rate for derived tasks.
	Cadence float64
	// ExpectedExec is the mean execution time at the analysed scene.
	ExpectedExec simtime.Duration
	// Utilization is Cadence · ExpectedExec (0 for off-CPU sources).
	Utilization float64
	// Processor is the Apollo block-mapped processor index (-1 unbound).
	Processor int
}

// Report is the outcome of Analyze.
type Report struct {
	// Tasks holds the per-task rows in graph ID order.
	Tasks []TaskReport
	// TotalUtilization is the scheduled (non-source) CPU demand in
	// CPU-seconds per second.
	TotalUtilization float64
	// NumProcs is the processor count analysed against.
	NumProcs int
	// LLBound is the Liu & Layland rate-monotonic utilisation bound
	// n(2^(1/n)-1) for the scheduled task count, scaled by NumProcs —
	// a classic sufficient (not necessary) condition the paper's
	// external coordinator cites for maintaining schedulability.
	LLBound float64
	// ApolloLoads is the per-processor demand under Apollo block binding.
	ApolloLoads []float64
	// SinkLatencies maps each sink task to the nominal end-to-end
	// latency along its primary chain (capture + execution, no queueing).
	SinkLatencies map[dag.TaskID]simtime.Duration
}

// Feasible reports whether the total demand fits the processor pool.
func (r *Report) Feasible() bool {
	return r.TotalUtilization <= float64(r.NumProcs)
}

// WithinLLBound reports whether the demand sits under the Liu & Layland
// sufficient bound.
func (r *Report) WithinLLBound() bool { return r.TotalUtilization <= r.LLBound }

// ApolloFeasible reports whether every bound processor's demand fits.
func (r *Report) ApolloFeasible() bool {
	for _, l := range r.ApolloLoads {
		if l > 1 {
			return false
		}
	}
	return true
}

// Overloaded returns the indices of Apollo processors with demand > 1.
func (r *Report) Overloaded() []int {
	var out []int
	for i, l := range r.ApolloLoads {
		if l > 1 {
			out = append(out, i)
		}
	}
	return out
}

// Options tunes Analyze.
type Options struct {
	// Scene is the driving scene to analyse at (zero value: nominal).
	Scene exectime.Scene
	// NumProcs is the processor count (default 2).
	NumProcs int
	// NumLabels is the Apollo binding-label space (default 4).
	NumLabels int
	// Samples is the execution-time sample count per task (default 256).
	Samples int
	// Seed seeds the sampling RNG.
	Seed int64
}

// Analyze computes the schedulability report for a validated graph.
func Analyze(g *dag.Graph, opts Options) (*Report, error) {
	if g == nil {
		return nil, errors.New("analysis: nil graph")
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	if opts.NumProcs == 0 {
		opts.NumProcs = 2
	}
	if opts.NumProcs < 1 {
		return nil, fmt.Errorf("analysis: NumProcs %d < 1", opts.NumProcs)
	}
	if opts.NumLabels <= 0 {
		opts.NumLabels = 4
	}
	if opts.Samples <= 0 {
		opts.Samples = 256
	}
	if opts.Scene == (exectime.Scene{}) {
		opts.Scene = exectime.NominalScene()
	}

	cadences, err := Cadences(g)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	rep := &Report{
		NumProcs:      opts.NumProcs,
		ApolloLoads:   make([]float64, opts.NumProcs),
		SinkLatencies: make(map[dag.TaskID]simtime.Duration),
	}
	scheduled := 0
	for _, t := range g.Tasks() {
		exec := ExpectedExec(t.Exec, opts.Scene, opts.Samples, rng)
		row := TaskReport{
			Task:         t,
			Cadence:      cadences[t.ID],
			ExpectedExec: exec,
			Processor:    blockProcessor(t.Processor, opts.NumProcs, opts.NumLabels),
		}
		if len(g.Predecessors(t.ID)) > 0 { // sources run off-CPU
			row.Utilization = row.Cadence * float64(exec)
			scheduled++
			rep.TotalUtilization += row.Utilization
			if row.Processor >= 0 {
				rep.ApolloLoads[row.Processor] += row.Utilization
			}
		}
		rep.Tasks = append(rep.Tasks, row)
	}
	if scheduled > 0 {
		n := float64(scheduled)
		rep.LLBound = n * (math.Pow(2, 1/n) - 1) * float64(opts.NumProcs)
	}

	// Nominal end-to-end latency along each sink's primary chain.
	for _, sink := range g.Sinks() {
		var latency simtime.Duration
		id := sink.ID
		for id >= 0 {
			t := g.Task(id)
			latency += ExpectedExec(t.Exec, opts.Scene, opts.Samples, rng)
			id = g.PrimaryPred(id)
		}
		rep.SinkLatencies[sink.ID] = latency
	}
	return rep, nil
}

// Cadences derives each task's effective release rate: sources release at
// their configured rate; a derived task fires at the rate of its primary
// chain's root source.
func Cadences(g *dag.Graph) (map[dag.TaskID]float64, error) {
	if g == nil {
		return nil, errors.New("analysis: nil graph")
	}
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	out := make(map[dag.TaskID]float64, len(topo))
	for _, id := range topo {
		if p := g.PrimaryPred(id); p >= 0 {
			out[id] = out[p]
		} else {
			out[id] = g.Task(id).Rate
		}
	}
	return out, nil
}

// ExpectedExec estimates a model's mean execution time at a scene by
// seeded Monte-Carlo sampling (deterministic for a given rng state).
func ExpectedExec(m exectime.Model, scene exectime.Scene, samples int, rng *rand.Rand) simtime.Duration {
	if samples <= 1 {
		return m.Nominal()
	}
	var sum simtime.Duration
	for i := 0; i < samples; i++ {
		sum += m.Sample(rng, 0, scene)
	}
	return sum / simtime.Duration(samples)
}

// blockProcessor mirrors sched.Apollo's contiguous block mapping.
func blockProcessor(label, numProcs, numLabels int) int {
	if label < 1 || numProcs <= 0 {
		return -1
	}
	return ((label - 1) % numLabels) * numProcs / numLabels
}

// BottleneckChain returns the sink with the largest nominal primary-chain
// latency and that latency; useful for spotting which pipeline dominates
// the end-to-end budget.
func (r *Report) BottleneckChain() (dag.TaskID, simtime.Duration) {
	bestID := dag.TaskID(-1)
	var best simtime.Duration
	ids := make([]int, 0, len(r.SinkLatencies))
	for id := range r.SinkLatencies {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		if l := r.SinkLatencies[dag.TaskID(id)]; l > best {
			best = l
			bestID = dag.TaskID(id)
		}
	}
	return bestID, best
}
