package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hcperf/internal/dag"
	"hcperf/internal/exectime"
	"hcperf/internal/simtime"
)

const ms = simtime.Millisecond

// chain builds src(rate) -> a -> b with constant exec times.
func chain(t *testing.T, rate float64, aExec, bExec simtime.Duration) *dag.Graph {
	t.Helper()
	g := dag.New()
	add := func(task dag.Task) {
		if _, err := g.AddTask(task); err != nil {
			t.Fatal(err)
		}
	}
	add(dag.Task{Name: "src", Priority: 3, RelDeadline: 50 * ms, Rate: rate, MinRate: rate, MaxRate: rate, Exec: exectime.Constant(1 * ms)})
	add(dag.Task{Name: "a", Priority: 2, RelDeadline: 50 * ms, Processor: 1, Exec: exectime.Constant(aExec)})
	add(dag.Task{Name: "b", Priority: 1, RelDeadline: 50 * ms, Processor: 3, IsControl: true, Exec: exectime.Constant(bExec)})
	for _, e := range [][2]string{{"src", "a"}, {"a", "b"}} {
		if err := g.AddEdgeByName(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCadencesFollowPrimaryChain(t *testing.T) {
	g := chain(t, 20, 5*ms, 2*ms)
	cad, err := Cadences(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"src", "a", "b"} {
		id := g.TaskByName(name).ID
		if cad[id] != 20 {
			t.Errorf("cadence of %s = %v, want 20", name, cad[id])
		}
	}
}

func TestCadencesMultiRoot(t *testing.T) {
	// Two sources at different rates; fusion's primary is the first edge.
	g := dag.New()
	add := func(task dag.Task) {
		if _, err := g.AddTask(task); err != nil {
			t.Fatal(err)
		}
	}
	add(dag.Task{Name: "fast", Priority: 3, RelDeadline: 50 * ms, Rate: 30, MinRate: 30, MaxRate: 30, Exec: exectime.Constant(1 * ms)})
	add(dag.Task{Name: "slow", Priority: 4, RelDeadline: 50 * ms, Rate: 5, MinRate: 5, MaxRate: 5, Exec: exectime.Constant(1 * ms)})
	add(dag.Task{Name: "fusion", Priority: 2, RelDeadline: 50 * ms, Exec: exectime.Constant(2 * ms)})
	for _, e := range [][2]string{{"slow", "fusion"}, {"fast", "fusion"}} {
		if err := g.AddEdgeByName(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	cad, err := Cadences(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := cad[g.TaskByName("fusion").ID]; got != 5 {
		t.Errorf("fusion cadence %v, want 5 (slow primary)", got)
	}
}

func TestAnalyzeUtilization(t *testing.T) {
	// src at 10 Hz (off-CPU), a = 20ms, b = 10ms: scheduled demand =
	// 10 * 0.030 = 0.30 CPU.
	g := chain(t, 10, 20*ms, 10*ms)
	rep, err := Analyze(g, Options{NumProcs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.TotalUtilization-0.30) > 1e-9 {
		t.Errorf("TotalUtilization = %v, want 0.30", rep.TotalUtilization)
	}
	if !rep.Feasible() {
		t.Error("0.30 on 2 procs reported infeasible")
	}
	// Source contributes no utilization.
	for _, row := range rep.Tasks {
		if row.Task.Name == "src" && row.Utilization != 0 {
			t.Errorf("source utilization %v, want 0 (off-CPU)", row.Utilization)
		}
	}
}

func TestAnalyzeApolloLoads(t *testing.T) {
	g := chain(t, 10, 20*ms, 10*ms)
	rep, err := Analyze(g, Options{NumProcs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Label 1 -> proc 0 (a: 0.2), label 3 -> proc 1 (b: 0.1).
	if math.Abs(rep.ApolloLoads[0]-0.2) > 1e-9 || math.Abs(rep.ApolloLoads[1]-0.1) > 1e-9 {
		t.Errorf("ApolloLoads = %v, want [0.2 0.1]", rep.ApolloLoads)
	}
	if !rep.ApolloFeasible() || len(rep.Overloaded()) != 0 {
		t.Error("light binding reported overloaded")
	}
}

func TestAnalyzeDetectsOverload(t *testing.T) {
	// 30 Hz x 60ms = 1.8 CPU on task a alone (label 1 -> proc 0),
	// exceeding both the processor and the LL bound (~1.66 for n=2, M=2).
	g := chain(t, 30, 60*ms, 1*ms)
	rep, err := Analyze(g, Options{NumProcs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ApolloFeasible() {
		t.Error("overloaded binding reported feasible")
	}
	over := rep.Overloaded()
	if len(over) != 1 || over[0] != 0 {
		t.Errorf("Overloaded = %v, want [0]", over)
	}
	if rep.WithinLLBound() {
		t.Error("1.83 CPU within LL bound?")
	}
}

func TestAnalyzeSinkLatency(t *testing.T) {
	g := chain(t, 10, 20*ms, 10*ms)
	rep, err := Analyze(g, Options{NumProcs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sink := g.TaskByName("b").ID
	want := 31 * ms // 1 + 20 + 10
	if got := rep.SinkLatencies[sink]; math.Abs(float64(got-want)) > 1e-9 {
		t.Errorf("sink latency %v, want %v", got, want)
	}
	id, lat := rep.BottleneckChain()
	if id != sink || lat != rep.SinkLatencies[sink] {
		t.Errorf("BottleneckChain = %v,%v", id, lat)
	}
}

func TestAnalyzeAD23(t *testing.T) {
	g, err := dag.ADGraph23()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(g, Options{NumProcs: 2, Seed: 1, Scene: exectime.Scene{Obstacles: 11, LoadFactor: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalUtilization <= 0 || rep.TotalUtilization > 2 {
		t.Errorf("AD23 nominal utilization %v out of (0,2]", rep.TotalUtilization)
	}
	// The complex scene must demand visibly more.
	busy, err := Analyze(g, Options{NumProcs: 2, Seed: 1, Scene: exectime.Scene{Obstacles: 23, LoadFactor: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if busy.TotalUtilization <= rep.TotalUtilization*1.1 {
		t.Errorf("complex scene utilization %v not >> nominal %v", busy.TotalUtilization, rep.TotalUtilization)
	}
	// The control chain is the bottleneck chain.
	id, lat := rep.BottleneckChain()
	if g.Task(id).Name != "control" {
		t.Errorf("bottleneck sink = %s, want control", g.Task(id).Name)
	}
	if lat <= 0 || lat > 200*ms {
		t.Errorf("control chain nominal latency %v out of range", lat)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(nil, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	g := chain(t, 10, 1*ms, 1*ms)
	if _, err := Analyze(g, Options{NumProcs: -1}); err == nil {
		t.Error("negative procs accepted")
	}
}

func TestExpectedExecDeterministic(t *testing.T) {
	m, err := exectime.NewUniform(10*ms, 20*ms)
	if err != nil {
		t.Fatal(err)
	}
	a := ExpectedExec(m, exectime.NominalScene(), 512, rand.New(rand.NewSource(7)))
	b := ExpectedExec(m, exectime.NominalScene(), 512, rand.New(rand.NewSource(7)))
	if a != b {
		t.Errorf("same-seed estimates differ: %v vs %v", a, b)
	}
	if a < 13*ms || a > 17*ms {
		t.Errorf("estimate %v far from the 15ms mean", a)
	}
	if got := ExpectedExec(m, exectime.NominalScene(), 1, nil); got != m.Nominal() {
		t.Errorf("single-sample estimate %v, want nominal", got)
	}
}

// Property: utilization scales linearly with the source rate.
func TestQuickUtilizationLinearInRate(t *testing.T) {
	f := func(rateRaw uint8) bool {
		rate := float64(rateRaw%50) + 1
		g := dag.New()
		if _, err := g.AddTask(dag.Task{Name: "s", Priority: 2, RelDeadline: 50 * ms, Rate: rate, MinRate: rate, MaxRate: rate, Exec: exectime.Constant(1 * ms)}); err != nil {
			return false
		}
		if _, err := g.AddTask(dag.Task{Name: "w", Priority: 1, RelDeadline: 50 * ms, Exec: exectime.Constant(10 * ms)}); err != nil {
			return false
		}
		if err := g.AddEdgeByName("s", "w"); err != nil {
			return false
		}
		if err := g.Validate(); err != nil {
			return false
		}
		rep, err := Analyze(g, Options{NumProcs: 1, Seed: 1})
		if err != nil {
			return false
		}
		return math.Abs(rep.TotalUtilization-rate*0.010) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
