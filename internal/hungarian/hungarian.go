// Package hungarian implements the Hungarian (Kuhn-Munkres) assignment
// algorithm in O(n^3).
//
// HCPerf's motivating observation is that the configurable sensor-fusion
// task runs Hungarian matching over the n obstacles detected at runtime, so
// its execution time scales with scene complexity. This package provides
// both the real algorithm (used by the execution-time model and the
// wall-clock "hardware" executor to generate genuinely scene-dependent
// compute) and a cost-model helper used by the discrete-event simulator.
package hungarian

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSquare is returned when the cost matrix is ragged or empty rows are
// mixed with non-empty ones.
var ErrNotSquare = errors.New("hungarian: cost matrix must be square")

// Solve computes a minimum-cost perfect matching on the square cost matrix
// cost (cost[i][j] = cost of assigning row i to column j). It returns the
// assignment as a slice where assignment[i] is the column matched to row i,
// along with the total cost.
//
// The implementation is the classic O(n^3) potential-based algorithm.
// An empty matrix yields an empty assignment and zero cost.
func Solve(cost [][]float64) (assignment []int, total float64, err error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	for i, row := range cost {
		if len(row) != n {
			return nil, 0, fmt.Errorf("%w: row %d has %d columns, want %d", ErrNotSquare, i, len(row), n)
		}
		for j, c := range row {
			if math.IsNaN(c) {
				return nil, 0, fmt.Errorf("hungarian: NaN cost at (%d,%d)", i, j)
			}
		}
	}

	// Potentials u (rows) and v (columns), and matching p: p[j] = row
	// matched to column j. Index 0 is a sentinel; rows/cols are 1-based
	// internally.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)
	way := make([]int, n+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := -1
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}

	assignment = make([]int, n)
	for j := 1; j <= n; j++ {
		assignment[p[j]-1] = j - 1
	}
	for i := 0; i < n; i++ {
		total += cost[i][assignment[i]]
	}
	return assignment, total, nil
}

// SolveRect computes a minimum-cost matching for a rectangular rows x cols
// cost matrix by padding the smaller dimension with zero-cost dummies.
// assignment[i] is the column matched to row i, or -1 if row i is matched
// to a dummy column.
func SolveRect(cost [][]float64) (assignment []int, total float64, err error) {
	rows := len(cost)
	if rows == 0 {
		return nil, 0, nil
	}
	cols := len(cost[0])
	for i, row := range cost {
		if len(row) != cols {
			return nil, 0, fmt.Errorf("%w: row %d has %d columns, want %d", ErrNotSquare, i, len(row), cols)
		}
	}
	n := rows
	if cols > n {
		n = cols
	}
	padded := make([][]float64, n)
	for i := range padded {
		padded[i] = make([]float64, n)
		if i < rows {
			copy(padded[i], cost[i])
		}
	}
	full, _, err := Solve(padded)
	if err != nil {
		return nil, 0, err
	}
	assignment = make([]int, rows)
	for i := 0; i < rows; i++ {
		j := full[i]
		if j >= cols {
			assignment[i] = -1
			continue
		}
		assignment[i] = j
		total += cost[i][j]
	}
	return assignment, total, nil
}

// Ops returns the approximate number of elementary operations the O(n^3)
// algorithm performs for an n x n problem. The execution-time model uses
// this to convert "n obstacles detected" into simulated compute time; the
// calibration constant lives in package exectime.
func Ops(n int) float64 {
	if n <= 0 {
		return 0
	}
	f := float64(n)
	return f * f * f
}
