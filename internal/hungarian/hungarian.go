// Package hungarian implements the Hungarian (Kuhn-Munkres) assignment
// algorithm in O(n^3).
//
// HCPerf's motivating observation is that the configurable sensor-fusion
// task runs Hungarian matching over the n obstacles detected at runtime, so
// its execution time scales with scene complexity. This package provides
// both the real algorithm (used by the execution-time model and the
// wall-clock "hardware" executor to generate genuinely scene-dependent
// compute) and a cost-model helper used by the discrete-event simulator.
//
// Repeated solves on the hot path should go through a Solver, which keeps
// its workspace across calls and allocates nothing in steady state; the
// package-level Solve and SolveRect are one-shot wrappers around a fresh
// Solver.
package hungarian

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSquare is returned when the cost matrix is ragged or empty rows are
// mixed with non-empty ones.
var ErrNotSquare = errors.New("hungarian: cost matrix must be square")

// Solver runs Hungarian matchings with a reusable workspace: potentials,
// augmenting-path state and the assignment buffer are kept across calls, so
// repeated solves of same-sized (or shrinking) problems allocate nothing.
// The zero value is ready to use. A Solver is not safe for concurrent use.
type Solver struct {
	u, v   []float64 // row/column potentials (1-based, index 0 sentinel)
	p, way []int     // matching and alternating-path back-pointers
	minv   []float64 // per-column minimum reduced cost
	used   []bool    // columns visited by the current augmenting search

	assign []int // assignment buffer returned by Solve

	// Rectangular-solve workspace: the square padded matrix is carved out
	// of one flat buffer, and the rectangular assignment gets its own
	// buffer because assign is occupied by the padded solution.
	padded     [][]float64
	padBuf     []float64
	rectAssign []int
}

// NewSolver returns an empty Solver. Equivalent to new(Solver); provided for
// symmetry with the rest of the codebase's constructors.
func NewSolver() *Solver { return &Solver{} }

// grow ensures the square-solve workspace covers an n x n problem.
func (s *Solver) grow(n int) {
	if cap(s.u) >= n+1 {
		s.u = s.u[:n+1]
		s.v = s.v[:n+1]
		s.p = s.p[:n+1]
		s.way = s.way[:n+1]
		s.minv = s.minv[:n+1]
		s.used = s.used[:n+1]
		return
	}
	s.u = make([]float64, n+1)
	s.v = make([]float64, n+1)
	s.p = make([]int, n+1)
	s.way = make([]int, n+1)
	s.minv = make([]float64, n+1)
	s.used = make([]bool, n+1)
}

// Solve computes a minimum-cost perfect matching on the square cost matrix
// cost (cost[i][j] = cost of assigning row i to column j). It returns the
// assignment as a slice where assignment[i] is the column matched to row i,
// along with the total cost.
//
// The implementation is the classic O(n^3) potential-based algorithm. An
// empty matrix yields an empty assignment and zero cost. The returned slice
// is owned by the Solver and overwritten by its next call; copy it if it
// must outlive the next solve.
func (s *Solver) Solve(cost [][]float64) (assignment []int, total float64, err error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	for i, row := range cost {
		if len(row) != n {
			return nil, 0, fmt.Errorf("%w: row %d has %d columns, want %d", ErrNotSquare, i, len(row), n)
		}
		for j, c := range row {
			if math.IsNaN(c) {
				return nil, 0, fmt.Errorf("hungarian: NaN cost at (%d,%d)", i, j)
			}
		}
	}

	// Potentials u (rows) and v (columns), and matching p: p[j] = row
	// matched to column j. Index 0 is a sentinel; rows/cols are 1-based
	// internally.
	s.grow(n)
	// Reslicing the workspace to exactly n+1 here (not just inside grow)
	// lets the compiler prove every 0..n index below is in bounds, matching
	// the bounds-check elimination a fresh make([]T, n+1) would get.
	u, v := s.u[:n+1], s.v[:n+1]
	p, way := s.p[:n+1], s.way[:n+1]
	minv, used := s.minv[:n+1], s.used[:n+1]
	for j := 0; j <= n; j++ {
		u[j], v[j] = 0, 0
		p[j], way[j] = 0, 0
	}

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := 0; j <= n; j++ {
			minv[j] = math.Inf(1)
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			// Hoist the loop invariants: u[i0] and the cost row do not
			// change inside the scan, but the compiler cannot prove the
			// persistent workspace doesn't alias them, so left in place
			// they would be reloaded on every iteration.
			ui0 := u[i0]
			row := cost[i0-1]
			delta := math.Inf(1)
			j1 := -1
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := row[j-1] - ui0 - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}

	if cap(s.assign) < n {
		s.assign = make([]int, n)
	}
	assignment = s.assign[:n]
	for j := 1; j <= n; j++ {
		assignment[p[j]-1] = j - 1
	}
	for i := 0; i < n; i++ {
		total += cost[i][assignment[i]]
	}
	return assignment, total, nil
}

// SolveRect computes a minimum-cost matching for a rectangular rows x cols
// cost matrix by padding the smaller dimension with zero-cost dummies.
// assignment[i] is the column matched to row i, or -1 if row i is matched
// to a dummy column. Like Solve, the returned slice is owned by the Solver
// and overwritten by its next call.
func (s *Solver) SolveRect(cost [][]float64) (assignment []int, total float64, err error) {
	rows := len(cost)
	if rows == 0 {
		return nil, 0, nil
	}
	cols := len(cost[0])
	for i, row := range cost {
		if len(row) != cols {
			return nil, 0, fmt.Errorf("%w: row %d has %d columns, want %d", ErrNotSquare, i, len(row), cols)
		}
	}
	n := rows
	if cols > n {
		n = cols
	}
	if cap(s.padBuf) < n*n {
		s.padBuf = make([]float64, n*n)
		s.padded = make([][]float64, 0, n)
	}
	buf := s.padBuf[:n*n]
	for k := range buf {
		buf[k] = 0
	}
	padded := s.padded[:0]
	for i := 0; i < n; i++ {
		row := buf[i*n : (i+1)*n]
		if i < rows {
			copy(row, cost[i])
		}
		padded = append(padded, row)
	}
	s.padded = padded
	full, _, err := s.Solve(padded)
	if err != nil {
		return nil, 0, err
	}
	if cap(s.rectAssign) < rows {
		s.rectAssign = make([]int, rows)
	}
	assignment = s.rectAssign[:rows]
	for i := 0; i < rows; i++ {
		j := full[i]
		if j >= cols {
			assignment[i] = -1
			continue
		}
		assignment[i] = j
		total += cost[i][j]
	}
	return assignment, total, nil
}

// Solve computes a minimum-cost perfect matching on the square cost matrix
// cost with a one-shot Solver; see Solver.Solve. The returned assignment is
// freshly allocated and owned by the caller.
func Solve(cost [][]float64) (assignment []int, total float64, err error) {
	var s Solver
	return s.Solve(cost)
}

// SolveRect computes a minimum-cost matching for a rectangular cost matrix
// with a one-shot Solver; see Solver.SolveRect. The returned assignment is
// freshly allocated and owned by the caller.
func SolveRect(cost [][]float64) (assignment []int, total float64, err error) {
	var s Solver
	return s.SolveRect(cost)
}

// Ops returns the approximate number of elementary operations the O(n^3)
// algorithm performs for an n x n problem. The execution-time model uses
// this to convert "n obstacles detected" into simulated compute time; the
// calibration constant lives in package exectime.
func Ops(n int) float64 {
	if n <= 0 {
		return 0
	}
	f := float64(n)
	return f * f * f
}
