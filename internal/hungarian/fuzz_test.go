package hungarian

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzHungarian cross-checks Solve against exhaustive brute force on small
// matrices: the returned assignment must be a valid permutation, the
// returned total must equal the cost of that assignment, and it must match
// the true optimum — in particular it can never beat brute force, which
// would indicate the solver returned an infeasible matching.
func FuzzHungarian(f *testing.F) {
	f.Add(uint8(1), int64(1), false)
	f.Add(uint8(3), int64(42), false)
	f.Add(uint8(4), int64(7), true)
	f.Add(uint8(5), int64(99), true)
	f.Add(uint8(200), int64(-3), false) // size wraps to 1..5
	f.Fuzz(func(t *testing.T, sizeByte uint8, seed int64, negatives bool) {
		n := int(sizeByte)%5 + 1
		rng := rand.New(rand.NewSource(seed))
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				c := rng.Float64() * 10
				if negatives {
					c -= 5
				}
				cost[i][j] = c
			}
		}

		assignment, total, err := Solve(cost)
		if err != nil {
			t.Fatalf("Solve failed on valid %dx%d matrix: %v", n, n, err)
		}
		if len(assignment) != n {
			t.Fatalf("assignment length %d, want %d", len(assignment), n)
		}
		seen := make([]bool, n)
		recomputed := 0.0
		for i, j := range assignment {
			if j < 0 || j >= n {
				t.Fatalf("assignment[%d] = %d out of range [0,%d)", i, j, n)
			}
			if seen[j] {
				t.Fatalf("assignment is not a permutation: column %d matched twice", j)
			}
			seen[j] = true
			recomputed += cost[i][j]
		}
		const eps = 1e-9
		if math.Abs(recomputed-total) > eps {
			t.Fatalf("returned total %v does not match assignment cost %v", total, recomputed)
		}

		best := bruteForceMin(cost)
		if total < best-eps {
			t.Fatalf("total %v beats brute-force optimum %v: matching must be infeasible", total, best)
		}
		if total > best+eps {
			t.Fatalf("total %v is suboptimal: brute-force optimum is %v", total, best)
		}
	})
}

// bruteForceMin finds the optimal assignment cost by trying all n!
// permutations (n <= 5 keeps this at 120 candidates).
func bruteForceMin(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var recurse func(k int)
	recurse = func(k int) {
		if k == n {
			sum := 0.0
			for i, j := range perm {
				sum += cost[i][j]
			}
			if sum < best {
				best = sum
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			recurse(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	recurse(0)
	return best
}
