package hungarian

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnownCases(t *testing.T) {
	tests := []struct {
		name      string
		cost      [][]float64
		wantTotal float64
	}{
		{
			name:      "1x1",
			cost:      [][]float64{{7}},
			wantTotal: 7,
		},
		{
			name: "2x2 diagonal optimal",
			cost: [][]float64{
				{1, 100},
				{100, 1},
			},
			wantTotal: 2,
		},
		{
			name: "2x2 anti-diagonal optimal",
			cost: [][]float64{
				{100, 1},
				{1, 100},
			},
			wantTotal: 2,
		},
		{
			name: "3x3 classic",
			cost: [][]float64{
				{4, 1, 3},
				{2, 0, 5},
				{3, 2, 2},
			},
			wantTotal: 5, // (0,1)=1 + (1,0)=2 + (2,2)=2
		},
		{
			name: "4x4 with negatives",
			cost: [][]float64{
				{-5, 3, 3, 3},
				{3, -5, 3, 3},
				{3, 3, -5, 3},
				{3, 3, 3, -5},
			},
			wantTotal: -20,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, total, err := Solve(tt.cost)
			if err != nil {
				t.Fatal(err)
			}
			if total != tt.wantTotal {
				t.Errorf("total = %v, want %v", total, tt.wantTotal)
			}
			if !isPermutation(got) {
				t.Errorf("assignment %v is not a permutation", got)
			}
		})
	}
}

func TestSolveEmpty(t *testing.T) {
	got, total, err := Solve(nil)
	if err != nil || got != nil || total != 0 {
		t.Errorf("Solve(nil) = %v, %v, %v; want nil, 0, nil", got, total, err)
	}
}

func TestSolveRagged(t *testing.T) {
	_, _, err := Solve([][]float64{{1, 2}, {3}})
	if err == nil {
		t.Error("ragged matrix accepted, want error")
	}
}

func TestSolveNaN(t *testing.T) {
	_, _, err := Solve([][]float64{{math.NaN()}})
	if err == nil {
		t.Error("NaN cost accepted, want error")
	}
}

func TestSolveRect(t *testing.T) {
	// 2 rows (tracks), 3 columns (detections): every row must match.
	cost := [][]float64{
		{5, 1, 9},
		{2, 8, 2},
	}
	got, total, err := SolveRect(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 { // row0->col1 (1) + row1->col0 or col2 (2)
		t.Errorf("total = %v, want 3", total)
	}
	seen := make(map[int]bool)
	for i, j := range got {
		if j == -1 {
			continue
		}
		if seen[j] {
			t.Errorf("column %d assigned twice (row %d)", j, i)
		}
		seen[j] = true
	}
}

func TestSolveRectMoreRowsThanCols(t *testing.T) {
	cost := [][]float64{
		{1},
		{2},
		{3},
	}
	got, total, err := SolveRect(cost)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one row gets the single real column, and the cheapest
	// assignment puts row 0 there.
	real := 0
	for _, j := range got {
		if j != -1 {
			real++
		}
	}
	if real != 1 {
		t.Errorf("%d rows matched real columns, want 1 (got %v)", real, got)
	}
	if total != 1 {
		t.Errorf("total = %v, want 1", total)
	}
}

func TestSolveRectEmptyAndRagged(t *testing.T) {
	if got, total, err := SolveRect(nil); err != nil || got != nil || total != 0 {
		t.Errorf("SolveRect(nil) = %v, %v, %v", got, total, err)
	}
	if _, _, err := SolveRect([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rect matrix accepted, want error")
	}
}

func TestOps(t *testing.T) {
	tests := []struct {
		n    int
		want float64
	}{
		{n: -1, want: 0},
		{n: 0, want: 0},
		{n: 1, want: 1},
		{n: 10, want: 1000},
	}
	for _, tt := range tests {
		if got := Ops(tt.n); got != tt.want {
			t.Errorf("Ops(%d) = %v, want %v", tt.n, got, tt.want)
		}
	}
}

// bruteForce finds the optimal assignment by enumerating permutations.
func bruteForce(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var recurse func(k int)
	recurse = func(k int) {
		if k == n {
			sum := 0.0
			for i, j := range perm {
				sum += cost[i][j]
			}
			if sum < best {
				best = sum
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			recurse(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	recurse(0)
	return best
}

// Property: Solve matches brute force on random small matrices.
func TestQuickSolveOptimal(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := int(size%6) + 1
		rng := rand.New(rand.NewSource(seed))
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = math.Round(rng.Float64()*200-100) / 4
			}
		}
		got, total, err := Solve(cost)
		if err != nil || !isPermutation(got) {
			return false
		}
		return math.Abs(total-bruteForce(cost)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func isPermutation(xs []int) bool {
	seen := make([]bool, len(xs))
	for _, x := range xs {
		if x < 0 || x >= len(xs) || seen[x] {
			return false
		}
		seen[x] = true
	}
	return true
}

func BenchmarkSolve(b *testing.B) {
	for _, n := range []int{8, 32, 64} {
		b.Run(sizeName(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			cost := make([][]float64, n)
			for i := range cost {
				cost[i] = make([]float64, n)
				for j := range cost[i] {
					cost[i][j] = rng.Float64()
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := Solve(cost); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	switch n {
	case 8:
		return "n=8"
	case 32:
		return "n=32"
	default:
		return "n=64"
	}
}
