package engine

import (
	"math"
	"testing"

	"hcperf/internal/bus"
	"hcperf/internal/dag"
	"hcperf/internal/exectime"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
)

const ms = simtime.Millisecond

// chainGraph builds source -> middle -> control with constant exec times.
func chainGraph(t *testing.T, srcExec, midExec, ctlExec, midDeadline simtime.Duration) *dag.Graph {
	t.Helper()
	g := dag.New()
	add := func(task dag.Task) *dag.Task {
		out, err := g.AddTask(task)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	add(dag.Task{
		Name: "source", Priority: 3, RelDeadline: 50 * ms,
		Rate: 10, MinRate: 5, MaxRate: 20,
		Exec: exectime.Constant(srcExec),
	})
	add(dag.Task{
		Name: "middle", Priority: 2, RelDeadline: midDeadline,
		Exec: exectime.Constant(midExec),
	})
	add(dag.Task{
		Name: "control", Priority: 1, RelDeadline: 50 * ms, IsControl: true,
		Exec: exectime.Constant(ctlExec),
	})
	for _, e := range [][2]string{{"source", "middle"}, {"middle", "control"}} {
		if err := g.AddEdgeByName(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func newEngine(t *testing.T, g *dag.Graph, cfg Config) (*Engine, *simtime.EventQueue) {
	t.Helper()
	q := simtime.NewEventQueue()
	cfg.Graph = g
	cfg.Queue = q
	if cfg.Scheduler == nil {
		cfg.Scheduler = sched.EDF{}
	}
	if cfg.NumProcs == 0 {
		cfg.NumProcs = 2
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, q
}

func TestConfigValidation(t *testing.T) {
	g := chainGraph(t, 1*ms, 1*ms, 1*ms, 50*ms)
	q := simtime.NewEventQueue()
	tests := []struct {
		name string
		cfg  Config
	}{
		{name: "nil graph", cfg: Config{Scheduler: sched.EDF{}, NumProcs: 1, Queue: q}},
		{name: "nil scheduler", cfg: Config{Graph: g, NumProcs: 1, Queue: q}},
		{name: "zero procs", cfg: Config{Graph: g, Scheduler: sched.EDF{}, Queue: q}},
		{name: "nil queue", cfg: Config{Graph: g, Scheduler: sched.EDF{}, NumProcs: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestPipelineRunsEndToEnd(t *testing.T) {
	g := chainGraph(t, 2*ms, 5*ms, 1*ms, 50*ms)
	var cmds []ControlCommand
	e, q := newEngine(t, g, Config{OnControl: func(c ControlCommand) { cmds = append(cmds, c) }})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := q.RunUntil(1.001); err != nil {
		t.Fatal(err)
	}
	// Source at 10 Hz over ~1s: 11 releases (t=0..1.0). Each cycle flows
	// through middle and control (source is marked freshness-critical, so
	// SourceTime tracks the capture instant).
	st := e.Stats()
	if st.Missed != 0 {
		t.Fatalf("unexpected misses: %+v", st)
	}
	if len(cmds) < 10 {
		t.Fatalf("got %d control commands, want >= 10", len(cmds))
	}
	// Each command's timing: release of control job = source release +
	// 2ms + 5ms; response = 1ms; end-to-end = 8ms.
	c := cmds[0]
	if got := c.ResponseTime(); math.Abs(float64(got-1*ms)) > 1e-9 {
		t.Errorf("response time %v, want 1ms", got)
	}
	if got := c.EndToEndLatency(); math.Abs(float64(got-8*ms)) > 1e-9 {
		t.Errorf("end-to-end latency %v, want 8ms", got)
	}
	if c.SourceTime != 0 {
		t.Errorf("first command source time %v, want 0", c.SourceTime)
	}
	if e.Stats().ControlCommands != uint64(len(cmds)) {
		t.Errorf("ControlCommands counter %d != callback count %d", e.Stats().ControlCommands, len(cmds))
	}
}

func TestDeadlineMissDiscardsOutput(t *testing.T) {
	// middle takes 30ms against a 20ms deadline: always late, so control
	// must never run.
	g := chainGraph(t, 1*ms, 30*ms, 1*ms, 20*ms)
	e, q := newEngine(t, g, Config{})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := q.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.ControlCommands != 0 {
		t.Errorf("control ran %d times despite upstream misses", st.ControlCommands)
	}
	if st.Missed == 0 {
		t.Error("no misses recorded")
	}
	mid := g.TaskByName("middle")
	ts := e.TaskStats(mid.ID)
	if ts.Completed != 0 {
		t.Errorf("middle completed %d on time, want 0", ts.Completed)
	}
	if ts.Missed == 0 {
		t.Error("middle has no recorded misses")
	}
	ctl := g.TaskByName("control")
	if cs := e.TaskStats(ctl.ID); cs.Released != 0 {
		t.Errorf("control released %d times, want 0", cs.Released)
	}
}

func TestOverloadExpiresQueuedJobs(t *testing.T) {
	// Single processor, 90ms of scheduled work (middle) released every
	// 50ms: the queue backs up and queued jobs expire before they can
	// start. (Source tasks run off-CPU, so the load must sit on a
	// derived task.)
	g := chainGraph(t, 1*ms, 90*ms, 10*ms, 120*ms)
	g.TaskByName("source").Rate = 20
	e, q := newEngine(t, g, Config{NumProcs: 1})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := q.RunUntil(3); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Expired == 0 {
		t.Errorf("no queued jobs expired under overload: %+v", st)
	}
	if st.MissRatio() <= 0 {
		t.Error("miss ratio not positive under overload")
	}
}

func TestPrimaryTriggerSemantics(t *testing.T) {
	// Two sources at different rates feed a fusion task. Fusion is
	// data-triggered by its primary (first-listed) predecessor and reads
	// the other input at its latest value, so its cadence tracks the
	// primary's rate, not the slower input's.
	build := func(primaryFirst bool) (uint64, uint64) {
		g := dag.New()
		mustAdd := func(task dag.Task) {
			if _, err := g.AddTask(task); err != nil {
				t.Fatal(err)
			}
		}
		mustAdd(dag.Task{Name: "fast", Priority: 3, RelDeadline: 50 * ms, Rate: 20, MinRate: 20, MaxRate: 20, Exec: exectime.Constant(1 * ms)})
		mustAdd(dag.Task{Name: "slow", Priority: 4, RelDeadline: 250 * ms, Rate: 5, MinRate: 5, MaxRate: 5, Exec: exectime.Constant(1 * ms)})
		mustAdd(dag.Task{Name: "fusion", Priority: 2, RelDeadline: 80 * ms, Exec: exectime.Constant(2 * ms)})
		edges := [][2]string{{"fast", "fusion"}, {"slow", "fusion"}}
		if !primaryFirst {
			edges = [][2]string{{"slow", "fusion"}, {"fast", "fusion"}}
		}
		for _, e := range edges {
			if err := g.AddEdgeByName(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		e, q := newEngine(t, g, Config{})
		if err := e.Start(); err != nil {
			t.Fatal(err)
		}
		if err := q.RunUntil(2.001); err != nil {
			t.Fatal(err)
		}
		fusion := g.TaskByName("fusion")
		return e.TaskStats(fusion.ID).Released, e.Stats().Released
	}
	fastPrimary, _ := build(true)
	if fastPrimary < 38 {
		t.Errorf("fusion released %d times with fast primary, want ~41 (fast-triggered)", fastPrimary)
	}
	slowPrimary, _ := build(false)
	if slowPrimary > 12 {
		t.Errorf("fusion released %d times with slow primary, want ~11 (slow-triggered)", slowPrimary)
	}
}

func TestSetSourceRateClamped(t *testing.T) {
	g := chainGraph(t, 1*ms, 1*ms, 1*ms, 50*ms)
	e, _ := newEngine(t, g, Config{})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	src := g.TaskByName("source") // range [5,20]
	got, err := e.SetSourceRate(src.ID, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Errorf("rate clamped to %v, want 20", got)
	}
	got, err = e.SetSourceRate(src.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("rate clamped to %v, want 5", got)
	}
	if e.SourceRate(src.ID) != 5 {
		t.Errorf("SourceRate = %v, want 5", e.SourceRate(src.ID))
	}
	// Non-source task.
	mid := g.TaskByName("middle")
	if _, err := e.SetSourceRate(mid.ID, 10); err == nil {
		t.Error("SetSourceRate on non-source accepted")
	}
	if _, err := e.SetSourceRate(999, 10); err == nil {
		t.Error("SetSourceRate on unknown task accepted")
	}
}

func TestScaleSourceRates(t *testing.T) {
	g := chainGraph(t, 1*ms, 1*ms, 1*ms, 50*ms)
	e, _ := newEngine(t, g, Config{})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	src := g.TaskByName("source")
	if err := e.ScaleSourceRates(1.5); err != nil {
		t.Fatal(err)
	}
	if got := e.SourceRate(src.ID); got != 15 {
		t.Errorf("scaled rate = %v, want 15", got)
	}
	if err := e.ScaleSourceRates(0); err == nil {
		t.Error("zero factor accepted")
	}
	rates := e.SourceRates()
	if len(rates) != 1 || rates[src.ID] != 15 {
		t.Errorf("SourceRates = %v", rates)
	}
}

func TestRateChangeTakesEffect(t *testing.T) {
	g := chainGraph(t, 1*ms, 1*ms, 1*ms, 50*ms)
	e, q := newEngine(t, g, Config{})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := q.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	src := g.TaskByName("source")
	before := e.TaskStats(src.ID).Released
	if _, err := e.SetSourceRate(src.ID, 20); err != nil {
		t.Fatal(err)
	}
	if err := q.RunUntil(2); err != nil {
		t.Fatal(err)
	}
	during := e.TaskStats(src.ID).Released - before
	if during < 18 {
		t.Errorf("released %d jobs at 20 Hz over 1s, want >= 18", during)
	}
}

func TestWindowStatsReset(t *testing.T) {
	g := chainGraph(t, 1*ms, 1*ms, 1*ms, 50*ms)
	e, q := newEngine(t, g, Config{})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := q.RunUntil(0.5); err != nil {
		t.Fatal(err)
	}
	if e.WindowStats().Released == 0 {
		t.Fatal("window counters empty after activity")
	}
	total := e.Stats().Released
	e.ResetWindow()
	if e.WindowStats().Released != 0 {
		t.Error("ResetWindow did not clear window counters")
	}
	if e.Stats().Released != total {
		t.Error("ResetWindow disturbed total counters")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Stats {
		g := chainGraph(t, 2*ms, 5*ms, 1*ms, 40*ms)
		// Add jitter via a uniform model on middle to exercise the RNG.
		uni, err := exectime.NewUniform(3*ms, 8*ms)
		if err != nil {
			t.Fatal(err)
		}
		g.TaskByName("middle").Exec = uni
		e, q := newEngine(t, g, Config{Seed: 42})
		if err := e.Start(); err != nil {
			t.Fatal(err)
		}
		if err := q.RunUntil(5); err != nil {
			t.Fatal(err)
		}
		return e.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same-seed runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestBusPublication(t *testing.T) {
	g := chainGraph(t, 1*ms, 1*ms, 1*ms, 50*ms)
	b := bus.New()
	var got int
	if _, err := b.Subscribe(ControlTopic, func(_ string, m bus.Message) {
		if _, ok := m.(ControlCommand); !ok {
			t.Errorf("bus message type %T, want ControlCommand", m)
		}
		got++
	}); err != nil {
		t.Fatal(err)
	}
	e, q := newEngine(t, g, Config{Bus: b})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := q.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	if got == 0 {
		t.Error("no control commands on bus")
	}
	if uint64(got) != e.Stats().ControlCommands {
		t.Errorf("bus deliveries %d != counter %d", got, e.Stats().ControlCommands)
	}
}

type recordingObserver struct {
	sched.Scheduler
	calls int
}

func (r *recordingObserver) Recompute(simtime.Time, []*sched.Job, *sched.ProcState) { r.calls++ }

func TestQueueObserverNotified(t *testing.T) {
	g := chainGraph(t, 1*ms, 1*ms, 1*ms, 50*ms)
	obs := &recordingObserver{Scheduler: sched.EDF{}}
	e, q := newEngine(t, g, Config{Scheduler: obs})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := q.RunUntil(0.5); err != nil {
		t.Fatal(err)
	}
	if obs.calls == 0 {
		t.Error("queue observer never notified")
	}
	_ = e
}

func TestDynamicSchedulerIntegration(t *testing.T) {
	g := chainGraph(t, 2*ms, 5*ms, 1*ms, 40*ms)
	dyn := sched.NewDynamic(0.02)
	e, q := newEngine(t, g, Config{Scheduler: dyn})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := q.RunUntil(2); err != nil {
		t.Fatal(err)
	}
	if e.Stats().ControlCommands == 0 {
		t.Error("dynamic scheduler produced no control commands")
	}
	if dyn.GammaMax() <= 0 {
		t.Errorf("γmax = %v after light-load run, want > 0", dyn.GammaMax())
	}
}

func TestUtilizationBounds(t *testing.T) {
	g := chainGraph(t, 5*ms, 10*ms, 2*ms, 60*ms)
	e, q := newEngine(t, g, Config{NumProcs: 2})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if e.Utilization() != 0 {
		t.Errorf("utilization before start = %v, want 0", e.Utilization())
	}
	if err := q.RunUntil(2); err != nil {
		t.Fatal(err)
	}
	u := e.Utilization()
	if u <= 0 || u > 1 {
		t.Errorf("utilization %v outside (0,1]", u)
	}
}

func TestObservedExecUpdates(t *testing.T) {
	g := chainGraph(t, 2*ms, 5*ms, 1*ms, 50*ms)
	e, q := newEngine(t, g, Config{})
	src := g.TaskByName("source")
	if got := e.ObservedExec(src.ID); got != 2*ms {
		t.Errorf("initial observed exec %v, want nominal 2ms", got)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := q.RunUntil(0.2); err != nil {
		t.Fatal(err)
	}
	if got := e.ObservedExec(src.ID); got != 2*ms {
		t.Errorf("observed exec %v after constant-time runs, want 2ms", got)
	}
}

func TestStopHaltsReleases(t *testing.T) {
	g := chainGraph(t, 1*ms, 1*ms, 1*ms, 50*ms)
	e, q := newEngine(t, g, Config{})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err == nil {
		t.Error("second Start accepted")
	}
	if err := q.RunUntil(0.5); err != nil {
		t.Fatal(err)
	}
	e.Stop()
	before := e.Stats().Released
	if err := q.RunUntil(1.5); err != nil {
		t.Fatal(err)
	}
	// Derived jobs already in flight may still release, but no new
	// source cycles should start.
	src := g.TaskByName("source")
	after := e.TaskStats(src.ID).Released
	if after != uint64(0)+uint64(before+2)/3 && after > before {
		// The precise split between tasks varies; assert on the source.
		t.Logf("source released %d total", after)
	}
	srcReleased := e.TaskStats(src.ID).Released
	if err := q.RunUntil(2.5); err != nil {
		t.Fatal(err)
	}
	if e.TaskStats(src.ID).Released != srcReleased {
		t.Error("source kept releasing after Stop")
	}
}

func TestMissRatio(t *testing.T) {
	var s Stats
	if s.MissRatio() != 0 {
		t.Error("empty stats miss ratio should be 0")
	}
	s.Completed = 3
	s.Missed = 1
	if got := s.MissRatio(); got != 0.25 {
		t.Errorf("MissRatio = %v, want 0.25", got)
	}
}
