package engine

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"hcperf/internal/dag"
	"hcperf/internal/exectime"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
)

// randomGraph builds a random layered DAG with 2-4 sources and 1-2 sinks.
func randomGraph(rng *rand.Rand) (*dag.Graph, error) {
	g := dag.New()
	nLayers := rng.Intn(3) + 2
	var layers [][]dag.TaskID
	prio := 1
	total := 0
	for l := 0; l < nLayers; l++ {
		width := rng.Intn(3) + 1
		var layer []dag.TaskID
		for w := 0; w < width; w++ {
			total++
			t := dag.Task{
				Name:        fmt.Sprintf("t%d_%d", l, w),
				Priority:    prio,
				RelDeadline: simtime.Duration(0.02 + rng.Float64()*0.08),
				Exec:        exectime.Constant(simtime.Duration(0.001 + rng.Float64()*0.01)),
			}
			prio++
			if l == 0 {
				r := 5 + rng.Float64()*25
				t.Rate, t.MinRate, t.MaxRate = r, 5, 40
			}
			if l == nLayers-1 {
				t.IsControl = true
			}
			added, err := g.AddTask(t)
			if err != nil {
				return nil, err
			}
			layer = append(layer, added.ID)
		}
		layers = append(layers, layer)
	}
	// Every non-source task gets 1-2 predecessors from the previous layer.
	for l := 1; l < nLayers; l++ {
		for _, id := range layers[l] {
			prev := layers[l-1]
			first := prev[rng.Intn(len(prev))]
			if err := g.AddEdge(first, id); err != nil {
				return nil, err
			}
			if len(prev) > 1 && rng.Intn(2) == 0 {
				second := prev[rng.Intn(len(prev))]
				if second != first {
					if err := g.AddEdge(second, id); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	_ = total
	return g, nil
}

func schedulerFor(pick int) sched.Scheduler {
	switch pick % 5 {
	case 0:
		return sched.HPF{}
	case 1:
		return sched.EDF{}
	case 2:
		return sched.NewEDFVD(0.75)
	case 3:
		return sched.Apollo{}
	default:
		return sched.NewDynamic(0.02)
	}
}

// TestQuickEngineInvariants runs random graphs under random schedulers and
// checks the engine's accounting and timing invariants.
func TestQuickEngineInvariants(t *testing.T) {
	f := func(seed int64, pick uint8, procs uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := randomGraph(rng)
		if err != nil {
			t.Logf("graph: %v", err)
			return false
		}
		q := simtime.NewEventQueue()
		var decided uint64
		timingOK := true
		e, err := New(Config{
			Graph:      g,
			Scheduler:  schedulerFor(int(pick)),
			NumProcs:   int(procs%3) + 1,
			Queue:      q,
			Seed:       seed,
			MaxDataAge: 300 * ms,
			OnControl: func(cmd ControlCommand) {
				if cmd.SourceTime > cmd.Release || cmd.Release > cmd.Completed {
					timingOK = false
				}
				if cmd.ResponseTime() < 0 || cmd.EndToEndLatency() < 0 {
					timingOK = false
				}
			},
			OnJobDecided: func(now simtime.Time, j *sched.Job, missed bool) {
				decided++
				if missed && now < j.AbsDeadline && now != j.AbsDeadline && j.Release != j.AbsDeadline {
					// A miss decided before the deadline can only be
					// an invalid cycle (Release == AbsDeadline).
					timingOK = false
				}
			},
		})
		if err != nil {
			t.Logf("engine: %v", err)
			return false
		}
		if err := e.Start(); err != nil {
			t.Logf("start: %v", err)
			return false
		}
		if err := q.RunUntil(3); err != nil {
			t.Logf("run: %v", err)
			return false
		}
		e.Stop()
		// Drain everything in flight.
		if err := q.RunUntil(10); err != nil {
			t.Logf("drain: %v", err)
			return false
		}

		st := e.Stats()
		if !timingOK {
			t.Log("timing invariant violated")
			return false
		}
		// Conservation: every released job is decided or still queued.
		if st.Released != st.Completed+st.Missed+uint64(e.QueueLen()) {
			t.Logf("conservation: released=%d completed=%d missed=%d queued=%d",
				st.Released, st.Completed, st.Missed, e.QueueLen())
			return false
		}
		// Every decision callback corresponds to a decided job.
		if decided > st.Completed+st.Missed {
			t.Logf("decided callbacks %d exceed decided jobs %d", decided, st.Completed+st.Missed)
			return false
		}
		if r := st.MissRatio(); r < 0 || r > 1 {
			t.Logf("miss ratio %v", r)
			return false
		}
		if r := st.E2EMissRatio(); r < 0 || r > 1 {
			t.Logf("e2e miss ratio %v", r)
			return false
		}
		if u := e.Utilization(); u < 0 || u > 1+1e-9 {
			t.Logf("utilization %v", u)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickEngineDeterminism: identical (graph seed, engine seed, policy)
// yield identical statistics.
func TestQuickEngineDeterminism(t *testing.T) {
	f := func(seed int64, pick uint8) bool {
		run := func() Stats {
			rng := rand.New(rand.NewSource(seed))
			g, err := randomGraph(rng)
			if err != nil {
				return Stats{}
			}
			q := simtime.NewEventQueue()
			e, err := New(Config{
				Graph:     g,
				Scheduler: schedulerFor(int(pick)),
				NumProcs:  2,
				Queue:     q,
				Seed:      seed,
			})
			if err != nil {
				return Stats{}
			}
			if err := e.Start(); err != nil {
				return Stats{}
			}
			if err := q.RunUntil(2); err != nil {
				return Stats{}
			}
			return e.Stats()
		}
		return run() == run()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestEngineZeroExecTask: zero execution times must not wedge the engine.
func TestEngineZeroExecTask(t *testing.T) {
	g := dag.New()
	if _, err := g.AddTask(dag.Task{
		Name: "s", Priority: 2, RelDeadline: 10 * ms,
		Rate: 100, MinRate: 100, MaxRate: 100,
		Exec: exectime.Constant(0),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddTask(dag.Task{
		Name: "w", Priority: 1, RelDeadline: 10 * ms, IsControl: true,
		Exec: exectime.Constant(0),
	}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdgeByName("s", "w"); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	q := simtime.NewEventQueue()
	e, err := New(Config{Graph: g, Scheduler: sched.EDF{}, NumProcs: 1, Queue: q, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := q.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.ControlCommands < 90 {
		t.Errorf("only %d commands with zero-cost tasks at 100 Hz", st.ControlCommands)
	}
}

// TestEngineExtremeObstacles: a pathological scene (hundreds of obstacles)
// must degrade gracefully, not hang or panic.
func TestEngineExtremeObstacles(t *testing.T) {
	g, err := dag.ADGraph23()
	if err != nil {
		t.Fatal(err)
	}
	q := simtime.NewEventQueue()
	e, err := New(Config{
		Graph:     g,
		Scheduler: sched.EDF{},
		NumProcs:  2,
		Queue:     q,
		Seed:      1,
		Scene: func(simtime.Time) exectime.Scene {
			return exectime.Scene{Obstacles: 300, LoadFactor: 1}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := q.RunUntil(2); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.MissRatio() < 0.2 {
		t.Errorf("miss ratio %.2f with 300 obstacles, want heavy misses", st.MissRatio())
	}
	if st.Released == 0 {
		t.Error("engine stopped releasing under extreme load")
	}
}
