// Package engine implements the Auto-Driving Simulator of the HCPerf
// evaluation testbed: a deterministic discrete-event executor for periodic
// DAG task sets on M identical processors with non-preemptive,
// policy-driven dispatch.
//
// Semantics (paper §III-A):
//
//   - Source (sensing) tasks are sensor-driver tasks: they release
//     periodically at their configured rate and run off-CPU (sensor
//     hardware/DMA produces the data), delivering their output after their
//     sampled capture latency. The Task Rate Adapter may retune their rates
//     at runtime.
//   - A non-source task is data-triggered: it releases when its primary
//     predecessor (the first predecessor edge) delivers fresh output,
//     reading the latest output of its remaining predecessors (Cyber RT
//     channel semantics). It first fires once every predecessor has
//     produced at least one output.
//   - A job must complete both within its relative deadline of its release
//     and within its end-to-end budget of the sensing instant that produced
//     its input data (the paper's end-to-end deadline from sensing to
//     control: the budget is the max path sum of relative deadlines from
//     the sources). Otherwise its output is discarded — successors never
//     see it — and the job counts as a deadline miss.
//   - Completion of a control (sink) task on time emits a control command,
//     delivered to the registered callback and published on the bus.
package engine

import (
	"errors"
	"fmt"
	"math/rand"

	"hcperf/internal/bus"
	"hcperf/internal/dag"
	"hcperf/internal/exectime"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
	"hcperf/internal/stats"
)

// ControlTopic is the bus topic on which control commands are published.
const ControlTopic = "hcperf/control"

// ControlCommand describes one completed control-task job.
type ControlCommand struct {
	// Task is the control task that produced the command.
	Task *dag.Task
	// Cycle is the control task's release sequence number.
	Cycle uint64
	// Release is when the control job entered the ready queue.
	Release simtime.Time
	// Completed is when the control job finished executing.
	Completed simtime.Time
	// SourceTime is the release instant of the oldest sensing data that
	// flowed into this command; Completed-SourceTime is the end-to-end
	// pipeline latency.
	SourceTime simtime.Time
}

// ResponseTime returns how long the control job waited plus ran.
func (c ControlCommand) ResponseTime() simtime.Duration { return c.Completed - c.Release }

// EndToEndLatency returns sensing-to-actuation latency.
func (c ControlCommand) EndToEndLatency() simtime.Duration { return c.Completed - c.SourceTime }

// QueueObserver is implemented by schedulers (HCPerf's Dynamic) that want
// to re-derive internal state whenever the ready queue changes.
type QueueObserver interface {
	Recompute(now simtime.Time, ready []*sched.Job, state *sched.ProcState)
}

// Config configures an Engine.
type Config struct {
	// Graph is the validated task graph to execute.
	Graph *dag.Graph
	// Scheduler is the dispatch policy.
	Scheduler sched.Scheduler
	// NumProcs is the number of identical processors (M >= 1).
	NumProcs int
	// Queue is the simulation event queue shared with the scenario.
	Queue *simtime.EventQueue
	// Seed seeds the engine's private RNG (execution-time sampling).
	Seed int64
	// Scene supplies the runtime scene; nil means exectime.NominalScene.
	Scene func(now simtime.Time) exectime.Scene
	// Bus optionally receives control-command publications.
	Bus *bus.Bus
	// OnControl is invoked for every emitted control command.
	OnControl func(cmd ControlCommand)
	// OnJobDecided is invoked whenever a job's outcome is decided:
	// missed=false for an on-time completion, missed=true for a late
	// completion or queue expiration.
	OnJobDecided func(now simtime.Time, j *sched.Job, missed bool)
	// MaxDataAge, when positive, bounds the age of every input a task
	// may consume: a data-triggered release whose auxiliary inputs are
	// older than this is invalid — the cycle is lost and counts as a
	// deadline miss of the consuming task (the paper's requirement that
	// the whole sensing-to-control chain completes on time for a valid
	// control command). Zero disables the bound.
	MaxDataAge simtime.Duration
}

// TaskStats aggregates per-task outcomes.
type TaskStats struct {
	Released  uint64
	Completed uint64
	Missed    uint64 // late completions + expirations in queue
	Expired   uint64 // subset of Missed: dropped from the queue unrun
	ExecTime  stats.Accumulator
}

// Stats aggregates engine-wide outcomes.
type Stats struct {
	Released        uint64
	Completed       uint64
	Missed          uint64
	Expired         uint64
	ControlCommands uint64
	// E2EDecided and E2EMissed count only control (sink) jobs: their
	// deadline outcomes are the system's end-to-end deadline outcomes.
	E2EDecided      uint64
	E2EMissed       uint64
	ControlResponse stats.Accumulator
	EndToEnd        stats.Accumulator
}

// MissRatio returns misses over decided jobs (completed+missed), the
// paper's deadline miss ratio m.
func (s *Stats) MissRatio() float64 {
	decided := s.Completed + s.Missed
	if decided == 0 {
		return 0
	}
	return float64(s.Missed) / float64(decided)
}

// E2EMissRatio returns the end-to-end deadline miss ratio: misses over
// decided control jobs. With no decided control jobs it reports 1 if any
// control job was ever released (a fully starved pipeline is the worst
// case), else 0.
func (s *Stats) E2EMissRatio() float64 {
	if s.E2EDecided == 0 {
		return 0
	}
	return float64(s.E2EMissed) / float64(s.E2EDecided)
}

type processor struct {
	busyUntil simtime.Time
	running   *sched.Job
	busyTotal simtime.Duration
}

type edgeKey struct {
	from, to dag.TaskID
}

// edgeData is the latest-value channel state of one precedence edge.
type edgeData struct {
	// fresh marks unconsumed data (meaningful on primary edges).
	fresh bool
	// has marks that the edge has carried data at least once.
	has bool
	// sourceTime is the capture instant at the root of the producing
	// job's primary chain.
	sourceTime simtime.Time
	// producedAt is when the value was written.
	producedAt simtime.Time
}

// Engine executes a task graph under a scheduling policy on virtual time.
type Engine struct {
	graph     *dag.Graph
	sch       sched.Scheduler
	q         *simtime.EventQueue
	rng       *rand.Rand
	scene     func(now simtime.Time) exectime.Scene
	b         *bus.Bus
	onCmd     func(cmd ControlCommand)
	onDecided func(now simtime.Time, j *sched.Job, missed bool)

	procs    []processor
	ready    []*sched.Job
	edges    map[edgeKey]*edgeData
	observed []simtime.Duration // c_i per task: last observed execution time
	cycles   []uint64           // per-task release counter
	rates    []float64          // current rate per task (sources only)
	tickers  map[dag.TaskID]*simtime.Ticker

	budgets  []simtime.Duration // end-to-end deadline budget per task
	maxAge   simtime.Duration
	total    Stats
	window   Stats // reset by ResetWindow (Task Rate Adapter sampling)
	perTask  []TaskStats
	started  bool
	observer QueueObserver
}

// New validates the configuration and builds an engine. Start must be
// called to begin releasing source tasks.
func New(cfg Config) (*Engine, error) {
	if cfg.Graph == nil {
		return nil, errors.New("engine: nil graph")
	}
	if err := cfg.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if cfg.Scheduler == nil {
		return nil, errors.New("engine: nil scheduler")
	}
	if cfg.NumProcs < 1 {
		return nil, fmt.Errorf("engine: NumProcs %d < 1", cfg.NumProcs)
	}
	if cfg.Queue == nil {
		return nil, errors.New("engine: nil event queue")
	}
	scene := cfg.Scene
	if scene == nil {
		scene = func(simtime.Time) exectime.Scene { return exectime.NominalScene() }
	}
	n := cfg.Graph.Len()
	e := &Engine{
		graph:     cfg.Graph,
		sch:       cfg.Scheduler,
		q:         cfg.Queue,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		scene:     scene,
		b:         cfg.Bus,
		onCmd:     cfg.OnControl,
		onDecided: cfg.OnJobDecided,
		procs:     make([]processor, cfg.NumProcs),
		edges:     make(map[edgeKey]*edgeData),
		observed:  make([]simtime.Duration, n),
		cycles:    make([]uint64, n),
		rates:     make([]float64, n),
		tickers:   make(map[dag.TaskID]*simtime.Ticker),
		perTask:   make([]TaskStats, n),
		maxAge:    cfg.MaxDataAge,
	}
	for _, t := range cfg.Graph.Tasks() {
		e.observed[t.ID] = t.Exec.Nominal()
		e.rates[t.ID] = t.Rate
		for _, s := range cfg.Graph.Successors(t.ID) {
			e.edges[edgeKey{from: t.ID, to: s}] = &edgeData{}
		}
	}
	if obs, ok := cfg.Scheduler.(QueueObserver); ok {
		e.observer = obs
	}
	topo, err := cfg.Graph.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	e.budgets = make([]simtime.Duration, n)
	for _, id := range topo {
		var longest simtime.Duration
		for _, p := range cfg.Graph.Predecessors(id) {
			if e.budgets[p] > longest {
				longest = e.budgets[p]
			}
		}
		e.budgets[id] = longest + cfg.Graph.Task(id).RelDeadline
	}
	return e, nil
}

// EndToEndBudget returns the task's end-to-end deadline budget: the
// largest sum of relative deadlines along any source-to-task path.
func (e *Engine) EndToEndBudget(id dag.TaskID) simtime.Duration {
	if id < 0 || int(id) >= len(e.budgets) {
		return 0
	}
	return e.budgets[id]
}

// Start schedules the first release of every source task at the queue's
// current time. It may be called once.
func (e *Engine) Start() error {
	if e.started {
		return errors.New("engine: already started")
	}
	e.started = true
	now := e.q.Now()
	for _, src := range e.graph.Sources() {
		id := src.ID
		period := simtime.Duration(1 / e.rates[id])
		tk, err := e.q.NewTicker(now, period, func(tick simtime.Time) {
			e.releaseSource(tick, id)
		})
		if err != nil {
			return fmt.Errorf("engine: start source %q: %w", src.Name, err)
		}
		e.tickers[id] = tk
	}
	return nil
}

// Stop cancels all future source releases. Running jobs finish normally.
func (e *Engine) Stop() {
	for _, tk := range e.tickers {
		tk.Stop()
	}
}

// SetSourceRate retunes a source task's release rate, clamped to the
// task's [MinRate, MaxRate]. It returns the rate actually applied.
func (e *Engine) SetSourceRate(id dag.TaskID, hz float64) (float64, error) {
	t := e.graph.Task(id)
	if t == nil {
		return 0, fmt.Errorf("engine: unknown task %d", id)
	}
	tk, ok := e.tickers[id]
	if !ok {
		return 0, fmt.Errorf("engine: task %q is not a started source", t.Name)
	}
	if t.MaxRate > 0 {
		if hz < t.MinRate {
			hz = t.MinRate
		}
		if hz > t.MaxRate {
			hz = t.MaxRate
		}
	} else {
		hz = t.Rate // fixed-rate source
	}
	if hz <= 0 {
		return 0, fmt.Errorf("engine: non-positive rate for %q", t.Name)
	}
	if err := tk.SetPeriod(simtime.Duration(1 / hz)); err != nil {
		return 0, err
	}
	e.rates[id] = hz
	return hz, nil
}

// SourceRate returns the current rate of a source task.
func (e *Engine) SourceRate(id dag.TaskID) float64 { return e.rates[id] }

// SourceRates returns the current rates of all source tasks keyed by ID.
func (e *Engine) SourceRates() map[dag.TaskID]float64 {
	out := make(map[dag.TaskID]float64, len(e.tickers))
	for id := range e.tickers {
		out[id] = e.rates[id]
	}
	return out
}

// ScaleSourceRates multiplies every source rate by factor (clamped to each
// task's range), implementing the Task Rate Adapter's joint adjustment.
func (e *Engine) ScaleSourceRates(factor float64) error {
	if factor <= 0 {
		return fmt.Errorf("engine: non-positive rate factor %v", factor)
	}
	for id := range e.tickers {
		if _, err := e.SetSourceRate(id, e.rates[id]*factor); err != nil {
			return err
		}
	}
	return nil
}

// Graph returns the executing graph.
func (e *Engine) Graph() *dag.Graph { return e.graph }

// Scheduler returns the dispatch policy.
func (e *Engine) Scheduler() sched.Scheduler { return e.sch }

// QueueLen returns the current ready-queue length.
func (e *Engine) QueueLen() int { return len(e.ready) }

// Stats returns a copy of the engine-wide counters.
func (e *Engine) Stats() Stats { return e.total }

// WindowStats returns a copy of the counters since the last ResetWindow.
func (e *Engine) WindowStats() Stats { return e.window }

// ResetWindow zeroes the windowed counters; the Task Rate Adapter calls
// this once per adaptation period.
func (e *Engine) ResetWindow() { e.window = Stats{} }

// TaskStats returns a copy of the per-task counters.
func (e *Engine) TaskStats(id dag.TaskID) TaskStats {
	if id < 0 || int(id) >= len(e.perTask) {
		return TaskStats{}
	}
	return e.perTask[id]
}

// ObservedExec returns the engine's current estimate of c_i.
func (e *Engine) ObservedExec(id dag.TaskID) simtime.Duration { return e.observed[id] }

// Utilization returns mean processor utilisation over [0, now].
func (e *Engine) Utilization() float64 {
	now := float64(e.q.Now())
	if now <= 0 {
		return 0
	}
	var busy float64
	for i := range e.procs {
		b := float64(e.procs[i].busyTotal)
		// Subtract the not-yet-elapsed tail of the running job.
		if e.procs[i].busyUntil > e.q.Now() {
			b -= float64(e.procs[i].busyUntil - e.q.Now())
		}
		busy += b
	}
	return busy / (now * float64(len(e.procs)))
}

// releaseSource models one sensor capture: source tasks run off-CPU (the
// sensor hardware produces the data), so the job completes after its
// sampled capture latency without occupying a processor, then propagates
// downstream. Captures never miss deadlines.
func (e *Engine) releaseSource(now simtime.Time, id dag.TaskID) {
	t := e.graph.Task(id)
	e.cycles[id]++
	j := &sched.Job{
		Task:        t,
		Cycle:       e.cycles[id],
		Release:     now,
		AbsDeadline: now + t.RelDeadline,
		EstExec:     e.observed[id],
		SourceTime:  now,
	}
	e.total.Released++
	e.window.Released++
	e.perTask[id].Released++
	actual := t.Exec.Sample(e.rng, now, e.scene(now))
	if actual < 0 {
		actual = 0
	}
	if _, err := e.q.Schedule(now+actual, func(at simtime.Time) {
		e.observed[id] = actual
		e.perTask[id].ExecTime.Add(float64(actual))
		e.total.Completed++
		e.window.Completed++
		e.perTask[id].Completed++
		if e.onDecided != nil {
			e.onDecided(at, j, false)
		}
		e.propagate(at, j)
		e.dispatch(at)
	}); err != nil {
		panic(fmt.Sprintf("engine: schedule capture: %v", err))
	}
}

// release creates a job for task id, appends it to the ready queue and
// attempts dispatch.
func (e *Engine) release(now simtime.Time, id dag.TaskID, sourceTime simtime.Time) {
	t := e.graph.Task(id)
	e.cycles[id]++
	deadline := now + t.RelDeadline
	if e2e := sourceTime + e.budgets[id]; e2e < deadline {
		deadline = e2e
	}
	if t.E2E > 0 {
		if e2e := sourceTime + t.E2E; e2e < deadline {
			deadline = e2e
		}
	}
	j := &sched.Job{
		Task:        t,
		Cycle:       e.cycles[id],
		Release:     now,
		AbsDeadline: deadline,
		EstExec:     e.observed[id],
		SourceTime:  sourceTime,
	}
	e.ready = append(e.ready, j)
	e.total.Released++
	e.window.Released++
	e.perTask[id].Released++
	e.queueChanged(now)
	e.dispatch(now)
}

// RefreshScheduler re-runs the queue observer (if any) against the live
// ready queue and processor state. The coordinator calls this after
// installing a new nominal u so γ is re-derived immediately instead of at
// the next queue change.
func (e *Engine) RefreshScheduler() { e.queueChanged(e.q.Now()) }

// queueChanged notifies a queue-observing scheduler (γmax re-derivation).
func (e *Engine) queueChanged(now simtime.Time) {
	if e.observer != nil {
		e.observer.Recompute(now, e.ready, e.procState(now))
	}
}

// procState snapshots the processor pool for the scheduler.
func (e *Engine) procState(now simtime.Time) *sched.ProcState {
	st := &sched.ProcState{
		NumProcs:  len(e.procs),
		Remaining: make([]simtime.Duration, len(e.procs)),
	}
	for i := range e.procs {
		if e.procs[i].busyUntil > now {
			st.Remaining[i] = e.procs[i].busyUntil - now
		}
	}
	return st
}

// purgeExpired drops queued jobs whose deadline has already passed; they
// can no longer produce valid output.
func (e *Engine) purgeExpired(now simtime.Time) {
	kept := e.ready[:0]
	changed := false
	for _, j := range e.ready {
		if j.AbsDeadline <= now {
			e.total.Missed++
			e.total.Expired++
			e.window.Missed++
			e.window.Expired++
			e.perTask[j.Task.ID].Missed++
			e.perTask[j.Task.ID].Expired++
			if j.Task.IsControl {
				e.total.E2EDecided++
				e.total.E2EMissed++
				e.window.E2EDecided++
				e.window.E2EMissed++
			}
			if e.onDecided != nil {
				e.onDecided(now, j, true)
			}
			changed = true
			continue
		}
		kept = append(kept, j)
	}
	e.ready = kept
	if changed {
		e.queueChanged(now)
	}
}

// dispatch fills every idle processor according to the policy.
func (e *Engine) dispatch(now simtime.Time) {
	e.purgeExpired(now)
	for p := range e.procs {
		if e.procs[p].busyUntil > now || len(e.ready) == 0 {
			continue
		}
		idx := e.sch.Select(now, e.ready, p, e.procState(now))
		if idx < 0 {
			continue // no eligible job for this processor
		}
		j := e.ready[idx]
		e.ready = append(e.ready[:idx], e.ready[idx+1:]...)
		e.run(now, p, j)
	}
}

// run executes job j on processor p, sampling its true execution time.
func (e *Engine) run(now simtime.Time, p int, j *sched.Job) {
	actual := j.Task.Exec.Sample(e.rng, now, e.scene(now))
	if actual < 0 {
		actual = 0
	}
	finish := now + actual
	e.procs[p].busyUntil = finish
	e.procs[p].running = j
	e.procs[p].busyTotal += actual
	// Completion events always run in the future relative to now, so
	// Schedule cannot fail.
	if _, err := e.q.Schedule(finish, func(at simtime.Time) {
		e.complete(at, p, j, actual)
	}); err != nil {
		panic(fmt.Sprintf("engine: schedule completion: %v", err))
	}
}

// complete finalises a job: deadline accounting, data propagation, control
// emission, then refills the processor.
func (e *Engine) complete(now simtime.Time, p int, j *sched.Job, actual simtime.Duration) {
	e.procs[p].running = nil
	id := j.Task.ID
	e.observed[id] = actual
	e.perTask[id].ExecTime.Add(float64(actual))

	missed := now > j.AbsDeadline
	if j.Task.IsControl {
		e.total.E2EDecided++
		e.window.E2EDecided++
		if missed {
			e.total.E2EMissed++
			e.window.E2EMissed++
		}
	}
	if e.onDecided != nil {
		e.onDecided(now, j, missed)
	}
	if missed {
		e.total.Missed++
		e.window.Missed++
		e.perTask[id].Missed++
	} else {
		e.total.Completed++
		e.window.Completed++
		e.perTask[id].Completed++
		e.propagate(now, j)
	}
	e.queueChanged(now)
	e.dispatch(now)
}

// propagate pushes the completed job's output onto its outgoing edges and
// data-triggers successors whose primary edge refreshed. Control tasks emit
// commands instead.
func (e *Engine) propagate(now simtime.Time, j *sched.Job) {
	if j.Task.IsControl {
		e.emitControl(now, j)
	}
	for _, succ := range e.graph.Successors(j.Task.ID) {
		ed := e.edges[edgeKey{from: j.Task.ID, to: succ}]
		ed.fresh = true
		ed.has = true
		ed.sourceTime = j.SourceTime
		ed.producedAt = now
		if e.graph.PrimaryPred(succ) == j.Task.ID {
			e.tryRelease(now, succ)
		}
	}
}

// tryRelease data-triggers task id: it releases when the primary edge is
// fresh and every incoming edge has carried data at least once. The primary
// data is consumed; auxiliary inputs are read at their latest values. The
// job inherits the sensing instant of its primary chain — the capture time
// of the source at the root of the chain of primary edges — which defines
// the pipeline's end-to-end staleness.
func (e *Engine) tryRelease(now simtime.Time, id dag.TaskID) {
	preds := e.graph.Predecessors(id)
	for _, p := range preds {
		if !e.edges[edgeKey{from: p, to: id}].has {
			return
		}
	}
	primary := e.edges[edgeKey{from: preds[0], to: id}]
	if !primary.fresh {
		return
	}
	primary.fresh = false
	if e.maxAge > 0 {
		for _, p := range preds {
			if now-e.edges[edgeKey{from: p, to: id}].producedAt > e.maxAge {
				// An input is too stale for a valid cycle: the
				// release is invalid and counts as a miss of
				// the consuming task.
				e.invalidCycle(now, id, primary.sourceTime)
				return
			}
		}
	}
	e.release(now, id, primary.sourceTime)
}

// invalidCycle accounts a data-triggered release whose inputs were too
// stale to produce valid output.
func (e *Engine) invalidCycle(now simtime.Time, id dag.TaskID, sourceTime simtime.Time) {
	t := e.graph.Task(id)
	e.cycles[id]++
	j := &sched.Job{
		Task:        t,
		Cycle:       e.cycles[id],
		Release:     now,
		AbsDeadline: now,
		EstExec:     e.observed[id],
		SourceTime:  sourceTime,
	}
	e.total.Released++
	e.window.Released++
	e.perTask[id].Released++
	e.total.Missed++
	e.window.Missed++
	e.perTask[id].Missed++
	if t.IsControl {
		e.total.E2EDecided++
		e.total.E2EMissed++
		e.window.E2EDecided++
		e.window.E2EMissed++
	}
	if e.onDecided != nil {
		e.onDecided(now, j, true)
	}
}

// emitControl publishes a control command.
func (e *Engine) emitControl(now simtime.Time, j *sched.Job) {
	cmd := ControlCommand{
		Task:       j.Task,
		Cycle:      j.Cycle,
		Release:    j.Release,
		Completed:  now,
		SourceTime: j.SourceTime,
	}
	e.total.ControlCommands++
	e.window.ControlCommands++
	e.total.ControlResponse.Add(float64(cmd.ResponseTime()))
	e.window.ControlResponse.Add(float64(cmd.ResponseTime()))
	e.total.EndToEnd.Add(float64(cmd.EndToEndLatency()))
	e.window.EndToEnd.Add(float64(cmd.EndToEndLatency()))
	if e.onCmd != nil {
		e.onCmd(cmd)
	}
	if e.b != nil {
		// Publish errors are impossible for a non-empty constant topic.
		if err := e.b.Publish(ControlTopic, cmd); err != nil {
			panic(fmt.Sprintf("engine: publish control: %v", err))
		}
	}
}
