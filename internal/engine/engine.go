// Package engine implements the Auto-Driving Simulator of the HCPerf
// evaluation testbed: a deterministic discrete-event executor for periodic
// DAG task sets on M identical processors with non-preemptive,
// policy-driven dispatch.
//
// The job-lifecycle semantics (paper §III-A) — periodic source release with
// off-CPU capture latency, data-triggered release on the primary
// predecessor, relative-deadline and end-to-end-budget expiry, discard of
// late output, control-command emission — live in the shared
// internal/lifecycle kernel; this package is the kernel's discrete-event
// Backend. It contributes exactly the execution substrate: a
// simtime.EventQueue for time, tickers for source rates, and an
// M-processor non-preemptive dispatch loop.
package engine

import (
	"errors"
	"fmt"

	"hcperf/internal/bus"
	"hcperf/internal/dag"
	"hcperf/internal/exectime"
	"hcperf/internal/lifecycle"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
)

// ControlTopic is the bus topic on which control commands are published.
const ControlTopic = "hcperf/control"

// Canonical lifecycle types, re-exported so existing callers (examples,
// scenarios) keep compiling unchanged.
type (
	// ControlCommand describes one completed control-task job.
	ControlCommand = lifecycle.ControlCommand
	// Stats aggregates engine-wide outcomes.
	Stats = lifecycle.Stats
	// TaskStats aggregates per-task outcomes.
	TaskStats = lifecycle.TaskStats
	// QueueObserver is implemented by schedulers (HCPerf's Dynamic) that
	// want to re-derive internal state whenever the ready queue changes.
	QueueObserver = lifecycle.QueueObserver
)

// Config configures an Engine.
type Config struct {
	// Graph is the validated task graph to execute.
	Graph *dag.Graph
	// Scheduler is the dispatch policy.
	Scheduler sched.Scheduler
	// NumProcs is the number of identical processors (M >= 1).
	NumProcs int
	// Queue is the simulation event queue shared with the scenario.
	Queue *simtime.EventQueue
	// Seed seeds the engine's private RNG (execution-time sampling).
	Seed int64
	// Scene supplies the runtime scene; nil means exectime.NominalScene.
	Scene func(now simtime.Time) exectime.Scene
	// Bus optionally receives control-command publications.
	Bus *bus.Bus
	// OnControl is invoked for every emitted control command.
	OnControl func(cmd ControlCommand)
	// OnJobDecided is invoked whenever a job's outcome is decided:
	// missed=false for an on-time completion, missed=true for a late
	// completion or queue expiration.
	OnJobDecided func(now simtime.Time, j *sched.Job, missed bool)
	// MaxDataAge, when positive, bounds the age of every input a task
	// may consume (see lifecycle.Config.MaxDataAge). Zero disables.
	MaxDataAge simtime.Duration
	// Tracer optionally receives the structured lifecycle event stream.
	Tracer lifecycle.Tracer
}

type processor struct {
	busyUntil simtime.Time
	running   *sched.Job
	busyTotal simtime.Duration
	// actual is the sampled execution time of the running job; complete is
	// the processor's completion callback, bound once at construction.
	// Dispatch is non-preemptive, so a processor has at most one completion
	// in flight and the pair can be reused for every job it runs.
	actual   simtime.Duration
	complete func(at simtime.Time)
}

// Engine executes a task graph under a scheduling policy on virtual time.
type Engine struct {
	k *lifecycle.Kernel
	q *simtime.EventQueue
	b *bus.Bus

	procs []processor
	// tickers is indexed by task ID (task IDs are dense); nil entries are
	// tasks that are not started sources. A dense slice instead of a map
	// keeps every iteration (Stop, SourceRates, ScaleSourceRates) in task
	// order — deterministic by construction — and avoids map overhead on
	// the rate-adaptation path.
	tickers []*simtime.Ticker
	started bool
	// procState is the reusable processor-pool snapshot handed to
	// scheduling decisions; see lifecycle.Backend.ProcState for the
	// non-retention contract that makes the reuse safe.
	procState sched.ProcState
}

// backend adapts the Engine onto lifecycle.Backend: capture latencies are
// event-queue timers, waking idle processors is a dispatch pass.
type backend struct {
	e *Engine
}

// DeliverAfter implements lifecycle.Backend.
func (b backend) DeliverAfter(now simtime.Time, d simtime.Duration, fn func(at simtime.Time)) {
	// Delivery is never scheduled in the past relative to now, so
	// Schedule cannot fail.
	if _, err := b.e.q.Schedule(now+d, fn); err != nil {
		panic(fmt.Sprintf("engine: schedule delivery: %v", err))
	}
}

// Wake implements lifecycle.Backend.
func (b backend) Wake(now simtime.Time) { b.e.dispatch(now) }

// ProcState implements lifecycle.Backend. The snapshot is reused across
// scheduling decisions — dispatch runs at every queue change — so it is
// filled in place rather than allocated per call.
func (b backend) ProcState(now simtime.Time) *sched.ProcState {
	e := b.e
	st := &e.procState
	for i := range e.procs {
		var r simtime.Duration
		if e.procs[i].busyUntil > now {
			r = e.procs[i].busyUntil - now
		}
		st.Remaining[i] = r
	}
	return st
}

// New validates the configuration and builds an engine. Start must be
// called to begin releasing source tasks.
func New(cfg Config) (*Engine, error) {
	if cfg.NumProcs < 1 {
		return nil, fmt.Errorf("engine: NumProcs %d < 1", cfg.NumProcs)
	}
	if cfg.Queue == nil {
		return nil, errors.New("engine: nil event queue")
	}
	e := &Engine{
		q:     cfg.Queue,
		b:     cfg.Bus,
		procs: make([]processor, cfg.NumProcs),
		procState: sched.ProcState{
			NumProcs:  cfg.NumProcs,
			Remaining: make([]simtime.Duration, cfg.NumProcs),
		},
	}
	if cfg.Graph != nil {
		e.tickers = make([]*simtime.Ticker, cfg.Graph.Len())
	}
	onControl := cfg.OnControl
	if cfg.Bus != nil {
		user := cfg.OnControl
		onControl = func(cmd ControlCommand) {
			if user != nil {
				user(cmd)
			}
			// Publish errors are impossible for a non-empty constant
			// topic.
			if err := cfg.Bus.Publish(ControlTopic, cmd); err != nil {
				panic(fmt.Sprintf("engine: publish control: %v", err))
			}
		}
	}
	k, err := lifecycle.NewKernel(lifecycle.Config{
		Graph:        cfg.Graph,
		Scheduler:    cfg.Scheduler,
		Seed:         cfg.Seed,
		Scene:        cfg.Scene,
		MaxDataAge:   cfg.MaxDataAge,
		OnControl:    onControl,
		OnJobDecided: cfg.OnJobDecided,
		Tracer:       cfg.Tracer,
	}, backend{e})
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	e.k = k
	for p := range e.procs {
		p := p
		e.procs[p].complete = func(at simtime.Time) {
			pr := &e.procs[p]
			j := pr.running
			pr.running = nil
			e.k.Complete(at, p, j, pr.actual)
		}
	}
	return e, nil
}

// EndToEndBudget returns the task's end-to-end deadline budget: the
// largest sum of relative deadlines along any source-to-task path.
func (e *Engine) EndToEndBudget(id dag.TaskID) simtime.Duration { return e.k.EndToEndBudget(id) }

// Start schedules the first release of every source task at the queue's
// current time. It may be called once.
func (e *Engine) Start() error {
	if e.started {
		return errors.New("engine: already started")
	}
	e.started = true
	now := e.q.Now()
	for _, src := range e.k.Graph().Sources() {
		id := src.ID
		period := simtime.Duration(1 / e.k.Rate(id))
		tk, err := e.q.NewTicker(now, period, func(tick simtime.Time) {
			e.k.SourceFired(tick, id)
		})
		if err != nil {
			return fmt.Errorf("engine: start source %q: %w", src.Name, err)
		}
		e.tickers[id] = tk
	}
	return nil
}

// Stop cancels all future source releases. Running jobs finish normally.
func (e *Engine) Stop() {
	for _, tk := range e.tickers {
		if tk != nil {
			tk.Stop()
		}
	}
}

// SetSourceRate retunes a source task's release rate, clamped to the
// task's [MinRate, MaxRate]. It returns the rate actually applied.
func (e *Engine) SetSourceRate(id dag.TaskID, hz float64) (float64, error) {
	t := e.k.Graph().Task(id)
	if t == nil {
		return 0, fmt.Errorf("engine: unknown task %d", id)
	}
	var tk *simtime.Ticker
	if int(id) < len(e.tickers) {
		tk = e.tickers[id]
	}
	if tk == nil {
		return 0, fmt.Errorf("engine: task %q is not a started source", t.Name)
	}
	hz, err := e.k.SetRate(id, hz)
	if err != nil {
		return 0, fmt.Errorf("engine: %w", err)
	}
	if err := tk.SetPeriod(simtime.Duration(1 / hz)); err != nil {
		return 0, err
	}
	return hz, nil
}

// SourceRate returns the current rate of a source task.
func (e *Engine) SourceRate(id dag.TaskID) float64 { return e.k.Rate(id) }

// SourceRates returns the current rates of all source tasks keyed by ID.
func (e *Engine) SourceRates() map[dag.TaskID]float64 {
	out := make(map[dag.TaskID]float64)
	for id, tk := range e.tickers {
		if tk != nil {
			out[dag.TaskID(id)] = e.k.Rate(dag.TaskID(id))
		}
	}
	return out
}

// ScaleSourceRates multiplies every source rate by factor (clamped to each
// task's range), implementing the Task Rate Adapter's joint adjustment.
// Sources are retuned in task-ID order, so the adjustment is deterministic.
func (e *Engine) ScaleSourceRates(factor float64) error {
	if factor <= 0 {
		return fmt.Errorf("engine: non-positive rate factor %v", factor)
	}
	for id, tk := range e.tickers {
		if tk == nil {
			continue
		}
		tid := dag.TaskID(id)
		if _, err := e.SetSourceRate(tid, e.k.Rate(tid)*factor); err != nil {
			return err
		}
	}
	return nil
}

// Graph returns the executing graph.
func (e *Engine) Graph() *dag.Graph { return e.k.Graph() }

// Scheduler returns the dispatch policy.
func (e *Engine) Scheduler() sched.Scheduler { return e.k.Scheduler() }

// QueueLen returns the current ready-queue length.
func (e *Engine) QueueLen() int { return e.k.QueueLen() }

// Stats returns a copy of the engine-wide counters.
func (e *Engine) Stats() Stats { return e.k.Stats() }

// WindowStats returns a copy of the counters since the last ResetWindow.
func (e *Engine) WindowStats() Stats { return e.k.WindowStats() }

// ResetWindow zeroes the windowed counters; the Task Rate Adapter calls
// this once per adaptation period.
func (e *Engine) ResetWindow() { e.k.ResetWindow() }

// TaskStats returns a copy of the per-task counters.
func (e *Engine) TaskStats(id dag.TaskID) TaskStats { return e.k.TaskStats(id) }

// ObservedExec returns the engine's current estimate of c_i.
func (e *Engine) ObservedExec(id dag.TaskID) simtime.Duration { return e.k.ObservedExec(id) }

// RefreshScheduler re-runs the queue observer (if any) against the live
// ready queue and processor state. The coordinator calls this after
// installing a new nominal u so γ is re-derived immediately instead of at
// the next queue change.
func (e *Engine) RefreshScheduler() { e.k.RefreshObserver(e.q.Now()) }

// Utilization returns mean processor utilisation over [0, now].
func (e *Engine) Utilization() float64 {
	now := float64(e.q.Now())
	if now <= 0 {
		return 0
	}
	var busy float64
	for i := range e.procs {
		b := float64(e.procs[i].busyTotal)
		// Subtract the not-yet-elapsed tail of the running job.
		if e.procs[i].busyUntil > e.q.Now() {
			b -= float64(e.procs[i].busyUntil - e.q.Now())
		}
		busy += b
	}
	return busy / (now * float64(len(e.procs)))
}

// dispatch fills every idle processor according to the policy.
func (e *Engine) dispatch(now simtime.Time) {
	e.k.PurgeExpired(now)
	for p := range e.procs {
		if e.procs[p].busyUntil > now {
			continue
		}
		j := e.k.Next(now, p)
		if j == nil {
			continue // no eligible job for this processor
		}
		e.run(now, p, j)
	}
}

// run executes job j on processor p, sampling its true execution time.
func (e *Engine) run(now simtime.Time, p int, j *sched.Job) {
	actual := e.k.SampleExec(now, j.Task)
	finish := now + actual
	pr := &e.procs[p]
	pr.busyUntil = finish
	pr.running = j
	pr.busyTotal += actual
	pr.actual = actual
	// Completion events always run in the future relative to now, so
	// Schedule cannot fail.
	if _, err := e.q.Schedule(finish, pr.complete); err != nil {
		panic(fmt.Sprintf("engine: schedule completion: %v", err))
	}
}
