package engine_test

// Dispatch-order determinism: the engine's event loop iterates several
// per-task structures (source tickers, per-processor state) that were
// converted from maps to dense slices for the allocation-free hot path.
// Maps iterate in randomized order, so any map-ordered decision would show
// up here as a run-to-run permutation of the dispatch stream. This test
// pins the guarantee the golden report digests rely on: the same seed
// yields the exact same dispatch sequence, every run.

import (
	"fmt"
	"testing"

	"hcperf/internal/dag"
	"hcperf/internal/engine"
	"hcperf/internal/lifecycle"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
)

// dispatchTrace runs the 23-task stack for two simulated seconds under the
// given policy and returns the full dispatch sequence as strings of
// (task, cycle, time, processor).
func dispatchTrace(t *testing.T, mk func() sched.Scheduler, seed int64) []string {
	t.Helper()
	g, err := dag.ADGraph23()
	if err != nil {
		t.Fatal(err)
	}
	var seq []string
	q := simtime.NewEventQueue()
	eng, err := engine.New(engine.Config{
		Graph:     g,
		Scheduler: mk(),
		NumProcs:  2,
		Queue:     q,
		Seed:      seed,
		Tracer: lifecycle.TracerFunc(func(ev lifecycle.Event) {
			if ev.Kind == lifecycle.EventDispatch {
				seq = append(seq, fmt.Sprintf("%d/%d@%v proc=%d", ev.Task, ev.Cycle, ev.T, ev.Proc))
			}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	if err := q.RunUntil(2); err != nil {
		t.Fatal(err)
	}
	return seq
}

func TestDispatchOrderDeterministic(t *testing.T) {
	policies := []struct {
		name string
		mk   func() sched.Scheduler
	}{
		{"HCPerf", func() sched.Scheduler { return sched.NewDynamic(0) }},
		{"EDF", func() sched.Scheduler { return sched.EDF{} }},
	}
	for _, p := range policies {
		t.Run(p.name, func(t *testing.T) {
			ref := dispatchTrace(t, p.mk, 1)
			if len(ref) == 0 {
				t.Fatal("no dispatches traced in two simulated seconds")
			}
			for run := 1; run < 10; run++ {
				got := dispatchTrace(t, p.mk, 1)
				if len(got) != len(ref) {
					t.Fatalf("run %d: %d dispatches, reference has %d", run, len(got), len(ref))
				}
				for i := range got {
					if got[i] != ref[i] {
						t.Fatalf("run %d: dispatch %d = %q, reference %q", run, i, got[i], ref[i])
					}
				}
			}
		})
	}
}

// TestDispatchOrderSeedSensitivity is the counter-probe: a different seed
// must eventually produce a different dispatch stream, proving the test
// above compares something the seed actually feeds.
func TestDispatchOrderSeedSensitivity(t *testing.T) {
	mk := func() sched.Scheduler { return sched.NewDynamic(0) }
	a := dispatchTrace(t, mk, 1)
	b := dispatchTrace(t, mk, 2)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seeds 1 and 2 produced identical dispatch streams; the determinism test is vacuous")
		}
	}
}
