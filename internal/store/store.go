// Package store is the tiered result store under the run pipeline: a
// recency-ordered in-memory membership LRU (the serving layer's memory
// tier) and a disk-backed content-addressed blob store (one file per
// request digest, atomic rename writes, size-capped mtime-LRU eviction,
// corrupt-entry quarantine) so computed reports survive process restarts
// and can be shared between the CLI and the server. The store deals in
// opaque bytes keyed by digest; encoding and integrity checking of run
// results live in internal/run, which also decides when a decode failure
// becomes a Quarantine call.
package store

import (
	"container/list"
	"sync/atomic"
)

// Tier names where a pipeline lookup was satisfied. The values appear
// verbatim in the X-HCPerf-Cache response header, the job-status `cache`
// field and the `tier` label of the hcperf_store_* metrics.
type Tier string

const (
	// TierMemory: the result was already resident in the in-process LRU.
	TierMemory Tier = "memory"
	// TierDisk: the result was read back from the disk store.
	TierDisk Tier = "disk"
	// TierMiss: no tier had the result; it was (re)computed.
	TierMiss Tier = "miss"
)

// Metrics aggregates the per-tier counters of one tiered store. All fields
// are atomics so the memory tier's owner (the job manager), the disk store
// and the pipeline can count concurrently without sharing a lock.
type Metrics struct {
	// MemoryHits / MemoryMisses count lookups against the memory tier.
	MemoryHits, MemoryMisses atomic.Uint64
	// DiskHits / DiskMisses count lookups that reached the disk tier.
	DiskHits, DiskMisses atomic.Uint64
	// MemoryEvictions / DiskEvictions count entries dropped to stay
	// within the respective tier's capacity.
	MemoryEvictions, DiskEvictions atomic.Uint64
	// Corrupt counts disk entries that failed to decode and were moved to
	// quarantine (served as misses, never deleted silently).
	Corrupt atomic.Uint64
}

// LRU is a size-bounded, recency-ordered set of digests — the membership
// index of the memory tier. It is deliberately not self-locking: the
// serving layer's Manager mutates it only under its own mutex, together
// with the job map the entries point into, so membership and the map can
// never disagree.
type LRU struct {
	cap   int
	order *list.List               // front = most recently used
	elems map[string]*list.Element // digest -> order element (Value is the digest)
}

// NewLRU returns an empty LRU bounded to capacity entries (minimum 1).
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU{cap: capacity, order: list.New(), elems: make(map[string]*list.Element, capacity)}
}

// Add inserts or refreshes a digest and returns the digests evicted to
// stay within capacity.
func (c *LRU) Add(digest string) (evicted []string) {
	if e, ok := c.elems[digest]; ok {
		c.order.MoveToFront(e)
		return nil
	}
	c.elems[digest] = c.order.PushFront(digest)
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		d := oldest.Value.(string)
		delete(c.elems, d)
		evicted = append(evicted, d)
	}
	return evicted
}

// Bump marks a digest as most recently used; unknown digests are ignored.
func (c *LRU) Bump(digest string) {
	if e, ok := c.elems[digest]; ok {
		c.order.MoveToFront(e)
	}
}

// Contains reports membership without refreshing recency.
func (c *LRU) Contains(digest string) bool {
	_, ok := c.elems[digest]
	return ok
}

// Len is the current entry count.
func (c *LRU) Len() int { return c.order.Len() }
