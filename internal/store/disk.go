package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// DefaultMaxBytes is the disk tier's default size cap (1 GiB). At the
// typical few-KiB-per-report entry size that is room for hundreds of
// thousands of runs; operators fronting millions raise it explicitly.
const DefaultMaxBytes = 1 << 30

// quarantineDir is the subdirectory corrupt entries are moved into. They
// are kept, not deleted, so a decode failure stays diagnosable.
const quarantineDir = "quarantine"

// entrySuffix is appended to the digest to form an entry's filename.
const entrySuffix = ".json"

// Disk is the disk-backed content-addressed tier: one file per digest,
// written via temp-file + atomic rename so readers (including other
// processes sharing the directory — the CLI pre-warming a server's store)
// never observe a torn entry. The size cap is enforced on Put by evicting
// the entries with the oldest mtime; Get refreshes an entry's mtime, so
// eviction order is LRU, not FIFO.
//
// The in-memory size index covers entries written or scanned by this
// process; Get reads through to the filesystem regardless, so entries
// created by another process are still hits. The cap is therefore enforced
// against this process's view of the directory, which is resynchronized on
// open.
type Disk struct {
	dir      string
	maxBytes int64
	metrics  *Metrics

	mu      sync.Mutex
	entries map[string]diskEntry
	size    int64
}

type diskEntry struct {
	size  int64
	mtime time.Time
}

// OpenDisk opens (creating if needed) a disk store rooted at dir with the
// given size cap (<= 0 selects DefaultMaxBytes). Counters are recorded
// into metrics (which may be shared with the memory tier's owner; nil gets
// a private set). A directory that cannot be created or written — the
// read-only-volume failure mode — returns an error; callers degrade to
// memory-only operation and log the loss rather than failing the service.
func OpenDisk(dir string, maxBytes int64, metrics *Metrics) (*Disk, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if metrics == nil {
		metrics = &Metrics{}
	}
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	// Probe writability now so a read-only volume surfaces at startup,
	// not on the first completed run.
	probe, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return nil, fmt.Errorf("store: %s is not writable: %w", dir, err)
	}
	probe.Close()
	os.Remove(probe.Name())

	d := &Disk{dir: dir, maxBytes: maxBytes, metrics: metrics, entries: make(map[string]diskEntry)}
	if err := d.scan(); err != nil {
		return nil, err
	}
	return d, nil
}

// scan rebuilds the size index from the directory contents, so a reopened
// store enforces its cap over entries written by earlier processes too.
func (d *Disk) scan() error {
	dirents, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("store: scan %s: %w", d.dir, err)
	}
	for _, de := range dirents {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, entrySuffix) {
			continue
		}
		digest := strings.TrimSuffix(name, entrySuffix)
		if !validDigest(digest) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with a concurrent eviction; skip
		}
		d.entries[digest] = diskEntry{size: info.Size(), mtime: info.ModTime()}
		d.size += info.Size()
	}
	return nil
}

// validDigest accepts lowercase-hex content addresses (every run digest is
// a hex SHA-256) and rejects anything that could escape the store
// directory.
func validDigest(digest string) bool {
	if digest == "" || len(digest) > 128 {
		return false
	}
	for _, c := range digest {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Dir returns the store's root directory (for startup logging).
func (d *Disk) Dir() string { return d.dir }

// SetMetrics redirects the disk tier's counters, so a store opened before
// its owner existed (the CLI and hcperf-serve open the -store directory
// first, then hand it to the pipeline or job manager) reports into the
// owner's tiered metrics set.
func (d *Disk) SetMetrics(m *Metrics) {
	if m == nil {
		return
	}
	d.mu.Lock()
	d.metrics = m
	d.mu.Unlock()
}

func (d *Disk) path(digest string) string {
	return filepath.Join(d.dir, digest+entrySuffix)
}

// Get returns the stored bytes for a digest, reading through to the
// filesystem (entries written by other processes sharing the directory are
// hits too). A hit refreshes the entry's mtime so the size cap evicts in
// least-recently-used order. A miss — or any read error — returns ok=false.
func (d *Disk) Get(digest string) ([]byte, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !validDigest(digest) {
		d.metrics.DiskMisses.Add(1)
		return nil, false
	}
	data, err := os.ReadFile(d.path(digest))
	if err != nil {
		d.metrics.DiskMisses.Add(1)
		return nil, false
	}
	now := time.Now()
	_ = os.Chtimes(d.path(digest), now, now) // best-effort LRU touch
	if e, ok := d.entries[digest]; ok {
		e.mtime = now
		d.entries[digest] = e
	} else {
		// Written by another process since our last scan; index it so the
		// size cap covers it from now on.
		d.entries[digest] = diskEntry{size: int64(len(data)), mtime: now}
		d.size += int64(len(data))
	}
	d.metrics.DiskHits.Add(1)
	return data, true
}

// Put stores data under digest: the bytes land in a temp file first and
// are renamed into place, so concurrent readers see either the old entry
// or the new one, never a prefix. After the write the size cap is enforced
// by evicting oldest-mtime entries (the just-written entry is never the
// victim, so a single oversized result still lands).
func (d *Disk) Put(digest string, data []byte) error {
	if !validDigest(digest) {
		return fmt.Errorf("store: invalid digest %q", digest)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	tmp, err := os.CreateTemp(d.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: put %s: %w", digest, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: put %s: %w", digest, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: put %s: %w", digest, err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: put %s: %w", digest, err)
	}
	if err := os.Rename(tmp.Name(), d.path(digest)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: put %s: %w", digest, err)
	}
	if prev, ok := d.entries[digest]; ok {
		d.size -= prev.size
	}
	d.entries[digest] = diskEntry{size: int64(len(data)), mtime: time.Now()}
	d.size += int64(len(data))
	d.evictLocked(digest)
	return nil
}

// evictLocked removes oldest-mtime entries until the store fits its cap,
// sparing keep (the entry that triggered enforcement). Ties break on the
// digest so eviction order is deterministic under equal mtimes.
func (d *Disk) evictLocked(keep string) {
	for d.size > d.maxBytes && len(d.entries) > 1 {
		victim := ""
		var ve diskEntry
		for digest, e := range d.entries {
			if digest == keep {
				continue
			}
			if victim == "" || e.mtime.Before(ve.mtime) || (e.mtime.Equal(ve.mtime) && digest < victim) {
				victim, ve = digest, e
			}
		}
		if victim == "" {
			return
		}
		if err := os.Remove(d.path(victim)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			// The file is stuck (permissions?); dropping it from the index
			// anyway would let the directory grow without bound, so keep
			// accounting for it and stop evicting this round.
			return
		}
		d.size -= ve.size
		delete(d.entries, victim)
		d.metrics.DiskEvictions.Add(1)
	}
}

// Quarantine moves a corrupt entry aside (dir/quarantine/<digest>.json) so
// it is served as a miss from now on but stays available for diagnosis.
// internal/run calls this when a stored entry fails to decode or fails its
// integrity check.
func (d *Disk) Quarantine(digest string) {
	if !validDigest(digest) {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	src := d.path(digest)
	dst := filepath.Join(d.dir, quarantineDir, digest+entrySuffix)
	if err := os.Rename(src, dst); err != nil && !errors.Is(err, fs.ErrNotExist) {
		os.Remove(src) // last resort: a corrupt entry must not keep serving
	}
	if e, ok := d.entries[digest]; ok {
		d.size -= e.size
		delete(d.entries, digest)
	}
	d.metrics.Corrupt.Add(1)
}

// Len is the number of entries in this process's index.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

// SizeBytes is the indexed total entry size.
func (d *Disk) SizeBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.size
}
