package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// digestN fabricates a distinct valid (hex) digest for tests.
func digestN(n int) string { return fmt.Sprintf("%064x", n) }

func openTestDisk(t *testing.T, maxBytes int64) (*Disk, *Metrics) {
	t.Helper()
	m := &Metrics{}
	d, err := OpenDisk(filepath.Join(t.TempDir(), "store"), maxBytes, m)
	if err != nil {
		t.Fatal(err)
	}
	return d, m
}

func TestDiskPutGetRoundTrip(t *testing.T) {
	d, m := openTestDisk(t, 0)
	if _, ok := d.Get(digestN(1)); ok {
		t.Fatal("empty store reported a hit")
	}
	if got := m.DiskMisses.Load(); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	want := []byte(`{"v":1,"hello":"world"}`)
	if err := d.Put(digestN(1), want); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get(digestN(1))
	if !ok || string(got) != string(want) {
		t.Fatalf("Get = (%q, %t), want stored bytes", got, ok)
	}
	if hits := m.DiskHits.Load(); hits != 1 {
		t.Errorf("hits = %d, want 1", hits)
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d, want 1", d.Len())
	}
}

func TestDiskSurvivesReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	d1, err := OpenDisk(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Put(digestN(7), []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	// A fresh process: reopen the same directory.
	d2, err := OpenDisk(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 1 {
		t.Errorf("reopened Len = %d, want 1 (index rebuilt from disk)", d2.Len())
	}
	got, ok := d2.Get(digestN(7))
	if !ok || string(got) != "persisted" {
		t.Fatalf("reopened Get = (%q, %t), want persisted entry", got, ok)
	}
}

func TestDiskCrossProcessReadThrough(t *testing.T) {
	// Two Disk handles on one directory model the CLI pre-warming a
	// server's store: a write through one handle must be a hit through
	// the other, even though the second handle never indexed it.
	dir := filepath.Join(t.TempDir(), "store")
	a, err := OpenDisk(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenDisk(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put(digestN(3), []byte("warm")); err != nil {
		t.Fatal(err)
	}
	got, ok := b.Get(digestN(3))
	if !ok || string(got) != "warm" {
		t.Fatalf("cross-handle Get = (%q, %t), want hit", got, ok)
	}
	if b.Len() != 1 {
		t.Errorf("read-through did not index the entry: Len = %d, want 1", b.Len())
	}
}

func TestDiskSizeCapEvictsOldestFirst(t *testing.T) {
	d, m := openTestDisk(t, 30) // three 10-byte entries fit exactly
	payload := []byte("0123456789")
	base := time.Now().Add(-time.Hour)
	for i := 1; i <= 3; i++ {
		if err := d.Put(digestN(i), payload); err != nil {
			t.Fatal(err)
		}
		// Pin distinct mtimes so eviction order is unambiguous.
		at := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(d.path(digestN(i)), at, at); err != nil {
			t.Fatal(err)
		}
		d.mu.Lock()
		e := d.entries[digestN(i)]
		e.mtime = at
		d.entries[digestN(i)] = e
		d.mu.Unlock()
	}
	// Touch entry 1 via Get: it becomes most recently used.
	if _, ok := d.Get(digestN(1)); !ok {
		t.Fatal("expected hit")
	}
	// A fourth entry overflows the cap; entry 2 (oldest mtime) must go.
	if err := d.Put(digestN(4), payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(digestN(2)); ok {
		t.Error("oldest entry still present; want evicted")
	}
	for _, n := range []int{1, 3, 4} {
		if _, ok := d.Get(digestN(n)); !ok {
			t.Errorf("entry %d evicted; want retained", n)
		}
	}
	if ev := m.DiskEvictions.Load(); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
}

func TestDiskOversizedEntryStillLands(t *testing.T) {
	d, _ := openTestDisk(t, 4)
	big := []byte("way past the cap")
	if err := d.Put(digestN(9), big); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(digestN(9)); !ok {
		t.Error("just-written oversized entry evicted; want retained until a newer Put")
	}
}

func TestDiskQuarantineCorruptEntry(t *testing.T) {
	d, m := openTestDisk(t, 0)
	if err := d.Put(digestN(5), []byte("soon to be garbage")); err != nil {
		t.Fatal(err)
	}
	d.Quarantine(digestN(5))
	if _, ok := d.Get(digestN(5)); ok {
		t.Error("quarantined entry still served")
	}
	if got := m.Corrupt.Load(); got != 1 {
		t.Errorf("corrupt = %d, want 1", got)
	}
	// The entry was moved aside, not deleted.
	q := filepath.Join(d.Dir(), quarantineDir, digestN(5)+entrySuffix)
	if _, err := os.Stat(q); err != nil {
		t.Errorf("quarantined file missing: %v", err)
	}
	if d.Len() != 0 || d.SizeBytes() != 0 {
		t.Errorf("index after quarantine: len=%d size=%d, want 0/0", d.Len(), d.SizeBytes())
	}
}

func TestDiskRejectsTraversalDigests(t *testing.T) {
	d, _ := openTestDisk(t, 0)
	for _, bad := range []string{"", "../../etc/passwd", "ABCDEF", "a/b", strings.Repeat("a", 200)} {
		if err := d.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted; want rejected", bad)
		}
		if _, ok := d.Get(bad); ok {
			t.Errorf("Get(%q) hit; want miss", bad)
		}
	}
}

func TestDiskOpenFailsOnUnusableDir(t *testing.T) {
	// A path whose parent is a regular file cannot be created — the
	// deterministic stand-in for a read-only volume (euid 0 ignores
	// permission bits, so chmod-based read-only checks are unreliable in
	// CI containers).
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(filepath.Join(blocker, "store"), 0, nil); err == nil {
		t.Fatal("OpenDisk under a file succeeded; want error so callers degrade to memory-only")
	}
}

func TestDiskConcurrentReadersAndWriters(t *testing.T) {
	d, _ := openTestDisk(t, 1<<20)
	const (
		goroutines = 8
		rounds     = 50
	)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Half the keys are shared across goroutines so reads and
				// writes genuinely overlap on the same digest.
				key := digestN(i % 10)
				if g%2 == 0 {
					if err := d.Put(key, []byte(strings.Repeat("x", 64))); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				} else if data, ok := d.Get(key); ok && len(data) != 64 {
					t.Errorf("torn read: %d bytes", len(data))
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
