package store

import "testing"

func TestLRUEvictionOrder(t *testing.T) {
	c := NewLRU(2)
	if ev := c.Add("a"); len(ev) != 0 {
		t.Fatalf("Add(a) evicted %v", ev)
	}
	if ev := c.Add("b"); len(ev) != 0 {
		t.Fatalf("Add(b) evicted %v", ev)
	}
	c.Bump("a") // b is now the victim
	ev := c.Add("c")
	if len(ev) != 1 || ev[0] != "b" {
		t.Fatalf("Add(c) evicted %v, want [b]", ev)
	}
	if !c.Contains("a") || !c.Contains("c") || c.Contains("b") {
		t.Errorf("membership after eviction: a=%t b=%t c=%t, want true/false/true",
			c.Contains("a"), c.Contains("b"), c.Contains("c"))
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestLRUReAddRefreshes(t *testing.T) {
	c := NewLRU(2)
	c.Add("a")
	c.Add("b")
	if ev := c.Add("a"); len(ev) != 0 {
		t.Fatalf("re-Add(a) evicted %v", ev)
	}
	if ev := c.Add("c"); len(ev) != 1 || ev[0] != "b" {
		t.Fatalf("Add(c) evicted %v, want [b] (a was refreshed)", ev)
	}
}

func TestLRUMinimumCapacity(t *testing.T) {
	c := NewLRU(0) // clamped to 1
	c.Add("a")
	if ev := c.Add("b"); len(ev) != 1 || ev[0] != "a" {
		t.Fatalf("Add(b) evicted %v, want [a]", ev)
	}
	if c.Bump("missing"); c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}
