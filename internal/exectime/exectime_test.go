package exectime

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hcperf/internal/simtime"
)

func TestConstant(t *testing.T) {
	m := Constant(0.02)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5; i++ {
		if got := m.Sample(rng, simtime.Time(i), NominalScene()); got != 0.02 {
			t.Fatalf("Sample = %v, want 0.02", got)
		}
	}
	if m.Nominal() != 0.02 {
		t.Errorf("Nominal = %v, want 0.02", m.Nominal())
	}
}

func TestUniformValidation(t *testing.T) {
	tests := []struct {
		name    string
		lo, hi  simtime.Duration
		wantErr bool
	}{
		{name: "ok", lo: 0.01, hi: 0.02},
		{name: "point", lo: 0.01, hi: 0.01},
		{name: "inverted", lo: 0.02, hi: 0.01, wantErr: true},
		{name: "negative", lo: -0.01, hi: 0.02, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewUniform(tt.lo, tt.hi)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewUniform(%v,%v) err = %v, wantErr %v", tt.lo, tt.hi, err, tt.wantErr)
			}
		})
	}
}

func TestUniformSamplesInRange(t *testing.T) {
	m, err := NewUniform(0.010, 0.030)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var acc float64
	for i := 0; i < 2000; i++ {
		d := m.Sample(rng, 0, NominalScene())
		if d < 0.010 || d > 0.030 {
			t.Fatalf("sample %v outside [0.010,0.030]", d)
		}
		acc += float64(d)
	}
	mean := acc / 2000
	if math.Abs(mean-0.020) > 0.001 {
		t.Errorf("empirical mean %v too far from 0.020", mean)
	}
	if m.Nominal() != 0.020 {
		t.Errorf("Nominal = %v, want 0.020", m.Nominal())
	}
}

func TestTruncNormal(t *testing.T) {
	if _, err := NewTruncNormal(0.02, 0.005, 0.01, 0.05); err != nil {
		t.Fatal(err)
	}
	if _, err := NewTruncNormal(0.02, -1, 0.01, 0.05); err == nil {
		t.Error("negative SD accepted")
	}
	if _, err := NewTruncNormal(0.2, 0.01, 0.01, 0.05); err == nil {
		t.Error("mean outside range accepted")
	}
	if _, err := NewTruncNormal(0.02, 0.01, 0.05, 0.01); err == nil {
		t.Error("inverted range accepted")
	}

	m, err := NewTruncNormal(0.02, 0.004, 0.012, 0.06)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		d := m.Sample(rng, 0, NominalScene())
		if d < 0.012 || d > 0.06 {
			t.Fatalf("sample %v escaped truncation [0.012,0.06]", d)
		}
	}
	if m.Nominal() != 0.02 {
		t.Errorf("Nominal = %v, want 0.02", m.Nominal())
	}
	zero := TruncNormal{Mean: 0.02, SD: 0, Lo: 0.01, Hi: 0.05}
	if got := zero.Sample(rng, 0, NominalScene()); got != 0.02 {
		t.Errorf("zero-SD sample = %v, want mean", got)
	}
}

func TestFusionScalesWithObstacles(t *testing.T) {
	m, err := NewFusion(0.005, 1e-6, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	few := m.Sample(rng, 0, Scene{Obstacles: 5, LoadFactor: 1})
	many := m.Sample(rng, 0, Scene{Obstacles: 20, LoadFactor: 1})
	if many <= few {
		t.Errorf("fusion time with 20 obstacles (%v) not greater than with 5 (%v)", many, few)
	}
	// O(n^3): 4x obstacles => 64x the matching portion.
	wantMany := 0.005 + 1e-6*8000
	if math.Abs(float64(many)-wantMany) > 1e-12 {
		t.Errorf("fusion(20) = %v, want %v", many, wantMany)
	}
	// Load factor doubles the whole cost.
	loaded := m.Sample(rng, 0, Scene{Obstacles: 5, LoadFactor: 2})
	if math.Abs(float64(loaded)-2*float64(few)) > 1e-12 {
		t.Errorf("loaded sample %v, want %v", loaded, 2*few)
	}
	// Zero load factor treated as nominal.
	unset := m.Sample(rng, 0, Scene{Obstacles: 5})
	if unset != few {
		t.Errorf("zero LoadFactor sample %v, want %v", unset, few)
	}
}

func TestFusionValidation(t *testing.T) {
	if _, err := NewFusion(-1, 0, 0); err == nil {
		t.Error("negative base accepted")
	}
	if _, err := NewFusion(0, -1, 0); err == nil {
		t.Error("negative per-op accepted")
	}
	if _, err := NewFusion(0, 0, 1.5); err == nil {
		t.Error("jitter >= 1 accepted")
	}
}

func TestFusionJitterBounded(t *testing.T) {
	m, err := NewFusion(0.01, 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		d := m.Sample(rng, 0, Scene{Obstacles: 0, LoadFactor: 1})
		if d < 0.009-1e-12 || d > 0.011+1e-12 {
			t.Fatalf("jittered sample %v outside [0.009,0.011]", d)
		}
	}
}

func TestProfile(t *testing.T) {
	inner := Constant(0.020)
	p, err := NewProfile(inner, []Step{{From: 10, To: 80, Factor: 2}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	scene := NominalScene()
	tests := []struct {
		at   simtime.Time
		want simtime.Duration
	}{
		{at: 0, want: 0.020},
		{at: 9.999, want: 0.020},
		{at: 10, want: 0.040},
		{at: 79.999, want: 0.040},
		{at: 80, want: 0.020},
	}
	for _, tt := range tests {
		if got := p.Sample(rng, tt.at, scene); math.Abs(float64(got-tt.want)) > 1e-12 {
			t.Errorf("Sample(at=%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
	if p.Nominal() != 0.020 {
		t.Errorf("Nominal = %v, want inner nominal", p.Nominal())
	}
}

func TestProfileOverlappingStepsMultiply(t *testing.T) {
	p, err := NewProfile(Constant(0.01), []Step{
		{From: 0, To: 10, Factor: 2},
		{From: 5, To: 10, Factor: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.FactorAt(7); got != 6 {
		t.Errorf("FactorAt(7) = %v, want 6", got)
	}
	if got := p.FactorAt(2); got != 2 {
		t.Errorf("FactorAt(2) = %v, want 2", got)
	}
}

func TestProfileValidation(t *testing.T) {
	if _, err := NewProfile(nil, nil); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := NewProfile(Constant(1), []Step{{From: 5, To: 5, Factor: 2}}); err == nil {
		t.Error("empty interval accepted")
	}
	if _, err := NewProfile(Constant(1), []Step{{From: 0, To: 5, Factor: 0}}); err == nil {
		t.Error("zero factor accepted")
	}
}

func TestProfileCopiesSteps(t *testing.T) {
	steps := []Step{{From: 0, To: 1, Factor: 2}}
	p, err := NewProfile(Constant(1), steps)
	if err != nil {
		t.Fatal(err)
	}
	steps[0].Factor = 100
	if got := p.FactorAt(0.5); got != 2 {
		t.Errorf("profile affected by caller mutation: factor %v, want 2", got)
	}
}

func TestJitter(t *testing.T) {
	if _, err := NewJitter(nil, 0.1); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := NewJitter(Constant(1), 1.0); err == nil {
		t.Error("rel = 1 accepted")
	}
	j, err := NewJitter(Constant(0.1), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		d := j.Sample(rng, 0, NominalScene())
		if d < 0.08-1e-12 || d > 0.12+1e-12 {
			t.Fatalf("jittered sample %v outside [0.08,0.12]", d)
		}
	}
	if j.Nominal() != 0.1 {
		t.Errorf("Nominal = %v, want 0.1", j.Nominal())
	}
}

// Property: all models produce non-negative samples for arbitrary scenes
// and times.
func TestQuickSamplesNonNegative(t *testing.T) {
	fusion, err := NewFusion(0.002, 1e-7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := NewUniform(0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := NewTruncNormal(0.02, 0.01, 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	models := []Model{Constant(0.01), uni, tn, fusion}
	f := func(seed int64, obstacles uint8, load uint8, at uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		scene := Scene{Obstacles: int(obstacles), LoadFactor: float64(load) / 16}
		for _, m := range models {
			if m.Sample(rng, simtime.Time(at), scene) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: profile factors are always the product of active steps and
// samples scale accordingly for a deterministic inner model.
func TestQuickProfileScaling(t *testing.T) {
	f := func(at uint16) bool {
		p, err := NewProfile(Constant(0.01), []Step{
			{From: 10, To: 80, Factor: 2},
			{From: 40, To: 60, Factor: 1.5},
		})
		if err != nil {
			return false
		}
		tm := simtime.Time(float64(at) / 100)
		rng := rand.New(rand.NewSource(1))
		got := p.Sample(rng, tm, NominalScene())
		want := simtime.Duration(0.01 * p.FactorAt(tm))
		return math.Abs(float64(got-want)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
