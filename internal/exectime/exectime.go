// Package exectime models task execution times for the HCPerf simulator.
//
// The paper's central workload property is that autonomous-driving task
// execution times depend heavily on the runtime scene: configurable sensor
// fusion runs Hungarian matching over the n detected obstacles (O(n^3)), so
// a complex intersection can double or triple its running time. This package
// provides composable execution-time models — constants, bounded random
// ranges, obstacle-driven fusion costs and time-varying load profiles — all
// sampled from caller-owned seeded RNGs so simulations stay deterministic.
package exectime

import (
	"errors"
	"fmt"
	"math/rand"

	"hcperf/internal/hungarian"
	"hcperf/internal/simtime"
)

// Scene captures the runtime driving context that execution times depend on.
type Scene struct {
	// Obstacles is the number of objects currently detected around the
	// vehicle; it drives the Hungarian-matching cost of sensor fusion.
	Obstacles int
	// LoadFactor is a generic multiplier applied by scene-sensitive
	// models; 1 means nominal load. Scenario code uses it to emulate the
	// paper's 20 ms -> 40 ms fusion-load step.
	LoadFactor float64
}

// NominalScene is the quiet-road scene: a typical light-traffic obstacle
// count at nominal load.
func NominalScene() Scene { return Scene{Obstacles: 10, LoadFactor: 1} }

// Model produces execution times. Implementations must be pure given
// (rng, at, scene): all randomness flows through rng.
type Model interface {
	// Sample returns the execution time for a job released at virtual
	// time at under the given scene.
	Sample(rng *rand.Rand, at simtime.Time, scene Scene) simtime.Duration
	// Nominal returns the representative (design-time) execution time,
	// used for initial schedulability reasoning before any observation
	// exists.
	Nominal() simtime.Duration
}

// Constant is a fixed execution time.
type Constant simtime.Duration

// Sample implements Model.
func (c Constant) Sample(*rand.Rand, simtime.Time, Scene) simtime.Duration {
	return simtime.Duration(c)
}

// Nominal implements Model.
func (c Constant) Nominal() simtime.Duration { return simtime.Duration(c) }

// Uniform samples uniformly from [Lo, Hi].
type Uniform struct {
	Lo, Hi simtime.Duration
}

// NewUniform validates and builds a Uniform model.
func NewUniform(lo, hi simtime.Duration) (Uniform, error) {
	if lo < 0 || hi < lo {
		return Uniform{}, fmt.Errorf("exectime: invalid uniform range [%v,%v]", lo, hi)
	}
	return Uniform{Lo: lo, Hi: hi}, nil
}

// Sample implements Model.
func (u Uniform) Sample(rng *rand.Rand, _ simtime.Time, _ Scene) simtime.Duration {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + simtime.Duration(rng.Float64())*(u.Hi-u.Lo)
}

// Nominal implements Model.
func (u Uniform) Nominal() simtime.Duration { return (u.Lo + u.Hi) / 2 }

// TruncNormal samples from a normal distribution truncated to [Lo, Hi].
// This matches the unimodal-with-tail execution-time histograms the paper
// measures on the Jetson TX2 (Fig. 12).
type TruncNormal struct {
	Mean, SD simtime.Duration
	Lo, Hi   simtime.Duration
}

// NewTruncNormal validates and builds a TruncNormal model.
func NewTruncNormal(mean, sd, lo, hi simtime.Duration) (TruncNormal, error) {
	if lo < 0 || hi < lo {
		return TruncNormal{}, fmt.Errorf("exectime: invalid truncation range [%v,%v]", lo, hi)
	}
	if sd < 0 {
		return TruncNormal{}, errors.New("exectime: negative standard deviation")
	}
	if mean < lo || mean > hi {
		return TruncNormal{}, fmt.Errorf("exectime: mean %v outside [%v,%v]", mean, lo, hi)
	}
	return TruncNormal{Mean: mean, SD: sd, Lo: lo, Hi: hi}, nil
}

// Sample implements Model.
func (n TruncNormal) Sample(rng *rand.Rand, _ simtime.Time, _ Scene) simtime.Duration {
	if n.SD == 0 {
		return clampDur(n.Mean, n.Lo, n.Hi)
	}
	// Rejection sampling; the truncation windows used by the AD profiles
	// keep the acceptance rate high. Fall back to clamping after a few
	// rejects so adversarial configurations cannot spin.
	for i := 0; i < 16; i++ {
		x := n.Mean + simtime.Duration(rng.NormFloat64())*n.SD
		if x >= n.Lo && x <= n.Hi {
			return x
		}
	}
	return clampDur(n.Mean+simtime.Duration(rng.NormFloat64())*n.SD, n.Lo, n.Hi)
}

// Nominal implements Model.
func (n TruncNormal) Nominal() simtime.Duration { return clampDur(n.Mean, n.Lo, n.Hi) }

// Fusion models configurable sensor fusion: a base cost plus the Hungarian
// matching cost over the obstacles in the scene, scaled by the scene load
// factor. PerOp is the simulated time per elementary matching operation.
type Fusion struct {
	Base  simtime.Duration
	PerOp simtime.Duration
	// RelJitter adds +/- RelJitter fractional uniform noise, modelling
	// cache and memory effects (0 disables).
	RelJitter float64
}

// NewFusion validates and builds a Fusion model.
func NewFusion(base, perOp simtime.Duration, relJitter float64) (Fusion, error) {
	if base < 0 || perOp < 0 {
		return Fusion{}, errors.New("exectime: negative fusion cost")
	}
	if relJitter < 0 || relJitter >= 1 {
		return Fusion{}, fmt.Errorf("exectime: fusion jitter %v outside [0,1)", relJitter)
	}
	return Fusion{Base: base, PerOp: perOp, RelJitter: relJitter}, nil
}

// Sample implements Model.
func (f Fusion) Sample(rng *rand.Rand, _ simtime.Time, scene Scene) simtime.Duration {
	load := scene.LoadFactor
	if load <= 0 {
		load = 1
	}
	d := (f.Base + f.PerOp*simtime.Duration(hungarian.Ops(scene.Obstacles))) * simtime.Duration(load)
	if f.RelJitter > 0 {
		d *= simtime.Duration(1 + f.RelJitter*(2*rng.Float64()-1))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Nominal implements Model.
func (f Fusion) Nominal() simtime.Duration {
	scene := NominalScene()
	return f.Base + f.PerOp*simtime.Duration(hungarian.Ops(scene.Obstacles))
}

// Step is one segment of a load profile: between From (inclusive) and To
// (exclusive) the wrapped model's samples are multiplied by Factor.
type Step struct {
	From, To simtime.Time
	Factor   float64
}

// Profile wraps a model with a time-varying multiplicative load profile,
// e.g. the paper's car-following experiment doubles the fusion time during
// t in [10 s, 80 s).
type Profile struct {
	Inner Model
	Steps []Step
}

// NewProfile validates and builds a Profile.
func NewProfile(inner Model, steps []Step) (*Profile, error) {
	if inner == nil {
		return nil, errors.New("exectime: profile with nil inner model")
	}
	for i, s := range steps {
		if s.To <= s.From {
			return nil, fmt.Errorf("exectime: profile step %d has empty interval [%v,%v)", i, s.From, s.To)
		}
		if s.Factor <= 0 {
			return nil, fmt.Errorf("exectime: profile step %d has non-positive factor %v", i, s.Factor)
		}
	}
	out := &Profile{Inner: inner, Steps: make([]Step, len(steps))}
	copy(out.Steps, steps)
	return out, nil
}

// FactorAt returns the combined multiplier active at time at.
func (p *Profile) FactorAt(at simtime.Time) float64 {
	f := 1.0
	for _, s := range p.Steps {
		if at >= s.From && at < s.To {
			f *= s.Factor
		}
	}
	return f
}

// Sample implements Model.
func (p *Profile) Sample(rng *rand.Rand, at simtime.Time, scene Scene) simtime.Duration {
	return p.Inner.Sample(rng, at, scene) * simtime.Duration(p.FactorAt(at))
}

// Nominal implements Model.
func (p *Profile) Nominal() simtime.Duration { return p.Inner.Nominal() }

// Jitter wraps a model with multiplicative uniform noise of relative
// amplitude Rel (sampled factor in [1-Rel, 1+Rel]).
type Jitter struct {
	Inner Model
	Rel   float64
}

// NewJitter validates and builds a Jitter wrapper.
func NewJitter(inner Model, rel float64) (Jitter, error) {
	if inner == nil {
		return Jitter{}, errors.New("exectime: jitter with nil inner model")
	}
	if rel < 0 || rel >= 1 {
		return Jitter{}, fmt.Errorf("exectime: jitter amplitude %v outside [0,1)", rel)
	}
	return Jitter{Inner: inner, Rel: rel}, nil
}

// Sample implements Model.
func (j Jitter) Sample(rng *rand.Rand, at simtime.Time, scene Scene) simtime.Duration {
	d := j.Inner.Sample(rng, at, scene)
	if j.Rel > 0 {
		d *= simtime.Duration(1 + j.Rel*(2*rng.Float64()-1))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Nominal implements Model.
func (j Jitter) Nominal() simtime.Duration { return j.Inner.Nominal() }

func clampDur(x, lo, hi simtime.Duration) simtime.Duration {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Linear models a task whose cost grows linearly with the number of
// detected objects (per-proposal work in detection and tracking): Base +
// PerItem·obstacles, scaled by the scene load factor, with optional
// relative jitter.
type Linear struct {
	Base      simtime.Duration
	PerItem   simtime.Duration
	RelJitter float64
	// NominalItems is the obstacle count assumed by Nominal().
	NominalItems int
}

// NewLinear validates and builds a Linear model.
func NewLinear(base, perItem simtime.Duration, nominalItems int, relJitter float64) (Linear, error) {
	if base < 0 || perItem < 0 {
		return Linear{}, errors.New("exectime: negative linear cost")
	}
	if nominalItems < 0 {
		return Linear{}, errors.New("exectime: negative nominal item count")
	}
	if relJitter < 0 || relJitter >= 1 {
		return Linear{}, fmt.Errorf("exectime: linear jitter %v outside [0,1)", relJitter)
	}
	return Linear{Base: base, PerItem: perItem, NominalItems: nominalItems, RelJitter: relJitter}, nil
}

// Sample implements Model.
func (l Linear) Sample(rng *rand.Rand, _ simtime.Time, scene Scene) simtime.Duration {
	load := scene.LoadFactor
	if load <= 0 {
		load = 1
	}
	n := scene.Obstacles
	if n < 0 {
		n = 0
	}
	d := (l.Base + l.PerItem*simtime.Duration(n)) * simtime.Duration(load)
	if l.RelJitter > 0 {
		d *= simtime.Duration(1 + l.RelJitter*(2*rng.Float64()-1))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Nominal implements Model.
func (l Linear) Nominal() simtime.Duration {
	return l.Base + l.PerItem*simtime.Duration(l.NominalItems)
}
