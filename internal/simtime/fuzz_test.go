package simtime

import "testing"

// firing is one observed event execution: the instant it ran, the queue's
// sequence-derived tag, and the firing ordinal. Comparing slices of firings
// across schedulers pins bit-for-bit (At, seq) equivalence.
type firing struct {
	At  Time
	Tag int
	Ord int
}

// runSchedulerScript interprets script as a deterministic stream of
// schedule / cancel / ticker / halt operations against q, interleaved with
// event execution, and returns the complete firing sequence. The same script
// run on the wheel and on the heap must return identical slices.
func runSchedulerScript(q *EventQueue, script []byte) []firing {
	var fired []firing
	var tickers []*Ticker
	// Handles are only valid until the event reaches a terminal state and the
	// queue schedules again (records are recycled), so the script tracks
	// which tags have fired and never cancels a stale handle — cancelling one
	// would target whatever event reused the record, and the two schedulers
	// recycle at different times.
	type handle struct {
		ev  *Event
		tag int
	}
	var pending []handle
	firedTags := map[int]bool{}
	tag := 0
	note := func(id int) func(Time) {
		return func(now Time) {
			firedTags[id] = true
			fired = append(fired, firing{now, id, len(fired)})
		}
	}
	for i := 0; i+2 < len(script) && len(fired) < 1<<14; i += 3 {
		op, a, b := script[i], script[i+1], script[i+2]
		switch op % 7 {
		case 0, 1: // schedule a one-shot at a quantized-or-not offset
			// Offsets deliberately mix sub-tick fractions, exact tick
			// multiples, same-instant duplicates, and far-future jumps so the
			// wheel's drain/l0/l1/overflow routing all get exercised.
			off := Duration(a) * Duration(b+1) / 997
			if a%5 == 0 {
				off = Duration(a) // exact integer seconds: l1/overflow
			}
			if a%17 == 0 {
				off = 0 // same-instant FIFO
			}
			if a == 251 {
				off = Duration(b) * 100000 // deep overflow pages
			}
			tag++
			ev, err := q.Schedule(q.Now()+off, note(tag))
			if err != nil {
				panic(err)
			}
			pending = append(pending, handle{ev, tag})
		case 2: // cancel a previously scheduled, still-valid event
			for len(pending) > 0 {
				idx := int(a) % len(pending)
				h := pending[idx]
				pending[idx] = pending[len(pending)-1]
				pending = pending[:len(pending)-1]
				if firedTags[h.tag] {
					continue // stale handle: the record may have been reused
				}
				q.Cancel(h.ev)
				break
			}
		case 3: // start a ticker
			period := Duration(a%50+1) / 128
			tag++
			tk, err := q.NewTicker(q.Now()+Duration(b)/256, period, note(tag))
			if err != nil {
				panic(err)
			}
			tickers = append(tickers, tk)
		case 4: // stop a ticker
			if len(tickers) > 0 {
				tickers[int(a)%len(tickers)].Stop()
			}
		case 5: // run a bounded slice of virtual time
			if err := q.RunUntil(q.Now() + Duration(a)/16); err != nil && err != ErrHalted {
				panic(err)
			}
		case 6: // step a few events, occasionally halting a nested run
			for n := 0; n < int(a%8); n++ {
				if !q.Step() {
					break
				}
			}
		}
	}
	// Drain everything still queued so late-container routing is compared
	// too; tickers would run forever, so stop them first.
	for _, tk := range tickers {
		tk.Stop()
	}
	const cap = 1 << 15
	for len(fired) < cap && q.Step() {
	}
	return fired
}

// FuzzSchedulerEquivalence feeds random operation scripts to the wheel-backed
// and heap-backed queues and requires byte-identical firing sequences — the
// (At, seq) total order the determinism guarantees rest on.
func FuzzSchedulerEquivalence(f *testing.F) {
	f.Add([]byte{0, 10, 20, 0, 10, 20, 5, 255, 0})
	f.Add([]byte{3, 7, 0, 5, 200, 0, 4, 0, 0, 5, 255, 0})
	f.Add([]byte{0, 251, 9, 0, 251, 9, 2, 0, 0, 5, 255, 0})
	f.Add([]byte{0, 17, 1, 0, 34, 1, 0, 51, 1, 6, 7, 0})
	f.Add([]byte{1, 85, 3, 3, 12, 128, 5, 90, 0, 2, 1, 0, 5, 255, 0})
	f.Fuzz(func(t *testing.T, script []byte) {
		wheel := runSchedulerScript(NewEventQueue(), script)
		heap := runSchedulerScript(NewHeapEventQueue(), script)
		if len(wheel) != len(heap) {
			t.Fatalf("wheel fired %d events, heap fired %d", len(wheel), len(heap))
		}
		for i := range wheel {
			if wheel[i] != heap[i] {
				t.Fatalf("firing %d diverges: wheel %+v, heap %+v", i, wheel[i], heap[i])
			}
		}
	})
}
