package simtime

import "testing"

// benchTickerSecond drives a realistic kernel workload: 32 tickers with
// HCPerf-like periods sharing one queue for one simulated second.
func benchTickerSecond(b *testing.B, newQ func() *EventQueue) {
	periods := []Duration{0.008, 0.010, 0.0125, 0.020, 0.025, 0.040, 0.050, 0.125}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := newQ()
		for t := 0; t < 32; t++ {
			if _, err := q.NewTicker(0, periods[t%len(periods)], func(Time) {}); err != nil {
				b.Fatal(err)
			}
		}
		if err := q.RunUntil(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTickerSecondWheel(b *testing.B) { benchTickerSecond(b, NewEventQueue) }
func BenchmarkTickerSecondHeap(b *testing.B)  { benchTickerSecond(b, NewHeapEventQueue) }

// benchScheduleStep measures raw schedule+step churn on a warm queue.
func benchScheduleStep(b *testing.B, newQ func() *EventQueue) {
	q := newQ()
	fn := func(Time) {}
	for i := 0; i < 64; i++ {
		if _, err := q.After(0.001, fn); err != nil {
			b.Fatal(err)
		}
	}
	for q.Step() {
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.After(0.004, fn); err != nil {
			b.Fatal(err)
		}
		q.Step()
	}
}

func BenchmarkScheduleStepWheel(b *testing.B) { benchScheduleStep(b, NewEventQueue) }
func BenchmarkScheduleStepHeap(b *testing.B)  { benchScheduleStep(b, NewHeapEventQueue) }
