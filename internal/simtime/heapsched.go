package simtime

import "container/heap"

// heapScheduler is the reference Scheduler: a global binary min-heap over
// (At, seq). O(log n) per operation with eager cancellation — the simplest
// store that satisfies the ordering contract, kept as the differential
// oracle for the timer wheel.
type heapScheduler struct {
	q *EventQueue
	h eventHeap
}

func newHeapScheduler(q *EventQueue) *heapScheduler { return &heapScheduler{q: q} }

func (s *heapScheduler) push(ev *Event) { heap.Push(&s.h, ev) }

func (s *heapScheduler) pop() *Event {
	if len(s.h) == 0 {
		return nil
	}
	return heap.Pop(&s.h).(*Event)
}

func (s *heapScheduler) peekAt() (Time, bool) {
	if len(s.h) == 0 {
		return 0, false
	}
	return s.h[0].At, true
}

func (s *heapScheduler) cancel(ev *Event) {
	heap.Remove(&s.h, ev.index)
	ev.index = -2
	// Eager removal detaches the record immediately, so it can be reused
	// right away.
	s.q.recycle(ev)
}

func (s *heapScheduler) size() int { return len(s.h) }

// eventHeap orders events by (At, seq); index tracks the heap position so
// cancellation can remove in place.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
