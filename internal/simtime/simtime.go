// Package simtime provides a deterministic discrete-event simulation kernel:
// a virtual clock, a time-ordered event queue, and periodic timers.
//
// All HCPerf simulation components (task engine, vehicle dynamics,
// coordinators) schedule work on a single EventQueue and observe the same
// virtual clock, which makes every run exactly reproducible for a given
// seed and configuration.
package simtime

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is a virtual simulation instant, measured in seconds from the start
// of the run. float64 seconds keeps the arithmetic in the same units the
// paper uses (periods, deadlines and execution times are all given in
// seconds or milliseconds).
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = Time

// Common conversion helpers.
const (
	Millisecond Duration = 1e-3
	Second      Duration = 1
)

// FromDuration converts a time.Duration into virtual seconds.
func FromDuration(d time.Duration) Duration { return Duration(d.Seconds()) }

// ToDuration converts virtual seconds into a time.Duration.
func (t Time) ToDuration() time.Duration { return time.Duration(float64(t) * float64(time.Second)) }

// Seconds returns the instant as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// String renders the instant with millisecond precision, e.g. "12.340s".
func (t Time) String() string { return fmt.Sprintf("%.3fs", float64(t)) }

// Event is a unit of scheduled work. Fn runs when the virtual clock reaches
// At. Events at the same instant run in scheduling order (FIFO), which keeps
// runs deterministic.
type Event struct {
	At Time
	Fn func(now Time)

	seq   uint64
	index int // heap index; -1 once popped or cancelled
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.index == -2 }

// eventHeap orders events by (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// ErrHalted is returned by Run variants when Halt stopped the queue early.
var ErrHalted = errors.New("simtime: queue halted")

// EventQueue is a discrete-event scheduler. The zero value is not usable;
// construct with NewEventQueue.
type EventQueue struct {
	now    Time
	heap   eventHeap
	seq    uint64
	halted bool
	fired  uint64
}

// NewEventQueue returns an empty queue with the clock at zero.
func NewEventQueue() *EventQueue {
	return &EventQueue{}
}

// Now returns the current virtual time.
func (q *EventQueue) Now() Time { return q.now }

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.heap) }

// Fired returns the total number of events executed so far.
func (q *EventQueue) Fired() uint64 { return q.fired }

// Schedule enqueues fn to run at the absolute instant at. Scheduling in the
// past (before Now) is an error: the returned event is nil and the function
// is not enqueued. Use At >= Now.
func (q *EventQueue) Schedule(at Time, fn func(now Time)) (*Event, error) {
	if math.IsNaN(float64(at)) {
		return nil, fmt.Errorf("simtime: schedule at NaN")
	}
	if at < q.now {
		return nil, fmt.Errorf("simtime: schedule at %v before now %v", at, q.now)
	}
	if fn == nil {
		return nil, errors.New("simtime: schedule with nil fn")
	}
	ev := &Event{At: at, Fn: fn, seq: q.seq}
	q.seq++
	heap.Push(&q.heap, ev)
	return ev, nil
}

// After enqueues fn to run d seconds from now. Negative delays are clamped
// to zero.
func (q *EventQueue) After(d Duration, fn func(now Time)) (*Event, error) {
	if d < 0 {
		d = 0
	}
	return q.Schedule(q.now+d, fn)
}

// Cancel removes a pending event. It is a no-op for events that already
// fired or were already cancelled.
func (q *EventQueue) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&q.heap, ev.index)
	ev.index = -2
}

// Halt stops Run/RunUntil after the currently executing event returns.
func (q *EventQueue) Halt() { q.halted = true }

// Step executes the single earliest pending event, advancing the clock to
// its instant. It reports whether an event ran.
func (q *EventQueue) Step() bool {
	if len(q.heap) == 0 {
		return false
	}
	ev := heap.Pop(&q.heap).(*Event)
	q.now = ev.At
	q.fired++
	ev.Fn(q.now)
	return true
}

// Run executes events until the queue drains or Halt is called. It returns
// ErrHalted if halted, nil otherwise.
func (q *EventQueue) Run() error {
	q.halted = false
	for !q.halted {
		if !q.Step() {
			return nil
		}
	}
	return ErrHalted
}

// RunUntil executes events with At <= end, then advances the clock to end.
// Pending events after end stay queued. It returns ErrHalted if halted.
func (q *EventQueue) RunUntil(end Time) error {
	q.halted = false
	for !q.halted {
		if len(q.heap) == 0 || q.heap[0].At > end {
			if end > q.now {
				q.now = end
			}
			return nil
		}
		q.Step()
	}
	return ErrHalted
}

// Ticker fires fn every period seconds, starting at start. Changing Period
// takes effect from the next tick. Stop cancels future ticks.
type Ticker struct {
	q      *EventQueue
	fn     func(now Time)
	period Duration
	next   *Event
	stop   bool
}

// NewTicker schedules a periodic callback. period must be > 0.
func (q *EventQueue) NewTicker(start Time, period Duration, fn func(now Time)) (*Ticker, error) {
	if period <= 0 {
		return nil, fmt.Errorf("simtime: ticker period %v must be positive", period)
	}
	if fn == nil {
		return nil, errors.New("simtime: ticker with nil fn")
	}
	t := &Ticker{q: q, fn: fn, period: period}
	ev, err := q.Schedule(start, t.tick)
	if err != nil {
		return nil, err
	}
	t.next = ev
	return t, nil
}

func (t *Ticker) tick(now Time) {
	if t.stop {
		return
	}
	t.fn(now)
	if t.stop { // fn may have stopped us
		return
	}
	ev, err := t.q.Schedule(now+t.period, t.tick)
	if err != nil {
		// Scheduling strictly forward from now can only fail on NaN
		// periods, which NewTicker and SetPeriod exclude.
		panic(err)
	}
	t.next = ev
}

// SetPeriod updates the tick interval from the next tick onward.
// Non-positive periods are rejected and leave the ticker unchanged.
func (t *Ticker) SetPeriod(period Duration) error {
	if period <= 0 {
		return fmt.Errorf("simtime: ticker period %v must be positive", period)
	}
	t.period = period
	return nil
}

// Period returns the current tick interval.
func (t *Ticker) Period() Duration { return t.period }

// Stop cancels all future ticks.
func (t *Ticker) Stop() {
	t.stop = true
	if t.next != nil {
		t.q.Cancel(t.next)
		t.next = nil
	}
}
