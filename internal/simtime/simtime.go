// Package simtime provides a deterministic discrete-event simulation kernel:
// a virtual clock, a time-ordered event queue, and periodic timers.
//
// All HCPerf simulation components (task engine, vehicle dynamics,
// coordinators) schedule work on a single EventQueue and observe the same
// virtual clock, which makes every run exactly reproducible for a given
// seed and configuration.
//
// The pending-event store behind an EventQueue is pluggable (see Scheduler):
// the default is a hierarchical timer wheel tuned for the periodic-tick
// workloads the simulator generates, with a binary heap as the reference
// implementation. Both fire events in exactly the same (At, seq) order, so
// the choice is invisible to simulation results.
package simtime

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is a virtual simulation instant, measured in seconds from the start
// of the run. float64 seconds keeps the arithmetic in the same units the
// paper uses (periods, deadlines and execution times are all given in
// seconds or milliseconds).
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = Time

// Common conversion helpers.
const (
	Millisecond Duration = 1e-3
	Second      Duration = 1
)

// FromDuration converts a time.Duration into virtual seconds.
func FromDuration(d time.Duration) Duration { return Duration(d.Seconds()) }

// ToDuration converts virtual seconds into a time.Duration.
func (t Time) ToDuration() time.Duration { return time.Duration(float64(t) * float64(time.Second)) }

// Seconds returns the instant as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// String renders the instant with millisecond precision, e.g. "12.340s".
func (t Time) String() string { return fmt.Sprintf("%.3fs", float64(t)) }

// Event is a unit of scheduled work. Fn runs when the virtual clock reaches
// At. Events at the same instant run in scheduling order (FIFO), which keeps
// runs deterministic.
//
// An event moves through a three-state machine, tracked in index:
//
//	pending   (index >= 0)  queued by Schedule; Cancel may still remove it
//	fired     (index == -1) executed by Step — terminal
//	cancelled (index == -2) removed by Cancel before firing — terminal
//
// Fired and Cancelled report the terminal states; a pending event reports
// neither. Event records are recycled: once an event reaches a terminal
// state, a later Schedule on the same queue may reuse its record, at which
// point the old handle describes the new pending event. Handles are
// therefore valid for state inspection (and for Cancel, which is a no-op on
// terminal events) only until the owning queue schedules again; callers that
// keep handles across events — like Ticker — must drop them no later than
// when the event reaches a terminal state.
type Event struct {
	At Time
	Fn func(now Time)

	seq   uint64
	index int    // pending position (scheduler-defined) or terminal state
	next  *Event // intrusive slot-list link while parked in a wheel slot
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.index == -2 }

// Fired reports whether the event was executed by the queue.
func (e *Event) Fired() bool { return e.index == -1 }

// Pending reports whether the event is still queued.
func (e *Event) Pending() bool { return e.index >= 0 }

// ErrHalted is returned by Run variants when Halt stopped the queue early.
var ErrHalted = errors.New("simtime: queue halted")

// Scheduler is the pending-event store strategy behind an EventQueue. It is
// sealed: the two implementations are the hierarchical timer wheel
// (NewEventQueue, the default) and the reference binary heap
// (NewHeapEventQueue). Both fire events in identical (At, seq) order — the
// differential fuzz harness pins that equivalence — so scheduler choice
// never changes simulation results, only their cost.
type Scheduler interface {
	// push stores a pending event and assigns its pending index.
	push(ev *Event)
	// pop removes and returns the earliest (At, seq) live event, marking
	// it fired, or returns nil when no live events remain.
	pop() *Event
	// peekAt returns the instant of the earliest live event.
	peekAt() (Time, bool)
	// cancel marks a pending event cancelled. The caller guarantees the
	// event is pending on this scheduler.
	cancel(ev *Event)
	// size returns the number of live (non-cancelled) pending events.
	size() int
}

// EventQueue is a discrete-event scheduler. The zero value is not usable;
// construct with NewEventQueue (timer wheel) or NewHeapEventQueue (binary
// heap).
type EventQueue struct {
	now    Time
	sch    Scheduler
	seq    uint64
	halted bool
	fired  uint64
	// free recycles terminal event records so steady-state
	// Schedule/Cancel/Step allocates nothing.
	free []*Event
}

// NewEventQueue returns an empty queue with the clock at zero, backed by the
// hierarchical timer wheel.
func NewEventQueue() *EventQueue {
	q := &EventQueue{}
	q.sch = newWheelScheduler(q)
	return q
}

// NewHeapEventQueue returns an empty queue with the clock at zero, backed by
// the reference binary-heap scheduler. It exists for differential testing
// and benchmarking against the default wheel.
func NewHeapEventQueue() *EventQueue {
	q := &EventQueue{}
	q.sch = newHeapScheduler(q)
	return q
}

// Now returns the current virtual time.
func (q *EventQueue) Now() Time { return q.now }

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return q.sch.size() }

// Fired returns the total number of events executed so far.
func (q *EventQueue) Fired() uint64 { return q.fired }

// alloc takes an event record off the freelist, or allocates one.
func (q *EventQueue) alloc() *Event {
	if n := len(q.free); n > 0 {
		ev := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		return ev
	}
	return &Event{}
}

// recycle returns a terminal event record to the freelist. The record keeps
// its terminal index so held handles still answer Fired/Cancelled correctly
// until the record is reused by a later Schedule.
func (q *EventQueue) recycle(ev *Event) {
	ev.Fn = nil
	ev.next = nil
	q.free = append(q.free, ev)
}

// Schedule enqueues fn to run at the absolute instant at. Scheduling in the
// past (before Now) is an error: the returned event is nil and the function
// is not enqueued. Use At >= Now.
func (q *EventQueue) Schedule(at Time, fn func(now Time)) (*Event, error) {
	if math.IsNaN(float64(at)) {
		return nil, fmt.Errorf("simtime: schedule at NaN")
	}
	if at < q.now {
		return nil, fmt.Errorf("simtime: schedule at %v before now %v", at, q.now)
	}
	if fn == nil {
		return nil, errors.New("simtime: schedule with nil fn")
	}
	ev := q.alloc()
	ev.At = at
	ev.Fn = fn
	ev.seq = q.seq
	q.seq++
	q.sch.push(ev)
	return ev, nil
}

// After enqueues fn to run d seconds from now. Negative delays are clamped
// to zero.
func (q *EventQueue) After(d Duration, fn func(now Time)) (*Event, error) {
	if d < 0 {
		d = 0
	}
	return q.Schedule(q.now+d, fn)
}

// Cancel removes a pending event. It is a no-op for events that already
// fired or were already cancelled.
func (q *EventQueue) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	q.sch.cancel(ev)
}

// Halt stops Run/RunUntil after the currently executing event returns.
func (q *EventQueue) Halt() { q.halted = true }

// Step executes the single earliest pending event, advancing the clock to
// its instant. It reports whether an event ran.
func (q *EventQueue) Step() bool {
	ev := q.sch.pop()
	if ev == nil {
		return false
	}
	q.now = ev.At
	q.fired++
	fn := ev.Fn
	fn(q.now)
	// Recycled only after Fn returns: anything Fn scheduled drew from the
	// freelist before this record rejoined it.
	q.recycle(ev)
	return true
}

// Run executes events until the queue drains or Halt is called. It returns
// ErrHalted if halted, nil otherwise.
func (q *EventQueue) Run() error {
	q.halted = false
	for !q.halted {
		if !q.Step() {
			return nil
		}
	}
	return ErrHalted
}

// RunUntil executes events with At <= end, then advances the clock to end.
// Pending events after end stay queued. It returns ErrHalted if halted.
func (q *EventQueue) RunUntil(end Time) error {
	q.halted = false
	for !q.halted {
		at, ok := q.sch.peekAt()
		if !ok || at > end {
			if end > q.now {
				q.now = end
			}
			return nil
		}
		q.Step()
	}
	return ErrHalted
}

// Ticker fires fn every period seconds, starting at start. Changing Period
// takes effect from the next tick. Stop cancels future ticks.
type Ticker struct {
	q      *EventQueue
	fn     func(now Time)
	tickFn func(now Time) // t.tick bound once; a method value allocates per use
	period Duration
	next   *Event
	stop   bool
}

// NewTicker schedules a periodic callback. period must be > 0.
func (q *EventQueue) NewTicker(start Time, period Duration, fn func(now Time)) (*Ticker, error) {
	if period <= 0 {
		return nil, fmt.Errorf("simtime: ticker period %v must be positive", period)
	}
	if fn == nil {
		return nil, errors.New("simtime: ticker with nil fn")
	}
	t := &Ticker{q: q, fn: fn, period: period}
	t.tickFn = t.tick
	ev, err := q.Schedule(start, t.tickFn)
	if err != nil {
		return nil, err
	}
	t.next = ev
	return t, nil
}

func (t *Ticker) tick(now Time) {
	// The firing record is spent: drop the handle before running fn so a
	// Stop — from inside fn or any later event — never cancels a record
	// the queue has recycled to an unrelated event.
	t.next = nil
	if t.stop {
		return
	}
	t.fn(now)
	if t.stop { // fn may have stopped us
		return
	}
	ev, err := t.q.Schedule(now+t.period, t.tickFn)
	if err != nil {
		// Impossible by construction: now + period is strictly after the
		// queue's clock for the positive, finite periods NewTicker and
		// SetPeriod admit. A failure here means the ticker invariant was
		// broken by a simtime bug, not by the caller.
		panic(fmt.Sprintf("simtime: ticker invariant violated rescheduling period %v at %v: %v", t.period, now, err))
	}
	t.next = ev
}

// SetPeriod updates the tick interval from the next tick onward.
// Non-positive periods are rejected and leave the ticker unchanged.
func (t *Ticker) SetPeriod(period Duration) error {
	if period <= 0 {
		return fmt.Errorf("simtime: ticker period %v must be positive", period)
	}
	t.period = period
	return nil
}

// Period returns the current tick interval.
func (t *Ticker) Period() Duration { return t.period }

// Stop cancels all future ticks.
func (t *Ticker) Stop() {
	t.stop = true
	if t.next != nil {
		t.q.Cancel(t.next)
		t.next = nil
	}
}
