package simtime

import "math/bits"

// wheelScheduler is the default Scheduler: a two-level hierarchical timer
// wheel over quantized virtual time with a heap overflow bucket, tuned for
// the simulator's workload (almost every event is a periodic tick a few
// milliseconds to one second ahead of now).
//
// Virtual time is quantized to ticks of 2^-wheelTickShift seconds. An event
// at instant At lives in exactly one of four places, by distance from cur
// (the tick the wheel has drained up to):
//
//	drain     tick(At) <= cur: a small (At, seq) min-heap of imminent
//	          events — the only container pop ever reads, so cross-bucket
//	          ordering reduces to heap order.
//	level 0   same 256-tick page as cur (tick>>8 == cur>>8): slot tick&255.
//	          One slot is one tick, so a slot needs no internal order.
//	level 1   same 65536-tick page as cur (tick>>16 == cur>>16): slot
//	          (tick>>8)&255. Cascaded into level 0 when cur reaches it.
//	overflow  a later 65536-tick page, or beyond the quantization horizon:
//	          an (At, seq) min-heap, cascaded page by page.
//
// Advancing never walks empty ticks: occupancy bitmaps plus TrailingZeros
// jump straight to the next occupied slot. Cancellation is lazy — the
// record is tombstoned in place (index == -2) and recycled when its
// container drains — so Cancel is O(1) and slot lists are never unlinked.
//
// Ordering equivalence with the reference heap: pop always serves the drain
// heap, which holds exactly the events with tick <= cur; every other
// container holds tick > cur, hence strictly later instants. Events at
// equal At share a tick, so they are always ordered by the same (At, seq)
// heap comparison the reference scheduler uses. The differential fuzz
// harness (FuzzSchedulerEquivalence) pins this bit for bit.
const (
	// wheelTickShift sets the quantum: 2^-10 s ≈ 0.98 ms per tick — fine
	// enough that same-slot events are genuinely simultaneous workloads,
	// coarse enough that a 256-tick page covers the simulator's densest
	// horizon (task periods are 8–125 ms).
	wheelTickShift = 10
	wheelSlots     = 256
	wheelSlotMask  = wheelSlots - 1
	wheelPageMask  = wheelSlots*wheelSlots - 1
	// wheelHorizon bounds the float64 tick computation: beyond 2^52 ticks
	// (~139k simulated years) quantization would lose integer precision,
	// so those events are clamped to a single far-future tick and served
	// from the overflow heap in plain (At, seq) order.
	wheelHorizon   = 1 << 52
	wheelClampTick = uint64(1) << 60
	wheelBitmapLen = wheelSlots / 64
)

// wheelTickOf quantizes an instant (never negative, never NaN — Schedule
// validates) to its wheel tick.
func wheelTickOf(at Time) uint64 {
	f := float64(at) * wheelHorizonScale
	if !(f < wheelHorizon) { // also catches +Inf
		return wheelClampTick
	}
	return uint64(f)
}

const wheelHorizonScale = 1 << wheelTickShift

type wheelScheduler struct {
	q   *EventQueue
	cur uint64 // ticks drained so far: pending wheel events have tick > cur
	// drain holds the imminent events (tick <= cur), ordered by (At, seq).
	drain []*Event
	// Wheel slots are intrusive singly-linked lists threaded through the
	// Event records (Event.next), so parking an event in a slot never
	// allocates and the scheduler needs no per-slot backing storage. List
	// order is irrelevant: a level-0 slot is a single tick whose records
	// drain through the (At, seq) heap, and a level-1 record re-routes
	// purely by its own tick.
	l0    [wheelSlots]*Event
	l0bit [wheelBitmapLen]uint64
	l1    [wheelSlots]*Event
	l1bit [wheelBitmapLen]uint64
	// overflow holds events past the current 65536-tick page (or past the
	// quantization horizon), ordered by (At, seq).
	overflow []*Event
	live     int // pending minus tombstoned
}

func newWheelScheduler(q *EventQueue) *wheelScheduler {
	return &wheelScheduler{q: q}
}

func (w *wheelScheduler) push(ev *Event) {
	ev.index = 0
	w.live++
	w.place(ev)
}

// place routes a record to the container its tick belongs in, relative to
// the current cur. Used by push and by cascades (which re-place records
// after cur advanced).
func (w *wheelScheduler) place(ev *Event) {
	t := wheelTickOf(ev.At)
	switch {
	case t <= w.cur:
		evHeapPush(&w.drain, ev)
	case t>>8 == w.cur>>8:
		s := t & wheelSlotMask
		ev.next = w.l0[s]
		w.l0[s] = ev
		w.l0bit[s>>6] |= 1 << (s & 63)
	case t>>16 == w.cur>>16:
		s := (t >> 8) & wheelSlotMask
		ev.next = w.l1[s]
		w.l1[s] = ev
		w.l1bit[s>>6] |= 1 << (s & 63)
	default:
		evHeapPush(&w.overflow, ev)
	}
}

func (w *wheelScheduler) pop() *Event {
	if !w.ensure() {
		return nil
	}
	ev := evHeapPop(&w.drain)
	ev.index = -1
	w.live--
	return ev
}

func (w *wheelScheduler) peekAt() (Time, bool) {
	if !w.ensure() {
		return 0, false
	}
	return w.drain[0].At, true
}

func (w *wheelScheduler) cancel(ev *Event) {
	// Lazy: tombstone in place; the record is recycled when its container
	// drains. Until then the tombstone keeps the record out of reuse, so
	// the stale container pointer can never alias a new event.
	ev.index = -2
	w.live--
}

func (w *wheelScheduler) size() int { return w.live }

// ensure advances the wheel until the drain heap's top is a live event,
// returning false when no live events remain anywhere.
func (w *wheelScheduler) ensure() bool {
	for {
		for len(w.drain) > 0 && w.drain[0].index == -2 {
			w.q.recycle(evHeapPop(&w.drain))
		}
		if len(w.drain) > 0 {
			return true
		}
		if w.live == 0 {
			return false
		}
		w.advance()
	}
}

// advance moves cur forward to the next occupied tick and shifts that
// container's records toward the drain heap: the nearest level-0 slot if the
// current page has one, else the next level-1 slot cascaded down, else the
// overflow heap's next page cascaded in. live > 0 guarantees something is
// found.
func (w *wheelScheduler) advance() {
	if s := nextBit(&w.l0bit, (w.cur&wheelSlotMask)+1); s >= 0 {
		w.cur = w.cur&^wheelSlotMask | uint64(s)
		w.l0bit[s>>6] &^= 1 << (s & 63)
		head := w.l0[s]
		w.l0[s] = nil
		w.drainSlot(head)
		return
	}
	if s := nextBit(&w.l1bit, (w.cur>>8&wheelSlotMask)+1); s >= 0 {
		// Enter level-1 slot s: cur jumps to the slot's first tick, then
		// the slot's records re-place into level 0 (or the drain heap for
		// the page's tick 0).
		w.cur = w.cur&^uint64(wheelPageMask) | uint64(s)<<8
		w.l1bit[s>>6] &^= 1 << (s & 63)
		head := w.l1[s]
		w.l1[s] = nil
		w.drainSlot(head)
		return
	}
	if len(w.overflow) > 0 {
		// Cascade the overflow's next 65536-tick page into the wheel.
		// Overflow pages are strictly after cur's page, so cur only moves
		// forward.
		top := wheelTickOf(w.overflow[0].At)
		w.cur = top &^ uint64(wheelPageMask)
		for len(w.overflow) > 0 && wheelTickOf(w.overflow[0].At)>>16 == w.cur>>16 {
			ev := evHeapPop(&w.overflow)
			if ev.index == -2 {
				w.q.recycle(ev)
				continue
			}
			w.place(ev)
		}
		return
	}
	panic("simtime: wheel invariant violated: live events but every container is empty")
}

// drainSlot re-places a slot list's records relative to the advanced cur,
// recycling tombstones on the way.
func (w *wheelScheduler) drainSlot(head *Event) {
	for ev := head; ev != nil; {
		nxt := ev.next
		ev.next = nil
		if ev.index == -2 {
			w.q.recycle(ev)
		} else {
			w.place(ev)
		}
		ev = nxt
	}
}

// nextBit returns the lowest set bit index >= from in a 256-bit occupancy
// bitmap, or -1.
func nextBit(bm *[wheelBitmapLen]uint64, from uint64) int {
	if from >= wheelSlots {
		return -1
	}
	mask := ^uint64(0) << (from & 63)
	for i := from >> 6; i < wheelBitmapLen; i++ {
		if b := bm[i] & mask; b != 0 {
			return int(i<<6) + bits.TrailingZeros64(b)
		}
		mask = ^uint64(0)
	}
	return -1
}

// evHeapPush / evHeapPop maintain a binary min-heap over (At, seq) on a
// plain slice — the drain and overflow containers. Hand-rolled instead of
// container/heap: no interface boxing on the hot path, and no index
// maintenance (cancellation is lazy here).
func evLess(a, b *Event) bool {
	return a.At < b.At || (a.At == b.At && a.seq < b.seq)
}

func evHeapPush(h *[]*Event, ev *Event) {
	s := append(*h, ev)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !evLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

func evHeapPop(h *[]*Event) *Event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = nil
	s = s[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && evLess(s[l], s[m]) {
			m = l
		}
		if r < n && evLess(s[r], s[m]) {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	*h = s
	return top
}
