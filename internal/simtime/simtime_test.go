package simtime

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	q := NewEventQueue()
	var got []Time
	for _, at := range []Time{3, 1, 2, 1.5} {
		at := at
		if _, err := q.Schedule(at, func(now Time) { got = append(got, now) }); err != nil {
			t.Fatalf("Schedule(%v): %v", at, err)
		}
	}
	if err := q.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{1, 1.5, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	q := NewEventQueue()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := q.Schedule(5, func(Time) { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events fired out of order: %v", order)
		}
	}
}

func TestSchedulePastRejected(t *testing.T) {
	q := NewEventQueue()
	if _, err := q.Schedule(2, func(Time) {}); err != nil {
		t.Fatal(err)
	}
	if !q.Step() {
		t.Fatal("Step returned false with pending event")
	}
	if _, err := q.Schedule(1, func(Time) {}); err == nil {
		t.Error("scheduling in the past succeeded, want error")
	}
	if _, err := q.Schedule(Time(math.NaN()), func(Time) {}); err == nil {
		t.Error("scheduling at NaN succeeded, want error")
	}
	if _, err := q.Schedule(3, nil); err == nil {
		t.Error("scheduling nil fn succeeded, want error")
	}
}

func TestAfterClampsNegative(t *testing.T) {
	q := NewEventQueue()
	if _, err := q.Schedule(4, func(Time) {}); err != nil {
		t.Fatal(err)
	}
	q.Step()
	fired := false
	if _, err := q.After(-1, func(now Time) {
		fired = true
		if now != 4 {
			t.Errorf("After(-1) fired at %v, want 4 (clamped to now)", now)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := q.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("After(-1) event never fired")
	}
}

func TestCancel(t *testing.T) {
	q := NewEventQueue()
	fired := false
	ev, err := q.Schedule(1, func(Time) { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	q.Cancel(ev)
	if !ev.Cancelled() {
		t.Error("event not marked cancelled")
	}
	if err := q.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
	// Double-cancel and cancel-nil must be harmless.
	q.Cancel(ev)
	q.Cancel(nil)
}

func TestCancelFromWithinEvent(t *testing.T) {
	q := NewEventQueue()
	fired := false
	var victim *Event
	victim, _ = q.Schedule(2, func(Time) { fired = true })
	if _, err := q.Schedule(1, func(Time) { q.Cancel(victim) }); err != nil {
		t.Fatal(err)
	}
	if err := q.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("event cancelled from an earlier event still fired")
	}
}

func TestRunUntil(t *testing.T) {
	q := NewEventQueue()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4} {
		if _, err := q.Schedule(at, func(now Time) { fired = append(fired, now) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.RunUntil(2.5); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("RunUntil(2.5) fired %d events, want 2", len(fired))
	}
	if q.Now() != 2.5 {
		t.Errorf("clock at %v after RunUntil(2.5), want 2.5", q.Now())
	}
	if q.Len() != 2 {
		t.Errorf("%d events pending, want 2", q.Len())
	}
	// Continue to the end.
	if err := q.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 {
		t.Errorf("fired %d events total, want 4", len(fired))
	}
	if q.Now() != 10 {
		t.Errorf("clock at %v, want 10", q.Now())
	}
}

func TestHalt(t *testing.T) {
	q := NewEventQueue()
	count := 0
	for i := 1; i <= 5; i++ {
		if _, err := q.Schedule(Time(i), func(Time) {
			count++
			if count == 2 {
				q.Halt()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Run(); err != ErrHalted {
		t.Fatalf("Run returned %v, want ErrHalted", err)
	}
	if count != 2 {
		t.Errorf("ran %d events before halt, want 2", count)
	}
	// Run again resumes cleanly.
	if err := q.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("ran %d events total, want 5", count)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	q := NewEventQueue()
	var fired []Time
	if _, err := q.Schedule(1, func(now Time) {
		fired = append(fired, now)
		if _, err := q.After(0.5, func(now Time) { fired = append(fired, now) }); err != nil {
			t.Errorf("nested schedule: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := q.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[1] != 1.5 {
		t.Errorf("nested event fired at %v, want [1 1.5]", fired)
	}
}

func TestTicker(t *testing.T) {
	q := NewEventQueue()
	var ticks []Time
	tk, err := q.NewTicker(0, 0.1, func(now Time) { ticks = append(ticks, now) })
	if err != nil {
		t.Fatal(err)
	}
	if err := q.RunUntil(0.55); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 6 { // 0.0 .. 0.5
		t.Fatalf("got %d ticks, want 6: %v", len(ticks), ticks)
	}
	tk.Stop()
	if err := q.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 6 {
		t.Errorf("ticker fired after Stop: %v", ticks)
	}
}

func TestTickerSetPeriod(t *testing.T) {
	q := NewEventQueue()
	var (
		ticks []Time
		tk    *Ticker
		err   error
	)
	tk, err = q.NewTicker(0, 1, func(now Time) {
		ticks = append(ticks, now)
		if now >= 2 {
			if err := tk.SetPeriod(0.5); err != nil {
				t.Errorf("SetPeriod: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.RunUntil(3.2); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, 1, 2, 2.5, 3}
	if len(ticks) != len(want) {
		t.Fatalf("ticks %v, want %v", ticks, want)
	}
	for i := range want {
		if math.Abs(float64(ticks[i]-want[i])) > 1e-12 {
			t.Fatalf("ticks %v, want %v", ticks, want)
		}
	}
	if err := tk.SetPeriod(0); err == nil {
		t.Error("SetPeriod(0) succeeded, want error")
	}
	if tk.Period() != 0.5 {
		t.Errorf("period %v after rejected SetPeriod, want 0.5", tk.Period())
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	q := NewEventQueue()
	var tk *Ticker
	count := 0
	tk, err := q.NewTicker(0, 1, func(Time) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("ticker fired %d times, want 3 (stopped from callback)", count)
	}
}

func TestTickerInvalid(t *testing.T) {
	q := NewEventQueue()
	if _, err := q.NewTicker(0, 0, func(Time) {}); err == nil {
		t.Error("NewTicker period 0 succeeded, want error")
	}
	if _, err := q.NewTicker(0, 1, nil); err == nil {
		t.Error("NewTicker nil fn succeeded, want error")
	}
}

func TestConversions(t *testing.T) {
	if got := FromDuration(1500 * time.Millisecond); got != 1.5 {
		t.Errorf("FromDuration = %v, want 1.5", got)
	}
	if got := Time(2.5).ToDuration(); got != 2500*time.Millisecond {
		t.Errorf("ToDuration = %v, want 2.5s", got)
	}
	if got := Time(1.2345).String(); got != "1.234s" && got != "1.235s" {
		t.Errorf("String = %q", got)
	}
	if got := Time(3.5).Seconds(); got != 3.5 {
		t.Errorf("Seconds = %v, want 3.5", got)
	}
}

// Property: for any set of non-negative offsets, events fire in sorted order
// and the fired count matches the scheduled count.
func TestQuickFiringOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		q := NewEventQueue()
		var fired []Time
		times := make([]float64, len(raw))
		for i, r := range raw {
			at := Time(float64(r) / 100.0)
			times[i] = float64(at)
			if _, err := q.Schedule(at, func(now Time) { fired = append(fired, now) }); err != nil {
				return false
			}
		}
		if err := q.Run(); err != nil {
			return false
		}
		if len(fired) != len(raw) {
			return false
		}
		sort.Float64s(times)
		for i := range fired {
			if float64(fired[i]) != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: random interleavings of schedule and cancel never fire a
// cancelled event and always fire every non-cancelled one.
func TestQuickCancelConsistency(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		q := NewEventQueue()
		type tracked struct {
			ev        *Event
			cancelled bool
			fired     bool
		}
		items := make([]*tracked, 0, n)
		for i := 0; i < int(n); i++ {
			it := &tracked{}
			ev, err := q.Schedule(Time(rng.Float64()*10), func(Time) { it.fired = true })
			if err != nil {
				return false
			}
			it.ev = ev
			items = append(items, it)
		}
		for _, it := range items {
			if rng.Intn(2) == 0 {
				q.Cancel(it.ev)
				it.cancelled = true
			}
		}
		if err := q.Run(); err != nil {
			return false
		}
		for _, it := range items {
			if it.cancelled == it.fired {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
