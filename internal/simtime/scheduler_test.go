package simtime

import (
	"fmt"
	"testing"
)

// both runs the same subtest against the wheel-backed (default) and
// heap-backed queues, so every behavior below is pinned on both schedulers.
func both(t *testing.T, f func(t *testing.T, q *EventQueue)) {
	t.Helper()
	t.Run("wheel", func(t *testing.T) { f(t, NewEventQueue()) })
	t.Run("heap", func(t *testing.T) { f(t, NewHeapEventQueue()) })
}

// TestEventStateMachine pins the three-state machine the Event doc promises:
// pending (index >= 0), fired (-1), cancelled (-2), with the accessors
// mutually exclusive in every state.
func TestEventStateMachine(t *testing.T) {
	both(t, func(t *testing.T, q *EventQueue) {
		pending, err := q.Schedule(1, func(Time) {})
		if err != nil {
			t.Fatal(err)
		}
		if !pending.Pending() || pending.Fired() || pending.Cancelled() {
			t.Fatalf("scheduled event: Pending=%v Fired=%v Cancelled=%v, want true,false,false",
				pending.Pending(), pending.Fired(), pending.Cancelled())
		}

		cancelled, err := q.Schedule(2, func(Time) {})
		if err != nil {
			t.Fatal(err)
		}
		q.Cancel(cancelled)
		if cancelled.Pending() || cancelled.Fired() || !cancelled.Cancelled() {
			t.Fatalf("cancelled event: Pending=%v Fired=%v Cancelled=%v, want false,false,true",
				cancelled.Pending(), cancelled.Fired(), cancelled.Cancelled())
		}

		if !q.Step() {
			t.Fatal("expected the pending event to fire")
		}
		if pending.Pending() || !pending.Fired() || pending.Cancelled() {
			t.Fatalf("fired event: Pending=%v Fired=%v Cancelled=%v, want false,true,false",
				pending.Pending(), pending.Fired(), pending.Cancelled())
		}

		// Terminal states are sticky for Cancel: a second Cancel (or a Cancel
		// of a fired event) is a no-op, not a corruption.
		q.Cancel(pending)
		q.Cancel(cancelled)
		if !pending.Fired() || !cancelled.Cancelled() {
			t.Fatal("Cancel on a terminal event must not change its state")
		}
	})
}

// TestTickerSetPeriodAfterSameInstantStopStart is the regression test for the
// freelist + ticker interaction: stop ticker A from inside its own callback
// and immediately start ticker B at the same instant. B's first event may
// reuse A's just-recycled record; a SetPeriod on B must still take effect on
// the next tick, and stopping A again must never cancel B's event.
func TestTickerSetPeriodAfterSameInstantStopStart(t *testing.T) {
	both(t, func(t *testing.T, q *EventQueue) {
		var fires []Time
		var a, b *Ticker
		var err error
		a, err = q.NewTicker(0, 1, func(now Time) {
			a.Stop()
			b, err = q.NewTicker(now, 1, func(now Time) {
				fires = append(fires, now)
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := b.SetPeriod(2); err != nil {
				t.Fatal(err)
			}
			a.Stop() // must be a no-op, not a cancel of b's reused record
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := q.RunUntil(5); err != nil {
			t.Fatal(err)
		}
		// b starts at the same instant as a's only tick (t=0); its first tick
		// fires immediately, then the updated period of 2 applies.
		want := []Time{0, 2, 4}
		if fmt.Sprint(fires) != fmt.Sprint(want) {
			t.Fatalf("fires = %v, want %v", fires, want)
		}
	})
}

// TestWheelOverflowCascade schedules events far enough apart to live in the
// level-1 wheel and the overflow heap, interleaved with near events, and
// checks global firing order.
func TestWheelOverflowCascade(t *testing.T) {
	q := NewEventQueue()
	// Instants chosen to span all containers: sub-tick (drain after quantize),
	// level 0 (< 0.25 s), level 1 (< 64 s), overflow (>= 64 s), plus ties.
	ats := []Time{0.0001, 0.01, 0.2, 1.5, 30, 63.9, 64, 500, 500, 4096.25, 100000}
	var got []Time
	// Schedule in reverse to exercise out-of-order insertion.
	for i := len(ats) - 1; i >= 0; i-- {
		if _, err := q.Schedule(ats[i], func(now Time) { got = append(got, now) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ats) {
		t.Fatalf("fired %d events, want %d", len(got), len(ats))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out of order at %d: %v after %v (all: %v)", i, got[i], got[i-1], got)
		}
	}
}

// TestWheelFarFutureClamp pins the beyond-horizon degradation: events past
// the quantization horizon share one clamped tick but still fire in exact
// (At, seq) order from the overflow heap.
func TestWheelFarFutureClamp(t *testing.T) {
	q := NewEventQueue()
	far := Time(float64(wheelHorizon)) // 2^52 ticks * 2^-10 s/tick = 2^42 s
	var got []Time
	for _, at := range []Time{far + 3, far + 1, far + 2, far + 1} {
		if _, err := q.Schedule(at, func(now Time) { got = append(got, now) }); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.Schedule(1, func(now Time) { got = append(got, now) }); err != nil {
		t.Fatal(err)
	}
	if err := q.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{1, far + 1, far + 1, far + 2, far + 3}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestWheelCancelThenReuse pins the tombstone rule: cancelling a wheel event
// must not let a later Schedule alias the still-bucketed record into firing
// twice or out of order.
func TestWheelCancelThenReuse(t *testing.T) {
	q := NewEventQueue()
	var got []string
	evA, err := q.Schedule(1, func(Time) { got = append(got, "a") })
	if err != nil {
		t.Fatal(err)
	}
	q.Cancel(evA)
	// The record is tombstoned inside the wheel; these schedules must draw
	// fresh records, and the tombstone must be skipped at drain time.
	if _, err := q.Schedule(1, func(Time) { got = append(got, "b") }); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Schedule(2, func(Time) { got = append(got, "c") }); err != nil {
		t.Fatal(err)
	}
	if err := q.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[b c]" {
		t.Fatalf("got %v, want [b c]", got)
	}
}

// TestSteadyStateZeroAllocs pins the freelist contract: once warmed up, a
// schedule→step cycle and a ticker churn cycle allocate nothing, on both
// schedulers.
func TestSteadyStateZeroAllocs(t *testing.T) {
	both(t, func(t *testing.T, q *EventQueue) {
		fn := func(Time) {}
		// Warm-up: populate the freelist and container capacity.
		for i := 0; i < 64; i++ {
			if _, err := q.After(0.001, fn); err != nil {
				t.Fatal(err)
			}
		}
		for q.Step() {
		}
		allocs := testing.AllocsPerRun(100, func() {
			ev, _ := q.After(0.001, fn)
			_ = ev
			q.Step()
		})
		if allocs != 0 {
			t.Errorf("schedule/step steady state: %v allocs/op, want 0", allocs)
		}
		allocs = testing.AllocsPerRun(100, func() {
			ev, _ := q.After(0.002, fn)
			q.Cancel(ev)
			ev2, _ := q.After(0.001, fn)
			_ = ev2
			q.Step()
		})
		if allocs != 0 {
			t.Errorf("schedule/cancel/step steady state: %v allocs/op, want 0", allocs)
		}
	})
}

// TestHeapAndWheelIdenticalSequences is the deterministic sibling of
// FuzzSchedulerEquivalence: a fixed pseudo-random script replayed on both
// queues must fire at identical instants in identical order.
func TestHeapAndWheelIdenticalSequences(t *testing.T) {
	script := make([]byte, 0, 4096)
	s := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 4096; i++ {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		script = append(script, byte(s))
	}
	wheel := runSchedulerScript(NewEventQueue(), script)
	heap := runSchedulerScript(NewHeapEventQueue(), script)
	if fmt.Sprint(wheel) != fmt.Sprint(heap) {
		t.Fatalf("wheel fired %d events, heap fired %d; sequences differ", len(wheel), len(heap))
	}
}
