package mfc_test

import (
	"fmt"

	"hcperf/internal/mfc"
	"hcperf/internal/simtime"
)

// A sustained tracking error drives the nominal priority-adjustment signal
// u upward; when the error clears, u stabilises.
func Example() {
	ctrl, err := mfc.New(mfc.Config{
		Alpha:     -1000,
		K:         -1,
		Ts:        100 * simtime.Millisecond,
		ADEWindow: 500 * simtime.Millisecond,
		UClamp:    0.04,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	var u float64
	for i := 0; i < 30; i++ {
		now := simtime.Time(i) * 100 * simtime.Millisecond
		u, err = ctrl.Step(now, 2.0) // 2 m/s speed tracking error
		if err != nil {
			fmt.Println(err)
			return
		}
	}
	fmt.Printf("u after sustained error: %.4f (clamped at 0.0400)\n", u)
	// Output:
	// u after sustained error: 0.0400 (clamped at 0.0400)
}
