// Package mfc implements the Performance Directed Controller of HCPerf
// (paper §IV): a Model-Free Control (MFC) loop that converts the vehicle's
// driving-performance tracking error E(t) into the nominal priority
// adjustment signal u(t), using Algebraic Differentiation Estimation (ADE)
// to obtain a noise-robust derivative of E.
//
// The plant relationship between E and u is unknown and time varying, so
// MFC approximates it by the ultra-local model
//
//	Ė(t) = F(t) + α·u(t)                     (Eq. 2)
//
// with F continuously re-estimated from measurements:
//
//	F̂(t) = Ê̇(t) − α·u(t−Ts)                 (Eq. 5)
//	u(t) = (−F̂(t) + K·E(t)) / α              (Eq. 3)
//
// with constant gains α < 0 and K < 0. Ê̇ comes from the ADE sliding-window
// integral
//
//	Ê̇(t) = 6/T³ ∫₀ᵀ (T − 2τ)·E(t−τ) dτ      (Eq. 6)
//
// which acts as a low-pass filter on the measurement noise.
package mfc

import (
	"errors"
	"fmt"

	"hcperf/internal/simtime"
)

// Config parameterises a Controller.
type Config struct {
	// Alpha is the constant control gain α; must be negative.
	Alpha float64
	// K is the feedback gain; must be negative (the paper uses K = -1).
	K float64
	// Ts is the control sampling period of the MFC loop.
	Ts simtime.Duration
	// ADEWindow is T_ADE, the width of the derivative-estimation window.
	ADEWindow simtime.Duration
	// UClamp, when positive, bounds the accumulated output to
	// [-UClamp, +UClamp] (anti-windup): when the tracking error has an
	// unreachable floor — the vehicle cannot track perfectly no matter
	// how tasks are scheduled — the integral action would otherwise
	// wind u far beyond the scheduler's useful γ range and the loop
	// would stop responding to error changes. Zero disables clamping.
	UClamp float64
}

// Validate checks gain signs and window sizes.
func (c Config) Validate() error {
	switch {
	case c.Alpha >= 0:
		return fmt.Errorf("mfc: alpha %v must be negative", c.Alpha)
	case c.K >= 0:
		return fmt.Errorf("mfc: K %v must be negative", c.K)
	case c.Ts <= 0:
		return fmt.Errorf("mfc: Ts %v must be positive", c.Ts)
	case c.ADEWindow < c.Ts:
		return fmt.Errorf("mfc: ADE window %v must cover at least one sample period %v", c.ADEWindow, c.Ts)
	case c.UClamp < 0:
		return fmt.Errorf("mfc: UClamp %v must be non-negative", c.UClamp)
	}
	return nil
}

// DefaultConfig returns the gains used throughout the evaluation: K = -1
// per the paper's remark, α sized so that u lands in the scheduler's γ
// range, a 100 ms sampling period and a 500 ms ADE window.
func DefaultConfig() Config {
	return Config{
		Alpha:     -50,
		K:         -1,
		Ts:        100 * simtime.Millisecond,
		ADEWindow: 500 * simtime.Millisecond,
	}
}

type sample struct {
	at simtime.Time
	e  float64
}

// Controller is the Performance Directed Controller. Not safe for
// concurrent use; drive it from the simulation loop.
type Controller struct {
	cfg     Config
	window  []sample
	lastU   float64
	lastDot float64
	steps   uint64
}

// New validates cfg and builds a controller with u(0) = 0.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg}, nil
}

// Step ingests the tracking error measured at virtual time now and returns
// the nominal priority adjustment signal u(now). Calls must have
// non-decreasing now.
func (c *Controller) Step(now simtime.Time, trackingErr float64) (float64, error) {
	if n := len(c.window); n > 0 && now < c.window[n-1].at {
		return 0, errors.New("mfc: time moved backwards")
	}
	c.window = append(c.window, sample{at: now, e: trackingErr})
	c.trim(now)
	eDot := c.estimateDerivative(now)
	c.lastDot = eDot
	fHat := eDot - c.cfg.Alpha*c.lastU               // Eq. 5
	u := (-fHat + c.cfg.K*trackingErr) / c.cfg.Alpha // Eq. 3
	if cl := c.cfg.UClamp; cl > 0 {
		if u > cl {
			u = cl
		} else if u < -cl {
			u = -cl
		}
	}
	c.lastU = u
	c.steps++
	return u, nil
}

// LastU returns the most recent controller output.
func (c *Controller) LastU() float64 { return c.lastU }

// LastDerivative returns the most recent ADE derivative estimate Ê̇.
func (c *Controller) LastDerivative() float64 { return c.lastDot }

// Steps returns the number of Step calls so far.
func (c *Controller) Steps() uint64 { return c.steps }

// Reset clears the sample window and output history.
func (c *Controller) Reset() {
	c.window = c.window[:0]
	c.lastU = 0
	c.lastDot = 0
}

// trim evicts samples older than now − ADEWindow, always keeping at least
// one sample at or before the window edge so the integral spans the full
// window.
func (c *Controller) trim(now simtime.Time) {
	edge := now - c.cfg.ADEWindow
	cut := 0
	for i := 0; i+1 < len(c.window); i++ {
		if c.window[i+1].at <= edge {
			cut = i + 1
		} else {
			break
		}
	}
	if cut > 0 {
		c.window = append(c.window[:0], c.window[cut:]...)
	}
}

// estimateDerivative evaluates the Eq. 6 ADE integral by trapezoidal
// quadrature over the recorded samples. With fewer than two samples (or a
// degenerate span) it returns 0.
func (c *Controller) estimateDerivative(now simtime.Time) float64 {
	n := len(c.window)
	if n < 2 {
		return 0
	}
	t := float64(c.cfg.ADEWindow)
	span := float64(now - c.window[0].at)
	if span <= 0 {
		return 0
	}
	if span < t {
		// Early start-up: integrate over the span actually covered so
		// the estimator warms up smoothly instead of biasing toward 0.
		t = span
	}
	weighted := func(tau, e float64) float64 { return (t - 2*tau) * e }
	sum := 0.0
	for i := n - 1; i > 0; i-- {
		newer, older := c.window[i], c.window[i-1]
		tauNewer := float64(now - newer.at)
		tauOlder := float64(now - older.at)
		if tauNewer >= t {
			break
		}
		if tauOlder > t {
			// Clip the oldest segment at the window edge by linear
			// interpolation of E.
			frac := (t - tauNewer) / (tauOlder - tauNewer)
			eEdge := newer.e + frac*(older.e-newer.e)
			older = sample{at: now - simtime.Duration(t), e: eEdge}
			tauOlder = t
		}
		dt := tauOlder - tauNewer
		// Simpson's rule per segment: exact for the quadratic
		// integrand produced by a linear weight times linear E.
		tauMid := (tauNewer + tauOlder) / 2
		eMid := (newer.e + older.e) / 2
		sum += dt / 6 * (weighted(tauNewer, newer.e) + 4*weighted(tauMid, eMid) + weighted(tauOlder, older.e))
	}
	return 6 / (t * t * t) * sum
}
