package mfc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hcperf/internal/simtime"
)

const ms = simtime.Millisecond

func controller(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	base := DefaultConfig()
	if err := base.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "alpha positive", mutate: func(c *Config) { c.Alpha = 1 }},
		{name: "alpha zero", mutate: func(c *Config) { c.Alpha = 0 }},
		{name: "K positive", mutate: func(c *Config) { c.K = 1 }},
		{name: "Ts zero", mutate: func(c *Config) { c.Ts = 0 }},
		{name: "window below Ts", mutate: func(c *Config) { c.ADEWindow = c.Ts / 2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted zero config")
	}
}

// ADE must recover the slope of a linear signal E(t) = a + b·t exactly
// (the weighted integral annihilates the constant term).
func TestADELinearSignal(t *testing.T) {
	tests := []struct {
		name string
		a, b float64
	}{
		{name: "pure slope", a: 0, b: 2},
		{name: "offset slope", a: 5, b: -3},
		{name: "constant", a: 7, b: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := controller(t, DefaultConfig())
			var now simtime.Time
			for i := 0; i < 20; i++ {
				now = simtime.Time(i) * 50 * ms
				if _, err := c.Step(now, tt.a+tt.b*float64(now)); err != nil {
					t.Fatal(err)
				}
			}
			if got := c.LastDerivative(); math.Abs(got-tt.b) > 0.02*math.Max(1, math.Abs(tt.b)) {
				t.Errorf("ADE derivative = %v, want %v", got, tt.b)
			}
		})
	}
}

// ADE must attenuate zero-mean noise: the derivative estimate of a noisy
// constant stays near zero while a finite difference would blow up.
func TestADEAttenuatesNoise(t *testing.T) {
	c := controller(t, DefaultConfig())
	rng := rand.New(rand.NewSource(11))
	noiseAmp := 0.5
	var last float64
	var prevE float64
	var maxFD float64
	for i := 0; i < 100; i++ {
		now := simtime.Time(i) * 50 * ms
		e := 3.0 + noiseAmp*(2*rng.Float64()-1)
		if i > 0 {
			fd := math.Abs(e-prevE) / 0.05
			if fd > maxFD {
				maxFD = fd
			}
		}
		prevE = e
		if _, err := c.Step(now, e); err != nil {
			t.Fatal(err)
		}
		last = c.LastDerivative()
	}
	if math.Abs(last) > 3 {
		t.Errorf("ADE derivative %v too large for noisy constant", last)
	}
	if maxFD < 10 {
		t.Fatalf("test precondition failed: finite difference %v should be large", maxFD)
	}
}

// Positive persistent tracking error must drive u upward (the paper's
// responsiveness direction), negative error must drive it downward.
func TestControlDirection(t *testing.T) {
	tests := []struct {
		name string
		sign float64
	}{
		{name: "positive error raises u", sign: 1},
		{name: "negative error lowers u", sign: -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := controller(t, DefaultConfig())
			var u float64
			var err error
			for i := 0; i < 30; i++ {
				now := simtime.Time(i) * 100 * ms
				u, err = c.Step(now, tt.sign*2.0)
				if err != nil {
					t.Fatal(err)
				}
			}
			if tt.sign > 0 && u <= 0 {
				t.Errorf("u = %v after sustained positive error, want > 0", u)
			}
			if tt.sign < 0 && u >= 0 {
				t.Errorf("u = %v after sustained negative error, want < 0", u)
			}
		})
	}
}

// With zero error the controller output must stay at zero.
func TestZeroErrorZeroOutput(t *testing.T) {
	c := controller(t, DefaultConfig())
	for i := 0; i < 20; i++ {
		u, err := c.Step(simtime.Time(i)*100*ms, 0)
		if err != nil {
			t.Fatal(err)
		}
		if u != 0 {
			t.Fatalf("u = %v with zero error at step %d, want 0", u, i)
		}
	}
}

// u accumulates: after the error clears, u stops growing (Δu ∝ K·E/α).
func TestUStabilisesWhenErrorClears(t *testing.T) {
	c := controller(t, DefaultConfig())
	var now simtime.Time
	for i := 0; i < 20; i++ {
		now = simtime.Time(i) * 100 * ms
		if _, err := c.Step(now, 2.0); err != nil {
			t.Fatal(err)
		}
	}
	uLoaded := c.LastU()
	var uAfter float64
	for i := 20; i < 60; i++ {
		now = simtime.Time(i) * 100 * ms
		var err error
		uAfter, err = c.Step(now, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	if uLoaded <= 0 {
		t.Fatalf("u = %v after sustained error, want > 0", uLoaded)
	}
	// After the error window flushes, increments must be ~0.
	u1 := uAfter
	u2, err := c.Step(now+100*ms, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u2-u1) > 1e-6 {
		t.Errorf("u still moving (%v -> %v) after error cleared", u1, u2)
	}
}

func TestStepRejectsTimeTravel(t *testing.T) {
	c := controller(t, DefaultConfig())
	if _, err := c.Step(1, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(0.5, 0.5); err == nil {
		t.Error("backwards time accepted")
	}
}

func TestReset(t *testing.T) {
	c := controller(t, DefaultConfig())
	for i := 0; i < 10; i++ {
		if _, err := c.Step(simtime.Time(i)*100*ms, 5); err != nil {
			t.Fatal(err)
		}
	}
	if c.LastU() == 0 {
		t.Fatal("precondition: u should be non-zero")
	}
	c.Reset()
	if c.LastU() != 0 || c.LastDerivative() != 0 {
		t.Error("Reset did not clear state")
	}
	// Time may restart after reset.
	if _, err := c.Step(0, 1); err != nil {
		t.Errorf("Step after Reset: %v", err)
	}
	if c.Steps() == 0 {
		t.Error("Steps counter should survive")
	}
}

// Property: the ADE estimate of a·t + b sampled on an arbitrary regular
// grid converges to a.
func TestQuickADERecoversSlope(t *testing.T) {
	f := func(aRaw, bRaw int8, stepRaw uint8) bool {
		a := float64(aRaw) / 8
		b := float64(bRaw) / 4
		step := simtime.Duration(float64(stepRaw%40)+10) * ms
		c, err := New(DefaultConfig())
		if err != nil {
			return false
		}
		var now simtime.Time
		for i := 0; i < 40; i++ {
			now = simtime.Time(i) * step
			if _, err := c.Step(now, b+a*float64(now)); err != nil {
				return false
			}
		}
		return math.Abs(c.LastDerivative()-a) <= 0.03*math.Max(1, math.Abs(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: u is finite for bounded inputs.
func TestQuickUFinite(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := New(DefaultConfig())
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			u, err := c.Step(simtime.Time(i)*100*ms, 10*(2*rng.Float64()-1))
			if err != nil || math.IsNaN(u) || math.IsInf(u, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
