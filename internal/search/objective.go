package search

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"hcperf/internal/scenario"
)

// Metrics are one candidate's scored outcomes, reduced over its K replica
// runs. Every metric is a deterministic function of the simulation — the
// paper's wall-clock overhead accumulator is deliberately replaced by a
// released-jobs rate proxy so search reports stay byte-reproducible.
type Metrics struct {
	// ErrP99 is the 99th percentile of |speed tracking error| (m/s),
	// pooled over every dynamics step of every replica and reduced in
	// canonical sorted order.
	ErrP99 float64 `json:"err_p99"`
	// MissRatio is the mean per-second deadline-miss ratio, averaged
	// across replicas.
	MissRatio float64 `json:"miss_ratio"`
	// Overhead is the coordination-load proxy: pipeline jobs released per
	// simulated second, averaged across replicas. Higher sensing rates
	// buy tracking accuracy at exactly this cost.
	Overhead float64 `json:"overhead"`
	// GapMin is the minimum inter-vehicle gap (m) over every replica —
	// the collision margin (the single-vehicle analog of the fleet's
	// fleet_gap_min series). Bigger is better; <= 0 is a crash.
	GapMin float64 `json:"gap_min"`
	// Collisions counts replicas that collided (reported, not scored —
	// GapMin already dominates through zero).
	Collisions int `json:"collisions,omitempty"`
}

// value returns the named objective's raw value.
func (m Metrics) value(name string) float64 {
	switch name {
	case ObjectiveErrP99:
		return m.ErrP99
	case ObjectiveMissRatio:
		return m.MissRatio
	case ObjectiveOverhead:
		return m.Overhead
	case ObjectiveGapMin:
		return m.GapMin
	default:
		panic(fmt.Sprintf("search: unknown objective %q", name))
	}
}

// Objective names, in canonical (sorted) order.
const (
	ObjectiveErrP99    = "err_p99"
	ObjectiveGapMin    = "gap_min"
	ObjectiveMissRatio = "miss_ratio"
	ObjectiveOverhead  = "overhead"
)

// Objective is one scored axis of the search.
type Objective struct {
	// Name is one of the objective names above.
	Name string
	// Maximize flips the dominance direction (gap_min).
	Maximize bool
}

// minimized returns the objective's value in minimized orientation, the
// form every dominance comparison uses.
func (o Objective) minimized(m Metrics) float64 {
	v := m.value(o.Name)
	if o.Maximize {
		return -v
	}
	return v
}

// AllObjectives returns every objective in canonical order.
func AllObjectives() []Objective {
	return []Objective{
		{Name: ObjectiveErrP99},
		{Name: ObjectiveGapMin, Maximize: true},
		{Name: ObjectiveMissRatio},
		{Name: ObjectiveOverhead},
	}
}

// ObjectiveNames lists the known objective names in canonical order.
func ObjectiveNames() []string {
	all := AllObjectives()
	names := make([]string, len(all))
	for i, o := range all {
		names[i] = o.Name
	}
	return names
}

// ParseObjectives resolves objective names (deduplicated, canonical
// order); an empty list selects all four.
func ParseObjectives(names []string) ([]Objective, error) {
	if len(names) == 0 {
		return AllObjectives(), nil
	}
	byName := make(map[string]Objective)
	for _, o := range AllObjectives() {
		byName[o.Name] = o
	}
	seen := make(map[string]bool)
	out := make([]Objective, 0, len(names))
	for _, n := range names {
		o, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("search: unknown objective %q (have %s)", n, strings.Join(ObjectiveNames(), ", "))
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// reduceMetrics folds K replica results into one Metrics. Replica order is
// deterministic (seed index), and the pooled percentile sorts before any
// arithmetic, so the reduction is also invariant under replica relabeling.
func reduceMetrics(results []*scenario.CarFollowingResult) Metrics {
	var m Metrics
	var pooled []float64
	var missSum, overheadSum float64
	gapMin := math.Inf(1)
	for _, r := range results {
		for _, s := range r.Rec.Series("speed_err").Samples {
			pooled = append(pooled, math.Abs(s.V))
		}
		missSum += r.Miss.MeanRatio()
		// The run duration is recoverable from the last dynamics sample;
		// the series is never empty for a positive-duration run.
		duration := 0.0
		if samples := r.Rec.Series("speed_err").Samples; len(samples) > 0 {
			duration = samples[len(samples)-1].T
		}
		if duration > 0 {
			overheadSum += float64(r.EngineStats.Released) / duration
		}
		for _, s := range r.Rec.Series("gap").Samples {
			if s.V < gapMin {
				gapMin = s.V
			}
		}
		if r.Collision {
			m.Collisions++
		}
	}
	sort.Float64s(pooled)
	m.ErrP99 = percentile(pooled, 99)
	m.MissRatio = missSum / float64(len(results))
	m.Overhead = overheadSum / float64(len(results))
	if !math.IsInf(gapMin, 1) {
		m.GapMin = gapMin
	}
	return m
}

// percentile returns the p-th percentile (0..100, linear interpolation) of
// an already-sorted slice, matching trace.Series.Percentile.
func percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
