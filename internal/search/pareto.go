package search

import "sort"

// Scored is one evaluated candidate.
type Scored struct {
	Candidate Candidate `json:"candidate"`
	Metrics   Metrics   `json:"metrics"`
	// Gen is the generation the candidate was first evaluated in.
	Gen int `json:"gen"`
}

// vector returns the candidate's objective values in minimized orientation,
// in objective order.
func (s Scored) vector(objs []Objective) []float64 {
	v := make([]float64, len(objs))
	for i, o := range objs {
		v[i] = o.minimized(s.Metrics)
	}
	return v
}

// dominates reports whether a is at least as good as b on every objective
// and strictly better on at least one (both in minimized orientation).
func dominates(a, b []float64) bool {
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// Front extracts the Pareto front: every candidate no other candidate
// dominates. The result is canonically ordered — lexicographically by
// minimized objective vector, ties broken by candidate key — so the front
// is exactly invariant under permutation of the input. Duplicate candidate
// keys keep one representative (the metrics of a key are deterministic, so
// duplicates are byte-identical anyway).
func Front(scored []Scored, objs []Objective) []Scored {
	type entry struct {
		s Scored
		v []float64
	}
	entries := make([]entry, 0, len(scored))
	seen := make(map[string]bool, len(scored))
	for _, s := range scored {
		k := s.Candidate.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		entries = append(entries, entry{s: s, v: s.vector(objs)})
	}
	var front []entry
	for i, e := range entries {
		dominated := false
		for j, other := range entries {
			if i == j {
				continue
			}
			if dominates(other.v, e.v) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, e)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		a, b := front[i].v, front[j].v
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return front[i].s.Candidate.Key() < front[j].s.Candidate.Key()
	})
	out := make([]Scored, len(front))
	for i, e := range front {
		out[i] = e.s
	}
	return out
}

// rankAll performs non-dominated sorting: rank 0 is the Pareto front of
// the whole set, rank 1 the front of the remainder, and so on. Within each
// rank candidates keep the front's canonical order. The evolutionary
// strategy selects parents in this order.
func rankAll(scored []Scored, objs []Objective) []Scored {
	remaining := append([]Scored(nil), scored...)
	var out []Scored
	for len(remaining) > 0 {
		front := Front(remaining, objs)
		if len(front) == 0 {
			break
		}
		out = append(out, front...)
		inFront := make(map[string]bool, len(front))
		for _, s := range front {
			inFront[s.Candidate.Key()] = true
		}
		next := remaining[:0]
		for _, s := range remaining {
			if !inFront[s.Candidate.Key()] {
				next = append(next, s)
			}
		}
		remaining = next
	}
	return out
}
