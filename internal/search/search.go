package search

import (
	"context"
	"errors"
	"fmt"

	"hcperf/internal/fleet"
	"hcperf/internal/runner"
	"hcperf/internal/scenario"
)

// Progress is a best-so-far snapshot, published after every generation.
// The serving layer renders it verbatim in job status, so the fields carry
// JSON tags.
type Progress struct {
	// Evaluated counts unique candidates scored so far.
	Evaluated int `json:"evaluated"`
	// Generations counts completed generations.
	Generations int `json:"generations"`
	// Best maps each objective name to its best raw value so far (min for
	// minimized objectives, max for gap_min).
	Best map[string]float64 `json:"best,omitempty"`
}

// Options configures one search run. Space and Template must already be
// normalized (Request.Normalize does both).
type Options struct {
	// Space is the candidate space.
	Space *Space
	// Template is the single-vehicle car-following-family spec every
	// candidate is stamped onto.
	Template scenario.Spec
	// Objectives are the scored axes, in canonical order.
	Objectives []Objective
	// Strategy proposes candidates.
	Strategy Strategy
	// Budget caps unique candidate evaluations (baselines included).
	Budget int
	// Seeds is K, the replica count per candidate. Replica seeds are
	// fleet.VehicleSeed(Seed, k) — identical across candidates, so every
	// comparison is paired on common random numbers.
	Seeds int
	// Seed drives replica seeding and the per-generation strategy RNG.
	Seed int64
	// Workers is the evaluation parallelism (runner.Parallelism rules:
	// 0 = GOMAXPROCS). Results are input-ordered, so the outcome is
	// byte-identical at any worker count.
	Workers int
	// OnProgress, when set, observes every generation boundary.
	OnProgress func(Progress)
}

// Run executes the search: generation by generation the strategy proposes
// candidates, each candidate's K replicas run in lockstep on one shared
// event queue (fleet.RunBatch) with candidates fanned across the worker
// pool, and the evaluated set reduces to a canonical Pareto front.
func Run(ctx context.Context, opts Options) (*Report, error) {
	if opts.Space == nil {
		return nil, errors.New("search: nil space")
	}
	if opts.Strategy == nil {
		return nil, errors.New("search: nil strategy")
	}
	if len(opts.Objectives) == 0 {
		return nil, errors.New("search: no objectives")
	}
	if opts.Budget < 1 {
		return nil, fmt.Errorf("search: budget %d < 1", opts.Budget)
	}
	if opts.Seeds < 1 {
		return nil, fmt.Errorf("search: seeds %d < 1", opts.Seeds)
	}
	sp := opts.Space
	replicaSeeds := make([]int64, opts.Seeds)
	for k := range replicaSeeds {
		replicaSeeds[k] = fleet.VehicleSeed(opts.Seed, k)
	}

	var scored []Scored
	seen := make(map[string]bool)
	baselineKeys := make(map[string]bool)
	gen := 0
	for len(scored) < opts.Budget {
		room := opts.Budget - len(scored)
		var cands []Candidate
		if gen == 0 {
			// The paper-default candidate under every scheme anchors the
			// report: "beats the defaults" is answerable from one run.
			for _, scheme := range sp.Schemes {
				if len(cands) >= room {
					break
				}
				c := sp.Baseline(scheme)
				baselineKeys[c.Key()] = true
				cands = append(cands, c)
			}
		}
		for _, c := range opts.Strategy.Propose(gen, room-len(cands), sp, newRNG(opts.Seed, gen), scored, opts.Objectives, seen) {
			dup := false
			for _, have := range cands {
				if have.Key() == c.Key() {
					dup = true
					break
				}
			}
			if !dup {
				cands = append(cands, c)
			}
		}
		if len(cands) > room {
			cands = cands[:room]
		}
		if len(cands) == 0 {
			break
		}
		g := gen
		results, err := runner.Map(ctx, opts.Workers, cands, func(ctx context.Context, c Candidate) (Scored, error) {
			m, err := evalCandidate(sp, opts.Template, c, replicaSeeds)
			if err != nil {
				return Scored{}, err
			}
			return Scored{Candidate: c, Metrics: m, Gen: g}, nil
		})
		if err != nil {
			return nil, err
		}
		for _, s := range results {
			scored = append(scored, s)
			seen[s.Candidate.Key()] = true
		}
		gen++
		if opts.OnProgress != nil {
			opts.OnProgress(Progress{
				Evaluated:   len(scored),
				Generations: gen,
				Best:        bestByObjective(scored, opts.Objectives),
			})
		}
	}
	if len(scored) == 0 {
		return nil, errors.New("search: strategy proposed no candidates")
	}
	return buildReport(opts, scored, gen, baselineKeys), nil
}

// evalCandidate scores one candidate: the spec template is stamped with
// the candidate's tuning, instantiated K times with the shared replica
// seeds, and all K replicas advance in lockstep on one event queue.
func evalCandidate(sp *Space, template scenario.Spec, c Candidate, replicaSeeds []int64) (Metrics, error) {
	spec, err := sp.Apply(template, c)
	if err != nil {
		return Metrics{}, fmt.Errorf("search: candidate %s: %w", c.Key(), err)
	}
	cfgs := make([]scenario.CarFollowingConfig, len(replicaSeeds))
	for k, seed := range replicaSeeds {
		cfg, err := scenario.CarFollowingConfigFromSpec(spec)
		if err != nil {
			return Metrics{}, fmt.Errorf("search: candidate %s: %w", c.Key(), err)
		}
		cfg.Seed = seed
		cfgs[k] = cfg
	}
	results, err := fleet.RunBatch(cfgs)
	if err != nil {
		return Metrics{}, fmt.Errorf("search: candidate %s: %w", c.Key(), err)
	}
	return reduceMetrics(results), nil
}

// bestByObjective maps each objective to its best raw value over scored.
func bestByObjective(scored []Scored, objs []Objective) map[string]float64 {
	best := make(map[string]float64, len(objs))
	for _, o := range objs {
		b := 0.0
		for i, s := range scored {
			v := s.Metrics.value(o.Name)
			if i == 0 || (o.Maximize && v > b) || (!o.Maximize && v < b) {
				b = v
			}
		}
		best[o.Name] = b
	}
	return best
}
