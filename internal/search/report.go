package search

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// BestEntry records, for one objective, the best candidate found and the
// paper-default (hcperf baseline) value it is measured against.
type BestEntry struct {
	Objective string    `json:"objective"`
	Value     float64   `json:"value"`
	Baseline  float64   `json:"baseline"`
	Improved  bool      `json:"improved"`
	Candidate Candidate `json:"candidate"`
}

// Report is the outcome of one search: the canonical Pareto front, the
// baseline candidates it is measured against, and per-objective bests. All
// fields are deterministic, and the struct marshals to canonical JSON
// (fixed field order, no maps), so reports are digest-pinnable.
type Report struct {
	Strategy    string   `json:"strategy"`
	Seed        int64    `json:"seed"`
	Seeds       int      `json:"seeds"`
	Budget      int      `json:"budget"`
	Evaluated   int      `json:"evaluated"`
	Generations int      `json:"generations"`
	SpaceSize   int      `json:"space_size"`
	Objectives  []string `json:"objectives"`
	Space       Space    `json:"space"`
	// Baselines are the paper-default candidates, one per scheme, in
	// scheme order.
	Baselines []Scored `json:"baselines"`
	// Front is the Pareto front over everything evaluated, in canonical
	// order (minimized objective vector, then candidate key).
	Front []Scored `json:"front"`
	// Best lists the best candidate per objective (objective order),
	// each compared against the hcperf baseline.
	Best []BestEntry `json:"best"`
}

// buildReport reduces the scored set into the final report.
func buildReport(opts Options, scored []Scored, generations int, baselineKeys map[string]bool) *Report {
	objNames := make([]string, len(opts.Objectives))
	for i, o := range opts.Objectives {
		objNames[i] = o.Name
	}
	r := &Report{
		Strategy:    opts.Strategy.Name(),
		Seed:        opts.Seed,
		Seeds:       opts.Seeds,
		Budget:      opts.Budget,
		Evaluated:   len(scored),
		Generations: generations,
		SpaceSize:   opts.Space.Size(),
		Objectives:  objNames,
		Space:       *opts.Space,
		Front:       Front(scored, opts.Objectives),
	}
	// Baselines in scheme order (gen-0 evaluation order).
	for _, s := range scored {
		if baselineKeys[s.Candidate.Key()] {
			r.Baselines = append(r.Baselines, s)
		}
	}
	// The reference baseline is the hcperf one when present (the paper's
	// configuration), else the first baseline.
	var ref *Scored
	for i := range r.Baselines {
		if r.Baselines[i].Candidate.Scheme == "hcperf" {
			ref = &r.Baselines[i]
			break
		}
	}
	if ref == nil && len(r.Baselines) > 0 {
		ref = &r.Baselines[0]
	}
	for _, o := range opts.Objectives {
		best := scored[0]
		for _, s := range scored[1:] {
			v, b := s.Metrics.value(o.Name), best.Metrics.value(o.Name)
			if (o.Maximize && v > b) || (!o.Maximize && v < b) {
				best = s
			}
		}
		e := BestEntry{Objective: o.Name, Value: best.Metrics.value(o.Name), Candidate: best.Candidate}
		if ref != nil {
			e.Baseline = ref.Metrics.value(o.Name)
			if o.Maximize {
				e.Improved = e.Value > e.Baseline
			} else {
				e.Improved = e.Value < e.Baseline
			}
		}
		r.Best = append(r.Best, e)
	}
	return r
}

// JSON returns the report's canonical JSON encoding.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// fmtMetric renders one objective value compactly but losslessly enough
// for table comparison.
func fmtMetric(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// Header returns the result table's column labels: candidate label,
// scheme, one column per space parameter, one per objective.
func (r *Report) Header() []string {
	h := []string{"candidate", "scheme"}
	for _, p := range r.Space.Params {
		h = append(h, p.Name)
	}
	h = append(h, r.Objectives...)
	return h
}

// row renders one scored candidate under a label.
func (r *Report) row(label string, s Scored) []string {
	row := []string{label, s.Candidate.Scheme}
	for _, v := range s.Candidate.Values {
		row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
	}
	for _, name := range r.Objectives {
		row = append(row, fmtMetric(s.Metrics.value(name)))
	}
	return row
}

// Rows renders the baselines followed by the Pareto front, in canonical
// order — the table the CLI prints and the ext-tune experiment pins.
func (r *Report) Rows() [][]string {
	var rows [][]string
	for _, s := range r.Baselines {
		rows = append(rows, r.row("default/"+s.Candidate.Scheme, s))
	}
	for i, s := range r.Front {
		rows = append(rows, r.row(fmt.Sprintf("front-%02d", i), s))
	}
	return rows
}

// BestRows renders the per-objective best table: objective, best value,
// baseline value, improvement marker, winning candidate.
func (r *Report) BestRows() [][]string {
	var rows [][]string
	for _, b := range r.Best {
		mark := "="
		if b.Improved {
			mark = "improved"
		}
		rows = append(rows, []string{
			b.Objective, fmtMetric(b.Value), fmtMetric(b.Baseline), mark, b.Candidate.Key(),
		})
	}
	return rows
}
