package search

import (
	"reflect"
	"testing"
)

// mkScored builds a Scored with the given objective values mapped onto
// (ErrP99, MissRatio) for two-objective tests.
func mkScored(key float64, errP99, miss float64) Scored {
	return Scored{
		Candidate: Candidate{Scheme: "hcperf", Values: []float64{key}},
		Metrics:   Metrics{ErrP99: errP99, MissRatio: miss},
	}
}

func twoObjectives() []Objective {
	return []Objective{{Name: ObjectiveErrP99}, {Name: ObjectiveMissRatio}}
}

func TestFrontNoDominatedPoint(t *testing.T) {
	objs := twoObjectives()
	scored := []Scored{
		mkScored(1, 1.0, 0.5),
		mkScored(2, 0.5, 1.0),
		mkScored(3, 2.0, 2.0), // dominated by both
		mkScored(4, 0.8, 0.8),
		mkScored(5, 1.5, 0.4),
	}
	front := Front(scored, objs)
	for i, a := range front {
		for j, b := range front {
			if i == j {
				continue
			}
			if dominates(b.vector(objs), a.vector(objs)) {
				t.Fatalf("front member %d dominated by member %d", i, j)
			}
		}
		// And no input point dominates a front member.
		for _, s := range scored {
			if dominates(s.vector(objs), a.vector(objs)) {
				t.Fatalf("input %v dominates front member %v", s.Candidate.Key(), a.Candidate.Key())
			}
		}
	}
	keys := make(map[string]bool)
	for _, s := range front {
		keys[s.Candidate.Key()] = true
	}
	if keys[mkScored(3, 0, 0).Candidate.Key()] {
		t.Fatal("dominated candidate 3 on front")
	}
}

// TestFrontPermutationInvariance is the property test: the front must be
// byte-identical (same members, same order) under any permutation of the
// scored input.
func TestFrontPermutationInvariance(t *testing.T) {
	objs := twoObjectives()
	scored := []Scored{
		mkScored(1, 1.0, 0.5),
		mkScored(2, 0.5, 1.0),
		mkScored(3, 2.0, 2.0),
		mkScored(4, 0.8, 0.8),
		mkScored(5, 1.5, 0.4),
		mkScored(6, 0.5, 1.0), // ties candidate 2's vector, distinct key
	}
	want := Front(scored, objs)
	r := newRNG(42, 0)
	perm := append([]Scored(nil), scored...)
	for trial := 0; trial < 200; trial++ {
		// Fisher-Yates with the deterministic test rng.
		for i := len(perm) - 1; i > 0; i-- {
			j := r.intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		got := Front(perm, objs)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: front differs under permutation:\n%+v\n%+v", trial, got, want)
		}
	}
}

func TestFrontDeduplicatesKeys(t *testing.T) {
	objs := twoObjectives()
	s := mkScored(1, 1.0, 1.0)
	front := Front([]Scored{s, s, s}, objs)
	if len(front) != 1 {
		t.Fatalf("front of 3 duplicates has %d members, want 1", len(front))
	}
}

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},
		{[]float64{1, 2}, []float64{2, 1}, false},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equal: no strict improvement
		{[]float64{1, 1}, []float64{1, 2}, true},
		{[]float64{2, 1}, []float64{1, 1}, false},
	}
	for i, c := range cases {
		if got := dominates(c.a, c.b); got != c.want {
			t.Errorf("case %d: dominates(%v,%v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestRankAllCoversEverything(t *testing.T) {
	objs := twoObjectives()
	scored := []Scored{
		mkScored(1, 1.0, 0.5),
		mkScored(2, 0.5, 1.0),
		mkScored(3, 2.0, 2.0),
		mkScored(4, 3.0, 3.0),
	}
	ranked := rankAll(scored, objs)
	if len(ranked) != len(scored) {
		t.Fatalf("rankAll returned %d of %d", len(ranked), len(scored))
	}
	// Rank 0 first: candidates 1 and 2; 3 before 4 (3 dominates 4).
	pos := make(map[string]int)
	for i, s := range ranked {
		pos[s.Candidate.Key()] = i
	}
	k := func(key float64) string { return mkScored(key, 0, 0).Candidate.Key() }
	if pos[k(3)] < pos[k(1)] || pos[k(3)] < pos[k(2)] {
		t.Fatal("dominated candidate ranked above front")
	}
	if pos[k(4)] < pos[k(3)] {
		t.Fatal("rank-2 candidate ranked above rank-1")
	}
}

func TestGapMinMaximized(t *testing.T) {
	objs := []Objective{{Name: ObjectiveGapMin, Maximize: true}}
	a := Scored{Candidate: Candidate{Scheme: "a"}, Metrics: Metrics{GapMin: 5}}
	b := Scored{Candidate: Candidate{Scheme: "b"}, Metrics: Metrics{GapMin: 2}}
	front := Front([]Scored{a, b}, objs)
	if len(front) != 1 || front[0].Candidate.Scheme != "a" {
		t.Fatalf("maximized objective front = %+v, want only the larger gap", front)
	}
}
