package search

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"hcperf/internal/core"
	"hcperf/internal/scenario"
	"hcperf/internal/simtime"
)

func TestDefaultSpaceNormalizes(t *testing.T) {
	sp, err := DefaultSpace().Normalize()
	if err != nil {
		t.Fatalf("DefaultSpace().Normalize(): %v", err)
	}
	again, err := sp.Normalize()
	if err != nil {
		t.Fatalf("second Normalize: %v", err)
	}
	if !reflect.DeepEqual(sp, again) {
		t.Fatalf("Normalize not idempotent:\n%+v\n%+v", sp, again)
	}
	if got, want := sp.Schemes, []string{"edf", "hcperf"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("schemes = %v, want %v", got, want)
	}
	for i := 1; i < len(sp.Params); i++ {
		if sp.Params[i-1].Name >= sp.Params[i].Name {
			t.Fatalf("params not sorted: %q before %q", sp.Params[i-1].Name, sp.Params[i].Name)
		}
	}
	if sp.Size() <= 0 {
		t.Fatalf("Size() = %d, want > 0", sp.Size())
	}
}

func TestParamLevelsAndValues(t *testing.T) {
	// Decimal ranges must quantize without off-by-one from float
	// representation.
	cases := []struct {
		p      Param
		levels int
		last   float64
	}{
		{Param{Name: ParamRateKp0, Min: 0.2, Max: 1.6, Step: 0.2}, 8, 1.6},
		{Param{Name: ParamGammaCap, Min: 0.005, Max: 0.1, Step: 0.005}, 20, 0.1},
		{Param{Name: ParamMFCWindowMS, Min: 200, Max: 1000, Step: 100}, 9, 1000},
		{Param{Name: ParamRateDecay, Min: 0.8, Max: 0.98, Step: 0.02}, 10, 0.98},
	}
	for _, c := range cases {
		if got := c.p.Levels(); got != c.levels {
			t.Errorf("%s: Levels() = %d, want %d", c.p.Name, got, c.levels)
		}
		if got := c.p.Value(c.p.Levels() - 1); math.Abs(got-c.last) > 1e-12 {
			t.Errorf("%s: last value = %v, want %v", c.p.Name, got, c.last)
		}
		// Clamped beyond the end.
		if got := c.p.Value(c.p.Levels() + 5); got != c.p.Max {
			t.Errorf("%s: over-index value = %v, want Max %v", c.p.Name, got, c.p.Max)
		}
	}
}

func TestSpaceValidation(t *testing.T) {
	bad := []Space{
		{},
		{Params: []Param{{Name: "bogus", Min: 1, Max: 2, Step: 1}}},
		{Params: []Param{{Name: ParamGammaCap, Min: 0.01, Max: 0.005, Step: 0.001}}},
		{Params: []Param{{Name: ParamGammaCap, Min: 0.01, Max: 0.05, Step: 0}}},
		{Params: []Param{{Name: ParamGammaCap, Min: 0, Max: 0.05, Step: 0.01}}},      // below hard lower bound
		{Params: []Param{{Name: ParamGammaCap, Min: 0.01, Max: 100, Step: 0.01}}},    // above hard upper bound
		{Params: []Param{{Name: ParamGammaCap, Min: 0.001, Max: 10, Step: 1e-9}}},    // too many levels
		{Params: []Param{{Name: ParamGammaCap, Min: math.NaN(), Max: 1, Step: 0.1}}}, // non-finite
		{Params: []Param{
			{Name: ParamGammaCap, Min: 0.01, Max: 0.05, Step: 0.01},
			{Name: ParamGammaCap, Min: 0.01, Max: 0.05, Step: 0.01},
		}}, // duplicate
		{Params: []Param{{Name: ParamGammaCap, Min: 0.01, Max: 0.05, Step: 0.01}}, Schemes: []string{"warp"}},
	}
	for i, sp := range bad {
		if _, err := sp.Normalize(); err == nil {
			t.Errorf("case %d: Normalize accepted invalid space %+v", i, sp)
		}
	}
}

func TestBaselineMatchesPaperDefaults(t *testing.T) {
	sp, err := DefaultSpace().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	c := sp.Baseline("hcperf")
	d := core.DefaultTunables()
	for i, p := range sp.Params {
		var want float64
		switch p.Name {
		case ParamGammaCap:
			want = d.GammaCap
		case ParamMFCWindowMS:
			want = float64(d.MFCWindow) / float64(simtime.Millisecond)
		case ParamRMaxScale:
			want = d.RMaxScale
		case ParamRMinScale:
			want = d.RMinScale
		case ParamRateDecay:
			want = d.RateDecay
		case ParamRateKp0:
			want = d.RateKp0
		}
		if c.Values[i] != want {
			t.Errorf("baseline %s = %v, want %v", p.Name, c.Values[i], want)
		}
	}
}

func TestApplyStampsSpec(t *testing.T) {
	sp, err := (&Space{
		Params: []Param{
			{Name: ParamGammaCap, Min: 0.01, Max: 0.05, Step: 0.01},
			{Name: ParamRateKp0, Min: 0.2, Max: 1.6, Step: 0.2},
		},
	}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	tpl := scenario.Spec{Scenario: "carfollow", Duration: 10}
	c := Candidate{Scheme: "edf", Values: []float64{0.03, 0.4}}
	got, err := sp.Apply(tpl, c)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got.Scheme != "edf" {
		t.Errorf("scheme = %q, want edf", got.Scheme)
	}
	if got.GammaCap != 0.03 {
		t.Errorf("gamma_cap = %v, want 0.03", got.GammaCap)
	}
	if got.Tunables == nil || got.Tunables.RateKp0 != 0.4 {
		t.Errorf("tunables = %+v, want rate_kp0 0.4", got.Tunables)
	}
	// Wrong arity is rejected.
	if _, err := sp.Apply(tpl, Candidate{Scheme: "edf", Values: []float64{0.03}}); err == nil {
		t.Error("Apply accepted candidate with wrong value count")
	}
}

func TestCandidateKeyDistinguishes(t *testing.T) {
	a := Candidate{Scheme: "hcperf", Values: []float64{0.02, 500}}
	b := Candidate{Scheme: "hcperf", Values: []float64{0.02, 500}}
	c := Candidate{Scheme: "edf", Values: []float64{0.02, 500}}
	d := Candidate{Scheme: "hcperf", Values: []float64{0.025, 500}}
	if a.Key() != b.Key() {
		t.Error("identical candidates have different keys")
	}
	if a.Key() == c.Key() || a.Key() == d.Key() {
		t.Error("distinct candidates share a key")
	}
}

// FuzzParamSpaceJSON feeds arbitrary JSON through the Space decode →
// Normalize → encode → decode → Normalize loop and asserts normalization is
// a fixed point: whatever survives validation must re-encode and
// re-normalize to itself.
func FuzzParamSpaceJSON(f *testing.F) {
	seed, _ := json.Marshal(DefaultSpace())
	f.Add(string(seed))
	f.Add(`{"params":[{"name":"gamma_cap","min":0.01,"max":0.05,"step":0.01}]}`)
	f.Add(`{"params":[{"name":"rate_kp0","min":0.2,"max":1.6,"step":0.2}],"schemes":["edf","edf","hcperf"]}`)
	f.Add(`{"params":[]}`)
	f.Add(`{"params":[{"name":"mfc_window_ms","min":100,"max":5000,"step":1}],"schemes":["dynamic"]}`)
	f.Fuzz(func(t *testing.T, data string) {
		var sp Space
		if err := json.Unmarshal([]byte(data), &sp); err != nil {
			return
		}
		norm, err := sp.Normalize()
		if err != nil {
			return
		}
		enc, err := json.Marshal(norm)
		if err != nil {
			t.Fatalf("marshal normalized space: %v", err)
		}
		var back Space
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatalf("re-decode normalized space: %v", err)
		}
		norm2, err := back.Normalize()
		if err != nil {
			t.Fatalf("re-normalize round-tripped space: %v", err)
		}
		enc2, err := json.Marshal(norm2)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if string(enc) != string(enc2) {
			t.Fatalf("normalization not a fixed point:\n%s\n%s", enc, enc2)
		}
		if norm.Size() < 0 {
			t.Fatalf("Size() negative: %d", norm.Size())
		}
	})
}
