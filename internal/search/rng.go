package search

// rng is a splitmix64 stream — the same generator the fleet layer uses to
// partition per-vehicle seeds. Strategies never share a stream across
// generations: each generation derives a fresh stream from (seed, gen), so
// a search replays identically regardless of how many proposals earlier
// generations consumed.
type rng struct{ state uint64 }

// newRNG derives the generation-g stream of a search seeded with seed.
func newRNG(seed int64, gen int) *rng {
	// Decorrelate the two inputs with distinct odd constants before the
	// stream starts; splitmix64's increment-then-mix output function does
	// the rest.
	return &rng{state: uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(gen+1)*0xBF58476D1CE4E5B9}
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// intn returns a uniform int in [0, n). n must be positive; the modulo
// bias is negligible for the grid sizes involved and, crucially, platform-
// independent.
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}
