package search

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"hcperf/internal/scenario"
)

// testRequest is a small, fast search: 10 simulated seconds, 2 replicas,
// a 6-point space.
func testRequest(strategy string, budget int) Request {
	return Request{
		Spec: scenario.Spec{Scenario: "carfollow", Duration: 10},
		Space: &Space{
			Params: []Param{
				{Name: ParamGammaCap, Min: 0.01, Max: 0.03, Step: 0.01},
				{Name: ParamRateKp0, Min: 0.4, Max: 0.8, Step: 0.4},
			},
			Schemes: []string{"hcperf"},
		},
		Strategy: strategy,
		Budget:   budget,
		Seeds:    2,
		Seed:     7,
	}
}

func runJSON(t *testing.T, rq Request, workers int) []byte {
	t.Helper()
	rep, err := rq.Run(context.Background(), workers, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := rep.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	return b
}

// TestRunDeterministicSerialParallel asserts the whole report is
// byte-identical at worker counts 1 and 4, and across repeated runs.
func TestRunDeterministicSerialParallel(t *testing.T) {
	rq := testRequest(StrategyEvolve, 8)
	serial := runJSON(t, rq, 1)
	parallel := runJSON(t, rq, 4)
	if string(serial) != string(parallel) {
		t.Fatalf("serial and parallel reports differ:\n%s\n%s", serial, parallel)
	}
	again := runJSON(t, rq, 4)
	if string(serial) != string(again) {
		t.Fatalf("repeated run differs:\n%s\n%s", serial, again)
	}
}

func TestRunBudgetAndDedup(t *testing.T) {
	rq := testRequest(StrategyRandom, 5)
	rep, err := rq.Run(context.Background(), 2, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Evaluated > 5 {
		t.Fatalf("evaluated %d > budget 5", rep.Evaluated)
	}
	if rep.Evaluated < 1 {
		t.Fatal("nothing evaluated")
	}
	if len(rep.Baselines) != 1 || rep.Baselines[0].Candidate.Scheme != "hcperf" {
		t.Fatalf("baselines = %+v, want one hcperf default", rep.Baselines)
	}
	if len(rep.Best) != len(rep.Objectives) {
		t.Fatalf("best has %d entries for %d objectives", len(rep.Best), len(rep.Objectives))
	}
}

// TestGridExhaustsSpace runs the grid strategy with budget beyond the space
// size: every grid point plus the off-grid baseline must be evaluated, then
// the search must stop on its own.
func TestGridExhaustsSpace(t *testing.T) {
	rq := testRequest(StrategyGrid, 64)
	rep, err := rq.Run(context.Background(), 2, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 6 grid points + 1 off-grid baseline (defaults gamma_cap 0.02 is on
	// grid in one dimension but kp0 0.8 is on grid too — the baseline may
	// coincide with a grid point; allow either).
	if rep.Evaluated < rep.SpaceSize || rep.Evaluated > rep.SpaceSize+1 {
		t.Fatalf("evaluated %d, space size %d: grid not exhausted", rep.Evaluated, rep.SpaceSize)
	}
}

func TestRunProgressReported(t *testing.T) {
	rq := testRequest(StrategyEvolve, 6)
	var last Progress
	calls := 0
	_, err := rq.Run(context.Background(), 2, func(p Progress) {
		calls++
		if p.Evaluated < last.Evaluated || p.Generations < last.Generations {
			t.Fatalf("progress went backwards: %+v after %+v", p, last)
		}
		last = p
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls == 0 {
		t.Fatal("OnProgress never called")
	}
	if last.Evaluated == 0 || len(last.Best) == 0 {
		t.Fatalf("final progress empty: %+v", last)
	}
}

func TestRequestNormalizeDefaultsAndIdempotence(t *testing.T) {
	rq := Request{Spec: scenario.Spec{Scenario: "carfollow"}}
	n, err := rq.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if n.Strategy != StrategyEvolve || n.Budget != DefaultBudget || n.Seeds != DefaultSeeds ||
		n.Seed != 1 || n.Mu != DefaultMu || n.Lambda != DefaultLambda {
		t.Fatalf("defaults not filled: %+v", n)
	}
	if n.Space == nil || len(n.Space.Params) == 0 {
		t.Fatal("space not defaulted")
	}
	if len(n.Objectives) != len(AllObjectives()) {
		t.Fatalf("objectives = %v, want all", n.Objectives)
	}
	n2, err := n.Normalize()
	if err != nil {
		t.Fatalf("second Normalize: %v", err)
	}
	if !reflect.DeepEqual(n, n2) {
		t.Fatalf("Normalize not idempotent:\n%+v\n%+v", n, n2)
	}
	// Canonical JSON is a fixed point through decode/encode.
	b1, err := n.CanonicalJSON()
	if err != nil {
		t.Fatalf("CanonicalJSON: %v", err)
	}
	var back Request
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatalf("decode canonical: %v", err)
	}
	b2, err := back.CanonicalJSON()
	if err != nil {
		t.Fatalf("re-canonicalize: %v", err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("canonical JSON not a fixed point:\n%s\n%s", b1, b2)
	}
}

func TestRequestRejections(t *testing.T) {
	cases := []Request{
		{Spec: scenario.Spec{Scenario: "carfollow", Fleet: &scenario.FleetSpec{N: 2}}},
		{Spec: scenario.Spec{Scenario: "lanekeep"}},
		{Spec: scenario.Spec{Scenario: "carfollow"}, Strategy: "warp"},
		{Spec: scenario.Spec{Scenario: "carfollow"}, Budget: MaxBudget + 1},
		{Spec: scenario.Spec{Scenario: "carfollow"}, Seeds: MaxSeeds + 1},
		{Spec: scenario.Spec{Scenario: "carfollow"}, Strategy: StrategyGrid, Mu: 3},
		{Spec: scenario.Spec{Scenario: "carfollow"}, Objectives: []string{"nope"}},
	}
	for i, rq := range cases {
		if _, err := rq.Normalize(); err == nil {
			t.Errorf("case %d: Normalize accepted invalid request", i)
		}
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rq := testRequest(StrategyEvolve, 8)
	if _, err := rq.Run(ctx, 2, nil); err == nil {
		t.Fatal("Run with cancelled context succeeded")
	}
}

func TestBaselineFirstGeneration(t *testing.T) {
	rq := testRequest(StrategyEvolve, 8)
	rep, err := rq.Run(context.Background(), 1, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, b := range rep.Baselines {
		if b.Gen != 0 {
			t.Fatalf("baseline evaluated in gen %d, want 0", b.Gen)
		}
	}
	for _, e := range rep.Best {
		if e.Baseline == 0 && e.Value == 0 {
			t.Fatalf("best entry %q has zero baseline and value", e.Objective)
		}
	}
}
