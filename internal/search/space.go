// Package search is the policy-search and auto-tuning subsystem over the
// HCPerf coordinator parameter space. It explores the knobs the paper
// hand-picks — γmax cap, MFC window, rate-adapter gains, rate-band scales
// and the dispatch scheme — by running a scenario.Spec template under many
// candidate tunings (K replica seeds per candidate, advanced in lockstep by
// fleet.RunBatch) and extracting the Pareto front over scored objectives.
//
// Everything is deterministic by construction: the space has a canonical
// JSON encoding that folds into the serving layer's content-addressed cache
// digest, candidate values are index-quantized on exact grids, the
// strategies draw from splitmix64-derived per-generation RNG streams, and
// the front is reduced in a canonical order — so a whole search is
// replayable and its report digest-pinnable.
package search

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"hcperf/internal/core"
	"hcperf/internal/scenario"
	"hcperf/internal/simtime"
)

// Parameter names the space understands, in canonical (sorted) order. Each
// maps onto one core.Tunables knob through the scenario spec surface.
const (
	ParamGammaCap    = "gamma_cap"     // Dynamic scheduler γmax cap
	ParamMFCWindowMS = "mfc_window_ms" // PDC derivative-estimation window
	ParamRMaxScale   = "r_max_scale"   // source-task MaxRate multiplier
	ParamRMinScale   = "r_min_scale"   // source-task MinRate multiplier
	ParamRateDecay   = "rate_decay"    // adapter gain decay per stable period
	ParamRateKp0     = "rate_kp0"      // adapter initial gain
)

// paramBound is the hard validity range for one known parameter; spaces
// may only search inside it. Every lower bound is strictly positive: a
// zero value would collide with the spec layer's "use the paper default"
// sentinel.
type paramBound struct{ lo, hi float64 }

var paramBounds = map[string]paramBound{
	ParamGammaCap:    {0.0005, 10},
	ParamMFCWindowMS: {100, 5000},
	ParamRMaxScale:   {0.05, 4},
	ParamRMinScale:   {0.05, 4},
	ParamRateDecay:   {0.05, 0.995},
	ParamRateKp0:     {0.01, 10},
}

// paramDefault returns the paper-default value of a known parameter — the
// baseline candidate every search evaluates first.
func paramDefault(name string) float64 {
	d := core.DefaultTunables()
	switch name {
	case ParamGammaCap:
		return d.GammaCap
	case ParamMFCWindowMS:
		return float64(d.MFCWindow) / float64(simtime.Millisecond)
	case ParamRMaxScale:
		return d.RMaxScale
	case ParamRMinScale:
		return d.RMinScale
	case ParamRateDecay:
		return d.RateDecay
	case ParamRateKp0:
		return d.RateKp0
	default:
		panic(fmt.Sprintf("search: no default for parameter %q", name))
	}
}

// ParamNames lists the searchable parameters in canonical order.
func ParamNames() []string {
	names := make([]string, 0, len(paramBounds))
	for n := range paramBounds {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Param is one quantized dimension of the space: the candidate values are
// exactly Min + i·Step for i in [0, Levels), the last level clamped to Max.
// Quantization is part of the contract — two candidates agreeing on grid
// indices agree bit-for-bit on values, so dedup and replay are exact.
type Param struct {
	// Name is one of the known parameter names (ParamNames).
	Name string `json:"name"`
	// Min and Max bound the searched range, inside the parameter's hard
	// validity bounds.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Step is the quantization step (> 0).
	Step float64 `json:"step"`
}

// Levels returns the number of grid points on the dimension.
func (p Param) Levels() int {
	if p.Step <= 0 || p.Max < p.Min {
		return 0
	}
	// The epsilon absorbs binary-representation shortfall in (Max-Min)/Step
	// for humanly-chosen decimal ranges like [0.2, 1.6] step 0.2.
	return int(math.Floor((p.Max-p.Min)/p.Step+1e-9)) + 1
}

// Value returns the exact grid value at index i, clamped to [Min, Max].
func (p Param) Value(i int) float64 {
	v := p.Min + float64(i)*p.Step
	if v > p.Max {
		v = p.Max
	}
	return v
}

// validate checks the dimension against its hard bounds.
func (p Param) validate() error {
	b, ok := paramBounds[p.Name]
	if !ok {
		return fmt.Errorf("search: unknown parameter %q (have %s)", p.Name, strings.Join(ParamNames(), ", "))
	}
	for _, f := range []struct {
		name string
		v    float64
	}{{"min", p.Min}, {"max", p.Max}, {"step", p.Step}} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("search: parameter %q %s must be finite", p.Name, f.name)
		}
	}
	if p.Min < b.lo || p.Max > b.hi {
		return fmt.Errorf("search: parameter %q range [%v,%v] outside hard bounds [%v,%v]",
			p.Name, p.Min, p.Max, b.lo, b.hi)
	}
	if p.Max < p.Min {
		return fmt.Errorf("search: parameter %q range [%v,%v] inverted", p.Name, p.Min, p.Max)
	}
	if p.Step <= 0 {
		return fmt.Errorf("search: parameter %q step %v must be positive", p.Name, p.Step)
	}
	if n := p.Levels(); n > maxLevels {
		return fmt.Errorf("search: parameter %q has %d levels (max %d)", p.Name, n, maxLevels)
	}
	return nil
}

// maxLevels bounds one dimension's grid so a malformed space cannot demand
// an absurd enumeration.
const maxLevels = 4096

// Space is the searchable parameter space: a set of quantized dimensions
// plus the candidate dispatch schemes. Its canonical form (Normalize) has
// the params sorted by name and the schemes sorted and deduplicated, so the
// JSON encoding is a stable cache-key component.
type Space struct {
	// Params are the searched dimensions; parameters not listed stay at
	// their paper defaults.
	Params []Param `json:"params"`
	// Schemes are the candidate dispatch schemes (default ["hcperf"]).
	// Coordinator parameters are still stamped on non-HCPerf candidates:
	// only the rate-band scales have any effect there (they reshape the
	// initial sensor rates), which is exactly the EDF-vs-Dynamic
	// comparison the space is for.
	Schemes []string `json:"schemes,omitempty"`
}

// DefaultSpace is the paper-motivated search space: the γ cap, MFC window
// and adapter gains around their hand-picked values, the rate ceiling
// scale, and the EDF-vs-HCPerf scheduler choice.
func DefaultSpace() *Space {
	return &Space{
		Params: []Param{
			{Name: ParamGammaCap, Min: 0.005, Max: 0.1, Step: 0.005},
			{Name: ParamMFCWindowMS, Min: 200, Max: 1000, Step: 100},
			{Name: ParamRMaxScale, Min: 0.6, Max: 1, Step: 0.1},
			{Name: ParamRateDecay, Min: 0.8, Max: 0.98, Step: 0.02},
			{Name: ParamRateKp0, Min: 0.2, Max: 1.6, Step: 0.2},
		},
		Schemes: []string{"edf", "hcperf"},
	}
}

// Normalize validates the space and returns its canonical form: params
// sorted by name, schemes defaulted, sorted and deduplicated. It is
// idempotent, making the encoded form a stable cache key.
func (sp Space) Normalize() (Space, error) {
	if len(sp.Params) == 0 {
		return sp, fmt.Errorf("search: space has no parameters")
	}
	params := append([]Param(nil), sp.Params...)
	sort.Slice(params, func(i, j int) bool { return params[i].Name < params[j].Name })
	for i, p := range params {
		if err := p.validate(); err != nil {
			return sp, err
		}
		if i > 0 && params[i-1].Name == p.Name {
			return sp, fmt.Errorf("search: duplicate parameter %q", p.Name)
		}
	}
	schemes := append([]string(nil), sp.Schemes...)
	if len(schemes) == 0 {
		schemes = []string{"hcperf"}
	}
	sort.Strings(schemes)
	out := schemes[:0]
	for i, name := range schemes {
		if _, err := scenario.ParseScheme(name); err != nil {
			return sp, err
		}
		if i > 0 && schemes[i-1] == name {
			continue
		}
		out = append(out, name)
	}
	sp.Params = params
	sp.Schemes = out
	return sp, nil
}

// Size returns the total number of distinct grid candidates.
func (sp *Space) Size() int {
	n := len(sp.Schemes)
	for _, p := range sp.Params {
		n *= p.Levels()
	}
	return n
}

// Candidate is one point of the space: a dispatch scheme plus one value per
// space dimension, aligned with the (canonically sorted) Params slice.
type Candidate struct {
	// Scheme is the dispatch scheme name.
	Scheme string `json:"scheme"`
	// Values holds one value per space parameter, in Params order.
	Values []float64 `json:"values"`
}

// Key returns the candidate's canonical identity string, used for
// deduplication and as the deterministic tie-break in Pareto ordering.
func (c Candidate) Key() string {
	var b strings.Builder
	b.WriteString(c.Scheme)
	for _, v := range c.Values {
		b.WriteByte('|')
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	return b.String()
}

// Labels renders the candidate as name=value assignments in Params order.
func (sp *Space) Labels(c Candidate) string {
	parts := make([]string, 0, len(sp.Params)+1)
	parts = append(parts, "scheme="+c.Scheme)
	for i, p := range sp.Params {
		parts = append(parts, p.Name+"="+strconv.FormatFloat(c.Values[i], 'g', -1, 64))
	}
	return strings.Join(parts, " ")
}

// candidateAt builds the candidate for one scheme and one grid index per
// dimension.
func (sp *Space) candidateAt(scheme string, idx []int) Candidate {
	vals := make([]float64, len(sp.Params))
	for i, p := range sp.Params {
		vals[i] = p.Value(idx[i])
	}
	return Candidate{Scheme: scheme, Values: vals}
}

// Baseline returns the paper-default candidate under the given scheme: the
// exact default value on every dimension, whether or not it lies on the
// grid. Searches evaluate it first so "strictly improves over the paper
// defaults" is always answerable from the same report.
func (sp *Space) Baseline(scheme string) Candidate {
	vals := make([]float64, len(sp.Params))
	for i, p := range sp.Params {
		vals[i] = paramDefault(p.Name)
	}
	return Candidate{Scheme: scheme, Values: vals}
}

// Apply stamps the candidate onto a copy of the template spec: the scheme
// replaces the template's, each dimension lands on its spec knob, and the
// result is re-normalized (which re-validates the assembled spec).
func (sp *Space) Apply(template scenario.Spec, c Candidate) (scenario.Spec, error) {
	if len(c.Values) != len(sp.Params) {
		return scenario.Spec{}, fmt.Errorf("search: candidate has %d values for %d parameters", len(c.Values), len(sp.Params))
	}
	s := template
	s.Scheme = c.Scheme
	var tb scenario.SpecTunables
	if s.Tunables != nil {
		tb = *s.Tunables
	}
	for i, p := range sp.Params {
		v := c.Values[i]
		switch p.Name {
		case ParamGammaCap:
			s.GammaCap = v
		case ParamMFCWindowMS:
			tb.MFCWindowMS = v
		case ParamRMaxScale:
			tb.RMaxScale = v
		case ParamRMinScale:
			tb.RMinScale = v
		case ParamRateDecay:
			tb.RateDecay = v
		case ParamRateKp0:
			tb.RateKp0 = v
		default:
			return scenario.Spec{}, fmt.Errorf("search: unknown parameter %q", p.Name)
		}
	}
	if tb != (scenario.SpecTunables{}) {
		s.Tunables = &tb
	}
	return s.Normalize()
}
