package search

import (
	"context"
	"encoding/json"
	"fmt"

	"hcperf/internal/scenario"
)

// Service-facing limits: an optimize job is bounded work by construction,
// so the queue/shed machinery's fairness assumptions keep holding.
const (
	// DefaultBudget/MaxBudget bound unique candidate evaluations.
	DefaultBudget = 24
	MaxBudget     = 512
	// DefaultSeeds/MaxSeeds bound replicas per candidate.
	DefaultSeeds = 3
	MaxSeeds     = 16
	// Default and max (μ, λ) for the evolutionary strategy.
	DefaultMu     = 4
	DefaultLambda = 8
	MaxMu         = 64
	MaxLambda     = 256
)

// Request is the declarative, JSON-serializable form of one search: what
// hcperf-sim -mode tune builds from flags and what POST /v1/optimize
// accepts inline. Its normalized canonical JSON folds into the serving
// layer's content-addressed cache digest, so equivalent requests dedupe.
type Request struct {
	// Spec is the scenario template candidates are stamped onto: a
	// single-vehicle car-following-family spec (carfollow, hardware, jam,
	// aeb; no fleet block). Its scheme field is irrelevant — each
	// candidate carries its own.
	Spec scenario.Spec `json:"spec"`
	// Space is the searched space (nil = DefaultSpace).
	Space *Space `json:"space,omitempty"`
	// Objectives names the scored axes (empty = all four).
	Objectives []string `json:"objectives,omitempty"`
	// Strategy is random | grid | evolve (default evolve).
	Strategy string `json:"strategy,omitempty"`
	// Budget caps unique candidate evaluations (default 24, max 512).
	Budget int `json:"budget,omitempty"`
	// Seeds is K, replicas per candidate (default 3, max 16).
	Seeds int `json:"seeds,omitempty"`
	// Seed drives replica seeding and the strategy RNG (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Mu and Lambda parameterize the (μ+λ) evolutionary strategy
	// (defaults 4 and 8; zeroed for other strategies).
	Mu     int `json:"mu,omitempty"`
	Lambda int `json:"lambda,omitempty"`
}

// Normalize validates the request and fills every default explicitly —
// space, objectives, strategy, budgets — so equivalent spellings share one
// canonical encoding. It is idempotent.
func (rq Request) Normalize() (Request, error) {
	spec, err := rq.Spec.Normalize()
	if err != nil {
		return rq, err
	}
	if spec.Fleet != nil {
		return rq, fmt.Errorf("search: fleet templates are not supported; tune the single-vehicle spec and run fleet sweeps separately")
	}
	// The family check rides on the config mapping: non-car-following
	// scenarios fail here with the standard scenario error.
	if _, err := scenario.CarFollowingConfigFromSpec(spec); err != nil {
		return rq, err
	}
	rq.Spec = spec

	sp := DefaultSpace()
	if rq.Space != nil {
		sp = rq.Space
	}
	norm, err := sp.Normalize()
	if err != nil {
		return rq, err
	}
	rq.Space = &norm

	objs, err := ParseObjectives(rq.Objectives)
	if err != nil {
		return rq, err
	}
	names := make([]string, len(objs))
	for i, o := range objs {
		names[i] = o.Name
	}
	rq.Objectives = names

	if rq.Strategy == "" {
		rq.Strategy = StrategyEvolve
	}
	if rq.Strategy == StrategyEvolve {
		if rq.Mu == 0 {
			rq.Mu = DefaultMu
		}
		if rq.Lambda == 0 {
			rq.Lambda = DefaultLambda
		}
		if rq.Mu < 1 || rq.Mu > MaxMu {
			return rq, fmt.Errorf("search: mu %d outside [1,%d]", rq.Mu, MaxMu)
		}
		if rq.Lambda < 1 || rq.Lambda > MaxLambda {
			return rq, fmt.Errorf("search: lambda %d outside [1,%d]", rq.Lambda, MaxLambda)
		}
	} else {
		if rq.Mu != 0 || rq.Lambda != 0 {
			return rq, fmt.Errorf("search: mu/lambda apply to the evolve strategy only")
		}
	}
	// Validate the strategy name itself.
	if _, err := NewStrategy(rq.Strategy, max(rq.Mu, 1), max(rq.Lambda, 1)); err != nil {
		return rq, err
	}

	if rq.Budget == 0 {
		rq.Budget = DefaultBudget
	}
	if rq.Budget < 1 || rq.Budget > MaxBudget {
		return rq, fmt.Errorf("search: budget %d outside [1,%d]", rq.Budget, MaxBudget)
	}
	if rq.Seeds == 0 {
		rq.Seeds = DefaultSeeds
	}
	if rq.Seeds < 1 || rq.Seeds > MaxSeeds {
		return rq, fmt.Errorf("search: seeds %d outside [1,%d]", rq.Seeds, MaxSeeds)
	}
	if rq.Seed == 0 {
		rq.Seed = 1
	}
	return rq, nil
}

// CanonicalJSON encodes the normalized request deterministically — the
// cache-digest component for /v1/optimize.
func (rq Request) CanonicalJSON() ([]byte, error) {
	n, err := rq.Normalize()
	if err != nil {
		return nil, err
	}
	return json.Marshal(n)
}

// Run normalizes and executes the request with the given evaluation
// parallelism, reporting generation progress to onProgress when non-nil.
func (rq Request) Run(ctx context.Context, workers int, onProgress func(Progress)) (*Report, error) {
	n, err := rq.Normalize()
	if err != nil {
		return nil, err
	}
	strategy, err := NewStrategy(n.Strategy, n.Mu, n.Lambda)
	if err != nil {
		return nil, err
	}
	objs, err := ParseObjectives(n.Objectives)
	if err != nil {
		return nil, err
	}
	return Run(ctx, Options{
		Space:      n.Space,
		Template:   n.Spec,
		Objectives: objs,
		Strategy:   strategy,
		Budget:     n.Budget,
		Seeds:      n.Seeds,
		Seed:       n.Seed,
		Workers:    workers,
		OnProgress: onProgress,
	})
}
