package search

import (
	"fmt"
	"strings"
)

// Strategy proposes candidates generation by generation. Implementations
// must be deterministic functions of their arguments: all randomness comes
// from the per-generation rng, and the evaluated history arrives in a
// deterministic order — so a whole search replays bit-for-bit.
type Strategy interface {
	// Name returns the strategy's registry name.
	Name() string
	// Propose returns up to n candidates for generation g that are not
	// already in seen (keys of evaluated candidates). Returning an empty
	// slice ends the search (space exhausted or converged).
	Propose(g, n int, sp *Space, r *rng, scored []Scored, objs []Objective, seen map[string]bool) []Candidate
}

// Strategy names.
const (
	StrategyRandom = "random"
	StrategyGrid   = "grid"
	StrategyEvolve = "evolve"
)

// StrategyNames lists the strategies in stable order.
func StrategyNames() []string { return []string{StrategyEvolve, StrategyGrid, StrategyRandom} }

// NewStrategy builds a strategy by name. mu and lambda parameterize the
// evolutionary strategy and are ignored by the others.
func NewStrategy(name string, mu, lambda int) (Strategy, error) {
	switch name {
	case StrategyRandom:
		return randomStrategy{}, nil
	case StrategyGrid:
		return gridStrategy{}, nil
	case StrategyEvolve:
		if mu < 1 || lambda < 1 {
			return nil, fmt.Errorf("search: evolve needs mu >= 1 and lambda >= 1, got %d/%d", mu, lambda)
		}
		return &evolveStrategy{mu: mu, lambda: lambda}, nil
	default:
		return nil, fmt.Errorf("search: unknown strategy %q (have %s)", name, strings.Join(StrategyNames(), ", "))
	}
}

// sampleAttempts bounds the rejection sampling per wanted candidate; a
// saturated space stops proposing instead of spinning.
const sampleAttempts = 64

// randomStrategy samples the grid uniformly, rejecting already-seen points.
type randomStrategy struct{}

func (randomStrategy) Name() string { return StrategyRandom }

func (randomStrategy) Propose(g, n int, sp *Space, r *rng, scored []Scored, objs []Objective, seen map[string]bool) []Candidate {
	return sampleRandom(n, sp, r, seen)
}

// sampleRandom draws up to n fresh grid candidates (shared by random
// proposals and evolve's first generation). The local batch map keeps one
// batch free of internal duplicates.
func sampleRandom(n int, sp *Space, r *rng, seen map[string]bool) []Candidate {
	var out []Candidate
	batch := make(map[string]bool)
	idx := make([]int, len(sp.Params))
	for len(out) < n {
		found := false
		for attempt := 0; attempt < sampleAttempts; attempt++ {
			scheme := sp.Schemes[r.intn(len(sp.Schemes))]
			for i, p := range sp.Params {
				idx[i] = r.intn(p.Levels())
			}
			c := sp.candidateAt(scheme, idx)
			k := c.Key()
			if seen[k] || batch[k] {
				continue
			}
			batch[k] = true
			out = append(out, c)
			found = true
			break
		}
		if !found {
			break
		}
	}
	return out
}

// gridStrategy enumerates the full grid in canonical order — scheme-major,
// then mixed-radix over the dimensions with the last dimension fastest —
// skipping evaluated points. With enough budget it is exhaustive.
type gridStrategy struct{}

func (gridStrategy) Name() string { return StrategyGrid }

func (gridStrategy) Propose(g, n int, sp *Space, r *rng, scored []Scored, objs []Objective, seen map[string]bool) []Candidate {
	var out []Candidate
	idx := make([]int, len(sp.Params))
	for _, scheme := range sp.Schemes {
		for i := range idx {
			idx[i] = 0
		}
		for {
			c := sp.candidateAt(scheme, idx)
			if !seen[c.Key()] {
				out = append(out, c)
				if len(out) >= n {
					return out
				}
			}
			// Mixed-radix increment, last dimension fastest.
			d := len(idx) - 1
			for d >= 0 {
				idx[d]++
				if idx[d] < sp.Params[d].Levels() {
					break
				}
				idx[d] = 0
				d--
			}
			if d < 0 {
				break
			}
		}
	}
	return out
}

// evolveStrategy is a (μ+λ) evolutionary loop: parents are the μ best
// candidates under non-dominated sorting of everything evaluated so far
// (elitist — parents persist via the scored history), children are made by
// uniform crossover of two parents plus per-dimension grid-step mutation.
type evolveStrategy struct {
	mu, lambda int
}

func (e *evolveStrategy) Name() string { return StrategyEvolve }

func (e *evolveStrategy) Propose(g, n int, sp *Space, r *rng, scored []Scored, objs []Objective, seen map[string]bool) []Candidate {
	if n > e.lambda {
		n = e.lambda
	}
	if g == 0 || len(scored) == 0 {
		return sampleRandom(n, sp, r, seen)
	}
	parents := rankAll(scored, objs)
	if len(parents) > e.mu {
		parents = parents[:e.mu]
	}
	var out []Candidate
	batch := make(map[string]bool)
	for len(out) < n {
		found := false
		for attempt := 0; attempt < sampleAttempts; attempt++ {
			a := parents[r.intn(len(parents))].Candidate
			b := parents[r.intn(len(parents))].Candidate
			c := e.cross(sp, r, a, b)
			e.mutate(sp, r, &c)
			k := c.Key()
			if seen[k] || batch[k] {
				continue
			}
			batch[k] = true
			out = append(out, c)
			found = true
			break
		}
		if !found {
			break
		}
	}
	return out
}

// cross performs uniform crossover: each dimension (and the scheme) comes
// from either parent with equal probability.
func (e *evolveStrategy) cross(sp *Space, r *rng, a, b Candidate) Candidate {
	c := Candidate{Scheme: a.Scheme, Values: append([]float64(nil), a.Values...)}
	if r.intn(2) == 1 {
		c.Scheme = b.Scheme
	}
	for i := range c.Values {
		if r.intn(2) == 1 {
			c.Values[i] = b.Values[i]
		}
	}
	return c
}

// mutate steps a random subset of dimensions by ±1..2 grid levels and
// occasionally re-rolls the scheme. Off-grid parent values (the baseline
// candidate) snap to the nearest grid level first, so the walk stays on
// the quantized lattice.
func (e *evolveStrategy) mutate(sp *Space, r *rng, c *Candidate) {
	pMut := 1.0 / float64(len(sp.Params)+1)
	for i, p := range sp.Params {
		if r.float() >= pMut {
			continue
		}
		idx := nearestLevel(p, c.Values[i])
		step := 1 + r.intn(2)
		if r.intn(2) == 1 {
			step = -step
		}
		idx += step
		if idx < 0 {
			idx = 0
		}
		if max := p.Levels() - 1; idx > max {
			idx = max
		}
		c.Values[i] = p.Value(idx)
	}
	if len(sp.Schemes) > 1 && r.float() < pMut {
		c.Scheme = sp.Schemes[r.intn(len(sp.Schemes))]
	}
}

// nearestLevel returns the grid index whose value is closest to v.
func nearestLevel(p Param, v float64) int {
	if p.Step <= 0 {
		return 0
	}
	idx := int((v-p.Min)/p.Step + 0.5)
	if idx < 0 {
		idx = 0
	}
	if max := p.Levels() - 1; idx > max {
		idx = max
	}
	return idx
}
