package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"hcperf/internal/core"
	"hcperf/internal/exectime"
	"hcperf/internal/lifecycle"
	"hcperf/internal/simtime"
	"hcperf/internal/trace"
)

// Spec is the declarative, JSON-serializable form of one scenario run: the
// scenario family picks the Plant (the vehicle-side world), everything
// else configures the shared closed-loop kernel. Specs are first-class
// data — hcperf-sim runs them from files (-spec run.json) and the serving
// layer accepts them inline on POST /v1/runs, where the normalized JSON
// feeds the content-addressed cache key.
//
// Zero fields take the scenario's defaults; a Spec containing only
// {"scenario": "carfollow"} reproduces the paper's §VII-B1 run.
type Spec struct {
	// Name optionally labels the run (report IDs, filenames).
	Name string `json:"name,omitempty"`
	// Scenario selects the plant: aeb | carfollow | combined | hardware
	// | jam | lanekeep | motivation.
	Scenario string `json:"scenario"`
	// Graph names the task graph. Each scenario runs one graph
	// (carfollow family and lanekeep: ad23; combined: dual-control;
	// motivation: motivation); empty selects it, non-empty must match.
	Graph string `json:"graph,omitempty"`
	// Scheme is the scheduling scheme name (default "hcperf"): hpf |
	// edf | edfvd | apollo | hcperf | hcperf-internal.
	Scheme string `json:"scheme,omitempty"`
	// Seed drives all run randomness (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Duration overrides the scenario duration in seconds (0 = scenario
	// default).
	Duration float64 `json:"duration,omitempty"`
	// NumProcs overrides the processor count (0 = scenario default).
	NumProcs int `json:"num_procs,omitempty"`
	// VehicleStep overrides the dynamics integration step in seconds
	// (0 = default 10 ms).
	VehicleStep float64 `json:"vehicle_step,omitempty"`
	// SampleRate is the summary-series sample frequency in Hz
	// (0 = default 1 Hz).
	SampleRate float64 `json:"sample_rate,omitempty"`
	// MaxDataAgeMS overrides the input-age validity bound in
	// milliseconds: 0 = default (220 ms), negative = disabled.
	MaxDataAgeMS float64 `json:"max_data_age_ms,omitempty"`
	// GammaCap overrides the Dynamic scheduler's γ cap (0 = default;
	// carfollow family, lanekeep and combined).
	GammaCap float64 `json:"gamma_cap,omitempty"`
	// DisableE2E clears every control task's end-to-end deadline
	// (carfollow family only).
	DisableE2E bool `json:"disable_e2e,omitempty"`
	// TrackGapError makes the coordinator track the gap error instead
	// of the speed error (carfollow family only).
	TrackGapError bool `json:"track_gap_error,omitempty"`
	// Loads multiply task execution times over time windows.
	Loads []SpecLoad `json:"loads,omitempty"`
	// RateOverrides sets initial source rates by task name.
	RateOverrides map[string]float64 `json:"rate_overrides,omitempty"`
	// Obstacles is a piecewise-constant obstacle-count profile; empty
	// keeps the scenario default.
	Obstacles []ObstaclePhase `json:"obstacles,omitempty"`
	// Tunables overrides the coordinator parameter set (car-following
	// family only): MFC window, rate-adapter gains and rate-band scales.
	// The γ cap keeps its existing top-level gamma_cap knob. Zero fields
	// take the paper defaults; a block with every field zero normalizes
	// to nil.
	Tunables *SpecTunables `json:"tunables,omitempty"`
	// Fleet scales the run from one vehicle to N coupled vehicles on one
	// shared virtual clock (car-following family only). Fleet specs are
	// executed by internal/fleet; nil keeps the single-vehicle run.
	Fleet *FleetSpec `json:"fleet,omitempty"`
}

// Fleet coupling modes accepted by FleetSpec.Coupling.
const (
	// FleetCouplingNone runs N independent vehicles over the common
	// obstacle field: no vehicle observes another.
	FleetCouplingNone = "none"
	// FleetCouplingPlatoon chains the vehicles: vehicle i follows
	// vehicle i-1's simulated motion (vehicle 0 follows the scenario's
	// lead profile), and a hard-braking predecessor inflates its
	// follower's obstacle count — V2X-style shared-world coupling.
	FleetCouplingPlatoon = "platoon"
)

// FleetCouplings lists the coupling modes in stable order.
func FleetCouplings() []string { return []string{FleetCouplingNone, FleetCouplingPlatoon} }

// FleetSpec is the declarative form of a multi-vehicle fleet run. The rest
// of the Spec acts as the per-vehicle template; the fleet block says how
// many vehicles to instantiate, how their worlds couple, and how their
// per-vehicle randomness is partitioned.
type FleetSpec struct {
	// N is the number of vehicles (>= 1).
	N int `json:"n"`
	// Coupling selects the shared-world coupling (default
	// FleetCouplingNone): none | platoon.
	Coupling string `json:"coupling,omitempty"`
	// Spacing is the platoon's initial inter-vehicle gap in metres
	// (0 = the control law's desired gap at the initial speed;
	// platoon only).
	Spacing float64 `json:"spacing,omitempty"`
	// BrakeThreshold is the predecessor deceleration magnitude (m/s^2)
	// beyond which its braking enters the follower's scene as extra
	// obstacles (0 = default 2.5; platoon only).
	BrakeThreshold float64 `json:"brake_threshold,omitempty"`
	// BrakeObstacles is the obstacle-count bump a hard-braking
	// predecessor adds to its follower's scene (0 = default 12;
	// platoon only).
	BrakeObstacles int `json:"brake_obstacles,omitempty"`
	// VehicleSeeds pins each vehicle's seed explicitly; the length must
	// equal N. Empty derives per-vehicle seeds from the run seed with a
	// splitmix64 partition (internal/fleet.VehicleSeed).
	VehicleSeeds []int64 `json:"vehicle_seeds,omitempty"`
}

// SpecTunables is the declarative form of core.Tunables (minus the γ cap,
// which predates it as the spec's top-level gamma_cap field). Zero fields
// take the paper defaults, so the block only needs the knobs being moved.
type SpecTunables struct {
	// MFCWindowMS is the Performance Directed Controller's derivative-
	// estimation window in milliseconds (0 = default 500; must cover the
	// 100 ms MFC sampling period).
	MFCWindowMS float64 `json:"mfc_window_ms,omitempty"`
	// RateKp0 is the Task Rate Adapter's initial gain (0 = default 0.8).
	RateKp0 float64 `json:"rate_kp0,omitempty"`
	// RateDecay is the adapter's stable-period gain decay in (0,1)
	// (0 = default 0.9).
	RateDecay float64 `json:"rate_decay,omitempty"`
	// RMinScale and RMaxScale multiply every adjustable source task's
	// allowable rate band (0 = default 1).
	RMinScale float64 `json:"r_min_scale,omitempty"`
	RMaxScale float64 `json:"r_max_scale,omitempty"`
}

// Core maps the spec block onto the coordinator tunable set; zero fields
// pass through and resolve to the paper defaults at run time.
func (t SpecTunables) Core() core.Tunables {
	return core.Tunables{
		MFCWindow: simtime.Duration(t.MFCWindowMS * float64(simtime.Millisecond)),
		RateKp0:   t.RateKp0,
		RateDecay: t.RateDecay,
		RMinScale: t.RMinScale,
		RMaxScale: t.RMaxScale,
	}
}

// SpecLoad is one execution-time multiplier window.
type SpecLoad struct {
	// Task names the target task in the scenario's graph.
	Task string `json:"task"`
	// From and To bound the window in seconds, [From, To).
	From float64 `json:"from"`
	To   float64 `json:"to"`
	// Factor multiplies the task's execution-time samples.
	Factor float64 `json:"factor"`
}

// ObstaclePhase sets the detected-obstacle count from time T onward.
type ObstaclePhase struct {
	T float64 `json:"t"`
	N int     `json:"n"`
}

// ScenarioNames lists the spec-runnable scenarios in stable order.
func ScenarioNames() []string {
	return []string{"aeb", "carfollow", "combined", "hardware", "jam", "lanekeep", "motivation"}
}

// specCaps records what each scenario family supports beyond the common
// knobs. Scenarios outside the car-following family have no gap to track
// and keep their control tasks' latency deadline; motivation is a fixed
// demonstration whose graph has no adjustable load/rate surface.
type specCaps struct {
	graph     string
	carFollow bool // DisableE2E / TrackGapError
	loads     bool // Loads / RateOverrides / GammaCap
	obstacles bool
}

var specScenarios = map[string]specCaps{
	"carfollow":  {graph: GraphAD23, carFollow: true, loads: true, obstacles: true},
	"hardware":   {graph: GraphAD23, carFollow: true, loads: true, obstacles: true},
	"jam":        {graph: GraphAD23, carFollow: true, loads: true, obstacles: true},
	"aeb":        {graph: GraphAD23, carFollow: true, loads: true, obstacles: true},
	"lanekeep":   {graph: GraphAD23, loads: true, obstacles: true},
	"combined":   {graph: GraphDualControl, loads: true, obstacles: true},
	"motivation": {graph: GraphMotivation},
}

// DecodeSpec reads one JSON spec with strict field checking and returns it
// normalized.
func DecodeSpec(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("scenario: invalid spec: %w", err)
	}
	return s.Normalize()
}

// Normalize validates the spec and fills defaults so every equivalent spec
// maps to one canonical form: the scheme and seed defaults are explicit
// and the graph name is resolved. Normalize is idempotent — normalizing a
// normalized spec returns it unchanged — which makes the encoded form a
// stable cache key.
func (s Spec) Normalize() (Spec, error) {
	caps, ok := specScenarios[s.Scenario]
	if !ok {
		return s, fmt.Errorf("scenario: unknown scenario %q (have %s)",
			s.Scenario, strings.Join(ScenarioNames(), ", "))
	}
	if s.Graph == "" {
		s.Graph = caps.graph
	}
	if _, err := BuildGraph(s.Graph); err != nil {
		return s, err
	}
	if s.Graph != caps.graph {
		return s, fmt.Errorf("scenario: scenario %q runs graph %q, not %q", s.Scenario, caps.graph, s.Graph)
	}
	if s.Scheme == "" {
		s.Scheme = "hcperf"
	}
	if _, err := ParseScheme(s.Scheme); err != nil {
		return s, err
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"duration", s.Duration},
		{"vehicle_step", s.VehicleStep},
		{"sample_rate", s.SampleRate},
		{"gamma_cap", s.GammaCap},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
			return s, fmt.Errorf("scenario: %s must be a finite value >= 0, got %v", f.name, f.v)
		}
	}
	if math.IsNaN(s.MaxDataAgeMS) || math.IsInf(s.MaxDataAgeMS, 0) {
		return s, fmt.Errorf("scenario: max_data_age_ms must be finite, got %v", s.MaxDataAgeMS)
	}
	if s.NumProcs < 0 {
		return s, fmt.Errorf("scenario: num_procs must be >= 0, got %d", s.NumProcs)
	}
	if !caps.carFollow && s.DisableE2E {
		return s, fmt.Errorf("scenario: disable_e2e is only supported by the car-following scenarios")
	}
	if !caps.carFollow && s.TrackGapError {
		return s, fmt.Errorf("scenario: track_gap_error is only supported by the car-following scenarios")
	}
	if !caps.loads && (len(s.Loads) > 0 || len(s.RateOverrides) > 0 || s.GammaCap > 0) {
		return s, fmt.Errorf("scenario: %s does not support loads, rate_overrides or gamma_cap", s.Scenario)
	}
	if !caps.obstacles && len(s.Obstacles) > 0 {
		return s, fmt.Errorf("scenario: %s does not support an obstacles profile", s.Scenario)
	}
	if s.Tunables != nil {
		if !caps.carFollow {
			return s, fmt.Errorf("scenario: tunables are only supported by the car-following scenarios")
		}
		tb := *s.Tunables
		for _, f := range []struct {
			name string
			v    float64
		}{
			{"tunables.mfc_window_ms", tb.MFCWindowMS},
			{"tunables.rate_kp0", tb.RateKp0},
			{"tunables.rate_decay", tb.RateDecay},
			{"tunables.r_min_scale", tb.RMinScale},
			{"tunables.r_max_scale", tb.RMaxScale},
		} {
			if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
				return s, fmt.Errorf("scenario: %s must be a finite value >= 0, got %v", f.name, f.v)
			}
		}
		if tb.MFCWindowMS != 0 && tb.MFCWindowMS < 100 {
			return s, fmt.Errorf("scenario: tunables.mfc_window_ms %v must cover the 100 ms MFC sampling period", tb.MFCWindowMS)
		}
		if tb.RateDecay != 0 && tb.RateDecay >= 1 {
			return s, fmt.Errorf("scenario: tunables.rate_decay %v outside (0,1)", tb.RateDecay)
		}
		// A block with every field zero is the default set: canonicalize
		// it away so equivalent specs share one cache key.
		if tb == (SpecTunables{}) {
			s.Tunables = nil
		} else {
			s.Tunables = &tb
		}
	}
	// Dry-run the load steps, rate overrides and tunable rate-band scales
	// against a scratch copy of the graph: task names, window shapes and
	// rate ranges fail here with the same structured errors the runtime
	// path would produce.
	if len(s.Loads) > 0 || len(s.RateOverrides) > 0 || s.Tunables != nil {
		scratch, err := BuildGraph(s.Graph)
		if err != nil {
			return s, err
		}
		for _, l := range s.Loads {
			if err := applyLoadSteps(scratch, l.Task, l.steps()); err != nil {
				return s, err
			}
		}
		if len(s.RateOverrides) > 0 {
			if err := applyRateOverrides(scratch, s.RateOverrides); err != nil {
				return s, err
			}
		}
		if s.Tunables != nil {
			tun, err := s.Tunables.Core().Resolved()
			if err != nil {
				return s, err
			}
			if err := tun.ApplyRateBounds(scratch); err != nil {
				return s, err
			}
		}
	}
	for i, p := range s.Obstacles {
		if math.IsNaN(p.T) || math.IsInf(p.T, 0) {
			return s, fmt.Errorf("scenario: obstacles[%d].t must be finite", i)
		}
		if i == 0 && p.T != 0 {
			return s, fmt.Errorf("scenario: obstacles[0].t must be 0 (the profile covers the whole run), got %v", p.T)
		}
		if i > 0 && p.T <= s.Obstacles[i-1].T {
			return s, fmt.Errorf("scenario: obstacles[%d].t = %v does not increase on %v", i, p.T, s.Obstacles[i-1].T)
		}
		if p.N < 0 {
			return s, fmt.Errorf("scenario: obstacles[%d].n must be >= 0, got %d", i, p.N)
		}
	}
	if s.Fleet != nil {
		// Copy before filling defaults so Normalize never mutates the
		// caller's spec through the shared pointer.
		f := *s.Fleet
		if !caps.carFollow {
			return s, fmt.Errorf("scenario: %s does not support a fleet block (car-following family only)", s.Scenario)
		}
		if f.N < 1 {
			return s, fmt.Errorf("scenario: fleet.n must be >= 1, got %d", f.N)
		}
		if f.Coupling == "" {
			f.Coupling = FleetCouplingNone
		}
		switch f.Coupling {
		case FleetCouplingNone, FleetCouplingPlatoon:
		default:
			return s, fmt.Errorf("scenario: unknown fleet coupling %q (have %s)",
				f.Coupling, strings.Join(FleetCouplings(), ", "))
		}
		for _, v := range []struct {
			name string
			v    float64
		}{
			{"fleet.spacing", f.Spacing},
			{"fleet.brake_threshold", f.BrakeThreshold},
		} {
			if math.IsNaN(v.v) || math.IsInf(v.v, 0) || v.v < 0 {
				return s, fmt.Errorf("scenario: %s must be a finite value >= 0, got %v", v.name, v.v)
			}
		}
		if f.BrakeObstacles < 0 {
			return s, fmt.Errorf("scenario: fleet.brake_obstacles must be >= 0, got %d", f.BrakeObstacles)
		}
		if f.Coupling == FleetCouplingNone && (f.Spacing != 0 || f.BrakeThreshold != 0 || f.BrakeObstacles != 0) {
			return s, fmt.Errorf("scenario: fleet spacing/brake parameters require %q coupling", FleetCouplingPlatoon)
		}
		if len(f.VehicleSeeds) > 0 && len(f.VehicleSeeds) != f.N {
			return s, fmt.Errorf("scenario: fleet.vehicle_seeds has %d entries for %d vehicles", len(f.VehicleSeeds), f.N)
		}
		s.Fleet = &f
	}
	return s, nil
}

func (l SpecLoad) steps() []exectime.Step {
	return []exectime.Step{{From: simtime.Time(l.From), To: simtime.Time(l.To), Factor: l.Factor}}
}

// taskLoads converts the spec's load windows to harness form.
func (s Spec) taskLoads() []TaskLoad {
	if len(s.Loads) == 0 {
		return nil
	}
	out := make([]TaskLoad, 0, len(s.Loads))
	for _, l := range s.Loads {
		out = append(out, TaskLoad{Task: l.Task, Steps: l.steps()})
	}
	return out
}

// obstaclesFunc converts the piecewise profile, or returns nil to keep the
// scenario default.
func (s Spec) obstaclesFunc() func(float64) int {
	if len(s.Obstacles) == 0 {
		return nil
	}
	phases := s.Obstacles
	return func(t float64) int {
		n := phases[0].N
		for _, p := range phases[1:] {
			if t < p.T {
				break
			}
			n = p.N
		}
		return n
	}
}

// maxDataAge maps the millisecond sentinel to the config sentinel.
func (s Spec) maxDataAge() simtime.Duration {
	switch {
	case s.MaxDataAgeMS > 0:
		return simtime.Duration(s.MaxDataAgeMS) * simtime.Millisecond
	case s.MaxDataAgeMS < 0:
		return -1
	default:
		return 0
	}
}

// SpecResult is one completed spec run: the normalized spec that ran, a
// human-readable title, the scenario's key metrics as label/value rows
// (the same rows the serving layer reports) and every recorded series.
type SpecResult struct {
	Spec  Spec
	Title string
	Rows  [][]string
	Rec   *trace.Recorder
}

// CarFollowingConfigFromSpec maps a car-following-family spec (carfollow,
// hardware, jam, aeb) onto its scenario config. The spec is normalized
// first; any fleet block is ignored — the fleet layer calls this to build
// the per-vehicle template and then stamps per-vehicle seeds, coupling and
// spacing on top.
func CarFollowingConfigFromSpec(spec Spec) (CarFollowingConfig, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return CarFollowingConfig{}, err
	}
	scheme, err := ParseScheme(spec.Scheme)
	if err != nil {
		return CarFollowingConfig{}, err
	}
	cfg := CarFollowingConfig{Scheme: scheme, Seed: spec.Seed}
	switch spec.Scenario {
	case "carfollow":
	case "hardware":
		if cfg, err = HardwareCarFollowingConfig(scheme, spec.Seed); err != nil {
			return CarFollowingConfig{}, err
		}
	case "jam":
		if cfg, err = JamCarFollowingConfig(scheme, spec.Seed); err != nil {
			return CarFollowingConfig{}, err
		}
	case "aeb":
		if cfg, err = AEBCarFollowingConfig(scheme, spec.Seed); err != nil {
			return CarFollowingConfig{}, err
		}
	default:
		return CarFollowingConfig{}, fmt.Errorf("scenario: %s is not a car-following scenario", spec.Scenario)
	}
	if spec.Duration > 0 {
		cfg.Duration = spec.Duration
	}
	if spec.NumProcs > 0 {
		cfg.NumProcs = spec.NumProcs
	}
	if spec.VehicleStep > 0 {
		cfg.VehicleStep = spec.VehicleStep
	}
	cfg.SampleRate = spec.SampleRate
	cfg.MaxDataAge = spec.maxDataAge()
	cfg.GammaCap = spec.GammaCap
	if spec.DisableE2E {
		cfg.DisableE2E = true
	}
	if spec.TrackGapError {
		cfg.TrackGapError = true
	}
	cfg.Loads = append(cfg.Loads, spec.taskLoads()...)
	if spec.RateOverrides != nil {
		cfg.RateOverrides = spec.RateOverrides
	}
	if obs := spec.obstaclesFunc(); obs != nil {
		cfg.Obstacles = obs
	}
	if spec.Tunables != nil {
		cfg.Tunables = spec.Tunables.Core()
	}
	return cfg, nil
}

// RunSpec normalizes and executes one spec. All scenario families funnel
// through here: the spec configures the shared kernel, the scenario picks
// the plant, and the result carries a uniform rows+series shape. Fleet
// specs are the one exception — they are executed by internal/fleet (which
// builds on this package), so RunSpec rejects them with a pointer to the
// fleet runner.
func RunSpec(spec Spec, tracer lifecycle.Tracer) (*SpecResult, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	if spec.Fleet != nil {
		return nil, fmt.Errorf("scenario: fleet specs are executed by the fleet runner (internal/fleet.RunSpec)")
	}
	scheme, err := ParseScheme(spec.Scheme)
	if err != nil {
		return nil, err
	}
	res := &SpecResult{
		Spec:  spec,
		Title: fmt.Sprintf("%s under %v (seed %d)", spec.Scenario, scheme, spec.Seed),
	}
	switch spec.Scenario {
	case "carfollow", "hardware", "jam", "aeb":
		cfg, err := CarFollowingConfigFromSpec(spec)
		if err != nil {
			return nil, err
		}
		cfg.Tracer = tracer
		r, err := RunCarFollowing(cfg)
		if err != nil {
			return nil, err
		}
		res.Rec = r.Rec
		res.Rows = [][]string{
			{"speed RMS (m/s)", fmt.Sprintf("%.4f", r.SpeedErrRMS)},
			{"distance RMS (m)", fmt.Sprintf("%.4f", r.DistErrRMS)},
			{"miss ratio", fmt.Sprintf("%.4f", r.Miss.MeanRatio())},
			{"commands/s", fmt.Sprintf("%.1f", r.Throughput)},
			{"mean response (ms)", fmt.Sprintf("%.1f", r.MeanResponse*1000)},
			{"collision", fmt.Sprintf("%t", r.Collision)},
		}
	case "lanekeep":
		cfg := LaneKeepingConfig{Scheme: scheme, Seed: spec.Seed}
		if spec.Duration > 0 {
			cfg.Duration = spec.Duration
		}
		if spec.NumProcs > 0 {
			cfg.NumProcs = spec.NumProcs
		}
		if spec.VehicleStep > 0 {
			cfg.VehicleStep = spec.VehicleStep
		}
		cfg.SampleRate = spec.SampleRate
		cfg.MaxDataAge = spec.maxDataAge()
		cfg.GammaCap = spec.GammaCap
		cfg.Loads = spec.taskLoads()
		if spec.RateOverrides != nil {
			cfg.RateOverrides = spec.RateOverrides
		}
		if obs := spec.obstaclesFunc(); obs != nil {
			cfg.Obstacles = obs
		}
		cfg.Tracer = tracer
		r, err := RunLaneKeeping(cfg)
		if err != nil {
			return nil, err
		}
		res.Rec = r.Rec
		res.Rows = [][]string{
			{"offset RMS (m)", fmt.Sprintf("%.4f", r.OffsetRMS)},
			{"offset max (m)", fmt.Sprintf("%.4f", r.OffsetMax)},
			{"miss ratio", fmt.Sprintf("%.4f", r.Miss.MeanRatio())},
			{"commands/s", fmt.Sprintf("%.1f", r.Throughput)},
		}
	case "combined":
		cfg := CombinedConfig{Scheme: scheme, Seed: spec.Seed}
		if spec.Duration > 0 {
			cfg.Duration = spec.Duration
		}
		if spec.NumProcs > 0 {
			cfg.NumProcs = spec.NumProcs
		}
		if spec.VehicleStep > 0 {
			cfg.VehicleStep = spec.VehicleStep
		}
		cfg.SampleRate = spec.SampleRate
		cfg.MaxDataAge = spec.maxDataAge()
		cfg.GammaCap = spec.GammaCap
		cfg.Loads = spec.taskLoads()
		if spec.RateOverrides != nil {
			cfg.RateOverrides = spec.RateOverrides
		}
		if obs := spec.obstaclesFunc(); obs != nil {
			cfg.Obstacles = obs
		}
		cfg.Tracer = tracer
		r, err := RunCombined(cfg)
		if err != nil {
			return nil, err
		}
		res.Rec = r.Rec
		res.Rows = [][]string{
			{"speed RMS (m/s)", fmt.Sprintf("%.4f", r.SpeedErrRMS)},
			{"offset RMS (m)", fmt.Sprintf("%.4f", r.OffsetRMS)},
			{"lon commands", fmt.Sprintf("%d", r.LonCommands)},
			{"lat commands", fmt.Sprintf("%d", r.LatCommands)},
			{"miss ratio", fmt.Sprintf("%.4f", r.Miss.MeanRatio())},
		}
	case "motivation":
		cfg := MotivationConfig{Scheme: scheme, Seed: spec.Seed}
		if spec.Duration > 0 {
			cfg.Duration = spec.Duration
		}
		if spec.NumProcs > 0 {
			cfg.NumProcs = spec.NumProcs
		}
		if spec.VehicleStep > 0 {
			cfg.VehicleStep = spec.VehicleStep
		}
		cfg.SampleRate = spec.SampleRate
		cfg.MaxDataAge = spec.maxDataAge()
		cfg.Tracer = tracer
		r, err := RunMotivation(cfg)
		if err != nil {
			return nil, err
		}
		res.Rec = r.Rec
		res.Rows = [][]string{
			{"collision", fmt.Sprintf("%t", r.Collision)},
			{"collision time (s)", fmt.Sprintf("%.1f", r.CollisionAt)},
			{"min gap (m)", fmt.Sprintf("%.2f", r.MinGap)},
			{"miss ratio", fmt.Sprintf("%.4f", r.Miss.MeanRatio())},
		}
	default:
		return nil, fmt.Errorf("scenario: unknown scenario %q", spec.Scenario)
	}
	return res, nil
}
