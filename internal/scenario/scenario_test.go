package scenario

import (
	"testing"

	"hcperf/internal/vehicle"
)

func TestSchemeStrings(t *testing.T) {
	tests := []struct {
		scheme Scheme
		want   string
	}{
		{scheme: SchemeHPF, want: "HPF"},
		{scheme: SchemeEDF, want: "EDF"},
		{scheme: SchemeEDFVD, want: "EDF-VD"},
		{scheme: SchemeApollo, want: "Apollo"},
		{scheme: SchemeHCPerf, want: "HCPerf"},
		{scheme: SchemeHCPerfInternal, want: "HCPerf-Internal"},
		{scheme: Scheme(99), want: "scheme(99)"},
	}
	for _, tt := range tests {
		if got := tt.scheme.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.scheme), got, tt.want)
		}
	}
	if len(BaselineSchemes()) != 4 {
		t.Error("want 4 baselines")
	}
	if got := AllSchemes(); len(got) != 5 || got[4] != SchemeHCPerf {
		t.Errorf("AllSchemes = %v", got)
	}
	if !SchemeHCPerf.IsHCPerf() || !SchemeHCPerfInternal.IsHCPerf() || SchemeEDF.IsHCPerf() {
		t.Error("IsHCPerf misclassifies")
	}
}

func TestBuildSchedulerUnknown(t *testing.T) {
	if _, _, err := buildScheduler(Scheme(42)); err == nil {
		t.Error("unknown scheme accepted")
	}
	for _, s := range AllSchemes() {
		sc, dyn, err := buildScheduler(s)
		if err != nil || sc == nil {
			t.Errorf("buildScheduler(%v) = %v, %v", s, sc, err)
		}
		if s.IsHCPerf() != (dyn != nil) {
			t.Errorf("scheme %v dynamic mismatch", s)
		}
	}
}

func TestCarFollowingValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  CarFollowingConfig
	}{
		{name: "no scheme", cfg: CarFollowingConfig{}},
		{name: "negative duration", cfg: CarFollowingConfig{Scheme: SchemeEDF, Duration: -1}},
		{name: "negative procs", cfg: CarFollowingConfig{Scheme: SchemeEDF, NumProcs: -1}},
		{name: "negative step", cfg: CarFollowingConfig{Scheme: SchemeEDF, VehicleStep: -0.1}},
		{name: "unknown rate override", cfg: CarFollowingConfig{Scheme: SchemeEDF, RateOverrides: map[string]float64{"nope": 10}}},
		{name: "rate outside range", cfg: CarFollowingConfig{Scheme: SchemeEDF, RateOverrides: map[string]float64{"camera_front": 500}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := RunCarFollowing(tt.cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

// TestCarFollowingShape locks in the Fig. 13 / Table II reproduction on the
// canonical seed: HCPerf tracks best, recovers its deadline-miss ratio, and
// Apollo sustains the worst miss ratio.
func TestCarFollowingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario sweep")
	}
	results := make(map[Scheme]*CarFollowingResult, 5)
	for _, s := range AllSchemes() {
		r, err := RunCarFollowing(CarFollowingConfig{Scheme: s, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		results[s] = r
		if r.Collision {
			t.Errorf("%v: unexpected collision at %v", s, r.CollisionAt)
		}
	}
	hc := results[SchemeHCPerf]
	for _, s := range BaselineSchemes() {
		if hc.SpeedErrRMS >= results[s].SpeedErrRMS {
			t.Errorf("HCPerf speed RMS %.3f not better than %v's %.3f",
				hc.SpeedErrRMS, s, results[s].SpeedErrRMS)
		}
	}
	if hc.Miss.MeanRatio() > 0.01 {
		t.Errorf("HCPerf overall miss ratio %.3f, want <= 0.01", hc.Miss.MeanRatio())
	}
	if ap := results[SchemeApollo].Miss.MeanRatio(); ap < 0.03 {
		t.Errorf("Apollo miss ratio %.3f, want sustained misses (>= 0.03)", ap)
	}
	// HCPerf's miss ratio recovers after the load step (Fig. 13(d)).
	for i := 85; i < 90; i++ {
		if r := hc.Miss.Ratio(i); r > 0.02 {
			t.Errorf("HCPerf miss ratio %.3f at t=%d, want recovered (~0)", r, i)
		}
	}
}

// TestCarFollowingAblation locks in the Fig. 18 ablation: the full
// framework beats internal-only, which still beats EDF.
func TestCarFollowingAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario sweep")
	}
	full, err := RunCarFollowing(CarFollowingConfig{Scheme: SchemeHCPerf, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	internal, err := RunCarFollowing(CarFollowingConfig{Scheme: SchemeHCPerfInternal, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	edf, err := RunCarFollowing(CarFollowingConfig{Scheme: SchemeEDF, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if full.SpeedErrRMS >= internal.SpeedErrRMS {
		t.Errorf("full %.3f not better than internal-only %.3f", full.SpeedErrRMS, internal.SpeedErrRMS)
	}
	if internal.SpeedErrRMS >= edf.SpeedErrRMS {
		t.Errorf("internal-only %.3f not better than EDF %.3f", internal.SpeedErrRMS, edf.SpeedErrRMS)
	}
}

func TestCarFollowingDeterminism(t *testing.T) {
	run := func() *CarFollowingResult {
		r, err := RunCarFollowing(CarFollowingConfig{Scheme: SchemeHCPerf, Seed: 3, Duration: 20})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.SpeedErrRMS != b.SpeedErrRMS || a.DistErrRMS != b.DistErrRMS ||
		a.EngineStats.ControlCommands != b.EngineStats.ControlCommands {
		t.Errorf("same-seed runs diverged: %+v vs %+v", a.EngineStats, b.EngineStats)
	}
}

func TestCarFollowingSeriesPresent(t *testing.T) {
	r, err := RunCarFollowing(CarFollowingConfig{Scheme: SchemeHCPerf, Seed: 1, Duration: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"lead_speed", "follow_speed", "speed_err", "dist_err", "gap",
		"miss_ratio", "throughput", "response_ms", "discomfort",
		"queue_len", "utilization", "gamma", "u",
	} {
		s := r.Rec.Series(name)
		if s == nil || s.Len() == 0 {
			t.Errorf("series %q missing or empty", name)
		}
	}
	// Baselines do not record coordinator series.
	r2, err := RunCarFollowing(CarFollowingConfig{Scheme: SchemeEDF, Seed: 1, Duration: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Rec.Series("gamma") != nil {
		t.Error("EDF run recorded a gamma series")
	}
}

func TestLaneKeepingValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  LaneKeepingConfig
	}{
		{name: "no scheme", cfg: LaneKeepingConfig{}},
		{name: "negative speed", cfg: LaneKeepingConfig{Scheme: SchemeEDF, Speed: -1}},
		{name: "negative duration", cfg: LaneKeepingConfig{Scheme: SchemeEDF, Duration: -5}},
		{name: "negative procs", cfg: LaneKeepingConfig{Scheme: SchemeEDF, NumProcs: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := RunLaneKeeping(tt.cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

// TestLaneKeepingShape locks in the Fig. 14 / Table IV reproduction on the
// canonical seed: HCPerf keeps the lane best and Apollo worst, with the
// offset error appearing at the turns.
func TestLaneKeepingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario sweep")
	}
	results := make(map[Scheme]*LaneKeepingResult, 5)
	for _, s := range AllSchemes() {
		r, err := RunLaneKeeping(LaneKeepingConfig{Scheme: s, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		results[s] = r
	}
	hc := results[SchemeHCPerf]
	for _, s := range BaselineSchemes() {
		if hc.OffsetRMS >= results[s].OffsetRMS {
			t.Errorf("HCPerf offset RMS %.4f not better than %v's %.4f",
				hc.OffsetRMS, s, results[s].OffsetRMS)
		}
	}
	if ap := results[SchemeApollo]; ap.OffsetRMS <= results[SchemeEDF].OffsetRMS {
		t.Errorf("Apollo %.4f not worse than EDF %.4f", ap.OffsetRMS, results[SchemeEDF].OffsetRMS)
	}
	// Straights are error-free: the first 15 s precede the first turn.
	if rms := hc.Rec.Series("offset").RMS(2, 15); rms > 0.002 {
		t.Errorf("offset RMS %.4f on the opening straight, want ~0", rms)
	}
}

func TestMotivationValidation(t *testing.T) {
	if _, err := RunMotivation(MotivationConfig{}); err == nil {
		t.Error("no scheme accepted")
	}
	if _, err := RunMotivation(MotivationConfig{Scheme: SchemeApollo, BrakeDecel: -1}); err == nil {
		t.Error("negative decel accepted")
	}
	if _, err := RunMotivation(MotivationConfig{Scheme: SchemeApollo, MaxObstacles: -2}); err == nil {
		t.Error("negative obstacles accepted")
	}
}

// TestMotivationCrash locks in the Fig. 4 reproduction: under Apollo's
// static-priority scheduling the red-light scenario ends in a collision,
// with the deadline-miss ratio ramping up after the braking starts.
func TestMotivationCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario sweep")
	}
	r, err := RunMotivation(MotivationConfig{Scheme: SchemeApollo, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Collision {
		t.Fatal("no collision in the motivation scenario")
	}
	if r.CollisionAt < 10 || r.CollisionAt > 28 {
		t.Errorf("collision at %.1f s, want mid-scenario (paper: 23.4 s)", r.CollisionAt)
	}
	// Misses negligible before the brake, heavy afterwards (Fig. 4(a)).
	early := 0.0
	for i := 0; i < 4; i++ {
		early += r.Miss.Ratio(i) / 4
	}
	late := 0.0
	for i := 12; i < 20; i++ {
		late += r.Miss.Ratio(i) / 8
	}
	if early > 0.02 {
		t.Errorf("early miss ratio %.3f, want ~0", early)
	}
	if late < 0.1 {
		t.Errorf("late miss ratio %.3f, want heavy (>= 0.1)", late)
	}
}

// TestHardwareShape locks in the Table V/VI reproduction: on the noisy
// scaled-car testbed HCPerf has the lowest speed error and the baselines
// sustain misses.
func TestHardwareShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario sweep")
	}
	results := make(map[Scheme]*CarFollowingResult, 5)
	for _, s := range AllSchemes() {
		cfg, err := HardwareCarFollowingConfig(s, 1)
		if err != nil {
			t.Fatal(err)
		}
		r, err := RunCarFollowing(cfg)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		results[s] = r
	}
	hc := results[SchemeHCPerf]
	for _, s := range BaselineSchemes() {
		if hc.SpeedErrRMS >= results[s].SpeedErrRMS {
			t.Errorf("HCPerf hardware speed RMS %.4f not better than %v's %.4f",
				hc.SpeedErrRMS, s, results[s].SpeedErrRMS)
		}
	}
	if results[SchemeApollo].Miss.MeanRatio() < 0.02 {
		t.Error("Apollo should sustain misses on the hardware testbed")
	}
}

// TestJamResponsiveness locks in the Fig. 16/17 shape: the gap error spikes
// when the jam hits and HCPerf mitigates it while keeping post-jam
// discomfort lower than EDF's.
func TestJamResponsiveness(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario sweep")
	}
	run := func(s Scheme) *CarFollowingResult {
		cfg, err := JamCarFollowingConfig(s, 1)
		if err != nil {
			t.Fatal(err)
		}
		r, err := RunCarFollowing(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	hc := run(SchemeHCPerf)
	edf := run(SchemeEDF)
	gap := hc.Rec.Series("dist_err")
	if pre := gap.RMS(0, 9); pre > 0.5 {
		t.Errorf("pre-jam gap error %.2f, want ~0", pre)
	}
	if jam := gap.RMS(10, 20); jam < 1 {
		t.Errorf("jam gap error %.2f, want a pronounced spike", jam)
	}
	// Post-jam comfort: HCPerf restores throughput and smoothness.
	hcD := hc.Rec.Series("discomfort").Mean(28, 35)
	edfD := edf.Rec.Series("discomfort").Mean(28, 35)
	if hcD >= edfD {
		t.Errorf("HCPerf post-jam discomfort %.2f not lower than EDF's %.2f", hcD, edfD)
	}
}

func TestPresetsIndependentOfSchemes(t *testing.T) {
	a, err := HardwareCarFollowingConfig(SchemeEDF, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Scheme != SchemeEDF || a.Seed != 9 || a.Duration != 20 {
		t.Errorf("hardware preset fields wrong: %+v", a)
	}
	if a.Longitudinal != vehicle.ScaledCarLongitudinal() {
		t.Error("hardware preset should use the scaled-car plant")
	}
	j, err := JamCarFollowingConfig(SchemeHCPerf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !j.TrackGapError {
		t.Error("jam preset must track the gap error")
	}
	if j.Obstacles(15) <= j.Obstacles(5) {
		t.Error("jam preset obstacles must grow during the jam")
	}
}

func TestCombinedValidation(t *testing.T) {
	if _, err := RunCombined(CombinedConfig{}); err == nil {
		t.Error("no scheme accepted")
	}
	if _, err := RunCombined(CombinedConfig{Scheme: SchemeEDF, Duration: -1}); err == nil {
		t.Error("negative duration accepted")
	}
}

// TestCombinedDualControl locks in the dual-sink extension: both control
// sinks emit commands at the pipeline cadence, HCPerf keeps the lane best,
// and Apollo pays for its static binding.
func TestCombinedDualControl(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario sweep")
	}
	results := make(map[Scheme]*CombinedResult, 3)
	for _, s := range []Scheme{SchemeEDF, SchemeApollo, SchemeHCPerf} {
		r, err := RunCombined(CombinedConfig{Scheme: s, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		results[s] = r
		if r.LonCommands == 0 || r.LatCommands == 0 {
			t.Errorf("%v: a control sink is silent (lon=%d lat=%d)", s, r.LonCommands, r.LatCommands)
		}
	}
	hc := results[SchemeHCPerf]
	if hc.OffsetRMS >= results[SchemeApollo].OffsetRMS {
		t.Errorf("HCPerf offset %.4f not better than Apollo's %.4f",
			hc.OffsetRMS, results[SchemeApollo].OffsetRMS)
	}
	if hc.Miss.MeanRatio() > 0.02 {
		t.Errorf("HCPerf miss ratio %.3f, want <= 0.02", hc.Miss.MeanRatio())
	}
	if results[SchemeApollo].Miss.MeanRatio() < 0.02 {
		t.Error("Apollo should sustain misses in the combined scenario")
	}
}
