package scenario

import (
	"fmt"

	"hcperf/internal/vehicle"
)

// HardwareCarFollowingConfig returns the §VII-B3 hardware-testbed study as
// a scenario preset: two 1:10-scale cars, a 20 s drive with 5 s of
// acceleration, 10 s of cruise and 5 s of deceleration, noisy speed and
// range sensing, and the scaled car's throttle lag. The simulation and
// hardware experiments differ exactly by these vehicle-scale and noise
// parameters, mirroring the paper's setup.
func HardwareCarFollowingConfig(scheme Scheme, seed int64) (CarFollowingConfig, error) {
	lead, err := vehicle.NewPiecewiseProfile([]vehicle.PhasePoint{
		{T: 0, Speed: 0.02}, // creep from standstill so the gap law engages
		{T: 5, Speed: 1.5},
		{T: 15, Speed: 1.5},
		{T: 20, Speed: 0.02},
	})
	if err != nil {
		return CarFollowingConfig{}, fmt.Errorf("scenario: hardware preset: %w", err)
	}
	return CarFollowingConfig{
		Scheme:       scheme,
		Seed:         seed,
		Duration:     20,
		LeadProfile:  lead,
		InitSpeed:    0.02,
		Longitudinal: vehicle.ScaledCarLongitudinal(),
		FollowerGains: vehicle.CarFollower{
			Kv: 5, Kg: 1.5, StandstillGap: 0.4, Headway: 0.6,
		},
		// Scaled-car sensing is noisy (paper: "the speed record of the
		// lead car is affected by the presence of noise").
		SpeedNoiseSD: 0.02,
		GapNoiseSD:   0.01,
		// The hardware run has no complex-scene episode; the scaled
		// indoor track keeps a constant obstacle count.
		Obstacles: func(float64) int { return 18 },
	}, nil
}

// JamCarFollowingConfig returns the §VII-C responsiveness/throughput study
// as a scenario preset (Figs. 16-17): both cars cruise at 20 m/s; at
// t = 10 s the lead decelerates into a traffic jam while the surrounding
// vehicle count grows, inflating task execution times; past t = 20 s the
// jam clears. The coordinator tracks the gap error, and the result's
// response_ms and discomfort series reproduce Fig. 17(b).
func JamCarFollowingConfig(scheme Scheme, seed int64) (CarFollowingConfig, error) {
	lead, err := vehicle.NewPiecewiseProfile([]vehicle.PhasePoint{
		{T: 0, Speed: 20},
		{T: 10, Speed: 20},
		{T: 14, Speed: 6},
		{T: 20, Speed: 6},
		{T: 26, Speed: 20},
	})
	if err != nil {
		return CarFollowingConfig{}, fmt.Errorf("scenario: jam preset: %w", err)
	}
	return CarFollowingConfig{
		Scheme:        scheme,
		Seed:          seed,
		Duration:      35,
		LeadProfile:   lead,
		InitSpeed:     20,
		TrackGapError: true,
		Obstacles: func(t float64) int {
			switch {
			case t < 10:
				return 11
			case t < 20:
				// The jam fills the scene with vehicles.
				return 11 + int((t-10)/10*17)
			case t < 24:
				return 28 - int((t-20)/4*17)
			default:
				return 11
			}
		},
	}, nil
}

// AEBCarFollowingConfig returns an automatic-emergency-braking stress test
// (an extension beyond the paper's scenarios, exercising the intro's
// obstacle-avoidance motivation): both cars cruise at 20 m/s with a
// comfortable gap; at t = 5 s the lead performs a panic stop at 8 m/s²
// while the scene complexity spikes. The follower can only brake at
// 7 m/s² and keeps a short 0.6 s headway, so its stopping margin — the
// minimum gap reached — measures each scheme's sensing-to-actuation
// responsiveness directly: every 100 ms of staleness costs ~2 m of margin.
func AEBCarFollowingConfig(scheme Scheme, seed int64) (CarFollowingConfig, error) {
	lead, err := vehicle.NewPiecewiseProfile([]vehicle.PhasePoint{
		{T: 0, Speed: 20},
		{T: 5, Speed: 20},
		{T: 5 + 20.0/8.0, Speed: 0}, // 8 m/s^2 panic stop
	})
	if err != nil {
		return CarFollowingConfig{}, fmt.Errorf("scenario: aeb preset: %w", err)
	}
	return CarFollowingConfig{
		Scheme:       scheme,
		Seed:         seed,
		Duration:     15,
		LeadProfile:  lead,
		InitSpeed:    20,
		Longitudinal: vehicle.LongitudinalConfig{MaxAccel: 6, MaxBrake: 7, ActuatorTau: 0.1, MaxSpeed: 40},
		FollowerGains: vehicle.CarFollower{
			Kv: 5, Kg: 1, StandstillGap: 5, Headway: 0.6,
		},
		Obstacles: func(t float64) int {
			if t >= 5 {
				return 24 // the braking event floods the scene
			}
			return 11
		},
	}, nil
}
