package scenario

import (
	"errors"
	"fmt"
	"math"

	"hcperf/internal/engine"
	"hcperf/internal/lifecycle"
	"hcperf/internal/metrics"
	"hcperf/internal/simtime"
	"hcperf/internal/trace"
	"hcperf/internal/vehicle"
)

// CombinedConfig parameterises the dual-control extension scenario: the
// vehicle simultaneously follows a lead car (longitudinal control) and
// keeps its lane on a winding road (lateral control), running the 24-task
// dual-sink graph. This goes beyond the paper's single-application
// evaluations and exercises multi-sink coordination: one tracking-error
// signal must arbitrate between two control loops.
type CombinedConfig struct {
	// Scheme selects the scheduling scheme.
	Scheme Scheme
	// Seed drives all scenario randomness.
	Seed int64
	// Duration is the simulated span in seconds (default 60).
	Duration float64
	// NumProcs is the processor count (default 2).
	NumProcs int
	// LeadProfile is the lead's speed profile (default: gentle sine
	// 12 ± 3 m/s over 9 s).
	LeadProfile vehicle.SpeedProfile
	// Curvature maps travelled distance to road curvature (default: a
	// winding road alternating 25 m-radius bends every 120 m).
	Curvature func(s float64) float64
	// Obstacles maps time to obstacle count (default 14).
	Obstacles func(t float64) int
	// RateOverrides sets initial source rates by task name (default:
	// the car-following rates).
	RateOverrides map[string]float64
	// Loads optionally multiply task execution times over time windows
	// (default none).
	Loads []TaskLoad
	// VehicleStep is the dynamics integration step (default 10 ms).
	VehicleStep float64
	// SampleRate is the summary-series sample frequency in Hz
	// (default 1).
	SampleRate float64
	// GammaCap overrides the Dynamic scheduler's γ cap (0 = default).
	GammaCap float64
	// MaxDataAge overrides the input-age validity bound: 0 = default
	// (DefaultMaxDataAge, 220 ms), negative = disabled.
	MaxDataAge simtime.Duration
	// Tracer optionally receives the engine's structured lifecycle
	// event stream (per-job timelines).
	Tracer lifecycle.Tracer
}

func (c *CombinedConfig) applyDefaults() error {
	if c.Scheme == 0 {
		return errors.New("scenario: no scheme selected")
	}
	if c.Duration == 0 {
		c.Duration = 60
	}
	if c.Duration <= 0 {
		return fmt.Errorf("scenario: non-positive duration %v", c.Duration)
	}
	if c.NumProcs == 0 {
		c.NumProcs = 2
	}
	if c.NumProcs < 1 {
		return fmt.Errorf("scenario: NumProcs %d < 1", c.NumProcs)
	}
	if c.LeadProfile == nil {
		c.LeadProfile = vehicle.SineProfile{Mean: 12, Amp: 3, Period: 9}
	}
	if c.Curvature == nil {
		c.Curvature = func(s float64) float64 {
			// Alternating gentle bends: 40 m straight, 80 m bend.
			seg := math.Mod(s, 240)
			switch {
			case seg < 40:
				return 0
			case seg < 120:
				return 1.0 / 25
			case seg < 160:
				return 0
			default:
				return -1.0 / 25
			}
		}
	}
	if c.Obstacles == nil {
		c.Obstacles = func(float64) int { return 14 }
	}
	if c.RateOverrides == nil {
		c.RateOverrides = map[string]float64{
			"camera_front": 10, "camera_traffic_light": 8,
			"lidar_scan": 10, "radar_scan": 12,
		}
	}
	if c.VehicleStep == 0 {
		c.VehicleStep = 0.01
	}
	if c.VehicleStep <= 0 {
		return fmt.Errorf("scenario: non-positive vehicle step %v", c.VehicleStep)
	}
	return nil
}

// loop maps the config onto the shared closed-loop kernel.
func (c *CombinedConfig) loop() loopConfig {
	return loopConfig{
		Graph:         GraphDualControl,
		Scheme:        c.Scheme,
		Seed:          c.Seed,
		Duration:      c.Duration,
		NumProcs:      c.NumProcs,
		VehicleStep:   c.VehicleStep,
		SampleRate:    c.SampleRate,
		MaxDataAge:    c.MaxDataAge,
		GammaCap:      c.GammaCap,
		Loads:         c.Loads,
		RateOverrides: c.RateOverrides,
		Obstacles:     c.Obstacles,
		Tracer:        c.Tracer,
	}
}

// CombinedResult aggregates the dual-control outcomes.
type CombinedResult struct {
	// Scheme is the scheme that produced this result.
	Scheme Scheme
	// Rec holds speed_err, offset, gap, miss_ratio series and gamma/u
	// for HCPerf schemes.
	Rec *trace.Recorder
	// SpeedErrRMS is the longitudinal tracking error RMS (m/s).
	SpeedErrRMS float64
	// OffsetRMS is the lateral offset RMS (m).
	OffsetRMS float64
	// LonCommands and LatCommands count the per-sink control outputs.
	LonCommands, LatCommands uint64
	// Miss holds per-second deadline accounting.
	Miss *metrics.MissBuckets
	// EngineStats is the engine's final counter snapshot.
	EngineStats engine.Stats
}

// combinedPlant runs the longitudinal and lateral worlds side by side and
// routes control commands by sink task name.
type combinedPlant struct {
	cfg *CombinedConfig
	rec *trace.Recorder

	gains    vehicle.CarFollower
	follower *vehicle.Longitudinal
	lead     *vehicle.Lead

	keeper vehicle.LaneKeeper
	lat    *vehicle.Lateral

	// Full-resolution histories for stale perception.
	histLeadSpeed, histLeadPos, histFolPos, histFolSpeed trace.Series
	histOffset, histHeading, histDist                    trace.Series

	lonCmds, latCmds uint64
}

func newCombinedPlant(cfg *CombinedConfig, rec *trace.Recorder) (*combinedPlant, error) {
	p := &combinedPlant{
		cfg:   cfg,
		rec:   rec,
		gains: vehicle.CarFollower{Kv: 5, Kg: 1, StandstillGap: 5, Headway: 1.2},
	}
	var err error
	if p.follower, err = vehicle.NewLongitudinal(vehicle.LongitudinalConfig{
		MaxAccel: 6, MaxBrake: 8, ActuatorTau: 0.1, MaxSpeed: 40,
	}); err != nil {
		return nil, err
	}
	p.follower.Speed = cfg.LeadProfile.Speed(0)
	if p.lead, err = vehicle.NewLead(cfg.LeadProfile, p.gains.StandstillGap+p.gains.Headway*p.follower.Speed); err != nil {
		return nil, err
	}
	latCfg := vehicle.LateralConfig{WheelBase: 2.7, MaxSteer: 0.5, ActuatorTau: 0.08}
	if p.lat, err = vehicle.NewLateral(latCfg); err != nil {
		return nil, err
	}
	p.keeper = vehicle.LaneKeeper{Ky: 0.5, Kpsi: 1.4, WheelBase: latCfg.WheelBase}
	if err := p.recordHistory(0); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *combinedPlant) recordHistory(now float64) error {
	for _, pair := range []struct {
		s *trace.Series
		v float64
	}{
		{&p.histLeadSpeed, p.lead.Speed()},
		{&p.histLeadPos, p.lead.Position},
		{&p.histFolPos, p.follower.Position},
		{&p.histFolSpeed, p.follower.Speed},
		{&p.histOffset, p.lat.Y},
		{&p.histHeading, p.lat.Psi},
		{&p.histDist, p.follower.Position},
	} {
		if err := pair.s.Add(now, pair.v); err != nil {
			return err
		}
	}
	return nil
}

func (p *combinedPlant) Perceive(cmd engine.ControlCommand) {
	at := float64(cmd.SourceTime)
	switch cmd.Task.Name {
	case "lon_control":
		p.lonCmds++
		leadSpd, ok := p.histLeadSpeed.At(at)
		if !ok {
			return
		}
		leadPos, _ := p.histLeadPos.At(at)
		folPos, _ := p.histFolPos.At(at)
		folSpd, _ := p.histFolSpeed.At(at)
		p.follower.SetAccelCommand(p.gains.Accel(folSpd, leadSpd, leadPos-folPos))
	case "lat_control":
		p.latCmds++
		offset, ok := p.histOffset.At(at)
		if !ok {
			return
		}
		heading, _ := p.histHeading.At(at)
		s, _ := p.histDist.At(at)
		p.lat.SetSteerCommand(p.keeper.Steer(offset, heading, p.cfg.Curvature(s+0.3*p.follower.Speed)))
	}
}

// TrackingError is the multi-objective signal: the speed error in its
// natural scale plus the lateral offset scaled up so a 0.15 m excursion
// weighs like a 2 m/s speed error.
func (p *combinedPlant) TrackingError(simtime.Time) float64 {
	speedErr := math.Abs(p.lead.Speed() - p.follower.Speed)
	latErr := math.Abs(p.lat.Y) * (2.0 / 0.15)
	return math.Max(speedErr, latErr)
}

func (p *combinedPlant) CoordSample(now simtime.Time, e, u, gamma float64) {
	recAdd(p.rec, "gamma", float64(now), gamma)
	recAdd(p.rec, "u", float64(now), u)
}

func (p *combinedPlant) Step(now float64) {
	step := p.cfg.VehicleStep
	if err := p.lead.Step(step); err != nil {
		panic(fmt.Sprintf("scenario: lead step: %v", err))
	}
	if err := p.follower.Step(step); err != nil {
		panic(fmt.Sprintf("scenario: follower step: %v", err))
	}
	if err := p.lat.Step(step, p.follower.Speed, p.cfg.Curvature(p.follower.Position)); err != nil {
		panic(fmt.Sprintf("scenario: lateral step: %v", err))
	}
	if err := p.recordHistory(now); err != nil {
		panic(fmt.Sprintf("scenario: history: %v", err))
	}
	recAdd(p.rec, "speed_err", now, p.lead.Speed()-p.follower.Speed)
	recAdd(p.rec, "offset", now, p.lat.Y)
	recAdd(p.rec, "gap", now, p.lead.Position-p.follower.Position)
}

func (p *combinedPlant) Sample(t float64, env *Env) {
	recAdd(p.rec, "miss_ratio", t, env.Miss.Ratio(int(t)-1))
}

// RunCombined executes the dual-control scenario.
func RunCombined(cfg CombinedConfig) (*CombinedResult, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	var p *combinedPlant
	out, err := runLoop(cfg.loop(), func(rec *trace.Recorder) (Plant, error) {
		var err error
		p, err = newCombinedPlant(&cfg, rec)
		return p, err
	})
	if err != nil {
		return nil, err
	}

	return &CombinedResult{
		Scheme:      cfg.Scheme,
		Rec:         out.Rec,
		SpeedErrRMS: out.Rec.Series("speed_err").RMS(0, cfg.Duration),
		OffsetRMS:   out.Rec.Series("offset").RMS(0, cfg.Duration),
		LonCommands: p.lonCmds,
		LatCommands: p.latCmds,
		Miss:        out.Miss,
		EngineStats: out.EngineStats,
	}, nil
}
