package scenario

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"hcperf/internal/core"
	"hcperf/internal/dag"
	"hcperf/internal/engine"
	"hcperf/internal/exectime"
	"hcperf/internal/lifecycle"
	"hcperf/internal/metrics"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
	"hcperf/internal/trace"
	"hcperf/internal/vehicle"
)

// CombinedConfig parameterises the dual-control extension scenario: the
// vehicle simultaneously follows a lead car (longitudinal control) and
// keeps its lane on a winding road (lateral control), running the 24-task
// dual-sink graph. This goes beyond the paper's single-application
// evaluations and exercises multi-sink coordination: one tracking-error
// signal must arbitrate between two control loops.
type CombinedConfig struct {
	// Scheme selects the scheduling scheme.
	Scheme Scheme
	// Seed drives all scenario randomness.
	Seed int64
	// Duration is the simulated span in seconds (default 60).
	Duration float64
	// NumProcs is the processor count (default 2).
	NumProcs int
	// LeadProfile is the lead's speed profile (default: gentle sine
	// 12 ± 3 m/s over 9 s).
	LeadProfile vehicle.SpeedProfile
	// Curvature maps travelled distance to road curvature (default: a
	// winding road alternating 25 m-radius bends every 120 m).
	Curvature func(s float64) float64
	// Obstacles maps time to obstacle count (default 14).
	Obstacles func(t float64) int
	// VehicleStep is the dynamics integration step (default 10 ms).
	VehicleStep float64
	// Tracer optionally receives the engine's structured lifecycle
	// event stream (per-job timelines).
	Tracer lifecycle.Tracer
}

func (c *CombinedConfig) applyDefaults() error {
	if c.Scheme == 0 {
		return errors.New("scenario: no scheme selected")
	}
	if c.Duration == 0 {
		c.Duration = 60
	}
	if c.Duration <= 0 {
		return fmt.Errorf("scenario: non-positive duration %v", c.Duration)
	}
	if c.NumProcs == 0 {
		c.NumProcs = 2
	}
	if c.NumProcs < 1 {
		return fmt.Errorf("scenario: NumProcs %d < 1", c.NumProcs)
	}
	if c.LeadProfile == nil {
		c.LeadProfile = vehicle.SineProfile{Mean: 12, Amp: 3, Period: 9}
	}
	if c.Curvature == nil {
		c.Curvature = func(s float64) float64 {
			// Alternating gentle bends: 40 m straight, 80 m bend.
			seg := math.Mod(s, 240)
			switch {
			case seg < 40:
				return 0
			case seg < 120:
				return 1.0 / 25
			case seg < 160:
				return 0
			default:
				return -1.0 / 25
			}
		}
	}
	if c.Obstacles == nil {
		c.Obstacles = func(float64) int { return 14 }
	}
	if c.VehicleStep == 0 {
		c.VehicleStep = 0.01
	}
	if c.VehicleStep <= 0 {
		return fmt.Errorf("scenario: non-positive vehicle step %v", c.VehicleStep)
	}
	return nil
}

// CombinedResult aggregates the dual-control outcomes.
type CombinedResult struct {
	// Scheme is the scheme that produced this result.
	Scheme Scheme
	// Rec holds speed_err, offset, gap, miss_ratio series and gamma/u
	// for HCPerf schemes.
	Rec *trace.Recorder
	// SpeedErrRMS is the longitudinal tracking error RMS (m/s).
	SpeedErrRMS float64
	// OffsetRMS is the lateral offset RMS (m).
	OffsetRMS float64
	// LonCommands and LatCommands count the per-sink control outputs.
	LonCommands, LatCommands uint64
	// Miss holds per-second deadline accounting.
	Miss *metrics.MissBuckets
	// EngineStats is the engine's final counter snapshot.
	EngineStats engine.Stats
}

// RunCombined executes the dual-control scenario.
func RunCombined(cfg CombinedConfig) (*CombinedResult, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	graph, err := dag.ADGraphDualControl()
	if err != nil {
		return nil, err
	}
	if err := applyRateOverrides(graph, map[string]float64{
		"camera_front": 10, "camera_traffic_light": 8,
		"lidar_scan": 10, "radar_scan": 12,
	}); err != nil {
		return nil, err
	}
	scheduler, dyn, err := buildScheduler(cfg.Scheme)
	if err != nil {
		return nil, err
	}

	q := simtime.NewEventQueue()
	rec := trace.NewRecorder()
	_ = rand.New(rand.NewSource(cfg.Seed)) // reserved for future noise hooks

	// Longitudinal world.
	gains := vehicle.CarFollower{Kv: 5, Kg: 1, StandstillGap: 5, Headway: 1.2}
	follower, err := vehicle.NewLongitudinal(vehicle.LongitudinalConfig{
		MaxAccel: 6, MaxBrake: 8, ActuatorTau: 0.1, MaxSpeed: 40,
	})
	if err != nil {
		return nil, err
	}
	follower.Speed = cfg.LeadProfile.Speed(0)
	lead, err := vehicle.NewLead(cfg.LeadProfile, gains.StandstillGap+gains.Headway*follower.Speed)
	if err != nil {
		return nil, err
	}

	// Lateral world.
	latCfg := vehicle.LateralConfig{WheelBase: 2.7, MaxSteer: 0.5, ActuatorTau: 0.08}
	lat, err := vehicle.NewLateral(latCfg)
	if err != nil {
		return nil, err
	}
	keeper := vehicle.LaneKeeper{Ky: 0.5, Kpsi: 1.4, WheelBase: latCfg.WheelBase}

	// Full-resolution histories for stale perception.
	var histLeadSpeed, histLeadPos, histFolPos, histFolSpeed, histOffset, histHeading, histDist trace.Series
	recordHistory := func(now float64) error {
		for _, pair := range []struct {
			s *trace.Series
			v float64
		}{
			{&histLeadSpeed, lead.Speed()},
			{&histLeadPos, lead.Position},
			{&histFolPos, follower.Position},
			{&histFolSpeed, follower.Speed},
			{&histOffset, lat.Y},
			{&histHeading, lat.Psi},
			{&histDist, follower.Position},
		} {
			if err := pair.s.Add(now, pair.v); err != nil {
				return err
			}
		}
		return nil
	}
	if err := recordHistory(0); err != nil {
		return nil, err
	}

	miss, err := metrics.NewMissBuckets(1)
	if err != nil {
		return nil, err
	}

	var lonCmds, latCmds uint64
	perceive := func(cmd engine.ControlCommand) {
		at := float64(cmd.SourceTime)
		switch cmd.Task.Name {
		case "lon_control":
			lonCmds++
			leadSpd, ok := histLeadSpeed.At(at)
			if !ok {
				return
			}
			leadPos, _ := histLeadPos.At(at)
			folPos, _ := histFolPos.At(at)
			folSpd, _ := histFolSpeed.At(at)
			follower.SetAccelCommand(gains.Accel(folSpd, leadSpd, leadPos-folPos))
		case "lat_control":
			latCmds++
			offset, ok := histOffset.At(at)
			if !ok {
				return
			}
			heading, _ := histHeading.At(at)
			s, _ := histDist.At(at)
			lat.SetSteerCommand(keeper.Steer(offset, heading, cfg.Curvature(s+0.3*follower.Speed)))
		}
	}

	eng, err := engine.New(engine.Config{
		Graph:      graph,
		Scheduler:  scheduler,
		NumProcs:   cfg.NumProcs,
		Queue:      q,
		Seed:       cfg.Seed,
		MaxDataAge: 220 * simtime.Millisecond,
		Tracer:     cfg.Tracer,
		Scene: func(now simtime.Time) exectime.Scene {
			return exectime.Scene{Obstacles: cfg.Obstacles(float64(now)), LoadFactor: 1}
		},
		OnControl: func(cmd engine.ControlCommand) { perceive(cmd) },
		OnJobDecided: func(now simtime.Time, _ *sched.Job, missed bool) {
			t := math.Min(float64(now), cfg.Duration-1e-9)
			if err := miss.Note(t, missed); err != nil {
				panic(fmt.Sprintf("scenario: miss bucket: %v", err))
			}
		},
	})
	if err != nil {
		return nil, err
	}

	var coord *core.Coordinator
	if cfg.Scheme.IsHCPerf() {
		coord, err = core.New(core.Config{
			Engine:  eng,
			Queue:   q,
			Dynamic: dyn,
			// Multi-objective tracking error: the speed error in its
			// natural scale plus the lateral offset scaled up so a
			// 0.15 m excursion weighs like a 2 m/s speed error.
			TrackingError: func(simtime.Time) float64 {
				speedErr := math.Abs(lead.Speed() - follower.Speed)
				latErr := math.Abs(lat.Y) * (2.0 / 0.15)
				return math.Max(speedErr, latErr)
			},
			DisableExternal: cfg.Scheme == SchemeHCPerfInternal,
			OnControlPeriod: func(now simtime.Time, e, u, gamma float64) {
				recAdd(rec, "gamma", float64(now), gamma)
				recAdd(rec, "u", float64(now), u)
			},
		})
		if err != nil {
			return nil, err
		}
	}

	if _, err := q.NewTicker(simtime.Time(cfg.VehicleStep), simtime.Duration(cfg.VehicleStep), func(now simtime.Time) {
		if err := lead.Step(cfg.VehicleStep); err != nil {
			panic(fmt.Sprintf("scenario: lead step: %v", err))
		}
		if err := follower.Step(cfg.VehicleStep); err != nil {
			panic(fmt.Sprintf("scenario: follower step: %v", err))
		}
		if err := lat.Step(cfg.VehicleStep, follower.Speed, cfg.Curvature(follower.Position)); err != nil {
			panic(fmt.Sprintf("scenario: lateral step: %v", err))
		}
		t := float64(now)
		if err := recordHistory(t); err != nil {
			panic(fmt.Sprintf("scenario: history: %v", err))
		}
		recAdd(rec, "speed_err", t, lead.Speed()-follower.Speed)
		recAdd(rec, "offset", t, lat.Y)
		recAdd(rec, "gap", t, lead.Position-follower.Position)
	}); err != nil {
		return nil, err
	}
	if _, err := q.NewTicker(1, 1, func(now simtime.Time) {
		t := float64(now)
		recAdd(rec, "miss_ratio", t, miss.Ratio(int(t)-1))
	}); err != nil {
		return nil, err
	}

	if err := eng.Start(); err != nil {
		return nil, err
	}
	if coord != nil {
		if err := coord.Start(); err != nil {
			return nil, err
		}
	}
	if err := q.RunUntil(simtime.Time(cfg.Duration)); err != nil {
		return nil, err
	}

	return &CombinedResult{
		Scheme:      cfg.Scheme,
		Rec:         rec,
		SpeedErrRMS: rec.Series("speed_err").RMS(0, cfg.Duration),
		OffsetRMS:   rec.Series("offset").RMS(0, cfg.Duration),
		LonCommands: lonCmds,
		LatCommands: latCmds,
		Miss:        miss,
		EngineStats: eng.Stats(),
	}, nil
}
