package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestSpecNormalizeDefaults(t *testing.T) {
	got, err := Spec{Scenario: "carfollow"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Scenario: "carfollow", Graph: GraphAD23, Scheme: "hcperf", Seed: 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("normalized = %+v, want %+v", got, want)
	}
	// Normalize is idempotent: a normalized spec is its own fixed point.
	again, err := got.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, got) {
		t.Errorf("re-normalized = %+v, want %+v", again, got)
	}
}

func TestSpecNormalizeFillsGraphPerScenario(t *testing.T) {
	for _, tt := range []struct {
		scenario, graph string
	}{
		{"carfollow", GraphAD23},
		{"hardware", GraphAD23},
		{"jam", GraphAD23},
		{"aeb", GraphAD23},
		{"lanekeep", GraphAD23},
		{"combined", GraphDualControl},
		{"motivation", GraphMotivation},
	} {
		got, err := Spec{Scenario: tt.scenario}.Normalize()
		if err != nil {
			t.Errorf("%s: %v", tt.scenario, err)
			continue
		}
		if got.Graph != tt.graph {
			t.Errorf("%s: graph = %q, want %q", tt.scenario, got.Graph, tt.graph)
		}
	}
}

func TestSpecNormalizeErrors(t *testing.T) {
	tests := []struct {
		name    string
		spec    Spec
		wantErr string
	}{
		{"unknown scenario", Spec{Scenario: "bogus"}, "unknown scenario"},
		{"empty scenario", Spec{}, "unknown scenario"},
		{"unknown graph", Spec{Scenario: "carfollow", Graph: "bogus"}, "unknown graph"},
		{"graph mismatch", Spec{Scenario: "carfollow", Graph: GraphMotivation}, "runs graph"},
		{"unknown scheme", Spec{Scenario: "carfollow", Scheme: "bogus"}, "unknown scheme"},
		{"negative duration", Spec{Scenario: "carfollow", Duration: -1}, "duration"},
		{"negative sample rate", Spec{Scenario: "carfollow", SampleRate: -2}, "sample_rate"},
		{"negative num procs", Spec{Scenario: "carfollow", NumProcs: -1}, "num_procs"},
		{"unknown load task", Spec{Scenario: "carfollow",
			Loads: []SpecLoad{{Task: "bogus", From: 0, To: 1, Factor: 2}}}, "bogus"},
		{"bad load window", Spec{Scenario: "carfollow",
			Loads: []SpecLoad{{Task: "sensor_fusion", From: 3, To: 1, Factor: 2}}}, "empty interval"},
		{"non-positive load factor", Spec{Scenario: "carfollow",
			Loads: []SpecLoad{{Task: "sensor_fusion", From: 0, To: 1, Factor: 0}}}, "factor"},
		{"unknown rate task", Spec{Scenario: "carfollow",
			RateOverrides: map[string]float64{"bogus": 10}}, "bogus"},
		{"out-of-range rate", Spec{Scenario: "carfollow",
			RateOverrides: map[string]float64{"camera_front": 1e9}}, "rate"},
		{"obstacles not from zero", Spec{Scenario: "carfollow",
			Obstacles: []ObstaclePhase{{T: 1, N: 5}}}, "obstacles[0]"},
		{"obstacles not increasing", Spec{Scenario: "carfollow",
			Obstacles: []ObstaclePhase{{T: 0, N: 5}, {T: 0, N: 6}}}, "obstacles[1]"},
		{"obstacles negative count", Spec{Scenario: "carfollow",
			Obstacles: []ObstaclePhase{{T: 0, N: -5}}}, "obstacles[0].n"},
		{"disable_e2e outside family", Spec{Scenario: "lanekeep", DisableE2E: true}, "disable_e2e"},
		{"track_gap_error outside family", Spec{Scenario: "combined", TrackGapError: true}, "track_gap_error"},
		{"loads on motivation", Spec{Scenario: "motivation",
			Loads: []SpecLoad{{Task: "fusion", From: 0, To: 1, Factor: 2}}}, "does not support"},
		{"gamma_cap on motivation", Spec{Scenario: "motivation", GammaCap: 3}, "does not support"},
		{"obstacles on motivation", Spec{Scenario: "motivation",
			Obstacles: []ObstaclePhase{{T: 0, N: 5}}}, "obstacles"},
		{"fleet outside family", Spec{Scenario: "lanekeep",
			Fleet: &FleetSpec{N: 4}}, "fleet block"},
		{"fleet zero vehicles", Spec{Scenario: "carfollow",
			Fleet: &FleetSpec{N: 0}}, "fleet.n"},
		{"fleet unknown coupling", Spec{Scenario: "carfollow",
			Fleet: &FleetSpec{N: 4, Coupling: "v2x"}}, "unknown fleet coupling"},
		{"fleet negative spacing", Spec{Scenario: "carfollow",
			Fleet: &FleetSpec{N: 4, Coupling: FleetCouplingPlatoon, Spacing: -1}}, "fleet.spacing"},
		{"fleet spacing without platoon", Spec{Scenario: "carfollow",
			Fleet: &FleetSpec{N: 4, Spacing: 10}}, "require"},
		{"fleet seed count mismatch", Spec{Scenario: "carfollow",
			Fleet: &FleetSpec{N: 4, VehicleSeeds: []int64{1, 2}}}, "vehicle_seeds"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := tt.spec.Normalize()
			if err == nil {
				t.Fatalf("Normalize(%+v) accepted", tt.spec)
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("error %q does not mention %q", err, tt.wantErr)
			}
		})
	}
}

func TestDecodeSpecStrict(t *testing.T) {
	if _, err := DecodeSpec(strings.NewReader(`{"scenario": "carfollow", "bogus": 1}`)); err == nil {
		t.Error("unknown top-level field accepted")
	}
	if _, err := DecodeSpec(strings.NewReader(`{"scenario": "carfollow", "loads": [{"task": "fusion", "typo": 1}]}`)); err == nil {
		t.Error("unknown nested field accepted")
	}
	if _, err := DecodeSpec(strings.NewReader(`{"scenario"`)); err == nil {
		t.Error("truncated JSON accepted")
	}
	got, err := DecodeSpec(strings.NewReader(`{"scenario": "lanekeep", "seed": 7}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.Scenario != "lanekeep" || got.Seed != 7 || got.Scheme != "hcperf" {
		t.Errorf("decoded = %+v", got)
	}
}

func TestRunSpecEndToEnd(t *testing.T) {
	res, err := RunSpec(Spec{
		Scenario: "carfollow",
		Scheme:   "edf",
		Duration: 5,
		Loads:    []SpecLoad{{Task: "sensor_fusion", From: 1, To: 3, Factor: 2.5}},
		Obstacles: []ObstaclePhase{
			{T: 0, N: 10}, {T: 2, N: 30},
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Title == "" || len(res.Rows) == 0 {
		t.Fatalf("result missing title or rows: %+v", res)
	}
	if res.Rec == nil || res.Rec.Series("gap").Len() == 0 {
		t.Error("result has no recorded gap series")
	}
	for _, row := range res.Rows {
		if len(row) != 2 || row[0] == "" || row[1] == "" {
			t.Errorf("malformed row %v", row)
		}
	}
}

// TestRunSpecMatchesDirectRun proves the spec path is the same computation
// as calling the scenario runner directly: identical series, sample for
// sample.
func TestRunSpecMatchesDirectRun(t *testing.T) {
	res, err := RunSpec(Spec{Scenario: "carfollow", Scheme: "edf", Duration: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunCarFollowing(CarFollowingConfig{Scheme: SchemeEDF, Seed: 1, Duration: 5})
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.Rec.Series("speed_err"), direct.Rec.Series("speed_err")
	if !reflect.DeepEqual(a.Samples, b.Samples) {
		t.Error("spec run diverges from direct RunCarFollowing call")
	}
}

// FuzzSpecJSON fuzzes the decode→validate→re-encode round trip: no input
// may panic, and any spec that survives validation must re-encode to a
// stable canonical form (decode(encode(s)) normalizes back to the same
// bytes — the property the service's content-addressed cache key relies
// on).
func FuzzSpecJSON(f *testing.F) {
	f.Add(`{"scenario": "carfollow"}`)
	f.Add(`{"scenario": "lanekeep", "scheme": "edf", "seed": 42, "duration": 10}`)
	f.Add(`{"scenario": "combined", "rate_overrides": {"camera_front": 9}}`)
	f.Add(`{"scenario": "motivation", "max_data_age_ms": -1}`)
	f.Add(`{"scenario": "carfollow", "loads": [{"task": "sensor_fusion", "from": 1, "to": 3, "factor": 2}],
	       "obstacles": [{"t": 0, "n": 4}, {"t": 5, "n": 40}], "gamma_cap": 3, "disable_e2e": true}`)
	f.Add(`{"scenario": "aeb", "graph": "ad23", "track_gap_error": true}`)
	f.Add(`{"scenario": "carfollow", "duration": -1}`)
	f.Add(`{"scenario": "bogus"}`)
	f.Add(`{"scenario": "carfollow", "fleet": {"n": 8}}`)
	f.Add(`{"scenario": "carfollow", "fleet": {"n": 4, "coupling": "platoon", "spacing": 18, "brake_threshold": 2, "brake_obstacles": 14}}`)
	f.Add(`{"scenario": "carfollow", "fleet": {"n": 2, "vehicle_seeds": [7, 9]}}`)
	f.Add(`{"scenario": "carfollow", "fleet": {"n": 0}}`)
	f.Add(`{"scenario": "lanekeep", "fleet": {"n": 4}}`)
	f.Add(`{"scenario": "carfollow", "fleet": {"n": 4, "coupling": "v2x"}}`)
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := DecodeSpec(strings.NewReader(input))
		if err != nil {
			return // invalid specs must error, not panic
		}
		b1, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("marshal normalized spec: %v", err)
		}
		spec2, err := DecodeSpec(strings.NewReader(string(b1)))
		if err != nil {
			t.Fatalf("valid spec %s does not survive round trip: %v", b1, err)
		}
		b2, err := json.Marshal(spec2)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if string(b1) != string(b2) {
			t.Fatalf("round trip is not a fixed point:\n first %s\nsecond %s", b1, b2)
		}
	})
}
