package scenario

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"hcperf/internal/core"
	"hcperf/internal/dag"
	"hcperf/internal/engine"
	"hcperf/internal/exectime"
	"hcperf/internal/lifecycle"
	"hcperf/internal/metrics"
	"hcperf/internal/rate"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
	"hcperf/internal/stats"
	"hcperf/internal/trace"
	"hcperf/internal/vehicle"
)

// LaneKeepingConfig parameterises the loop-driving lane-keeping scenario
// (paper §VII-B2, Fig. 14): the vehicle circles an oval track clockwise at
// a fixed longitudinal speed; the performance metric is the lateral offset
// from the lane centre.
type LaneKeepingConfig struct {
	// Scheme selects the scheduling scheme.
	Scheme Scheme
	// Seed drives all scenario randomness.
	Seed int64
	// Duration is the simulated span in seconds (default: one full lap).
	Duration float64
	// NumProcs is the processor count (default 2).
	NumProcs int
	// Speed is the fixed longitudinal speed (default 5 m/s).
	Speed float64
	// Track is the closed circuit (default: oval with 100 m straights
	// and 20 m corner radius — four distinct turns per lap).
	Track *vehicle.Track
	// Obstacles maps time to detected-obstacle count (default constant
	// 14: busy urban loop).
	Obstacles func(t float64) int
	// Lateral bounds the steering plant (default passenger car).
	Lateral vehicle.LateralConfig
	// KeeperGains tunes the lane-keeping law.
	KeeperGains vehicle.LaneKeeper
	// RateOverrides sets initial source rates by task name.
	RateOverrides map[string]float64
	// VehicleStep is the dynamics integration step (default 10 ms).
	VehicleStep float64
	// OffsetNoiseSD adds Gaussian noise to the perceived lateral offset
	// (m).
	OffsetNoiseSD float64
	// Tracer optionally receives the engine's structured lifecycle
	// event stream (per-job timelines).
	Tracer lifecycle.Tracer
}

func (c *LaneKeepingConfig) applyDefaults() error {
	if c.Scheme == 0 {
		return errors.New("scenario: no scheme selected")
	}
	if c.Speed == 0 {
		c.Speed = 5
	}
	if c.Speed <= 0 {
		return fmt.Errorf("scenario: non-positive speed %v", c.Speed)
	}
	if c.Track == nil {
		track, err := vehicle.OvalTrack(100, 12)
		if err != nil {
			return err
		}
		c.Track = track
	}
	if c.Duration == 0 {
		c.Duration = c.Track.Length() / c.Speed
	}
	if c.Duration <= 0 {
		return fmt.Errorf("scenario: non-positive duration %v", c.Duration)
	}
	if c.NumProcs == 0 {
		c.NumProcs = 2
	}
	if c.NumProcs < 1 {
		return fmt.Errorf("scenario: NumProcs %d < 1", c.NumProcs)
	}
	if c.Obstacles == nil {
		c.Obstacles = func(float64) int { return 16 }
	}
	if c.Lateral == (vehicle.LateralConfig{}) {
		c.Lateral = vehicle.LateralConfig{WheelBase: 2.7, MaxSteer: 0.5, ActuatorTau: 0.08}
	}
	if c.KeeperGains == (vehicle.LaneKeeper{}) {
		c.KeeperGains = vehicle.LaneKeeper{Ky: 0.5, Kpsi: 1.4, WheelBase: c.Lateral.WheelBase}
	}
	if c.RateOverrides == nil {
		c.RateOverrides = map[string]float64{
			"camera_front": 12, "camera_traffic_light": 8,
			"lidar_scan": 12, "radar_scan": 12,
		}
	}
	if c.VehicleStep == 0 {
		c.VehicleStep = 0.01
	}
	if c.VehicleStep <= 0 {
		return fmt.Errorf("scenario: non-positive vehicle step %v", c.VehicleStep)
	}
	return nil
}

// LaneKeepingResult aggregates the lane-keeping outcomes.
type LaneKeepingResult struct {
	// Scheme is the scheme that produced this result.
	Scheme Scheme
	// Rec holds the recorded series: offset, heading, curvature,
	// miss_ratio, throughput, and gamma/u for HCPerf schemes.
	Rec *trace.Recorder
	// OffsetRMS is the RMS lateral offset (Table IV).
	OffsetRMS float64
	// OffsetMax is the worst excursion from the centreline.
	OffsetMax float64
	// Miss holds per-second deadline accounting.
	Miss *metrics.MissBuckets
	// EngineStats is the engine's final counter snapshot.
	EngineStats engine.Stats
	// Throughput is control commands per second.
	Throughput float64
	// Overhead is the coordinator's wall-clock cost per step (HCPerf
	// schemes only).
	Overhead stats.Accumulator
}

// laneKeepingRateConfig is the lane-keeping profile of the Task Rate
// Adapter: identical to the default except for a conservative probing
// error, reflecting that steering quality at fixed speed does not improve
// with sensor throughput.
func laneKeepingRateConfig() rate.Config {
	cfg := rate.DefaultConfig()
	cfg.Epsilon = 1e-6
	return cfg
}

// RunLaneKeeping executes one loop-driving run.
func RunLaneKeeping(cfg LaneKeepingConfig) (*LaneKeepingResult, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	graph, err := dag.ADGraph23()
	if err != nil {
		return nil, err
	}
	if err := applyRateOverrides(graph, cfg.RateOverrides); err != nil {
		return nil, err
	}
	scheduler, dyn, err := buildScheduler(cfg.Scheme)
	if err != nil {
		return nil, err
	}

	q := simtime.NewEventQueue()
	rec := trace.NewRecorder()
	noise := rand.New(rand.NewSource(cfg.Seed ^ 0x1a4e))

	lat, err := vehicle.NewLateral(cfg.Lateral)
	if err != nil {
		return nil, err
	}
	distance := 0.0 // arc length along the track

	// Full-resolution history for stale-perception lookups.
	var histOffset, histHeading, histDistance trace.Series
	recordHistory := func(now float64) error {
		if err := histOffset.Add(now, lat.Y); err != nil {
			return err
		}
		if err := histHeading.Add(now, lat.Psi); err != nil {
			return err
		}
		return histDistance.Add(now, distance)
	}
	if err := recordHistory(0); err != nil {
		return nil, err
	}

	miss, err := metrics.NewMissBuckets(1)
	if err != nil {
		return nil, err
	}

	gains := cfg.KeeperGains
	perceive := func(cmd engine.ControlCommand) {
		at := float64(cmd.SourceTime)
		offset, ok := histOffset.At(at)
		if !ok {
			return
		}
		heading, _ := histHeading.At(at)
		s, _ := histDistance.At(at)
		if cfg.OffsetNoiseSD > 0 {
			offset += noise.NormFloat64() * cfg.OffsetNoiseSD
		}
		// Feed-forward uses the curvature a short preview ahead of the
		// perceived position.
		curv := cfg.Track.Curvature(s + 0.3*cfg.Speed)
		lat.SetSteerCommand(gains.Steer(offset, heading, curv))
	}

	eng, err := engine.New(engine.Config{
		Graph:      graph,
		Scheduler:  scheduler,
		NumProcs:   cfg.NumProcs,
		Queue:      q,
		Seed:       cfg.Seed,
		MaxDataAge: 220 * simtime.Millisecond,
		Tracer:     cfg.Tracer,
		Scene: func(now simtime.Time) exectime.Scene {
			return exectime.Scene{Obstacles: cfg.Obstacles(float64(now)), LoadFactor: 1}
		},
		OnControl: func(cmd engine.ControlCommand) { perceive(cmd) },
		OnJobDecided: func(now simtime.Time, _ *sched.Job, missed bool) {
			t := math.Min(float64(now), cfg.Duration-1e-9)
			if err := miss.Note(t, missed); err != nil {
				panic(fmt.Sprintf("scenario: miss bucket: %v", err))
			}
		},
	})
	if err != nil {
		return nil, err
	}

	var coord *core.Coordinator
	if cfg.Scheme.IsHCPerf() {
		coord, err = core.New(core.Config{
			Engine:  eng,
			Queue:   q,
			Dynamic: dyn,
			// Performance metric: the lateral offset from the lane
			// centre (paper §VII-B2). The controller gains are scaled
			// to lane-keeping's centimetre-scale errors, and the rate
			// adapter probes conservatively: at a fixed cruise speed
			// extra sensor throughput cannot improve steering, so the
			// offline-profiled ε is small (paper §VI: K_p and the
			// probing error are set from offline profiled data).
			MFC:             core.MFCConfigForScale(0.1, dyn.GammaCap),
			Rate:            laneKeepingRateConfig(),
			TrackingError:   func(simtime.Time) float64 { return math.Abs(lat.Y) },
			DisableExternal: cfg.Scheme == SchemeHCPerfInternal,
			OnControlPeriod: func(now simtime.Time, e, u, gamma float64) {
				recAdd(rec, "tracking_err_sample", float64(now), e)
				recAdd(rec, "u", float64(now), u)
				recAdd(rec, "gamma", float64(now), gamma)
			},
		})
		if err != nil {
			return nil, err
		}
	}

	if _, err := q.NewTicker(simtime.Time(cfg.VehicleStep), simtime.Duration(cfg.VehicleStep), func(now simtime.Time) {
		curv := cfg.Track.Curvature(distance)
		if err := lat.Step(cfg.VehicleStep, cfg.Speed, curv); err != nil {
			panic(fmt.Sprintf("scenario: lateral step: %v", err))
		}
		distance += cfg.Speed * cfg.VehicleStep
		t := float64(now)
		if err := recordHistory(t); err != nil {
			panic(fmt.Sprintf("scenario: history: %v", err))
		}
		recAdd(rec, "offset", t, lat.Y)
		recAdd(rec, "heading", t, lat.Psi)
		recAdd(rec, "curvature", t, curv)
	}); err != nil {
		return nil, err
	}

	var lastCmds uint64
	if _, err := q.NewTicker(1, 1, func(now simtime.Time) {
		t := float64(now)
		cmds := eng.Stats().ControlCommands
		recAdd(rec, "throughput", t, float64(cmds-lastCmds))
		lastCmds = cmds
		recAdd(rec, "miss_ratio", t, miss.Ratio(int(t)-1))
	}); err != nil {
		return nil, err
	}

	if err := eng.Start(); err != nil {
		return nil, err
	}
	if coord != nil {
		if err := coord.Start(); err != nil {
			return nil, err
		}
	}
	if err := q.RunUntil(simtime.Time(cfg.Duration)); err != nil {
		return nil, err
	}

	res := &LaneKeepingResult{
		Scheme:      cfg.Scheme,
		Rec:         rec,
		Miss:        miss,
		EngineStats: eng.Stats(),
	}
	off := rec.Series("offset")
	res.OffsetRMS = off.RMS(0, cfg.Duration)
	res.OffsetMax = off.MaxAbs(0, cfg.Duration)
	res.Throughput = float64(eng.Stats().ControlCommands) / cfg.Duration
	if coord != nil {
		res.Overhead = coord.Overhead()
	}
	return res, nil
}
