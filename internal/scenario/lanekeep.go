package scenario

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"hcperf/internal/engine"
	"hcperf/internal/lifecycle"
	"hcperf/internal/metrics"
	"hcperf/internal/rate"
	"hcperf/internal/simtime"
	"hcperf/internal/stats"
	"hcperf/internal/trace"
	"hcperf/internal/vehicle"
)

// LaneKeepingConfig parameterises the loop-driving lane-keeping scenario
// (paper §VII-B2, Fig. 14): the vehicle circles an oval track clockwise at
// a fixed longitudinal speed; the performance metric is the lateral offset
// from the lane centre.
type LaneKeepingConfig struct {
	// Scheme selects the scheduling scheme.
	Scheme Scheme
	// Seed drives all scenario randomness.
	Seed int64
	// Duration is the simulated span in seconds (default: one full lap).
	Duration float64
	// NumProcs is the processor count (default 2).
	NumProcs int
	// Speed is the fixed longitudinal speed (default 5 m/s).
	Speed float64
	// Track is the closed circuit (default: oval with 100 m straights
	// and 20 m corner radius — four distinct turns per lap).
	Track *vehicle.Track
	// Obstacles maps time to detected-obstacle count (default constant
	// 14: busy urban loop).
	Obstacles func(t float64) int
	// Lateral bounds the steering plant (default passenger car).
	Lateral vehicle.LateralConfig
	// KeeperGains tunes the lane-keeping law.
	KeeperGains vehicle.LaneKeeper
	// RateOverrides sets initial source rates by task name.
	RateOverrides map[string]float64
	// Loads optionally multiply task execution times over time windows
	// (default none).
	Loads []TaskLoad
	// VehicleStep is the dynamics integration step (default 10 ms).
	VehicleStep float64
	// SampleRate is the summary-series sample frequency in Hz
	// (default 1).
	SampleRate float64
	// OffsetNoiseSD adds Gaussian noise to the perceived lateral offset
	// (m).
	OffsetNoiseSD float64
	// GammaCap overrides the Dynamic scheduler's γ cap (0 = default).
	GammaCap float64
	// MaxDataAge overrides the input-age validity bound: 0 = default
	// (DefaultMaxDataAge, 220 ms), negative = disabled.
	MaxDataAge simtime.Duration
	// Tracer optionally receives the engine's structured lifecycle
	// event stream (per-job timelines).
	Tracer lifecycle.Tracer
}

func (c *LaneKeepingConfig) applyDefaults() error {
	if c.Scheme == 0 {
		return errors.New("scenario: no scheme selected")
	}
	if c.Speed == 0 {
		c.Speed = 5
	}
	if c.Speed <= 0 {
		return fmt.Errorf("scenario: non-positive speed %v", c.Speed)
	}
	if c.Track == nil {
		track, err := vehicle.OvalTrack(100, 12)
		if err != nil {
			return err
		}
		c.Track = track
	}
	if c.Duration == 0 {
		c.Duration = c.Track.Length() / c.Speed
	}
	if c.Duration <= 0 {
		return fmt.Errorf("scenario: non-positive duration %v", c.Duration)
	}
	if c.NumProcs == 0 {
		c.NumProcs = 2
	}
	if c.NumProcs < 1 {
		return fmt.Errorf("scenario: NumProcs %d < 1", c.NumProcs)
	}
	if c.Obstacles == nil {
		c.Obstacles = func(float64) int { return 16 }
	}
	if c.Lateral == (vehicle.LateralConfig{}) {
		c.Lateral = vehicle.LateralConfig{WheelBase: 2.7, MaxSteer: 0.5, ActuatorTau: 0.08}
	}
	if c.KeeperGains == (vehicle.LaneKeeper{}) {
		c.KeeperGains = vehicle.LaneKeeper{Ky: 0.5, Kpsi: 1.4, WheelBase: c.Lateral.WheelBase}
	}
	if c.RateOverrides == nil {
		c.RateOverrides = map[string]float64{
			"camera_front": 12, "camera_traffic_light": 8,
			"lidar_scan": 12, "radar_scan": 12,
		}
	}
	if c.VehicleStep == 0 {
		c.VehicleStep = 0.01
	}
	if c.VehicleStep <= 0 {
		return fmt.Errorf("scenario: non-positive vehicle step %v", c.VehicleStep)
	}
	return nil
}

// loop maps the config onto the shared closed-loop kernel. Lane keeping
// uses the lane-keeping MFC scale and rate-adapter profile: the controller
// gains are scaled to centimetre-scale errors, and the rate adapter probes
// conservatively — at a fixed cruise speed extra sensor throughput cannot
// improve steering, so the offline-profiled ε is small (paper §VI: K_p and
// the probing error are set from offline profiled data).
func (c *LaneKeepingConfig) loop() loopConfig {
	return loopConfig{
		Graph:         GraphAD23,
		Scheme:        c.Scheme,
		Seed:          c.Seed,
		Duration:      c.Duration,
		NumProcs:      c.NumProcs,
		VehicleStep:   c.VehicleStep,
		SampleRate:    c.SampleRate,
		MaxDataAge:    c.MaxDataAge,
		GammaCap:      c.GammaCap,
		Loads:         c.Loads,
		RateOverrides: c.RateOverrides,
		Obstacles:     c.Obstacles,
		Tracer:        c.Tracer,
		MFCScale:      0.1,
		RateConfig:    laneKeepingRateConfig(),
	}
}

// LaneKeepingResult aggregates the lane-keeping outcomes.
type LaneKeepingResult struct {
	// Scheme is the scheme that produced this result.
	Scheme Scheme
	// Rec holds the recorded series: offset, heading, curvature,
	// miss_ratio, throughput, and gamma/u for HCPerf schemes.
	Rec *trace.Recorder
	// OffsetRMS is the RMS lateral offset (Table IV).
	OffsetRMS float64
	// OffsetMax is the worst excursion from the centreline.
	OffsetMax float64
	// Miss holds per-second deadline accounting.
	Miss *metrics.MissBuckets
	// EngineStats is the engine's final counter snapshot.
	EngineStats engine.Stats
	// Throughput is control commands per second.
	Throughput float64
	// Overhead is the coordinator's wall-clock cost per step (HCPerf
	// schemes only).
	Overhead stats.Accumulator
}

// laneKeepingRateConfig is the lane-keeping profile of the Task Rate
// Adapter: identical to the default except for a conservative probing
// error, reflecting that steering quality at fixed speed does not improve
// with sensor throughput.
func laneKeepingRateConfig() rate.Config {
	cfg := rate.DefaultConfig()
	cfg.Epsilon = 1e-6
	return cfg
}

// laneKeepPlant is the lateral lane-keeping world: a bicycle-model vehicle
// steered along a closed track from stale pipeline outputs.
type laneKeepPlant struct {
	cfg   *LaneKeepingConfig
	rec   *trace.Recorder
	noise *rand.Rand
	gains vehicle.LaneKeeper

	lat      *vehicle.Lateral
	distance float64 // arc length along the track

	// Full-resolution history for stale-perception lookups.
	histOffset, histHeading, histDistance trace.Series

	lastCmds uint64
}

func newLaneKeepPlant(cfg *LaneKeepingConfig, rec *trace.Recorder) (*laneKeepPlant, error) {
	p := &laneKeepPlant{
		cfg:   cfg,
		rec:   rec,
		noise: rand.New(rand.NewSource(cfg.Seed ^ 0x1a4e)),
		gains: cfg.KeeperGains,
	}
	var err error
	if p.lat, err = vehicle.NewLateral(cfg.Lateral); err != nil {
		return nil, err
	}
	if err := p.recordHistory(0); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *laneKeepPlant) recordHistory(now float64) error {
	if err := p.histOffset.Add(now, p.lat.Y); err != nil {
		return err
	}
	if err := p.histHeading.Add(now, p.lat.Psi); err != nil {
		return err
	}
	return p.histDistance.Add(now, p.distance)
}

func (p *laneKeepPlant) Perceive(cmd engine.ControlCommand) {
	at := float64(cmd.SourceTime)
	offset, ok := p.histOffset.At(at)
	if !ok {
		return
	}
	heading, _ := p.histHeading.At(at)
	s, _ := p.histDistance.At(at)
	if p.cfg.OffsetNoiseSD > 0 {
		offset += p.noise.NormFloat64() * p.cfg.OffsetNoiseSD
	}
	// Feed-forward uses the curvature a short preview ahead of the
	// perceived position.
	curv := p.cfg.Track.Curvature(s + 0.3*p.cfg.Speed)
	p.lat.SetSteerCommand(p.gains.Steer(offset, heading, curv))
}

// TrackingError is the performance metric: the lateral offset from the
// lane centre (paper §VII-B2).
func (p *laneKeepPlant) TrackingError(simtime.Time) float64 { return math.Abs(p.lat.Y) }

func (p *laneKeepPlant) CoordSample(now simtime.Time, e, u, gamma float64) {
	recAdd(p.rec, "tracking_err_sample", float64(now), e)
	recAdd(p.rec, "u", float64(now), u)
	recAdd(p.rec, "gamma", float64(now), gamma)
}

func (p *laneKeepPlant) Step(now float64) {
	step := p.cfg.VehicleStep
	curv := p.cfg.Track.Curvature(p.distance)
	if err := p.lat.Step(step, p.cfg.Speed, curv); err != nil {
		panic(fmt.Sprintf("scenario: lateral step: %v", err))
	}
	p.distance += p.cfg.Speed * step
	if err := p.recordHistory(now); err != nil {
		panic(fmt.Sprintf("scenario: history: %v", err))
	}
	recAdd(p.rec, "offset", now, p.lat.Y)
	recAdd(p.rec, "heading", now, p.lat.Psi)
	recAdd(p.rec, "curvature", now, curv)
}

func (p *laneKeepPlant) Sample(t float64, env *Env) {
	cmds := env.Eng.Stats().ControlCommands
	recAdd(p.rec, "throughput", t, float64(cmds-p.lastCmds))
	p.lastCmds = cmds
	recAdd(p.rec, "miss_ratio", t, env.Miss.Ratio(int(t)-1))
}

// RunLaneKeeping executes one loop-driving run.
func RunLaneKeeping(cfg LaneKeepingConfig) (*LaneKeepingResult, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	out, err := runLoop(cfg.loop(), func(rec *trace.Recorder) (Plant, error) {
		return newLaneKeepPlant(&cfg, rec)
	})
	if err != nil {
		return nil, err
	}

	res := &LaneKeepingResult{
		Scheme:      cfg.Scheme,
		Rec:         out.Rec,
		Miss:        out.Miss,
		EngineStats: out.EngineStats,
		Overhead:    out.Overhead,
	}
	off := out.Rec.Series("offset")
	res.OffsetRMS = off.RMS(0, cfg.Duration)
	res.OffsetMax = off.MaxAbs(0, cfg.Duration)
	res.Throughput = float64(out.EngineStats.ControlCommands) / cfg.Duration
	return res, nil
}
