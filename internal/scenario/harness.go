package scenario

import (
	"fmt"
	"math"
	"strings"

	"hcperf/internal/core"
	"hcperf/internal/dag"
	"hcperf/internal/engine"
	"hcperf/internal/exectime"
	"hcperf/internal/lifecycle"
	"hcperf/internal/metrics"
	"hcperf/internal/rate"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
	"hcperf/internal/stats"
	"hcperf/internal/trace"
)

// This file is the shared closed-loop simulation kernel under every
// scenario. One loop owns the machinery each scenario used to duplicate —
// graph construction, load steps, rate overrides, scheduler/γ-cap setup,
// engine wiring, coordinator wiring, the vehicle-dynamics ticker, the
// summary-sample ticker and per-second deadline accounting. A scenario is
// a Plant (the vehicle-side world) plus a loopConfig (declarative knobs);
// the four paper scenarios and any custom Spec all run through runLoop.

// DefaultMaxDataAge is the input-age validity bound every scenario uses
// unless overridden: a control output computed from sensor data older than
// this is treated as a deadline miss (paper §V-B).
const DefaultMaxDataAge = 220 * simtime.Millisecond

// resolveMaxDataAge maps the MaxDataAge config sentinel to the engine
// value: 0 means the 220 ms default, negative disables the bound entirely
// (the engine treats 0 as "no bound").
func resolveMaxDataAge(v simtime.Duration) simtime.Duration {
	switch {
	case v > 0:
		return v
	case v < 0:
		return 0
	default:
		return DefaultMaxDataAge
	}
}

// Graph names accepted by the harness and the Spec layer.
const (
	// GraphAD23 is the paper's 23-task autonomous-driving graph.
	GraphAD23 = "ad23"
	// GraphDualControl is the 24-task dual-sink extension graph.
	GraphDualControl = "dual-control"
	// GraphMotivation is the §II motivation graph (Fig. 2).
	GraphMotivation = "motivation"
)

// GraphNames lists the known task graphs in stable order.
func GraphNames() []string {
	return []string{GraphAD23, GraphDualControl, GraphMotivation}
}

// BuildGraph constructs a fresh task graph by name.
func BuildGraph(name string) (*dag.Graph, error) {
	switch name {
	case GraphAD23:
		return dag.ADGraph23()
	case GraphDualControl:
		return dag.ADGraphDualControl()
	case GraphMotivation:
		return dag.MotivationGraph()
	default:
		return nil, fmt.Errorf("scenario: unknown graph %q (have %s)",
			name, strings.Join(GraphNames(), ", "))
	}
}

// TaskLoad multiplies one task's execution time over time windows, on top
// of the obstacle profile — the mechanism behind the complex-scene and
// load-sweep studies.
type TaskLoad struct {
	// Task names the target task in the selected graph.
	Task string
	// Steps are the multiplicative windows (see exectime.NewProfile).
	Steps []exectime.Step
}

// Plant is the vehicle-side world a scenario plugs into the loop: it
// integrates dynamics, perceives through stale pipeline outputs, exposes
// the tracking error the coordinator regulates, and records its
// scenario-specific series.
type Plant interface {
	// Perceive handles one control command: look up world history at the
	// command's source time and actuate. Called for every command the
	// pipeline emits.
	Perceive(cmd engine.ControlCommand)
	// Step advances vehicle dynamics by one VehicleStep ending at now,
	// records world history and per-step series.
	Step(now float64)
	// TrackingError is the performance signal the coordinator regulates
	// (HCPerf schemes only).
	TrackingError(now simtime.Time) float64
	// CoordSample observes one coordinator control period (HCPerf schemes
	// only); plants record gamma/u/error series here, or nothing.
	CoordSample(now simtime.Time, e, u, gamma float64)
	// Sample records the once-per-SamplePeriod summary series.
	Sample(now float64, env *Env)
}

// JobObserver is an optional Plant extension: scenarios that account
// per-job outcomes beyond the harness's miss buckets (e.g. the weakly-hard
// tracker) implement it.
type JobObserver interface {
	JobDecided(j *sched.Job, missed bool)
}

// Env exposes the engine-side state a Plant may read while sampling.
type Env struct {
	Eng   *engine.Engine
	Graph *dag.Graph
	Miss  *metrics.MissBuckets
}

// loopConfig is the declarative half of a scenario: everything the closed
// loop needs that is not vehicle dynamics.
type loopConfig struct {
	// Graph names the task graph (BuildGraph).
	Graph string
	// Scheme selects the scheduling scheme.
	Scheme Scheme
	// Seed drives engine randomness.
	Seed int64
	// Duration is the simulated span in seconds.
	Duration float64
	// NumProcs is the processor count.
	NumProcs int
	// VehicleStep is the dynamics integration step in seconds.
	VehicleStep float64
	// SampleRate is the summary-sample frequency in Hz (0 = 1 Hz).
	SampleRate float64
	// MaxDataAge carries the config sentinel (see resolveMaxDataAge).
	MaxDataAge simtime.Duration
	// GammaCap overrides the Dynamic scheduler's γ cap (0 = default).
	GammaCap float64
	// DisableE2E clears the end-to-end deadline of every control task.
	DisableE2E bool
	// Loads multiply task execution times over time windows.
	Loads []TaskLoad
	// RateOverrides sets initial source rates by task name.
	RateOverrides map[string]float64
	// Obstacles maps time to detected-obstacle count.
	Obstacles func(t float64) int
	// Tracer optionally receives the engine's lifecycle event stream.
	Tracer lifecycle.Tracer
	// MFCScale overrides the MFC gain scale (0 = coordinator default).
	MFCScale float64
	// RateConfig tunes the Task Rate Adapter (zero value = default).
	RateConfig rate.Config
	// Tunables carries the coordinator parameter set; zero fields take
	// the paper defaults (core.DefaultTunables), so a zero value is
	// byte-identical to the pre-tunables behaviour.
	Tunables core.Tunables
}

// loopResult is what the kernel hands back; plants keep their own
// scenario-specific aggregates internally.
type loopResult struct {
	Rec         *trace.Recorder
	Miss        *metrics.MissBuckets
	EngineStats engine.Stats
	Overhead    stats.Accumulator
}

// attachedLoop is one closed loop wired onto an event queue but not yet run
// to completion. Single-vehicle scenarios attach to a private queue and run
// it immediately (runLoop); the fleet layer attaches many loops to one
// shared queue so every vehicle advances on the same virtual clock.
type attachedLoop struct {
	lc    loopConfig
	rec   *trace.Recorder
	miss  *metrics.MissBuckets
	eng   *engine.Engine
	coord *core.Coordinator
	plant Plant
}

// finish collects the loop's result after the owning queue has been run to
// the loop's duration.
func (a *attachedLoop) finish() *loopResult {
	res := &loopResult{Rec: a.rec, Miss: a.miss, EngineStats: a.eng.Stats()}
	if a.coord != nil {
		res.Overhead = a.coord.Overhead()
	}
	return res
}

// runLoop executes one closed-loop run: build the graph and scheduler,
// wire engine + coordinator + plant, tick dynamics and summaries, run to
// Duration. The build callback constructs the plant against the shared
// recorder after the static configuration is validated.
func runLoop(lc loopConfig, build func(rec *trace.Recorder) (Plant, error)) (*loopResult, error) {
	q := simtime.NewEventQueue()
	a, err := attachLoop(q, lc, build)
	if err != nil {
		return nil, err
	}
	if err := q.RunUntil(simtime.Time(lc.Duration)); err != nil {
		return nil, err
	}
	return a.finish(), nil
}

// attachLoop wires one closed loop onto q without running it: graph, load
// steps, scheduler, engine, coordinator, the vehicle-dynamics ticker and
// the summary-sample ticker. Registration order is load-bearing — events
// scheduled for the same instant fire in creation order, so the sequence
// below (plant dynamics, summary sample, engine sources, coordinator) is
// part of the simulation's observable behaviour and must not be reordered.
func attachLoop(q *simtime.EventQueue, lc loopConfig, build func(rec *trace.Recorder) (Plant, error)) (*attachedLoop, error) {
	tun, err := lc.Tunables.Resolved()
	if err != nil {
		return nil, err
	}
	graph, err := BuildGraph(lc.Graph)
	if err != nil {
		return nil, err
	}
	for _, l := range lc.Loads {
		if err := applyLoadSteps(graph, l.Task, l.Steps); err != nil {
			return nil, err
		}
	}
	if len(lc.RateOverrides) > 0 {
		if err := applyRateOverrides(graph, lc.RateOverrides); err != nil {
			return nil, err
		}
	}
	// Rate-band rescaling runs after the initial-rate overrides: the
	// overrides are validated against the paper's bands, then the tunable
	// scales reshape the range the rate adapter may move in.
	if err := tun.ApplyRateBounds(graph); err != nil {
		return nil, err
	}
	if lc.DisableE2E {
		for _, t := range graph.Tasks() {
			if t.IsControl {
				t.E2E = 0
			}
		}
	}
	scheduler, dyn, err := buildScheduler(lc.Scheme)
	if err != nil {
		return nil, err
	}
	// γ-cap precedence: the scenario's explicit GammaCap (ablation knob)
	// wins over the tunable set, whose default is sched.DefaultGammaCap —
	// exactly what NewDynamic(0) picked before tunables existed.
	if dyn != nil {
		dyn.GammaCap = tun.GammaCap
		if lc.GammaCap > 0 {
			dyn.GammaCap = lc.GammaCap
		}
	}
	if lc.SampleRate < 0 {
		return nil, fmt.Errorf("scenario: negative sample rate %v", lc.SampleRate)
	}
	samplePeriod := 1.0
	if lc.SampleRate > 0 {
		samplePeriod = 1 / lc.SampleRate
	}

	rec := trace.NewRecorder()
	plant, err := build(rec)
	if err != nil {
		return nil, err
	}
	jobs, _ := plant.(JobObserver)

	miss, err := metrics.NewMissBuckets(1)
	if err != nil {
		return nil, err
	}
	env := &Env{Graph: graph, Miss: miss}

	eng, err := engine.New(engine.Config{
		Graph:      graph,
		Scheduler:  scheduler,
		NumProcs:   lc.NumProcs,
		Queue:      q,
		Seed:       lc.Seed,
		MaxDataAge: resolveMaxDataAge(lc.MaxDataAge),
		Tracer:     lc.Tracer,
		Scene: func(now simtime.Time) exectime.Scene {
			return exectime.Scene{Obstacles: lc.Obstacles(float64(now)), LoadFactor: 1}
		},
		OnControl: plant.Perceive,
		OnJobDecided: func(now simtime.Time, j *sched.Job, missed bool) {
			// Sampling error at exactly t=Duration lands in a fresh
			// bucket; fold it back.
			t := math.Min(float64(now), lc.Duration-1e-9)
			if err := miss.Note(t, missed); err != nil {
				panic(fmt.Sprintf("scenario: miss bucket: %v", err))
			}
			if jobs != nil {
				jobs.JobDecided(j, missed)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	env.Eng = eng

	var coord *core.Coordinator
	if lc.Scheme.IsHCPerf() {
		// The MFC and adapter configurations are built from the tunable
		// set around the *effective* γ cap (post-override). Scenarios
		// with a bespoke adapter profile (lane keeping) keep it; the
		// tunable Kp0/decay overlay applies only on the default profile.
		effective := tun
		effective.GammaCap = dyn.GammaCap
		rcfg := lc.RateConfig
		if rcfg == (rate.Config{}) {
			rcfg = effective.RateConfig()
		}
		ccfg := core.Config{
			Engine:          eng,
			Queue:           q,
			Dynamic:         dyn,
			MFC:             effective.MFCConfig(lc.MFCScale),
			Rate:            rcfg,
			TrackingError:   plant.TrackingError,
			DisableExternal: lc.Scheme == SchemeHCPerfInternal,
			OnControlPeriod: plant.CoordSample,
		}
		if coord, err = core.New(ccfg); err != nil {
			return nil, err
		}
	}

	// Vehicle dynamics loop.
	if _, err := q.NewTicker(simtime.Time(lc.VehicleStep), simtime.Duration(lc.VehicleStep), func(now simtime.Time) {
		plant.Step(float64(now))
	}); err != nil {
		return nil, err
	}
	// Summary series.
	if _, err := q.NewTicker(simtime.Time(samplePeriod), simtime.Duration(samplePeriod), func(now simtime.Time) {
		plant.Sample(float64(now), env)
	}); err != nil {
		return nil, err
	}

	if err := eng.Start(); err != nil {
		return nil, err
	}
	if coord != nil {
		if err := coord.Start(); err != nil {
			return nil, err
		}
	}
	return &attachedLoop{lc: lc, rec: rec, miss: miss, eng: eng, coord: coord, plant: plant}, nil
}

// applyLoadSteps wraps the named task's execution model in a load profile.
func applyLoadSteps(g *dag.Graph, taskName string, steps []exectime.Step) error {
	if len(steps) == 0 {
		return nil
	}
	t := g.TaskByName(taskName)
	if t == nil {
		return fmt.Errorf("scenario: unknown task %q for load steps", taskName)
	}
	prof, err := exectime.NewProfile(t.Exec, steps)
	if err != nil {
		return err
	}
	t.Exec = prof
	return nil
}

// applyRateOverrides sets the initial rates of source tasks by name.
func applyRateOverrides(g *dag.Graph, overrides map[string]float64) error {
	for name, r := range overrides {
		t := g.TaskByName(name)
		if t == nil {
			return fmt.Errorf("scenario: unknown task %q in rate overrides", name)
		}
		if t.MaxRate > 0 && (r < t.MinRate || r > t.MaxRate) {
			return fmt.Errorf("scenario: rate %v for %q outside [%v,%v]", r, name, t.MinRate, t.MaxRate)
		}
		t.Rate = r
	}
	return g.Validate()
}

// recAdd appends to a recorder series; recorder series only ever advance
// with simulation time, so failures indicate harness bugs.
func recAdd(rec *trace.Recorder, name string, t, v float64) {
	if err := rec.Add(name, t, v); err != nil {
		panic(fmt.Sprintf("scenario: record %s: %v", name, err))
	}
}
