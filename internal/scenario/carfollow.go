package scenario

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"hcperf/internal/core"
	"hcperf/internal/dag"
	"hcperf/internal/engine"
	"hcperf/internal/exectime"
	"hcperf/internal/lifecycle"
	"hcperf/internal/metrics"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
	"hcperf/internal/stats"
	"hcperf/internal/trace"
	"hcperf/internal/vehicle"
)

// CarFollowingConfig parameterises the car-following scenario (paper
// §VII-B1, §VII-C and the hardware study §VII-B3). Zero fields take the
// defaults of the simulation evaluation: a sine-speed lead (10-20 m/s,
// 7 s period), the 23-task graph on 2 processors and the complex-scene
// episode over t ∈ [10 s, 80 s) that doubles the sensor-fusion time
// (obstacles 11 → 23).
type CarFollowingConfig struct {
	// Scheme selects the scheduling scheme.
	Scheme Scheme
	// Seed drives all scenario randomness.
	Seed int64
	// Duration is the simulated time span in seconds (default 90).
	Duration float64
	// NumProcs is the processor count (default 4).
	NumProcs int
	// LeadProfile is the lead vehicle's speed profile (default sine).
	LeadProfile vehicle.SpeedProfile
	// InitSpeed is the follower's starting speed (default: profile
	// speed at t = 0).
	InitSpeed float64
	// LoadSteps optionally multiply the sensor-fusion execution time
	// over time windows, on top of the obstacle profile (default none).
	LoadSteps []exectime.Step
	// Obstacles maps time to detected-obstacle count. The default is
	// the paper's complex-scene episode: 11 obstacles normally (fusion
	// ≈ 20 ms) and 23 during t ∈ [10 s, 80 s) (fusion ≈ 40 ms, and the
	// obstacle-sensitive detection/tracking tasks inflate with it).
	Obstacles func(t float64) int
	// SpeedNoiseSD adds Gaussian noise to the perceived lead speed
	// (m/s; hardware emulation).
	SpeedNoiseSD float64
	// GapNoiseSD adds Gaussian noise to the perceived gap (m).
	GapNoiseSD float64
	// Longitudinal bounds the follower (default passenger car).
	Longitudinal vehicle.LongitudinalConfig
	// FollowerGains tunes the car-following law (default gains).
	FollowerGains vehicle.CarFollower
	// RateOverrides sets initial source rates by task name; each must
	// lie inside the task's allowable range.
	RateOverrides map[string]float64
	// VehicleStep is the dynamics integration step (default 10 ms).
	VehicleStep float64
	// Tracer optionally receives the engine's structured lifecycle
	// event stream (per-job timelines).
	Tracer lifecycle.Tracer
	// TrackGapError makes the coordinator track the gap error instead
	// of the speed error (the Fig. 16/17 responsiveness study).
	TrackGapError bool
	// GammaCap overrides the Dynamic scheduler's γ cap for ablation
	// studies (0 = default).
	GammaCap float64
	// DisableE2E removes the control task's explicit end-to-end deadline
	// (ablation: the external coordinator loses its latency signal).
	DisableE2E bool
	// MaxDataAge overrides the input-age validity bound: 0 = default
	// (220 ms), negative = disabled (ablation: auxiliary-task starvation
	// becomes free).
	MaxDataAge simtime.Duration
}

func (c *CarFollowingConfig) applyDefaults() error {
	if c.Scheme == 0 {
		return errors.New("scenario: no scheme selected")
	}
	if c.Duration == 0 {
		c.Duration = 90
	}
	if c.Duration <= 0 {
		return fmt.Errorf("scenario: non-positive duration %v", c.Duration)
	}
	if c.NumProcs == 0 {
		c.NumProcs = 2
	}
	if c.NumProcs < 1 {
		return fmt.Errorf("scenario: NumProcs %d < 1", c.NumProcs)
	}
	if c.LeadProfile == nil {
		c.LeadProfile = vehicle.SineProfile{Mean: 15, Amp: 5, Period: 7}
	}
	if c.InitSpeed == 0 {
		c.InitSpeed = c.LeadProfile.Speed(0)
	}
	if c.Obstacles == nil {
		c.Obstacles = func(t float64) int {
			if t >= 10 && t < 80 {
				return 23
			}
			return 11
		}
	}
	if c.Longitudinal == (vehicle.LongitudinalConfig{}) {
		// A stiff longitudinal plant: the residual tracking error is
		// then dominated by sensing-to-actuation staleness — the
		// quantity scheduling actually controls — not by plant lag.
		c.Longitudinal = vehicle.LongitudinalConfig{MaxAccel: 6, MaxBrake: 8, ActuatorTau: 0.1, MaxSpeed: 40}
	}
	if c.FollowerGains == (vehicle.CarFollower{}) {
		c.FollowerGains = vehicle.CarFollower{Kv: 5, Kg: 1, StandstillGap: 5, Headway: 1.2}
	}
	if c.RateOverrides == nil {
		c.RateOverrides = map[string]float64{
			"camera_front": 10, "camera_traffic_light": 8,
			"lidar_scan": 10, "radar_scan": 12,
		}
	}
	if c.VehicleStep == 0 {
		c.VehicleStep = 0.01
	}
	if c.VehicleStep <= 0 {
		return fmt.Errorf("scenario: non-positive vehicle step %v", c.VehicleStep)
	}
	return nil
}

// CarFollowingResult aggregates everything the paper reports for one
// car-following run.
type CarFollowingResult struct {
	// Scheme is the scheme that produced this result.
	Scheme Scheme
	// Rec holds the recorded time series: lead_speed, follow_speed,
	// speed_err, dist_err, gap, miss_ratio, throughput, response_ms,
	// discomfort, and for HCPerf schemes gamma and u.
	Rec *trace.Recorder
	// SpeedErrRMS is the RMS speed tracking error (Table II / V).
	SpeedErrRMS float64
	// DistErrRMS is the RMS distance tracking error (Table III / VI).
	DistErrRMS float64
	// Miss holds per-second deadline accounting (Fig. 13(d) / 15(d)).
	Miss *metrics.MissBuckets
	// EngineStats is the engine's final counter snapshot.
	EngineStats engine.Stats
	// Collision reports a gap <= 0 event and its time.
	Collision   bool
	CollisionAt float64
	// MeanResponse is the mean control-command response time (s).
	MeanResponse float64
	// Throughput is control commands per second over the run.
	Throughput float64
	// Overhead is the coordinator's own wall-clock cost per step
	// (HCPerf schemes only; zero-valued otherwise).
	Overhead stats.Accumulator
	// WeaklyHard tracks the (1,10) weakly-hard constraint over *decided*
	// control jobs: at most one late command in any ten that ran.
	// (Cycles suppressed upstream never release a control job and are
	// visible in MaxCommandGap instead.)
	WeaklyHard *metrics.WeaklyHard
	// MaxCommandGap is the longest interval between consecutive control
	// commands (s) after the initial adjustment period (the first quarter
	// of the run, at most 20 s) — the actuator's worst steady-state
	// starvation stretch. (The paper notes HCPerf needs a brief
	// adjustment at start-up and after load changes; the window excludes
	// the start-up transient but includes the complex-scene adaptation.)
	MaxCommandGap float64
}

// RunCarFollowing executes one car-following run and returns its result.
func RunCarFollowing(cfg CarFollowingConfig) (*CarFollowingResult, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	graph, err := dag.ADGraph23()
	if err != nil {
		return nil, err
	}
	if err := applyLoadSteps(graph, "sensor_fusion", cfg.LoadSteps); err != nil {
		return nil, err
	}
	if err := applyRateOverrides(graph, cfg.RateOverrides); err != nil {
		return nil, err
	}
	if cfg.DisableE2E {
		graph.TaskByName("control").E2E = 0
	}
	scheduler, dyn, err := buildScheduler(cfg.Scheme)
	if err != nil {
		return nil, err
	}
	if dyn != nil && cfg.GammaCap > 0 {
		dyn.GammaCap = cfg.GammaCap
	}
	maxAge := 220 * simtime.Millisecond
	switch {
	case cfg.MaxDataAge > 0:
		maxAge = cfg.MaxDataAge
	case cfg.MaxDataAge < 0:
		maxAge = 0
	}

	q := simtime.NewEventQueue()
	rec := trace.NewRecorder()
	noise := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))

	// World state.
	follower, err := vehicle.NewLongitudinal(cfg.Longitudinal)
	if err != nil {
		return nil, err
	}
	follower.Speed = cfg.InitSpeed
	desiredGap0 := cfg.FollowerGains.StandstillGap + cfg.FollowerGains.Headway*cfg.InitSpeed
	lead, err := vehicle.NewLead(cfg.LeadProfile, desiredGap0)
	if err != nil {
		return nil, err
	}

	// Full-resolution world history for stale-perception lookups.
	var histLeadSpeed, histLeadPos, histFolPos, histFolSpeed trace.Series
	recordHistory := func(now float64) error {
		if err := histLeadSpeed.Add(now, lead.Speed()); err != nil {
			return err
		}
		if err := histLeadPos.Add(now, lead.Position); err != nil {
			return err
		}
		if err := histFolSpeed.Add(now, follower.Speed); err != nil {
			return err
		}
		return histFolPos.Add(now, follower.Position)
	}
	if err := recordHistory(0); err != nil {
		return nil, err
	}

	miss, err := metrics.NewMissBuckets(1)
	if err != nil {
		return nil, err
	}
	weaklyHard, err := metrics.NewWeaklyHard(1, 10)
	if err != nil {
		return nil, err
	}
	discomfort, err := metrics.NewDiscomfort(200)
	if err != nil {
		return nil, err
	}
	var collide metrics.CollisionDetector

	gains := cfg.FollowerGains
	perceive := func(cmd engine.ControlCommand) {
		at := float64(cmd.SourceTime)
		leadSpd, ok := histLeadSpeed.At(at)
		if !ok {
			return
		}
		leadPos, _ := histLeadPos.At(at)
		folPos, _ := histFolPos.At(at)
		folSpd, _ := histFolSpeed.At(at)
		if cfg.SpeedNoiseSD > 0 {
			leadSpd += noise.NormFloat64() * cfg.SpeedNoiseSD
		}
		gap := leadPos - folPos
		if cfg.GapNoiseSD > 0 {
			gap += noise.NormFloat64() * cfg.GapNoiseSD
		}
		// The planner computes the command from the pipeline's input
		// snapshot — ego state included — so the full sensing-to-
		// actuation latency sits inside the control loop, exactly the
		// quantity scheduling controls.
		follower.SetAccelCommand(gains.Accel(folSpd, leadSpd, gap))
	}

	// Per-second response-time accounting (Fig. 17(b)) and command-gap
	// tracking.
	var respWindow stats.Accumulator
	lastCmdAt := 0.0
	maxGap := 0.0
	gapWindowStart := math.Min(20, cfg.Duration/4)

	eng, err := engine.New(engine.Config{
		Graph:      graph,
		Scheduler:  scheduler,
		NumProcs:   cfg.NumProcs,
		Queue:      q,
		Seed:       cfg.Seed,
		MaxDataAge: maxAge,
		Tracer:     cfg.Tracer,
		Scene: func(now simtime.Time) exectime.Scene {
			return exectime.Scene{Obstacles: cfg.Obstacles(float64(now)), LoadFactor: 1}
		},
		OnControl: func(cmd engine.ControlCommand) {
			perceive(cmd)
			respWindow.Add(float64(cmd.ResponseTime()))
			if gap := float64(cmd.Completed) - lastCmdAt; gap > maxGap && float64(cmd.Completed) >= gapWindowStart {
				maxGap = gap
			}
			lastCmdAt = float64(cmd.Completed)
		},
		OnJobDecided: func(now simtime.Time, j *sched.Job, missed bool) {
			// Sampling error at exactly t=Duration lands in a
			// fresh bucket; fold it back.
			t := math.Min(float64(now), cfg.Duration-1e-9)
			if err := miss.Note(t, missed); err != nil {
				panic(fmt.Sprintf("scenario: miss bucket: %v", err))
			}
			if j.Task.IsControl {
				weaklyHard.Note(missed)
			}
		},
	})
	if err != nil {
		return nil, err
	}

	trackErr := func(now simtime.Time) float64 {
		if cfg.TrackGapError {
			desired := gains.StandstillGap + gains.Headway*follower.Speed
			return math.Abs(desired - (lead.Position - follower.Position))
		}
		return math.Abs(lead.Speed() - follower.Speed)
	}

	var coord *core.Coordinator
	if cfg.Scheme.IsHCPerf() {
		coord, err = core.New(core.Config{
			Engine:          eng,
			Queue:           q,
			Dynamic:         dyn,
			TrackingError:   trackErr,
			DisableExternal: cfg.Scheme == SchemeHCPerfInternal,
			OnControlPeriod: func(now simtime.Time, e, u, gamma float64) {
				recAdd(rec, "tracking_err_sample", float64(now), e)
				recAdd(rec, "u", float64(now), u)
				recAdd(rec, "gamma", float64(now), gamma)
			},
		})
		if err != nil {
			return nil, err
		}
	}

	// Vehicle dynamics loop.
	if _, err := q.NewTicker(simtime.Time(cfg.VehicleStep), simtime.Duration(cfg.VehicleStep), func(now simtime.Time) {
		if err := lead.Step(cfg.VehicleStep); err != nil {
			panic(fmt.Sprintf("scenario: lead step: %v", err))
		}
		if err := follower.Step(cfg.VehicleStep); err != nil {
			panic(fmt.Sprintf("scenario: follower step: %v", err))
		}
		t := float64(now)
		if err := recordHistory(t); err != nil {
			panic(fmt.Sprintf("scenario: history: %v", err))
		}
		gap := lead.Position - follower.Position
		desired := gains.StandstillGap + gains.Headway*follower.Speed
		collide.Note(t, gap)
		if err := discomfort.Note(t, follower.Accel()); err != nil {
			panic(fmt.Sprintf("scenario: discomfort: %v", err))
		}
		recAdd(rec, "lead_speed", t, lead.Speed())
		recAdd(rec, "follow_speed", t, follower.Speed)
		recAdd(rec, "speed_err", t, lead.Speed()-follower.Speed)
		recAdd(rec, "gap", t, gap)
		recAdd(rec, "dist_err", t, gap-desired)
	}); err != nil {
		return nil, err
	}

	// Once-per-second summary series.
	var lastCmds uint64
	if _, err := q.NewTicker(1, 1, func(now simtime.Time) {
		t := float64(now)
		cmds := eng.Stats().ControlCommands
		recAdd(rec, "throughput", t, float64(cmds-lastCmds))
		lastCmds = cmds
		recAdd(rec, "response_ms", t, respWindow.Mean()*1000)
		respWindow.Reset()
		recAdd(rec, "discomfort", t, discomfort.Index())
		recAdd(rec, "miss_ratio", t, miss.Ratio(int(t)-1))
		recAdd(rec, "queue_len", t, float64(eng.QueueLen()))
		recAdd(rec, "utilization", t, eng.Utilization())
		recAdd(rec, "rate_camera", t, eng.SourceRate(graph.TaskByName("camera_front").ID))
		recAdd(rec, "rate_lidar", t, eng.SourceRate(graph.TaskByName("lidar_scan").ID))
	}); err != nil {
		return nil, err
	}

	if err := eng.Start(); err != nil {
		return nil, err
	}
	if coord != nil {
		if err := coord.Start(); err != nil {
			return nil, err
		}
	}
	if err := q.RunUntil(simtime.Time(cfg.Duration)); err != nil {
		return nil, err
	}

	res := &CarFollowingResult{
		Scheme:      cfg.Scheme,
		Rec:         rec,
		Miss:        miss,
		EngineStats: eng.Stats(),
		Collision:   collide.Collided(),
		CollisionAt: collide.At(),
		WeaklyHard:  weaklyHard,
	}
	res.MaxCommandGap = maxGap
	res.SpeedErrRMS = rec.Series("speed_err").RMS(0, cfg.Duration)
	res.DistErrRMS = rec.Series("dist_err").RMS(0, cfg.Duration)
	st := eng.Stats()
	res.MeanResponse = st.ControlResponse.Mean()
	res.Throughput = float64(st.ControlCommands) / cfg.Duration
	if coord != nil {
		res.Overhead = coord.Overhead()
	}
	return res, nil
}

// applyLoadSteps wraps the named task's execution model in a load profile.
func applyLoadSteps(g *dag.Graph, taskName string, steps []exectime.Step) error {
	if len(steps) == 0 {
		return nil
	}
	t := g.TaskByName(taskName)
	if t == nil {
		return fmt.Errorf("scenario: unknown task %q for load steps", taskName)
	}
	prof, err := exectime.NewProfile(t.Exec, steps)
	if err != nil {
		return err
	}
	t.Exec = prof
	return nil
}

// applyRateOverrides sets the initial rates of source tasks by name.
func applyRateOverrides(g *dag.Graph, overrides map[string]float64) error {
	for name, r := range overrides {
		t := g.TaskByName(name)
		if t == nil {
			return fmt.Errorf("scenario: unknown task %q in rate overrides", name)
		}
		if t.MaxRate > 0 && (r < t.MinRate || r > t.MaxRate) {
			return fmt.Errorf("scenario: rate %v for %q outside [%v,%v]", r, name, t.MinRate, t.MaxRate)
		}
		t.Rate = r
	}
	return g.Validate()
}

// recAdd appends to a recorder series; recorder series only ever advance
// with simulation time, so failures indicate harness bugs.
func recAdd(rec *trace.Recorder, name string, t, v float64) {
	if err := rec.Add(name, t, v); err != nil {
		panic(fmt.Sprintf("scenario: record %s: %v", name, err))
	}
}
