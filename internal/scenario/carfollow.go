package scenario

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"hcperf/internal/core"
	"hcperf/internal/engine"
	"hcperf/internal/lifecycle"
	"hcperf/internal/metrics"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
	"hcperf/internal/stats"
	"hcperf/internal/trace"
	"hcperf/internal/vehicle"
)

// CarFollowingConfig parameterises the car-following scenario (paper
// §VII-B1, §VII-C and the hardware study §VII-B3). Zero fields take the
// defaults of the simulation evaluation: a sine-speed lead (10-20 m/s,
// 7 s period), the 23-task graph on 2 processors and the complex-scene
// episode over t ∈ [10 s, 80 s) that doubles the sensor-fusion time
// (obstacles 11 → 23).
type CarFollowingConfig struct {
	// Scheme selects the scheduling scheme.
	Scheme Scheme
	// Seed drives all scenario randomness.
	Seed int64
	// Duration is the simulated time span in seconds (default 90).
	Duration float64
	// NumProcs is the processor count (default 4).
	NumProcs int
	// LeadProfile is the lead vehicle's speed profile (default sine).
	LeadProfile vehicle.SpeedProfile
	// InitSpeed is the follower's starting speed (default: profile
	// speed at t = 0).
	InitSpeed float64
	// InitGap is the initial gap to the lead vehicle in metres (default:
	// the desired gap at InitSpeed). Fleet platoons use it to set the
	// initial inter-vehicle spacing.
	InitGap float64
	// Loads optionally multiply task execution times over time windows,
	// on top of the obstacle profile (default none).
	Loads []TaskLoad
	// Obstacles maps time to detected-obstacle count. The default is
	// the paper's complex-scene episode: 11 obstacles normally (fusion
	// ≈ 20 ms) and 23 during t ∈ [10 s, 80 s) (fusion ≈ 40 ms, and the
	// obstacle-sensitive detection/tracking tasks inflate with it).
	Obstacles func(t float64) int
	// SpeedNoiseSD adds Gaussian noise to the perceived lead speed
	// (m/s; hardware emulation).
	SpeedNoiseSD float64
	// GapNoiseSD adds Gaussian noise to the perceived gap (m).
	GapNoiseSD float64
	// Longitudinal bounds the follower (default passenger car).
	Longitudinal vehicle.LongitudinalConfig
	// FollowerGains tunes the car-following law (default gains).
	FollowerGains vehicle.CarFollower
	// RateOverrides sets initial source rates by task name; each must
	// lie inside the task's allowable range.
	RateOverrides map[string]float64
	// VehicleStep is the dynamics integration step (default 10 ms).
	VehicleStep float64
	// SampleRate is the summary-series sample frequency in Hz
	// (default 1).
	SampleRate float64
	// Tracer optionally receives the engine's structured lifecycle
	// event stream (per-job timelines).
	Tracer lifecycle.Tracer
	// TrackGapError makes the coordinator track the gap error instead
	// of the speed error (the Fig. 16/17 responsiveness study).
	TrackGapError bool
	// GammaCap overrides the Dynamic scheduler's γ cap for ablation
	// studies (0 = default).
	GammaCap float64
	// DisableE2E removes the control task's explicit end-to-end deadline
	// (ablation: the external coordinator loses its latency signal).
	DisableE2E bool
	// MaxDataAge overrides the input-age validity bound: 0 = default
	// (DefaultMaxDataAge, 220 ms), negative = disabled (ablation:
	// auxiliary-task starvation becomes free).
	MaxDataAge simtime.Duration
	// Tunables sets the coordinator parameter set (γ cap, MFC window,
	// adapter gains, rate-band scales). Zero fields take the paper
	// defaults (core.DefaultTunables); the search subsystem explores this
	// space. A non-zero GammaCap field above wins over Tunables.GammaCap.
	Tunables core.Tunables
}

// DefaultCarFollowingObstacles is the paper's complex-scene episode — 11
// obstacles normally, 23 during t ∈ [10 s, 80 s) — the obstacle field a
// zero-valued CarFollowingConfig runs over. It is exported so the fleet
// layer can wrap the same shared field with per-follower coupling terms.
func DefaultCarFollowingObstacles(t float64) int {
	if t >= 10 && t < 80 {
		return 23
	}
	return 11
}

func (c *CarFollowingConfig) applyDefaults() error {
	if c.Scheme == 0 {
		return errors.New("scenario: no scheme selected")
	}
	if c.Duration == 0 {
		c.Duration = 90
	}
	if c.Duration <= 0 {
		return fmt.Errorf("scenario: non-positive duration %v", c.Duration)
	}
	if c.NumProcs == 0 {
		c.NumProcs = 2
	}
	if c.NumProcs < 1 {
		return fmt.Errorf("scenario: NumProcs %d < 1", c.NumProcs)
	}
	if c.LeadProfile == nil {
		c.LeadProfile = vehicle.SineProfile{Mean: 15, Amp: 5, Period: 7}
	}
	if c.InitSpeed == 0 {
		c.InitSpeed = c.LeadProfile.Speed(0)
	}
	if c.Obstacles == nil {
		c.Obstacles = DefaultCarFollowingObstacles
	}
	if c.Longitudinal == (vehicle.LongitudinalConfig{}) {
		// A stiff longitudinal plant: the residual tracking error is
		// then dominated by sensing-to-actuation staleness — the
		// quantity scheduling actually controls — not by plant lag.
		c.Longitudinal = vehicle.LongitudinalConfig{MaxAccel: 6, MaxBrake: 8, ActuatorTau: 0.1, MaxSpeed: 40}
	}
	if c.FollowerGains == (vehicle.CarFollower{}) {
		c.FollowerGains = vehicle.CarFollower{Kv: 5, Kg: 1, StandstillGap: 5, Headway: 1.2}
	}
	if c.RateOverrides == nil {
		c.RateOverrides = map[string]float64{
			"camera_front": 10, "camera_traffic_light": 8,
			"lidar_scan": 10, "radar_scan": 12,
		}
	}
	if c.VehicleStep == 0 {
		c.VehicleStep = 0.01
	}
	if c.VehicleStep <= 0 {
		return fmt.Errorf("scenario: non-positive vehicle step %v", c.VehicleStep)
	}
	if c.InitGap < 0 {
		return fmt.Errorf("scenario: negative initial gap %v", c.InitGap)
	}
	return nil
}

// loop maps the config onto the shared closed-loop kernel.
func (c *CarFollowingConfig) loop() loopConfig {
	return loopConfig{
		Graph:         GraphAD23,
		Scheme:        c.Scheme,
		Seed:          c.Seed,
		Duration:      c.Duration,
		NumProcs:      c.NumProcs,
		VehicleStep:   c.VehicleStep,
		SampleRate:    c.SampleRate,
		MaxDataAge:    c.MaxDataAge,
		GammaCap:      c.GammaCap,
		DisableE2E:    c.DisableE2E,
		Loads:         c.Loads,
		RateOverrides: c.RateOverrides,
		Obstacles:     c.Obstacles,
		Tracer:        c.Tracer,
		Tunables:      c.Tunables,
	}
}

// CarFollowingResult aggregates everything the paper reports for one
// car-following run.
type CarFollowingResult struct {
	// Scheme is the scheme that produced this result.
	Scheme Scheme
	// Rec holds the recorded time series: lead_speed, follow_speed,
	// speed_err, dist_err, gap, miss_ratio, throughput, response_ms,
	// discomfort, and for HCPerf schemes gamma and u.
	Rec *trace.Recorder
	// SpeedErrRMS is the RMS speed tracking error (Table II / V).
	SpeedErrRMS float64
	// DistErrRMS is the RMS distance tracking error (Table III / VI).
	DistErrRMS float64
	// Miss holds per-second deadline accounting (Fig. 13(d) / 15(d)).
	Miss *metrics.MissBuckets
	// EngineStats is the engine's final counter snapshot.
	EngineStats engine.Stats
	// Collision reports a gap <= 0 event and its time.
	Collision   bool
	CollisionAt float64
	// MeanResponse is the mean control-command response time (s).
	MeanResponse float64
	// Throughput is control commands per second over the run.
	Throughput float64
	// Overhead is the coordinator's own wall-clock cost per step
	// (HCPerf schemes only; zero-valued otherwise).
	Overhead stats.Accumulator
	// WeaklyHard tracks the (1,10) weakly-hard constraint over *decided*
	// control jobs: at most one late command in any ten that ran.
	// (Cycles suppressed upstream never release a control job and are
	// visible in MaxCommandGap instead.)
	WeaklyHard *metrics.WeaklyHard
	// MaxCommandGap is the longest interval between consecutive control
	// commands (s) after the initial adjustment period (the first quarter
	// of the run, at most 20 s) — the actuator's worst steady-state
	// starvation stretch. (The paper notes HCPerf needs a brief
	// adjustment at start-up and after load changes; the window excludes
	// the start-up transient but includes the complex-scene adaptation.)
	MaxCommandGap float64
}

// carFollowPlant is the longitudinal car-following world: a lead vehicle
// on a speed profile and a follower driven by stale pipeline outputs.
type carFollowPlant struct {
	cfg   *CarFollowingConfig
	rec   *trace.Recorder
	noise *rand.Rand
	gains vehicle.CarFollower

	follower *vehicle.Longitudinal
	lead     *vehicle.Lead

	// Full-resolution world history for stale-perception lookups.
	histLeadSpeed, histLeadPos, histFolPos, histFolSpeed trace.Series

	weaklyHard *metrics.WeaklyHard
	discomfort *metrics.Discomfort
	collide    metrics.CollisionDetector

	// Per-second response-time accounting (Fig. 17(b)) and command-gap
	// tracking.
	respWindow     stats.Accumulator
	lastCmdAt      float64
	maxGap         float64
	gapWindowStart float64
	lastCmds       uint64
}

func newCarFollowPlant(cfg *CarFollowingConfig, rec *trace.Recorder) (*carFollowPlant, error) {
	p := &carFollowPlant{
		cfg:            cfg,
		rec:            rec,
		noise:          rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
		gains:          cfg.FollowerGains,
		gapWindowStart: math.Min(20, cfg.Duration/4),
	}
	var err error
	if p.follower, err = vehicle.NewLongitudinal(cfg.Longitudinal); err != nil {
		return nil, err
	}
	p.follower.Speed = cfg.InitSpeed
	gap0 := cfg.InitGap
	if gap0 == 0 {
		gap0 = cfg.FollowerGains.StandstillGap + cfg.FollowerGains.Headway*cfg.InitSpeed
	}
	if p.lead, err = vehicle.NewLead(cfg.LeadProfile, gap0); err != nil {
		return nil, err
	}
	if err := p.recordHistory(0); err != nil {
		return nil, err
	}
	if p.weaklyHard, err = metrics.NewWeaklyHard(1, 10); err != nil {
		return nil, err
	}
	if p.discomfort, err = metrics.NewDiscomfort(200); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *carFollowPlant) recordHistory(now float64) error {
	if err := p.histLeadSpeed.Add(now, p.lead.Speed()); err != nil {
		return err
	}
	if err := p.histLeadPos.Add(now, p.lead.Position); err != nil {
		return err
	}
	if err := p.histFolSpeed.Add(now, p.follower.Speed); err != nil {
		return err
	}
	return p.histFolPos.Add(now, p.follower.Position)
}

func (p *carFollowPlant) Perceive(cmd engine.ControlCommand) {
	at := float64(cmd.SourceTime)
	if leadSpd, ok := p.histLeadSpeed.At(at); ok {
		leadPos, _ := p.histLeadPos.At(at)
		folPos, _ := p.histFolPos.At(at)
		folSpd, _ := p.histFolSpeed.At(at)
		if p.cfg.SpeedNoiseSD > 0 {
			leadSpd += p.noise.NormFloat64() * p.cfg.SpeedNoiseSD
		}
		gap := leadPos - folPos
		if p.cfg.GapNoiseSD > 0 {
			gap += p.noise.NormFloat64() * p.cfg.GapNoiseSD
		}
		// The planner computes the command from the pipeline's input
		// snapshot — ego state included — so the full sensing-to-
		// actuation latency sits inside the control loop, exactly the
		// quantity scheduling controls.
		p.follower.SetAccelCommand(p.gains.Accel(folSpd, leadSpd, gap))
	}
	p.respWindow.Add(float64(cmd.ResponseTime()))
	if gap := float64(cmd.Completed) - p.lastCmdAt; gap > p.maxGap && float64(cmd.Completed) >= p.gapWindowStart {
		p.maxGap = gap
	}
	p.lastCmdAt = float64(cmd.Completed)
}

func (p *carFollowPlant) JobDecided(j *sched.Job, missed bool) {
	if j.Task.IsControl {
		p.weaklyHard.Note(missed)
	}
}

func (p *carFollowPlant) TrackingError(simtime.Time) float64 {
	if p.cfg.TrackGapError {
		desired := p.gains.StandstillGap + p.gains.Headway*p.follower.Speed
		return math.Abs(desired - (p.lead.Position - p.follower.Position))
	}
	return math.Abs(p.lead.Speed() - p.follower.Speed)
}

func (p *carFollowPlant) CoordSample(now simtime.Time, e, u, gamma float64) {
	recAdd(p.rec, "tracking_err_sample", float64(now), e)
	recAdd(p.rec, "u", float64(now), u)
	recAdd(p.rec, "gamma", float64(now), gamma)
}

func (p *carFollowPlant) Step(now float64) {
	step := p.cfg.VehicleStep
	if err := p.lead.Step(step); err != nil {
		panic(fmt.Sprintf("scenario: lead step: %v", err))
	}
	if err := p.follower.Step(step); err != nil {
		panic(fmt.Sprintf("scenario: follower step: %v", err))
	}
	if err := p.recordHistory(now); err != nil {
		panic(fmt.Sprintf("scenario: history: %v", err))
	}
	gap := p.lead.Position - p.follower.Position
	desired := p.gains.StandstillGap + p.gains.Headway*p.follower.Speed
	p.collide.Note(now, gap)
	if err := p.discomfort.Note(now, p.follower.Accel()); err != nil {
		panic(fmt.Sprintf("scenario: discomfort: %v", err))
	}
	recAdd(p.rec, "lead_speed", now, p.lead.Speed())
	recAdd(p.rec, "follow_speed", now, p.follower.Speed)
	recAdd(p.rec, "speed_err", now, p.lead.Speed()-p.follower.Speed)
	recAdd(p.rec, "gap", now, gap)
	recAdd(p.rec, "dist_err", now, gap-desired)
}

func (p *carFollowPlant) Sample(t float64, env *Env) {
	cmds := env.Eng.Stats().ControlCommands
	recAdd(p.rec, "throughput", t, float64(cmds-p.lastCmds))
	p.lastCmds = cmds
	recAdd(p.rec, "response_ms", t, p.respWindow.Mean()*1000)
	p.respWindow.Reset()
	recAdd(p.rec, "discomfort", t, p.discomfort.Index())
	recAdd(p.rec, "miss_ratio", t, env.Miss.Ratio(int(t)-1))
	recAdd(p.rec, "queue_len", t, float64(env.Eng.QueueLen()))
	recAdd(p.rec, "utilization", t, env.Eng.Utilization())
	recAdd(p.rec, "rate_camera", t, env.Eng.SourceRate(env.Graph.TaskByName("camera_front").ID))
	recAdd(p.rec, "rate_lidar", t, env.Eng.SourceRate(env.Graph.TaskByName("lidar_scan").ID))
}

// CarFollowingRun is one car-following closed loop attached to an external
// event queue but not yet run to completion. The fleet layer attaches many
// of these to one shared queue; the live accessors expose exactly the state
// neighbouring vehicles may observe (V2X-style coupling), and Finish
// collects the result once the owning queue has reached the run's duration.
type CarFollowingRun struct {
	cfg CarFollowingConfig
	a   *attachedLoop
	p   *carFollowPlant
}

// AttachCarFollowing validates cfg, applies its defaults and wires one
// car-following closed loop onto q without running it. The caller owns the
// queue and decides how far to advance it; the attached loop's events are
// interleaved deterministically with everything else scheduled on q.
func AttachCarFollowing(q *simtime.EventQueue, cfg CarFollowingConfig) (*CarFollowingRun, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	var p *carFollowPlant
	a, err := attachLoop(q, cfg.loop(), func(rec *trace.Recorder) (Plant, error) {
		var err error
		p, err = newCarFollowPlant(&cfg, rec)
		return p, err
	})
	if err != nil {
		return nil, err
	}
	return &CarFollowingRun{cfg: cfg, a: a, p: p}, nil
}

// Duration returns the run's defaulted duration in seconds — how far the
// owning queue must be advanced before Finish.
func (r *CarFollowingRun) Duration() float64 { return r.cfg.Duration }

// FollowerSpeed returns the follower's current speed (m/s).
func (r *CarFollowingRun) FollowerSpeed() float64 { return r.p.follower.Speed }

// FollowerAccel returns the follower's current achieved acceleration
// (m/s^2, negative while braking) — the signal platoon coupling turns into
// follower-side obstacles.
func (r *CarFollowingRun) FollowerAccel() float64 { return r.p.follower.Accel() }

// Gap returns the current gap to the lead vehicle (m).
func (r *CarFollowingRun) Gap() float64 { return r.p.lead.Position - r.p.follower.Position }

// TrackingError returns the plant's current tracking error — the quantity
// the coordinator regulates and the fleet layer aggregates.
func (r *CarFollowingRun) TrackingError(now simtime.Time) float64 { return r.p.TrackingError(now) }

// Rec returns the run's series recorder (live; fully populated only after
// the owning queue reached Duration).
func (r *CarFollowingRun) Rec() *trace.Recorder { return r.a.rec }

// Finish collects the run's result. It must be called only after the owning
// queue has been advanced to at least Duration.
func (r *CarFollowingRun) Finish() *CarFollowingResult {
	out := r.a.finish()
	p, cfg := r.p, &r.cfg
	res := &CarFollowingResult{
		Scheme:        cfg.Scheme,
		Rec:           out.Rec,
		Miss:          out.Miss,
		EngineStats:   out.EngineStats,
		Collision:     p.collide.Collided(),
		CollisionAt:   p.collide.At(),
		WeaklyHard:    p.weaklyHard,
		MaxCommandGap: p.maxGap,
		Overhead:      out.Overhead,
	}
	res.SpeedErrRMS = out.Rec.Series("speed_err").RMS(0, cfg.Duration)
	res.DistErrRMS = out.Rec.Series("dist_err").RMS(0, cfg.Duration)
	res.MeanResponse = out.EngineStats.ControlResponse.Mean()
	res.Throughput = float64(out.EngineStats.ControlCommands) / cfg.Duration
	return res
}

// RunCarFollowing executes one car-following run and returns its result.
func RunCarFollowing(cfg CarFollowingConfig) (*CarFollowingResult, error) {
	q := simtime.NewEventQueue()
	r, err := AttachCarFollowing(q, cfg)
	if err != nil {
		return nil, err
	}
	if err := q.RunUntil(simtime.Time(r.cfg.Duration)); err != nil {
		return nil, err
	}
	return r.Finish(), nil
}
