// Package scenario wires the full HCPerf evaluation stack together: task
// graphs, execution-time profiles, schedulers, the vehicle simulator and
// (for the HCPerf schemes) the hierarchical coordinator, reproducing the
// paper's driving scenarios — car following, lane keeping, the motivation
// example and the traffic-jam responsiveness study.
package scenario

import (
	"fmt"

	"hcperf/internal/sched"
)

// Scheme identifies a scheduling scheme under evaluation (paper §VII-A4).
type Scheme int

// The five schemes of the evaluation plus the Fig. 18 ablation.
const (
	// SchemeHPF is High-Priority-First static scheduling.
	SchemeHPF Scheme = iota + 1
	// SchemeEDF is Earliest-Deadline-First.
	SchemeEDF
	// SchemeEDFVD is EDF with virtual deadlines for high-criticality
	// tasks.
	SchemeEDFVD
	// SchemeApollo is the state-of-the-practice: static processor
	// binding plus static priority.
	SchemeApollo
	// SchemeHCPerf is the full framework: internal + external
	// coordinators.
	SchemeHCPerf
	// SchemeHCPerfInternal is the Fig. 18 ablation: internal coordinator
	// only (no Task Rate Adapter).
	SchemeHCPerfInternal
)

// String implements fmt.Stringer with the paper's labels.
func (s Scheme) String() string {
	switch s {
	case SchemeHPF:
		return "HPF"
	case SchemeEDF:
		return "EDF"
	case SchemeEDFVD:
		return "EDF-VD"
	case SchemeApollo:
		return "Apollo"
	case SchemeHCPerf:
		return "HCPerf"
	case SchemeHCPerfInternal:
		return "HCPerf-Internal"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// ParseScheme resolves a scheme's CLI/API name. It accepts the lowercase
// spellings the CLIs documented ("edfvd" and "edf-vd" both parse) and is
// the single parser hcperf-sim and the serving layer share.
func ParseScheme(name string) (Scheme, error) {
	switch name {
	case "hpf":
		return SchemeHPF, nil
	case "edf":
		return SchemeEDF, nil
	case "edfvd", "edf-vd":
		return SchemeEDFVD, nil
	case "apollo":
		return SchemeApollo, nil
	case "hcperf":
		return SchemeHCPerf, nil
	case "hcperf-internal":
		return SchemeHCPerfInternal, nil
	default:
		return 0, fmt.Errorf("scenario: unknown scheme %q", name)
	}
}

// BaselineSchemes returns the four baselines in the paper's table order.
func BaselineSchemes() []Scheme {
	return []Scheme{SchemeHPF, SchemeEDF, SchemeEDFVD, SchemeApollo}
}

// AllSchemes returns the baselines plus full HCPerf, in table order.
func AllSchemes() []Scheme {
	return append(BaselineSchemes(), SchemeHCPerf)
}

// IsHCPerf reports whether the scheme needs the hierarchical coordinator.
func (s Scheme) IsHCPerf() bool { return s == SchemeHCPerf || s == SchemeHCPerfInternal }

// EDFVDScale is the virtual-deadline scaling factor used for EDF-VD.
const EDFVDScale = 0.75

// buildScheduler constructs the scheduler for a scheme. For HCPerf schemes
// the returned *sched.Dynamic is non-nil and must be handed to the
// coordinator.
func buildScheduler(s Scheme) (sched.Scheduler, *sched.Dynamic, error) {
	switch s {
	case SchemeHPF:
		return sched.HPF{}, nil, nil
	case SchemeEDF:
		return sched.EDF{}, nil, nil
	case SchemeEDFVD:
		return sched.NewEDFVD(EDFVDScale), nil, nil
	case SchemeApollo:
		return sched.Apollo{}, nil, nil
	case SchemeHCPerf, SchemeHCPerfInternal:
		dyn := sched.NewDynamic(0)
		return dyn, dyn, nil
	default:
		return nil, nil, fmt.Errorf("scenario: unknown scheme %d", int(s))
	}
}
