package scenario

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"hcperf/internal/core"
	"hcperf/internal/dag"
	"hcperf/internal/engine"
	"hcperf/internal/exectime"
	"hcperf/internal/lifecycle"
	"hcperf/internal/metrics"
	"hcperf/internal/sched"
	"hcperf/internal/simtime"
	"hcperf/internal/trace"
	"hcperf/internal/vehicle"
)

// MotivationConfig parameterises the paper's §II motivation experiment
// (Figs. 1-4): car A follows human-driven car B on an urban road at
// 10 m/s; at t = 5 s car B sees a red light 200 m ahead and brakes to a
// stop while the intersection scene fills with waiting vehicles and
// pedestrians, inflating the O(n³) sensor-fusion time. Under Apollo's
// static-priority scheduling the deadline-miss ratio climbs and car A's
// speed updates become sluggish until the two cars collide.
type MotivationConfig struct {
	// Scheme selects the scheduling scheme (the paper uses Apollo; any
	// scheme may be substituted to test whether it avoids the crash).
	Scheme Scheme
	// Seed drives all scenario randomness.
	Seed int64
	// Duration is the simulated span in seconds (default 42: at the
	// paper's crowded intersection the fusion job alone exceeds any
	// feasible budget, so the sensing-to-control pipeline stalls under
	// every scheduling policy — the motivation experiment demonstrates
	// the failure, as in the paper, rather than a scheme that avoids
	// it).
	Duration float64
	// NumProcs is the processor count (default 2).
	NumProcs int
	// BrakeStart is when car B begins braking (default 5 s).
	BrakeStart float64
	// BrakeDecel is car B's deceleration magnitude (default 0.45 m/s²,
	// putting the stop just past the paper's collision instant).
	BrakeDecel float64
	// MaxObstacles is the intersection's obstacle count once car A is
	// close to the light (default 42: at the
	// paper's crowded intersection the fusion job alone exceeds any
	// feasible budget, so the sensing-to-control pipeline stalls under
	// every scheduling policy — the motivation experiment demonstrates
	// the failure, as in the paper, rather than a scheme that avoids
	// it).
	MaxObstacles int
	// VehicleStep is the dynamics integration step (default 10 ms).
	VehicleStep float64
	// Tracer optionally receives the engine's structured lifecycle
	// event stream (per-job timelines).
	Tracer lifecycle.Tracer
}

func (c *MotivationConfig) applyDefaults() error {
	if c.Scheme == 0 {
		return errors.New("scenario: no scheme selected")
	}
	if c.Duration == 0 {
		c.Duration = 30
	}
	if c.Duration <= 0 {
		return fmt.Errorf("scenario: non-positive duration %v", c.Duration)
	}
	if c.NumProcs == 0 {
		c.NumProcs = 2
	}
	if c.NumProcs < 1 {
		return fmt.Errorf("scenario: NumProcs %d < 1", c.NumProcs)
	}
	if c.BrakeStart == 0 {
		c.BrakeStart = 5
	}
	if c.BrakeDecel == 0 {
		c.BrakeDecel = 0.5
	}
	if c.BrakeDecel <= 0 {
		return fmt.Errorf("scenario: non-positive brake decel %v", c.BrakeDecel)
	}
	if c.MaxObstacles == 0 {
		c.MaxObstacles = 42
	}
	if c.MaxObstacles < 1 {
		return fmt.Errorf("scenario: MaxObstacles %d < 1", c.MaxObstacles)
	}
	if c.VehicleStep == 0 {
		c.VehicleStep = 0.01
	}
	if c.VehicleStep <= 0 {
		return fmt.Errorf("scenario: non-positive vehicle step %v", c.VehicleStep)
	}
	return nil
}

// MotivationResult aggregates the motivation-experiment outcomes.
type MotivationResult struct {
	// Scheme is the scheme that produced this result.
	Scheme Scheme
	// Rec holds lead_speed, follow_speed, gap, speed_diff and miss_ratio
	// series (Fig. 4's two panels).
	Rec *trace.Recorder
	// Miss holds per-second deadline accounting (Fig. 4(a)).
	Miss *metrics.MissBuckets
	// Collision reports whether the cars collided, and when (Fig. 4(b):
	// the paper's Apollo run collides at t = 23.4 s).
	Collision   bool
	CollisionAt float64
	// MinGap is the closest approach between the two cars.
	MinGap float64
	// EngineStats is the engine's final counter snapshot.
	EngineStats engine.Stats
}

// RunMotivation executes the red-light scenario on the Fig. 2 task graph.
func RunMotivation(cfg MotivationConfig) (*MotivationResult, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	graph, err := dag.MotivationGraph()
	if err != nil {
		return nil, err
	}
	scheduler, dyn, err := buildScheduler(cfg.Scheme)
	if err != nil {
		return nil, err
	}

	q := simtime.NewEventQueue()
	rec := trace.NewRecorder()

	const initSpeed = 10.0
	gains := vehicle.CarFollower{Kv: 5, Kg: 1, StandstillGap: 5, Headway: 1.2}
	long := vehicle.LongitudinalConfig{MaxAccel: 6, MaxBrake: 8, ActuatorTau: 0.1, MaxSpeed: 40}
	follower, err := vehicle.NewLongitudinal(long)
	if err != nil {
		return nil, err
	}
	follower.Speed = initSpeed

	// Car B: constant 10 m/s, then brakes to a stop from BrakeStart.
	stopAt := cfg.BrakeStart + initSpeed/cfg.BrakeDecel
	leadProfile, err := vehicle.NewPiecewiseProfile([]vehicle.PhasePoint{
		{T: 0, Speed: initSpeed},
		{T: cfg.BrakeStart, Speed: initSpeed},
		{T: stopAt, Speed: 0},
	})
	if err != nil {
		return nil, err
	}
	lead, err := vehicle.NewLead(leadProfile, gains.StandstillGap+gains.Headway*initSpeed)
	if err != nil {
		return nil, err
	}

	// Obstacle count ramps from quiet-road to crowded intersection as
	// car A approaches the light.
	obstacles := func(t float64) int {
		const rampLen = 12.0
		switch {
		case t < cfg.BrakeStart:
			return 8
		case t < cfg.BrakeStart+rampLen:
			frac := (t - cfg.BrakeStart) / rampLen
			return 8 + int(frac*float64(cfg.MaxObstacles-8))
		default:
			return cfg.MaxObstacles
		}
	}

	var histLeadSpeed, histLeadPos, histFolPos, histFolSpeed trace.Series
	recordHistory := func(now float64) error {
		if err := histLeadSpeed.Add(now, lead.Speed()); err != nil {
			return err
		}
		if err := histLeadPos.Add(now, lead.Position); err != nil {
			return err
		}
		if err := histFolSpeed.Add(now, follower.Speed); err != nil {
			return err
		}
		return histFolPos.Add(now, follower.Position)
	}
	if err := recordHistory(0); err != nil {
		return nil, err
	}

	miss, err := metrics.NewMissBuckets(1)
	if err != nil {
		return nil, err
	}
	var collide metrics.CollisionDetector

	// The RNG is reserved for future noise hooks; motivation runs are
	// deterministic beyond execution-time sampling inside the engine.
	_ = rand.New(rand.NewSource(cfg.Seed))

	lastCmdAt := 0.0
	perceive := func(cmd engine.ControlCommand) {
		at := float64(cmd.SourceTime)
		leadSpd, ok := histLeadSpeed.At(at)
		if !ok {
			return
		}
		leadPos, _ := histLeadPos.At(at)
		folPos, _ := histFolPos.At(at)
		folSpd, _ := histFolSpeed.At(at)
		follower.SetAccelCommand(gains.Accel(folSpd, leadSpd, leadPos-folPos))
		lastCmdAt = float64(cmd.Completed)
	}

	eng, err := engine.New(engine.Config{
		Graph:      graph,
		Scheduler:  scheduler,
		NumProcs:   cfg.NumProcs,
		Queue:      q,
		Seed:       cfg.Seed,
		MaxDataAge: 220 * simtime.Millisecond,
		Tracer:     cfg.Tracer,
		Scene: func(now simtime.Time) exectime.Scene {
			return exectime.Scene{Obstacles: obstacles(float64(now)), LoadFactor: 1}
		},
		OnControl: func(cmd engine.ControlCommand) { perceive(cmd) },
		OnJobDecided: func(now simtime.Time, _ *sched.Job, missed bool) {
			t := math.Min(float64(now), cfg.Duration-1e-9)
			if err := miss.Note(t, missed); err != nil {
				panic(fmt.Sprintf("scenario: miss bucket: %v", err))
			}
		},
	})
	if err != nil {
		return nil, err
	}

	var coord *core.Coordinator
	if cfg.Scheme.IsHCPerf() {
		coord, err = core.New(core.Config{
			Engine:  eng,
			Queue:   q,
			Dynamic: dyn,
			TrackingError: func(simtime.Time) float64 {
				return math.Abs(lead.Speed() - follower.Speed)
			},
			DisableExternal: cfg.Scheme == SchemeHCPerfInternal,
		})
		if err != nil {
			return nil, err
		}
	}

	minGap := math.Inf(1)
	if _, err := q.NewTicker(simtime.Time(cfg.VehicleStep), simtime.Duration(cfg.VehicleStep), func(now simtime.Time) {
		if err := lead.Step(cfg.VehicleStep); err != nil {
			panic(fmt.Sprintf("scenario: lead step: %v", err))
		}
		if err := follower.Step(cfg.VehicleStep); err != nil {
			panic(fmt.Sprintf("scenario: follower step: %v", err))
		}
		t := float64(now)
		// Drive-by-wire watchdog: without a fresh control command the
		// actuators release to neutral and the car coasts — exactly how
		// a stalled pipeline turns into the paper's collision.
		if t-lastCmdAt > 0.5 {
			follower.SetAccelCommand(0)
		}
		if err := recordHistory(t); err != nil {
			panic(fmt.Sprintf("scenario: history: %v", err))
		}
		gap := lead.Position - follower.Position
		if gap < minGap {
			minGap = gap
		}
		collide.Note(t, gap)
		recAdd(rec, "lead_speed", t, lead.Speed())
		recAdd(rec, "follow_speed", t, follower.Speed)
		recAdd(rec, "speed_diff", t, follower.Speed-lead.Speed())
		recAdd(rec, "gap", t, gap)
	}); err != nil {
		return nil, err
	}

	if _, err := q.NewTicker(1, 1, func(now simtime.Time) {
		t := float64(now)
		recAdd(rec, "miss_ratio", t, miss.Ratio(int(t)-1))
	}); err != nil {
		return nil, err
	}

	if err := eng.Start(); err != nil {
		return nil, err
	}
	if coord != nil {
		if err := coord.Start(); err != nil {
			return nil, err
		}
	}
	if err := q.RunUntil(simtime.Time(cfg.Duration)); err != nil {
		return nil, err
	}

	return &MotivationResult{
		Scheme:      cfg.Scheme,
		Rec:         rec,
		Miss:        miss,
		Collision:   collide.Collided(),
		CollisionAt: collide.At(),
		MinGap:      minGap,
		EngineStats: eng.Stats(),
	}, nil
}
