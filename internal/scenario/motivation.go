package scenario

import (
	"errors"
	"fmt"
	"math"

	"hcperf/internal/engine"
	"hcperf/internal/lifecycle"
	"hcperf/internal/metrics"
	"hcperf/internal/simtime"
	"hcperf/internal/trace"
	"hcperf/internal/vehicle"
)

// MotivationConfig parameterises the paper's §II motivation experiment
// (Figs. 1-4): car A follows human-driven car B on an urban road at
// 10 m/s; at t = 5 s car B sees a red light 200 m ahead and brakes to a
// stop while the intersection scene fills with waiting vehicles and
// pedestrians, inflating the O(n³) sensor-fusion time. Under Apollo's
// static-priority scheduling the deadline-miss ratio climbs and car A's
// speed updates become sluggish until the two cars collide.
type MotivationConfig struct {
	// Scheme selects the scheduling scheme (the paper uses Apollo; any
	// scheme may be substituted to test whether it avoids the crash).
	Scheme Scheme
	// Seed drives all scenario randomness.
	Seed int64
	// Duration is the simulated span in seconds (default 42: at the
	// paper's crowded intersection the fusion job alone exceeds any
	// feasible budget, so the sensing-to-control pipeline stalls under
	// every scheduling policy — the motivation experiment demonstrates
	// the failure, as in the paper, rather than a scheme that avoids
	// it).
	Duration float64
	// NumProcs is the processor count (default 2).
	NumProcs int
	// BrakeStart is when car B begins braking (default 5 s).
	BrakeStart float64
	// BrakeDecel is car B's deceleration magnitude (default 0.45 m/s²,
	// putting the stop just past the paper's collision instant).
	BrakeDecel float64
	// MaxObstacles is the intersection's obstacle count once car A is
	// close to the light (default 42: at the
	// paper's crowded intersection the fusion job alone exceeds any
	// feasible budget, so the sensing-to-control pipeline stalls under
	// every scheduling policy — the motivation experiment demonstrates
	// the failure, as in the paper, rather than a scheme that avoids
	// it).
	MaxObstacles int
	// VehicleStep is the dynamics integration step (default 10 ms).
	VehicleStep float64
	// SampleRate is the summary-series sample frequency in Hz
	// (default 1).
	SampleRate float64
	// MaxDataAge overrides the input-age validity bound: 0 = default
	// (DefaultMaxDataAge, 220 ms), negative = disabled.
	MaxDataAge simtime.Duration
	// Tracer optionally receives the engine's structured lifecycle
	// event stream (per-job timelines).
	Tracer lifecycle.Tracer
}

func (c *MotivationConfig) applyDefaults() error {
	if c.Scheme == 0 {
		return errors.New("scenario: no scheme selected")
	}
	if c.Duration == 0 {
		c.Duration = 30
	}
	if c.Duration <= 0 {
		return fmt.Errorf("scenario: non-positive duration %v", c.Duration)
	}
	if c.NumProcs == 0 {
		c.NumProcs = 2
	}
	if c.NumProcs < 1 {
		return fmt.Errorf("scenario: NumProcs %d < 1", c.NumProcs)
	}
	if c.BrakeStart == 0 {
		c.BrakeStart = 5
	}
	if c.BrakeDecel == 0 {
		c.BrakeDecel = 0.5
	}
	if c.BrakeDecel <= 0 {
		return fmt.Errorf("scenario: non-positive brake decel %v", c.BrakeDecel)
	}
	if c.MaxObstacles == 0 {
		c.MaxObstacles = 42
	}
	if c.MaxObstacles < 1 {
		return fmt.Errorf("scenario: MaxObstacles %d < 1", c.MaxObstacles)
	}
	if c.VehicleStep == 0 {
		c.VehicleStep = 0.01
	}
	if c.VehicleStep <= 0 {
		return fmt.Errorf("scenario: non-positive vehicle step %v", c.VehicleStep)
	}
	return nil
}

// loop maps the config onto the shared closed-loop kernel. Obstacle count
// ramps from quiet-road to crowded intersection as car A approaches the
// light.
func (c *MotivationConfig) loop() loopConfig {
	return loopConfig{
		Graph:       GraphMotivation,
		Scheme:      c.Scheme,
		Seed:        c.Seed,
		Duration:    c.Duration,
		NumProcs:    c.NumProcs,
		VehicleStep: c.VehicleStep,
		SampleRate:  c.SampleRate,
		MaxDataAge:  c.MaxDataAge,
		Obstacles: func(t float64) int {
			const rampLen = 12.0
			switch {
			case t < c.BrakeStart:
				return 8
			case t < c.BrakeStart+rampLen:
				frac := (t - c.BrakeStart) / rampLen
				return 8 + int(frac*float64(c.MaxObstacles-8))
			default:
				return c.MaxObstacles
			}
		},
		Tracer: c.Tracer,
	}
}

// MotivationResult aggregates the motivation-experiment outcomes.
type MotivationResult struct {
	// Scheme is the scheme that produced this result.
	Scheme Scheme
	// Rec holds lead_speed, follow_speed, gap, speed_diff and miss_ratio
	// series (Fig. 4's two panels).
	Rec *trace.Recorder
	// Miss holds per-second deadline accounting (Fig. 4(a)).
	Miss *metrics.MissBuckets
	// Collision reports whether the cars collided, and when (Fig. 4(b):
	// the paper's Apollo run collides at t = 23.4 s).
	Collision   bool
	CollisionAt float64
	// MinGap is the closest approach between the two cars.
	MinGap float64
	// EngineStats is the engine's final counter snapshot.
	EngineStats engine.Stats
}

// motivationPlant is the red-light world: car B brakes to a stop while
// car A's drive-by-wire watchdog coasts whenever the pipeline stalls.
type motivationPlant struct {
	cfg   *MotivationConfig
	rec   *trace.Recorder
	gains vehicle.CarFollower

	follower *vehicle.Longitudinal
	lead     *vehicle.Lead

	histLeadSpeed, histLeadPos, histFolPos, histFolSpeed trace.Series

	collide   metrics.CollisionDetector
	minGap    float64
	lastCmdAt float64
}

func newMotivationPlant(cfg *MotivationConfig, rec *trace.Recorder) (*motivationPlant, error) {
	const initSpeed = 10.0
	p := &motivationPlant{
		cfg:    cfg,
		rec:    rec,
		gains:  vehicle.CarFollower{Kv: 5, Kg: 1, StandstillGap: 5, Headway: 1.2},
		minGap: math.Inf(1),
	}
	long := vehicle.LongitudinalConfig{MaxAccel: 6, MaxBrake: 8, ActuatorTau: 0.1, MaxSpeed: 40}
	var err error
	if p.follower, err = vehicle.NewLongitudinal(long); err != nil {
		return nil, err
	}
	p.follower.Speed = initSpeed

	// Car B: constant 10 m/s, then brakes to a stop from BrakeStart.
	stopAt := cfg.BrakeStart + initSpeed/cfg.BrakeDecel
	leadProfile, err := vehicle.NewPiecewiseProfile([]vehicle.PhasePoint{
		{T: 0, Speed: initSpeed},
		{T: cfg.BrakeStart, Speed: initSpeed},
		{T: stopAt, Speed: 0},
	})
	if err != nil {
		return nil, err
	}
	if p.lead, err = vehicle.NewLead(leadProfile, p.gains.StandstillGap+p.gains.Headway*initSpeed); err != nil {
		return nil, err
	}
	if err := p.recordHistory(0); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *motivationPlant) recordHistory(now float64) error {
	if err := p.histLeadSpeed.Add(now, p.lead.Speed()); err != nil {
		return err
	}
	if err := p.histLeadPos.Add(now, p.lead.Position); err != nil {
		return err
	}
	if err := p.histFolSpeed.Add(now, p.follower.Speed); err != nil {
		return err
	}
	return p.histFolPos.Add(now, p.follower.Position)
}

func (p *motivationPlant) Perceive(cmd engine.ControlCommand) {
	at := float64(cmd.SourceTime)
	leadSpd, ok := p.histLeadSpeed.At(at)
	if !ok {
		return
	}
	leadPos, _ := p.histLeadPos.At(at)
	folPos, _ := p.histFolPos.At(at)
	folSpd, _ := p.histFolSpeed.At(at)
	p.follower.SetAccelCommand(p.gains.Accel(folSpd, leadSpd, leadPos-folPos))
	p.lastCmdAt = float64(cmd.Completed)
}

func (p *motivationPlant) TrackingError(simtime.Time) float64 {
	return math.Abs(p.lead.Speed() - p.follower.Speed)
}

// CoordSample records nothing: the motivation run reports the Fig. 4
// panels only.
func (p *motivationPlant) CoordSample(simtime.Time, float64, float64, float64) {}

func (p *motivationPlant) Step(now float64) {
	step := p.cfg.VehicleStep
	if err := p.lead.Step(step); err != nil {
		panic(fmt.Sprintf("scenario: lead step: %v", err))
	}
	if err := p.follower.Step(step); err != nil {
		panic(fmt.Sprintf("scenario: follower step: %v", err))
	}
	// Drive-by-wire watchdog: without a fresh control command the
	// actuators release to neutral and the car coasts — exactly how
	// a stalled pipeline turns into the paper's collision.
	if now-p.lastCmdAt > 0.5 {
		p.follower.SetAccelCommand(0)
	}
	if err := p.recordHistory(now); err != nil {
		panic(fmt.Sprintf("scenario: history: %v", err))
	}
	gap := p.lead.Position - p.follower.Position
	if gap < p.minGap {
		p.minGap = gap
	}
	p.collide.Note(now, gap)
	recAdd(p.rec, "lead_speed", now, p.lead.Speed())
	recAdd(p.rec, "follow_speed", now, p.follower.Speed)
	recAdd(p.rec, "speed_diff", now, p.follower.Speed-p.lead.Speed())
	recAdd(p.rec, "gap", now, gap)
}

func (p *motivationPlant) Sample(t float64, env *Env) {
	recAdd(p.rec, "miss_ratio", t, env.Miss.Ratio(int(t)-1))
}

// RunMotivation executes the red-light scenario on the Fig. 2 task graph.
func RunMotivation(cfg MotivationConfig) (*MotivationResult, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	var p *motivationPlant
	out, err := runLoop(cfg.loop(), func(rec *trace.Recorder) (Plant, error) {
		var err error
		p, err = newMotivationPlant(&cfg, rec)
		return p, err
	})
	if err != nil {
		return nil, err
	}

	return &MotivationResult{
		Scheme:      cfg.Scheme,
		Rec:         out.Rec,
		Miss:        out.Miss,
		Collision:   p.collide.Collided(),
		CollisionAt: p.collide.At(),
		MinGap:      p.minGap,
		EngineStats: out.EngineStats,
	}, nil
}
