package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesAddOrdered(t *testing.T) {
	var s Series
	s.Name = "x"
	for _, tm := range []float64{0, 1, 1, 2} {
		if err := s.Add(tm, tm*2); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Add(1.5, 0); err == nil {
		t.Error("backwards time accepted")
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
	vals := s.Values()
	if len(vals) != 4 || vals[3] != 4 {
		t.Errorf("Values = %v", vals)
	}
}

func TestSeriesRangeReductions(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		if err := s.Add(float64(i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Mean(0, 10); got != 4.5 {
		t.Errorf("Mean = %v, want 4.5", got)
	}
	if got := s.Mean(2, 4); got != 2.5 {
		t.Errorf("Mean(2,4) = %v, want 2.5", got)
	}
	wantRMS := math.Sqrt((4 + 9) / 2.0)
	if got := s.RMS(2, 4); math.Abs(got-wantRMS) > 1e-12 {
		t.Errorf("RMS(2,4) = %v, want %v", got, wantRMS)
	}
	if got := s.RMS(100, 200); got != 0 {
		t.Errorf("RMS on empty range = %v, want 0", got)
	}
	if got := s.MaxAbs(0, 10); got != 9 {
		t.Errorf("MaxAbs = %v, want 9", got)
	}
	if got := len(s.Slice(3, 6)); got != 3 {
		t.Errorf("Slice(3,6) has %d samples, want 3", got)
	}
}

func TestSeriesAt(t *testing.T) {
	var s Series
	for _, tm := range []float64{1, 2, 3} {
		if err := s.Add(tm, tm*10); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.At(0.5); ok {
		t.Error("At before first sample should report false")
	}
	if v, ok := s.At(2.5); !ok || v != 20 {
		t.Errorf("At(2.5) = %v,%v; want 20,true", v, ok)
	}
	if v, ok := s.At(3); !ok || v != 30 {
		t.Errorf("At(3) = %v,%v; want 30,true", v, ok)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	if err := r.Add("speed", 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("speed", 1, 12); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("err", 0, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("", 0, 1); err == nil {
		t.Error("empty series name accepted")
	}
	if r.Series("speed").Len() != 2 {
		t.Error("series not recorded")
	}
	if r.Series("missing") != nil {
		t.Error("unknown series should be nil")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "speed" || names[1] != "err" {
		t.Errorf("Names = %v, want creation order", names)
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	if err := r.Add("a", 0, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("b", 0.25, -2); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "series,time,value\na,0,1.5\nb,0.25,-2\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

// Property: RMS over the full range matches the direct computation.
func TestQuickSeriesRMS(t *testing.T) {
	f := func(vals []int8) bool {
		var s Series
		sum := 0.0
		for i, v := range vals {
			x := float64(v) / 4
			if err := s.Add(float64(i), x); err != nil {
				return false
			}
			sum += x * x
		}
		if len(vals) == 0 {
			return s.RMS(0, 1) == 0
		}
		want := math.Sqrt(sum / float64(len(vals)))
		return math.Abs(s.RMS(0, float64(len(vals)))-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeriesPercentile(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		if err := s.Add(float64(i), float64(i)*10); err != nil {
			t.Fatal(err)
		}
	}
	tests := []struct {
		p, from, to, want float64
	}{
		{p: 0, from: 0, to: 10, want: 0},
		{p: 100, from: 0, to: 10, want: 90},
		{p: 50, from: 0, to: 10, want: 45},
		{p: 50, from: 4, to: 6, want: 45}, // samples 40,50
		{p: 50, from: 100, to: 200, want: 0},
		{p: -5, from: 0, to: 10, want: 0},
		{p: 101, from: 0, to: 10, want: 0},
	}
	for _, tt := range tests {
		if got := s.Percentile(tt.p, tt.from, tt.to); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v,[%v,%v)) = %v, want %v", tt.p, tt.from, tt.to, got, tt.want)
		}
	}
	// Single-sample range.
	if got := s.Percentile(75, 3, 4); got != 30 {
		t.Errorf("single-sample percentile = %v, want 30", got)
	}
}
