// Package trace records named time series during simulation runs and
// exports them as CSV, which is how every figure of the evaluation is
// regenerated.
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Sample is one (time, value) point.
type Sample struct {
	T, V float64
}

// Series is an append-only time series. Times must be non-decreasing.
type Series struct {
	Name    string
	Samples []Sample
}

// Add appends a sample; time must not move backwards.
func (s *Series) Add(t, v float64) error {
	if n := len(s.Samples); n > 0 && t < s.Samples[n-1].T {
		return fmt.Errorf("trace: series %q time %v before %v", s.Name, t, s.Samples[n-1].T)
	}
	s.Samples = append(s.Samples, Sample{T: t, V: v})
	return nil
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Samples) }

// Values returns the sample values as a fresh slice.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Samples))
	for i, p := range s.Samples {
		out[i] = p.V
	}
	return out
}

// Slice returns the samples with from <= T < to as a fresh slice.
func (s *Series) Slice(from, to float64) []Sample {
	var out []Sample
	for _, p := range s.Samples {
		if p.T >= from && p.T < to {
			out = append(out, p)
		}
	}
	return out
}

// RMS returns the root-mean-square of values with from <= T < to, or 0 if
// the range is empty.
func (s *Series) RMS(from, to float64) float64 {
	sum, n := 0.0, 0
	for _, p := range s.Samples {
		if p.T >= from && p.T < to {
			sum += p.V * p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

// Mean returns the mean of values with from <= T < to, or 0 if empty.
func (s *Series) Mean(from, to float64) float64 {
	sum, n := 0.0, 0
	for _, p := range s.Samples {
		if p.T >= from && p.T < to {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MaxAbs returns the largest |value| with from <= T < to, or 0 if empty.
func (s *Series) MaxAbs(from, to float64) float64 {
	m := 0.0
	for _, p := range s.Samples {
		if p.T >= from && p.T < to && math.Abs(p.V) > m {
			m = math.Abs(p.V)
		}
	}
	return m
}

// At returns the latest value with T <= t (zero-order hold) and whether any
// sample qualifies.
func (s *Series) At(t float64) (float64, bool) {
	idx := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].T > t })
	if idx == 0 {
		return 0, false
	}
	return s.Samples[idx-1].V, true
}

// Recorder collects named series.
type Recorder struct {
	series map[string]*Series
	order  []string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*Series)}
}

// Add appends a sample to the named series, creating it on first use.
func (r *Recorder) Add(name string, t, v float64) error {
	if name == "" {
		return errors.New("trace: empty series name")
	}
	s, ok := r.series[name]
	if !ok {
		s = &Series{Name: name}
		r.series[name] = s
		r.order = append(r.order, name)
	}
	return s.Add(t, v)
}

// Series returns the named series, or nil if absent.
func (r *Recorder) Series(name string) *Series { return r.series[name] }

// Names returns the series names in creation order.
func (r *Recorder) Names() []string { return append([]string(nil), r.order...) }

// WriteCSV writes all series in long format: series,time,value.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "time", "value"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, name := range r.order {
		for _, p := range r.series[name].Samples {
			rec := []string{
				name,
				strconv.FormatFloat(p.T, 'g', -1, 64),
				strconv.FormatFloat(p.V, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("trace: write row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Percentile returns the p-th percentile (0..100, linear interpolation) of
// the values with from <= T < to. It returns 0 for an empty range or an
// out-of-range p.
func (s *Series) Percentile(p, from, to float64) float64 {
	if p < 0 || p > 100 {
		return 0
	}
	var vals []float64
	for _, q := range s.Samples {
		if q.T >= from && q.T < to {
			vals = append(vals, q.V)
		}
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	if len(vals) == 1 {
		return vals[0]
	}
	rank := p / 100 * float64(len(vals)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return vals[lo]
	}
	frac := rank - float64(lo)
	return vals[lo]*(1-frac) + vals[hi]*frac
}
