package vehicle

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLongitudinalConfigValidate(t *testing.T) {
	if err := DefaultLongitudinal().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := ScaledCarLongitudinal().Validate(); err != nil {
		t.Fatalf("scaled config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*LongitudinalConfig)
	}{
		{name: "zero accel", mutate: func(c *LongitudinalConfig) { c.MaxAccel = 0 }},
		{name: "zero brake", mutate: func(c *LongitudinalConfig) { c.MaxBrake = 0 }},
		{name: "negative tau", mutate: func(c *LongitudinalConfig) { c.ActuatorTau = -1 }},
		{name: "zero max speed", mutate: func(c *LongitudinalConfig) { c.MaxSpeed = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultLongitudinal()
			tt.mutate(&cfg)
			if _, err := NewLongitudinal(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestLongitudinalAcceleratesTowardCommand(t *testing.T) {
	v, err := NewLongitudinal(DefaultLongitudinal())
	if err != nil {
		t.Fatal(err)
	}
	v.SetAccelCommand(2)
	for i := 0; i < 500; i++ {
		if err := v.Step(0.01); err != nil {
			t.Fatal(err)
		}
	}
	// After 5 s at ~2 m/s^2 (minus lag warm-up) speed should be close to
	// 10 m/s and position close to 25 m.
	if v.Speed < 9 || v.Speed > 10.5 {
		t.Errorf("speed %v after 5s at 2 m/s^2, want ~9.6", v.Speed)
	}
	if v.Position < 20 || v.Position > 27 {
		t.Errorf("position %v, want ~24", v.Position)
	}
	if got := v.Accel(); math.Abs(got-2) > 0.01 {
		t.Errorf("achieved accel %v, want ~2 after lag settles", got)
	}
}

func TestLongitudinalCommandClamped(t *testing.T) {
	v, err := NewLongitudinal(DefaultLongitudinal())
	if err != nil {
		t.Fatal(err)
	}
	v.SetAccelCommand(99)
	if got := v.AccelCommand(); got != DefaultLongitudinal().MaxAccel {
		t.Errorf("command %v, want clamped to MaxAccel", got)
	}
	v.SetAccelCommand(-99)
	if got := v.AccelCommand(); got != -DefaultLongitudinal().MaxBrake {
		t.Errorf("command %v, want clamped to -MaxBrake", got)
	}
}

func TestLongitudinalNeverReverses(t *testing.T) {
	v, err := NewLongitudinal(DefaultLongitudinal())
	if err != nil {
		t.Fatal(err)
	}
	v.Speed = 1
	v.SetAccelCommand(-8)
	for i := 0; i < 300; i++ {
		if err := v.Step(0.01); err != nil {
			t.Fatal(err)
		}
		if v.Speed < 0 {
			t.Fatalf("speed went negative: %v", v.Speed)
		}
	}
	if v.Speed != 0 {
		t.Errorf("speed %v after hard braking, want 0", v.Speed)
	}
}

func TestLongitudinalSpeedCap(t *testing.T) {
	cfg := DefaultLongitudinal()
	cfg.MaxSpeed = 5
	v, err := NewLongitudinal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v.SetAccelCommand(3)
	for i := 0; i < 1000; i++ {
		if err := v.Step(0.01); err != nil {
			t.Fatal(err)
		}
	}
	if v.Speed > 5 {
		t.Errorf("speed %v exceeds cap 5", v.Speed)
	}
}

func TestLongitudinalStepRejectsBadDt(t *testing.T) {
	v, err := NewLongitudinal(DefaultLongitudinal())
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Step(0); err == nil {
		t.Error("dt=0 accepted")
	}
	if err := v.Step(-0.1); err == nil {
		t.Error("negative dt accepted")
	}
}

func TestStaleCommandPersists(t *testing.T) {
	// The core failure mode of missed deadlines: the last command keeps
	// actuating.
	v, err := NewLongitudinal(LongitudinalConfig{MaxAccel: 3, MaxBrake: 8, ActuatorTau: 0, MaxSpeed: 40})
	if err != nil {
		t.Fatal(err)
	}
	v.SetAccelCommand(1)
	for i := 0; i < 100; i++ {
		if err := v.Step(0.01); err != nil {
			t.Fatal(err)
		}
	}
	want := 1.0 // 1 m/s^2 for 1 s
	if math.Abs(v.Speed-want) > 1e-9 {
		t.Errorf("speed %v, want %v (command persisted)", v.Speed, want)
	}
}

func TestSineProfile(t *testing.T) {
	p := SineProfile{Mean: 15, Amp: 5, Period: 7}
	if got := p.Speed(0); got != 15 {
		t.Errorf("Speed(0) = %v, want 15", got)
	}
	if got := p.Speed(7.0 / 4); math.Abs(got-20) > 1e-9 {
		t.Errorf("Speed(T/4) = %v, want 20", got)
	}
	if got := p.Speed(3 * 7.0 / 4); math.Abs(got-10) > 1e-9 {
		t.Errorf("Speed(3T/4) = %v, want 10", got)
	}
	// Degenerate period.
	if got := (SineProfile{Mean: 12}).Speed(3); got != 12 {
		t.Errorf("zero-period sine = %v, want mean", got)
	}
}

func TestPiecewiseProfile(t *testing.T) {
	p, err := NewPiecewiseProfile([]PhasePoint{{T: 0, Speed: 0}, {T: 5, Speed: 2}, {T: 15, Speed: 2}, {T: 20, Speed: 0}})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		t, want float64
	}{
		{t: -1, want: 0},
		{t: 0, want: 0},
		{t: 2.5, want: 1},
		{t: 5, want: 2},
		{t: 10, want: 2},
		{t: 17.5, want: 1},
		{t: 25, want: 0},
	}
	for _, tt := range tests {
		if got := p.Speed(tt.t); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Speed(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestPiecewiseProfileValidation(t *testing.T) {
	if _, err := NewPiecewiseProfile(nil); err == nil {
		t.Error("empty profile accepted")
	}
	if _, err := NewPiecewiseProfile([]PhasePoint{{T: 5, Speed: 1}, {T: 5, Speed: 2}}); err == nil {
		t.Error("non-increasing anchors accepted")
	}
	if _, err := NewPiecewiseProfile([]PhasePoint{{T: 0, Speed: -1}}); err == nil {
		t.Error("negative speed accepted")
	}
}

func TestLeadIntegratesProfile(t *testing.T) {
	lead, err := NewLead(ConstantProfile(10), 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := lead.Step(0.01); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(lead.Position-110) > 1e-9 {
		t.Errorf("lead position %v after 1s at 10 m/s from 100, want 110", lead.Position)
	}
	if lead.Speed() != 10 {
		t.Errorf("lead speed %v, want 10", lead.Speed())
	}
	if _, err := NewLead(nil, 0); err == nil {
		t.Error("nil profile accepted")
	}
	if err := lead.Step(0); err == nil {
		t.Error("dt=0 accepted")
	}
}

func TestCarFollowerClosesLoop(t *testing.T) {
	// Closed-loop sanity: the follower converges to the lead speed and a
	// steady gap under ideal (no-delay) control.
	cf := DefaultCarFollower()
	follower, err := NewLongitudinal(DefaultLongitudinal())
	if err != nil {
		t.Fatal(err)
	}
	lead, err := NewLead(ConstantProfile(15), 60)
	if err != nil {
		t.Fatal(err)
	}
	follower.Speed = 10
	dt := 0.01
	for i := 0; i < 6000; i++ {
		gap := lead.Position - follower.Position
		follower.SetAccelCommand(cf.Accel(follower.Speed, lead.Speed(), gap))
		if err := follower.Step(dt); err != nil {
			t.Fatal(err)
		}
		if err := lead.Step(dt); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(follower.Speed-15) > 0.1 {
		t.Errorf("follower speed %v, want ~15", follower.Speed)
	}
	wantGap := cf.StandstillGap + cf.Headway*15
	gap := lead.Position - follower.Position
	if math.Abs(gap-wantGap) > 1 {
		t.Errorf("steady gap %v, want ~%v", gap, wantGap)
	}
}

func TestLateralValidation(t *testing.T) {
	if err := DefaultLateral().Validate(); err != nil {
		t.Fatalf("default lateral invalid: %v", err)
	}
	bad := []LateralConfig{
		{WheelBase: 0, MaxSteer: 0.5},
		{WheelBase: 2.7, MaxSteer: 0},
		{WheelBase: 2.7, MaxSteer: 0.5, ActuatorTau: -1},
	}
	for i, cfg := range bad {
		if _, err := NewLateral(cfg); err == nil {
			t.Errorf("bad lateral config %d accepted", i)
		}
	}
}

func TestLaneKeeperCentersVehicle(t *testing.T) {
	lk := DefaultLaneKeeper()
	lat, err := NewLateral(DefaultLateral())
	if err != nil {
		t.Fatal(err)
	}
	lat.Y = 1.0 // start offset 1 m
	dt, speed := 0.01, 5.0
	for i := 0; i < 3000; i++ {
		lat.SetSteerCommand(lk.Steer(lat.Y, lat.Psi, 0))
		if err := lat.Step(dt, speed, 0); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(lat.Y) > 0.05 {
		t.Errorf("offset %v after 30s of lane keeping, want ~0", lat.Y)
	}
}

func TestLaneKeeperHoldsCurveWithFeedForward(t *testing.T) {
	lk := DefaultLaneKeeper()
	lat, err := NewLateral(DefaultLateral())
	if err != nil {
		t.Fatal(err)
	}
	curvature := 1.0 / 30 // 30 m radius corner
	dt, speed := 0.01, 5.0
	var maxOff float64
	for i := 0; i < 3000; i++ {
		lat.SetSteerCommand(lk.Steer(lat.Y, lat.Psi, curvature))
		if err := lat.Step(dt, speed, curvature); err != nil {
			t.Fatal(err)
		}
		if math.Abs(lat.Y) > maxOff {
			maxOff = math.Abs(lat.Y)
		}
	}
	if maxOff > 0.2 {
		t.Errorf("max offset %v in curve with feed-forward, want < 0.2", maxOff)
	}
}

func TestLateralStaleSteeringDrifts(t *testing.T) {
	// Without fresh commands in a curve, the vehicle drifts outward —
	// the lane-keeping failure mode of missed deadlines.
	lat, err := NewLateral(DefaultLateral())
	if err != nil {
		t.Fatal(err)
	}
	lat.SetSteerCommand(0) // stale straight-ahead command
	curvature := 1.0 / 30
	for i := 0; i < 200; i++ {
		if err := lat.Step(0.01, 5, curvature); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(lat.Y) < 0.05 {
		t.Errorf("offset %v with stale steering in curve, want noticeable drift", lat.Y)
	}
	if err := lat.Step(0, 5, 0); err == nil {
		t.Error("dt=0 accepted")
	}
}

func TestTrack(t *testing.T) {
	tr, err := NewTrack([]Segment{{Length: 100, Curvature: 0}, {Length: 50, Curvature: 0.02}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Length() != 150 {
		t.Errorf("Length = %v, want 150", tr.Length())
	}
	tests := []struct {
		s, want float64
	}{
		{s: 0, want: 0},
		{s: 99, want: 0},
		{s: 100, want: 0.02},
		{s: 149, want: 0.02},
		{s: 150, want: 0},    // wraps
		{s: 260, want: 0.02}, // 260-150=110
		{s: -10, want: 0.02}, // wraps negative to 140
	}
	for _, tt := range tests {
		if got := tr.Curvature(tt.s); got != tt.want {
			t.Errorf("Curvature(%v) = %v, want %v", tt.s, got, tt.want)
		}
	}
	if _, err := NewTrack(nil); err == nil {
		t.Error("empty track accepted")
	}
	if _, err := NewTrack([]Segment{{Length: 0}}); err == nil {
		t.Error("zero-length segment accepted")
	}
}

func TestOvalTrack(t *testing.T) {
	tr, err := OvalTrack(200, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Four quarter circles of radius 30 plus straights.
	wantLen := 2*200 + 2*50 + 4*math.Pi*30/2
	if math.Abs(tr.Length()-wantLen) > 1e-9 {
		t.Errorf("oval length %v, want %v", tr.Length(), wantLen)
	}
	// Count curvature transitions over one lap: 8 segments.
	transitions := 0
	prev := tr.Curvature(0)
	for s := 0.5; s < tr.Length(); s += 0.5 {
		cur := tr.Curvature(s)
		if cur != prev {
			transitions++
			prev = cur
		}
	}
	if transitions != 7 { // 8 segments => 7 internal transitions
		t.Errorf("found %d curvature transitions, want 7", transitions)
	}
	if _, err := OvalTrack(0, 30); err == nil {
		t.Error("invalid oval accepted")
	}
}

// Property: speed stays within [0, MaxSpeed] for arbitrary command
// sequences.
func TestQuickSpeedBounds(t *testing.T) {
	f := func(cmds []int8) bool {
		v, err := NewLongitudinal(DefaultLongitudinal())
		if err != nil {
			return false
		}
		for _, c := range cmds {
			v.SetAccelCommand(float64(c) / 4)
			for i := 0; i < 10; i++ {
				if err := v.Step(0.01); err != nil {
					return false
				}
				if v.Speed < 0 || v.Speed > DefaultLongitudinal().MaxSpeed {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: piecewise profiles interpolate within the convex hull of
// anchor speeds.
func TestQuickPiecewiseWithinHull(t *testing.T) {
	f := func(speeds []uint8, tRaw uint16) bool {
		if len(speeds) == 0 {
			return true
		}
		points := make([]PhasePoint, len(speeds))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, s := range speeds {
			v := float64(s) / 8
			points[i] = PhasePoint{T: float64(i), Speed: v}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		p, err := NewPiecewiseProfile(points)
		if err != nil {
			return false
		}
		got := p.Speed(float64(tRaw) / 100)
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
