// Package vehicle implements the Vehicle Control Simulator of the HCPerf
// testbed: longitudinal dynamics for car following, lateral dynamics for
// lane keeping, lead-vehicle speed profiles, the corresponding control
// laws, and track geometry for loop driving.
//
// The models are deliberately simple — first-order actuator lag plus
// kinematic integration — because the paper's phenomenon lives in the
// *timing* of control commands, not in tyre physics: when the scheduler
// delays or drops commands, the vehicle holds its previous actuation and
// tracking error grows.
package vehicle

import (
	"errors"
	"fmt"
	"math"
)

// LongitudinalConfig bounds a longitudinal vehicle.
type LongitudinalConfig struct {
	// MaxAccel is the strongest forward acceleration (m/s^2, > 0).
	MaxAccel float64
	// MaxBrake is the strongest deceleration magnitude (m/s^2, > 0).
	MaxBrake float64
	// ActuatorTau is the first-order throttle/brake lag time constant
	// (s, >= 0; 0 means instantaneous actuation).
	ActuatorTau float64
	// MaxSpeed caps the speed (m/s, > 0).
	MaxSpeed float64
}

// Validate checks the configuration.
func (c LongitudinalConfig) Validate() error {
	switch {
	case c.MaxAccel <= 0:
		return fmt.Errorf("vehicle: MaxAccel %v must be positive", c.MaxAccel)
	case c.MaxBrake <= 0:
		return fmt.Errorf("vehicle: MaxBrake %v must be positive", c.MaxBrake)
	case c.ActuatorTau < 0:
		return fmt.Errorf("vehicle: ActuatorTau %v must be non-negative", c.ActuatorTau)
	case c.MaxSpeed <= 0:
		return fmt.Errorf("vehicle: MaxSpeed %v must be positive", c.MaxSpeed)
	}
	return nil
}

// DefaultLongitudinal returns passenger-car-scale limits.
func DefaultLongitudinal() LongitudinalConfig {
	return LongitudinalConfig{MaxAccel: 3, MaxBrake: 8, ActuatorTau: 0.2, MaxSpeed: 40}
}

// ScaledCarLongitudinal returns limits matching the 1:10 scaled hardware
// testbed: lower speeds, snappier acceleration, more actuation lag
// relative to its dynamics.
func ScaledCarLongitudinal() LongitudinalConfig {
	return LongitudinalConfig{MaxAccel: 1.5, MaxBrake: 2.5, ActuatorTau: 0.15, MaxSpeed: 4}
}

// Longitudinal is a point-mass vehicle with first-order actuator lag.
type Longitudinal struct {
	cfg LongitudinalConfig
	// Position along the road (m) and speed (m/s).
	Position, Speed float64

	cmdAccel float64
	actAccel float64
}

// NewLongitudinal validates cfg and builds a vehicle at rest at position 0.
func NewLongitudinal(cfg LongitudinalConfig) (*Longitudinal, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Longitudinal{cfg: cfg}, nil
}

// SetAccelCommand installs the latest acceleration command (m/s^2). The
// command persists until replaced — a stale command is exactly what a
// missed control deadline produces.
func (v *Longitudinal) SetAccelCommand(a float64) {
	v.cmdAccel = clamp(a, -v.cfg.MaxBrake, v.cfg.MaxAccel)
}

// AccelCommand returns the currently installed command.
func (v *Longitudinal) AccelCommand() float64 { return v.cmdAccel }

// Accel returns the achieved acceleration after actuator lag.
func (v *Longitudinal) Accel() float64 { return v.actAccel }

// Step advances the vehicle by dt seconds.
func (v *Longitudinal) Step(dt float64) error {
	if dt <= 0 {
		return fmt.Errorf("vehicle: non-positive dt %v", dt)
	}
	if v.cfg.ActuatorTau == 0 {
		v.actAccel = v.cmdAccel
	} else {
		// First-order lag toward the command.
		v.actAccel += dt / v.cfg.ActuatorTau * (v.cmdAccel - v.actAccel)
	}
	a := clamp(v.actAccel, -v.cfg.MaxBrake, v.cfg.MaxAccel)
	v.Position += v.Speed*dt + 0.5*a*dt*dt
	v.Speed += a * dt
	if v.Speed < 0 {
		v.Speed = 0
		if v.actAccel < 0 {
			v.actAccel = 0
		}
	}
	if v.Speed > v.cfg.MaxSpeed {
		v.Speed = v.cfg.MaxSpeed
	}
	return nil
}

// SpeedProfile yields a reference speed over time (the lead vehicle's
// behaviour in the evaluation scenarios).
type SpeedProfile interface {
	// Speed returns the profile speed (m/s) at time t (s).
	Speed(t float64) float64
}

// ConstantProfile is a fixed speed.
type ConstantProfile float64

// Speed implements SpeedProfile.
func (c ConstantProfile) Speed(float64) float64 { return float64(c) }

// SineProfile oscillates around Mean with amplitude Amp and the given
// Period — the car-following evaluation's lead speed (10-20 m/s, 7 s).
type SineProfile struct {
	Mean, Amp, Period float64
}

// Speed implements SpeedProfile.
func (s SineProfile) Speed(t float64) float64 {
	if s.Period <= 0 {
		return s.Mean
	}
	return s.Mean + s.Amp*math.Sin(2*math.Pi*t/s.Period)
}

// PhasePoint anchors a piecewise-linear speed profile.
type PhasePoint struct {
	T, Speed float64
}

// PiecewiseProfile interpolates linearly between anchor points; before the
// first anchor it holds the first speed, after the last it holds the last.
type PiecewiseProfile struct {
	points []PhasePoint
}

// NewPiecewiseProfile validates that anchors are time-ordered.
func NewPiecewiseProfile(points []PhasePoint) (*PiecewiseProfile, error) {
	if len(points) == 0 {
		return nil, errors.New("vehicle: empty profile")
	}
	for i := 1; i < len(points); i++ {
		if points[i].T <= points[i-1].T {
			return nil, fmt.Errorf("vehicle: profile anchors not time-ordered at %d", i)
		}
	}
	for i, p := range points {
		if p.Speed < 0 {
			return nil, fmt.Errorf("vehicle: negative profile speed at %d", i)
		}
	}
	out := &PiecewiseProfile{points: make([]PhasePoint, len(points))}
	copy(out.points, points)
	return out, nil
}

// Speed implements SpeedProfile.
func (p *PiecewiseProfile) Speed(t float64) float64 {
	pts := p.points
	if t <= pts[0].T {
		return pts[0].Speed
	}
	for i := 1; i < len(pts); i++ {
		if t <= pts[i].T {
			frac := (t - pts[i-1].T) / (pts[i].T - pts[i-1].T)
			return pts[i-1].Speed + frac*(pts[i].Speed-pts[i-1].Speed)
		}
	}
	return pts[len(pts)-1].Speed
}

// Lead integrates a speed profile into a moving lead vehicle.
type Lead struct {
	Profile SpeedProfile
	// Position (m) and the profile clock (s).
	Position, Clock float64
}

// NewLead builds a lead vehicle at the given starting position.
func NewLead(profile SpeedProfile, startPos float64) (*Lead, error) {
	if profile == nil {
		return nil, errors.New("vehicle: nil speed profile")
	}
	return &Lead{Profile: profile, Position: startPos}, nil
}

// Speed returns the lead's current speed.
func (l *Lead) Speed() float64 { return l.Profile.Speed(l.Clock) }

// Step advances the lead by dt seconds (trapezoidal position update).
func (l *Lead) Step(dt float64) error {
	if dt <= 0 {
		return fmt.Errorf("vehicle: non-positive dt %v", dt)
	}
	v0 := l.Profile.Speed(l.Clock)
	v1 := l.Profile.Speed(l.Clock + dt)
	l.Position += (v0 + v1) / 2 * dt
	l.Clock += dt
	return nil
}

// CarFollower computes acceleration commands for car following: a blend of
// speed matching and gap regulation with a constant-headway policy.
type CarFollower struct {
	// Kv is the speed-error gain (1/s).
	Kv float64
	// Kg is the gap-error gain (1/s^2).
	Kg float64
	// StandstillGap is the desired gap at zero speed (m).
	StandstillGap float64
	// Headway is the desired time headway (s); desired gap =
	// StandstillGap + Headway·v.
	Headway float64
}

// DefaultCarFollower returns gains tuned for the simulation scenarios.
func DefaultCarFollower() CarFollower {
	return CarFollower{Kv: 1.2, Kg: 0.25, StandstillGap: 5, Headway: 1.2}
}

// Accel returns the commanded acceleration for the follower given its own
// speed, the perceived lead speed and the perceived gap (lead position −
// own position).
func (c CarFollower) Accel(selfSpeed, leadSpeed, gap float64) float64 {
	desiredGap := c.StandstillGap + c.Headway*selfSpeed
	return c.Kv*(leadSpeed-selfSpeed) + c.Kg*(gap-desiredGap)
}

// LateralConfig bounds the lateral (lane keeping) model.
type LateralConfig struct {
	// WheelBase is the vehicle wheel base (m, > 0).
	WheelBase float64
	// MaxSteer is the steering-angle limit (rad, > 0).
	MaxSteer float64
	// ActuatorTau is the steering first-order lag (s, >= 0).
	ActuatorTau float64
}

// Validate checks the configuration.
func (c LateralConfig) Validate() error {
	switch {
	case c.WheelBase <= 0:
		return fmt.Errorf("vehicle: WheelBase %v must be positive", c.WheelBase)
	case c.MaxSteer <= 0:
		return fmt.Errorf("vehicle: MaxSteer %v must be positive", c.MaxSteer)
	case c.ActuatorTau < 0:
		return fmt.Errorf("vehicle: ActuatorTau %v must be non-negative", c.ActuatorTau)
	}
	return nil
}

// DefaultLateral returns passenger-car-scale lateral limits.
func DefaultLateral() LateralConfig {
	return LateralConfig{WheelBase: 2.7, MaxSteer: 0.5, ActuatorTau: 0.15}
}

// Lateral is a kinematic-bicycle lane-keeping model in path coordinates:
// Y is the lateral offset from the lane centre (m), Psi the heading error
// (rad). Road curvature enters as a disturbance.
type Lateral struct {
	cfg LateralConfig
	// Y is the lateral offset from the lane centreline (m); Psi the
	// heading error (rad).
	Y, Psi float64

	cmdSteer float64
	actSteer float64
}

// NewLateral validates cfg and builds a centred vehicle.
func NewLateral(cfg LateralConfig) (*Lateral, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Lateral{cfg: cfg}, nil
}

// SetSteerCommand installs the latest steering command (rad). It persists
// until replaced.
func (l *Lateral) SetSteerCommand(delta float64) {
	l.cmdSteer = clamp(delta, -l.cfg.MaxSteer, l.cfg.MaxSteer)
}

// SteerCommand returns the currently installed command.
func (l *Lateral) SteerCommand() float64 { return l.cmdSteer }

// Step advances the lateral state by dt seconds at the given speed over
// road of the given curvature (1/m, positive = curving away from +Y).
func (l *Lateral) Step(dt, speed, curvature float64) error {
	if dt <= 0 {
		return fmt.Errorf("vehicle: non-positive dt %v", dt)
	}
	if l.cfg.ActuatorTau == 0 {
		l.actSteer = l.cmdSteer
	} else {
		l.actSteer += dt / l.cfg.ActuatorTau * (l.cmdSteer - l.actSteer)
	}
	steer := clamp(l.actSteer, -l.cfg.MaxSteer, l.cfg.MaxSteer)
	// Kinematic bicycle in path coordinates.
	l.Psi += dt * (speed/l.cfg.WheelBase*math.Tan(steer) - speed*curvature)
	l.Y += dt * speed * math.Sin(l.Psi)
	return nil
}

// LaneKeeper computes steering commands from lateral offset and heading
// error with curvature feed-forward.
type LaneKeeper struct {
	// Ky is the offset gain (rad/m), Kpsi the heading gain (rad/rad).
	Ky, Kpsi float64
	// WheelBase feeds forward the road curvature.
	WheelBase float64
}

// DefaultLaneKeeper returns gains tuned for the loop scenario.
func DefaultLaneKeeper() LaneKeeper {
	return LaneKeeper{Ky: 0.35, Kpsi: 1.1, WheelBase: 2.7}
}

// Steer returns the steering command for the given perceived offset,
// heading error and upcoming road curvature.
func (k LaneKeeper) Steer(offset, heading, curvature float64) float64 {
	feedForward := math.Atan(k.WheelBase * curvature)
	return -k.Ky*offset - k.Kpsi*heading + feedForward
}

// Segment is one piece of a closed track.
type Segment struct {
	// Length along the centreline (m, > 0).
	Length float64
	// Curvature of the segment (1/m; 0 = straight).
	Curvature float64
}

// Track is a closed loop of segments; distances wrap around.
type Track struct {
	segments []Segment
	total    float64
}

// NewTrack validates and builds a closed track.
func NewTrack(segments []Segment) (*Track, error) {
	if len(segments) == 0 {
		return nil, errors.New("vehicle: empty track")
	}
	t := &Track{segments: make([]Segment, len(segments))}
	copy(t.segments, segments)
	for i, s := range segments {
		if s.Length <= 0 {
			return nil, fmt.Errorf("vehicle: segment %d length %v must be positive", i, s.Length)
		}
		t.total += s.Length
	}
	return t, nil
}

// OvalTrack builds the paper's loop-driving circuit: two straights joined
// by four quarter-circle corners (driven clockwise it has four distinct
// turns, matching Fig. 14's four error bursts).
func OvalTrack(straight, cornerRadius float64) (*Track, error) {
	if straight <= 0 || cornerRadius <= 0 {
		return nil, fmt.Errorf("vehicle: invalid oval dimensions straight=%v radius=%v", straight, cornerRadius)
	}
	quarter := math.Pi * cornerRadius / 2
	k := 1 / cornerRadius
	return NewTrack([]Segment{
		{Length: straight, Curvature: 0},
		{Length: quarter, Curvature: k},
		{Length: straight / 4, Curvature: 0},
		{Length: quarter, Curvature: k},
		{Length: straight, Curvature: 0},
		{Length: quarter, Curvature: k},
		{Length: straight / 4, Curvature: 0},
		{Length: quarter, Curvature: k},
	})
}

// Length returns the total loop length.
func (t *Track) Length() float64 { return t.total }

// Curvature returns the centreline curvature at distance s from the start,
// wrapping around the loop.
func (t *Track) Curvature(s float64) float64 {
	s = math.Mod(s, t.total)
	if s < 0 {
		s += t.total
	}
	for _, seg := range t.segments {
		if s < seg.Length {
			return seg.Curvature
		}
		s -= seg.Length
	}
	return t.segments[len(t.segments)-1].Curvature
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
