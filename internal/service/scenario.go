package service

import (
	"fmt"

	"hcperf/internal/experiment"
	"hcperf/internal/lifecycle"
	"hcperf/internal/scenario"
	"hcperf/internal/trace"
)

// traceCapacity bounds the per-run lifecycle event buffer. At the 23-task
// graph's aggregate job rate a full-length run fits comfortably; overflow
// drops oldest-first (the ring records the drop count) rather than growing
// without bound while a request is in flight.
const traceCapacity = 1 << 20

// runScenario executes one scenario request and renders its key metrics as
// a Report, so experiment and scenario runs share one result shape (and
// one cache) end to end.
func runScenario(req RunRequest) (*RunResult, error) {
	scheme, err := scenario.ParseScheme(req.Scheme)
	if err != nil {
		return nil, err
	}
	var ring *lifecycle.Ring
	var tracer lifecycle.Tracer
	if req.Trace {
		if ring, err = lifecycle.NewRing(traceCapacity); err != nil {
			return nil, err
		}
		tracer = ring
	}

	id := "run-" + req.Scenario
	title := fmt.Sprintf("%s under %v (seed %d)", req.Scenario, scheme, req.Seed)
	var rows [][]string
	var rec *trace.Recorder

	switch req.Scenario {
	case "carfollow", "hardware", "jam":
		cfg := scenario.CarFollowingConfig{Scheme: scheme, Seed: req.Seed}
		switch req.Scenario {
		case "hardware":
			if cfg, err = scenario.HardwareCarFollowingConfig(scheme, req.Seed); err != nil {
				return nil, err
			}
		case "jam":
			if cfg, err = scenario.JamCarFollowingConfig(scheme, req.Seed); err != nil {
				return nil, err
			}
		}
		if req.Duration > 0 {
			cfg.Duration = req.Duration
		}
		cfg.Tracer = tracer
		r, err := scenario.RunCarFollowing(cfg)
		if err != nil {
			return nil, err
		}
		rec = r.Rec
		rows = [][]string{
			{"speed RMS (m/s)", fmt.Sprintf("%.4f", r.SpeedErrRMS)},
			{"distance RMS (m)", fmt.Sprintf("%.4f", r.DistErrRMS)},
			{"miss ratio", fmt.Sprintf("%.4f", r.Miss.MeanRatio())},
			{"commands/s", fmt.Sprintf("%.1f", r.Throughput)},
			{"mean response (ms)", fmt.Sprintf("%.1f", r.MeanResponse*1000)},
			{"collision", fmt.Sprintf("%t", r.Collision)},
		}
	case "lanekeep":
		cfg := scenario.LaneKeepingConfig{Scheme: scheme, Seed: req.Seed}
		if req.Duration > 0 {
			cfg.Duration = req.Duration
		}
		cfg.Tracer = tracer
		r, err := scenario.RunLaneKeeping(cfg)
		if err != nil {
			return nil, err
		}
		rec = r.Rec
		rows = [][]string{
			{"offset RMS (m)", fmt.Sprintf("%.4f", r.OffsetRMS)},
			{"offset max (m)", fmt.Sprintf("%.4f", r.OffsetMax)},
			{"miss ratio", fmt.Sprintf("%.4f", r.Miss.MeanRatio())},
			{"commands/s", fmt.Sprintf("%.1f", r.Throughput)},
		}
	case "motivation":
		cfg := scenario.MotivationConfig{Scheme: scheme, Seed: req.Seed}
		if req.Duration > 0 {
			cfg.Duration = req.Duration
		}
		cfg.Tracer = tracer
		r, err := scenario.RunMotivation(cfg)
		if err != nil {
			return nil, err
		}
		rec = r.Rec
		rows = [][]string{
			{"collision", fmt.Sprintf("%t", r.Collision)},
			{"collision time (s)", fmt.Sprintf("%.1f", r.CollisionAt)},
			{"min gap (m)", fmt.Sprintf("%.2f", r.MinGap)},
			{"miss ratio", fmt.Sprintf("%.4f", r.Miss.MeanRatio())},
		}
	case "combined":
		cfg := scenario.CombinedConfig{Scheme: scheme, Seed: req.Seed}
		if req.Duration > 0 {
			cfg.Duration = req.Duration
		}
		cfg.Tracer = tracer
		r, err := scenario.RunCombined(cfg)
		if err != nil {
			return nil, err
		}
		rec = r.Rec
		rows = [][]string{
			{"speed RMS (m/s)", fmt.Sprintf("%.4f", r.SpeedErrRMS)},
			{"offset RMS (m)", fmt.Sprintf("%.4f", r.OffsetRMS)},
			{"lon commands", fmt.Sprintf("%d", r.LonCommands)},
			{"lat commands", fmt.Sprintf("%d", r.LatCommands)},
			{"miss ratio", fmt.Sprintf("%.4f", r.Miss.MeanRatio())},
		}
	default:
		return nil, fmt.Errorf("unknown scenario %q", req.Scenario)
	}

	res := &RunResult{
		Report: &experiment.Report{
			ID:     id,
			Title:  title,
			Header: []string{"quantity", "value"},
			Rows:   rows,
			Series: rec,
		},
	}
	if ring != nil {
		res.Events = ring.Events()
		if n := ring.Dropped(); n > 0 {
			res.Report.Notes = append(res.Report.Notes,
				fmt.Sprintf("trace: %d oldest lifecycle events dropped (buffer capacity %d)", n, traceCapacity))
		}
	}
	return res, nil
}
