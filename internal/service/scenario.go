package service

import (
	"fmt"

	"hcperf/internal/experiment"
	"hcperf/internal/fleet"
	"hcperf/internal/lifecycle"
	"hcperf/internal/scenario"
)

// traceCapacity bounds the per-run lifecycle event buffer. At the 23-task
// graph's aggregate job rate a full-length run fits comfortably; overflow
// drops oldest-first (the ring records the drop count) rather than growing
// without bound while a request is in flight.
const traceCapacity = 1 << 20

// runScenario executes one scenario or inline-spec request through the
// scenario package's declarative spec runner and renders its key metrics
// as a Report, so experiment, scenario and spec runs share one result
// shape (and one cache) end to end.
func runScenario(req RunRequest) (*RunResult, error) {
	var spec scenario.Spec
	var id string
	if req.Spec != nil {
		spec = *req.Spec
		id = "spec-" + spec.Scenario
		if spec.Name != "" {
			id = "spec-" + spec.Name
		}
	} else {
		spec = scenario.Spec{
			Scenario: req.Scenario,
			Scheme:   req.Scheme,
			Seed:     req.Seed,
			Duration: req.Duration,
		}
		id = "run-" + req.Scenario
	}

	var ring *lifecycle.Ring
	var tracer lifecycle.Tracer
	if req.Trace {
		var err error
		if ring, err = lifecycle.NewRing(traceCapacity); err != nil {
			return nil, err
		}
		tracer = ring
	}

	r, err := fleet.RunSpec(spec, tracer)
	if err != nil {
		return nil, err
	}

	res := &RunResult{
		Report: &experiment.Report{
			ID:     id,
			Title:  r.Title,
			Header: []string{"quantity", "value"},
			Rows:   r.Rows,
			Series: r.Rec,
		},
	}
	if ring != nil {
		res.Events = ring.Events()
		if n := ring.Dropped(); n > 0 {
			res.Report.Notes = append(res.Report.Notes,
				fmt.Sprintf("trace: %d oldest lifecycle events dropped (buffer capacity %d)", n, traceCapacity))
		}
	}
	return res, nil
}
