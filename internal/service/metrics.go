package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"hcperf/internal/search"
	"hcperf/internal/store"
)

// latencyBuckets are the upper bounds (seconds) of the run-duration
// histogram, chosen to resolve both sub-millisecond toy experiments and
// multi-second full sweeps.
var latencyBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// histogram is a fixed-bucket latency histogram. Guarded by Metrics.mu.
type histogram struct {
	counts []uint64 // one per bucket, plus +Inf at the end
	sum    float64
	n      uint64
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(latencyBuckets, v)
	h.counts[i]++
	h.sum += v
	h.n++
}

// Metrics aggregates the serving layer's operational counters and exports
// them in Prometheus text format at GET /metrics. Counters are atomics so
// the hot path never takes the histogram lock unless it records a latency.
type Metrics struct {
	// CacheHits counts submissions answered from a completed cached run;
	// DedupHits counts submissions coalesced onto an in-flight identical
	// run; Misses counts submissions that scheduled a new execution.
	CacheHits, DedupHits, Misses atomic.Uint64
	// Shed counts submissions rejected with 429 because the queue was
	// full; Rejected counts submissions refused during drain (503).
	Shed, Rejected atomic.Uint64
	// Completed / Failed / Cancelled count finished executions by
	// outcome.
	Completed, Failed, Cancelled atomic.Uint64
	// InFlight is the number of executions currently running.
	InFlight atomic.Int64
	// OptimizeCandidates counts candidate evaluations across all optimize
	// jobs; OptimizeGenerations counts completed search generations.
	OptimizeCandidates, OptimizeGenerations atomic.Uint64
	// SweepCells / SweepCacheHits count batch-sweep cells executed and
	// cells satisfied from a store tier without re-execution.
	SweepCells, SweepCacheHits atomic.Uint64
	// Store holds the tiered result store's per-tier counters (shared
	// with the disk store and the sweep pipeline); never nil.
	Store *store.Metrics

	mu           sync.Mutex
	latency      map[string]*histogram // per experiment/scenario kind
	optimizeBest map[string]float64    // best-so-far per objective, across optimize jobs
}

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{
		Store:        &store.Metrics{},
		latency:      make(map[string]*histogram),
		optimizeBest: make(map[string]float64),
	}
}

// ObserveLatency records one completed execution's wall-clock duration
// under its experiment/scenario kind.
func (m *Metrics) ObserveLatency(kind string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.latency[kind]
	if !ok {
		h = &histogram{counts: make([]uint64, len(latencyBuckets)+1)}
		m.latency[kind] = h
	}
	h.observe(seconds)
}

// objectiveMaximize maps each search objective to its orientation, so the
// best-so-far gauge aggregates across jobs in the right direction.
var objectiveMaximize = func() map[string]bool {
	out := make(map[string]bool)
	for _, o := range search.AllObjectives() {
		out[o.Name] = o.Maximize
	}
	return out
}()

// ObserveOptimize folds one optimize job's generation snapshot into the
// counters: candidate/generation deltas against the job's previous snapshot
// and the cross-job best-so-far per objective.
func (m *Metrics) ObserveOptimize(p, prev search.Progress) {
	if d := p.Evaluated - prev.Evaluated; d > 0 {
		m.OptimizeCandidates.Add(uint64(d))
	}
	if d := p.Generations - prev.Generations; d > 0 {
		m.OptimizeGenerations.Add(uint64(d))
	}
	m.mu.Lock()
	for name, v := range p.Best {
		cur, ok := m.optimizeBest[name]
		if !ok || (objectiveMaximize[name] && v > cur) || (!objectiveMaximize[name] && v < cur) {
			m.optimizeBest[name] = v
		}
	}
	m.mu.Unlock()
}

// LiveStats carries the point-in-time gauge values WritePrometheus cannot
// read from its own counters: queue depth and cache size come from the
// manager, and the rate-limiter / circuit-breaker readings come from the
// policy layer (which lives outside Metrics so the handlers stay the only
// code that knows both halves). Zero-valued policy fields with HasLimiter /
// HasBreaker false simply omit those metric families, keeping the
// exposition identical to older deployments that run without a policy
// layer.
type LiveStats struct {
	QueueDepth, CacheLen int

	// HasLimiter gates the hcperf_ratelimit_* family.
	HasLimiter                         bool
	RatelimitAllowed, RatelimitLimited uint64
	RatelimitKeys                      int

	// HasBreaker gates the hcperf_breaker_* family. BreakerState uses the
	// policy.BreakerState encoding: 0 closed, 1 half-open, 2 open.
	HasBreaker                         bool
	BreakerState                       int
	BreakerOpens, BreakerShortCircuits uint64
}

// WritePrometheus renders every metric in Prometheus text exposition
// format. live is read from the manager and policy layer at scrape time so
// the gauges cannot go stale.
func (m *Metrics) WritePrometheus(w io.Writer, live LiveStats) error {
	var b []byte
	add := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	gauge := func(name, help string, v any) {
		add("# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		add("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("hcperf_queue_depth", "Jobs waiting in the submission queue.", live.QueueDepth)
	gauge("hcperf_inflight_runs", "Executions currently running.", m.InFlight.Load())
	gauge("hcperf_cache_entries", "Completed runs held in the LRU result cache.", live.CacheLen)
	if live.HasLimiter {
		counter("hcperf_ratelimit_allowed_total", "Requests admitted by the per-client rate limiter.", live.RatelimitAllowed)
		counter("hcperf_ratelimit_limited_total", "Requests rejected with 429 by the per-client rate limiter.", live.RatelimitLimited)
		gauge("hcperf_ratelimit_tracked_keys", "Client keys currently tracked by the rate limiter.", live.RatelimitKeys)
	}
	if live.HasBreaker {
		gauge("hcperf_breaker_state", "Execute-stage circuit breaker state (0 closed, 1 half-open, 2 open).", live.BreakerState)
		counter("hcperf_breaker_opens_total", "Times the circuit breaker tripped open.", live.BreakerOpens)
		counter("hcperf_breaker_shortcircuit_total", "Executions fast-failed while the breaker was open.", live.BreakerShortCircuits)
	}
	counter("hcperf_cache_hits_total", "Submissions served from a completed cached run.", m.CacheHits.Load())
	counter("hcperf_dedup_hits_total", "Submissions coalesced onto an in-flight identical run.", m.DedupHits.Load())
	counter("hcperf_cache_misses_total", "Submissions that scheduled a new execution.", m.Misses.Load())
	counter("hcperf_shed_total", "Submissions rejected with 429 because the queue was full.", m.Shed.Load())
	counter("hcperf_drain_rejected_total", "Submissions refused with 503 during drain.", m.Rejected.Load())
	counter("hcperf_runs_completed_total", "Executions that finished successfully.", m.Completed.Load())
	counter("hcperf_runs_failed_total", "Executions that finished with an error.", m.Failed.Load())
	counter("hcperf_runs_cancelled_total", "Executions cancelled by shutdown before or while running.", m.Cancelled.Load())
	counter("hcperf_optimize_candidates_total", "Candidate evaluations across all optimize jobs.", m.OptimizeCandidates.Load())
	counter("hcperf_optimize_generations_total", "Completed search generations across all optimize jobs.", m.OptimizeGenerations.Load())
	counter("hcperf_sweep_cells_total", "Batch-sweep cells processed.", m.SweepCells.Load())
	counter("hcperf_sweep_cache_hits_total", "Batch-sweep cells satisfied from a store tier without re-execution.", m.SweepCacheHits.Load())

	// The tiered result store, one counter family per metric with a tier
	// label, so dashboards can tell a warm memory cache from a disk
	// restore after a restart.
	tiered := func(name, help string, memory, disk uint64) {
		add("# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		add("%s{tier=\"memory\"} %d\n", name, memory)
		add("%s{tier=\"disk\"} %d\n", name, disk)
	}
	st := m.Store
	tiered("hcperf_store_hits_total", "Result-store lookups satisfied, by tier.",
		st.MemoryHits.Load(), st.DiskHits.Load())
	tiered("hcperf_store_misses_total", "Result-store lookups that fell through, by tier.",
		st.MemoryMisses.Load(), st.DiskMisses.Load())
	tiered("hcperf_store_evictions_total", "Result-store entries evicted to stay within capacity, by tier.",
		st.MemoryEvictions.Load(), st.DiskEvictions.Load())
	counter("hcperf_store_corrupt_total", "Disk-store entries that failed to decode and were quarantined.", st.Corrupt.Load())

	m.mu.Lock()
	if len(m.optimizeBest) > 0 {
		names := make([]string, 0, len(m.optimizeBest))
		for name := range m.optimizeBest {
			names = append(names, name)
		}
		sort.Strings(names)
		add("# HELP hcperf_optimize_best Best objective value found across all optimize jobs.\n")
		add("# TYPE hcperf_optimize_best gauge\n")
		for _, name := range names {
			add("hcperf_optimize_best{objective=%q} %g\n", name, m.optimizeBest[name])
		}
	}
	m.mu.Unlock()

	m.mu.Lock()
	kinds := make([]string, 0, len(m.latency))
	for k := range m.latency {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	if len(kinds) > 0 {
		add("# HELP hcperf_run_duration_seconds Wall-clock duration of completed executions.\n")
		add("# TYPE hcperf_run_duration_seconds histogram\n")
	}
	for _, k := range kinds {
		h := m.latency[k]
		cum := uint64(0)
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			add("hcperf_run_duration_seconds_bucket{experiment=%q,le=%q} %d\n", k, fmt.Sprintf("%g", ub), cum)
		}
		cum += h.counts[len(latencyBuckets)]
		add("hcperf_run_duration_seconds_bucket{experiment=%q,le=\"+Inf\"} %d\n", k, cum)
		add("hcperf_run_duration_seconds_sum{experiment=%q} %g\n", k, h.sum)
		add("hcperf_run_duration_seconds_count{experiment=%q} %d\n", k, h.n)
	}
	m.mu.Unlock()

	_, err := w.Write(b)
	return err
}
