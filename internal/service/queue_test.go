package service

import (
	"net/http"
	"testing"
	"time"
)

// TestQueuePositionAndSubmittedTimestamp pins satellite behaviour of the
// job-status surface: queued jobs report their position in submission
// order, the position drains as workers free up, and every status carries
// the enqueue timestamp.
func TestQueuePositionAndSubmittedTimestamp(t *testing.T) {
	fake := newFakeRunner(true)
	srv, ts := newTestServer(t, Config{Workers: 1, QueueSize: 8, Run: fake.Run})

	// First job occupies the single worker.
	code, running, _ := postRun(t, ts, `{"experiment": "fig5", "seed": 1}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit 1 = %d, want 202", code)
	}
	<-fake.started

	// Two more queue up behind it, in submission order.
	_, second, _ := postRun(t, ts, `{"experiment": "fig5", "seed": 2}`)
	_, third, _ := postRun(t, ts, `{"experiment": "fig5", "seed": 3}`)

	for _, st := range []runStatus{running, second, third} {
		if st.Submitted == "" {
			t.Errorf("job %s missing submitted timestamp", st.ID)
		} else if _, err := time.Parse(time.RFC3339Nano, st.Submitted); err != nil {
			t.Errorf("job %s submitted %q not RFC3339: %v", st.ID, st.Submitted, err)
		}
	}
	if second.QueuePosition == nil || *second.QueuePosition != 0 {
		t.Fatalf("second job queue position = %v, want 0", second.QueuePosition)
	}
	if third.QueuePosition == nil || *third.QueuePosition != 1 {
		t.Fatalf("third job queue position = %v, want 1", third.QueuePosition)
	}

	// The running job reports no position.
	var got runStatus
	if code := getJSON(t, ts.URL+"/v1/runs/"+running.ID, &got); code != http.StatusOK {
		t.Fatalf("get running = %d", code)
	}
	if got.QueuePosition != nil {
		t.Fatalf("running job has queue position %d", *got.QueuePosition)
	}

	// Releasing the worker drains the queue; the third job's position
	// reaches zero before it runs, then disappears once it finishes.
	close(fake.release)
	for _, st := range []runStatus{running, second, third} {
		job, ok := srv.Manager().Job(st.ID)
		if !ok {
			t.Fatalf("job %s not found", st.ID)
		}
		<-job.Done()
	}
	if code := getJSON(t, ts.URL+"/v1/runs/"+third.ID, &got); code != http.StatusOK {
		t.Fatalf("get third = %d", code)
	}
	if got.State != StateDone || got.QueuePosition != nil {
		t.Fatalf("finished job status = %+v, want done with no queue position", got)
	}
}
