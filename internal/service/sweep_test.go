package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"hcperf/internal/store"
)

func TestSweepExpansionOrderAndParams(t *testing.T) {
	var sr SweepRequest
	body := `{
		"template": {"scenario": "carfollow"},
		"grid": {"seed": [1, 2], "duration": [1, 2]}
	}`
	if err := json.Unmarshal([]byte(body), &sr); err != nil {
		t.Fatal(err)
	}
	cells, err := expandSweep(sr)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("expanded %d cells, want 4", len(cells))
	}
	// Axes iterate in sorted path order ("duration" before "seed"), first
	// axis slowest.
	wantParams := []string{
		"duration=1 seed=1",
		"duration=1 seed=2",
		"duration=2 seed=1",
		"duration=2 seed=2",
	}
	seen := make(map[string]int)
	for i, c := range cells {
		if got := fmtParams(c.Params); got != wantParams[i] {
			t.Errorf("cell %d params = %q, want %q", i, got, wantParams[i])
		}
		d := c.Req.Digest()
		if prev, dup := seen[d]; dup {
			t.Errorf("cells %d and %d share a digest", prev, i)
		}
		seen[d] = i
		if c.Req.Spec == nil || c.Req.Spec.Scenario != "carfollow" {
			t.Errorf("cell %d is not a carfollow spec request", i)
		}
	}
}

func TestSweepExpansionRejectsBadInput(t *testing.T) {
	for _, tt := range []struct{ name, body, wantErr string }{
		{"no template", `{"grid": {"seed": [1]}}`, "template"},
		{"empty axis", `{"template": {"scenario": "carfollow"}, "grid": {"seed": []}}`, "no values"},
		{"unknown spec field", `{"template": {"scenario": "carfollow"}, "grid": {"sead": [1]}}`, "sead"},
		{"bad scenario", `{"template": {"scenario": "flying"}, "grid": {}}`, "flying"},
		{"oversize", fmt.Sprintf(`{"template": {"scenario": "carfollow"}, "grid": {"seed": [%s1000]}}`,
			strings.Repeat("1,", maxSweepCells)), "cells"},
	} {
		t.Run(tt.name, func(t *testing.T) {
			var sr SweepRequest
			if err := json.Unmarshal([]byte(tt.body), &sr); err != nil {
				t.Fatal(err)
			}
			_, err := expandSweep(sr)
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("expandSweep err = %v, want containing %q", err, tt.wantErr)
			}
		})
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

func parseSSE(t *testing.T, body string) []sseEvent {
	t.Helper()
	var out []sseEvent
	for _, block := range strings.Split(strings.TrimSpace(body), "\n\n") {
		var ev sseEvent
		for _, line := range strings.Split(block, "\n") {
			switch {
			case strings.HasPrefix(line, "event: "):
				ev.name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = strings.TrimPrefix(line, "data: ")
			default:
				t.Fatalf("unparseable SSE line %q", line)
			}
		}
		if ev.name == "" || ev.data == "" {
			t.Fatalf("incomplete SSE block %q", block)
		}
		out = append(out, ev)
	}
	return out
}

func postSweep(t *testing.T, ts string, body string) (int, []sseEvent) {
	t.Helper()
	resp, err := http.Post(ts+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("sweep Content-Type = %q, want text/event-stream", ct)
	}
	return resp.StatusCode, parseSSE(t, sb.String())
}

func TestSweepStreamsCellsInOrder(t *testing.T) {
	f := newFakeRunner(false)
	srv, ts := newTestServer(t, Config{Workers: 4, QueueSize: 8, Run: f.Run})
	body := `{"template": {"scenario": "carfollow"}, "grid": {"seed": [1, 2, 3, 4, 5, 6]}}`

	code, events := postSweep(t, ts.URL, body)
	if code != http.StatusOK {
		t.Fatalf("sweep status = %d, want 200", code)
	}
	if len(events) != 8 { // sweep + 6 cells + done
		t.Fatalf("got %d events, want 8: %+v", len(events), events)
	}
	if events[0].name != "sweep" || events[len(events)-1].name != "done" {
		t.Fatalf("stream not framed by sweep/done: %+v", events)
	}
	var lastID string
	for i, ev := range events[1:7] {
		if ev.name != "cell" {
			t.Fatalf("event %d = %q, want cell", i+1, ev.name)
		}
		var cell sweepCellEvent
		if err := json.Unmarshal([]byte(ev.data), &cell); err != nil {
			t.Fatal(err)
		}
		// Despite 4 workers completing out of order, cells emit in index
		// order.
		if cell.Index != i || cell.Of != 6 {
			t.Errorf("cell %d has index %d of %d, want %d of 6", i, cell.Index, cell.Of, i)
		}
		if cell.State != StateDone || cell.Cache != store.TierMiss || cell.Error != "" {
			t.Errorf("cell %d = %+v, want done/miss", i, cell)
		}
		if cell.ID == "" || cell.ReportDigest == "" {
			t.Errorf("cell %d missing digests: %+v", i, cell)
		}
		lastID = cell.ID
	}
	var done sweepDoneEvent
	if err := json.Unmarshal([]byte(events[7].data), &done); err != nil {
		t.Fatal(err)
	}
	if done.Cells != 6 || done.Completed != 6 || done.Failed != 0 || done.CacheHits != 0 {
		t.Errorf("done = %+v, want 6 cells all completed, no hits", done)
	}
	if got := f.executions.Load(); got != 6 {
		t.Errorf("executions = %d, want 6", got)
	}

	// Sweep cells are ordinary runs: GET serves them, and the manager
	// counts them as cached.
	var st runStatus
	if code := getJSON(t, ts.URL+"/v1/runs/"+lastID, &st); code != http.StatusOK || st.State != StateDone {
		t.Fatalf("GET sweep cell = (%d, %+v), want 200/done", code, st)
	}
	if st.Cache != store.TierMemory {
		t.Errorf("sweep cell cache = %q, want memory", st.Cache)
	}

	// The identical sweep again: every cell is a memory hit, zero new
	// executions.
	_, events = postSweep(t, ts.URL, body)
	if err := json.Unmarshal([]byte(events[len(events)-1].data), &done); err != nil {
		t.Fatal(err)
	}
	if done.CacheHits != 6 || done.Completed != 6 {
		t.Errorf("re-sweep done = %+v, want 6 cache hits", done)
	}
	if got := f.executions.Load(); got != 6 {
		t.Errorf("executions after re-sweep = %d, want still 6", got)
	}
	_ = srv
}

func TestSweepInvalidBodyIs400(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueSize: 4, Run: newFakeRunner(false).Run})
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json",
		strings.NewReader(`{"template": {"scenario": "carfollow"}, "grid": {"bogus_field": [1]}}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid sweep = %d, want 400", resp.StatusCode)
	}
	assertJSONError(t, resp)
}
