package service

import "container/list"

// lruCache is a size-bounded, recency-ordered set of completed run
// digests. It is deliberately not self-locking: the Manager mutates it
// only under its own mutex, together with the job map the entries point
// into, so membership and the map can never disagree.
type lruCache struct {
	cap   int
	order *list.List               // front = most recently used
	elems map[string]*list.Element // digest -> order element (Value is the digest)
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{cap: capacity, order: list.New(), elems: make(map[string]*list.Element, capacity)}
}

// Add inserts or refreshes a digest and returns the digests evicted to
// stay within capacity.
func (c *lruCache) Add(digest string) (evicted []string) {
	if e, ok := c.elems[digest]; ok {
		c.order.MoveToFront(e)
		return nil
	}
	c.elems[digest] = c.order.PushFront(digest)
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		d := oldest.Value.(string)
		delete(c.elems, d)
		evicted = append(evicted, d)
	}
	return evicted
}

// Bump marks a digest as most recently used; unknown digests are ignored.
func (c *lruCache) Bump(digest string) {
	if e, ok := c.elems[digest]; ok {
		c.order.MoveToFront(e)
	}
}

// Contains reports membership without refreshing recency.
func (c *lruCache) Contains(digest string) bool {
	_, ok := c.elems[digest]
	return ok
}

// Len is the current entry count.
func (c *lruCache) Len() int { return c.order.Len() }
