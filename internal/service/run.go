package service

import (
	"context"

	"hcperf/internal/run"
)

// The serving layer's request, result and executor types ARE the run
// pipeline's — aliases, not copies — so a request submitted over HTTP and
// the same request run from the CLI normalize, digest, execute and persist
// through exactly one implementation (and one digest namespace; see
// TestDigestNamespaceFrozen for the compatibility pin).
type (
	// RunRequest is the body of POST /v1/runs.
	RunRequest = run.Request
	// RunResult is a completed run.
	RunResult = run.Result
	// RunFunc executes one normalized request; tests inject fakes.
	RunFunc = run.Func
)

// Execute is the real execution function (run.Execute); the manager's
// default.
func Execute(ctx context.Context, req RunRequest) (*RunResult, error) {
	return run.Execute(ctx, req)
}
