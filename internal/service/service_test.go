package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hcperf/internal/experiment"
	"hcperf/internal/scenario"
)

// newTestServer mounts a Server with the given runner on httptest.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Manager().Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, ts
}

func postRun(t *testing.T, ts *httptest.Server, body string) (int, runStatus, http.Header) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st runStatus
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("decode %q: %v", raw, err)
		}
	}
	return resp.StatusCode, st, resp.Header
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, v); err != nil {
			t.Fatalf("decode %q: %v", raw, err)
		}
	}
	return resp.StatusCode
}

// assertJSONError checks that a non-2xx response carries the uniform error
// body.
func assertJSONError(t *testing.T, resp *http.Response) {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("error response Content-Type = %q, want JSON", ct)
	}
	var e apiError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("error body is not the JSON error shape: %v", err)
	}
	if e.Error.Code != resp.StatusCode || e.Error.Message == "" {
		t.Errorf("error body = %+v, want code %d and a message", e, resp.StatusCode)
	}
}

func TestSubmitPollLifecycle(t *testing.T) {
	f := newFakeRunner(false)
	srv, ts := newTestServer(t, Config{Workers: 1, QueueSize: 8, Run: f.Run})

	code, st, _ := postRun(t, ts, `{"experiment": "fig5"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST status = %d, want 202", code)
	}
	if st.ID == "" || st.Cached || st.Deduped {
		t.Fatalf("POST body = %+v, want fresh id", st)
	}
	job, ok := srv.Manager().Job(st.ID)
	if !ok {
		t.Fatal("submitted job not resolvable")
	}
	<-job.Done()

	var got runStatus
	if code := getJSON(t, ts.URL+"/v1/runs/"+st.ID, &got); code != http.StatusOK {
		t.Fatalf("GET status = %d, want 200", code)
	}
	if got.State != StateDone || got.Report == nil || got.Error != "" {
		t.Fatalf("GET body = %+v, want done with report", got)
	}
	if got.ElapsedMS < 0 {
		t.Errorf("elapsed_ms = %v, want >= 0", got.ElapsedMS)
	}

	// A second identical submission is a cache hit served with 200.
	code, st2, _ := postRun(t, ts, `{"experiment": "fig5", "seed": 1}`)
	if code != http.StatusOK || !st2.Cached || st2.ID != st.ID {
		t.Fatalf("cached POST = (%d, %+v), want 200 + cached + same id", code, st2)
	}
	if f.executions.Load() != 1 {
		t.Errorf("executions = %d, want 1", f.executions.Load())
	}
}

func TestHTTPSingleflight(t *testing.T) {
	f := newFakeRunner(true)
	_, ts := newTestServer(t, Config{Workers: 2, QueueSize: 16, Run: f.Run})

	const n = 6
	ids := make([]string, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			code, st, _ := postRun(t, ts, `{"experiment": "fig5"}`)
			if code != http.StatusAccepted {
				t.Errorf("POST %d status = %d, want 202", i, code)
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	close(f.release)
	for i := 1; i < n; i++ {
		if ids[i] != ids[0] {
			t.Errorf("submission %d got id %s, want %s", i, ids[i], ids[0])
		}
	}
	if got := f.executions.Load(); got != 1 {
		t.Errorf("executions = %d, want exactly 1", got)
	}
}

func TestOverloadSheds429(t *testing.T) {
	f := newFakeRunner(true)
	srv, ts := newTestServer(t, Config{Workers: 1, QueueSize: 1, Run: f.Run})

	code, stA, _ := postRun(t, ts, `{"experiment": "fig5", "seed": 1}`)
	if code != http.StatusAccepted {
		t.Fatalf("first POST = %d, want 202", code)
	}
	<-f.started // the worker holds seed 1; the queue is free again
	if code, _, _ := postRun(t, ts, `{"experiment": "fig5", "seed": 2}`); code != http.StatusAccepted {
		t.Fatalf("second POST = %d, want 202", code)
	}
	// The burst overflows the bounded queue: shed, not wedged.
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"experiment": "fig5", "seed": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("burst POST = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 carries no Retry-After")
	}
	assertJSONError(t, resp)

	// The server still answers while loaded.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz during overload = %d, want 200", code)
	}
	metrics := fetchMetrics(t, ts)
	if !strings.Contains(metrics, "hcperf_shed_total 1") {
		t.Errorf("metrics missing shed counter:\n%s", metrics)
	}

	close(f.release)
	job, _ := srv.Manager().Job(stA.ID)
	<-job.Done()
}

func fetchMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestMetricsExposition(t *testing.T) {
	f := newFakeRunner(false)
	srv, ts := newTestServer(t, Config{Workers: 1, QueueSize: 8, Run: f.Run})

	_, st, _ := postRun(t, ts, `{"experiment": "fig5"}`)
	job, _ := srv.Manager().Job(st.ID)
	<-job.Done()
	postRun(t, ts, `{"experiment": "fig5"}`) // cache hit

	metrics := fetchMetrics(t, ts)
	for _, want := range []string{
		"hcperf_queue_depth 0",
		"hcperf_cache_entries 1",
		"hcperf_cache_hits_total 1",
		"hcperf_cache_misses_total 1",
		"hcperf_runs_completed_total 1",
		`hcperf_run_duration_seconds_count{experiment="fig5"} 1`,
		`hcperf_run_duration_seconds_bucket{experiment="fig5",le="+Inf"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

func TestErrorPathsReturnJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueSize: 4, Run: newFakeRunner(false).Run})
	for _, tt := range []struct {
		name, method, path, body string
		want                     int
	}{
		{name: "malformed body", method: "POST", path: "/v1/runs", body: `{"experiment":`, want: http.StatusBadRequest},
		{name: "unknown field", method: "POST", path: "/v1/runs", body: `{"experiment": "fig5", "bogus": 1}`, want: http.StatusBadRequest},
		{name: "invalid request", method: "POST", path: "/v1/runs", body: `{}`, want: http.StatusBadRequest},
		{name: "unknown run", method: "GET", path: "/v1/runs/deadbeef", want: http.StatusNotFound},
		{name: "unknown trace", method: "GET", path: "/v1/runs/deadbeef/trace", want: http.StatusNotFound},
	} {
		t.Run(tt.name, func(t *testing.T) {
			req, err := http.NewRequest(tt.method, ts.URL+tt.path, strings.NewReader(tt.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tt.want {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tt.want)
			}
			assertJSONError(t, resp)
		})
	}
}

func TestExperimentsListing(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueSize: 1, Run: newFakeRunner(false).Run})
	var got struct {
		Experiments []experiment.Info `json:"experiments"`
		Scenarios   []string          `json:"scenarios"`
	}
	if code := getJSON(t, ts.URL+"/v1/experiments", &got); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	want := experiment.List()
	if len(got.Experiments) != len(want) {
		t.Fatalf("listing has %d experiments, want %d", len(got.Experiments), len(want))
	}
	for i := range want {
		if got.Experiments[i] != want[i] {
			t.Errorf("listing[%d] = %+v, want %+v", i, got.Experiments[i], want[i])
		}
	}
	if len(got.Scenarios) != len(scenario.ScenarioNames()) {
		t.Errorf("scenarios = %v, want all %d kinds", got.Scenarios, len(scenario.ScenarioNames()))
	}
	for i := 1; i < len(got.Scenarios); i++ {
		if got.Scenarios[i] < got.Scenarios[i-1] {
			t.Errorf("scenario listing not sorted: %v", got.Scenarios)
		}
	}
}

func TestVersionEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueSize: 1, Run: newFakeRunner(false).Run})
	var got struct {
		Module string `json:"module"`
		Go     string `json:"go"`
	}
	if code := getJSON(t, ts.URL+"/v1/version", &got); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if got.Module == "" || !strings.HasPrefix(got.Go, "go") {
		t.Errorf("version = %+v, want module and toolchain", got)
	}
}

func TestHealthzDrains(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueSize: 1, Run: newFakeRunner(false).Run})
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", code)
	}
	if err := srv.Manager().Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	assertJSONError(t, resp)
	// Submissions during drain carry the same JSON error discipline.
	resp, err = http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(`{"experiment": "fig5"}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining = %d, want 503", resp.StatusCode)
	}
	assertJSONError(t, resp)
}

// TestRealRunEndToEnd drives the real Execute path (no fake) through the
// API with the fast fig5 experiment and a short traced scenario: the demo
// the acceptance criteria name, in test form.
func TestRealRunEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2, QueueSize: 8})

	// Experiment run, submitted twice: one execution, second is a hit.
	code, st, _ := postRun(t, ts, `{"experiment": "fig5"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d, want 202", code)
	}
	job, _ := srv.Manager().Job(st.ID)
	<-job.Done()
	code, st2, _ := postRun(t, ts, `{"experiment": "fig5"}`)
	if code != http.StatusOK || !st2.Cached {
		t.Fatalf("second POST = (%d, cached=%t), want 200 cached", code, st2.Cached)
	}
	var got runStatus
	getJSON(t, ts.URL+"/v1/runs/"+st.ID, &got)
	if got.State != StateDone || got.Report == nil || len(got.Report.Rows) == 0 {
		t.Fatalf("run status = %+v, want done fig5 report", got)
	}
	if got.Digest == "" {
		t.Error("completed run has no report digest")
	}

	// Traced scenario run: trace endpoint serves both formats.
	code, sc, _ := postRun(t, ts, `{"scenario": "carfollow", "scheme": "edf", "duration": 2, "trace": true}`)
	if code != http.StatusAccepted {
		t.Fatalf("scenario POST = %d, want 202", code)
	}
	scJob, _ := srv.Manager().Job(sc.ID)
	<-scJob.Done()
	for format, wantCT := range map[string]string{"csv": "text/csv", "chrome": "application/json"} {
		resp, err := http.Get(fmt.Sprintf("%s/v1/runs/%s/trace?format=%s", ts.URL, sc.ID, format))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("trace %s = %d, want 200", format, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, wantCT) {
			t.Errorf("trace %s Content-Type = %q, want %q", format, ct, wantCT)
		}
		if len(body) == 0 {
			t.Errorf("trace %s body empty", format)
		}
	}
	// The untraced experiment run has no lifecycle trace to serve.
	resp, err := http.Get(ts.URL + "/v1/runs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("experiment trace = %d, want 404", resp.StatusCode)
	}
	assertJSONError(t, resp)

	// Raw series ride along only when asked.
	var slim, full runStatus
	getJSON(t, ts.URL+"/v1/runs/"+sc.ID, &slim)
	getJSON(t, ts.URL+"/v1/runs/"+sc.ID+"?series=1", &full)
	if slim.Report == nil || len(slim.Report.Series) != 0 {
		t.Error("status without ?series=1 included raw series")
	}
	if full.Report == nil || len(full.Report.Series) == 0 {
		t.Error("status with ?series=1 carried no raw series")
	}
}
