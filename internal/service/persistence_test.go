package service

import (
	"context"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"hcperf/internal/store"
)

func openServiceDisk(t *testing.T, dir string) *store.Disk {
	t.Helper()
	d, err := store.OpenDisk(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDiskTierSurvivesRestart is the restart-persistence contract: a run
// completed by one manager is a disk hit — not a re-execution — in a fresh
// manager sharing the store directory, exactly the CLI-pre-warms-server
// flow.
func TestDiskTierSurvivesRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")

	f1 := newFakeRunner(false)
	m1 := NewManager(ManagerConfig{Workers: 1, Run: f1.Run, Disk: openServiceDisk(t, dir)})
	j, outcome, err := m1.Submit(expReq(t, 1))
	if err != nil || outcome != SubmitNew {
		t.Fatalf("first submit = (%v, %v), want new", outcome, err)
	}
	snap := waitDone(t, j)
	if snap.State != StateDone || snap.Source != store.TierMemory {
		t.Fatalf("first run: state=%s source=%s, want done/memory", snap.State, snap.Source)
	}
	if err := m1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// A fresh process: new manager, new runner, same directory.
	f2 := newFakeRunner(false)
	m2 := NewManager(ManagerConfig{Workers: 1, Run: f2.Run, Disk: openServiceDisk(t, dir)})
	defer func() {
		if err := m2.Shutdown(context.Background()); err != nil {
			t.Error(err)
		}
	}()
	j2, outcome, err := m2.Submit(expReq(t, 1))
	if err != nil || outcome != SubmitCachedDisk {
		t.Fatalf("restarted submit = (%v, %v), want disk-cached", outcome, err)
	}
	snap2 := j2.Snapshot()
	if snap2.State != StateDone || snap2.Source != store.TierDisk {
		t.Fatalf("restored job: state=%s source=%s, want done/disk", snap2.State, snap2.Source)
	}
	if snap2.Result == nil || snap2.Result.Report.ID != "fig5" {
		t.Fatalf("restored result = %+v, want the fig5 report", snap2.Result)
	}
	if got := f2.executions.Load(); got != 0 {
		t.Errorf("restarted manager executed %d times, want 0 (disk hit)", got)
	}
	// The restored job is now memory-resident: a third submission is an
	// ordinary memory hit.
	if _, outcome, _ := m2.Submit(expReq(t, 1)); outcome != SubmitCached {
		t.Errorf("re-submit after restore = %v, want memory-cached", outcome)
	}
}

// TestMemoryEvictionFallsBackToDisk: a digest evicted from the in-memory
// LRU is restored from disk instead of re-executing.
func TestMemoryEvictionFallsBackToDisk(t *testing.T) {
	f := newFakeRunner(false)
	// Shards: 1 — eviction order across digests only holds in one shard.
	m := NewManager(ManagerConfig{
		Workers: 1, CacheSize: 1, Shards: 1, Run: f.Run,
		Disk: openServiceDisk(t, filepath.Join(t.TempDir(), "results")),
	})
	defer func() {
		if err := m.Shutdown(context.Background()); err != nil {
			t.Error(err)
		}
	}()
	j1, _, err := m.Submit(expReq(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	j2, _, err := m.Submit(expReq(t, 2)) // evicts seed 1 from the memory tier
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)

	j3, outcome, err := m.Submit(expReq(t, 1))
	if err != nil || outcome != SubmitCachedDisk {
		t.Fatalf("evicted resubmit = (%v, %v), want disk-cached", outcome, err)
	}
	if snap := j3.Snapshot(); snap.Source != store.TierDisk {
		t.Errorf("source = %s, want disk", snap.Source)
	}
	if got := f.executions.Load(); got != 2 {
		t.Errorf("executions = %d, want 2 (eviction must not re-execute)", got)
	}
}

// TestCacheProvenance pins the X-HCPerf-Cache header and the `cache` JSON
// field across the miss → memory → disk lifecycle.
func TestCacheProvenance(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	f := newFakeRunner(false)
	srv, ts := newTestServer(t, Config{Workers: 1, QueueSize: 8, Run: f.Run, Disk: openServiceDisk(t, dir)})

	code, st, hdr := postRun(t, ts, `{"experiment": "fig5"}`)
	if code != http.StatusAccepted || hdr.Get("X-HCPerf-Cache") != "miss" || st.Cache != store.TierMiss {
		t.Fatalf("fresh POST = (%d, header %q, cache %q), want 202/miss/miss",
			code, hdr.Get("X-HCPerf-Cache"), st.Cache)
	}
	job, _ := srv.Manager().Job(st.ID)
	<-job.Done()

	code, st2, hdr := postRun(t, ts, `{"experiment": "fig5"}`)
	if code != http.StatusOK || hdr.Get("X-HCPerf-Cache") != "memory" || st2.Cache != store.TierMemory {
		t.Fatalf("warm POST = (%d, header %q, cache %q), want 200/memory/memory",
			code, hdr.Get("X-HCPerf-Cache"), st2.Cache)
	}
	var got runStatus
	if code := getJSON(t, ts.URL+"/v1/runs/"+st.ID, &got); code != http.StatusOK || got.Cache != store.TierMemory {
		t.Fatalf("GET = (%d, cache %q), want 200/memory", code, got.Cache)
	}

	// A second server on the same store: the submission restores from
	// disk and says so.
	f2 := newFakeRunner(false)
	_, ts2 := newTestServer(t, Config{Workers: 1, QueueSize: 8, Run: f2.Run, Disk: openServiceDisk(t, dir)})
	code, st3, hdr := postRun(t, ts2, `{"experiment": "fig5"}`)
	if code != http.StatusOK || hdr.Get("X-HCPerf-Cache") != "disk" || st3.Cache != store.TierDisk || !st3.Cached {
		t.Fatalf("disk POST = (%d, header %q, cache %q, cached %t), want 200/disk/disk/true",
			code, hdr.Get("X-HCPerf-Cache"), st3.Cache, st3.Cached)
	}
	if code := getJSON(t, ts2.URL+"/v1/runs/"+st3.ID, &got); code != http.StatusOK || got.Cache != store.TierDisk {
		t.Fatalf("disk GET = (%d, cache %q), want 200/disk", code, got.Cache)
	}
}

// TestStoreMetricsExposition pins the per-tier hcperf_store_* families.
func TestStoreMetricsExposition(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	f := newFakeRunner(false)
	srv, ts := newTestServer(t, Config{Workers: 1, QueueSize: 8, Run: f.Run, Disk: openServiceDisk(t, dir)})

	_, st, _ := postRun(t, ts, `{"experiment": "fig5"}`)
	job, _ := srv.Manager().Job(st.ID)
	<-job.Done()
	postRun(t, ts, `{"experiment": "fig5"}`) // memory hit

	metrics := fetchMetrics(t, ts)
	for _, want := range []string{
		`hcperf_store_hits_total{tier="memory"} 1`,
		`hcperf_store_hits_total{tier="disk"} 0`,
		`hcperf_store_misses_total{tier="memory"} 1`,
		`hcperf_store_misses_total{tier="disk"} 1`,
		`hcperf_store_evictions_total{tier="memory"} 0`,
		`hcperf_store_evictions_total{tier="disk"} 0`,
		"hcperf_store_corrupt_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestNotFoundJSONEnvelope pins the uniform JSON 404: unknown job IDs on
// both job endpoints and arbitrary unknown paths all carry the apiError
// envelope.
func TestNotFoundJSONEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueSize: 4, Run: newFakeRunner(false).Run})
	for _, path := range []string{
		"/v1/runs/0000000000000000000000000000000000000000000000000000000000000000",
		"/v1/optimize/deadbeef",
		"/v1/nope",
		"/totally/else",
		"/",
	} {
		t.Run(path, func(t *testing.T) {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusNotFound {
				t.Fatalf("GET %s = %d, want 404", path, resp.StatusCode)
			}
			assertJSONError(t, resp)
		})
	}
}
