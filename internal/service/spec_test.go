package service

import (
	"net/http"
	"strings"
	"testing"
)

// TestSpecRunEndToEnd drives an inline declarative spec through the real
// Execute path: submit, poll, verify the report, then prove the
// content-addressed cache treats an equivalent spelling of the same spec
// as a hit.
func TestSpecRunEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2, QueueSize: 8})

	body := `{"spec": {
		"name": "fusion-overload",
		"scenario": "carfollow",
		"scheme": "edf",
		"duration": 2,
		"loads": [{"task": "sensor_fusion", "from": 0.5, "to": 1.5, "factor": 2.0}]
	}}`
	code, st, _ := postRun(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("spec POST = %d, want 202", code)
	}
	job, _ := srv.Manager().Job(st.ID)
	<-job.Done()

	var got runStatus
	getJSON(t, ts.URL+"/v1/runs/"+st.ID, &got)
	if got.State != StateDone || got.Report == nil || len(got.Report.Rows) == 0 {
		t.Fatalf("spec run status = %+v, want done report", got)
	}
	if got.Report.ID != "spec-fusion-overload" {
		t.Errorf("report ID = %q, want spec-fusion-overload", got.Report.ID)
	}

	// Identical resubmission: cache hit.
	code, st2, _ := postRun(t, ts, body)
	if code != http.StatusOK || !st2.Cached || st2.ID != st.ID {
		t.Fatalf("resubmit = (%d, cached=%t, id=%s), want 200 cached %s", code, st2.Cached, st2.ID, st.ID)
	}

	// An equivalent spelling — defaults written out explicitly — must
	// normalize to the same digest and hit the same cache entry.
	explicit := `{"spec": {
		"name": "fusion-overload",
		"scenario": "carfollow",
		"graph": "ad23",
		"scheme": "edf",
		"seed": 1,
		"duration": 2,
		"loads": [{"task": "sensor_fusion", "from": 0.5, "to": 1.5, "factor": 2.0}]
	}}`
	code, st3, _ := postRun(t, ts, explicit)
	if code != http.StatusOK || !st3.Cached || st3.ID != st.ID {
		t.Fatalf("equivalent spec = (%d, cached=%t, id=%s), want 200 cached %s", code, st3.Cached, st3.ID, st.ID)
	}
}

// TestFleetSpecRunEndToEnd drives a coupled fleet spec through the full
// service path: POST, poll, report rows, and a cache hit on resubmission —
// fleet runs flow through the content-addressed cache like any other spec.
func TestFleetSpecRunEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2, QueueSize: 8})

	body := `{"spec": {
		"name": "mini-platoon",
		"scenario": "carfollow",
		"scheme": "hcperf",
		"duration": 4,
		"fleet": {"n": 6, "coupling": "platoon", "spacing": 18}
	}}`
	code, st, _ := postRun(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("fleet spec POST = %d, want 202", code)
	}
	job, _ := srv.Manager().Job(st.ID)
	<-job.Done()

	var got runStatus
	getJSON(t, ts.URL+"/v1/runs/"+st.ID, &got)
	if got.State != StateDone || got.Report == nil {
		t.Fatalf("fleet run status = %+v, want done report", got)
	}
	if got.Report.ID != "spec-mini-platoon" {
		t.Errorf("report ID = %q, want spec-mini-platoon", got.Report.ID)
	}
	found := false
	for _, row := range got.Report.Rows {
		if row[0] == "fleet size" && row[1] == "6" {
			found = true
		}
	}
	if !found {
		t.Errorf("report rows missing fleet size: %v", got.Report.Rows)
	}

	code, st2, _ := postRun(t, ts, body)
	if code != http.StatusOK || !st2.Cached || st2.ID != st.ID {
		t.Fatalf("fleet resubmit = (%d, cached=%t, id=%s), want 200 cached %s", code, st2.Cached, st2.ID, st.ID)
	}
}

// TestSpecRequestValidation exercises every rejection path for inline
// specs: each must return 400 with the uniform JSON error body.
func TestSpecRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueSize: 4})

	for name, body := range map[string]string{
		"spec plus scenario":     `{"scenario": "carfollow", "spec": {"scenario": "carfollow"}}`,
		"request-level scheme":   `{"spec": {"scenario": "carfollow"}, "scheme": "edf"}`,
		"request-level duration": `{"spec": {"scenario": "carfollow"}, "duration": 5}`,
		"unknown scenario":       `{"spec": {"scenario": "bogus"}}`,
		"unknown graph":          `{"spec": {"scenario": "carfollow", "graph": "bogus"}}`,
		"unknown load task":      `{"spec": {"scenario": "carfollow", "loads": [{"task": "bogus", "from": 0, "to": 1, "factor": 2}]}}`,
		"out-of-range rate":      `{"spec": {"scenario": "carfollow", "rate_overrides": {"camera_front": 1e9}}}`,
		"negative duration":      `{"spec": {"scenario": "carfollow", "duration": -1}}`,
		"unsupported capability": `{"spec": {"scenario": "motivation", "gamma_cap": 2}}`,
		"unknown spec field":     `{"spec": {"scenario": "carfollow", "bogus": 1}}`,
		"fleet zero vehicles":    `{"spec": {"scenario": "carfollow", "fleet": {"n": 0}}}`,
		"fleet unknown coupling": `{"spec": {"scenario": "carfollow", "fleet": {"n": 4, "coupling": "v2x"}}}`,
		"fleet negative spacing": `{"spec": {"scenario": "carfollow", "fleet": {"n": 4, "coupling": "platoon", "spacing": -1}}}`,
		"fleet outside family":   `{"spec": {"scenario": "lanekeep", "fleet": {"n": 4}}}`,
		"fleet seed mismatch":    `{"spec": {"scenario": "carfollow", "fleet": {"n": 4, "vehicle_seeds": [1, 2]}}}`,
	} {
		t.Run(name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, want 400", resp.StatusCode)
			}
			assertJSONError(t, resp)
		})
	}
}
