package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"hcperf/internal/scenario"
	"hcperf/internal/search"
)

// tinyOptimizeBody is a fast real search: a 4-point space, 2 candidates of
// budget beyond the two baselines, 1 replica, 10 simulated seconds.
const tinyOptimizeBody = `{
  "spec": {"scenario": "carfollow", "duration": 10},
  "space": {
    "params": [{"name": "gamma_cap", "min": 0.01, "max": 0.04, "step": 0.01}],
    "schemes": ["hcperf"]
  },
  "strategy": "random",
  "budget": 3,
  "seeds": 1
}`

func postOptimize(t *testing.T, url, body string) (int, runStatus) {
	t.Helper()
	resp, err := http.Post(url+"/v1/optimize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st runStatus
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("decode %q: %v", raw, err)
		}
	}
	return resp.StatusCode, st
}

// TestOptimizeEndToEnd drives the real executor: submit, await, inspect the
// structured report, then assert the identical resubmission is served from
// cache.
func TestOptimizeEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})

	code, st := postOptimize(t, ts.URL, tinyOptimizeBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	if st.Request.Optimize == nil {
		t.Fatal("status request has no optimize block")
	}
	if st.Submitted == "" {
		t.Error("status missing submitted timestamp")
	}

	job, ok := srv.Manager().Job(st.ID)
	if !ok {
		t.Fatalf("job %s not found", st.ID)
	}
	select {
	case <-job.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("optimize job did not finish")
	}

	var got runStatus
	if code := getJSON(t, ts.URL+"/v1/optimize/"+st.ID, &got); code != http.StatusOK {
		t.Fatalf("get status = %d, want 200", code)
	}
	if got.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", got.State, got.Error)
	}
	if got.Optimize == nil {
		t.Fatal("done status has no optimize report")
	}
	if got.Optimize.Evaluated < 1 || got.Optimize.Evaluated > 3 {
		t.Fatalf("evaluated = %d, want 1..3", got.Optimize.Evaluated)
	}
	if len(got.Optimize.Front) == 0 || len(got.Optimize.Best) == 0 {
		t.Fatalf("report missing front/best: %+v", got.Optimize)
	}
	if got.Progress == nil || got.Progress.Evaluated != got.Optimize.Evaluated {
		t.Fatalf("final progress %+v does not match report (%d evaluated)", got.Progress, got.Optimize.Evaluated)
	}
	if got.Report == nil || got.Digest == "" {
		t.Fatal("optimize run missing rendered report/digest")
	}

	// Identical resubmission: served from cache with the same digest ID.
	code2, st2 := postOptimize(t, ts.URL, tinyOptimizeBody)
	if code2 != http.StatusOK || !st2.Cached {
		t.Fatalf("resubmit status = %d cached=%v, want 200 cached", code2, st2.Cached)
	}
	if st2.ID != st.ID {
		t.Fatalf("resubmit ID %s != original %s", st2.ID, st.ID)
	}

	// /v1/runs sees the same job (shared digest namespace).
	var viaRuns runStatus
	if code := getJSON(t, ts.URL+"/v1/runs/"+st.ID, &viaRuns); code != http.StatusOK {
		t.Fatalf("get via /v1/runs = %d, want 200", code)
	}

	// Metrics exposition carries the optimize counters and best gauges.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"hcperf_optimize_candidates_total",
		"hcperf_optimize_generations_total",
		`hcperf_optimize_best{objective="err_p99"}`,
		"hcperf_cache_hits_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestOptimizeRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Run: newFakeRunner(false).Run})
	for name, body := range map[string]string{
		"fleet template": `{"spec": {"scenario": "carfollow", "fleet": {"n": 2}}}`,
		"bad scenario":   `{"spec": {"scenario": "lanekeep"}}`,
		"bad strategy":   `{"spec": {"scenario": "carfollow"}, "strategy": "warp"}`,
		"unknown field":  `{"spec": {"scenario": "carfollow"}, "bogus": 1}`,
		"over budget":    `{"spec": {"scenario": "carfollow"}, "budget": 100000}`,
	} {
		code, _ := postOptimize(t, ts.URL, body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, code)
		}
	}
	// optimize + scenario in one /v1/runs envelope violates exactly-one-of.
	code, _, _ := postRun(t, ts, `{"scenario": "carfollow", "optimize": {"spec": {"scenario": "carfollow"}}}`)
	if code != http.StatusBadRequest {
		t.Errorf("mixed kinds: status = %d, want 400", code)
	}
	// optimize runs reject request-level scheme/seed/duration/trace.
	code, _, _ = postRun(t, ts, `{"optimize": {"spec": {"scenario": "carfollow"}}, "seed": 7}`)
	if code != http.StatusBadRequest {
		t.Errorf("request-level seed: status = %d, want 400", code)
	}
}

// TestOptimizeDigestStable pins the request-normalization contract: two
// spellings of the same search (explicit defaults vs empty) share a digest,
// and changing the budget changes it.
func TestOptimizeDigestStable(t *testing.T) {
	base := search.Request{Spec: scenario.Spec{Scenario: "carfollow"}}
	explicit := search.Request{
		Spec:     scenario.Spec{Scenario: "carfollow"},
		Strategy: search.StrategyEvolve,
		Budget:   search.DefaultBudget,
		Seeds:    search.DefaultSeeds,
		Seed:     1,
	}
	d1 := mustDigest(t, RunRequest{Optimize: &base})
	d2 := mustDigest(t, RunRequest{Optimize: &explicit})
	if d1 != d2 {
		t.Fatalf("equivalent optimize requests digest differently: %s vs %s", d1, d2)
	}
	bigger := search.Request{Spec: scenario.Spec{Scenario: "carfollow"}, Budget: 32}
	if d3 := mustDigest(t, RunRequest{Optimize: &bigger}); d3 == d1 {
		t.Fatal("different budgets share a digest")
	}
}

func mustDigest(t *testing.T, r RunRequest) string {
	t.Helper()
	n, err := r.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	return n.Digest()
}
