package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"hcperf/internal/scenario"
	"hcperf/internal/search"
)

// frozenDigest is a byte-for-byte copy of the serving layer's request
// digest as it stood before the pipeline extraction (when RunRequest was
// defined in this package). It is deliberately NOT refactored to share
// code with run.Request.Digest: the whole point is an independent witness
// that the digest namespace did not move, because every disk-store entry
// and every cached run is addressed by these bytes.
func frozenDigest(r RunRequest) string {
	h := sha256.New()
	fmt.Fprintf(h, "exp=%s;scn=%s;scheme=%s;seed=%d;dur=%g;trace=%t",
		r.Experiment, r.Scenario, r.Scheme, r.Seed, r.Duration, r.Trace)
	if r.Spec != nil {
		b, err := json.Marshal(r.Spec)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(h, ";spec=%s", b)
	}
	if r.Optimize != nil {
		b, err := json.Marshal(r.Optimize)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(h, ";opt=%s", b)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func TestDigestNamespaceFrozen(t *testing.T) {
	specJSON := `{
		"scenario": "carfollow",
		"scheme": "edf",
		"seed": 7,
		"duration": 3
	}`
	spec, err := scenario.DecodeSpec(strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	optJSON := `{
		"spec": {"scenario": "carfollow", "duration": 2},
		"objectives": ["err_p99"],
		"strategy": "random",
		"budget": 4,
		"seeds": 1
	}`
	var opt search.Request
	if err := json.Unmarshal([]byte(optJSON), &opt); err != nil {
		t.Fatal(err)
	}

	reqs := []RunRequest{
		{Experiment: "fig5"},
		{Experiment: "fig13", Seed: 9},
		{Scenario: "carfollow"},
		{Scenario: "lanekeep", Scheme: "edf-vd", Seed: 3, Duration: 5, Trace: true},
		{Spec: &spec},
		{Optimize: &opt},
	}
	for i, raw := range reqs {
		req, err := raw.Normalize()
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if got, want := req.Digest(), frozenDigest(req); got != want {
			t.Errorf("request %d: pipeline digest %s != pre-refactor digest %s — the digest namespace moved",
				i, got[:16], want[:16])
		}
	}
}
