package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"hcperf/internal/run"
	"hcperf/internal/runner"
	"hcperf/internal/scenario"
	"hcperf/internal/store"
)

// maxSweepCells bounds one sweep's grid expansion. A sweep is a synchronous
// streamed request; anything larger belongs in multiple sweeps (the shared
// digest namespace makes re-submission free for completed cells).
const maxSweepCells = 512

// SweepRequest is the body of POST /v1/sweeps: a scenario-spec template
// plus a parameter grid. The grid maps dot-paths into the spec JSON (e.g.
// "seed", "duration", "coordinator.vruns") to the list of values that
// axis takes; the sweep runs the full cross product, each cell an ordinary
// pipeline run in the shared digest namespace.
type SweepRequest struct {
	Template json.RawMessage              `json:"template"`
	Grid     map[string][]json.RawMessage `json:"grid"`
}

// sweepCell is one expanded grid point, validated before anything streams.
type sweepCell struct {
	Index  int
	Params map[string]any
	Req    run.Request
}

// sweepAxis is one sorted grid dimension.
type sweepAxis struct {
	path   string
	values []json.RawMessage
}

// expandSweep validates the template and expands the grid cross product
// into normalized run requests. Axes iterate in sorted path order, first
// axis slowest, so cell order is deterministic for a given request.
func expandSweep(sr SweepRequest) ([]sweepCell, error) {
	if len(sr.Template) == 0 {
		return nil, fmt.Errorf("sweep: template is required")
	}
	axes := make([]sweepAxis, 0, len(sr.Grid))
	total := 1
	for path, values := range sr.Grid {
		if len(values) == 0 {
			return nil, fmt.Errorf("sweep: grid axis %q has no values", path)
		}
		axes = append(axes, sweepAxis{path: path, values: values})
		if total *= len(values); total > maxSweepCells {
			return nil, fmt.Errorf("sweep: grid expands past %d cells", maxSweepCells)
		}
	}
	sort.Slice(axes, func(i, j int) bool { return axes[i].path < axes[j].path })

	cells := make([]sweepCell, 0, total)
	idx := make([]int, len(axes)) // odometer over the axes, first slowest
	for i := 0; i < total; i++ {
		// A fresh template decode per cell: axis writes must not leak
		// between cells through shared nested maps.
		var tmpl map[string]any
		if err := json.Unmarshal(sr.Template, &tmpl); err != nil {
			return nil, fmt.Errorf("sweep: template is not a JSON object: %v", err)
		}
		params := make(map[string]any, len(axes))
		for a, ax := range axes {
			var v any
			if err := json.Unmarshal(ax.values[idx[a]], &v); err != nil {
				return nil, fmt.Errorf("sweep: axis %q value %d: %v", ax.path, idx[a], err)
			}
			if err := setPath(tmpl, ax.path, v); err != nil {
				return nil, fmt.Errorf("sweep: axis %q: %v", ax.path, err)
			}
			params[ax.path] = v
		}
		b, err := json.Marshal(tmpl)
		if err != nil {
			return nil, fmt.Errorf("sweep: cell %d: %v", i, err)
		}
		// The strict spec decoder rejects unknown fields, so a typoed axis
		// path fails the whole sweep up front instead of silently running
		// identical cells.
		spec, err := scenario.DecodeSpec(bytes.NewReader(b))
		if err != nil {
			return nil, fmt.Errorf("sweep: cell %d (%s): %v", i, fmtParams(params), err)
		}
		req, err := (run.Request{Spec: &spec}).Normalize()
		if err != nil {
			return nil, fmt.Errorf("sweep: cell %d (%s): %v", i, fmtParams(params), err)
		}
		cells = append(cells, sweepCell{Index: i, Params: params, Req: req})
		for a := len(axes) - 1; a >= 0; a-- {
			if idx[a]++; idx[a] < len(axes[a].values) {
				break
			}
			idx[a] = 0
		}
	}
	return cells, nil
}

// setPath writes v at a dot-path inside a decoded JSON object, creating
// intermediate objects as needed.
func setPath(m map[string]any, path string, v any) error {
	parts := strings.Split(path, ".")
	for _, p := range parts {
		if p == "" {
			return fmt.Errorf("empty path segment in %q", path)
		}
	}
	cur := m
	for _, p := range parts[:len(parts)-1] {
		next, ok := cur[p]
		if !ok || next == nil {
			child := make(map[string]any)
			cur[p] = child
			cur = child
			continue
		}
		child, ok := next.(map[string]any)
		if !ok {
			return fmt.Errorf("path %q crosses non-object field %q", path, p)
		}
		cur = child
	}
	cur[parts[len(parts)-1]] = v
	return nil
}

// fmtParams renders a cell's axis assignment for error messages, sorted.
func fmtParams(params map[string]any) string {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%v", k, params[k])
	}
	return strings.Join(parts, " ")
}

// sweepCellEvent is one SSE `cell` event: the outcome of one grid point.
// Events are emitted strictly in cell-index order regardless of completion
// order.
type sweepCellEvent struct {
	Index        int            `json:"index"`
	Of           int            `json:"of"`
	ID           string         `json:"id"` // request digest; GET /v1/runs/{id}
	Cache        store.Tier     `json:"cache"`
	State        JobState       `json:"state"`
	ReportDigest string         `json:"report_digest,omitempty"`
	Params       map[string]any `json:"params"`
	Error        string         `json:"error,omitempty"`
}

// sweepDoneEvent is the final SSE `done` event.
type sweepDoneEvent struct {
	Cells     int `json:"cells"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	CacheHits int `json:"cache_hits"`
}

// handleSweep expands the grid, validates every cell up front (any invalid
// cell fails the whole sweep with a 400 before anything runs), then fans
// the cells through runner.Map and streams one SSE event per cell in index
// order. Each cell is an ordinary pipeline run: memory tier, disk tier,
// then execution, with completed cells published into the job manager so
// GET /v1/runs/{id} works on them afterwards.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var sr SweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sr); err != nil {
		writeError(w, http.StatusBadRequest, "invalid sweep body: %v", err)
		return
	}
	cells, err := expandSweep(sr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.mgr.Draining() {
		writeError(w, http.StatusServiceUnavailable, "%v", ErrDraining)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	writeSSE(w, "sweep", map[string]int{"cells": len(cells), "workers": s.workers})
	fl.Flush()

	type cellDone struct {
		idx int
		ev  sweepCellEvent
	}
	ch := make(chan cellDone, len(cells))
	go func() {
		defer close(ch)
		// Map's panic isolation is a second line of defense; runSweepCell
		// recovers its own panics so the channel always gets len(cells)
		// sends on the normal path.
		_, _ = runner.Map(r.Context(), s.workers, cells, func(ctx context.Context, c sweepCell) (struct{}, error) {
			ch <- cellDone{c.Index, s.runSweepCell(ctx, c, len(cells))}
			return struct{}{}, nil
		})
	}()

	var summary sweepDoneEvent
	summary.Cells = len(cells)
	pending := make(map[int]sweepCellEvent)
	next := 0
	for d := range ch {
		pending[d.idx] = d.ev
		for {
			ev, ready := pending[next]
			if !ready {
				break
			}
			delete(pending, next)
			next++
			if ev.State == StateDone {
				summary.Completed++
			} else {
				summary.Failed++
			}
			if ev.Cache != store.TierMiss {
				summary.CacheHits++
			}
			writeSSE(w, "cell", ev)
			fl.Flush()
		}
	}
	writeSSE(w, "done", summary)
	fl.Flush()
}

// runSweepCell takes one validated cell through the shared pipeline and
// publishes a fresh result into the job manager. Panics in the executed
// run are captured as that cell's failure, never the sweep's.
func (s *Server) runSweepCell(ctx context.Context, c sweepCell, of int) (ev sweepCellEvent) {
	m := s.mgr
	ev = sweepCellEvent{Index: c.Index, Of: of, Params: c.Params, State: StateFailed, Cache: store.TierMiss}
	defer func() {
		if p := recover(); p != nil {
			ev.State = StateFailed
			ev.Error = fmt.Sprintf("panic: %v", p)
		}
	}()
	p := &run.Pipeline{
		Lookup:  m.CachedResult,
		Disk:    m.disk,
		Metrics: m.metrics.Store,
		Exec:    m.run,
		// The sweep fan-out shares the manager's breaker, so a sick runner
		// fast-fails sweep cells the same way it fast-fails single runs
		// (cache and disk hits above still flow while open).
		Breaker: m.breaker,
	}
	res, tier, digest, err := p.Run(ctx, c.Req)
	ev.ID = digest
	ev.Cache = tier
	m.metrics.SweepCells.Add(1)
	if tier != store.TierMiss {
		m.metrics.SweepCacheHits.Add(1)
	}
	if err != nil {
		ev.Error = err.Error()
		return ev
	}
	// Publish so GET /v1/runs/{id} serves the cell like any other run.
	m.AddCached(c.Req, res, tier)
	ev.State = StateDone
	if d, derr := res.Report.Digest(); derr == nil {
		ev.ReportDigest = d
	}
	return ev
}

// writeSSE renders one server-sent event with a JSON payload.
func writeSSE(w io.Writer, event string, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		// Event payloads are plain structs; a marshal failure is a
		// programming error, but the stream must stay parseable.
		b = []byte(`{}`)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
}
