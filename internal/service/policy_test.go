package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hcperf/internal/policy"
)

// TestShardedSingleflightDedup: the digest-partitioned job map preserves
// the singleflight invariant — at most one live execution per digest — for
// many digests at once, with concurrent duplicate submissions racing each
// other across shards.
func TestShardedSingleflightDedup(t *testing.T) {
	f := newFakeRunner(true)
	m := NewManager(ManagerConfig{Workers: 4, QueueSize: 64, Shards: 8, Run: f.Run})
	defer m.Shutdown(context.Background())

	const digests, dups = 12, 4
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		jobs = make(map[string]*Job) // digest -> the one job every duplicate saw
		newN atomic.Int64
	)
	wg.Add(digests * dups)
	for seed := 0; seed < digests; seed++ {
		req := expReq(t, int64(seed+1))
		for d := 0; d < dups; d++ {
			go func() {
				defer wg.Done()
				j, outcome, err := m.Submit(req)
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				if outcome == SubmitNew {
					newN.Add(1)
				}
				mu.Lock()
				defer mu.Unlock()
				if prev, ok := jobs[j.ID]; ok && prev != j {
					t.Errorf("digest %s produced two distinct jobs", j.ID)
				}
				jobs[j.ID] = j
			}()
		}
	}
	wg.Wait()
	if got := newN.Load(); got != digests {
		t.Errorf("SubmitNew count = %d, want %d (one per digest)", got, digests)
	}
	if len(jobs) != digests {
		t.Errorf("distinct jobs = %d, want %d", len(jobs), digests)
	}
	close(f.release)
	for _, j := range jobs {
		if snap := waitDone(t, j); snap.State != StateDone {
			t.Errorf("state = %s, want done", snap.State)
		}
	}
	if got := f.executions.Load(); got != digests {
		t.Errorf("executions = %d, want exactly %d", got, digests)
	}
}

// gatedRunner runs one execution at a time: each run announces itself on
// started, then blocks until it receives a proceed token — so a test can
// drain the queue one job per release and observe queue positions between
// steps.
type gatedRunner struct {
	started chan string
	proceed chan struct{}
}

func (g *gatedRunner) Run(ctx context.Context, req RunRequest) (*RunResult, error) {
	g.started <- req.Kind()
	select {
	case <-g.proceed:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return newFakeRunner(false).Run(ctx, req)
}

// TestQueuePositionMonotoneAcrossShards: with jobs spread across shards,
// every queued job's reported position matches its submission order and
// only ever shrinks as the single worker drains the queue.
func TestQueuePositionMonotoneAcrossShards(t *testing.T) {
	g := &gatedRunner{started: make(chan string, 16), proceed: make(chan struct{})}
	m := NewManager(ManagerConfig{Workers: 1, QueueSize: 16, Shards: 8, Run: g.Run})
	defer func() {
		close(g.proceed) // let any still-blocked run finish before drain
		m.Shutdown(context.Background())
	}()

	const n = 6
	jobs := make([]*Job, n)
	for i := range jobs {
		j, outcome, err := m.Submit(expReq(t, int64(i+1)))
		if err != nil || outcome != SubmitNew {
			t.Fatalf("Submit %d = (%v, %v), want fresh", i, outcome, err)
		}
		jobs[i] = j
	}
	<-g.started // job 0 is running; 1..n-1 are queued

	last := make([]int, n)
	for i := 1; i < n; i++ {
		if last[i] = m.QueuePosition(jobs[i].ID); last[i] != i-1 {
			t.Fatalf("initial position of job %d = %d, want %d", i, last[i], i-1)
		}
	}
	// Drain one job per step; after each step every still-queued job's
	// position must have dropped by exactly one, never risen.
	for step := 1; step < n; step++ {
		g.proceed <- struct{}{} // finish the running job
		<-g.started             // the next job is now running
		for i := step + 1; i < n; i++ {
			pos := m.QueuePosition(jobs[i].ID)
			if pos > last[i] {
				t.Errorf("step %d: job %d position rose %d -> %d", step, i, last[i], pos)
			}
			if pos != i-step-1 {
				t.Errorf("step %d: job %d position = %d, want %d", step, i, pos, i-step-1)
			}
			last[i] = pos
		}
		if pos := m.QueuePosition(jobs[step].ID); pos != -1 {
			t.Errorf("step %d: running job still reports position %d, want -1", step, pos)
		}
	}
}

// TestRateLimitMiddleware: denials are 429 + honest Retry-After, every
// decision carries the X-RateLimit-* headers, keys are isolated, and the
// client's credential is never echoed back.
func TestRateLimitMiddleware(t *testing.T) {
	f := newFakeRunner(false)
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueSize: 8, Run: f.Run,
		Policy: PolicyConfig{RateLimit: 1, RateBurst: 2},
	})

	post := func(apiKey string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/runs", strings.NewReader(`{"experiment":"fig5"}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if apiKey != "" {
			req.Header.Set("X-API-Key", apiKey)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	const secret = "alice-super-secret-token"
	// Burst of 2: two requests pass, the third is shed.
	for i := 0; i < 2; i++ {
		resp := post(secret)
		if resp.StatusCode == http.StatusTooManyRequests {
			t.Fatalf("request %d rate-limited inside the burst", i)
		}
		if lim := resp.Header.Get("X-RateLimit-Limit"); lim != "1" {
			t.Errorf("X-RateLimit-Limit = %q, want \"1\"", lim)
		}
		if rem := resp.Header.Get("X-RateLimit-Remaining"); rem != fmt.Sprint(1-i) {
			t.Errorf("request %d: X-RateLimit-Remaining = %q, want %d", i, rem, 1-i)
		}
		resp.Body.Close()
	}
	resp := post(secret)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		// rate 1/s with an empty bucket refills one token in exactly 1s.
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}
	if rem := resp.Header.Get("X-RateLimit-Remaining"); rem != "0" {
		t.Errorf("denied X-RateLimit-Remaining = %q, want \"0\"", rem)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), secret) {
		t.Error("429 body echoes the client credential")
	}

	// A different key owns a fresh bucket: alice's exhaustion cannot shed
	// bob's traffic.
	resp = post("bob-other-token")
	if resp.StatusCode == http.StatusTooManyRequests {
		t.Error("distinct API key shed by another key's exhaustion")
	}
	resp.Body.Close()

	// GETs are never limited: status polls must keep working while the
	// client is being shed on submissions.
	for i := 0; i < 5; i++ {
		r, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET /healthz = %d under rate limiting, want 200", r.StatusCode)
		}
		r.Body.Close()
	}
}

// TestClientKeyPrecedence: Bearer token beats X-API-Key beats remote
// address, and credentialed keys are hashes, never the raw secret.
func TestClientKeyPrecedence(t *testing.T) {
	req := httptest.NewRequest(http.MethodPost, "/v1/runs", nil)
	req.RemoteAddr = "203.0.113.7:4711"
	if got := clientKey(req); got != "addr:203.0.113.7" {
		t.Errorf("anonymous key = %q, want the bare remote IP", got)
	}
	req.Header.Set("X-API-Key", "api-secret")
	apiKey := clientKey(req)
	if !strings.HasPrefix(apiKey, "apikey:") || strings.Contains(apiKey, "api-secret") {
		t.Errorf("X-API-Key key = %q; want a hash, never the secret", apiKey)
	}
	req.Header.Set("Authorization", "Bearer bearer-secret")
	bearer := clientKey(req)
	if !strings.HasPrefix(bearer, "bearer:") || strings.Contains(bearer, "bearer-secret") {
		t.Errorf("Bearer key = %q; want a hash, never the secret", bearer)
	}
	if bearer == apiKey {
		t.Error("Bearer and X-API-Key must key different buckets")
	}
}

// TestBreakerFastFailForgetsJob: once the execute stage trips the breaker,
// queued jobs fail fast with ErrBreakerOpen, leave no cached trace, and a
// resubmission is a fresh job — so recovery re-executes instead of serving
// the fast-fail from cache.
func TestBreakerFastFailForgetsJob(t *testing.T) {
	boom := errors.New("runner down")
	m := NewManager(ManagerConfig{
		Workers: 1, QueueSize: 8,
		Run: func(context.Context, RunRequest) (*RunResult, error) { return nil, boom },
		// Trips at 50% over 2 samples; the hour-long cooldown pins the
		// breaker open for the rest of the test.
		Breaker: policy.NewBreaker(policy.BreakerConfig{MinRequests: 2, ErrorRate: 0.5, Cooldown: time.Hour}),
	})
	defer m.Shutdown(context.Background())

	// Two genuine failures trip the breaker.
	for seed := int64(1); seed <= 2; seed++ {
		j, _, err := m.Submit(expReq(t, seed))
		if err != nil {
			t.Fatal(err)
		}
		if snap := waitDone(t, j); !errors.Is(snap.Err, boom) {
			t.Fatalf("err = %v, want the runner's error", snap.Err)
		}
	}
	if got := m.Breaker().State(); got != policy.BreakerOpen {
		t.Fatalf("breaker state = %v, want open after 2/2 failures", got)
	}

	// The next submission is admitted (the queue is upstream of the
	// breaker) but fast-fails at the execute stage.
	j, outcome, err := m.Submit(expReq(t, 3))
	if err != nil || outcome != SubmitNew {
		t.Fatalf("Submit = (%v, %v), want a fresh job", outcome, err)
	}
	if snap := waitDone(t, j); !errors.Is(snap.Err, policy.ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", snap.Err)
	}
	if got := m.Breaker().ShortCircuits(); got < 1 {
		t.Errorf("ShortCircuits() = %d, want >= 1", got)
	}

	// The fast-fail left no trace: the job is gone and resubmitting is a
	// fresh execution attempt, not a cache hit on the failure.
	if _, ok := m.Job(j.ID); ok {
		t.Error("fast-failed job still resolvable; must be forgotten")
	}
	j2, outcome, err := m.Submit(expReq(t, 3))
	if err != nil || outcome != SubmitNew {
		t.Fatalf("resubmit = (%v, %v), want SubmitNew", outcome, err)
	}
	waitDone(t, j2)
}

// TestPolicyMetricsExposition: the limiter and breaker families appear in
// /metrics with live values; the limiter family is absent when disabled.
func TestPolicyMetricsExposition(t *testing.T) {
	f := newFakeRunner(false)
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueSize: 8, Run: f.Run,
		Policy: PolicyConfig{RateLimit: 1, RateBurst: 1},
	})

	// One allowed and one limited decision make the counters non-zero.
	for i := 0; i < 2; i++ {
		code, _, _ := postRun(t, ts, `{"experiment":"fig5"}`)
		want := http.StatusAccepted
		if i == 1 {
			want = http.StatusTooManyRequests
		}
		if code != want && !(i == 0 && code == http.StatusOK) {
			t.Fatalf("request %d status = %d, want %d", i, code, want)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	for _, want := range []string{
		"hcperf_ratelimit_allowed_total 1",
		"hcperf_ratelimit_limited_total 1",
		"hcperf_ratelimit_tracked_keys 1",
		"hcperf_breaker_state 0",
		"hcperf_breaker_opens_total 0",
		"hcperf_breaker_shortcircuit_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Without a limiter the family is omitted entirely, keeping the
	// exposition identical to pre-policy deployments.
	_, plain := newTestServer(t, Config{Workers: 1, QueueSize: 8, Run: newFakeRunner(false).Run})
	resp2, err := http.Get(plain.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw2, _ := io.ReadAll(resp2.Body)
	if strings.Contains(string(raw2), "hcperf_ratelimit_") {
		t.Error("limiter metrics exposed with rate limiting disabled")
	}
}
